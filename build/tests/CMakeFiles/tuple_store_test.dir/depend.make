# Empty dependencies file for tuple_store_test.
# This may be replaced when dependencies are built.
