# Empty compiler generated dependencies file for purge_engine_test.
# This may be replaced when dependencies are built.
