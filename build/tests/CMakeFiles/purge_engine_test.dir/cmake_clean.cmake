file(REMOVE_RECURSE
  "CMakeFiles/purge_engine_test.dir/purge_engine_test.cc.o"
  "CMakeFiles/purge_engine_test.dir/purge_engine_test.cc.o.d"
  "purge_engine_test"
  "purge_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/purge_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
