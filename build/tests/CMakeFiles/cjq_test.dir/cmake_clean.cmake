file(REMOVE_RECURSE
  "CMakeFiles/cjq_test.dir/cjq_test.cc.o"
  "CMakeFiles/cjq_test.dir/cjq_test.cc.o.d"
  "cjq_test"
  "cjq_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cjq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
