# Empty compiler generated dependencies file for cjq_test.
# This may be replaced when dependencies are built.
