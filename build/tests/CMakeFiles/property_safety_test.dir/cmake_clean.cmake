file(REMOVE_RECURSE
  "CMakeFiles/property_safety_test.dir/property_safety_test.cc.o"
  "CMakeFiles/property_safety_test.dir/property_safety_test.cc.o.d"
  "property_safety_test"
  "property_safety_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_safety_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
