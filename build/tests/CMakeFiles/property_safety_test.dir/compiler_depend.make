# Empty compiler generated dependencies file for property_safety_test.
# This may be replaced when dependencies are built.
