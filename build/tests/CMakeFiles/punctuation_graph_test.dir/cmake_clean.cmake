file(REMOVE_RECURSE
  "CMakeFiles/punctuation_graph_test.dir/punctuation_graph_test.cc.o"
  "CMakeFiles/punctuation_graph_test.dir/punctuation_graph_test.cc.o.d"
  "punctuation_graph_test"
  "punctuation_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/punctuation_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
