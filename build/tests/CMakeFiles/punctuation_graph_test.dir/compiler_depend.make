# Empty compiler generated dependencies file for punctuation_graph_test.
# This may be replaced when dependencies are built.
