file(REMOVE_RECURSE
  "CMakeFiles/exec_extras_test.dir/exec_extras_test.cc.o"
  "CMakeFiles/exec_extras_test.dir/exec_extras_test.cc.o.d"
  "exec_extras_test"
  "exec_extras_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_extras_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
