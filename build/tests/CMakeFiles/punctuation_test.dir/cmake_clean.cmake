file(REMOVE_RECURSE
  "CMakeFiles/punctuation_test.dir/punctuation_test.cc.o"
  "CMakeFiles/punctuation_test.dir/punctuation_test.cc.o.d"
  "punctuation_test"
  "punctuation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/punctuation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
