# Empty dependencies file for punctuation_test.
# This may be replaced when dependencies are built.
