# Empty dependencies file for scheme_selection_test.
# This may be replaced when dependencies are built.
