file(REMOVE_RECURSE
  "CMakeFiles/scheme_selection_test.dir/scheme_selection_test.cc.o"
  "CMakeFiles/scheme_selection_test.dir/scheme_selection_test.cc.o.d"
  "scheme_selection_test"
  "scheme_selection_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheme_selection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
