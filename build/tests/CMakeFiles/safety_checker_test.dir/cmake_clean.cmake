file(REMOVE_RECURSE
  "CMakeFiles/safety_checker_test.dir/safety_checker_test.cc.o"
  "CMakeFiles/safety_checker_test.dir/safety_checker_test.cc.o.d"
  "safety_checker_test"
  "safety_checker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safety_checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
