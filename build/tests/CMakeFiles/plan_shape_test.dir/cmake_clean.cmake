file(REMOVE_RECURSE
  "CMakeFiles/plan_shape_test.dir/plan_shape_test.cc.o"
  "CMakeFiles/plan_shape_test.dir/plan_shape_test.cc.o.d"
  "plan_shape_test"
  "plan_shape_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_shape_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
