# Empty compiler generated dependencies file for plan_shape_test.
# This may be replaced when dependencies are built.
