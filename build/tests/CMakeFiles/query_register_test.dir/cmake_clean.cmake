file(REMOVE_RECURSE
  "CMakeFiles/query_register_test.dir/query_register_test.cc.o"
  "CMakeFiles/query_register_test.dir/query_register_test.cc.o.d"
  "query_register_test"
  "query_register_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_register_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
