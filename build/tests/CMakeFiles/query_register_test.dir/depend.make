# Empty dependencies file for query_register_test.
# This may be replaced when dependencies are built.
