file(REMOVE_RECURSE
  "CMakeFiles/tpg_test.dir/tpg_test.cc.o"
  "CMakeFiles/tpg_test.dir/tpg_test.cc.o.d"
  "tpg_test"
  "tpg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
