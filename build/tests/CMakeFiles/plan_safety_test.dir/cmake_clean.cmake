file(REMOVE_RECURSE
  "CMakeFiles/plan_safety_test.dir/plan_safety_test.cc.o"
  "CMakeFiles/plan_safety_test.dir/plan_safety_test.cc.o.d"
  "plan_safety_test"
  "plan_safety_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_safety_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
