# Empty compiler generated dependencies file for plan_safety_test.
# This may be replaced when dependencies are built.
