file(REMOVE_RECURSE
  "CMakeFiles/punctuation_store_test.dir/punctuation_store_test.cc.o"
  "CMakeFiles/punctuation_store_test.dir/punctuation_store_test.cc.o.d"
  "punctuation_store_test"
  "punctuation_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/punctuation_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
