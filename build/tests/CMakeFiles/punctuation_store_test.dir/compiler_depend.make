# Empty compiler generated dependencies file for punctuation_store_test.
# This may be replaced when dependencies are built.
