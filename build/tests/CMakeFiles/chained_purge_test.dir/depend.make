# Empty dependencies file for chained_purge_test.
# This may be replaced when dependencies are built.
