file(REMOVE_RECURSE
  "CMakeFiles/chained_purge_test.dir/chained_purge_test.cc.o"
  "CMakeFiles/chained_purge_test.dir/chained_purge_test.cc.o.d"
  "chained_purge_test"
  "chained_purge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chained_purge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
