# Empty compiler generated dependencies file for symmetric_hash_join_test.
# This may be replaced when dependencies are built.
