file(REMOVE_RECURSE
  "CMakeFiles/join_graph_test.dir/join_graph_test.cc.o"
  "CMakeFiles/join_graph_test.dir/join_graph_test.cc.o.d"
  "join_graph_test"
  "join_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
