file(REMOVE_RECURSE
  "CMakeFiles/naive_checker_test.dir/naive_checker_test.cc.o"
  "CMakeFiles/naive_checker_test.dir/naive_checker_test.cc.o.d"
  "naive_checker_test"
  "naive_checker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/naive_checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
