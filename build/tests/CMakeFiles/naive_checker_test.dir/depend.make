# Empty dependencies file for naive_checker_test.
# This may be replaced when dependencies are built.
