file(REMOVE_RECURSE
  "CMakeFiles/string_join_test.dir/string_join_test.cc.o"
  "CMakeFiles/string_join_test.dir/string_join_test.cc.o.d"
  "string_join_test"
  "string_join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/string_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
