# Empty dependencies file for string_join_test.
# This may be replaced when dependencies are built.
