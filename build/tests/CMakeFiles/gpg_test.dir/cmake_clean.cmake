file(REMOVE_RECURSE
  "CMakeFiles/gpg_test.dir/gpg_test.cc.o"
  "CMakeFiles/gpg_test.dir/gpg_test.cc.o.d"
  "gpg_test"
  "gpg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
