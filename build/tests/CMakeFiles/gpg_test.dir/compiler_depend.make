# Empty compiler generated dependencies file for gpg_test.
# This may be replaced when dependencies are built.
