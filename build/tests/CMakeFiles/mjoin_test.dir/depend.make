# Empty dependencies file for mjoin_test.
# This may be replaced when dependencies are built.
