file(REMOVE_RECURSE
  "CMakeFiles/mjoin_test.dir/mjoin_test.cc.o"
  "CMakeFiles/mjoin_test.dir/mjoin_test.cc.o.d"
  "mjoin_test"
  "mjoin_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mjoin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
