file(REMOVE_RECURSE
  "CMakeFiles/local_graph_test.dir/local_graph_test.cc.o"
  "CMakeFiles/local_graph_test.dir/local_graph_test.cc.o.d"
  "local_graph_test"
  "local_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
