# Empty compiler generated dependencies file for local_graph_test.
# This may be replaced when dependencies are built.
