
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/chained_purge.cc" "src/CMakeFiles/punctsafe.dir/core/chained_purge.cc.o" "gcc" "src/CMakeFiles/punctsafe.dir/core/chained_purge.cc.o.d"
  "/root/repo/src/core/generalized_punctuation_graph.cc" "src/CMakeFiles/punctsafe.dir/core/generalized_punctuation_graph.cc.o" "gcc" "src/CMakeFiles/punctsafe.dir/core/generalized_punctuation_graph.cc.o.d"
  "/root/repo/src/core/local_graph.cc" "src/CMakeFiles/punctsafe.dir/core/local_graph.cc.o" "gcc" "src/CMakeFiles/punctsafe.dir/core/local_graph.cc.o.d"
  "/root/repo/src/core/naive_checker.cc" "src/CMakeFiles/punctsafe.dir/core/naive_checker.cc.o" "gcc" "src/CMakeFiles/punctsafe.dir/core/naive_checker.cc.o.d"
  "/root/repo/src/core/plan_safety.cc" "src/CMakeFiles/punctsafe.dir/core/plan_safety.cc.o" "gcc" "src/CMakeFiles/punctsafe.dir/core/plan_safety.cc.o.d"
  "/root/repo/src/core/punctuation_graph.cc" "src/CMakeFiles/punctsafe.dir/core/punctuation_graph.cc.o" "gcc" "src/CMakeFiles/punctsafe.dir/core/punctuation_graph.cc.o.d"
  "/root/repo/src/core/safety_checker.cc" "src/CMakeFiles/punctsafe.dir/core/safety_checker.cc.o" "gcc" "src/CMakeFiles/punctsafe.dir/core/safety_checker.cc.o.d"
  "/root/repo/src/core/transformed_punctuation_graph.cc" "src/CMakeFiles/punctsafe.dir/core/transformed_punctuation_graph.cc.o" "gcc" "src/CMakeFiles/punctsafe.dir/core/transformed_punctuation_graph.cc.o.d"
  "/root/repo/src/exec/input_manager.cc" "src/CMakeFiles/punctsafe.dir/exec/input_manager.cc.o" "gcc" "src/CMakeFiles/punctsafe.dir/exec/input_manager.cc.o.d"
  "/root/repo/src/exec/mjoin.cc" "src/CMakeFiles/punctsafe.dir/exec/mjoin.cc.o" "gcc" "src/CMakeFiles/punctsafe.dir/exec/mjoin.cc.o.d"
  "/root/repo/src/exec/plan_executor.cc" "src/CMakeFiles/punctsafe.dir/exec/plan_executor.cc.o" "gcc" "src/CMakeFiles/punctsafe.dir/exec/plan_executor.cc.o.d"
  "/root/repo/src/exec/punctuation_store.cc" "src/CMakeFiles/punctsafe.dir/exec/punctuation_store.cc.o" "gcc" "src/CMakeFiles/punctsafe.dir/exec/punctuation_store.cc.o.d"
  "/root/repo/src/exec/purge_engine.cc" "src/CMakeFiles/punctsafe.dir/exec/purge_engine.cc.o" "gcc" "src/CMakeFiles/punctsafe.dir/exec/purge_engine.cc.o.d"
  "/root/repo/src/exec/query_register.cc" "src/CMakeFiles/punctsafe.dir/exec/query_register.cc.o" "gcc" "src/CMakeFiles/punctsafe.dir/exec/query_register.cc.o.d"
  "/root/repo/src/exec/reference_join.cc" "src/CMakeFiles/punctsafe.dir/exec/reference_join.cc.o" "gcc" "src/CMakeFiles/punctsafe.dir/exec/reference_join.cc.o.d"
  "/root/repo/src/exec/symmetric_hash_join.cc" "src/CMakeFiles/punctsafe.dir/exec/symmetric_hash_join.cc.o" "gcc" "src/CMakeFiles/punctsafe.dir/exec/symmetric_hash_join.cc.o.d"
  "/root/repo/src/exec/tuple_store.cc" "src/CMakeFiles/punctsafe.dir/exec/tuple_store.cc.o" "gcc" "src/CMakeFiles/punctsafe.dir/exec/tuple_store.cc.o.d"
  "/root/repo/src/graph/digraph.cc" "src/CMakeFiles/punctsafe.dir/graph/digraph.cc.o" "gcc" "src/CMakeFiles/punctsafe.dir/graph/digraph.cc.o.d"
  "/root/repo/src/graph/scc.cc" "src/CMakeFiles/punctsafe.dir/graph/scc.cc.o" "gcc" "src/CMakeFiles/punctsafe.dir/graph/scc.cc.o.d"
  "/root/repo/src/plan/chooser.cc" "src/CMakeFiles/punctsafe.dir/plan/chooser.cc.o" "gcc" "src/CMakeFiles/punctsafe.dir/plan/chooser.cc.o.d"
  "/root/repo/src/plan/cost_model.cc" "src/CMakeFiles/punctsafe.dir/plan/cost_model.cc.o" "gcc" "src/CMakeFiles/punctsafe.dir/plan/cost_model.cc.o.d"
  "/root/repo/src/plan/enumerator.cc" "src/CMakeFiles/punctsafe.dir/plan/enumerator.cc.o" "gcc" "src/CMakeFiles/punctsafe.dir/plan/enumerator.cc.o.d"
  "/root/repo/src/plan/scheme_selection.cc" "src/CMakeFiles/punctsafe.dir/plan/scheme_selection.cc.o" "gcc" "src/CMakeFiles/punctsafe.dir/plan/scheme_selection.cc.o.d"
  "/root/repo/src/query/cjq.cc" "src/CMakeFiles/punctsafe.dir/query/cjq.cc.o" "gcc" "src/CMakeFiles/punctsafe.dir/query/cjq.cc.o.d"
  "/root/repo/src/query/join_graph.cc" "src/CMakeFiles/punctsafe.dir/query/join_graph.cc.o" "gcc" "src/CMakeFiles/punctsafe.dir/query/join_graph.cc.o.d"
  "/root/repo/src/query/plan_shape.cc" "src/CMakeFiles/punctsafe.dir/query/plan_shape.cc.o" "gcc" "src/CMakeFiles/punctsafe.dir/query/plan_shape.cc.o.d"
  "/root/repo/src/query/spec_parser.cc" "src/CMakeFiles/punctsafe.dir/query/spec_parser.cc.o" "gcc" "src/CMakeFiles/punctsafe.dir/query/spec_parser.cc.o.d"
  "/root/repo/src/stream/catalog.cc" "src/CMakeFiles/punctsafe.dir/stream/catalog.cc.o" "gcc" "src/CMakeFiles/punctsafe.dir/stream/catalog.cc.o.d"
  "/root/repo/src/stream/punctuation.cc" "src/CMakeFiles/punctsafe.dir/stream/punctuation.cc.o" "gcc" "src/CMakeFiles/punctsafe.dir/stream/punctuation.cc.o.d"
  "/root/repo/src/stream/schema.cc" "src/CMakeFiles/punctsafe.dir/stream/schema.cc.o" "gcc" "src/CMakeFiles/punctsafe.dir/stream/schema.cc.o.d"
  "/root/repo/src/stream/scheme.cc" "src/CMakeFiles/punctsafe.dir/stream/scheme.cc.o" "gcc" "src/CMakeFiles/punctsafe.dir/stream/scheme.cc.o.d"
  "/root/repo/src/stream/tuple.cc" "src/CMakeFiles/punctsafe.dir/stream/tuple.cc.o" "gcc" "src/CMakeFiles/punctsafe.dir/stream/tuple.cc.o.d"
  "/root/repo/src/stream/value.cc" "src/CMakeFiles/punctsafe.dir/stream/value.cc.o" "gcc" "src/CMakeFiles/punctsafe.dir/stream/value.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/punctsafe.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/punctsafe.dir/util/logging.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/punctsafe.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/punctsafe.dir/util/rng.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/punctsafe.dir/util/status.cc.o" "gcc" "src/CMakeFiles/punctsafe.dir/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/punctsafe.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/punctsafe.dir/util/string_util.cc.o.d"
  "/root/repo/src/workload/auction.cc" "src/CMakeFiles/punctsafe.dir/workload/auction.cc.o" "gcc" "src/CMakeFiles/punctsafe.dir/workload/auction.cc.o.d"
  "/root/repo/src/workload/network.cc" "src/CMakeFiles/punctsafe.dir/workload/network.cc.o" "gcc" "src/CMakeFiles/punctsafe.dir/workload/network.cc.o.d"
  "/root/repo/src/workload/random_query.cc" "src/CMakeFiles/punctsafe.dir/workload/random_query.cc.o" "gcc" "src/CMakeFiles/punctsafe.dir/workload/random_query.cc.o.d"
  "/root/repo/src/workload/sensor.cc" "src/CMakeFiles/punctsafe.dir/workload/sensor.cc.o" "gcc" "src/CMakeFiles/punctsafe.dir/workload/sensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
