file(REMOVE_RECURSE
  "libpunctsafe.a"
)
