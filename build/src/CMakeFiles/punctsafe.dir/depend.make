# Empty dependencies file for punctsafe.
# This may be replaced when dependencies are built.
