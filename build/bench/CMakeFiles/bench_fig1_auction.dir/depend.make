# Empty dependencies file for bench_fig1_auction.
# This may be replaced when dependencies are built.
