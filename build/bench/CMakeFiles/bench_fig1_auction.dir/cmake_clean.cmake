file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_auction.dir/bench_fig1_auction.cc.o"
  "CMakeFiles/bench_fig1_auction.dir/bench_fig1_auction.cc.o.d"
  "bench_fig1_auction"
  "bench_fig1_auction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_auction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
