file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_chained_purge.dir/bench_fig3_chained_purge.cc.o"
  "CMakeFiles/bench_fig3_chained_purge.dir/bench_fig3_chained_purge.cc.o.d"
  "bench_fig3_chained_purge"
  "bench_fig3_chained_purge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_chained_purge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
