# Empty dependencies file for bench_fig3_chained_purge.
# This may be replaced when dependencies are built.
