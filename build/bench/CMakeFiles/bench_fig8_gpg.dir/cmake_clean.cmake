file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_gpg.dir/bench_fig8_gpg.cc.o"
  "CMakeFiles/bench_fig8_gpg.dir/bench_fig8_gpg.cc.o.d"
  "bench_fig8_gpg"
  "bench_fig8_gpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_gpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
