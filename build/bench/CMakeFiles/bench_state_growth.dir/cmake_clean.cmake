file(REMOVE_RECURSE
  "CMakeFiles/bench_state_growth.dir/bench_state_growth.cc.o"
  "CMakeFiles/bench_state_growth.dir/bench_state_growth.cc.o.d"
  "bench_state_growth"
  "bench_state_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_state_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
