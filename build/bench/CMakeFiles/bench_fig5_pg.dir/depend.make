# Empty dependencies file for bench_fig5_pg.
# This may be replaced when dependencies are built.
