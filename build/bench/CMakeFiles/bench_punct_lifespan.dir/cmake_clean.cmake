file(REMOVE_RECURSE
  "CMakeFiles/bench_punct_lifespan.dir/bench_punct_lifespan.cc.o"
  "CMakeFiles/bench_punct_lifespan.dir/bench_punct_lifespan.cc.o.d"
  "bench_punct_lifespan"
  "bench_punct_lifespan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_punct_lifespan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
