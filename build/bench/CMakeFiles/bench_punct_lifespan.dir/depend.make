# Empty dependencies file for bench_punct_lifespan.
# This may be replaced when dependencies are built.
