# Empty dependencies file for bench_fig10_tpg.
# This may be replaced when dependencies are built.
