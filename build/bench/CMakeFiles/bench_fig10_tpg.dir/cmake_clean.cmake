file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_tpg.dir/bench_fig10_tpg.cc.o"
  "CMakeFiles/bench_fig10_tpg.dir/bench_fig10_tpg.cc.o.d"
  "bench_fig10_tpg"
  "bench_fig10_tpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_tpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
