file(REMOVE_RECURSE
  "CMakeFiles/bench_purge_strategy.dir/bench_purge_strategy.cc.o"
  "CMakeFiles/bench_purge_strategy.dir/bench_purge_strategy.cc.o.d"
  "bench_purge_strategy"
  "bench_purge_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_purge_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
