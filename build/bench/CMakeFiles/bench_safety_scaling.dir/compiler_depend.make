# Empty compiler generated dependencies file for bench_safety_scaling.
# This may be replaced when dependencies are built.
