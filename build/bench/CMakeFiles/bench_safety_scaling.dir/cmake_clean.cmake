file(REMOVE_RECURSE
  "CMakeFiles/bench_safety_scaling.dir/bench_safety_scaling.cc.o"
  "CMakeFiles/bench_safety_scaling.dir/bench_safety_scaling.cc.o.d"
  "bench_safety_scaling"
  "bench_safety_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_safety_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
