file(REMOVE_RECURSE
  "CMakeFiles/bench_scheme_choice.dir/bench_scheme_choice.cc.o"
  "CMakeFiles/bench_scheme_choice.dir/bench_scheme_choice.cc.o.d"
  "bench_scheme_choice"
  "bench_scheme_choice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scheme_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
