# Empty dependencies file for bench_scheme_choice.
# This may be replaced when dependencies are built.
