file(REMOVE_RECURSE
  "CMakeFiles/bench_plan_enumeration.dir/bench_plan_enumeration.cc.o"
  "CMakeFiles/bench_plan_enumeration.dir/bench_plan_enumeration.cc.o.d"
  "bench_plan_enumeration"
  "bench_plan_enumeration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_plan_enumeration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
