# Empty dependencies file for bench_plan_enumeration.
# This may be replaced when dependencies are built.
