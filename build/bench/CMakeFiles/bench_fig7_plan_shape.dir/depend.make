# Empty dependencies file for bench_fig7_plan_shape.
# This may be replaced when dependencies are built.
