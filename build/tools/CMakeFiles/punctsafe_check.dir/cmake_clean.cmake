file(REMOVE_RECURSE
  "CMakeFiles/punctsafe_check.dir/punctsafe_check.cc.o"
  "CMakeFiles/punctsafe_check.dir/punctsafe_check.cc.o.d"
  "punctsafe_check"
  "punctsafe_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/punctsafe_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
