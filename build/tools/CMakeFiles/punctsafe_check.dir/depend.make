# Empty dependencies file for punctsafe_check.
# This may be replaced when dependencies are built.
