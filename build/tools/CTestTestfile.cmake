# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(punctsafe_check_safe "/root/repo/build/tools/punctsafe_check" "/root/repo/specs/triangle_fig8.spec")
set_tests_properties(punctsafe_check_safe PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;4;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(punctsafe_check_dot "/root/repo/build/tools/punctsafe_check" "--dot" "/root/repo/specs/auction.spec")
set_tests_properties(punctsafe_check_dot PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(punctsafe_check_unsafe "/root/repo/build/tools/punctsafe_check" "/root/repo/specs/unsafe_auction.spec")
set_tests_properties(punctsafe_check_unsafe PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
