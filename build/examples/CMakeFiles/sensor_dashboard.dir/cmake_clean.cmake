file(REMOVE_RECURSE
  "CMakeFiles/sensor_dashboard.dir/sensor_dashboard.cpp.o"
  "CMakeFiles/sensor_dashboard.dir/sensor_dashboard.cpp.o.d"
  "sensor_dashboard"
  "sensor_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
