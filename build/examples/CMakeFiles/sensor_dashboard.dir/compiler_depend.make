# Empty compiler generated dependencies file for sensor_dashboard.
# This may be replaced when dependencies are built.
