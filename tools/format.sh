#!/usr/bin/env bash
# clang-format driver for the C++ tree (.clang-format at the repo
# root is the single source of truth).
#
# Usage: tools/format.sh            # rewrite files in place
#        tools/format.sh --check    # exit 1 if anything would change
#
# CLANG_FORMAT overrides the binary (e.g. CLANG_FORMAT=clang-format-15).
# When no clang-format is installed the script warns and exits 0 so
# that tools/ci.sh still runs end-to-end on minimal containers; the
# GitHub Actions format job installs clang-format and is the
# enforcing run.

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
MODE="${1:-fix}"

CLANG_FORMAT="${CLANG_FORMAT:-}"
if [ -z "${CLANG_FORMAT}" ]; then
  for candidate in clang-format clang-format-18 clang-format-17 \
                   clang-format-16 clang-format-15 clang-format-14; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      CLANG_FORMAT="${candidate}"
      break
    fi
  done
fi
if [ -z "${CLANG_FORMAT}" ]; then
  echo "format.sh: no clang-format found; skipping (install clang-format" \
       "or set CLANG_FORMAT= to enforce)" >&2
  exit 0
fi

mapfile -t FILES < <(find "${ROOT}/src" "${ROOT}/tests" "${ROOT}/bench" \
                          "${ROOT}/tools" "${ROOT}/examples" \
                          -name '*.h' -o -name '*.cc' 2>/dev/null | sort)
if [ "${#FILES[@]}" -eq 0 ]; then
  echo "format.sh: no C++ files found under ${ROOT}" >&2
  exit 1
fi

case "${MODE}" in
  --check|check)
    echo "format.sh: checking ${#FILES[@]} files with ${CLANG_FORMAT}"
    "${CLANG_FORMAT}" --dry-run --Werror "${FILES[@]}"
    echo "format.sh: all files formatted"
    ;;
  fix|--fix)
    echo "format.sh: rewriting ${#FILES[@]} files with ${CLANG_FORMAT}"
    "${CLANG_FORMAT}" -i "${FILES[@]}"
    ;;
  *)
    echo "usage: tools/format.sh [--check|--fix]" >&2
    exit 2
    ;;
esac
