#!/usr/bin/env bash
# CI driver: format gate, then builds and ctests the plain,
# AddressSanitizer, ThreadSanitizer, UndefinedBehaviorSanitizer, and
# scalar (-DPUNCTSAFE_NO_SIMD=ON, portable exec/simd.h fallback)
# configurations (see -DPUNCTSAFE_SANITIZE in the top-level
# CMakeLists.txt), then smoke-runs the standalone benchmark binaries
# in a Release build on tiny inputs. The sanitizer runs are what give
# the parallel executor's differential and queue stress tests their
# teeth; the bench smoke keeps the JSON-emitting binaries (and their
# internal result-equality CHECKs, including the sharded executor's)
# from rotting between full benchmark runs, and additionally exports
# an observability metrics JSONL (bench/metrics.jsonl under the build
# root — uploaded as a CI artifact, rendered with tools/obs_report.py).
#
# Usage: tools/ci.sh [build-root]         (default: ./build-ci)
#   PUNCTSAFE_CI_CONFIGS="format plain asan tsan ubsan bench" for a
#   subset.
#   PUNCTSAFE_BENCH_MIN_RATIO tunes the bench regression-gate floor
#   (default 0.75; the bench binaries read it themselves).
#   PUNCTSAFE_CTEST_TIMEOUT caps every single test's wall time
#   (default 300s) so a wedged event loop or deadlocked pipeline fails
#   the run instead of hanging it until the CI job timeout.

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_ROOT="${1:-${ROOT}/build-ci}"
CONFIGS="${PUNCTSAFE_CI_CONFIGS:-format plain scalar asan tsan ubsan bench}"
JOBS="${PUNCTSAFE_CI_JOBS:-$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)}"
CTEST_TIMEOUT="${PUNCTSAFE_CTEST_TIMEOUT:-300}"

# Runs an explicit post-ctest test binary by path, failing loudly when
# the binary does not exist: a bare "${dir}/tests/foo" that was
# renamed would otherwise read as a passing leg even though the
# intended coverage never ran.
run_explicit() {
  local binary="$1"
  shift
  if [ ! -x "${binary}" ]; then
    echo "ERROR: explicit test binary '${binary}' is missing or not" \
         "executable (renamed without updating tools/ci.sh?)" >&2
    exit 1
  fi
  "${binary}" "$@"
}

run_config() {
  local name="$1" sanitize="$2" no_simd="${3:-OFF}"
  local dir="${BUILD_ROOT}/${name}"
  echo "=== [${name}] configure (PUNCTSAFE_SANITIZE='${sanitize}'" \
       "PUNCTSAFE_NO_SIMD=${no_simd}) ==="
  cmake -B "${dir}" -S "${ROOT}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPUNCTSAFE_SANITIZE="${sanitize}" \
    -DPUNCTSAFE_NO_SIMD="${no_simd}" \
    -DPUNCTSAFE_BUILD_BENCHMARKS=OFF \
    -DPUNCTSAFE_BUILD_EXAMPLES=OFF
  echo "=== [${name}] build ==="
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== [${name}] ctest ==="
  (cd "${dir}" && ctest --output-on-failure --timeout "${CTEST_TIMEOUT}" \
    -j "${JOBS}")
  # The arena storage sweep (parallel_differential_test crosses
  # arena {off,on} x shards {1,2,4} against an arena-off serial
  # reference) runs as part of ctest above; under ASan it is the
  # lifetime proof for epoch-deferred reclamation and under TSan the
  # publication-order proof for cross-shard hand-off, so make its
  # presence explicit in both rather than relying on the suite
  # listing.
  # The batched-expansion differential oracle (batch_size sweep vs the
  # tuple-at-a-time reference, exact emission order, cross-product /
  # verify-heavy / sparse-selection shapes, expand_allocs pin) also
  # runs on the scalar leg: with PUNCTSAFE_NO_SIMD the identical
  # frontier pipeline executes over the portable FilterEqualHashes /
  # HashRunLength fallbacks, which is the behavioral SIMD-vs-scalar
  # cross-check (tools/simd_crosscheck.sh covers compile-only).
  if [ "${name}" = "scalar" ] || [ "${name}" = "asan" ] || \
     [ "${name}" = "tsan" ]; then
    echo "=== [${name}] batched-expansion differential oracle (explicit) ==="
    run_explicit "${dir}/tests/expansion_differential_test"
  fi
  # The server end-to-end test (loopback sockets, background event
  # loop, multi-client fan-out) gets explicit runs on the plain leg
  # and under both sanitizers: ASan covers connection/result buffer
  # lifetimes, TSan the event-loop thread against client threads and
  # the registry's coarse lock.
  if [ "${name}" = "plain" ] || [ "${name}" = "asan" ] || \
     [ "${name}" = "tsan" ]; then
    echo "=== [${name}] server end-to-end (explicit) ==="
    run_explicit "${dir}/tests/server_e2e_test"
  fi
  if [ "${name}" = "scalar" ]; then
    echo "=== [${name}] simd branch compile cross-check ==="
    "${ROOT}/tools/simd_crosscheck.sh"
  fi
  if [ "${name}" = "asan" ] || [ "${name}" = "tsan" ]; then
    echo "=== [${name}] arena differential sweep (explicit) ==="
    run_explicit "${dir}/tests/parallel_differential_test" \
      --gtest_filter='ParallelDifferentialTest.HundredRandomTrialsMatchSerialExecutor'
    # The recovery oracle (serial = kill/restore/replay = split-merge =
    # parallel restore, arena {off,on} x shards {1,2,4}) exercises the
    # checkpoint barrier, snapshot capture on parked shards, and the
    # restore recheck handshake; under ASan it proves captured state
    # outlives the executor it came from, under TSan that the barrier
    # really quiesces every worker before CaptureState reads operator
    # state from the driver thread.
    echo "=== [${name}] recovery differential oracle (explicit) ==="
    run_explicit "${dir}/tests/recovery_differential_test" \
      --gtest_filter='RecoveryDifferentialTest.HundredRandomKillRestoreTrialsMatchSerial'
    # The rebalance sweep forces mid-stream migrations (slot
    # reshuffles and elastic grow/shrink) at random punctuation
    # boundaries; under TSan it proves the migrate barrier really
    # parks every worker before the capture/merge/re-split and the
    # ShardMap swap publish, under ASan that state handed between
    # operator generations outlives the replicas it left.
    echo "=== [${name}] rebalance differential sweep (explicit) ==="
    run_explicit "${dir}/tests/rebalance_differential_test" \
      --gtest_filter='RebalanceDifferentialTest.HundredTrialsWithForcedMidStreamMigrations'
  fi
}

# Release build with benchmarks ON, run on deliberately tiny inputs:
# a correctness smoke (each binary CHECKs serial/parallel/partitioned
# result equality internally), not a measurement.
run_bench_smoke() {
  local dir="${BUILD_ROOT}/bench"
  echo "=== [bench] configure (Release, benchmarks ON) ==="
  cmake -B "${dir}" -S "${ROOT}" \
    -DCMAKE_BUILD_TYPE=Release \
    -DPUNCTSAFE_BUILD_BENCHMARKS=ON \
    -DPUNCTSAFE_BUILD_EXAMPLES=OFF
  echo "=== [bench] build ==="
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== [bench] smoke: bench_parallel_pipeline (+metrics export) ==="
  "${dir}/bench/bench_parallel_pipeline" \
    --streams 3 --generations 10 --iters 1 --shards 2 \
    --metrics-out "${dir}/metrics.jsonl"
  echo "=== [bench] metrics report (tools/obs_report.py) ==="
  python3 "${ROOT}/tools/obs_report.py" "${dir}/metrics.jsonl"
  echo "=== [bench] smoke: bench_partitioned_join (zipf + rebalance) ==="
  # Hosted CI runners have >= 4 hardware threads, so this leg — unlike
  # a 1-core dev box, where the gate self-skips — enforces the
  # rebalanced-vs-serial speedup floor on the skewed trace and the
  # internal migrations>0 / result-equality CHECKs. The JSON (per-shard
  # routed/stall counters, skew, tuples moved) is kept as an artifact.
  "${dir}/bench/bench_partitioned_join" --generations 10 --iters 1 \
    | tee "${dir}/BENCH_partitioned.json"
  echo "=== [bench] smoke: bench_fig3_chained_purge ==="
  "${dir}/bench/bench_fig3_chained_purge" \
    --benchmark_min_time=0.01 --benchmark_filter='windows:20' >/dev/null
  echo "=== [bench] hot-path regression gate ==="
  # Default parameters match the checked-in baseline's configuration
  # exactly (rates depend on store size / key cardinality). Fails
  # (exit 1) if any tracked probe/purge rate drops below the gate
  # floor (PUNCTSAFE_BENCH_MIN_RATIO, default 0.75) of
  # BENCH_hot_path.json, printing the measured/baseline ratio table.
  "${dir}/bench/bench_hot_path" --iters 1 \
    --baseline "${ROOT}/BENCH_hot_path.json"
  echo "=== [bench] arena regression gate ==="
  # Gates the arena insert and interleaved insert+purge micro rates at
  # the same floor against BENCH_arena.json; the binary additionally
  # hard-CHECKs steady-state insert_allocs == 0 and arena-on/off
  # end-to-end result equality on every run.
  "${dir}/bench/bench_arena" --iters 1 \
    --baseline "${ROOT}/BENCH_arena.json"
  echo "=== [bench] checkpoint regression gate ==="
  # Gates the snapshot pause (serial captures/sec), PSCK codec
  # throughput, and restore latency against BENCH_checkpoint.json;
  # the parallel barrier rate is reported but not gated (scheduler
  # noise on starved runners). The binary hard-CHECKs
  # kill/restore/replay result equality in both execution modes and
  # split->merge byte identity on every run.
  "${dir}/bench/bench_checkpoint" --iters 1 \
    --baseline "${ROOT}/BENCH_checkpoint.json"
}

for config in ${CONFIGS}; do
  case "${config}" in
    format) "${ROOT}/tools/format.sh" --check ;;
    plain) run_config plain "" ;;
    # Portable-fallback leg: the vectorized batch path (tag matching,
    # hash-run detection) compiled with the scalar reference
    # implementations, full ctest — keeps the non-SIMD path from
    # rotting and cross-checks SIMD results against it indirectly
    # (batch_exec_test compares both on every leg).
    scalar) run_config scalar "" ON ;;
    asan)  run_config asan address ;;
    tsan)  run_config tsan thread ;;
    ubsan) run_config ubsan undefined ;;
    bench) run_bench_smoke ;;
    *) echo "unknown config '${config}'" >&2; exit 1 ;;
  esac
done

echo "=== all configs passed: ${CONFIGS} ==="
