#!/usr/bin/env bash
# CI driver: builds and ctests the plain, AddressSanitizer, and
# ThreadSanitizer configurations (see -DPUNCTSAFE_SANITIZE in the
# top-level CMakeLists.txt). The sanitizer runs are what give the
# parallel executor's differential and queue stress tests their teeth.
#
# Usage: tools/ci.sh [build-root]         (default: ./build-ci)
#   PUNCTSAFE_CI_CONFIGS="plain asan tsan" to run a subset.

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_ROOT="${1:-${ROOT}/build-ci}"
CONFIGS="${PUNCTSAFE_CI_CONFIGS:-plain asan tsan}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

run_config() {
  local name="$1" sanitize="$2"
  local dir="${BUILD_ROOT}/${name}"
  echo "=== [${name}] configure (PUNCTSAFE_SANITIZE='${sanitize}') ==="
  cmake -B "${dir}" -S "${ROOT}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPUNCTSAFE_SANITIZE="${sanitize}" \
    -DPUNCTSAFE_BUILD_BENCHMARKS=OFF \
    -DPUNCTSAFE_BUILD_EXAMPLES=OFF
  echo "=== [${name}] build ==="
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== [${name}] ctest ==="
  (cd "${dir}" && ctest --output-on-failure -j "${JOBS}")
}

for config in ${CONFIGS}; do
  case "${config}" in
    plain) run_config plain "" ;;
    asan)  run_config asan address ;;
    tsan)  run_config tsan thread ;;
    *) echo "unknown config '${config}'" >&2; exit 1 ;;
  esac
done

echo "=== all configs passed: ${CONFIGS} ==="
