#!/usr/bin/env bash
# Compile-only cross-check for every dispatch branch of exec/simd.h.
#
# CI machines only ever *run* one branch (whatever the host CPU is),
# so a typo inside, say, the AVX2 block of FilterEqualHashes would
# survive until someone benchmarks on wide hardware. This script
# compiles a translation unit that odr-uses every simd helper once
# per reachable branch:
#   * host      — the default dispatch (SSE2 on x86-64 CI runners);
#   * avx2      — -mavx2, if the compiler accepts it for this target;
#   * neon      — only where <arm_neon.h> targets the host (aarch64);
#     skipped, not failed, elsewhere — there is no cross-compiler in
#     the CI image;
#   * scalar    — -DPUNCTSAFE_NO_SIMD, the portable fallback.
# Compile-only (-c): no linking, no execution — behavioral equivalence
# of the branches is covered by batch_exec_test and the scalar ctest
# leg; this guards "does the branch even build".
#
# Usage: tools/simd_crosscheck.sh   (CXX overrides the compiler)

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
CXX="${CXX:-g++}"
WORK="$(mktemp -d)"
trap 'rm -rf "${WORK}"' EXIT

# One TU instantiating each helper, so the compiler has to emit the
# intrinsic-bearing bodies rather than just parse the header.
cat > "${WORK}/probe.cc" <<'EOF'
#include "exec/simd.h"

#include <cstdint>

namespace {
uint64_t hashes[8] = {1, 1, 2, 3, 3, 3, 4, 5};
uint8_t tags[16] = {0};
uint32_t idx[8];
}  // namespace

const char* probe_dispatch() { return punctsafe::simd::kDispatchName; }

size_t probe_all() {
  size_t n = punctsafe::simd::HashRunLength(hashes, 8);
  n += punctsafe::simd::MatchTags16(tags, 3);
  n += punctsafe::simd::FilterEqualHashes(hashes, hashes + 0, 8, idx);
  return n;
}
EOF

compiles_with() {
  "${CXX}" -std=c++17 -O2 -c "$@" -I "${ROOT}/src" \
    "${WORK}/probe.cc" -o "${WORK}/probe.o" 2> "${WORK}/err.txt"
}

flag_supported() {
  echo 'int main() { return 0; }' > "${WORK}/flag.cc"
  "${CXX}" "$@" -fsyntax-only "${WORK}/flag.cc" 2>/dev/null
}

failures=0

check_leg() {
  local name="$1"
  shift
  echo "--- simd_crosscheck: ${name} ($*)"
  if compiles_with "$@"; then
    echo "    OK"
  else
    echo "    FAILED:"
    sed 's/^/    /' "${WORK}/err.txt"
    failures=$((failures + 1))
  fi
}

check_leg host
check_leg scalar -DPUNCTSAFE_NO_SIMD

if flag_supported -mavx2; then
  check_leg avx2 -mavx2
else
  echo "--- simd_crosscheck: avx2 SKIPPED (-mavx2 not supported by ${CXX})"
fi

# NEON needs an aarch64 target; probe whether the NEON branch is even
# reachable for this compiler before attempting it.
echo '#include <arm_neon.h>' > "${WORK}/neon.cc"
if "${CXX}" -fsyntax-only "${WORK}/neon.cc" 2>/dev/null; then
  check_leg neon
else
  echo "--- simd_crosscheck: neon SKIPPED (host toolchain does not" \
       "target aarch64; branch is covered on arm64 runners)"
fi

if [ "${failures}" -ne 0 ]; then
  echo "simd_crosscheck: ${failures} branch(es) failed to build" >&2
  exit 1
fi
echo "simd_crosscheck: all reachable branches build"
