// punctsafe_serve: the multi-query ingestion server as a command-line
// tool (docs/SERVER.md documents the wire protocol).
//
//   punctsafe_serve [--port N] [--shards N] [--batch N] [--parallel]
//
// Binds 127.0.0.1 (port 0 = ephemeral; the bound port is printed
// either way, so scripts can parse `listening on 127.0.0.1:<port>`),
// then runs the event loop until SIGINT/SIGTERM. Talk to it with any
// line client, e.g.:
//
//   nc 127.0.0.1 <port>
//   CREATE STREAM item id:int price:double
//   REGISTER QUERY q AS scheme item id; query item item2; join ...
//   SUBSCRIBE q
//   PUSH item 1 9.99

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "server/query_registry.h"
#include "server/server.h"

using namespace punctsafe;

namespace {

server::IngestServer* g_server = nullptr;

void HandleSignal(int /*sig*/) {
  // Async-signal-safe: only flips an atomic and writes the wakeup
  // pipe; the main thread joins/reaps after Run returns.
  if (g_server != nullptr) g_server->RequestStop();
}

int Usage(int code) {
  std::fprintf(stderr,
               "usage: punctsafe_serve [--port N] [--shards N] [--batch N] "
               "[--parallel]\n");
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  server::ServerConfig server_config;
  ExecutorConfig exec_config;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next_int = [&](long* out) {
      if (i + 1 >= argc) return false;
      *out = std::strtol(argv[++i], nullptr, 10);
      return true;
    };
    long v = 0;
    if (arg == "--port" && next_int(&v)) {
      server_config.port = static_cast<uint16_t>(v);
    } else if (arg == "--shards" && next_int(&v) && v > 0) {
      exec_config.shards = static_cast<size_t>(v);
    } else if (arg == "--batch" && next_int(&v) && v > 0) {
      exec_config.batch_size = static_cast<size_t>(v);
    } else if (arg == "--parallel") {
      exec_config.mode = ExecutionMode::kParallel;
    } else if (arg == "--help" || arg == "-h") {
      return Usage(0);
    } else {
      std::fprintf(stderr, "punctsafe_serve: unknown argument '%s'\n",
                   arg.c_str());
      return Usage(1);
    }
  }

  server::QueryRegistry registry(exec_config);
  auto srv = server::IngestServer::Listen(&registry, server_config);
  if (!srv.ok()) {
    std::fprintf(stderr, "punctsafe_serve: %s\n",
                 srv.status().ToString().c_str());
    return 1;
  }
  std::printf("punctsafe_serve: listening on 127.0.0.1:%u\n",
              (*srv)->port());
  std::fflush(stdout);

  g_server = srv->get();
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  (*srv)->Run();
  (*srv)->Stop();  // reap connections; idempotent
  std::printf("punctsafe_serve: shut down\n");
  return 0;
}
