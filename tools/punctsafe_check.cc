// punctsafe_check: command-line safety analysis for a CJQ spec.
//
//   punctsafe_check <spec-file>        full analysis report
//   punctsafe_check --dot <spec-file>  Graphviz of the (G)PG instead
//
// The spec format is documented in query/spec_parser.h. Exit code 0
// when the query is safe, 2 when unsafe, 1 on input errors — so the
// tool slots into CI pipelines that gate stream-query deployments the
// way the paper's query register gates registration.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/generalized_punctuation_graph.h"
#include "core/naive_checker.h"
#include "core/punctuation_graph.h"
#include "core/safety_checker.h"
#include "plan/enumerator.h"
#include "plan/scheme_selection.h"
#include "query/spec_parser.h"

using namespace punctsafe;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "punctsafe_check: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool dot = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--dot") {
      dot = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: punctsafe_check [--dot] <spec-file>\n");
      return 0;
    } else {
      path = argv[i];
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr, "usage: punctsafe_check [--dot] <spec-file>\n");
    return 1;
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "punctsafe_check: cannot open %s\n", path);
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  auto spec = ParseSpec(buffer.str());
  if (!spec.ok()) return Fail(spec.status());
  auto query = spec->MakeQuery();
  if (!query.ok()) return Fail(query.status());

  if (dot) {
    SchemeSet relevant = spec->schemes.Restrict(query->streams());
    if (relevant.AllSimple()) {
      std::printf("%s", PunctuationGraph::Build(*query, relevant)
                            .ToDot(*query)
                            .c_str());
    } else {
      std::printf("%s", GeneralizedPunctuationGraph::Build(*query, relevant)
                            .ToDot(*query)
                            .c_str());
    }
    return 0;
  }

  SafetyChecker checker(spec->schemes);
  auto report = checker.CheckQuery(*query);
  if (!report.ok()) return Fail(report.status());

  std::printf("%s\n", report->explanation.c_str());
  std::printf("\nper-stream purgeability (Theorem 1/3):\n");
  for (const StreamPurgeability& v : report->per_stream) {
    std::printf("  %-12s %s\n", query->stream(v.stream).c_str(),
                v.purgeable ? "purgeable" : "NOT purgeable");
    if (v.purge_plan.has_value()) {
      std::printf("    %s\n", v.purge_plan->ToString(*query).c_str());
    }
  }

  if (report->safe && query->num_streams() <= 8) {
    SafePlanEnumerator enumerator(*query, spec->schemes);
    auto plans = enumerator.EnumerateSafePlans(64);
    if (plans.ok()) {
      std::printf("\nsafe execution plans (%zu of %llu shapes%s):\n",
                  plans->size(),
                  static_cast<unsigned long long>(
                      CountAllShapes(query->num_streams())),
                  enumerator.limit_reached() ? ", truncated" : "");
      for (const PlanShape& p : *plans) {
        std::printf("  %s\n", p.ToString(*query).c_str());
      }
    }
    auto minimal = MinimalSafeSchemeSubset(*query, spec->schemes);
    if (minimal.ok()) {
      std::printf("\nminimal scheme subset keeping the query safe: %s\n",
                  minimal->ToString().c_str());
    }
  }
  return report->safe ? 0 : 2;
}
