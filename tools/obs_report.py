#!/usr/bin/env python3
"""Renders punctsafe metrics JSONL (obs::MetricsExporter output) as
human-readable tables.

Usage:
  tools/obs_report.py metrics.jsonl [more.jsonl ...]
  bench_parallel_pipeline --metrics-out - | tools/obs_report.py -

By default only the last snapshot per (file, executor) pair is shown —
the quiescent end-of-run state; --all renders every line. Only the
Python standard library is used, so the script runs anywhere CI does.
"""

import argparse
import json
import sys


def fmt_ns(ns):
    """Nanoseconds to a compact human unit."""
    ns = float(ns)
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.1f}{unit}"
    return f"{ns:.0f}ns"


def fmt_count(n):
    n = float(n)
    for unit, scale in (("G", 1e9), ("M", 1e6), ("k", 1e3)):
        if n >= scale:
            return f"{n / scale:.1f}{unit}"
    return f"{n:.0f}"


def hist_cell(h, fmt):
    if not h or h.get("count", 0) == 0:
        return "-"
    return f"{fmt(h['p50'])}/{fmt(h['p95'])}/{fmt(h['p99'])}"


def render_snapshot(snap, out):
    head = (
        f"executor={snap.get('executor', '?')}"
        f" seq={snap.get('seq', '?')}"
        f" results={fmt_count(snap.get('results', 0))}"
        f" live_tuples={snap.get('live_tuples', 0)}"
        f" tuple_hw={snap.get('tuple_high_water', 0)}"
        f" punct_hw={snap.get('punctuation_high_water', 0)}"
    )
    # Execution-mode tags (absent in pre-v2 JSONL): which SIMD dispatch
    # produced the run and the configured batch capacity.
    if snap.get("simd_dispatch"):
        head += f" simd={snap['simd_dispatch']}"
    if snap.get("batch_size"):
        head += f" batch={snap['batch_size']}"
    migrations = snap.get("rebalance_migrations", 0)
    if migrations:
        head += (
            f" migrations={migrations}"
            f" tuples_moved={fmt_count(snap.get('rebalance_tuples_moved', 0))}"
        )
    print(head, file=out)

    ops = snap.get("operators", [])
    if not ops:
        print("  (no operator entries: observability was off)\n", file=out)
        return

    # Rebalancer columns only render when some group carries the
    # signal (rebalance tracking enabled / a migration happened), so
    # the common no-rebalance table stays narrow.
    rebalancing = any(
        e.get("shard_map_version", 0) or e.get("skew", 1.0) != 1.0
        for e in ops
    )
    cols = [
        ("op/shard", lambda e: f"{e['op']}/{e['shard']}"
         + ("*" if e.get("partitioned") else "")),
        ("ins", lambda e: fmt_count(e.get("inserted", 0))),
        ("purged", lambda e: fmt_count(e.get("purged", 0))),
        ("live", lambda e: fmt_count(e.get("live", 0))),
        ("hw", lambda e: fmt_count(e.get("high_water", 0))),
        ("emit", lambda e: fmt_count(e.get("results_emitted", 0))),
        ("puncts", lambda e: fmt_count(e.get("puncts_received", 0))),
        ("routed", lambda e: fmt_count(e.get("routed_tuples", 0))),
        ("stalls", lambda e: fmt_count(e.get("queue_stalls", 0))),
        ("lat p50/95/99", lambda e: hist_cell(e.get("latency_ns"), fmt_ns)),
        ("plag p50/95/99",
         lambda e: hist_cell(e.get("punct_lag"), fmt_count)),
        ("sweep p50/95/99",
         lambda e: hist_cell(e.get("sweep_ns"), fmt_ns)),
        ("qdepth p50/95/99",
         lambda e: hist_cell(e.get("queue_depth"), fmt_count)),
        ("trace", lambda e: fmt_count(e.get("trace_recorded", 0))
         + (f"(-{fmt_count(e['trace_dropped'])})"
            if e.get("trace_dropped") else "")),
    ]
    if rebalancing:
        cols[1:1] = [
            ("act", lambda e: f"{e.get('active_shards', 1)}"
             f"/{e.get('num_shards', 1)}"),
            ("mapv", lambda e: str(e.get("shard_map_version", 0))),
            ("skew", lambda e: f"{e.get('skew', 1.0):.2f}"),
        ]
    rows = [[name for name, _ in cols]]
    rows += [[cell(e) for _, cell in cols] for e in ops]
    widths = [max(len(r[i]) for r in rows) for i in range(len(cols))]
    for j, row in enumerate(rows):
        line = "  " + "  ".join(c.rjust(w) for c, w in zip(row, widths))
        print(line, file=out)
        if j == 0:
            print("  " + "-" * (len(line) - 2), file=out)
    print("  (* = hash-partitioned operator group)\n", file=out)


def load_lines(path):
    stream = sys.stdin if path == "-" else open(path, encoding="utf-8")
    with stream:
        for lineno, line in enumerate(stream, 1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as err:
                print(f"{path}:{lineno}: skipping bad JSON ({err})",
                      file=sys.stderr)


def main():
    parser = argparse.ArgumentParser(
        description="Render punctsafe metrics JSONL as tables.")
    parser.add_argument("files", nargs="+",
                        help="JSONL files from obs::MetricsExporter"
                             " ('-' for stdin)")
    parser.add_argument("--all", action="store_true",
                        help="render every snapshot line, not just the"
                             " last one per executor")
    args = parser.parse_args()

    exit_code = 0
    for path in args.files:
        print(f"== {path} ==")
        snaps = list(load_lines(path))
        if not snaps:
            print("  (no snapshots)\n")
            exit_code = 1
            continue
        if not args.all:
            last = {}
            for snap in snaps:
                last[snap.get("executor", "?")] = snap
            snaps = list(last.values())
        for snap in snaps:
            render_snapshot(snap, sys.stdout)
    return exit_code


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Piped into `head`/`less` that exited early — not an error.
        sys.exit(0)
