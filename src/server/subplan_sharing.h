// Cross-query sub-plan sharing for the multi-query ingestion server
// (docs/SERVER.md): when two registered queries contain syntactically
// identical *safe* sub-joins, the per-stream punctuation state those
// sub-joins accumulate is identical too — "Safe Subjoins in Acyclic
// Joins" (PAPERS.md) gives the theory for why safety of the sub-join
// is the sharing precondition. This module detects such sub-joins and
// shares their punctuation stores behind a refcounted handle; sharing
// the full sub-join *tuple* state is the recorded follow-up, and the
// interface already carries the decision a full implementation needs.
//
// Identity is syntactic and conservative: the canonical signature
// folds in the sorted stream set, the canonicalized equi-join
// predicates, and the punctuation schemes relevant to those streams.
// Queries registered with different schemes on the same join
// therefore never share (their purge behavior differs), and unsafe
// sub-joins never share (their punctuation state is not a sufficient
// summary — exactly the paper's unbounded case).

#ifndef PUNCTSAFE_SERVER_SUBPLAN_SHARING_H_
#define PUNCTSAFE_SERVER_SUBPLAN_SHARING_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "exec/punctuation_store.h"
#include "query/cjq.h"
#include "query/plan_shape.h"
#include "stream/scheme.h"

namespace punctsafe {
namespace server {

/// \brief One sub-join of a registered plan: an internal plan node
/// spanning >= 2 streams, restricted to the predicates among them.
struct SubjoinSpec {
  /// Canonical identity (see SubjoinSignature).
  std::string signature;
  /// Stream names of the sub-join, sorted ascending.
  std::vector<std::string> streams;
  /// True iff the restricted sub-query passed the safety check — the
  /// precondition for sharing its state across queries.
  bool safe = false;
};

/// \brief Canonical signature of a sub-join: sorted stream names,
/// sorted "s.a=s.b" predicate renderings (lexicographically smaller
/// side first), and the restricted scheme set. Two sub-joins share
/// iff their signatures are byte-identical.
std::string SubjoinSignature(const ContinuousJoinQuery& query,
                             const std::vector<size_t>& streams,
                             const SchemeSet& schemes);

/// \brief Enumerates the sub-joins of `shape` over `query` — one per
/// internal node — marking each safe iff the sub-query restricted to
/// the node's leaves (streams, predicates among them, schemes on
/// them) passes the SafetyChecker. Nodes whose restriction is not a
/// valid CJQ (disconnected sub-join) are reported unsafe: a shared
/// cross-product summary is never state-bounded.
std::vector<SubjoinSpec> EnumerateSubjoins(const ContinuousJoinQuery& query,
                                           const SchemeSet& schemes,
                                           const PlanShape& shape);

/// \brief The shared state of one sub-join signature: a punctuation
/// store per participating stream, fed once per ingested punctuation
/// by the registry regardless of how many queries hold the handle.
class SharedSubjoinState {
 public:
  explicit SharedSubjoinState(SubjoinSpec spec) : spec_(std::move(spec)) {}

  const SubjoinSpec& spec() const { return spec_; }

  bool Involves(const std::string& stream) const;

  /// \brief Records a punctuation observed on `stream` at `now`;
  /// ignored (returns false) for streams outside the sub-join.
  bool AddPunctuation(const std::string& stream, const Punctuation& p,
                      int64_t now);

  /// \brief Live punctuations summed over the per-stream stores.
  size_t TotalPunctuations() const;

  /// \brief The shared store for `stream`, or nullptr.
  const PunctuationStore* StoreFor(const std::string& stream) const;

 private:
  SubjoinSpec spec_;
  // Ordered so STATS output is deterministic.
  std::map<std::string, PunctuationStore> stores_;
};

using SharedSubjoinHandle = std::shared_ptr<SharedSubjoinState>;

/// \brief The registry-wide sharing table: signature -> live shared
/// state. Handles are refcounted; a signature's state dies with the
/// last query holding it (weak entries are pruned lazily).
class SubjoinSharingTable {
 public:
  /// \brief Returns the live handle for `spec.signature`, creating it
  /// if absent. `*was_shared` reports whether another query already
  /// held it — the sharing decision surfaced at registration.
  SharedSubjoinHandle Acquire(const SubjoinSpec& spec, bool* was_shared);

  /// \brief Queries currently holding the signature's handle (0 when
  /// dead/unknown). Counts only query-held references.
  size_t Sharers(const std::string& signature) const;

  /// \brief Live states whose sub-join involves `stream`, each once.
  std::vector<SharedSubjoinHandle> StatesFor(const std::string& stream);

  /// \brief Live shared states in signature order (dead entries are
  /// skipped; pruning happens on the next StatesFor).
  std::vector<SharedSubjoinHandle> LiveStates() const;

 private:
  std::map<std::string, std::weak_ptr<SharedSubjoinState>> by_signature_;
};

}  // namespace server
}  // namespace punctsafe

#endif  // PUNCTSAFE_SERVER_SUBPLAN_SHARING_H_
