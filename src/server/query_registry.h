// QueryRegistry: the multi-query catalog of the ingestion server
// (docs/SERVER.md). Where QueryRegister admits ONE query per instance
// from C++ call sites, the registry serves many concurrent queries
// over shared streams: streams are created once, each registered
// query brings its own punctuation schemes and executor
// configuration, and every ingested tuple/punctuation fans out to all
// queries reading that stream. Registration reuses the full admission
// pipeline (spec_parser -> SafetyChecker -> plan safety), rejecting
// unsafe queries with the checker's witness, and detects
// syntactically identical safe sub-joins across queries, sharing
// their punctuation stores behind refcounted handles
// (server/subplan_sharing.h).
//
// Thread contract: every public method is safe from any thread (one
// coarse mutex — the registry is the single driver of each executor,
// which satisfies the executors' single-driver-thread contract). The
// socket server (server/server.h) calls it from its event loop;
// embedders may call it directly.

#ifndef PUNCTSAFE_SERVER_QUERY_REGISTRY_H_
#define PUNCTSAFE_SERVER_QUERY_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "exec/query_register.h"
#include "server/subplan_sharing.h"
#include "stream/catalog.h"
#include "stream/element.h"
#include "util/status.h"

namespace punctsafe {
namespace server {

/// \brief One sub-join sharing decision surfaced at registration.
struct SubjoinSharing {
  std::string signature;
  std::vector<std::string> streams;
  /// Safety verdict of the restricted sub-join (sharing precondition).
  bool safe = false;
  /// True iff another registered query already held this signature's
  /// shared state when this query acquired it.
  bool shared_at_registration = false;
  /// Queries currently holding the handle (>= 1 for safe sub-joins of
  /// a live query; 0 for unsafe ones, which acquire nothing).
  size_t sharers = 0;
};

/// \brief What RegisterQuery reports back to the client.
struct RegistrationInfo {
  std::string id;
  /// Rendered plan shape, e.g. "[item bid]".
  std::string plan;
  /// The admission verdict (always safe here — unsafe registrations
  /// return an error instead), with the checker's explanation.
  SafetyReport safety;
  /// Sub-join sharing decisions, safe and unsafe alike.
  std::vector<SubjoinSharing> subjoins;
  /// How many of this query's safe sub-joins were already held by
  /// other queries (the "state saved" signal).
  size_t shared_subjoins = 0;
};

class QueryRegistry {
 public:
  /// \param default_config executor configuration applied to
  ///        registrations that do not override it (keep_results is
  ///        forced on — the registry owns result draining).
  explicit QueryRegistry(ExecutorConfig default_config = {})
      : default_config_(std::move(default_config)) {}

  /// \brief Registers a stream schema (protocol `CREATE STREAM`).
  Status CreateStream(const std::string& name, Schema schema);

  /// \brief Admits a query (protocol `REGISTER QUERY id AS spec`).
  /// `spec_text` is spec_parser syntax (';' = newline) carrying
  /// scheme/query/join lines; every referenced stream must already
  /// exist (stream lines are rejected — streams are shared state,
  /// created via CreateStream). The safety check runs at registration
  /// and unsafe queries are rejected with the checker's witness in
  /// the status message.
  Result<RegistrationInfo> RegisterQuery(
      const std::string& id, const std::string& spec_text,
      std::optional<ExecutorConfig> config = std::nullopt);

  /// \brief Drops a query; its shared sub-join handles are released
  /// (shared state dies with the last holder).
  Status UnregisterQuery(const std::string& id);

  bool HasQuery(const std::string& id) const;
  std::vector<std::string> QueryIds() const;

  /// \brief Fans a tuple out to every query reading `stream`. Without
  /// an explicit timestamp the registry's logical clock stamps it.
  Status PushTuple(const std::string& stream, const Tuple& tuple,
                   std::optional<int64_t> ts = std::nullopt);

  /// \brief Fans a punctuation out to every query reading `stream`
  /// and into the shared sub-join punctuation stores (once per shared
  /// state, however many queries hold it).
  Status PushPunctuation(const std::string& stream, const Punctuation& p,
                         std::optional<int64_t> ts = std::nullopt);

  /// \brief Barrier: flushes/drains every executor so all results of
  /// prior pushes are observable via TakeResults (protocol `DRAIN`).
  Status DrainAll(std::optional<int64_t> ts = std::nullopt);

  /// \brief Moves out the results `id` emitted since the last take
  /// (subscriber streaming; arrival order preserved per query).
  Result<std::vector<Tuple>> TakeResults(const std::string& id);

  /// \brief Sharing decisions of a registered query, with live
  /// sharer counts.
  Result<std::vector<SubjoinSharing>> SharingFor(const std::string& id) const;

  /// \brief Registry-wide stats as ordered key/value pairs (protocol
  /// `STATS`).
  std::vector<std::pair<std::string, std::string>> Stats() const;

  /// \brief Copy of the stream catalog (schema lookups for protocol
  /// parsing).
  StreamCatalog CatalogSnapshot() const;

  /// \brief Schema of one stream (what protocol value parsing needs
  /// per PUSH/PUNCT, without copying the whole catalog).
  Result<Schema> SchemaFor(const std::string& stream) const;

  /// \brief The configuration registrations start from (immutable
  /// after construction).
  const ExecutorConfig& default_config() const { return default_config_; }

  /// \brief Current logical ingestion clock.
  int64_t clock() const;

 private:
  struct Entry {
    RegisteredQuery rq;
    SchemeSet schemes;
    std::vector<SharedSubjoinHandle> handles;  // safe sub-joins only
    std::vector<SubjoinSharing> subjoins;      // decisions, all sub-joins
    uint64_t tuples_in = 0;
    uint64_t punctuations_in = 0;
  };

  // Stamps an element: explicit timestamps advance the clock, implicit
  // ones tick it.
  int64_t ResolveTimestamp(std::optional<int64_t> ts);

  mutable std::mutex mu_;
  ExecutorConfig default_config_;
  StreamCatalog catalog_;
  std::map<std::string, Entry> queries_;  // ordered for stable STATS
  SubjoinSharingTable sharing_;
  int64_t clock_ = 0;
};

}  // namespace server
}  // namespace punctsafe

#endif  // PUNCTSAFE_SERVER_QUERY_REGISTRY_H_
