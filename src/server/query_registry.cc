#include "server/query_registry.h"

#include <algorithm>

#include "query/spec_parser.h"
#include "util/string_util.h"

namespace punctsafe {
namespace server {

namespace {

// Query ids travel on protocol lines; keep them one clean token.
Status ValidateQueryId(const std::string& id) {
  if (id.empty()) {
    return Status::InvalidArgument("query id must be non-empty");
  }
  for (char c : id) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      return Status::InvalidArgument(
          StrCat("query id '", id, "' must not contain whitespace"));
    }
  }
  return Status::OK();
}

// Punctuation patterns must instantiate the stream's schema: matching
// arity, constants of the attribute's type.
Status ValidatePunctuation(const std::string& stream, const Schema& schema,
                           const Punctuation& p) {
  if (p.arity() != schema.num_attributes()) {
    return Status::InvalidArgument(
        StrCat("punctuation arity ", p.arity(), " != stream '", stream,
               "' arity ", schema.num_attributes()));
  }
  for (size_t i = 0; i < p.arity(); ++i) {
    const Pattern& pattern = p.pattern(i);
    if (pattern.is_wildcard()) continue;
    ValueType expect = schema.attribute(i).type;
    if (pattern.constant().type() != expect) {
      return Status::InvalidArgument(
          StrCat("punctuation constant ", pattern.constant().ToString(),
                 " at attribute '", schema.attribute(i).name, "' is not ",
                 ValueTypeToString(expect)));
    }
  }
  return Status::OK();
}

}  // namespace

Status QueryRegistry::CreateStream(const std::string& name, Schema schema) {
  std::lock_guard<std::mutex> lock(mu_);
  return catalog_.Register(name, std::move(schema));
}

Result<RegistrationInfo> QueryRegistry::RegisterQuery(
    const std::string& id, const std::string& spec_text,
    std::optional<ExecutorConfig> config) {
  std::lock_guard<std::mutex> lock(mu_);
  PUNCTSAFE_RETURN_IF_ERROR(ValidateQueryId(id));
  if (queries_.count(id) > 0) {
    return Status::AlreadyExists(
        StrCat("query '", id, "' is already registered"));
  }

  PUNCTSAFE_ASSIGN_OR_RETURN(ParsedSpec spec, ParseSpec(spec_text, catalog_));
  if (spec.catalog.size() != catalog_.size()) {
    return Status::InvalidArgument(
        "query specs must not declare streams — streams are shared state, "
        "create them first (CREATE STREAM)");
  }

  ExecutorConfig cfg = config.value_or(default_config_);
  cfg.keep_results = true;  // the registry owns result draining

  // Per-query admission: the server catalog plus the spec's schemes,
  // through the full QueryRegister pipeline (validation, safety check
  // with witness, plan safety, executor instantiation).
  QueryRegister reg(catalog_);
  for (const PunctuationScheme& scheme : spec.schemes.schemes()) {
    PUNCTSAFE_RETURN_IF_ERROR(reg.RegisterScheme(scheme));
  }
  PUNCTSAFE_ASSIGN_OR_RETURN(
      RegisteredQuery rq,
      reg.Register(spec.query_streams, spec.predicates, cfg));

  Entry entry;
  entry.schemes = spec.schemes;
  for (const SubjoinSpec& sub :
       EnumerateSubjoins(rq.query, spec.schemes, rq.shape)) {
    SubjoinSharing decision;
    decision.signature = sub.signature;
    decision.streams = sub.streams;
    decision.safe = sub.safe;
    if (sub.safe) {
      bool was_shared = false;
      entry.handles.push_back(sharing_.Acquire(sub, &was_shared));
      decision.shared_at_registration = was_shared;
    }
    decision.sharers = sharing_.Sharers(sub.signature);
    entry.subjoins.push_back(std::move(decision));
  }

  RegistrationInfo info;
  info.id = id;
  info.plan = rq.shape.ToString(rq.query);
  info.safety = rq.safety;
  info.subjoins = entry.subjoins;
  for (const SubjoinSharing& d : entry.subjoins) {
    if (d.safe && d.shared_at_registration) ++info.shared_subjoins;
  }

  entry.rq = std::move(rq);
  queries_.emplace(id, std::move(entry));
  return info;
}

Status QueryRegistry::UnregisterQuery(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound(StrCat("query '", id, "' is not registered"));
  }
  queries_.erase(it);  // releases the shared sub-join handles
  return Status::OK();
}

bool QueryRegistry::HasQuery(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return queries_.count(id) > 0;
}

std::vector<std::string> QueryRegistry::QueryIds() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(queries_.size());
  for (const auto& [id, entry] : queries_) out.push_back(id);
  return out;
}

int64_t QueryRegistry::ResolveTimestamp(std::optional<int64_t> ts) {
  if (ts.has_value()) {
    clock_ = std::max(clock_, *ts);
    return *ts;
  }
  return ++clock_;
}

Status QueryRegistry::PushTuple(const std::string& stream, const Tuple& tuple,
                                std::optional<int64_t> ts) {
  std::lock_guard<std::mutex> lock(mu_);
  PUNCTSAFE_ASSIGN_OR_RETURN(const Schema* schema, catalog_.Get(stream));
  PUNCTSAFE_RETURN_IF_ERROR(tuple.MatchesSchema(*schema));
  int64_t now = ResolveTimestamp(ts);
  for (auto& [id, entry] : queries_) {
    auto idx = entry.rq.query.StreamIndex(stream);
    if (!idx.has_value()) continue;
    if (entry.rq.is_parallel()) {
      entry.rq.parallel_executor->PushTuple(*idx, tuple, now);
    } else {
      entry.rq.executor->PushTuple(*idx, tuple, now);
    }
    ++entry.tuples_in;
  }
  return Status::OK();
}

Status QueryRegistry::PushPunctuation(const std::string& stream,
                                      const Punctuation& p,
                                      std::optional<int64_t> ts) {
  std::lock_guard<std::mutex> lock(mu_);
  PUNCTSAFE_ASSIGN_OR_RETURN(const Schema* schema, catalog_.Get(stream));
  PUNCTSAFE_RETURN_IF_ERROR(ValidatePunctuation(stream, *schema, p));
  int64_t now = ResolveTimestamp(ts);
  for (auto& [id, entry] : queries_) {
    auto idx = entry.rq.query.StreamIndex(stream);
    if (!idx.has_value()) continue;
    if (entry.rq.is_parallel()) {
      entry.rq.parallel_executor->PushPunctuation(*idx, p, now);
    } else {
      entry.rq.executor->PushPunctuation(*idx, p, now);
    }
    ++entry.punctuations_in;
  }
  // Shared sub-join punctuation state advances once per shared store,
  // however many queries hold the handle.
  for (const SharedSubjoinHandle& shared : sharing_.StatesFor(stream)) {
    shared->AddPunctuation(stream, p, now);
  }
  return Status::OK();
}

Status QueryRegistry::DrainAll(std::optional<int64_t> ts) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t now = ts.value_or(clock_);
  clock_ = std::max(clock_, now);
  for (auto& [id, entry] : queries_) {
    if (entry.rq.is_parallel()) {
      PUNCTSAFE_RETURN_IF_ERROR(entry.rq.parallel_executor->Drain(now));
    } else {
      entry.rq.executor->FlushIngest();
      entry.rq.executor->SweepAll(now);
    }
  }
  return Status::OK();
}

Result<std::vector<Tuple>> QueryRegistry::TakeResults(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound(StrCat("query '", id, "' is not registered"));
  }
  if (it->second.rq.is_parallel()) {
    return it->second.rq.parallel_executor->TakeResults();
  }
  return it->second.rq.executor->TakeResults();
}

Result<std::vector<SubjoinSharing>> QueryRegistry::SharingFor(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound(StrCat("query '", id, "' is not registered"));
  }
  std::vector<SubjoinSharing> out = it->second.subjoins;
  for (SubjoinSharing& d : out) d.sharers = sharing_.Sharers(d.signature);
  return out;
}

std::vector<std::pair<std::string, std::string>> QueryRegistry::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::string>> out;
  out.emplace_back("clock", StrCat(clock_));
  out.emplace_back("streams", StrCat(catalog_.size()));
  if (catalog_.size() > 0) out.emplace_back("catalog", catalog_.ToString());
  out.emplace_back("queries", StrCat(queries_.size()));
  for (const auto& [id, entry] : queries_) {
    uint64_t results = entry.rq.is_parallel()
                           ? entry.rq.parallel_executor->num_results()
                           : entry.rq.executor->num_results();
    size_t live = entry.rq.is_parallel()
                      ? entry.rq.parallel_executor->TotalLiveTuples()
                      : entry.rq.executor->TotalLiveTuples();
    out.emplace_back(
        StrCat("query.", id),
        StrCat("mode=", entry.rq.is_parallel() ? "parallel" : "serial",
               " tuples_in=", entry.tuples_in,
               " punctuations_in=", entry.punctuations_in,
               " results=", results, " live_tuples=", live));
  }
  // Snapshot the shared states, then drop the snapshot's handles
  // before counting sharers: use_count must see only query-held
  // references, not our own temporaries.
  std::vector<std::pair<std::string, size_t>> shared;
  for (const SharedSubjoinHandle& s : sharing_.LiveStates()) {
    shared.emplace_back(s->spec().signature, s->TotalPunctuations());
  }
  out.emplace_back("shared_subjoins", StrCat(shared.size()));
  size_t i = 0;
  for (const auto& [signature, punctuations] : shared) {
    out.emplace_back(StrCat("subjoin.", i++),
                     StrCat("sharers=", sharing_.Sharers(signature),
                            " punctuations=", punctuations, " ", signature));
  }
  return out;
}

StreamCatalog QueryRegistry::CatalogSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return catalog_;
}

Result<Schema> QueryRegistry::SchemaFor(const std::string& stream) const {
  std::lock_guard<std::mutex> lock(mu_);
  PUNCTSAFE_ASSIGN_OR_RETURN(const Schema* schema, catalog_.Get(stream));
  return *schema;
}

int64_t QueryRegistry::clock() const {
  std::lock_guard<std::mutex> lock(mu_);
  return clock_;
}

}  // namespace server
}  // namespace punctsafe
