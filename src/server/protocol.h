// The ingestion server's newline-delimited text protocol
// (docs/SERVER.md has the full grammar). One request per line; the
// server answers each request with one or more response lines and
// pushes subscribed results as unsolicited `RESULT` lines:
//
//   CREATE STREAM <name> <attr>:<type>...   -> OK stream <name> ...
//   REGISTER QUERY <id> [WITH k=v ...] AS <spec ';'-separated>
//   PUSH <stream> [@<ts>] <value>...        -> OK
//   PUNCT <stream> [@<ts>] <pattern>...     -> OK   (pattern: * or value)
//   SUBSCRIBE <id> / UNSUBSCRIBE <id>
//   UNREGISTER <id>
//   DRAIN [@<ts>]                           -> barrier, results flushed
//   STATS                                   -> STAT <key> <value>... OK
//   PING / QUIT
//
// Errors come back as one `ERR <Code>: <message>` line (newlines in
// messages — e.g. multi-line safety witnesses — are flattened), so a
// rejected registration reports its unsafety witness instead of
// killing the connection. Values are single whitespace-free tokens;
// strings may be double-quoted (quotes are stripped; no escapes).
//
// ProcessLine is the whole command surface, independent of sockets:
// the server (server/server.h) frames bytes into lines and pumps
// results; tests drive the same path without a network.

#ifndef PUNCTSAFE_SERVER_PROTOCOL_H_
#define PUNCTSAFE_SERVER_PROTOCOL_H_

#include <set>
#include <string>
#include <vector>

#include "server/query_registry.h"
#include "stream/punctuation.h"
#include "stream/schema.h"
#include "stream/tuple.h"
#include "util/status.h"

namespace punctsafe {
namespace server {

/// \brief Per-connection protocol state.
struct Session {
  /// Query ids this connection receives RESULT lines for.
  std::set<std::string> subscriptions;
  /// Set by QUIT: the transport should close after flushing.
  bool quit = false;
};

/// \brief Whitespace-splits a protocol line (values are single
/// tokens).
std::vector<std::string> Tokenize(const std::string& line);

/// \brief Parses one literal token as a Value of the schema type.
/// Strings may be double-quoted; int64/double must consume the whole
/// token.
Result<Value> ParseValueToken(const std::string& token, ValueType type);

/// \brief Parses tokens[begin..] as a tuple of `schema` (exact arity).
Result<Tuple> ParseTupleTokens(const Schema& schema,
                               const std::vector<std::string>& tokens,
                               size_t begin);

/// \brief Parses tokens[begin..] as punctuation patterns over
/// `schema`: `*` is the wildcard, anything else a constant of the
/// attribute's type.
Result<Punctuation> ParsePunctuationTokens(
    const Schema& schema, const std::vector<std::string>& tokens,
    size_t begin);

/// \brief One value in protocol form (strings double-quoted — the
/// shape ParseValueToken accepts back).
std::string FormatValue(const Value& v);

/// \brief "RESULT <id> <v>..." line for a subscribed result tuple.
std::string FormatResultLine(const std::string& id, const Tuple& t);

/// \brief "ERR <Code>: <message>" with newlines flattened to "; ".
std::string FormatError(const Status& status);

/// \brief Executes one protocol line against the registry and returns
/// the immediate response lines (no trailing newlines; empty input
/// lines produce no response). RESULT streaming is the transport's
/// job via QueryRegistry::TakeResults.
std::vector<std::string> ProcessLine(QueryRegistry* registry,
                                     Session* session,
                                     const std::string& line);

}  // namespace server
}  // namespace punctsafe

#endif  // PUNCTSAFE_SERVER_PROTOCOL_H_
