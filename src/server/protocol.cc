#include "server/protocol.h"

#include <cerrno>
#include <cstdlib>
#include <optional>
#include <utility>

#include "util/string_util.h"

namespace punctsafe {
namespace server {

namespace {

// Single-token CamelCase code names for `ERR <Code>:` lines (the
// library's StatusCodeToString renderings contain spaces).
const char* CodeToken(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
  }
  return "Unknown";
}

Result<int64_t> ParseInt64Token(const std::string& token) {
  if (token.empty()) return Status::InvalidArgument("empty integer token");
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(token.c_str(), &end, 10);
  if (errno != 0 || end != token.c_str() + token.size()) {
    return Status::InvalidArgument(StrCat("'", token, "' is not an integer"));
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDoubleToken(const std::string& token) {
  if (token.empty()) return Status::InvalidArgument("empty double token");
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(token.c_str(), &end);
  if (errno != 0 || end != token.c_str() + token.size()) {
    return Status::InvalidArgument(StrCat("'", token, "' is not a number"));
  }
  return v;
}

// `@<ts>` after the stream name stamps the element explicitly;
// without it the registry's logical clock ticks.
Result<std::optional<int64_t>> ParseTimestampToken(
    const std::vector<std::string>& tokens, size_t* pos) {
  if (*pos >= tokens.size() || tokens[*pos].empty() ||
      tokens[*pos][0] != '@') {
    return std::optional<int64_t>();
  }
  PUNCTSAFE_ASSIGN_OR_RETURN(int64_t ts,
                             ParseInt64Token(tokens[*pos].substr(1)));
  ++(*pos);
  return std::optional<int64_t>(ts);
}

// "attr:type" schema tokens of CREATE STREAM (same types the spec
// parser accepts).
Result<Attribute> ParseAttributeToken(const std::string& token) {
  size_t colon = token.find(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= token.size()) {
    return Status::InvalidArgument(
        StrCat("expected attr:type, got '", token, "'"));
  }
  Attribute attr;
  attr.name = token.substr(0, colon);
  std::string type = token.substr(colon + 1);
  if (type == "int" || type == "int64") {
    attr.type = ValueType::kInt64;
  } else if (type == "double") {
    attr.type = ValueType::kDouble;
  } else if (type == "string") {
    attr.type = ValueType::kString;
  } else {
    return Status::InvalidArgument(StrCat(
        "unknown type '", type, "' (expected int, int64, double, string)"));
  }
  return attr;
}

// "k=v" executor options of REGISTER QUERY ... WITH, layered on the
// registry's default configuration.
Status ApplyExecutorOption(const std::string& token, ExecutorConfig* cfg) {
  size_t eq = token.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size()) {
    return Status::InvalidArgument(
        StrCat("expected key=value option, got '", token, "'"));
  }
  std::string key = token.substr(0, eq);
  std::string value = token.substr(eq + 1);
  if (key == "mode") {
    if (value == "serial") {
      cfg->mode = ExecutionMode::kSerial;
    } else if (value == "parallel") {
      cfg->mode = ExecutionMode::kParallel;
    } else {
      return Status::InvalidArgument(
          StrCat("mode must be serial or parallel, got '", value, "'"));
    }
    return Status::OK();
  }
  if (key == "shards" || key == "batch" || key == "queue") {
    PUNCTSAFE_ASSIGN_OR_RETURN(int64_t n, ParseInt64Token(value));
    if (n <= 0) {
      return Status::InvalidArgument(
          StrCat(key, " must be positive, got ", value));
    }
    if (key == "shards") {
      cfg->shards = static_cast<size_t>(n);
    } else if (key == "batch") {
      cfg->batch_size = static_cast<size_t>(n);
    } else {
      cfg->queue_capacity = static_cast<size_t>(n);
    }
    return Status::OK();
  }
  return Status::InvalidArgument(
      StrCat("unknown option '", key, "' (expected mode, shards, batch, ",
             "queue)"));
}

std::vector<std::string> One(std::string line) {
  std::vector<std::string> out;
  out.push_back(std::move(line));
  return out;
}

Status NeedArgs(const std::vector<std::string>& tokens, size_t n,
                const char* usage) {
  if (tokens.size() < n) {
    return Status::InvalidArgument(StrCat("usage: ", usage));
  }
  return Status::OK();
}

// The command handlers return Result<lines>; ProcessLine renders any
// error as one ERR line.
Result<std::vector<std::string>> Dispatch(
    QueryRegistry* registry, Session* session,
    const std::vector<std::string>& tokens) {
  const std::string& cmd = tokens[0];

  if (cmd == "PING") return One("OK pong");
  if (cmd == "QUIT") {
    session->quit = true;
    return One("OK bye");
  }

  if (cmd == "CREATE") {
    PUNCTSAFE_RETURN_IF_ERROR(NeedArgs(
        tokens, 4, "CREATE STREAM <name> <attr>:<type>..."));
    if (tokens[1] != "STREAM") {
      return Status::InvalidArgument("only CREATE STREAM is supported");
    }
    std::vector<Attribute> attrs;
    for (size_t i = 3; i < tokens.size(); ++i) {
      PUNCTSAFE_ASSIGN_OR_RETURN(Attribute attr,
                                 ParseAttributeToken(tokens[i]));
      attrs.push_back(std::move(attr));
    }
    Schema schema(std::move(attrs));
    std::string rendered = schema.ToString();
    PUNCTSAFE_RETURN_IF_ERROR(
        registry->CreateStream(tokens[2], std::move(schema)));
    return One(StrCat("OK stream ", tokens[2], " ", rendered));
  }

  if (cmd == "REGISTER") {
    const char* usage =
        "REGISTER QUERY <id> [WITH k=v ...] AS <spec, ';'-separated>";
    PUNCTSAFE_RETURN_IF_ERROR(NeedArgs(tokens, 5, usage));
    if (tokens[1] != "QUERY") {
      return Status::InvalidArgument("only REGISTER QUERY is supported");
    }
    const std::string& id = tokens[2];
    size_t pos = 3;
    std::optional<ExecutorConfig> cfg;
    if (tokens[pos] == "WITH") {
      cfg = registry->default_config();
      ++pos;
      while (pos < tokens.size() && tokens[pos] != "AS") {
        PUNCTSAFE_RETURN_IF_ERROR(ApplyExecutorOption(tokens[pos], &*cfg));
        ++pos;
      }
    }
    if (pos >= tokens.size() || tokens[pos] != "AS" ||
        pos + 1 >= tokens.size()) {
      return Status::InvalidArgument(StrCat("usage: ", usage));
    }
    // The spec is the rest of the line; tokens rejoin losslessly
    // because spec syntax is whitespace-separated.
    std::string spec = Join(
        std::vector<std::string>(tokens.begin() + pos + 1, tokens.end()),
        " ");
    PUNCTSAFE_ASSIGN_OR_RETURN(RegistrationInfo info,
                               registry->RegisterQuery(id, spec, cfg));
    return One(StrCat("OK query ", info.id, " subjoins ",
                      info.subjoins.size(), " shared ", info.shared_subjoins,
                      " plan ", info.plan));
  }

  if (cmd == "PUSH" || cmd == "PUNCT") {
    const char* usage = cmd == "PUSH"
                            ? "PUSH <stream> [@<ts>] <value>..."
                            : "PUNCT <stream> [@<ts>] <pattern>...";
    PUNCTSAFE_RETURN_IF_ERROR(NeedArgs(tokens, 3, usage));
    const std::string& stream = tokens[1];
    size_t pos = 2;
    PUNCTSAFE_ASSIGN_OR_RETURN(std::optional<int64_t> ts,
                               ParseTimestampToken(tokens, &pos));
    PUNCTSAFE_ASSIGN_OR_RETURN(Schema schema, registry->SchemaFor(stream));
    if (cmd == "PUSH") {
      PUNCTSAFE_ASSIGN_OR_RETURN(Tuple tuple,
                                 ParseTupleTokens(schema, tokens, pos));
      PUNCTSAFE_RETURN_IF_ERROR(registry->PushTuple(stream, tuple, ts));
    } else {
      PUNCTSAFE_ASSIGN_OR_RETURN(
          Punctuation p, ParsePunctuationTokens(schema, tokens, pos));
      PUNCTSAFE_RETURN_IF_ERROR(registry->PushPunctuation(stream, p, ts));
    }
    return One("OK");
  }

  if (cmd == "SUBSCRIBE") {
    PUNCTSAFE_RETURN_IF_ERROR(NeedArgs(tokens, 2, "SUBSCRIBE <id>"));
    if (!registry->HasQuery(tokens[1])) {
      return Status::NotFound(
          StrCat("query '", tokens[1], "' is not registered"));
    }
    session->subscriptions.insert(tokens[1]);
    return One(StrCat("OK subscribed ", tokens[1]));
  }

  if (cmd == "UNSUBSCRIBE") {
    PUNCTSAFE_RETURN_IF_ERROR(NeedArgs(tokens, 2, "UNSUBSCRIBE <id>"));
    if (session->subscriptions.erase(tokens[1]) == 0) {
      return Status::NotFound(
          StrCat("not subscribed to query '", tokens[1], "'"));
    }
    return One(StrCat("OK unsubscribed ", tokens[1]));
  }

  if (cmd == "UNREGISTER") {
    // Tolerate the symmetric `UNREGISTER QUERY <id>` spelling.
    size_t pos = (tokens.size() > 1 && tokens[1] == "QUERY") ? 2 : 1;
    PUNCTSAFE_RETURN_IF_ERROR(NeedArgs(tokens, pos + 1, "UNREGISTER <id>"));
    PUNCTSAFE_RETURN_IF_ERROR(registry->UnregisterQuery(tokens[pos]));
    session->subscriptions.erase(tokens[pos]);
    return One(StrCat("OK unregistered ", tokens[pos]));
  }

  if (cmd == "DRAIN") {
    size_t pos = 1;
    PUNCTSAFE_ASSIGN_OR_RETURN(std::optional<int64_t> ts,
                               ParseTimestampToken(tokens, &pos));
    if (pos != tokens.size()) {
      return Status::InvalidArgument("usage: DRAIN [@<ts>]");
    }
    PUNCTSAFE_RETURN_IF_ERROR(registry->DrainAll(ts));
    return One("OK drained");
  }

  if (cmd == "STATS") {
    std::vector<std::string> out;
    for (const auto& [key, value] : registry->Stats()) {
      out.push_back(StrCat("STAT ", key, " ", value));
    }
    out.push_back("OK");
    return out;
  }

  return Status::InvalidArgument(StrCat(
      "unknown command '", cmd, "' (expected CREATE, REGISTER, PUSH, PUNCT, ",
      "SUBSCRIBE, UNSUBSCRIBE, UNREGISTER, DRAIN, STATS, PING, QUIT)"));
}

}  // namespace

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t' ||
                               line[i] == '\r')) {
      ++i;
    }
    size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t' &&
           line[i] != '\r') {
      ++i;
    }
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

Result<Value> ParseValueToken(const std::string& token, ValueType type) {
  switch (type) {
    case ValueType::kInt64: {
      PUNCTSAFE_ASSIGN_OR_RETURN(int64_t v, ParseInt64Token(token));
      return Value(v);
    }
    case ValueType::kDouble: {
      PUNCTSAFE_ASSIGN_OR_RETURN(double v, ParseDoubleToken(token));
      return Value(v);
    }
    case ValueType::kString: {
      if (token.size() >= 2 && token.front() == '"' && token.back() == '"') {
        return Value(token.substr(1, token.size() - 2));
      }
      return Value(token);
    }
    case ValueType::kNull:
      return Status::InvalidArgument("null-typed attributes are not pushable");
  }
  return Status::InvalidArgument("unknown value type");
}

Result<Tuple> ParseTupleTokens(const Schema& schema,
                               const std::vector<std::string>& tokens,
                               size_t begin) {
  size_t n = tokens.size() - begin;
  if (n != schema.num_attributes()) {
    return Status::InvalidArgument(StrCat("expected ",
                                          schema.num_attributes(),
                                          " values, got ", n));
  }
  std::vector<Value> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto v = ParseValueToken(tokens[begin + i], schema.attribute(i).type);
    if (!v.ok()) {
      return Status::InvalidArgument(StrCat("attribute '",
                                            schema.attribute(i).name,
                                            "': ", v.status().message()));
    }
    values.push_back(std::move(*v));
  }
  return Tuple(std::move(values));
}

Result<Punctuation> ParsePunctuationTokens(
    const Schema& schema, const std::vector<std::string>& tokens,
    size_t begin) {
  size_t n = tokens.size() - begin;
  if (n != schema.num_attributes()) {
    return Status::InvalidArgument(StrCat("expected ",
                                          schema.num_attributes(),
                                          " patterns, got ", n));
  }
  std::vector<Pattern> patterns;
  patterns.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const std::string& token = tokens[begin + i];
    if (token == "*") {
      patterns.push_back(Pattern::Wildcard());
      continue;
    }
    auto v = ParseValueToken(token, schema.attribute(i).type);
    if (!v.ok()) {
      return Status::InvalidArgument(StrCat("attribute '",
                                            schema.attribute(i).name,
                                            "': ", v.status().message()));
    }
    patterns.push_back(Pattern(std::move(*v)));
  }
  return Punctuation(std::move(patterns));
}

std::string FormatValue(const Value& v) {
  // Value::ToString already renders strings double-quoted — the shape
  // ParseValueToken strips back off — and scalars bare.
  return v.ToString();
}

std::string FormatResultLine(const std::string& id, const Tuple& t) {
  std::string out = StrCat("RESULT ", id);
  for (const Value& v : t.values()) {
    out += ' ';
    out += FormatValue(v);
  }
  return out;
}

std::string FormatError(const Status& status) {
  std::string msg = status.message();
  // Multi-line messages (the safety witness) must fit one protocol
  // line.
  for (char& c : msg) {
    if (c == '\n') c = ';';
    if (c == '\r') c = ' ';
  }
  return StrCat("ERR ", CodeToken(status.code()), ": ", msg);
}

std::vector<std::string> ProcessLine(QueryRegistry* registry,
                                     Session* session,
                                     const std::string& line) {
  std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty()) return {};
  Result<std::vector<std::string>> result =
      Dispatch(registry, session, tokens);
  if (!result.ok()) return One(FormatError(result.status()));
  return std::move(result).ValueOrDie();
}

}  // namespace server
}  // namespace punctsafe
