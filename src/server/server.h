// IngestServer: the network front of the multi-query engine
// (docs/SERVER.md). A single-threaded, non-blocking socket loop —
// epoll on Linux, poll elsewhere — frames newline-delimited protocol
// lines, executes them against a QueryRegistry via protocol.h's
// ProcessLine, and streams each query's results to its subscribers.
//
// Because the loop is one thread, it is the registry's only in-process
// driver here (embedders may still call the registry concurrently —
// it locks internally). A self-pipe wakes the loop for Stop().
//
// Backpressure: every connection has a bounded output buffer
// (ServerConfig::max_output_buffer). A subscriber that reads slower
// than its queries produce is disconnected rather than letting its
// buffer grow without bound — results are lost for that subscriber
// only (the paper's safety guarantee bounds *operator* state; output
// buffering is the server's own resource to bound). Input lines are
// bounded too (max_line_length) against runaway unframed senders.

#ifndef PUNCTSAFE_SERVER_SERVER_H_
#define PUNCTSAFE_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/protocol.h"
#include "server/query_registry.h"
#include "util/status.h"

namespace punctsafe {
namespace server {

struct ServerConfig {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port
  /// (read it back via port()).
  uint16_t port = 0;
  /// Listen backlog.
  int backlog = 64;
  /// Per-connection output-buffer cap in bytes; exceeding it
  /// disconnects the (slow) consumer.
  size_t max_output_buffer = 4u << 20;
  /// Longest accepted protocol line in bytes; exceeding it without a
  /// newline disconnects the sender.
  size_t max_line_length = 1u << 16;
};

/// \brief The ingestion/subscription server. Listen() binds; Start()
/// runs the event loop on a background thread; Stop() (or the
/// destructor) shuts it down. Run() is exposed for callers that want
/// to own the loop thread themselves.
class IngestServer {
 public:
  /// \brief Binds a non-blocking listener on 127.0.0.1 and prepares
  /// the wakeup pipe. `registry` must outlive the server.
  static Result<std::unique_ptr<IngestServer>> Listen(
      QueryRegistry* registry, ServerConfig config = {});

  ~IngestServer();

  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  /// \brief The bound port (the ephemeral pick when config.port == 0).
  uint16_t port() const { return port_; }

  /// \brief Runs the event loop until Stop(); blocking form.
  void Run();

  /// \brief Runs the event loop on a background thread.
  Status Start();

  /// \brief Signals the loop to exit, joins the Start() thread, and
  /// closes all connections. Idempotent.
  void Stop();

  /// \brief Async-signal-safe stop request: flips the stop flag and
  /// writes the wakeup pipe, nothing else. The loop exits on its own;
  /// call Stop() afterwards to join and reap.
  void RequestStop();

  /// \brief Connections currently open (tests).
  size_t num_connections() const { return num_connections_.load(); }

 private:
  struct Connection {
    int fd = -1;
    std::string in;    // unframed bytes awaiting a newline
    std::string out;   // bytes awaiting the socket
    Session session;   // protocol state (subscriptions, quit)
    bool closing = false;  // flush `out`, then close
  };

  IngestServer(QueryRegistry* registry, ServerConfig config);

  Status Bind();
  void AcceptNew();
  // Reads available bytes; executes complete lines. False = drop the
  // connection.
  bool HandleReadable(Connection* conn);
  // Flushes as much of `out` as the socket takes. False = drop.
  bool FlushOutput(Connection* conn);
  // Appends response/result lines, enforcing the output bound. False =
  // drop (slow consumer).
  bool Enqueue(Connection* conn, const std::string& line);
  // Moves freshly produced results of all subscribed queries into the
  // subscribers' output buffers.
  void PumpResults();
  void CloseConnection(int fd);
  void CloseAll();

  QueryRegistry* registry_;
  ServerConfig config_;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  uint16_t port_ = 0;
  std::map<int, Connection> connections_;  // by fd
  std::atomic<bool> running_{false};  // double-Start guard
  std::atomic<bool> stop_{false};     // loop exit signal
  std::atomic<size_t> num_connections_{0};
  std::thread loop_thread_;
};

}  // namespace server
}  // namespace punctsafe

#endif  // PUNCTSAFE_SERVER_SERVER_H_
