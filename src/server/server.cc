#include "server/server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <set>
#include <utility>

#ifdef __linux__
#include <sys/epoll.h>
#else
#include <poll.h>
#endif

#include "util/string_util.h"

namespace punctsafe {
namespace server {

namespace {

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal(
        StrCat("fcntl(O_NONBLOCK): ", std::strerror(errno)));
  }
  return Status::OK();
}

}  // namespace

IngestServer::IngestServer(QueryRegistry* registry, ServerConfig config)
    : registry_(registry), config_(config) {}

Result<std::unique_ptr<IngestServer>> IngestServer::Listen(
    QueryRegistry* registry, ServerConfig config) {
  if (registry == nullptr) {
    return Status::InvalidArgument("registry must be non-null");
  }
  std::unique_ptr<IngestServer> server(new IngestServer(registry, config));
  PUNCTSAFE_RETURN_IF_ERROR(server->Bind());
  return server;
}

Status IngestServer::Bind() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(StrCat("socket: ", std::strerror(errno)));
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::Internal(StrCat("bind: ", std::strerror(errno)));
  }
  if (listen(listen_fd_, config_.backlog) < 0) {
    return Status::Internal(StrCat("listen: ", std::strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return Status::Internal(StrCat("getsockname: ", std::strerror(errno)));
  }
  port_ = ntohs(addr.sin_port);
  PUNCTSAFE_RETURN_IF_ERROR(SetNonBlocking(listen_fd_));

  int pipe_fds[2];
  if (pipe(pipe_fds) < 0) {
    return Status::Internal(StrCat("pipe: ", std::strerror(errno)));
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  PUNCTSAFE_RETURN_IF_ERROR(SetNonBlocking(wake_read_fd_));
  PUNCTSAFE_RETURN_IF_ERROR(SetNonBlocking(wake_write_fd_));
  return Status::OK();
}

IngestServer::~IngestServer() {
  Stop();
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_read_fd_ >= 0) close(wake_read_fd_);
  if (wake_write_fd_ >= 0) close(wake_write_fd_);
}

Status IngestServer::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) {
    return Status::FailedPrecondition("server is already running");
  }
  stop_.store(false);
  loop_thread_ = std::thread([this] { Run(); });
  return Status::OK();
}

void IngestServer::RequestStop() {
  stop_.store(true);
  // Wake the loop out of its wait; a full pipe is fine (the loop is
  // about to wake anyway).
  char byte = 0;
  ssize_t ignored = write(wake_write_fd_, &byte, 1);
  (void)ignored;
}

void IngestServer::Stop() {
  RequestStop();
  if (loop_thread_.joinable()) loop_thread_.join();
  CloseAll();
  running_.store(false);
}

void IngestServer::AcceptNew() {
  for (;;) {
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN (drained) or transient error
    if (!SetNonBlocking(fd).ok()) {
      close(fd);
      continue;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Connection conn;
    conn.fd = fd;
    connections_.emplace(fd, std::move(conn));
    num_connections_.store(connections_.size());
  }
}

bool IngestServer::Enqueue(Connection* conn, const std::string& line) {
  if (conn->out.size() + line.size() + 1 > config_.max_output_buffer) {
    // Slow consumer: drop rather than buffer without bound.
    return false;
  }
  conn->out += line;
  conn->out += '\n';
  return true;
}

bool IngestServer::HandleReadable(Connection* conn) {
  char buf[4096];
  for (;;) {
    ssize_t n = read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      conn->in.append(buf, static_cast<size_t>(n));
      if (static_cast<ssize_t>(sizeof(buf)) > n) break;  // drained
      continue;
    }
    if (n == 0) {
      // Peer closed its write side; execute what's buffered, then
      // close after flushing any responses.
      conn->closing = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;  // hard error
  }

  size_t start = 0;
  for (;;) {
    size_t nl = conn->in.find('\n', start);
    if (nl == std::string::npos) break;
    std::string line = conn->in.substr(start, nl - start);
    start = nl + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    for (const std::string& response :
         ProcessLine(registry_, &conn->session, line)) {
      if (!Enqueue(conn, response)) return false;
    }
    // Eager results: lines a command just produced reach subscribers
    // in the same wakeup.
    PumpResults();
    if (conn->session.quit) {
      conn->closing = true;
      break;
    }
  }
  conn->in.erase(0, start);
  if (conn->in.size() > config_.max_line_length) {
    return false;  // unframed flood
  }
  return true;
}

bool IngestServer::FlushOutput(Connection* conn) {
  while (!conn->out.empty()) {
    ssize_t n = send(conn->fd, conn->out.data(), conn->out.size(),
#ifdef MSG_NOSIGNAL
                     MSG_NOSIGNAL
#else
                     0
#endif
    );
    if (n > 0) {
      conn->out.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;  // peer is gone
  }
  return true;
}

void IngestServer::PumpResults() {
  // One take per subscribed query, fanned to every subscriber.
  std::set<std::string> subscribed;
  for (const auto& [fd, conn] : connections_) {
    subscribed.insert(conn.session.subscriptions.begin(),
                      conn.session.subscriptions.end());
  }
  for (const std::string& id : subscribed) {
    Result<std::vector<Tuple>> taken = registry_->TakeResults(id);
    if (!taken.ok()) {
      // The query vanished (unregistered elsewhere): silently drop the
      // stale subscriptions.
      for (auto& [fd, conn] : connections_) {
        conn.session.subscriptions.erase(id);
      }
      continue;
    }
    if (taken->empty()) continue;
    std::vector<std::string> lines;
    lines.reserve(taken->size());
    for (const Tuple& t : *taken) {
      lines.push_back(FormatResultLine(id, t));
    }
    for (auto& [fd, conn] : connections_) {
      if (conn.session.subscriptions.count(id) == 0) continue;
      for (const std::string& line : lines) {
        if (!Enqueue(&conn, line)) {
          // Slow consumer: stop feeding it; the event loop reaps it.
          conn.closing = true;
          conn.session.subscriptions.clear();
          break;
        }
      }
    }
  }
}

void IngestServer::CloseConnection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  close(fd);
  connections_.erase(it);
  num_connections_.store(connections_.size());
}

void IngestServer::CloseAll() {
  for (auto& [fd, conn] : connections_) close(fd);
  connections_.clear();
  num_connections_.store(0);
}

#ifdef __linux__

void IngestServer::Run() {
  int epfd = epoll_create1(0);
  if (epfd < 0) return;
  auto add = [epfd](int fd, uint32_t events) {
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = events;
    ev.data.fd = fd;
    epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &ev);
  };
  auto mod = [epfd](int fd, uint32_t events) {
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = events;
    ev.data.fd = fd;
    epoll_ctl(epfd, EPOLL_CTL_MOD, fd, &ev);
  };
  add(listen_fd_, EPOLLIN);
  add(wake_read_fd_, EPOLLIN);

  // Level-triggered loop: connection interest is EPOLLIN, plus
  // EPOLLOUT only while output is pending.
  std::set<int> registered;
  epoll_event events[64];
  while (!stop_.load()) {
    int n = epoll_wait(epfd, events, 64, 500);
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == wake_read_fd_) {
        char drain[64];
        while (read(wake_read_fd_, drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      if (fd == listen_fd_) {
        AcceptNew();
        continue;
      }
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;
      Connection* conn = &it->second;
      bool alive = true;
      if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0) {
        // Flush what we can (the peer may have half-closed), then
        // drop.
        FlushOutput(conn);
        alive = false;
      }
      if (alive && (events[i].events & EPOLLIN) != 0) {
        alive = HandleReadable(conn);
      }
      if (alive && (events[i].events & EPOLLOUT) != 0) {
        alive = FlushOutput(conn);
      }
      if (!alive) {
        registered.erase(fd);
        CloseConnection(fd);
      }
    }

    // Results produced by this wakeup's commands (or by another
    // registry driver) reach subscribers even if their sockets were
    // silent.
    PumpResults();

    // Opportunistic flush + interest update for every connection.
    std::vector<int> doomed;
    for (auto& [fd, conn] : connections_) {
      if (!FlushOutput(&conn)) {
        doomed.push_back(fd);
        continue;
      }
      if (conn.closing && conn.out.empty()) {
        doomed.push_back(fd);
        continue;
      }
      uint32_t want =
          conn.out.empty() ? EPOLLIN : (EPOLLIN | EPOLLOUT);
      if (registered.insert(fd).second) {
        add(fd, want);
      } else {
        mod(fd, want);
      }
    }
    for (int fd : doomed) {
      registered.erase(fd);
      CloseConnection(fd);
    }
  }
  close(epfd);
}

#else  // !__linux__: portable poll() loop

void IngestServer::Run() {
  while (!stop_.load()) {
    std::vector<pollfd> fds;
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_read_fd_, POLLIN, 0});
    for (const auto& [fd, conn] : connections_) {
      short events = POLLIN;
      if (!conn.out.empty()) events |= POLLOUT;
      fds.push_back({fd, events, 0});
    }
    int n = poll(fds.data(), fds.size(), 500);
    if (n < 0 && errno != EINTR) break;
    if (fds[1].revents != 0) {
      char drain[64];
      while (read(wake_read_fd_, drain, sizeof(drain)) > 0) {
      }
    }
    if ((fds[0].revents & POLLIN) != 0) AcceptNew();
    for (size_t i = 2; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      auto it = connections_.find(fds[i].fd);
      if (it == connections_.end()) continue;
      Connection* conn = &it->second;
      bool alive = true;
      if ((fds[i].revents & (POLLERR | POLLHUP)) != 0) {
        FlushOutput(conn);
        alive = false;
      }
      if (alive && (fds[i].revents & POLLIN) != 0) {
        alive = HandleReadable(conn);
      }
      if (alive && (fds[i].revents & POLLOUT) != 0) {
        alive = FlushOutput(conn);
      }
      if (!alive) CloseConnection(fds[i].fd);
    }

    PumpResults();

    std::vector<int> doomed;
    for (auto& [fd, conn] : connections_) {
      if (!FlushOutput(&conn)) {
        doomed.push_back(fd);
        continue;
      }
      if (conn.closing && conn.out.empty()) doomed.push_back(fd);
    }
    for (int fd : doomed) CloseConnection(fd);
  }
}

#endif  // __linux__

}  // namespace server
}  // namespace punctsafe
