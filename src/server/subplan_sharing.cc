#include "server/subplan_sharing.h"

#include <algorithm>

#include "core/safety_checker.h"
#include "util/string_util.h"

namespace punctsafe {
namespace server {

namespace {

// Stream names of the given query-stream indices, sorted ascending.
std::vector<std::string> SortedStreamNames(const ContinuousJoinQuery& query,
                                           const std::vector<size_t>& streams) {
  std::vector<std::string> names;
  names.reserve(streams.size());
  for (size_t s : streams) names.push_back(query.stream(s));
  std::sort(names.begin(), names.end());
  return names;
}

// "s.a=s.b" rendering of a resolved predicate with the
// lexicographically smaller side first.
std::string CanonicalPredicate(const ContinuousJoinQuery& query,
                               const ResolvedPredicate& pred) {
  std::string left =
      StrCat(query.stream(pred.left_stream), ".",
             query.schema(pred.left_stream).attribute(pred.left_attr).name);
  std::string right =
      StrCat(query.stream(pred.right_stream), ".",
             query.schema(pred.right_stream).attribute(pred.right_attr).name);
  if (right < left) std::swap(left, right);
  return StrCat(left, "=", right);
}

// Predicates of `query` with both sides inside the stream set.
std::vector<const ResolvedPredicate*> PredicatesWithin(
    const ContinuousJoinQuery& query, const std::vector<size_t>& streams) {
  std::vector<const ResolvedPredicate*> out;
  auto contains = [&streams](size_t s) {
    return std::find(streams.begin(), streams.end(), s) != streams.end();
  };
  for (const ResolvedPredicate& pred : query.predicates()) {
    if (contains(pred.left_stream) && contains(pred.right_stream)) {
      out.push_back(&pred);
    }
  }
  return out;
}

// Collects the internal nodes of `shape` in post-order.
void CollectInternal(const PlanShape& shape,
                     std::vector<const PlanShape*>* out) {
  if (shape.IsLeaf()) return;
  for (const PlanShape& child : shape.children()) {
    CollectInternal(child, out);
  }
  out->push_back(&shape);
}

// Runs the safety check on the restriction of `query` to `streams`
// (false for disconnected/invalid restrictions or checker errors).
bool RestrictedSubjoinSafe(const ContinuousJoinQuery& query,
                           const SchemeSet& schemes,
                           const std::vector<size_t>& streams) {
  StreamCatalog sub_catalog;
  std::vector<std::string> names;
  for (size_t s : streams) {
    if (!sub_catalog.Register(query.stream(s), query.schema(s)).ok()) {
      return false;
    }
    names.push_back(query.stream(s));
  }
  std::vector<JoinPredicateSpec> preds;
  for (const ResolvedPredicate* pred : PredicatesWithin(query, streams)) {
    preds.push_back(
        Eq({query.stream(pred->left_stream),
            query.schema(pred->left_stream).attribute(pred->left_attr).name},
           {query.stream(pred->right_stream),
            query.schema(pred->right_stream)
                .attribute(pred->right_attr)
                .name}));
  }
  auto sub_query = ContinuousJoinQuery::Create(sub_catalog, names, preds);
  if (!sub_query.ok()) return false;  // disconnected: never shareable
  SafetyChecker checker(schemes.Restrict(names));
  auto report = checker.CheckQuery(*sub_query);
  return report.ok() && report->safe;
}

}  // namespace

std::string SubjoinSignature(const ContinuousJoinQuery& query,
                             const std::vector<size_t>& streams,
                             const SchemeSet& schemes) {
  std::vector<std::string> names = SortedStreamNames(query, streams);
  std::vector<std::string> preds;
  for (const ResolvedPredicate* pred : PredicatesWithin(query, streams)) {
    preds.push_back(CanonicalPredicate(query, *pred));
  }
  std::sort(preds.begin(), preds.end());
  // Scheme strings are sorted so registration order cannot split a
  // shareable pair.
  std::vector<std::string> scheme_strs;
  SchemeSet restricted = schemes.Restrict(names);
  for (const PunctuationScheme& s : restricted.schemes()) {
    scheme_strs.push_back(s.ToString());
  }
  std::sort(scheme_strs.begin(), scheme_strs.end());
  return StrCat("streams{", Join(names, ","), "} preds{", Join(preds, ","),
                "} schemes{", Join(scheme_strs, ","), "}");
}

std::vector<SubjoinSpec> EnumerateSubjoins(const ContinuousJoinQuery& query,
                                           const SchemeSet& schemes,
                                           const PlanShape& shape) {
  std::vector<const PlanShape*> internal;
  CollectInternal(shape, &internal);
  std::vector<SubjoinSpec> out;
  for (const PlanShape* node : internal) {
    std::vector<size_t> leaves = node->Leaves();
    if (leaves.size() < 2) continue;
    SubjoinSpec spec;
    spec.signature = SubjoinSignature(query, leaves, schemes);
    spec.streams = SortedStreamNames(query, leaves);
    spec.safe = RestrictedSubjoinSafe(query, schemes, leaves);
    // The same signature can appear once per node; report it once.
    bool seen = false;
    for (const SubjoinSpec& prev : out) {
      if (prev.signature == spec.signature) {
        seen = true;
        break;
      }
    }
    if (!seen) out.push_back(std::move(spec));
  }
  return out;
}

bool SharedSubjoinState::Involves(const std::string& stream) const {
  return std::find(spec_.streams.begin(), spec_.streams.end(), stream) !=
         spec_.streams.end();
}

bool SharedSubjoinState::AddPunctuation(const std::string& stream,
                                        const Punctuation& p, int64_t now) {
  if (!Involves(stream)) return false;
  stores_[stream].Add(p, now);
  return true;
}

size_t SharedSubjoinState::TotalPunctuations() const {
  size_t total = 0;
  for (const auto& [stream, store] : stores_) total += store.size();
  return total;
}

const PunctuationStore* SharedSubjoinState::StoreFor(
    const std::string& stream) const {
  auto it = stores_.find(stream);
  return it == stores_.end() ? nullptr : &it->second;
}

SharedSubjoinHandle SubjoinSharingTable::Acquire(const SubjoinSpec& spec,
                                                 bool* was_shared) {
  auto it = by_signature_.find(spec.signature);
  if (it != by_signature_.end()) {
    if (SharedSubjoinHandle live = it->second.lock()) {
      if (was_shared != nullptr) *was_shared = true;
      return live;
    }
  }
  auto fresh = std::make_shared<SharedSubjoinState>(spec);
  by_signature_[spec.signature] = fresh;
  if (was_shared != nullptr) *was_shared = false;
  return fresh;
}

size_t SubjoinSharingTable::Sharers(const std::string& signature) const {
  auto it = by_signature_.find(signature);
  if (it == by_signature_.end()) return 0;
  // The table holds only a weak reference, so use_count counts the
  // query-held handles exactly.
  return static_cast<size_t>(it->second.use_count());
}

std::vector<SharedSubjoinHandle> SubjoinSharingTable::StatesFor(
    const std::string& stream) {
  std::vector<SharedSubjoinHandle> out;
  for (auto it = by_signature_.begin(); it != by_signature_.end();) {
    if (SharedSubjoinHandle live = it->second.lock()) {
      if (live->Involves(stream)) out.push_back(std::move(live));
      ++it;
    } else {
      it = by_signature_.erase(it);
    }
  }
  return out;
}

std::vector<SharedSubjoinHandle> SubjoinSharingTable::LiveStates() const {
  std::vector<SharedSubjoinHandle> out;
  for (const auto& [signature, weak] : by_signature_) {
    if (SharedSubjoinHandle live = weak.lock()) out.push_back(std::move(live));
  }
  return out;
}

}  // namespace server
}  // namespace punctsafe
