#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace punctsafe {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string msg) {
  if (code != StatusCode::kOk) {
    state_ = std::make_shared<const State>(State{code, std::move(msg)});
  }
}

const std::string& Status::message() const {
  static const std::string kEmpty;
  return ok() ? kEmpty : state_->msg;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

namespace internal {

void DieOnBadResult(const Status& status) {
  std::fprintf(stderr, "Result::ValueOrDie on error status: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace punctsafe
