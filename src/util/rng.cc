#include "util/rng.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace punctsafe {

uint64_t Rng::Next() {
  state_ += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rng::NextBelow(uint64_t bound) {
  PUNCTSAFE_CHECK(bound > 0) << "NextBelow(0)";
  // Rejection sampling to remove modulo bias.
  uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  PUNCTSAFE_CHECK(lo <= hi) << "NextInRange(" << lo << "," << hi << ")";
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

ZipfSampler::ZipfSampler(size_t n, double theta) {
  PUNCTSAFE_CHECK(n > 0) << "ZipfSampler over empty domain";
  cdf_.resize(n);
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  for (size_t i = 0; i < n; ++i) cdf_[i] /= sum;
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace punctsafe
