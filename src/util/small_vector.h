// A vector with inline capacity: the first N elements live inside the
// object, so small instances (the common case for join index buckets,
// which usually hold a handful of slots) cost no heap allocation and
// no pointer chase. Past N elements the storage spills to the heap
// with the usual doubling growth; it never moves back inline.
//
// The interface is the subset the tuple-store buckets need —
// push_back, indexed access, iteration, swap-remove (`erase_unordered`,
// the bucket-maintenance primitive), `truncate` for in-place filtering
// — plus copy/move so instances can live in hash-map values.
//
// Not thread-safe; elements must be movable. Intended for small
// trivially-relocatable payloads (slot ids); move construction of
// an inline instance moves element-by-element.

#ifndef PUNCTSAFE_UTIL_SMALL_VECTOR_H_
#define PUNCTSAFE_UTIL_SMALL_VECTOR_H_

#include <cstddef>
#include <memory>
#include <new>
#include <utility>

namespace punctsafe {

template <typename T, size_t N>
class SmallVector {
  static_assert(N > 0, "inline capacity must be positive");
  static_assert(alignof(T) <= alignof(std::max_align_t),
                "over-aligned element types are not supported");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVector() : data_(inline_ptr()), size_(0), capacity_(N) {}

  SmallVector(const SmallVector& other) : SmallVector() {
    reserve(other.size_);
    for (size_t i = 0; i < other.size_; ++i) {
      new (data_ + i) T(other.data_[i]);
    }
    size_ = other.size_;
  }

  SmallVector(SmallVector&& other) noexcept : SmallVector() {
    if (other.is_heap()) {
      // Steal the heap buffer wholesale.
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.data_ = other.inline_ptr();
      other.size_ = 0;
      other.capacity_ = N;
    } else {
      for (size_t i = 0; i < other.size_; ++i) {
        new (data_ + i) T(std::move(other.data_[i]));
        other.data_[i].~T();
      }
      size_ = other.size_;
      other.size_ = 0;
    }
  }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      clear();
      reserve(other.size_);
      for (size_t i = 0; i < other.size_; ++i) {
        new (data_ + i) T(other.data_[i]);
      }
      size_ = other.size_;
    }
    return *this;
  }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      destroy_all();
      if (other.is_heap()) {
        data_ = other.data_;
        size_ = other.size_;
        capacity_ = other.capacity_;
        other.data_ = other.inline_ptr();
        other.size_ = 0;
        other.capacity_ = N;
      } else {
        data_ = inline_ptr();
        capacity_ = N;
        size_ = other.size_;
        for (size_t i = 0; i < other.size_; ++i) {
          new (data_ + i) T(std::move(other.data_[i]));
          other.data_[i].~T();
        }
        other.size_ = 0;
      }
    }
    return *this;
  }

  ~SmallVector() { destroy_all(); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }
  /// \brief Whether the elements spilled out of the inline buffer.
  bool is_heap() const { return data_ != inline_ptr(); }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }

  void push_back(const T& v) {
    if (size_ == capacity_) grow(capacity_ * 2);
    new (data_ + size_) T(v);
    ++size_;
  }
  void push_back(T&& v) {
    if (size_ == capacity_) grow(capacity_ * 2);
    new (data_ + size_) T(std::move(v));
    ++size_;
  }

  void pop_back() {
    data_[size_ - 1].~T();
    --size_;
  }

  /// \brief Removes element i by swapping the back into its place —
  /// O(1), order not preserved (bucket order carries no meaning).
  void erase_unordered(size_t i) {
    if (i + 1 != size_) data_[i] = std::move(data_[size_ - 1]);
    pop_back();
  }

  /// \brief Drops every element at index >= n (for in-place filtering:
  /// compact the survivors to the front, then truncate).
  void truncate(size_t n) {
    while (size_ > n) pop_back();
  }

  void clear() { truncate(0); }

  void reserve(size_t n) {
    if (n > capacity_) grow(n);
  }

 private:
  T* inline_ptr() { return reinterpret_cast<T*>(inline_storage_); }
  const T* inline_ptr() const {
    return reinterpret_cast<const T*>(inline_storage_);
  }

  void destroy_all() {
    clear();
    if (is_heap()) {
      ::operator delete(data_);
      data_ = inline_ptr();
      capacity_ = N;
    }
  }

  void grow(size_t want) {
    size_t cap = capacity_;
    while (cap < want) cap *= 2;
    T* fresh = static_cast<T*>(::operator new(cap * sizeof(T)));
    for (size_t i = 0; i < size_; ++i) {
      new (fresh + i) T(std::move(data_[i]));
      data_[i].~T();
    }
    if (is_heap()) ::operator delete(data_);
    data_ = fresh;
    capacity_ = cap;
  }

  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
  T* data_;
  size_t size_;
  size_t capacity_;
};

}  // namespace punctsafe

#endif  // PUNCTSAFE_UTIL_SMALL_VECTOR_H_
