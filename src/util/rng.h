// Deterministic pseudo-random utilities used by workload generators,
// property tests and benchmarks. Everything here is seeded explicitly so
// runs are reproducible across platforms (no std::random_device, no
// distribution implementation divergence).

#ifndef PUNCTSAFE_UTIL_RNG_H_
#define PUNCTSAFE_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace punctsafe {

/// \brief SplitMix64 generator: tiny state, excellent statistical
/// quality for simulation workloads, fully deterministic per seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  /// \brief Next raw 64-bit value.
  uint64_t Next();

  /// \brief Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  /// \brief Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// \brief Uniform double in [0, 1).
  double NextDouble();

  /// \brief Bernoulli draw with probability p of true.
  bool NextBool(double p = 0.5);

  /// \brief Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBelow(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t state_;
};

/// \brief Zipf(θ) sampler over {0, ..., n-1} using the standard
/// inverse-CDF table; deterministic given the Rng.
///
/// Used by workload generators to model skewed join-key popularity
/// (e.g. hot auction items attracting most bids).
class ZipfSampler {
 public:
  /// \param n domain size (> 0)
  /// \param theta skew; 0 = uniform, higher = more skewed
  ZipfSampler(size_t n, double theta);

  /// \brief Draw one sample in [0, n).
  size_t Sample(Rng* rng) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace punctsafe

#endif  // PUNCTSAFE_UTIL_RNG_H_
