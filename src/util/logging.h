// Minimal leveled logging plus CHECK macros, in the Arrow/RocksDB style.
//
// Logging is for diagnostics only; the library reports recoverable
// errors through Status. CHECK failures denote programming errors and
// abort the process.

#ifndef PUNCTSAFE_UTIL_LOGGING_H_
#define PUNCTSAFE_UTIL_LOGGING_H_

#include <cstdint>
#include <sstream>
#include <string>

namespace punctsafe {

enum class LogLevel : int8_t {
  kDebug = -1,
  kInfo = 0,
  kWarning = 1,
  kError = 2,
  kFatal = 3,
};

/// \brief Process-wide minimum severity that is actually emitted.
/// Defaults to kWarning so library internals stay quiet in tests.
void SetLogThreshold(LogLevel level);
LogLevel GetLogThreshold();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& t) {
    if (enabled_) stream_ << t;
    return *this;
  }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal

#define PUNCTSAFE_LOG(level)                                            \
  ::punctsafe::internal::LogMessage(::punctsafe::LogLevel::k##level,    \
                                    __FILE__, __LINE__)

#define PUNCTSAFE_CHECK(condition)                                   \
  if (!(condition))                                                  \
  PUNCTSAFE_LOG(Fatal) << "Check failed: " #condition " "

#define PUNCTSAFE_CHECK_OK(expr)                                 \
  do {                                                           \
    ::punctsafe::Status _ps_check_status = (expr);               \
    PUNCTSAFE_CHECK(_ps_check_status.ok())                       \
        << _ps_check_status.ToString();                          \
  } while (false)

#define PUNCTSAFE_DCHECK(condition) PUNCTSAFE_CHECK(condition)

}  // namespace punctsafe

#endif  // PUNCTSAFE_UTIL_LOGGING_H_
