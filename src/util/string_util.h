// Small string helpers shared across modules (join/split/format).

#ifndef PUNCTSAFE_UTIL_STRING_UTIL_H_
#define PUNCTSAFE_UTIL_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace punctsafe {

/// \brief Concatenates the streamable arguments into one string.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream out;
  (void)(out << ... << args);
  return out.str();
}

/// \brief Joins container elements with a separator, applying a
/// formatter to each element.
template <typename Container, typename Formatter>
std::string JoinMapped(const Container& items, std::string_view sep,
                       Formatter fmt) {
  std::ostringstream out;
  bool first = true;
  for (const auto& item : items) {
    if (!first) out << sep;
    first = false;
    out << fmt(item);
  }
  return out.str();
}

/// \brief Joins streamable container elements with a separator.
template <typename Container>
std::string Join(const Container& items, std::string_view sep) {
  return JoinMapped(items, sep, [](const auto& x) { return x; });
}

/// \brief Splits on a single character; empty fields preserved.
std::vector<std::string> Split(std::string_view s, char sep);

}  // namespace punctsafe

#endif  // PUNCTSAFE_UTIL_STRING_UTIL_H_
