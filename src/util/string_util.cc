#include "util/string_util.h"

namespace punctsafe {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

}  // namespace punctsafe
