// Status / Result error-handling primitives in the Arrow / RocksDB idiom.
//
// Library code never throws across the public API boundary: fallible
// operations return `Status` (or `Result<T>` when they also produce a
// value). `PUNCTSAFE_RETURN_IF_ERROR` / `PUNCTSAFE_ASSIGN_OR_RETURN`
// provide the usual early-return plumbing.

#ifndef PUNCTSAFE_UTIL_STATUS_H_
#define PUNCTSAFE_UTIL_STATUS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace punctsafe {

enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kUnimplemented = 5,
  kInternal = 6,
  kResourceExhausted = 7,
  kFailedPrecondition = 8,
};

/// \brief Returns a human-readable name for a status code ("OK",
/// "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus, for errors, a
/// human-readable message.
///
/// OK statuses carry no allocation; error statuses own a small heap
/// state. `Status` is cheap to move and to test.
class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string msg);

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  /// \brief Error message; empty for OK statuses.
  const std::string& message() const;

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsUnimplemented() const { return code() == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }

  /// \brief "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::shared_ptr<const State> state_;  // nullptr == OK
};

/// \brief Either a value of type `T` or an error `Status`.
///
/// Mirrors `arrow::Result`. Accessing the value of an errored result
/// aborts the process (programming error), matching CHECK semantics.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): intentional implicit
  // conversions so `return value;` / `return status;` both work.
  Result(T value) : repr_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : repr_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(repr_);
  }

  const T& ValueOrDie() const& {
    AbortIfError();
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    AbortIfError();
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    AbortIfError();
    return std::get<T>(std::move(repr_));
  }

  /// \brief Alias for ValueOrDie, matching the arrow::Result spelling.
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  void AbortIfError() const;
  std::variant<Status, T> repr_;
};

namespace internal {
[[noreturn]] void DieOnBadResult(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) internal::DieOnBadResult(status());
}

#define PUNCTSAFE_CONCAT_IMPL(a, b) a##b
#define PUNCTSAFE_CONCAT(a, b) PUNCTSAFE_CONCAT_IMPL(a, b)

/// Propagates a non-OK Status to the caller.
#define PUNCTSAFE_RETURN_IF_ERROR(expr)                    \
  do {                                                     \
    ::punctsafe::Status _ps_status = (expr);               \
    if (!_ps_status.ok()) return _ps_status;               \
  } while (false)

/// Evaluates a Result expression; on success binds the value, on error
/// propagates the Status.
#define PUNCTSAFE_ASSIGN_OR_RETURN(lhs, expr)                        \
  PUNCTSAFE_ASSIGN_OR_RETURN_IMPL(                                   \
      PUNCTSAFE_CONCAT(_ps_result_, __LINE__), lhs, expr)

#define PUNCTSAFE_ASSIGN_OR_RETURN_IMPL(result_name, lhs, expr) \
  auto result_name = (expr);                                    \
  if (!result_name.ok()) return result_name.status();           \
  lhs = std::move(result_name).ValueOrDie()

}  // namespace punctsafe

#endif  // PUNCTSAFE_UTIL_STATUS_H_
