// Lock-free per-thread trace ring: a fixed-size single-producer /
// single-consumer ring of compact runtime events (tuple/punctuation
// arrivals, purge sweeps, queue batches, epoch advances, ...). Each
// shard worker owns one ring and is its only producer; the metrics
// exporter (or a test) is the single consumer. Draining never stops
// the producer: the reader only advances `tail_`, the writer only
// advances `head_`, and a full ring *drops* the newest event (counted
// in dropped()) rather than blocking or overwriting in-flight slots —
// a trace ring is a recent-window debugging aid, not a reliable log.
//
// Memory ordering: the producer publishes a slot with a release store
// of head_; the consumer acquires head_ before copying slots and
// publishes consumption with a release store of tail_, which the
// producer acquires before reusing a slot. TSan-clean by construction
// (tests/trace_ring_test.cc stresses a concurrent writer/drainer
// under -DPUNCTSAFE_SANITIZE=thread).

#ifndef PUNCTSAFE_OBS_TRACE_RING_H_
#define PUNCTSAFE_OBS_TRACE_RING_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace punctsafe {
namespace obs {

/// \brief What happened. Payload fields a/b are kind-specific.
enum class TraceKind : uint16_t {
  kNone = 0,
  kTupleIn,       ///< tuple delivered to an operator (a=input, b=results)
  kPunctIn,       ///< punctuation delivered (a=input, b=lag in logical ts)
  kPunctOut,      ///< punctuation propagated downstream (a=input)
  kPurgeSweep,    ///< purge sweep finished (a=tuples purged, b=duration ns)
  kEpochAdvance,  ///< arena epoch boundary (a=blocks reclaimed, b=bytes live)
  kQueueBatch,    ///< worker popped a queue batch (a=batch size)
  kQueueStall,    ///< producer found the input queue full (a=shard queue)
  kDrain,         ///< drain marker processed (a=drain count)
};

/// \brief One compact event (32 bytes).
struct TraceRecord {
  int64_t t_ns = 0;     ///< steady-clock nanoseconds
  TraceKind kind = TraceKind::kNone;
  uint16_t op = 0;      ///< logical operator (plan post-order index)
  uint32_t shard = 0;   ///< shard replica within the operator group
  uint64_t a = 0;       ///< kind-specific payload
  uint64_t b = 0;       ///< kind-specific payload
};

class TraceRing {
 public:
  static constexpr size_t kDefaultCapacity = 8192;

  /// \param capacity rounded up to a power of two (>= 2).
  explicit TraceRing(size_t capacity = kDefaultCapacity)
      : capacity_(std::bit_ceil(capacity < 2 ? size_t{2} : capacity)),
        mask_(capacity_ - 1),
        slots_(new TraceRecord[capacity_]) {}

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// \brief Producer side (owning thread only): appends one record;
  /// drops it (returning false) when the ring is full.
  bool TryPush(const TraceRecord& record) {
    uint64_t head = head_.load(std::memory_order_relaxed);
    uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail >= capacity_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    slots_[head & mask_] = record;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// \brief Consumer side (one drainer at a time): appends up to
  /// `max` pending records to `*out` and returns how many were moved.
  /// Never blocks the producer.
  size_t Drain(std::vector<TraceRecord>* out,
               size_t max = static_cast<size_t>(-1)) {
    uint64_t tail = tail_.load(std::memory_order_relaxed);
    uint64_t head = head_.load(std::memory_order_acquire);
    size_t n = 0;
    while (tail != head && n < max) {
      out->push_back(slots_[tail & mask_]);
      ++tail;
      ++n;
    }
    tail_.store(tail, std::memory_order_release);
    return n;
  }

  /// \brief Events successfully recorded since construction.
  uint64_t recorded() const {
    return head_.load(std::memory_order_relaxed);
  }
  /// \brief Events dropped because the ring was full.
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// \brief Records currently waiting to be drained.
  size_t pending() const {
    return static_cast<size_t>(head_.load(std::memory_order_relaxed) -
                               tail_.load(std::memory_order_relaxed));
  }
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  const size_t mask_;
  std::unique_ptr<TraceRecord[]> slots_;
  // Producer-written, consumer-read.
  std::atomic<uint64_t> head_{0};
  // Consumer-written, producer-read.
  std::atomic<uint64_t> tail_{0};
  std::atomic<uint64_t> dropped_{0};
};

}  // namespace obs
}  // namespace punctsafe

#endif  // PUNCTSAFE_OBS_TRACE_RING_H_
