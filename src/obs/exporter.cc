#include "obs/exporter.h"

#include <chrono>
#include <cstdio>
#include <utility>

namespace punctsafe {
namespace obs {

namespace {

void AppendKv(std::string* out, const char* key, uint64_t value,
              bool* first) {
  if (!*first) out->push_back(',');
  *first = false;
  out->push_back('"');
  out->append(key);
  out->append("\":");
  out->append(std::to_string(value));
}

void AppendKvSigned(std::string* out, const char* key, int64_t value,
                    bool* first) {
  if (!*first) out->push_back(',');
  *first = false;
  out->push_back('"');
  out->append(key);
  out->append("\":");
  out->append(std::to_string(value));
}

void AppendKvString(std::string* out, const char* key,
                    const std::string& value, bool* first) {
  if (!*first) out->push_back(',');
  *first = false;
  out->push_back('"');
  out->append(key);
  out->append("\":\"");
  // The only string payloads are executor names and partition-spec
  // detail strings; escape the JSON specials defensively anyway.
  for (char c : value) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendKvDouble(std::string* out, const char* key, double value,
                    bool* first) {
  if (!*first) out->push_back(',');
  *first = false;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "\"%s\":%.3f", key, value);
  out->append(buf);
}

void AppendKvBool(std::string* out, const char* key, bool value,
                  bool* first) {
  if (!*first) out->push_back(',');
  *first = false;
  out->push_back('"');
  out->append(key);
  out->append("\":");
  out->append(value ? "true" : "false");
}

/// Histogram block: {"count":N,"mean":M,"p50":...,"p95":...,
/// "p99":...,"max":...}. Mean is rendered as an integer (the units
/// are ns or logical ts; sub-unit precision is noise).
void AppendHistogram(std::string* out, const char* key,
                     const HistogramSnapshot& h, bool* first) {
  if (!*first) out->push_back(',');
  *first = false;
  out->push_back('"');
  out->append(key);
  out->append("\":{");
  bool inner = true;
  AppendKv(out, "count", h.Count(), &inner);
  AppendKv(out, "mean", static_cast<uint64_t>(h.Mean()), &inner);
  AppendKv(out, "p50", h.Quantile(0.50), &inner);
  AppendKv(out, "p95", h.Quantile(0.95), &inner);
  AppendKv(out, "p99", h.Quantile(0.99), &inner);
  AppendKv(out, "max", h.max, &inner);
  out->push_back('}');
}

void AppendOperator(std::string* out, const OperatorObsEntry& e,
                    bool* first) {
  if (!*first) out->push_back(',');
  *first = false;
  out->push_back('{');
  bool f = true;
  AppendKv(out, "op", e.op, &f);
  AppendKv(out, "shard", e.shard, &f);
  AppendKv(out, "num_shards", e.num_shards, &f);
  AppendKvBool(out, "partitioned", e.partitioned, &f);
  // Rebalancer view of the group (replicated per shard entry, like
  // the aligner gauges).
  AppendKv(out, "active_shards", e.active_shards, &f);
  AppendKv(out, "shard_map_version", e.shard_map_version, &f);
  AppendKvDouble(out, "skew", e.skew, &f);
  if (!e.partition_detail.empty()) {
    AppendKvString(out, "partition", e.partition_detail, &f);
  }
  // State-store counters (see exec/metrics.h for semantics).
  AppendKv(out, "inserted", e.state.inserted, &f);
  AppendKv(out, "purged", e.state.purged, &f);
  AppendKv(out, "dropped_on_arrival", e.state.dropped_on_arrival, &f);
  AppendKv(out, "probes", e.state.probes, &f);
  AppendKv(out, "live", e.state.live, &f);
  AppendKv(out, "high_water", e.state.high_water, &f);
  AppendKv(out, "arena_bytes_live", e.state.arena_bytes_live, &f);
  // Operator-level counters.
  AppendKv(out, "results_emitted", e.op_metrics.results_emitted, &f);
  AppendKv(out, "puncts_received", e.op_metrics.punctuations_received,
           &f);
  AppendKv(out, "puncts_propagated",
           e.op_metrics.punctuations_propagated, &f);
  AppendKv(out, "purge_sweeps", e.op_metrics.purge_sweeps, &f);
  AppendKv(out, "puncts_live", e.op_metrics.punctuations_live, &f);
  // Routing / backpressure / aligner gauges.
  AppendKv(out, "routed_tuples", e.routed_tuples, &f);
  AppendKv(out, "queue_stalls", e.queue_stalls, &f);
  AppendKv(out, "aligner_pending", e.aligner_pending, &f);
  AppendKv(out, "aligner_pending_hw", e.aligner_pending_high_water,
           &f);
  // Trace-ring accounting.
  AppendKv(out, "trace_recorded", e.trace_recorded, &f);
  AppendKv(out, "trace_dropped", e.trace_dropped, &f);
  // Histograms.
  AppendHistogram(out, "latency_ns", e.latency_ns, &f);
  AppendHistogram(out, "punct_lag", e.punct_lag, &f);
  AppendHistogram(out, "sweep_ns", e.sweep_ns, &f);
  AppendHistogram(out, "queue_depth", e.queue_depth, &f);
  out->push_back('}');
}

}  // namespace

std::string RenderJsonLine(const ObsSnapshot& snapshot) {
  std::string out;
  out.reserve(512 + snapshot.operators.size() * 768);
  out.push_back('{');
  bool first = true;
  AppendKvSigned(&out, "wall_ms", snapshot.wall_ms, &first);
  AppendKv(&out, "seq", snapshot.seq, &first);
  AppendKvString(&out, "executor", snapshot.executor, &first);
  AppendKvString(&out, "simd_dispatch", snapshot.simd_dispatch, &first);
  AppendKv(&out, "batch_size", snapshot.batch_size, &first);
  AppendKv(&out, "results", snapshot.results, &first);
  AppendKv(&out, "live_tuples", snapshot.live_tuples, &first);
  AppendKv(&out, "live_punctuations", snapshot.live_punctuations,
           &first);
  AppendKv(&out, "tuple_high_water", snapshot.tuple_high_water,
           &first);
  AppendKv(&out, "punctuation_high_water",
           snapshot.punctuation_high_water, &first);
  AppendKv(&out, "rebalance_migrations", snapshot.rebalance_migrations,
           &first);
  AppendKv(&out, "rebalance_tuples_moved",
           snapshot.rebalance_tuples_moved, &first);
  out.append(",\"operators\":[");
  bool op_first = true;
  for (const auto& e : snapshot.operators) {
    AppendOperator(&out, e, &op_first);
  }
  out.append("]}");
  return out;
}

MetricsExporter::MetricsExporter(SnapshotFn source, std::ostream* out,
                                 Options options)
    : source_(std::move(source)), out_(out), options_(options) {}

MetricsExporter::MetricsExporter(SnapshotFn source,
                                 const std::string& path,
                                 Options options)
    : source_(std::move(source)),
      owned_file_(std::make_unique<std::ofstream>(
          path, std::ios::out | std::ios::trunc)),
      options_(options) {
  if (owned_file_->is_open()) out_ = owned_file_.get();
}

MetricsExporter::~MetricsExporter() { Stop(); }

void MetricsExporter::Start() {
  if (options_.interval_ms <= 0 || out_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) return;
    running_ = true;
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { RunLoop(); });
}

void MetricsExporter::Stop() {
  bool was_running = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    was_running = running_;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    running_ = false;
  }
  if (was_running && options_.export_on_stop) ExportNow();
}

void MetricsExporter::ExportNow() {
  if (out_ == nullptr || !source_) return;
  WriteLine();
}

void MetricsExporter::Rebind(SnapshotFn source) {
  std::lock_guard<std::mutex> lock(mu_);
  source_ = std::move(source);
}

void MetricsExporter::RunLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                 [this] { return stop_requested_; });
    if (stop_requested_) break;
    lock.unlock();
    WriteLine();
    lock.lock();
  }
}

void MetricsExporter::WriteLine() {
  // Snapshot outside the lock: the source walks executor state and
  // can take operator-level locks; serialize only the write + seq.
  SnapshotFn source;
  {
    std::lock_guard<std::mutex> lock(mu_);
    source = source_;
  }
  ObsSnapshot snap = source();
  std::lock_guard<std::mutex> lock(mu_);
  snap.seq = ++seq_;  // 1-based: seq of the newest line == lines_written()
  snap.wall_ms = WallMs();
  (*out_) << RenderJsonLine(snap) << '\n';
  out_->flush();
}

}  // namespace obs
}  // namespace punctsafe
