// Periodic JSON-lines metrics exporter. A MetricsExporter owns a
// snapshot source (a callback composed by the executor — see
// PlanExecutor::ObservabilitySnapshot / ParallelPlanExecutor::
// ObservabilitySnapshot), and writes one self-contained JSON object
// per line to a stream or file: executor-level counters/gauges, then
// one nested object per shard-operator with its StateMetrics,
// OperatorMetrics, trace-ring totals, and the p50/p95/p99/max
// quantiles of the latency / punctuation-lag / sweep / queue-depth
// histograms. tools/obs_report.py renders the JSONL into a table;
// docs/OBSERVABILITY.md documents the schema.
//
// Start() spawns a background thread that exports every
// `interval_ms`; ExportNow() takes a synchronous snapshot from any
// thread (used by tests and benches, and safe alongside the
// background thread — lines are serialized under a mutex).

#ifndef PUNCTSAFE_OBS_EXPORTER_H_
#define PUNCTSAFE_OBS_EXPORTER_H_

#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>

#include "obs/observability.h"

namespace punctsafe {
namespace obs {

/// \brief Serializes one snapshot as a single JSON object (no
/// trailing newline). Deterministic key order; ASCII only.
std::string RenderJsonLine(const ObsSnapshot& snapshot);

struct ExporterOptions {
  /// Background export period. <= 0 disables the timer thread
  /// (ExportNow still works).
  int64_t interval_ms = 1000;
  /// Emit one final snapshot when Stop() is called (or the exporter
  /// is destroyed while running).
  bool export_on_stop = true;
};

class MetricsExporter {
 public:
  using SnapshotFn = std::function<ObsSnapshot()>;
  using Options = ExporterOptions;

  /// \brief Writes to an externally owned stream (test-friendly).
  MetricsExporter(SnapshotFn source, std::ostream* out,
                  Options options = {});
  /// \brief Appends to a file (created/truncated on open).
  MetricsExporter(SnapshotFn source, const std::string& path,
                  Options options = {});
  ~MetricsExporter();

  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  /// \brief True when the output sink opened successfully.
  bool ok() const { return out_ != nullptr; }

  /// \brief Starts the periodic background thread (no-op when the
  /// interval is non-positive or the thread is already running).
  void Start();
  /// \brief Stops the background thread; optionally flushes a final
  /// snapshot (Options::export_on_stop). Idempotent.
  void Stop();

  /// \brief Takes a snapshot and writes one line immediately.
  void ExportNow();

  /// \brief Swaps the snapshot source while keeping the sink and the
  /// line sequence (benches rebind one JSONL file across successive
  /// executor instances). Must not be called while the background
  /// thread is running; the new source must stay valid for every
  /// later export, including a Stop() flush.
  void Rebind(SnapshotFn source);

  /// \brief Lines written so far.
  uint64_t lines_written() const {
    std::lock_guard<std::mutex> lock(mu_);
    return seq_;
  }

 private:
  void RunLoop();
  void WriteLine();

  SnapshotFn source_;
  std::unique_ptr<std::ofstream> owned_file_;
  std::ostream* out_ = nullptr;
  Options options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool running_ = false;
  uint64_t seq_ = 0;
  std::thread thread_;
};

}  // namespace obs
}  // namespace punctsafe

#endif  // PUNCTSAFE_OBS_EXPORTER_H_
