// Runtime observability context for one executor: a registry of
// per-shard-operator observation points (OperatorObs), each bundling
// a lock-free trace ring with the latency / punctuation-lag /
// purge-sweep / queue-occupancy histograms the adaptive layers need
// (skew rebalancing cannot rebalance what it cannot measure).
//
// Cost model: every hook is a handful of relaxed atomics; operators
// hold a nullable OperatorObs* and skip the hooks entirely when
// observability is off (ExecutorConfig::observe.enabled, the runtime
// toggle). Building with -DPUNCTSAFE_OBSERVABILITY=OFF defines
// PUNCTSAFE_NO_OBS, flips kCompiled to false, and lets the compiler
// fold every `if (obs::kCompiled && ...)` call site to nothing — the
// compile-time toggle. docs/OBSERVABILITY.md has the event taxonomy
// and measured overhead.
//
// Thread contract: one OperatorObs belongs to one shard worker
// thread (its ring's single producer). Histogram/counter reads and
// ring drains may come from any other single thread concurrently
// (the exporter); Observability::DrainTraces serializes drainers.

#ifndef PUNCTSAFE_OBS_OBSERVABILITY_H_
#define PUNCTSAFE_OBS_OBSERVABILITY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exec/metrics.h"
#include "obs/histogram.h"
#include "obs/trace_ring.h"

namespace punctsafe {
namespace obs {

#ifdef PUNCTSAFE_NO_OBS
inline constexpr bool kCompiled = false;
#else
inline constexpr bool kCompiled = true;
#endif

/// \brief Steady-clock nanoseconds (the trace/latency time base).
inline int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// \brief Wall-clock milliseconds since epoch (exporter timestamps).
inline int64_t WallMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

namespace internal {

/// \brief Relaxed atomic max for signed 64-bit (monotone).
inline void AtomicMax64(std::atomic<int64_t>& target, int64_t value) {
  int64_t cur = target.load(std::memory_order_relaxed);
  while (cur < value && !target.compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace internal

struct ObserveOptions {
  /// Master runtime switch; off means no OperatorObs is ever created
  /// and every operator hook short-circuits on a null pointer.
  bool enabled = false;
  /// Trace-ring slots per shard worker (32 bytes each; rounded up to
  /// a power of two). The ring is a recent-window buffer — overflow
  /// drops the newest event and counts it, it never blocks.
  size_t ring_capacity = TraceRing::kDefaultCapacity;
};

/// \brief One observation point: owned by exactly one shard worker.
class OperatorObs {
 public:
  OperatorObs(uint16_t op, uint32_t shard, size_t ring_capacity)
      : op_(op), shard_(shard), ring_(ring_capacity) {}

  uint16_t op() const { return op_; }
  uint32_t shard() const { return shard_; }
  TraceRing& ring() { return ring_; }
  const TraceRing& ring() const { return ring_; }

  /// \brief Appends a ring event (producer thread only).
  void Note(TraceKind kind, uint64_t a = 0, uint64_t b = 0) {
    NoteAt(NowNs(), kind, a, b);
  }

  /// \brief Note with a caller-supplied timestamp — the per-tuple hot
  /// paths reuse the NowNs they already took for latency, so a tuple
  /// event costs no extra clock read.
  void NoteAt(int64_t t_ns, TraceKind kind, uint64_t a = 0,
              uint64_t b = 0) {
    ring_.TryPush(TraceRecord{t_ns, kind, op_, shard_, a, b});
  }

  /// \brief Folds an arriving tuple's logical timestamp into the
  /// per-operator maximum (the reference point for punctuation lag).
  void NoteTupleTs(int64_t ts) {
    internal::AtomicMax64(max_tuple_ts_, ts);
  }
  int64_t max_tuple_ts() const {
    return max_tuple_ts_.load(std::memory_order_relaxed);
  }

  /// \brief Tuple latency, arrival (executor ingress / parent-queue
  /// enqueue) to the end of the operator's synchronous processing of
  /// it — queue wait included under the parallel executor.
  void RecordLatencyNs(int64_t ns) { latency_ns_.Record(ns); }

  /// \brief Punctuation arrival: records its staleness relative to
  /// the newest tuple timestamp this operator has seen (clamped at 0
  /// — a punctuation "from the future" has no lag) and a ring event.
  void RecordPunctuation(size_t input, int64_t punct_ts) {
    int64_t lag = max_tuple_ts() - punct_ts;
    if (lag < 0) lag = 0;
    punct_lag_.Record(lag);
    Note(TraceKind::kPunctIn, input, static_cast<uint64_t>(lag));
  }

  /// \brief Purge sweep finished: duration histogram + ring event.
  void RecordSweep(int64_t dur_ns, uint64_t purged) {
    sweep_ns_.Record(dur_ns);
    Note(TraceKind::kPurgeSweep, purged, static_cast<uint64_t>(dur_ns));
  }

  /// \brief Worker popped a batch of `n` queued elements: occupancy
  /// histogram + ring event (parallel executor only).
  void RecordQueueBatch(uint64_t n) {
    queue_depth_.Record(static_cast<int64_t>(n));
    Note(TraceKind::kQueueBatch, n);
  }

  /// \brief A producer found this worker's queue full (backpressure).
  /// Any thread (atomic counter; the ring belongs to the consumer).
  void IncStall() { stalls_.fetch_add(1, std::memory_order_relaxed); }
  uint64_t stalls() const {
    return stalls_.load(std::memory_order_relaxed);
  }

  /// \brief `n` tuples were hash-routed to this shard (skew
  /// visibility; batch routing counts every row of the batch).
  void IncRouted(uint64_t n = 1) {
    routed_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t routed() const {
    return routed_.load(std::memory_order_relaxed);
  }

  const LogHistogram& latency_ns() const { return latency_ns_; }
  const LogHistogram& punct_lag() const { return punct_lag_; }
  const LogHistogram& sweep_ns() const { return sweep_ns_; }
  const LogHistogram& queue_depth() const { return queue_depth_; }

 private:
  const uint16_t op_;
  const uint32_t shard_;
  TraceRing ring_;
  std::atomic<int64_t> max_tuple_ts_{
      std::numeric_limits<int64_t>::min()};
  std::atomic<uint64_t> stalls_{0};
  std::atomic<uint64_t> routed_{0};
  LogHistogram latency_ns_;   // nanoseconds, arrival -> processed
  LogHistogram punct_lag_;    // logical timestamp units
  LogHistogram sweep_ns_;     // nanoseconds per purge sweep
  LogHistogram queue_depth_;  // elements per popped batch
};

/// \brief One shard-operator's exported view (plain values).
struct OperatorObsEntry {
  uint16_t op = 0;
  uint32_t shard = 0;
  size_t num_shards = 1;
  bool partitioned = false;
  std::string partition_detail;
  /// Shards the group's ShardMap currently routes to (<= num_shards;
  /// the rest are pre-allocated elasticity headroom).
  size_t active_shards = 1;
  /// ShardMap::version() — migrations this group has absorbed.
  uint64_t shard_map_version = 0;
  /// max/mean routed load over the group's active shards (1.0 when
  /// rebalance tracking is off). Replicated per shard like the
  /// aligner gauges.
  double skew = 1.0;
  StateMetricsSnapshot state;
  OperatorMetricsSnapshot op_metrics;
  uint64_t routed_tuples = 0;
  uint64_t queue_stalls = 0;
  size_t aligner_pending = 0;
  size_t aligner_pending_high_water = 0;
  uint64_t trace_recorded = 0;
  uint64_t trace_dropped = 0;
  HistogramSnapshot latency_ns;
  HistogramSnapshot punct_lag;
  HistogramSnapshot sweep_ns;
  HistogramSnapshot queue_depth;

  /// \brief Copies the OperatorObs-owned fields (ids, trace-ring
  /// accounting, counters, histograms); executors fill the rest
  /// (state/op metrics, partitioning, aligner gauges) themselves.
  void CaptureFrom(const OperatorObs& o) {
    op = o.op();
    shard = o.shard();
    routed_tuples = o.routed();
    queue_stalls = o.stalls();
    trace_recorded = o.ring().recorded();
    trace_dropped = o.ring().dropped();
    latency_ns = o.latency_ns().Snapshot();
    punct_lag = o.punct_lag().Snapshot();
    sweep_ns = o.sweep_ns().Snapshot();
    queue_depth = o.queue_depth().Snapshot();
  }
};

/// \brief One executor-wide snapshot (one exporter JSONL line).
struct ObsSnapshot {
  int64_t wall_ms = 0;    ///< filled by the exporter
  uint64_t seq = 0;       ///< filled by the exporter
  std::string executor;   ///< "serial" | "parallel"
  /// Active SIMD dispatch (simd::kDispatchName: "avx2" | "sse2" |
  /// "neon" | "scalar") so a recorded run names the code path that
  /// produced it.
  std::string simd_dispatch;
  /// Configured execution batch capacity (1 = tuple-at-a-time).
  size_t batch_size = 0;
  uint64_t results = 0;
  size_t live_tuples = 0;
  size_t live_punctuations = 0;
  size_t tuple_high_water = 0;
  size_t punctuation_high_water = 0;
  /// Rebalancer totals (parallel executor; zero when rebalancing is
  /// off): punctuation-aligned migrations completed and tuples whose
  /// owning shard changed across them.
  uint64_t rebalance_migrations = 0;
  uint64_t rebalance_tuples_moved = 0;
  std::vector<OperatorObsEntry> operators;
};

/// \brief The per-executor registry: owns every OperatorObs so their
/// rings outlive the worker threads that feed them.
class Observability {
 public:
  explicit Observability(ObserveOptions options)
      : options_(options) {}

  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  /// \brief Registers the observation point for (op, shard). Called
  /// during executor construction, before worker threads start.
  OperatorObs* AddOperator(uint16_t op, uint32_t shard) {
    operators_.push_back(
        std::make_unique<OperatorObs>(op, shard, options_.ring_capacity));
    return operators_.back().get();
  }

  size_t size() const { return operators_.size(); }
  OperatorObs& at(size_t i) { return *operators_[i]; }
  const OperatorObs& at(size_t i) const { return *operators_[i]; }

  /// \brief Drains every ring into `*out` (serialized: the rings are
  /// SPSC, so only one drainer may run at a time). Stop-the-world
  /// free: producers keep writing while this runs. Returns the
  /// number of records moved.
  size_t DrainTraces(std::vector<TraceRecord>* out) {
    std::lock_guard<std::mutex> lock(drain_mu_);
    size_t n = 0;
    for (auto& op : operators_) n += op->ring().Drain(out);
    return n;
  }

  const ObserveOptions& options() const { return options_; }

 private:
  ObserveOptions options_;
  std::vector<std::unique_ptr<OperatorObs>> operators_;
  std::mutex drain_mu_;
};

}  // namespace obs
}  // namespace punctsafe

#endif  // PUNCTSAFE_OBS_OBSERVABILITY_H_
