// HDR-style log-bucketed histogram for runtime observability
// (latencies, punctuation lag, queue occupancy). Values are binned
// into power-of-two octaves split into 2^kSubBits linear sub-buckets,
// so the relative quantile error is bounded by 1/2^kSubBits (~6%)
// while Record stays one shift, one mask, and one relaxed fetch_add —
// cheap enough for per-tuple paths.
//
// Concurrency: Record uses relaxed atomics, so one recording thread
// and any number of snapshotting threads coexist without locks (the
// same quiescent-consistency contract as exec/metrics.h). Snapshots
// are plain values; Merge is associative and commutative, which is
// what lets per-shard histograms roll up into one logical-operator
// view in any order (pinned in tests/histogram_test.cc).

#ifndef PUNCTSAFE_OBS_HISTOGRAM_H_
#define PUNCTSAFE_OBS_HISTOGRAM_H_

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace punctsafe {
namespace obs {

/// \brief Plain-value copy of a LogHistogram, mergeable across shards.
struct HistogramSnapshot {
  std::vector<uint64_t> counts;  ///< per log-bucket occupancy
  uint64_t total = 0;            ///< sum of counts
  uint64_t sum = 0;              ///< sum of recorded values (mean = sum/total)
  uint64_t max = 0;              ///< exact maximum recorded value

  /// \brief Element-wise accumulation (associative + commutative).
  HistogramSnapshot& Merge(const HistogramSnapshot& other) {
    if (counts.size() < other.counts.size()) {
      counts.resize(other.counts.size(), 0);
    }
    for (size_t i = 0; i < other.counts.size(); ++i) {
      counts[i] += other.counts[i];
    }
    total += other.total;
    sum += other.sum;
    max = std::max(max, other.max);
    return *this;
  }

  /// \brief Value at quantile q in [0, 1]: the lower bound of the
  /// first bucket whose cumulative count reaches q * total (so
  /// Quantile is monotone in q). q >= 1 returns the exact max.
  uint64_t Quantile(double q) const;

  uint64_t Count() const { return total; }
  double Mean() const {
    return total > 0 ? static_cast<double>(sum) / static_cast<double>(total)
                     : 0.0;
  }
};

class LogHistogram {
 public:
  /// Linear sub-buckets per octave: 2^4 = 16 (≈6% relative error).
  static constexpr int kSubBits = 4;
  static constexpr size_t kSubCount = size_t{1} << kSubBits;
  /// Bucket index space: values < kSubCount map to themselves
  /// (exact); above that, (octave, sub-bucket) pairs. 64-bit values
  /// top out at index (63 - kSubBits + 1) * kSubCount + (kSubCount-1).
  static constexpr size_t kNumBuckets = (64 - kSubBits) * kSubCount;

  /// \brief Bucket index for a value (monotone in v).
  static size_t BucketOf(uint64_t v) {
    if (v < kSubCount) return static_cast<size_t>(v);
    int msb = 63 - std::countl_zero(v);
    size_t sub =
        static_cast<size_t>(v >> (msb - kSubBits)) & (kSubCount - 1);
    return static_cast<size_t>(msb - kSubBits + 1) * kSubCount + sub;
  }

  /// \brief Smallest value that maps to bucket `idx` (the quantile
  /// representative; BucketOf(BucketLowerBound(i)) == i).
  static uint64_t BucketLowerBound(size_t idx) {
    if (idx < kSubCount) return idx;
    size_t block = idx / kSubCount;
    size_t sub = idx % kSubCount;
    int msb = kSubBits + static_cast<int>(block) - 1;
    return (uint64_t{1} << msb) | (static_cast<uint64_t>(sub)
                                   << (msb - kSubBits));
  }

  /// \brief Records one value (negative inputs clamp to 0 so logical
  /// lags that run "early" don't wrap the unsigned bin space).
  void Record(int64_t value) {
    uint64_t v = value > 0 ? static_cast<uint64_t>(value) : 0;
    counts_[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    uint64_t cur = max_.load(std::memory_order_relaxed);
    while (cur < v && !max_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }

  HistogramSnapshot Snapshot() const {
    HistogramSnapshot s;
    s.counts.resize(kNumBuckets, 0);
    for (size_t i = 0; i < kNumBuckets; ++i) {
      uint64_t c = counts_[i].load(std::memory_order_relaxed);
      s.counts[i] = c;
      s.total += c;
    }
    s.sum = sum_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::atomic<uint64_t> counts_[kNumBuckets] = {};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

inline uint64_t HistogramSnapshot::Quantile(double q) const {
  if (total == 0) return 0;
  if (q >= 1.0) return max;
  if (q < 0.0) q = 0.0;
  // Rank of the q-th element (1-based, ceil) in the sorted multiset.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total));
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= rank) {
      // The top bucket's lower bound can exceed the true max only in
      // the exact-value range; clamp for a tidy invariant q<=1 -> <=max.
      return std::min(LogHistogram::BucketLowerBound(i), max);
    }
  }
  return max;
}

}  // namespace obs
}  // namespace punctsafe

#endif  // PUNCTSAFE_OBS_HISTOGRAM_H_
