// Umbrella header: the complete public API of punctsafe.
//
// punctsafe reproduces "Safety Guarantee of Continuous Join Queries
// over Punctuated Data Streams" (Li, Chen, Tatemura, Agrawal, Candan,
// Hsiung — VLDB 2006): compile-time safety checking of continuous
// join queries under punctuation schemes, the chained purge strategy,
// a punctuation-aware join runtime, and safe-plan selection.
//
// Typical entry points:
//   QueryRegister       — register streams/schemes, admit safe CJQs
//   SafetyChecker       — Theorems 1-5 verdicts with explanations
//   PlanExecutor        — run a plan shape over stream traces
//   ParallelExecutor    — pipelined runtime, one thread per operator
//   SafePlanEnumerator / PlanChooser — Section 5.2 plan selection

#ifndef PUNCTSAFE_PUNCTSAFE_H_
#define PUNCTSAFE_PUNCTSAFE_H_

// Stream & punctuation model (paper Section 2).
#include "stream/catalog.h"
#include "stream/element.h"
#include "stream/punctuation.h"
#include "stream/schema.h"
#include "stream/scheme.h"
#include "stream/tuple.h"
#include "stream/value.h"

// Query model.
#include "query/cjq.h"
#include "query/join_graph.h"
#include "query/plan_shape.h"
#include "query/predicate.h"
#include "query/spec_parser.h"

// Safety checking (paper Sections 3-4).
#include "core/chained_purge.h"
#include "core/generalized_punctuation_graph.h"
#include "core/naive_checker.h"
#include "core/plan_safety.h"
#include "core/punctuation_graph.h"
#include "core/safety_checker.h"
#include "core/transformed_punctuation_graph.h"

// Runtime (paper Figure 2 architecture).
#include "exec/bounded_queue.h"
#include "exec/checkpoint.h"
#include "exec/input_manager.h"
#include "exec/mjoin.h"
#include "exec/parallel_executor.h"
#include "exec/plan_executor.h"
#include "exec/query_register.h"
#include "exec/purge_engine.h"
#include "exec/reference_join.h"
#include "exec/symmetric_hash_join.h"

// Plan selection (paper Section 5.2).
#include "plan/chooser.h"
#include "plan/cost_model.h"
#include "plan/enumerator.h"
#include "plan/scheme_selection.h"

// Workload generators.
#include "workload/auction.h"
#include "workload/network.h"
#include "workload/random_query.h"
#include "workload/sensor.h"

#endif  // PUNCTSAFE_PUNCTSAFE_H_
