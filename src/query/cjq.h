// ContinuousJoinQuery: CJQ(ℑ, ℘) of paper Section 2.2 — a set of data
// streams ℑ and conjunctive equi-join predicates ℘ between them.

#ifndef PUNCTSAFE_QUERY_CJQ_H_
#define PUNCTSAFE_QUERY_CJQ_H_

#include <optional>
#include <string>
#include <vector>

#include "query/predicate.h"
#include "stream/catalog.h"
#include "stream/schema.h"
#include "util/status.h"

namespace punctsafe {

class ContinuousJoinQuery {
 public:
  /// \brief Builds and validates a CJQ.
  ///
  /// Validation enforces the paper's query class:
  ///  - at least two distinct registered streams;
  ///  - every predicate is an equi-join between attributes of two
  ///    *different* query streams, with matching attribute types;
  ///  - the join graph is connected (a disconnected CJQ contains a
  ///    cross product, which no punctuation can ever purge).
  static Result<ContinuousJoinQuery> Create(
      const StreamCatalog& catalog, std::vector<std::string> streams,
      const std::vector<JoinPredicateSpec>& predicates);

  size_t num_streams() const { return streams_.size(); }
  const std::vector<std::string>& streams() const { return streams_; }
  const std::string& stream(size_t i) const { return streams_[i]; }
  const Schema& schema(size_t i) const { return schemas_[i]; }

  /// \brief Index of the named stream within the query.
  std::optional<size_t> StreamIndex(const std::string& name) const;

  const std::vector<ResolvedPredicate>& predicates() const {
    return predicates_;
  }

  /// \brief Indices (into predicates()) of predicates between streams
  /// i and j, in canonical order.
  std::vector<size_t> PredicatesBetween(size_t i, size_t j) const;

  /// \brief Attribute indices of stream i that participate in some
  /// join predicate (with any other stream), deduplicated ascending.
  std::vector<size_t> JoinAttrsOf(size_t i) const;

  /// \brief Streams j != i directly joined with i, ascending.
  std::vector<size_t> NeighborsOf(size_t i) const;

  /// \brief "CJQ(S1,S2,S3 | S1.B=S2.B AND S2.C=S3.C)" rendering.
  std::string ToString() const;

 private:
  std::vector<std::string> streams_;
  std::vector<Schema> schemas_;
  std::vector<ResolvedPredicate> predicates_;
};

}  // namespace punctsafe

#endif  // PUNCTSAFE_QUERY_CJQ_H_
