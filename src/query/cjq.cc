#include "query/cjq.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "util/string_util.h"

namespace punctsafe {

namespace {

// Resolves one side of a predicate spec against the query streams.
Result<std::pair<size_t, size_t>> ResolveSide(
    const AttrRef& ref, const std::vector<std::string>& streams,
    const std::vector<Schema>& schemas) {
  auto it = std::find(streams.begin(), streams.end(), ref.stream);
  if (it == streams.end()) {
    return Status::NotFound(
        StrCat("predicate references stream '", ref.stream,
               "' which is not part of the query"));
  }
  size_t stream_idx = static_cast<size_t>(it - streams.begin());
  auto attr_idx = schemas[stream_idx].IndexOf(ref.attribute);
  if (!attr_idx.has_value()) {
    return Status::NotFound(StrCat("attribute '", ref.ToString(),
                                   "' not found in schema ",
                                   schemas[stream_idx].ToString()));
  }
  return std::make_pair(stream_idx, *attr_idx);
}

}  // namespace

Result<ContinuousJoinQuery> ContinuousJoinQuery::Create(
    const StreamCatalog& catalog, std::vector<std::string> streams,
    const std::vector<JoinPredicateSpec>& predicates) {
  if (streams.size() < 2) {
    return Status::InvalidArgument("a CJQ joins at least two streams");
  }
  std::unordered_set<std::string> seen;
  ContinuousJoinQuery query;
  for (auto& name : streams) {
    if (!seen.insert(name).second) {
      return Status::InvalidArgument(
          StrCat("stream '", name, "' appears twice in the query"));
    }
    PUNCTSAFE_ASSIGN_OR_RETURN(const Schema* schema, catalog.Get(name));
    query.schemas_.push_back(*schema);
    query.streams_.push_back(std::move(name));
  }

  for (const auto& spec : predicates) {
    PUNCTSAFE_ASSIGN_OR_RETURN(
        auto left, ResolveSide(spec.left, query.streams_, query.schemas_));
    PUNCTSAFE_ASSIGN_OR_RETURN(
        auto right, ResolveSide(spec.right, query.streams_, query.schemas_));
    if (left.first == right.first) {
      return Status::InvalidArgument(
          StrCat("predicate ", spec.ToString(),
                 " joins a stream with itself; only predicates between two "
                 "distinct streams are supported"));
    }
    ValueType lt = query.schemas_[left.first].attribute(left.second).type;
    ValueType rt = query.schemas_[right.first].attribute(right.second).type;
    if (lt != rt) {
      return Status::InvalidArgument(
          StrCat("predicate ", spec.ToString(), " compares ",
                 ValueTypeToString(lt), " with ", ValueTypeToString(rt)));
    }
    ResolvedPredicate p;
    if (left.first < right.first) {
      p = {left.first, left.second, right.first, right.second};
    } else {
      p = {right.first, right.second, left.first, left.second};
    }
    if (std::find(query.predicates_.begin(), query.predicates_.end(), p) ==
        query.predicates_.end()) {
      query.predicates_.push_back(p);
    }
  }

  if (query.predicates_.empty()) {
    return Status::InvalidArgument("a CJQ needs at least one join predicate");
  }

  // Connectivity of the join graph (BFS over predicate adjacency).
  std::vector<bool> reached(query.streams_.size(), false);
  std::deque<size_t> queue{0};
  reached[0] = true;
  size_t count = 1;
  while (!queue.empty()) {
    size_t u = queue.front();
    queue.pop_front();
    for (const auto& p : query.predicates_) {
      if (!p.Involves(u)) continue;
      size_t v = p.OtherStream(u);
      if (!reached[v]) {
        reached[v] = true;
        ++count;
        queue.push_back(v);
      }
    }
  }
  if (count != query.streams_.size()) {
    return Status::InvalidArgument(
        "join graph is disconnected: the query contains a cross product, "
        "which cannot be made safe by any punctuation scheme");
  }
  return query;
}

std::optional<size_t> ContinuousJoinQuery::StreamIndex(
    const std::string& name) const {
  auto it = std::find(streams_.begin(), streams_.end(), name);
  if (it == streams_.end()) return std::nullopt;
  return static_cast<size_t>(it - streams_.begin());
}

std::vector<size_t> ContinuousJoinQuery::PredicatesBetween(size_t i,
                                                           size_t j) const {
  std::vector<size_t> out;
  for (size_t k = 0; k < predicates_.size(); ++k) {
    const auto& p = predicates_[k];
    if ((p.left_stream == i && p.right_stream == j) ||
        (p.left_stream == j && p.right_stream == i)) {
      out.push_back(k);
    }
  }
  return out;
}

std::vector<size_t> ContinuousJoinQuery::JoinAttrsOf(size_t i) const {
  std::vector<size_t> out;
  for (const auto& p : predicates_) {
    if (!p.Involves(i)) continue;
    size_t a = p.AttrOn(i);
    if (std::find(out.begin(), out.end(), a) == out.end()) out.push_back(a);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<size_t> ContinuousJoinQuery::NeighborsOf(size_t i) const {
  std::vector<size_t> out;
  for (const auto& p : predicates_) {
    if (!p.Involves(i)) continue;
    size_t other = p.OtherStream(i);
    if (std::find(out.begin(), out.end(), other) == out.end()) {
      out.push_back(other);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string ContinuousJoinQuery::ToString() const {
  auto pred_str = [this](const ResolvedPredicate& p) {
    return StrCat(streams_[p.left_stream], ".",
                  schemas_[p.left_stream].attribute(p.left_attr).name, " = ",
                  streams_[p.right_stream], ".",
                  schemas_[p.right_stream].attribute(p.right_attr).name);
  };
  return StrCat("CJQ(", Join(streams_, ","), " | ",
                JoinMapped(predicates_, " AND ", pred_str), ")");
}

}  // namespace punctsafe
