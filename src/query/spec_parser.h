// A tiny text format for describing streams, punctuation schemes and
// a continuous join query — the input of the `punctsafe_check` CLI
// tool and a convenient fixture format for tests:
//
//   # online auction (paper Example 1)
//   stream item sellerid:int itemid:int name:string initialprice:int
//   stream bid  bidderid:int itemid:int increase:int
//   scheme item itemid
//   scheme bid  itemid
//   query  item bid
//   join   item.itemid = bid.itemid
//
// Lines: `stream <name> <attr>:<type>...` (types: int, double,
// string), `scheme <stream> <attr>...` (several attrs = one
// multi-attribute scheme), `query <stream>...`, `join <s>.<a> =
// <s>.<a>`. `#` starts a comment; blank lines are ignored. A `;` is
// equivalent to a newline, so a whole spec fits on a single line —
// the form the ingestion server's `REGISTER QUERY ... AS <spec>`
// command uses (src/server/, docs/SERVER.md).

#ifndef PUNCTSAFE_QUERY_SPEC_PARSER_H_
#define PUNCTSAFE_QUERY_SPEC_PARSER_H_

#include <string>
#include <vector>

#include "query/cjq.h"
#include "stream/catalog.h"
#include "stream/scheme.h"
#include "util/status.h"

namespace punctsafe {

struct ParsedSpec {
  StreamCatalog catalog;
  SchemeSet schemes;
  std::vector<std::string> query_streams;
  std::vector<JoinPredicateSpec> predicates;

  /// \brief Builds the validated query from the spec.
  Result<ContinuousJoinQuery> MakeQuery() const {
    return ContinuousJoinQuery::Create(catalog, query_streams, predicates);
  }
};

/// \brief Parses the spec text; error messages carry line numbers.
Result<ParsedSpec> ParseSpec(const std::string& text);

/// \brief Like ParseSpec, but seeds the spec's catalog with
/// already-registered streams (the ingestion-server case: streams are
/// created once via `CREATE STREAM` and referenced by many query
/// specs). `stream` lines in the text may add further streams but
/// redeclaring a seeded name is rejected (AlreadyExists), exactly as
/// a duplicate declaration inside one spec is.
Result<ParsedSpec> ParseSpec(const std::string& text,
                             const StreamCatalog& seed_catalog);

}  // namespace punctsafe

#endif  // PUNCTSAFE_QUERY_SPEC_PARSER_H_
