#include "query/plan_shape.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace punctsafe {

PlanShape PlanShape::Join(std::vector<PlanShape> children) {
  PUNCTSAFE_CHECK(children.size() >= 2)
      << "a join operator needs at least two inputs";
  PlanShape s;
  s.children_ = std::move(children);
  return s;
}

PlanShape PlanShape::SingleMJoin(size_t num_streams) {
  PUNCTSAFE_CHECK(num_streams >= 2);
  std::vector<PlanShape> children;
  children.reserve(num_streams);
  for (size_t i = 0; i < num_streams; ++i) children.push_back(Leaf(i));
  return Join(std::move(children));
}

PlanShape PlanShape::LeftDeepBinary(const std::vector<size_t>& order) {
  PUNCTSAFE_CHECK(order.size() >= 2);
  PlanShape acc = Leaf(order[0]);
  for (size_t i = 1; i < order.size(); ++i) {
    std::vector<PlanShape> pair;
    pair.push_back(std::move(acc));
    pair.push_back(Leaf(order[i]));
    acc = Join(std::move(pair));
  }
  return acc;
}

std::vector<size_t> PlanShape::Leaves() const {
  std::vector<size_t> out;
  if (IsLeaf()) {
    out.push_back(stream());
    return out;
  }
  for (const auto& child : children_) {
    auto sub = child.Leaves();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

size_t PlanShape::NumOperators() const {
  if (IsLeaf()) return 0;
  size_t count = 1;
  for (const auto& child : children_) count += child.NumOperators();
  return count;
}

bool PlanShape::IsBinaryTree() const {
  if (IsLeaf()) return true;
  if (children_.size() != 2) return false;
  return std::all_of(children_.begin(), children_.end(),
                     [](const PlanShape& c) { return c.IsBinaryTree(); });
}

std::string PlanShape::ToString(const ContinuousJoinQuery& query) const {
  if (IsLeaf()) return query.stream(stream());
  auto render = [&query](const PlanShape& c) { return c.ToString(query); };
  if (children_.size() == 2) {
    return StrCat("(", render(children_[0]), " JOIN ", render(children_[1]),
                  ")");
  }
  return StrCat("[", JoinMapped(children_, " ", render), "]");
}

}  // namespace punctsafe
