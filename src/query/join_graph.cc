#include "query/join_graph.h"

#include <algorithm>
#include <deque>

#include "util/logging.h"
#include "util/string_util.h"

namespace punctsafe {

JoinGraph::JoinGraph(const ContinuousJoinQuery& query) {
  adjacency_.resize(query.num_streams());
  for (size_t i = 0; i < query.num_streams(); ++i) {
    adjacency_[i] = query.NeighborsOf(i);
  }
}

bool JoinGraph::HasEdge(size_t u, size_t v) const {
  PUNCTSAFE_CHECK(u < num_nodes() && v < num_nodes());
  return std::binary_search(adjacency_[u].begin(), adjacency_[u].end(), v);
}

bool JoinGraph::IsConnected() const {
  if (num_nodes() == 0) return true;
  auto tree = SpanningTreeFrom(0);
  return tree.bfs_order.size() == num_nodes();
}

bool JoinGraph::IsCyclic() const {
  // An undirected connected graph is acyclic iff |E| == |V| - 1.
  size_t twice_edges = 0;
  for (const auto& adj : adjacency_) twice_edges += adj.size();
  return twice_edges / 2 >= num_nodes();
}

SpanningTree JoinGraph::SpanningTreeFrom(size_t root) const {
  PUNCTSAFE_CHECK(root < num_nodes());
  SpanningTree tree;
  tree.root = root;
  tree.parent.assign(num_nodes(), static_cast<size_t>(-1));
  tree.parent[root] = root;
  std::deque<size_t> queue{root};
  while (!queue.empty()) {
    size_t u = queue.front();
    queue.pop_front();
    tree.bfs_order.push_back(u);
    for (size_t v : adjacency_[u]) {
      if (tree.parent[v] == static_cast<size_t>(-1)) {
        tree.parent[v] = u;
        queue.push_back(v);
      }
    }
  }
  return tree;
}

std::string JoinGraph::ToString() const {
  std::ostringstream out;
  bool first = true;
  for (size_t u = 0; u < num_nodes(); ++u) {
    for (size_t v : adjacency_[u]) {
      if (u < v) {
        if (!first) out << ", ";
        first = false;
        out << u << "--" << v;
      }
    }
  }
  return out.str();
}

}  // namespace punctsafe
