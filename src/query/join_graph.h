// The join graph (paper Definition 6): an undirected labeled graph
// with one vertex per input stream and an edge wherever a join
// predicate links two streams. Spanning trees of this graph drive the
// chained purge strategy (Section 3.2.1).

#ifndef PUNCTSAFE_QUERY_JOIN_GRAPH_H_
#define PUNCTSAFE_QUERY_JOIN_GRAPH_H_

#include <cstddef>
#include <string>
#include <vector>

#include "query/cjq.h"

namespace punctsafe {

/// \brief A rooted spanning tree of the join graph in BFS order.
struct SpanningTree {
  size_t root = 0;
  /// parent[v] for non-root v; parent[root] == root.
  std::vector<size_t> parent;
  /// Nodes in BFS visit order, starting with the root.
  std::vector<size_t> bfs_order;
};

class JoinGraph {
 public:
  explicit JoinGraph(const ContinuousJoinQuery& query);

  size_t num_nodes() const { return adjacency_.size(); }

  /// \brief Neighbors of node v (ascending, deduplicated).
  const std::vector<size_t>& NeighborsOf(size_t v) const {
    return adjacency_[v];
  }

  bool HasEdge(size_t u, size_t v) const;

  /// \brief True iff every stream is reachable from every other
  /// (guaranteed for validated CJQs).
  bool IsConnected() const;

  /// \brief True iff the graph contains a cycle (Section 3.2: cyclic
  /// join graphs admit multiple purge chains per state).
  bool IsCyclic() const;

  /// \brief BFS spanning tree rooted at `root`.
  SpanningTree SpanningTreeFrom(size_t root) const;

  std::string ToString() const;

 private:
  std::vector<std::vector<size_t>> adjacency_;
};

}  // namespace punctsafe

#endif  // PUNCTSAFE_QUERY_JOIN_GRAPH_H_
