#include "query/spec_parser.h"

#include <algorithm>

#include "util/string_util.h"

namespace punctsafe {

namespace {

// Whitespace-splits a line, dropping empties.
std::vector<std::string> Tokens(const std::string& line) {
  std::vector<std::string> out;
  std::string current;
  for (char c : line) {
    if (c == ' ' || c == '\t' || c == '\r') {
      if (!current.empty()) out.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) out.push_back(std::move(current));
  return out;
}

Status ParseError(size_t line_no, const std::string& message) {
  return Status::InvalidArgument(
      StrCat("spec line ", line_no, ": ", message));
}

Result<ValueType> ParseType(const std::string& name, size_t line_no) {
  if (name == "int" || name == "int64") return ValueType::kInt64;
  if (name == "double") return ValueType::kDouble;
  if (name == "string") return ValueType::kString;
  return ParseError(line_no, StrCat("unknown type '", name,
                                    "' (expected int, double or string)"));
}

// Parses "stream.attr" into an AttrRef.
Result<AttrRef> ParseAttrRef(const std::string& token, size_t line_no) {
  size_t dot = token.find('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 == token.size()) {
    return ParseError(line_no,
                      StrCat("expected stream.attr, got '", token, "'"));
  }
  return AttrRef{token.substr(0, dot), token.substr(dot + 1)};
}

}  // namespace

namespace {

Result<ParsedSpec> ParseSpecImpl(const std::string& text,
                                 const StreamCatalog* seed_catalog) {
  ParsedSpec spec;
  if (seed_catalog != nullptr) spec.catalog = *seed_catalog;
  // Physical lines first; after comment stripping, ';' splits a
  // physical line into further logical lines (all reported under the
  // physical line number), so one-line specs work.
  std::vector<std::string> lines;
  std::vector<size_t> line_numbers;
  std::vector<std::string> physical = Split(text, '\n');
  for (size_t i = 0; i < physical.size(); ++i) {
    std::string line = physical[i];
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    for (std::string& part : Split(line, ';')) {
      lines.push_back(std::move(part));
      line_numbers.push_back(i + 1);
    }
  }
  for (size_t i = 0; i < lines.size(); ++i) {
    size_t line_no = line_numbers[i];
    const std::string& line = lines[i];
    std::vector<std::string> tokens = Tokens(line);
    if (tokens.empty()) continue;
    const std::string& keyword = tokens[0];

    if (keyword == "stream") {
      if (tokens.size() < 3) {
        return ParseError(line_no,
                          "stream needs a name and at least one attr:type");
      }
      std::vector<Attribute> attrs;
      for (size_t t = 2; t < tokens.size(); ++t) {
        size_t colon = tokens[t].find(':');
        if (colon == std::string::npos) {
          return ParseError(line_no, StrCat("expected attr:type, got '",
                                            tokens[t], "'"));
        }
        PUNCTSAFE_ASSIGN_OR_RETURN(
            ValueType type, ParseType(tokens[t].substr(colon + 1), line_no));
        attrs.push_back({tokens[t].substr(0, colon), type});
      }
      PUNCTSAFE_RETURN_IF_ERROR(
          spec.catalog.Register(tokens[1], Schema(std::move(attrs))));
    } else if (keyword == "scheme") {
      if (tokens.size() < 3) {
        return ParseError(line_no,
                          "scheme needs a stream and at least one attribute");
      }
      PUNCTSAFE_ASSIGN_OR_RETURN(const Schema* schema,
                                 spec.catalog.Get(tokens[1]));
      PUNCTSAFE_ASSIGN_OR_RETURN(
          PunctuationScheme scheme,
          PunctuationScheme::OnAttributes(
              tokens[1], *schema,
              std::vector<std::string>(tokens.begin() + 2, tokens.end())));
      PUNCTSAFE_RETURN_IF_ERROR(spec.schemes.Add(std::move(scheme)));
    } else if (keyword == "query") {
      if (!spec.query_streams.empty()) {
        return ParseError(line_no, "only one query line is allowed");
      }
      if (tokens.size() < 3) {
        return ParseError(line_no, "query needs at least two streams");
      }
      spec.query_streams.assign(tokens.begin() + 1, tokens.end());
    } else if (keyword == "join") {
      // join a.x = b.y   (the '=' may be fused with either side)
      std::vector<std::string> parts(tokens.begin() + 1, tokens.end());
      std::string joined = Join(parts, "");
      size_t eq = joined.find('=');
      if (eq == std::string::npos) {
        return ParseError(line_no, "join needs the form s1.a = s2.b");
      }
      PUNCTSAFE_ASSIGN_OR_RETURN(
          AttrRef left, ParseAttrRef(joined.substr(0, eq), line_no));
      PUNCTSAFE_ASSIGN_OR_RETURN(
          AttrRef right, ParseAttrRef(joined.substr(eq + 1), line_no));
      spec.predicates.push_back(Eq(std::move(left), std::move(right)));
    } else {
      return ParseError(line_no, StrCat("unknown keyword '", keyword, "'"));
    }
  }

  if (spec.query_streams.empty()) {
    return Status::InvalidArgument("spec has no query line");
  }
  for (const std::string& stream : spec.query_streams) {
    if (!spec.catalog.Get(stream).ok()) {
      return Status::NotFound(
          StrCat("query references unknown stream '", stream,
                 "' (declare it with a stream line or seed the catalog)"));
    }
  }
  if (spec.predicates.empty()) {
    return Status::InvalidArgument("spec has no join lines");
  }
  return spec;
}

}  // namespace

Result<ParsedSpec> ParseSpec(const std::string& text) {
  return ParseSpecImpl(text, nullptr);
}

Result<ParsedSpec> ParseSpec(const std::string& text,
                             const StreamCatalog& seed_catalog) {
  return ParseSpecImpl(text, &seed_catalog);
}

}  // namespace punctsafe
