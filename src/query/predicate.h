// Attribute references and equi-join predicates (paper Section 2.2).
// Only conjunctive equi-joins between pairs of streams are supported,
// exactly the class the paper's theory covers; other predicate kinds
// are rejected at query validation.

#ifndef PUNCTSAFE_QUERY_PREDICATE_H_
#define PUNCTSAFE_QUERY_PREDICATE_H_

#include <cstddef>
#include <string>

namespace punctsafe {

/// \brief A "Stream.Attribute" reference by name (pre-resolution).
struct AttrRef {
  std::string stream;
  std::string attribute;

  bool operator==(const AttrRef& other) const {
    return stream == other.stream && attribute == other.attribute;
  }
  std::string ToString() const { return stream + "." + attribute; }
};

/// \brief An equi-join predicate `left = right` by name. Resolution
/// against the query's streams happens in ContinuousJoinQuery.
struct JoinPredicateSpec {
  AttrRef left;
  AttrRef right;

  std::string ToString() const {
    return left.ToString() + " = " + right.ToString();
  }
};

/// \brief Convenience factory: Eq({"S1","B"}, {"S2","B"}).
inline JoinPredicateSpec Eq(AttrRef left, AttrRef right) {
  return JoinPredicateSpec{std::move(left), std::move(right)};
}

/// \brief A resolved equi-join predicate: stream and attribute
/// positions within a particular query. Always stored with
/// left_stream < right_stream for canonical form.
struct ResolvedPredicate {
  size_t left_stream = 0;
  size_t left_attr = 0;
  size_t right_stream = 0;
  size_t right_attr = 0;

  /// \brief True iff the predicate touches stream `s`.
  bool Involves(size_t s) const {
    return left_stream == s || right_stream == s;
  }
  /// \brief For a predicate touching `s`, the other stream.
  size_t OtherStream(size_t s) const {
    return left_stream == s ? right_stream : left_stream;
  }
  /// \brief For a predicate touching `s`, the attribute index on s's
  /// side.
  size_t AttrOn(size_t s) const {
    return left_stream == s ? left_attr : right_attr;
  }

  bool operator==(const ResolvedPredicate& other) const {
    return left_stream == other.left_stream && left_attr == other.left_attr &&
           right_stream == other.right_stream &&
           right_attr == other.right_attr;
  }
};

}  // namespace punctsafe

#endif  // PUNCTSAFE_QUERY_PREDICATE_H_
