// Execution-plan shapes (paper Section 2.2 / 4.1.2): a CJQ can run as
// a single MJoin, a tree of binary joins, a tree of MJoins, or any
// mix. A PlanShape is that operator tree, independent of physical
// operator choice; leaves are query stream indices and every internal
// node is a join operator over >= 2 children.

#ifndef PUNCTSAFE_QUERY_PLAN_SHAPE_H_
#define PUNCTSAFE_QUERY_PLAN_SHAPE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "query/cjq.h"

namespace punctsafe {

class PlanShape {
 public:
  static PlanShape Leaf(size_t stream) {
    PlanShape s;
    s.stream_ = static_cast<long>(stream);
    return s;
  }
  static PlanShape Join(std::vector<PlanShape> children);

  /// \brief Single n-way MJoin over all streams of the query,
  /// 0..n-1.
  static PlanShape SingleMJoin(size_t num_streams);

  /// \brief Left-deep binary tree over the streams in the given
  /// order: ((s0 ⋈ s1) ⋈ s2) ⋈ ...
  static PlanShape LeftDeepBinary(const std::vector<size_t>& order);

  bool IsLeaf() const { return stream_ >= 0; }
  size_t stream() const { return static_cast<size_t>(stream_); }
  const std::vector<PlanShape>& children() const { return children_; }

  /// \brief Stream indices of the leaves, sorted ascending.
  std::vector<size_t> Leaves() const;

  /// \brief Number of internal (join) nodes.
  size_t NumOperators() const;

  /// \brief True iff every internal node has exactly two children.
  bool IsBinaryTree() const;

  /// \brief "((S1 ⨝ S2) ⨝ S3)" / "[S1 S2 S3]" rendering; MJoin nodes
  /// with > 2 children render as bracketed lists.
  std::string ToString(const ContinuousJoinQuery& query) const;

  bool operator==(const PlanShape& other) const {
    return stream_ == other.stream_ && children_ == other.children_;
  }

 private:
  long stream_ = -1;  // >= 0 for leaves
  std::vector<PlanShape> children_;
};

}  // namespace punctsafe

#endif  // PUNCTSAFE_QUERY_PLAN_SHAPE_H_
