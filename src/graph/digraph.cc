#include "graph/digraph.h"

#include <algorithm>
#include <deque>

#include "util/logging.h"
#include "util/string_util.h"

namespace punctsafe {

void Digraph::AddEdge(size_t u, size_t v) {
  PUNCTSAFE_CHECK(u < num_nodes() && v < num_nodes())
      << "edge (" << u << "," << v << ") out of range";
  if (HasEdge(u, v)) return;
  adj_[u].push_back(v);
  ++num_edges_;
}

bool Digraph::HasEdge(size_t u, size_t v) const {
  PUNCTSAFE_CHECK(u < num_nodes() && v < num_nodes());
  return std::find(adj_[u].begin(), adj_[u].end(), v) != adj_[u].end();
}

Digraph Digraph::Reversed() const {
  Digraph rev(num_nodes());
  for (size_t u = 0; u < num_nodes(); ++u) {
    for (size_t v : adj_[u]) rev.AddEdge(v, u);
  }
  return rev;
}

std::vector<bool> Digraph::ReachableFrom(size_t start) const {
  PUNCTSAFE_CHECK(start < num_nodes());
  std::vector<bool> seen(num_nodes(), false);
  std::deque<size_t> queue{start};
  seen[start] = true;
  while (!queue.empty()) {
    size_t u = queue.front();
    queue.pop_front();
    for (size_t v : adj_[u]) {
      if (!seen[v]) {
        seen[v] = true;
        queue.push_back(v);
      }
    }
  }
  return seen;
}

bool Digraph::ReachesAll(size_t start) const {
  auto seen = ReachableFrom(start);
  return std::all_of(seen.begin(), seen.end(), [](bool b) { return b; });
}

bool Digraph::IsStronglyConnected() const {
  if (num_nodes() <= 1) return true;
  if (!ReachesAll(0)) return false;
  return Reversed().ReachesAll(0);
}

std::string Digraph::ToString() const {
  std::ostringstream out;
  bool first = true;
  for (size_t u = 0; u < num_nodes(); ++u) {
    for (size_t v : adj_[u]) {
      if (!first) out << ", ";
      first = false;
      out << u << "->" << v;
    }
  }
  return out.str();
}

}  // namespace punctsafe
