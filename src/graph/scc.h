// Strongly connected components (iterative Tarjan) and condensation.
// The transformed punctuation graph (paper Def 11) repeatedly finds
// SCCs and merges them into virtual nodes; this module supplies that
// primitive.

#ifndef PUNCTSAFE_GRAPH_SCC_H_
#define PUNCTSAFE_GRAPH_SCC_H_

#include <cstddef>
#include <vector>

#include "graph/digraph.h"

namespace punctsafe {

/// \brief Result of an SCC decomposition.
struct SccResult {
  /// Component id per node; ids are dense in [0, num_components) and
  /// in *reverse topological order of the condensation* (Tarjan's
  /// property: a component is numbered after everything it reaches).
  std::vector<size_t> component_of;
  size_t num_components = 0;

  /// \brief Nodes grouped by component id.
  std::vector<std::vector<size_t>> Members() const;

  /// \brief True iff some component has more than one node.
  bool HasNontrivialComponent() const;
};

/// \brief Tarjan's algorithm, iterative (no recursion depth limit).
/// O(V + E).
SccResult FindSccs(const Digraph& graph);

/// \brief Builds the condensation DAG: one node per component,
/// deduplicated edges between distinct components.
Digraph Condense(const Digraph& graph, const SccResult& sccs);

}  // namespace punctsafe

#endif  // PUNCTSAFE_GRAPH_SCC_H_
