// A small dense directed-graph representation with the reachability
// primitives the punctuation-graph machinery needs. Nodes are
// 0..n-1; callers keep their own node-id <-> stream-name mapping.

#ifndef PUNCTSAFE_GRAPH_DIGRAPH_H_
#define PUNCTSAFE_GRAPH_DIGRAPH_H_

#include <cstddef>
#include <string>
#include <vector>

namespace punctsafe {

class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(size_t num_nodes) : adj_(num_nodes) {}

  size_t num_nodes() const { return adj_.size(); }
  size_t num_edges() const { return num_edges_; }

  /// \brief Adds edge u -> v; parallel edges are deduplicated.
  /// Requires u, v < num_nodes().
  void AddEdge(size_t u, size_t v);

  bool HasEdge(size_t u, size_t v) const;

  const std::vector<size_t>& OutEdges(size_t u) const { return adj_[u]; }

  /// \brief Edge-reversed copy.
  Digraph Reversed() const;

  /// \brief BFS reachability from `start` (start itself included).
  std::vector<bool> ReachableFrom(size_t start) const;

  /// \brief True iff `start` reaches every node (Theorem 1's
  /// per-stream condition when applied to a punctuation graph).
  bool ReachesAll(size_t start) const;

  /// \brief True iff the graph is strongly connected (Corollary 1).
  /// Implemented as forward + backward reachability from node 0;
  /// O(V + E). The empty graph and singleton are strongly connected.
  bool IsStronglyConnected() const;

  /// \brief "0->1, 2->0" style rendering for diagnostics.
  std::string ToString() const;

 private:
  std::vector<std::vector<size_t>> adj_;
  size_t num_edges_ = 0;
};

}  // namespace punctsafe

#endif  // PUNCTSAFE_GRAPH_DIGRAPH_H_
