#include "graph/scc.h"

#include <algorithm>

namespace punctsafe {

std::vector<std::vector<size_t>> SccResult::Members() const {
  std::vector<std::vector<size_t>> members(num_components);
  for (size_t v = 0; v < component_of.size(); ++v) {
    members[component_of[v]].push_back(v);
  }
  return members;
}

bool SccResult::HasNontrivialComponent() const {
  std::vector<size_t> counts(num_components, 0);
  for (size_t c : component_of) {
    if (++counts[c] > 1) return true;
  }
  return false;
}

SccResult FindSccs(const Digraph& graph) {
  const size_t n = graph.num_nodes();
  constexpr size_t kUnvisited = static_cast<size_t>(-1);

  std::vector<size_t> index(n, kUnvisited);
  std::vector<size_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<size_t> stack;
  size_t next_index = 0;

  SccResult result;
  result.component_of.assign(n, kUnvisited);

  // Explicit DFS frame: node + position in its adjacency list.
  struct Frame {
    size_t node;
    size_t edge_pos;
  };
  std::vector<Frame> frames;

  for (size_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    frames.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!frames.empty()) {
      Frame& frame = frames.back();
      size_t u = frame.node;
      const auto& out = graph.OutEdges(u);
      if (frame.edge_pos < out.size()) {
        size_t v = out[frame.edge_pos++];
        if (index[v] == kUnvisited) {
          index[v] = lowlink[v] = next_index++;
          stack.push_back(v);
          on_stack[v] = true;
          frames.push_back({v, 0});
        } else if (on_stack[v]) {
          lowlink[u] = std::min(lowlink[u], index[v]);
        }
      } else {
        frames.pop_back();
        if (!frames.empty()) {
          size_t parent = frames.back().node;
          lowlink[parent] = std::min(lowlink[parent], lowlink[u]);
        }
        if (lowlink[u] == index[u]) {
          // u is the root of an SCC; pop it off the stack.
          for (;;) {
            size_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            result.component_of[w] = result.num_components;
            if (w == u) break;
          }
          ++result.num_components;
        }
      }
    }
  }
  return result;
}

Digraph Condense(const Digraph& graph, const SccResult& sccs) {
  Digraph out(sccs.num_components);
  for (size_t u = 0; u < graph.num_nodes(); ++u) {
    for (size_t v : graph.OutEdges(u)) {
      size_t cu = sccs.component_of[u];
      size_t cv = sccs.component_of[v];
      if (cu != cv) out.AddEdge(cu, cv);
    }
  }
  return out;
}

}  // namespace punctsafe
