#include "stream/schema.h"

#include <unordered_set>

#include "util/string_util.h"

namespace punctsafe {

Schema::Schema(std::vector<Attribute> attributes)
    : attributes_(std::move(attributes)) {}

Schema Schema::OfInts(const std::vector<std::string>& names) {
  std::vector<Attribute> attrs;
  attrs.reserve(names.size());
  for (const auto& n : names) attrs.push_back({n, ValueType::kInt64});
  return Schema(std::move(attrs));
}

Status Schema::Validate() const {
  if (attributes_.empty()) {
    return Status::InvalidArgument("schema has no attributes");
  }
  std::unordered_set<std::string> seen;
  for (const auto& a : attributes_) {
    if (a.name.empty()) {
      return Status::InvalidArgument("schema has an unnamed attribute");
    }
    if (!seen.insert(a.name).second) {
      return Status::InvalidArgument(
          StrCat("duplicate attribute name '", a.name, "'"));
    }
  }
  return Status::OK();
}

std::optional<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return std::nullopt;
}

std::string Schema::ToString() const {
  return StrCat("(",
                JoinMapped(attributes_, ", ",
                           [](const Attribute& a) {
                             return StrCat(a.name, ":",
                                           ValueTypeToString(a.type));
                           }),
                ")");
}

}  // namespace punctsafe
