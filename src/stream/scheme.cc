#include "stream/scheme.h"

#include <algorithm>

#include "util/string_util.h"

namespace punctsafe {

Result<PunctuationScheme> PunctuationScheme::OnAttributes(
    const std::string& stream, const Schema& schema,
    const std::vector<std::string>& attribute_names) {
  if (attribute_names.empty()) {
    return Status::InvalidArgument(
        "a punctuation scheme needs at least one punctuatable attribute");
  }
  std::vector<bool> flags(schema.num_attributes(), false);
  for (const auto& name : attribute_names) {
    auto idx = schema.IndexOf(name);
    if (!idx.has_value()) {
      return Status::NotFound(
          StrCat("attribute '", name, "' not in schema ", schema.ToString()));
    }
    if (flags[*idx]) {
      return Status::InvalidArgument(
          StrCat("attribute '", name, "' listed twice"));
    }
    flags[*idx] = true;
  }
  return PunctuationScheme(stream, std::move(flags));
}

std::vector<size_t> PunctuationScheme::PunctuatableAttrs() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < punctuatable_.size(); ++i) {
    if (punctuatable_[i]) out.push_back(i);
  }
  return out;
}

size_t PunctuationScheme::NumPunctuatable() const {
  return static_cast<size_t>(
      std::count(punctuatable_.begin(), punctuatable_.end(), true));
}

Result<Punctuation> PunctuationScheme::Instantiate(
    const std::vector<Value>& values) const {
  std::vector<size_t> attrs = PunctuatableAttrs();
  if (values.size() != attrs.size()) {
    return Status::InvalidArgument(
        StrCat("scheme ", ToString(), " has ", attrs.size(),
               " punctuatable attributes, got ", values.size(), " values"));
  }
  std::vector<std::pair<size_t, Value>> constants;
  constants.reserve(attrs.size());
  for (size_t i = 0; i < attrs.size(); ++i) {
    constants.emplace_back(attrs[i], values[i]);
  }
  return Punctuation::OfConstants(arity(), constants);
}

bool PunctuationScheme::IsInstantiation(const Punctuation& p) const {
  if (p.arity() != arity()) return false;
  for (size_t i = 0; i < arity(); ++i) {
    if (p.pattern(i).is_wildcard() == punctuatable_[i]) return false;
  }
  return true;
}

std::string PunctuationScheme::ToString() const {
  return StrCat(stream_, "(",
                JoinMapped(punctuatable_, ", ",
                           [](bool b) { return b ? "+" : "_"; }),
                ")");
}

Status SchemeSet::Add(PunctuationScheme scheme) {
  for (const auto& existing : schemes_) {
    if (existing == scheme) {
      return Status::AlreadyExists(
          StrCat("scheme ", scheme.ToString(), " already registered"));
    }
  }
  schemes_.push_back(std::move(scheme));
  return Status::OK();
}

std::vector<const PunctuationScheme*> SchemeSet::SchemesFor(
    const std::string& stream) const {
  std::vector<const PunctuationScheme*> out;
  for (const auto& s : schemes_) {
    if (s.stream() == stream) out.push_back(&s);
  }
  return out;
}

bool SchemeSet::HasSimpleSchemeOn(const std::string& stream,
                                  size_t attr) const {
  for (const auto& s : schemes_) {
    if (s.stream() == stream && s.IsSimple() && attr < s.arity() &&
        s.punctuatable(attr)) {
      return true;
    }
  }
  return false;
}

bool SchemeSet::AllSimple() const {
  return std::all_of(schemes_.begin(), schemes_.end(),
                     [](const PunctuationScheme& s) { return s.IsSimple(); });
}

SchemeSet SchemeSet::Restrict(const std::vector<std::string>& streams) const {
  SchemeSet out;
  for (const auto& s : schemes_) {
    if (std::find(streams.begin(), streams.end(), s.stream()) !=
        streams.end()) {
      out.schemes_.push_back(s);
    }
  }
  return out;
}

std::string SchemeSet::ToString() const {
  return StrCat("{",
                JoinMapped(schemes_, ", ",
                           [](const PunctuationScheme& s) {
                             return s.ToString();
                           }),
                "}");
}

}  // namespace punctsafe
