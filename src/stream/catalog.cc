#include "stream/catalog.h"

#include "util/string_util.h"

namespace punctsafe {

Status StreamCatalog::Register(const std::string& name, Schema schema) {
  if (name.empty()) {
    return Status::InvalidArgument("stream name must be non-empty");
  }
  if (Contains(name)) {
    return Status::AlreadyExists(StrCat("stream '", name, "' already exists"));
  }
  PUNCTSAFE_RETURN_IF_ERROR(schema.Validate());
  names_.push_back(name);
  index_.emplace(name, std::move(schema));
  return Status::OK();
}

std::string StreamCatalog::ToString() const {
  return JoinMapped(names_, ", ", [this](const std::string& name) {
    return StrCat(name, index_.at(name).ToString());
  });
}

Result<const Schema*> StreamCatalog::Get(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound(StrCat("stream '", name, "' not registered"));
  }
  return &it->second;
}

}  // namespace punctsafe
