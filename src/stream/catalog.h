// Stream catalog: the registry of stream names and schemas known to
// the DSMS (part of the query register in the paper's Figure 2
// architecture).

#ifndef PUNCTSAFE_STREAM_CATALOG_H_
#define PUNCTSAFE_STREAM_CATALOG_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "stream/schema.h"
#include "util/status.h"

namespace punctsafe {

class StreamCatalog {
 public:
  /// \brief Registers a stream; the schema is validated and the name
  /// must be fresh.
  Status Register(const std::string& name, Schema schema);

  bool Contains(const std::string& name) const {
    return index_.count(name) > 0;
  }

  /// \brief Schema lookup; NotFound for unknown streams.
  Result<const Schema*> Get(const std::string& name) const;

  /// \brief Stream names in registration order.
  const std::vector<std::string>& names() const { return names_; }
  size_t size() const { return names_.size(); }

  /// \brief "item(sellerid:int64, ...), bid(...)" rendering in
  /// registration order (STATS output of the ingestion server).
  std::string ToString() const;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, Schema> index_;
};

}  // namespace punctsafe

#endif  // PUNCTSAFE_STREAM_CATALOG_H_
