// Stream elements and traces: the unit of input that the input manager
// feeds to executors. An element is either a data tuple or a
// punctuation, tagged with a logical timestamp (used for trace merging
// and punctuation lifespans, paper Section 5.1).

#ifndef PUNCTSAFE_STREAM_ELEMENT_H_
#define PUNCTSAFE_STREAM_ELEMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "stream/punctuation.h"
#include "stream/tuple.h"

namespace punctsafe {

/// \brief A tuple or punctuation flowing on one stream.
struct StreamElement {
  enum class Kind { kTuple, kPunctuation };

  static StreamElement OfTuple(Tuple t, int64_t ts = 0) {
    StreamElement e;
    e.kind = Kind::kTuple;
    e.tuple = std::move(t);
    e.timestamp = ts;
    return e;
  }
  static StreamElement OfPunctuation(Punctuation p, int64_t ts = 0) {
    StreamElement e;
    e.kind = Kind::kPunctuation;
    e.punctuation = std::move(p);
    e.timestamp = ts;
    return e;
  }

  bool is_tuple() const { return kind == Kind::kTuple; }
  bool is_punctuation() const { return kind == Kind::kPunctuation; }

  std::string ToString() const {
    return is_tuple() ? tuple.ToString()
                      : ("punct" + punctuation.ToString());
  }

  Kind kind = Kind::kTuple;
  Tuple tuple;
  Punctuation punctuation;
  int64_t timestamp = 0;
};

/// \brief One event of a multi-stream trace: which stream it arrives
/// on plus the element itself.
struct TraceEvent {
  std::string stream;
  StreamElement element;
};

/// \brief A finite, ordered prefix of the (conceptually infinite)
/// multi-stream input, used to drive executors in tests, examples and
/// benchmarks.
using Trace = std::vector<TraceEvent>;

}  // namespace punctsafe

#endif  // PUNCTSAFE_STREAM_ELEMENT_H_
