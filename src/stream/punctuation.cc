#include "stream/punctuation.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace punctsafe {

Punctuation Punctuation::OfConstants(
    size_t arity, const std::vector<std::pair<size_t, Value>>& constants) {
  std::vector<Pattern> patterns(arity);
  for (const auto& [idx, value] : constants) {
    PUNCTSAFE_CHECK(idx < arity) << "pattern index out of range";
    patterns[idx] = Pattern(value);
  }
  return Punctuation(std::move(patterns));
}

std::vector<size_t> Punctuation::ConstrainedAttrs() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < patterns_.size(); ++i) {
    if (!patterns_[i].is_wildcard()) out.push_back(i);
  }
  return out;
}

bool Punctuation::Matches(const Tuple& t) const {
  if (t.size() != patterns_.size()) return false;
  for (size_t i = 0; i < patterns_.size(); ++i) {
    if (!patterns_[i].Matches(t.at(i))) return false;
  }
  return true;
}

bool Punctuation::ExcludesSubspace(const std::vector<size_t>& attrs,
                                   std::span<const Value> values) const {
  PUNCTSAFE_CHECK(attrs.size() == values.size());
  for (size_t i = 0; i < patterns_.size(); ++i) {
    if (patterns_[i].is_wildcard()) continue;
    auto it = std::find(attrs.begin(), attrs.end(), i);
    if (it == attrs.end()) return false;  // constrains an attr outside subspace
    size_t pos = static_cast<size_t>(it - attrs.begin());
    if (!(patterns_[i].constant() == values[pos])) return false;
  }
  return true;
}

size_t Punctuation::Hash() const {
  size_t seed = 0xA5A5A5A55A5A5A5AULL;
  for (const auto& p : patterns_) {
    size_t h = p.is_wildcard() ? 0x123456789ULL : p.constant().Hash();
    seed ^= h + 0x9E3779B9u + (seed << 6) + (seed >> 2);
  }
  return seed;
}

std::string Punctuation::ToString() const {
  return StrCat(
      "(",
      JoinMapped(patterns_, ", ", [](const Pattern& p) { return p.ToString(); }),
      ")");
}

}  // namespace punctsafe
