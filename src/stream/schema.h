// Relational schemas for data streams (paper Section 2.2): each stream
// S_i has a schema (A_1^i, ..., A_{n_i}^i).

#ifndef PUNCTSAFE_STREAM_SCHEMA_H_
#define PUNCTSAFE_STREAM_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "stream/value.h"
#include "util/status.h"

namespace punctsafe {

/// \brief A named, typed attribute of a stream schema.
struct Attribute {
  std::string name;
  ValueType type = ValueType::kInt64;

  bool operator==(const Attribute& other) const {
    return name == other.name && type == other.type;
  }
};

/// \brief An ordered list of attributes with unique names.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attributes);

  /// \brief Convenience: all-int64 schema from attribute names.
  static Schema OfInts(const std::vector<std::string>& names);

  /// \brief Validates attribute-name uniqueness and non-emptiness.
  Status Validate() const;

  size_t num_attributes() const { return attributes_.size(); }
  const Attribute& attribute(size_t i) const { return attributes_[i]; }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// \brief Index of the attribute with the given name, if any.
  std::optional<size_t> IndexOf(const std::string& name) const;

  bool operator==(const Schema& other) const {
    return attributes_ == other.attributes_;
  }

  /// \brief "(A:int64, B:string)" rendering.
  std::string ToString() const;

 private:
  std::vector<Attribute> attributes_;
};

}  // namespace punctsafe

#endif  // PUNCTSAFE_STREAM_SCHEMA_H_
