// Stream tuples: positional value lists matching a stream's schema.

#ifndef PUNCTSAFE_STREAM_TUPLE_H_
#define PUNCTSAFE_STREAM_TUPLE_H_

#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "stream/schema.h"
#include "stream/value.h"
#include "util/status.h"

namespace punctsafe {

/// Seed/step of the tuple hash, exposed so non-owning projections of
/// values (exec/punctuation_store.h) can hash exactly like the Tuple
/// they project — a transparent-lookup requirement.
inline constexpr size_t kTupleHashSeed = 0x51ED270B0B2C5A1BULL;
inline size_t TupleHashStep(size_t seed, size_t value_hash) {
  return seed ^ (value_hash + 0x9E3779B9u + (seed << 6) + (seed >> 2));
}

/// \brief A positional row. Tuples are schema-agnostic containers;
/// conformance is checked via MatchesSchema where it matters
/// (operator input boundaries, workload generators).
///
/// A Tuple either owns its values (the default: a vector) or is a
/// non-owning *view* of a Value array laid out elsewhere — the
/// arena-resident form TupleStore keeps for stored state
/// (exec/arena.h). Copying any Tuple produces an owning copy (the
/// Value copy constructor likewise re-owns external string bytes), so
/// views never escape their arena's lifetime through the value API.
class Tuple {
 public:
  /// Tag for constructing a non-owning view over externally managed
  /// values (TupleStore's arena layout).
  struct ExternalRef {};

  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : owned_(std::move(values)) {
    data_ = owned_.data();
    size_ = owned_.size();
  }
  Tuple(std::initializer_list<Value> values) : owned_(values) {
    data_ = owned_.data();
    size_ = owned_.size();
  }
  Tuple(ExternalRef, const Value* data, size_t size)
      : data_(data), size_(size) {}

  Tuple(const Tuple& other) : owned_(other.begin(), other.end()) {
    data_ = owned_.data();
    size_ = owned_.size();
  }
  Tuple(Tuple&& other) noexcept {
    bool view = other.is_external();  // decide before owned_ moves
    owned_ = std::move(other.owned_);
    if (view) {
      data_ = other.data_;
      size_ = other.size_;
    } else {
      data_ = owned_.data();
      size_ = owned_.size();
    }
    other.owned_.clear();
    other.data_ = nullptr;
    other.size_ = 0;
  }
  Tuple& operator=(const Tuple& other) {
    if (this != &other) {
      owned_.assign(other.begin(), other.end());
      data_ = owned_.data();
      size_ = owned_.size();
    }
    return *this;
  }
  Tuple& operator=(Tuple&& other) noexcept {
    if (this != &other) {
      bool view = other.is_external();
      owned_ = std::move(other.owned_);
      if (view) {
        data_ = other.data_;
        size_ = other.size_;
      } else {
        data_ = owned_.data();
        size_ = owned_.size();
      }
      other.owned_.clear();
      other.data_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }
  ~Tuple() = default;

  /// \brief Whether this Tuple views externally managed values (its
  /// data lives in an arena, valid only while that storage is).
  bool is_external() const { return data_ != nullptr && !was_owning(); }

  /// \brief Rebinds this tuple in place as a non-owning view of
  /// `data` (drops any owned values, keeping the vector's capacity).
  /// Equivalent to assigning Tuple(ExternalRef{}, data, size) but
  /// without constructing a temporary — the per-result-row fast path
  /// of TupleBatch::AppendView.
  void BindExternal(const Value* data, size_t size) {
    owned_.clear();
    data_ = data;
    size_ = size;
  }

  size_t size() const { return size_; }
  const Value& at(size_t i) const { return data_[i]; }
  std::span<const Value> values() const { return {data_, size_}; }
  const Value* begin() const { return data_; }
  const Value* end() const { return data_ + size_; }

  /// \brief Cached hash of the value at position i (the per-offset
  /// key-hash accessor the join indexes key on; O(1), no re-hashing).
  size_t HashAt(size_t i) const { return data_[i].Hash(); }

  /// \brief Arity and per-position type conformance (null allowed
  /// anywhere; the paper's model has no null semantics so workloads do
  /// not produce them, but operators tolerate them).
  Status MatchesSchema(const Schema& schema) const;

  bool operator==(const Tuple& other) const {
    if (size_ != other.size_) return false;
    for (size_t i = 0; i < size_; ++i) {
      if (!(data_[i] == other.data_[i])) return false;
    }
    return true;
  }
  bool operator<(const Tuple& other) const {
    size_t n = size_ < other.size_ ? size_ : other.size_;
    for (size_t i = 0; i < n; ++i) {
      if (data_[i] < other.data_[i]) return true;
      if (other.data_[i] < data_[i]) return false;
    }
    return size_ < other.size_;
  }

  size_t Hash() const;

  std::string ToString() const;

 private:
  // An owning tuple keeps data_ pointing into owned_; a view keeps
  // owned_ empty. A default-constructed (empty) tuple has data_ ==
  // nullptr, size_ == 0 and counts as owning.
  bool was_owning() const { return data_ == owned_.data(); }

  std::vector<Value> owned_;
  const Value* data_ = nullptr;
  size_t size_ = 0;
};

struct TupleHash {
  size_t operator()(const Tuple& t) const { return t.Hash(); }
};

/// \brief Concatenates tuples in argument order (used for join output
/// rows, whose schema is the concatenation of input schemas).
Tuple ConcatTuples(const std::vector<const Tuple*>& parts);

}  // namespace punctsafe

#endif  // PUNCTSAFE_STREAM_TUPLE_H_
