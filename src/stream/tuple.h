// Stream tuples: positional value lists matching a stream's schema.

#ifndef PUNCTSAFE_STREAM_TUPLE_H_
#define PUNCTSAFE_STREAM_TUPLE_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "stream/schema.h"
#include "stream/value.h"
#include "util/status.h"

namespace punctsafe {

/// Seed/step of the tuple hash, exposed so non-owning projections of
/// values (exec/punctuation_store.h) can hash exactly like the Tuple
/// they project — a transparent-lookup requirement.
inline constexpr size_t kTupleHashSeed = 0x51ED270B0B2C5A1BULL;
inline size_t TupleHashStep(size_t seed, size_t value_hash) {
  return seed ^ (value_hash + 0x9E3779B9u + (seed << 6) + (seed >> 2));
}

/// \brief A positional row. Tuples are schema-agnostic containers;
/// conformance is checked via MatchesSchema where it matters
/// (operator input boundaries, workload generators).
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  size_t size() const { return values_.size(); }
  const Value& at(size_t i) const { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  /// \brief Cached hash of the value at position i (the per-offset
  /// key-hash accessor the join indexes key on; O(1), no re-hashing).
  size_t HashAt(size_t i) const { return values_[i].Hash(); }

  /// \brief Arity and per-position type conformance (null allowed
  /// anywhere; the paper's model has no null semantics so workloads do
  /// not produce them, but operators tolerate them).
  Status MatchesSchema(const Schema& schema) const;

  bool operator==(const Tuple& other) const {
    return values_ == other.values_;
  }
  bool operator<(const Tuple& other) const {
    return values_ < other.values_;
  }

  size_t Hash() const;

  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

struct TupleHash {
  size_t operator()(const Tuple& t) const { return t.Hash(); }
};

/// \brief Concatenates tuples in argument order (used for join output
/// rows, whose schema is the concatenation of input schemas).
Tuple ConcatTuples(const std::vector<const Tuple*>& parts);

}  // namespace punctsafe

#endif  // PUNCTSAFE_STREAM_TUPLE_H_
