#include "stream/value.h"

#include <sstream>

#include "util/logging.h"

namespace punctsafe {

namespace {
// Per-type hash seeds and mixing match the historical recipe: seed the
// type index with a golden-ratio multiple, then fold in the payload
// hash boost-combine style. Equal values hash equally across all
// storage modes because string hashing runs over the bytes
// (std::hash<std::string_view> hashes bytes, mode-independent).
inline size_t TypeSeed(ValueType type) {
  return static_cast<size_t>(type) * 0x9E3779B97F4A7C15ULL;
}
inline size_t Mix(size_t seed, size_t payload_hash) {
  return seed ^ (payload_hash + 0x9E3779B9u + (seed << 6) + (seed >> 2));
}
}  // namespace

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

size_t Value::HashNull() { return TypeSeed(ValueType::kNull); }

size_t Value::HashInt64(int64_t v) {
  return Mix(TypeSeed(ValueType::kInt64), std::hash<int64_t>{}(v));
}

size_t Value::HashDouble(double v) {
  return Mix(TypeSeed(ValueType::kDouble), std::hash<double>{}(v));
}

size_t Value::HashString(std::string_view v) {
  return Mix(TypeSeed(ValueType::kString), std::hash<std::string_view>{}(v));
}

void Value::SetString(const char* data, uint32_t len, size_t hash) {
  len_ = len;
  hash_ = hash;
  if (len <= kInlineStringCap) {
    mode_ = Mode::kInlineStr;
    if (len > 0) std::memcpy(payload_.inline_str, data, len);
  } else {
    mode_ = Mode::kOwnedStr;
    payload_.owned_str = new char[len];
    std::memcpy(payload_.owned_str, data, len);
  }
}

Value Value::ExternalString(const char* data, uint32_t len, size_t hash) {
  Value v;
  v.len_ = len;
  v.hash_ = hash;
  if (len <= kInlineStringCap) {
    v.mode_ = Mode::kInlineStr;
    if (len > 0) std::memcpy(v.payload_.inline_str, data, len);
  } else {
    v.mode_ = Mode::kExternalStr;
    v.payload_.external_str = data;
  }
  return v;
}

void Value::FreeOwned() noexcept { delete[] payload_.owned_str; }

void Value::CopyFrom(const Value& other) {
  switch (other.mode_) {
    case Mode::kOwnedStr:
    case Mode::kExternalStr:
      // Deep-copy: an external (arena-resident) source must not leak
      // its non-owning pointer into the copy.
      SetString(other.string_view().data(), other.len_, other.hash_);
      break;
    default:
      payload_ = other.payload_;
      mode_ = other.mode_;
      len_ = other.len_;
      hash_ = other.hash_;
      break;
  }
}

void Value::MoveFrom(Value& other) noexcept {
  payload_ = other.payload_;
  mode_ = other.mode_;
  len_ = other.len_;
  hash_ = other.hash_;
  if (other.mode_ == Mode::kOwnedStr) {
    // Ownership transferred; neuter the source.
    other.mode_ = Mode::kNull;
    other.len_ = 0;
    other.hash_ = HashNull();
  }
}

int64_t Value::AsInt64() const {
  PUNCTSAFE_CHECK(type() == ValueType::kInt64)
      << "AsInt64 on " << ValueTypeToString(type());
  return payload_.i;
}

double Value::AsDouble() const {
  PUNCTSAFE_CHECK(type() == ValueType::kDouble)
      << "AsDouble on " << ValueTypeToString(type());
  return payload_.d;
}

std::string_view Value::AsString() const {
  PUNCTSAFE_CHECK(type() == ValueType::kString)
      << "AsString on " << ValueTypeToString(type());
  return string_view();
}

std::string Value::ToString() const {
  std::ostringstream out;
  switch (type()) {
    case ValueType::kNull:
      out << "null";
      break;
    case ValueType::kInt64:
      out << payload_.i;
      break;
    case ValueType::kDouble:
      out << payload_.d;
      break;
    case ValueType::kString:
      out << '"' << string_view() << '"';
      break;
  }
  return out.str();
}

}  // namespace punctsafe
