#include "stream/value.h"

#include <sstream>

#include "util/logging.h"

namespace punctsafe {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

int64_t Value::AsInt64() const {
  PUNCTSAFE_CHECK(type() == ValueType::kInt64)
      << "AsInt64 on " << ValueTypeToString(type());
  return std::get<int64_t>(repr_);
}

double Value::AsDouble() const {
  PUNCTSAFE_CHECK(type() == ValueType::kDouble)
      << "AsDouble on " << ValueTypeToString(type());
  return std::get<double>(repr_);
}

const std::string& Value::AsString() const {
  PUNCTSAFE_CHECK(type() == ValueType::kString)
      << "AsString on " << ValueTypeToString(type());
  return std::get<std::string>(repr_);
}

size_t Value::ComputeHash(const Repr& repr) {
  auto type = static_cast<ValueType>(repr.index());
  size_t seed = static_cast<size_t>(type) * 0x9E3779B97F4A7C15ULL;
  switch (type) {
    case ValueType::kNull:
      break;
    case ValueType::kInt64:
      seed ^= std::hash<int64_t>{}(std::get<int64_t>(repr)) +
              0x9E3779B9u + (seed << 6) + (seed >> 2);
      break;
    case ValueType::kDouble:
      seed ^= std::hash<double>{}(std::get<double>(repr)) + 0x9E3779B9u +
              (seed << 6) + (seed >> 2);
      break;
    case ValueType::kString:
      seed ^= std::hash<std::string>{}(std::get<std::string>(repr)) +
              0x9E3779B9u + (seed << 6) + (seed >> 2);
      break;
  }
  return seed;
}

std::string Value::ToString() const {
  std::ostringstream out;
  switch (type()) {
    case ValueType::kNull:
      out << "null";
      break;
    case ValueType::kInt64:
      out << std::get<int64_t>(repr_);
      break;
    case ValueType::kDouble:
      out << std::get<double>(repr_);
      break;
    case ValueType::kString:
      out << '"' << std::get<std::string>(repr_) << '"';
      break;
  }
  return out.str();
}

}  // namespace punctsafe
