#include "stream/value.h"

#include <sstream>

#include "util/logging.h"

namespace punctsafe {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

void Value::SetString(const char* data, uint32_t len, size_t hash) {
  len_ = len;
  hash_ = hash;
  if (len <= kInlineStringCap) {
    mode_ = Mode::kInlineStr;
    if (len > 0) std::memcpy(payload_.inline_str, data, len);
  } else {
    mode_ = Mode::kOwnedStr;
    payload_.owned_str = new char[len];
    std::memcpy(payload_.owned_str, data, len);
  }
}

Value Value::ExternalString(const char* data, uint32_t len, size_t hash) {
  Value v;
  v.len_ = len;
  v.hash_ = hash;
  if (len <= kInlineStringCap) {
    v.mode_ = Mode::kInlineStr;
    if (len > 0) std::memcpy(v.payload_.inline_str, data, len);
  } else {
    v.mode_ = Mode::kExternalStr;
    v.payload_.external_str = data;
  }
  return v;
}

void Value::FreeOwned() noexcept { delete[] payload_.owned_str; }

int64_t Value::AsInt64() const {
  PUNCTSAFE_CHECK(type() == ValueType::kInt64)
      << "AsInt64 on " << ValueTypeToString(type());
  return payload_.i;
}

double Value::AsDouble() const {
  PUNCTSAFE_CHECK(type() == ValueType::kDouble)
      << "AsDouble on " << ValueTypeToString(type());
  return payload_.d;
}

std::string_view Value::AsString() const {
  PUNCTSAFE_CHECK(type() == ValueType::kString)
      << "AsString on " << ValueTypeToString(type());
  return string_view();
}

std::string Value::ToString() const {
  std::ostringstream out;
  switch (type()) {
    case ValueType::kNull:
      out << "null";
      break;
    case ValueType::kInt64:
      out << payload_.i;
      break;
    case ValueType::kDouble:
      out << payload_.d;
      break;
    case ValueType::kString:
      out << '"' << string_view() << '"';
      break;
  }
  return out.str();
}

}  // namespace punctsafe
