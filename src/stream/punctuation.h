// Punctuations (paper Section 2.3): a punctuation for stream
// S(A_1,...,A_n) is a list of n patterns, each either the wildcard '*'
// or a constant. It asserts that every *future* tuple of S fails to
// match it, i.e. no future tuple agrees with all the constant patterns
// simultaneously.

#ifndef PUNCTSAFE_STREAM_PUNCTUATION_H_
#define PUNCTSAFE_STREAM_PUNCTUATION_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "stream/tuple.h"
#include "stream/value.h"
#include "util/status.h"

namespace punctsafe {

/// \brief One pattern slot of a punctuation: wildcard or a constant.
class Pattern {
 public:
  Pattern() = default;  // wildcard
  // NOLINTNEXTLINE(google-explicit-constructor)
  Pattern(Value constant) : constant_(std::move(constant)) {}

  static Pattern Wildcard() { return Pattern(); }

  bool is_wildcard() const { return !constant_.has_value(); }
  const Value& constant() const { return *constant_; }

  /// \brief Wildcards match everything; constants match equal values.
  bool Matches(const Value& v) const {
    return is_wildcard() || *constant_ == v;
  }

  bool operator==(const Pattern& other) const {
    return constant_ == other.constant_;
  }

  std::string ToString() const {
    return is_wildcard() ? "*" : constant_->ToString();
  }

 private:
  std::optional<Value> constant_;
};

/// \brief A punctuation: one pattern per attribute of its stream.
class Punctuation {
 public:
  Punctuation() = default;
  explicit Punctuation(std::vector<Pattern> patterns)
      : patterns_(std::move(patterns)) {}

  /// \brief All-wildcard punctuation of the given arity (matches every
  /// tuple; asserting it means the stream is finished).
  static Punctuation AllWildcard(size_t arity) {
    return Punctuation(std::vector<Pattern>(arity));
  }

  /// \brief Builds a punctuation with constants at the given attribute
  /// indices and wildcards elsewhere.
  static Punctuation OfConstants(
      size_t arity, const std::vector<std::pair<size_t, Value>>& constants);

  size_t arity() const { return patterns_.size(); }
  const Pattern& pattern(size_t i) const { return patterns_[i]; }
  const std::vector<Pattern>& patterns() const { return patterns_; }

  /// \brief Indices of non-wildcard patterns, ascending.
  std::vector<size_t> ConstrainedAttrs() const;

  /// \brief True iff the tuple agrees with every constant pattern.
  /// Such tuples are promised never to arrive again after this
  /// punctuation.
  bool Matches(const Tuple& t) const;

  /// \brief True iff this punctuation excludes *all* future tuples of
  /// the subspace {attrs[i] = values[i], everything else = *}.
  ///
  /// This holds iff every constrained attribute of the punctuation is
  /// one of `attrs` and its constant equals the corresponding value: a
  /// punctuation constraining additional attributes only excludes a
  /// slice of the subspace, not all of it. This is the primitive the
  /// chained purge strategy (paper Sec 3.2) is built on.
  bool ExcludesSubspace(const std::vector<size_t>& attrs,
                        std::span<const Value> values) const;
  // std::span has no initializer_list constructor; keep brace-list
  // call sites working.
  bool ExcludesSubspace(const std::vector<size_t>& attrs,
                        std::initializer_list<Value> values) const {
    return ExcludesSubspace(
        attrs, std::span<const Value>(values.begin(), values.size()));
  }

  bool operator==(const Punctuation& other) const {
    return patterns_ == other.patterns_;
  }

  size_t Hash() const;

  /// \brief "(*, 1, *)" rendering as in the paper.
  std::string ToString() const;

 private:
  std::vector<Pattern> patterns_;
};

struct PunctuationHash {
  size_t operator()(const Punctuation& p) const { return p.Hash(); }
};

}  // namespace punctsafe

#endif  // PUNCTSAFE_STREAM_PUNCTUATION_H_
