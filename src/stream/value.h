// Typed scalar values carried by stream tuples and punctuation
// patterns. The paper's model only needs equality comparison on join
// attributes, but we keep a small typed repr (int64 / double / string
// / null) so workloads can carry realistic payloads.

#ifndef PUNCTSAFE_STREAM_VALUE_H_
#define PUNCTSAFE_STREAM_VALUE_H_

#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <string_view>

namespace punctsafe {

enum class ValueType : uint8_t {
  kNull = 0,
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
};

const char* ValueTypeToString(ValueType type);

/// \brief A dynamically-typed scalar. Equality is type-strict: an
/// int64 never equals a double, which keeps equi-join semantics
/// unambiguous.
///
/// The hash is computed once at construction and cached: join keys are
/// built when a tuple arrives but hashed at every index insert, probe,
/// and punctuation lookup afterwards, so Hash() on the hot path must
/// not re-walk string bytes (docs/PERF.md).
///
/// Storage is a tagged union instead of std::variant so string
/// payloads can live in three modes:
///   * inline  — up to kInlineStringCap bytes inside the Value (the
///     short-string common case costs no allocation anywhere);
///   * owned   — a heap buffer this Value frees;
///   * external — a non-owning view of bytes whose lifetime somebody
///     else manages (an arena block; see exec/arena.h). Copying an
///     external Value always materializes an owning copy, so a Value
///     that escapes its arena's epoch (index keys, result tuples)
///     never dangles.
class Value {
 public:
  /// Longest string stored inline (no heap, no arena payload bytes).
  static constexpr uint32_t kInlineStringCap = 16;

  Value() : mode_(Mode::kNull), len_(0), hash_(HashNull()) {}
  // NOLINTBEGIN(google-explicit-constructor): literal-friendly by design.
  Value(int64_t v) : mode_(Mode::kInt64), len_(0), hash_(HashInt64(v)) {
    payload_.i = v;
  }
  Value(int v) : Value(static_cast<int64_t>(v)) {}
  Value(double v) : mode_(Mode::kDouble), len_(0), hash_(HashDouble(v)) {
    payload_.d = v;
  }
  Value(const std::string& v) : Value(std::string_view(v)) {}
  Value(std::string_view v) {
    SetString(v.data(), static_cast<uint32_t>(v.size()), HashString(v));
  }
  Value(const char* v) : Value(std::string_view(v)) {}
  // NOLINTEND(google-explicit-constructor)

  Value(const Value& other) { CopyFrom(other); }
  Value(Value&& other) noexcept { MoveFrom(other); }
  Value& operator=(const Value& other) {
    if (this != &other) {
      Release();
      CopyFrom(other);
    }
    return *this;
  }
  Value& operator=(Value&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(other);
    }
    return *this;
  }
  ~Value() { Release(); }

  static Value Null() { return Value(); }

  /// \brief A non-owning string view of externally managed bytes with
  /// a precomputed hash (the arena-copy path: the source Value already
  /// paid for hashing, so the copy must not re-walk the bytes).
  /// Strings short enough for the inline buffer are stored inline
  /// instead — the caller need not special-case them.
  static Value ExternalString(const char* data, uint32_t len, size_t hash);

  ValueType type() const {
    switch (mode_) {
      case Mode::kNull:
        return ValueType::kNull;
      case Mode::kInt64:
        return ValueType::kInt64;
      case Mode::kDouble:
        return ValueType::kDouble;
      default:
        return ValueType::kString;
    }
  }
  bool is_null() const { return mode_ == Mode::kNull; }
  /// \brief True for string Values whose bytes this Value does not own
  /// (arena-resident). Copies of such Values own their bytes again.
  bool is_external() const { return mode_ == Mode::kExternalStr; }

  /// \brief Bytes of arena payload a stored copy of this Value needs
  /// beyond sizeof(Value) — the string length when it exceeds the
  /// inline buffer, else 0 (scalars and short strings are
  /// self-contained).
  size_t ExternalBytes() const {
    return (type() == ValueType::kString && len_ > kInlineStringCap) ? len_
                                                                     : 0;
  }

  /// \brief Typed accessors; calling the wrong one is a programming
  /// error (checked).
  int64_t AsInt64() const;
  double AsDouble() const;
  std::string_view AsString() const;

  /// Equal reprs always hash equally (same hash recipe), so comparing
  /// the cached hashes first rejects mismatches in one word compare —
  /// the common case in join predicate verification — before the
  /// typed (and possibly string) comparison runs.
  bool operator==(const Value& other) const {
    if (hash_ != other.hash_) return false;
    ValueType t = type();
    if (t != other.type()) return false;
    switch (t) {
      case ValueType::kNull:
        return true;
      case ValueType::kInt64:
        return payload_.i == other.payload_.i;
      case ValueType::kDouble:
        return payload_.d == other.payload_.d;
      case ValueType::kString:
        return string_view() == other.string_view();
    }
    return false;
  }
  bool operator!=(const Value& other) const { return !(*this == other); }
  /// \brief Total order (by type index, then value) so values can key
  /// ordered containers and be sorted deterministically.
  bool operator<(const Value& other) const {
    ValueType t = type();
    ValueType ot = other.type();
    if (t != ot) return t < ot;
    switch (t) {
      case ValueType::kNull:
        return false;
      case ValueType::kInt64:
        return payload_.i < other.payload_.i;
      case ValueType::kDouble:
        return payload_.d < other.payload_.d;
      case ValueType::kString:
        return string_view() < other.string_view();
    }
    return false;
  }

  /// \brief The cached hash (computed at construction, O(1) here).
  size_t Hash() const { return hash_; }

  std::string ToString() const;

 private:
  enum class Mode : uint8_t {
    kNull = 0,
    kInt64 = 1,
    kDouble = 2,
    kInlineStr = 3,
    kOwnedStr = 4,
    kExternalStr = 5,
  };

  union Payload {
    int64_t i;
    double d;
    char inline_str[kInlineStringCap];
    char* owned_str;
    const char* external_str;
  };

  // Per-type hash seeds and mixing match the historical recipe: seed
  // the type index with a golden-ratio multiple, then fold in the
  // payload hash boost-combine style. Equal values hash equally across
  // all storage modes because string hashing runs over the bytes
  // (std::hash<std::string_view> hashes bytes, mode-independent).
  // Inline: these run in every Value constructor — the default ctor's
  // HashNull in particular is a constant and must compile to one.
  static size_t TypeSeed(ValueType type) {
    return static_cast<size_t>(type) * 0x9E3779B97F4A7C15ULL;
  }
  static size_t Mix(size_t seed, size_t payload_hash) {
    return seed ^ (payload_hash + 0x9E3779B9u + (seed << 6) + (seed >> 2));
  }
  static size_t HashNull() { return TypeSeed(ValueType::kNull); }
  static size_t HashInt64(int64_t v) {
    return Mix(TypeSeed(ValueType::kInt64), std::hash<int64_t>{}(v));
  }
  static size_t HashDouble(double v) {
    return Mix(TypeSeed(ValueType::kDouble), std::hash<double>{}(v));
  }
  static size_t HashString(std::string_view v) {
    return Mix(TypeSeed(ValueType::kString), std::hash<std::string_view>{}(v));
  }

  std::string_view string_view() const {
    switch (mode_) {
      case Mode::kInlineStr:
        return {payload_.inline_str, len_};
      case Mode::kOwnedStr:
        return {payload_.owned_str, len_};
      default:
        return {payload_.external_str, len_};
    }
  }

  /// Stores string bytes: inline when they fit, else an owned heap
  /// copy. All string-copy paths funnel here, which is what guarantees
  /// "copying an external Value materializes ownership".
  void SetString(const char* data, uint32_t len, size_t hash);

  // Inline fast path: everything except owned/external strings is a
  // plain member copy (scalars and inline strings carry their whole
  // payload in the union), and Value copies are the per-row unit of
  // work in batch staging, arena insertion, and result emission. Only
  // the string deep-copy leaves the header.
  void CopyFrom(const Value& other) {
    if (other.mode_ == Mode::kOwnedStr || other.mode_ == Mode::kExternalStr) {
      // Deep-copy: an external (arena-resident) source must not leak
      // its non-owning pointer into the copy.
      SetString(other.string_view().data(), other.len_, other.hash_);
    } else {
      payload_ = other.payload_;
      mode_ = other.mode_;
      len_ = other.len_;
      hash_ = other.hash_;
    }
  }
  void MoveFrom(Value& other) noexcept {
    payload_ = other.payload_;
    mode_ = other.mode_;
    len_ = other.len_;
    hash_ = other.hash_;
    if (other.mode_ == Mode::kOwnedStr) {
      // Ownership transferred; neuter the source.
      other.mode_ = Mode::kNull;
      other.len_ = 0;
      other.hash_ = HashNull();
    }
  }
  // Out of line: keeps GCC's -Wfree-nonheap-object from firing on the
  // (never-taken) delete branch when it const-propagates an
  // inline-string Value through the union.
  void FreeOwned() noexcept;
  void Release() {
    if (mode_ == Mode::kOwnedStr) FreeOwned();
  }

  Payload payload_;
  Mode mode_;
  uint32_t len_;  // string byte length (all string modes); 0 otherwise
  size_t hash_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace punctsafe

#endif  // PUNCTSAFE_STREAM_VALUE_H_
