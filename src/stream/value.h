// Typed scalar values carried by stream tuples and punctuation
// patterns. The paper's model only needs equality comparison on join
// attributes, but we keep a small typed variant (int64 / double /
// string / null) so workloads can carry realistic payloads.

#ifndef PUNCTSAFE_STREAM_VALUE_H_
#define PUNCTSAFE_STREAM_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <variant>

namespace punctsafe {

enum class ValueType : uint8_t {
  kNull = 0,
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
};

const char* ValueTypeToString(ValueType type);

/// \brief A dynamically-typed scalar. Equality is type-strict: an
/// int64 never equals a double, which keeps equi-join semantics
/// unambiguous.
///
/// The hash is computed once at construction and cached: join keys are
/// built when a tuple arrives but hashed at every index insert, probe,
/// and punctuation lookup afterwards, so Hash() on the hot path must
/// not re-walk string bytes (docs/PERF.md).
class Value {
 public:
  Value() : repr_(std::monostate{}), hash_(ComputeHash(repr_)) {}
  // NOLINTBEGIN(google-explicit-constructor): literal-friendly by design.
  Value(int64_t v) : repr_(v), hash_(ComputeHash(repr_)) {}
  Value(int v) : repr_(static_cast<int64_t>(v)), hash_(ComputeHash(repr_)) {}
  Value(double v) : repr_(v), hash_(ComputeHash(repr_)) {}
  Value(std::string v) : repr_(std::move(v)), hash_(ComputeHash(repr_)) {}
  Value(const char* v) : repr_(std::string(v)), hash_(ComputeHash(repr_)) {}
  // NOLINTEND(google-explicit-constructor)

  static Value Null() { return Value(); }

  ValueType type() const {
    return static_cast<ValueType>(repr_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }

  /// \brief Typed accessors; calling the wrong one is a programming
  /// error (checked).
  int64_t AsInt64() const;
  double AsDouble() const;
  const std::string& AsString() const;

  /// Equal reprs always hash equally (same ComputeHash), so comparing
  /// the cached hashes first rejects mismatches in one word compare —
  /// the common case in join predicate verification — before the
  /// variant (and possibly string) comparison runs.
  bool operator==(const Value& other) const {
    return hash_ == other.hash_ && repr_ == other.repr_;
  }
  bool operator!=(const Value& other) const { return !(*this == other); }
  /// \brief Total order (by type index, then value) so values can key
  /// ordered containers and be sorted deterministically.
  bool operator<(const Value& other) const { return repr_ < other.repr_; }

  /// \brief The cached hash (computed at construction, O(1) here).
  size_t Hash() const { return hash_; }

  std::string ToString() const;

 private:
  using Repr = std::variant<std::monostate, int64_t, double, std::string>;

  static size_t ComputeHash(const Repr& repr);

  Repr repr_;
  size_t hash_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace punctsafe

#endif  // PUNCTSAFE_STREAM_VALUE_H_
