// Punctuation schemes (paper Section 2.3): compile-time knowledge,
// derived from application semantics, of which attribute combinations
// of a stream may carry constant punctuation patterns at runtime.
//
// A scheme P^S = (P_1, ..., P_n) marks each attribute '+'
// (punctuatable) or '_' (wildcard only). An actual punctuation
// *instantiates* a scheme by assigning constants to exactly the
// punctuatable attributes. A stream may have several schemes; the
// system-wide collection is the scheme set ℜ held by the query
// register.

#ifndef PUNCTSAFE_STREAM_SCHEME_H_
#define PUNCTSAFE_STREAM_SCHEME_H_

#include <string>
#include <vector>

#include "stream/punctuation.h"
#include "stream/schema.h"
#include "util/status.h"

namespace punctsafe {

/// \brief One punctuation scheme on one stream.
class PunctuationScheme {
 public:
  PunctuationScheme() = default;

  /// \param stream stream name the scheme applies to
  /// \param punctuatable per-attribute '+' flags (size = stream arity)
  PunctuationScheme(std::string stream, std::vector<bool> punctuatable)
      : stream_(std::move(stream)), punctuatable_(std::move(punctuatable)) {}

  /// \brief Builds a scheme from punctuatable attribute *names*,
  /// resolved against the schema.
  static Result<PunctuationScheme> OnAttributes(
      const std::string& stream, const Schema& schema,
      const std::vector<std::string>& attribute_names);

  const std::string& stream() const { return stream_; }
  size_t arity() const { return punctuatable_.size(); }
  bool punctuatable(size_t i) const { return punctuatable_[i]; }

  /// \brief Indices of '+' attributes, ascending.
  std::vector<size_t> PunctuatableAttrs() const;
  size_t NumPunctuatable() const;

  /// \brief True iff exactly one attribute is punctuatable — the
  /// "simple scheme" case of paper Section 4.1.
  bool IsSimple() const { return NumPunctuatable() == 1; }

  /// \brief Instantiates the scheme into an actual punctuation by
  /// binding `values` (in ascending attribute-index order) to the
  /// punctuatable attributes.
  Result<Punctuation> Instantiate(const std::vector<Value>& values) const;

  /// \brief True iff `p` is an instantiation of this scheme: constants
  /// on exactly the punctuatable attributes.
  bool IsInstantiation(const Punctuation& p) const;

  bool operator==(const PunctuationScheme& other) const {
    return stream_ == other.stream_ && punctuatable_ == other.punctuatable_;
  }

  /// \brief "S2(_, +, _)" rendering as in the paper.
  std::string ToString() const;

 private:
  std::string stream_;
  std::vector<bool> punctuatable_;
};

/// \brief The punctuation scheme set ℜ recorded by the query register.
class SchemeSet {
 public:
  SchemeSet() = default;
  explicit SchemeSet(std::vector<PunctuationScheme> schemes)
      : schemes_(std::move(schemes)) {}

  /// \brief Adds a scheme; duplicates are rejected.
  Status Add(PunctuationScheme scheme);

  const std::vector<PunctuationScheme>& schemes() const { return schemes_; }
  size_t size() const { return schemes_.size(); }

  /// \brief All schemes declared on the named stream.
  std::vector<const PunctuationScheme*> SchemesFor(
      const std::string& stream) const;

  /// \brief True iff some *simple* scheme on `stream` marks attribute
  /// index `attr` punctuatable. Used by the simple punctuation graph
  /// (Def 7): a multi-attribute scheme cannot close a single attribute
  /// with finitely many instantiations, so only simple schemes produce
  /// plain directed edges; multi-attribute schemes are handled by the
  /// generalized punctuation graph (Def 8).
  bool HasSimpleSchemeOn(const std::string& stream, size_t attr) const;

  /// \brief True iff every scheme in the set is simple (single
  /// punctuatable attribute), i.e. the linear-time Section 4.1
  /// machinery is exact.
  bool AllSimple() const;

  /// \brief Restricts to schemes whose stream is in `streams`.
  SchemeSet Restrict(const std::vector<std::string>& streams) const;

  std::string ToString() const;

 private:
  std::vector<PunctuationScheme> schemes_;
};

}  // namespace punctsafe

#endif  // PUNCTSAFE_STREAM_SCHEME_H_
