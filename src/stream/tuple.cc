#include "stream/tuple.h"

#include "util/string_util.h"

namespace punctsafe {

Status Tuple::MatchesSchema(const Schema& schema) const {
  if (values_.size() != schema.num_attributes()) {
    return Status::InvalidArgument(
        StrCat("tuple arity ", values_.size(), " != schema arity ",
               schema.num_attributes()));
  }
  for (size_t i = 0; i < values_.size(); ++i) {
    if (values_[i].is_null()) continue;
    if (values_[i].type() != schema.attribute(i).type) {
      return Status::InvalidArgument(
          StrCat("attribute '", schema.attribute(i).name, "' expects ",
                 ValueTypeToString(schema.attribute(i).type), ", got ",
                 ValueTypeToString(values_[i].type())));
    }
  }
  return Status::OK();
}

size_t Tuple::Hash() const {
  size_t seed = kTupleHashSeed;
  for (const auto& v : values_) seed = TupleHashStep(seed, v.Hash());
  return seed;
}

std::string Tuple::ToString() const {
  return StrCat(
      "(", JoinMapped(values_, ", ", [](const Value& v) { return v.ToString(); }),
      ")");
}

Tuple ConcatTuples(const std::vector<const Tuple*>& parts) {
  std::vector<Value> values;
  size_t total = 0;
  for (const Tuple* p : parts) total += p->size();
  values.reserve(total);
  for (const Tuple* p : parts) {
    for (const auto& v : p->values()) values.push_back(v);
  }
  return Tuple(std::move(values));
}

}  // namespace punctsafe
