#include "stream/tuple.h"

#include "util/string_util.h"

namespace punctsafe {

Status Tuple::MatchesSchema(const Schema& schema) const {
  if (size_ != schema.num_attributes()) {
    return Status::InvalidArgument(
        StrCat("tuple arity ", size_, " != schema arity ",
               schema.num_attributes()));
  }
  for (size_t i = 0; i < size_; ++i) {
    if (data_[i].is_null()) continue;
    if (data_[i].type() != schema.attribute(i).type) {
      return Status::InvalidArgument(
          StrCat("attribute '", schema.attribute(i).name, "' expects ",
                 ValueTypeToString(schema.attribute(i).type), ", got ",
                 ValueTypeToString(data_[i].type())));
    }
  }
  return Status::OK();
}

size_t Tuple::Hash() const {
  size_t seed = kTupleHashSeed;
  for (size_t i = 0; i < size_; ++i) seed = TupleHashStep(seed, data_[i].Hash());
  return seed;
}

std::string Tuple::ToString() const {
  return StrCat(
      "(",
      JoinMapped(values(), ", ", [](const Value& v) { return v.ToString(); }),
      ")");
}

Tuple ConcatTuples(const std::vector<const Tuple*>& parts) {
  std::vector<Value> values;
  size_t total = 0;
  for (const Tuple* p : parts) total += p->size();
  values.reserve(total);
  for (const Tuple* p : parts) {
    for (const auto& v : p->values()) values.push_back(v);
  }
  return Tuple(std::move(values));
}

}  // namespace punctsafe
