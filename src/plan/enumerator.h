// Safe-plan enumeration (paper Section 5.2, "Plan Enumeration").
//
// Rather than enumerating all operator trees and filtering (the
// exponential naive route), the enumerator builds *only* safe plans
// bottom-up, System-R style: dynamic programming over stream subsets
// where an operator over child subsets is admitted only if every
// child's join state is purgeable on the operator-local generalized
// punctuation graph — i.e. each building block is a strongly connected
// sub-graph of the query's punctuation graph, exactly the paper's
// observation.
//
// DP entries carry the punctuation schemes the sub-plan's output can
// deliver (two shapes over the same subset may propagate different
// scheme sets, so entries are (shape, schemes) pairs).

#ifndef PUNCTSAFE_PLAN_ENUMERATOR_H_
#define PUNCTSAFE_PLAN_ENUMERATOR_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/local_graph.h"
#include "query/cjq.h"
#include "query/plan_shape.h"
#include "stream/scheme.h"
#include "util/status.h"

namespace punctsafe {

class SafePlanEnumerator {
 public:
  /// Both arguments are copied: the enumerator outlives temporaries
  /// passed at construction.
  SafePlanEnumerator(ContinuousJoinQuery query, SchemeSet schemes)
      : query_(std::move(query)), schemes_(std::move(schemes)) {}

  /// \brief All safe execution plans of the query, up to `limit`
  /// (guards combinatorial blowup; a hit is reported via
  /// limit_reached()). Empty iff the query is unsafe (Theorem 2/4).
  ///
  /// InvalidArgument beyond 16 streams (subset DP uses bitmasks and
  /// the plan space is astronomically large anyway).
  Result<std::vector<PlanShape>> EnumerateSafePlans(size_t limit = 256);

  /// \brief True when the last enumeration stopped at the limit (the
  /// returned set is then a prefix, not the full safe-plan space).
  bool limit_reached() const { return limit_reached_; }

 private:
  struct Entry {
    PlanShape shape;
    std::vector<AvailableScheme> schemes;
  };

  // Computes (memoized) the safe sub-plans for the subset `mask`.
  const std::vector<Entry>& SafePlansFor(uint32_t mask, size_t limit);

  ContinuousJoinQuery query_;
  SchemeSet schemes_;
  std::vector<std::vector<Entry>> memo_;
  std::vector<bool> memo_valid_;
  bool limit_reached_ = false;
};

}  // namespace punctsafe

#endif  // PUNCTSAFE_PLAN_ENUMERATOR_H_
