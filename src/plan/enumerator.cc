#include "plan/enumerator.h"

#include <algorithm>
#include <functional>

#include "core/plan_safety.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace punctsafe {

namespace {

// Enumerates unordered partitions of `mask` into >= 2 non-empty
// blocks. The block containing the lowest set bit is enumerated
// explicitly; the rest recursively, which canonicalizes the order.
void PartitionsInto(uint32_t mask, std::vector<uint32_t>* blocks,
                    const std::function<void(const std::vector<uint32_t>&)>&
                        emit) {
  if (mask == 0) {
    if (blocks->size() >= 2) emit(*blocks);
    return;
  }
  uint32_t low = mask & (~mask + 1);  // lowest set bit
  uint32_t rest = mask ^ low;
  // The block containing `low` is {low} ∪ sub for each sub ⊆ rest.
  for (uint32_t sub = rest;; sub = (sub - 1) & rest) {
    blocks->push_back(low | sub);
    PartitionsInto(mask ^ (low | sub), blocks, emit);
    blocks->pop_back();
    if (sub == 0) break;
  }
}

}  // namespace

Result<std::vector<PlanShape>> SafePlanEnumerator::EnumerateSafePlans(
    size_t limit) {
  const size_t n = query_.num_streams();
  if (n > 16) {
    return Status::InvalidArgument(
        "safe-plan enumeration supports up to 16 streams");
  }
  limit_reached_ = false;
  memo_.assign(size_t{1} << n, {});
  memo_valid_.assign(size_t{1} << n, false);

  uint32_t full = static_cast<uint32_t>((size_t{1} << n) - 1);
  const std::vector<Entry>& entries = SafePlansFor(full, limit);
  std::vector<PlanShape> plans;
  plans.reserve(entries.size());
  for (const Entry& e : entries) plans.push_back(e.shape);
  return plans;
}

const std::vector<SafePlanEnumerator::Entry>&
SafePlanEnumerator::SafePlansFor(uint32_t mask, size_t limit) {
  if (memo_valid_[mask]) return memo_[mask];
  memo_valid_[mask] = true;
  std::vector<Entry>& out = memo_[mask];

  // Singleton: the raw stream.
  if ((mask & (mask - 1)) == 0) {
    size_t stream = static_cast<size_t>(__builtin_ctz(mask));
    Entry leaf;
    leaf.shape = PlanShape::Leaf(stream);
    leaf.schemes = RawAvailableSchemes(query_, schemes_, stream);
    out.push_back(std::move(leaf));
    return out;
  }

  std::vector<uint32_t> blocks;
  PartitionsInto(
      mask, &blocks, [&](const std::vector<uint32_t>& partition) {
        if (out.size() >= limit) {
          limit_reached_ = true;
          return;
        }
        // Gather the safe sub-plan lists per block.
        std::vector<const std::vector<Entry>*> block_entries;
        block_entries.reserve(partition.size());
        for (uint32_t block : partition) {
          const std::vector<Entry>& entries = SafePlansFor(block, limit);
          if (entries.empty()) return;  // block has no safe plan
          block_entries.push_back(&entries);
        }
        // Cartesian product over block choices.
        std::vector<size_t> cursor(partition.size(), 0);
        for (;;) {
          if (out.size() >= limit) {
            limit_reached_ = true;
            return;
          }
          std::vector<LocalInput> inputs;
          std::vector<PlanShape> children;
          inputs.reserve(partition.size());
          children.reserve(partition.size());
          for (size_t b = 0; b < partition.size(); ++b) {
            const Entry& e = (*block_entries[b])[cursor[b]];
            LocalInput input;
            input.streams = e.shape.Leaves();
            input.schemes = e.schemes;
            inputs.push_back(std::move(input));
            children.push_back(e.shape);
          }
          std::vector<LocalGpgEdge> edges = BuildLocalEdges(query_, inputs);
          bool purgeable = true;
          Entry candidate;
          for (size_t k = 0; k < inputs.size() && purgeable; ++k) {
            if (!LocalInputPurgeable(k, inputs.size(), edges)) {
              purgeable = false;
              break;
            }
            candidate.schemes.insert(candidate.schemes.end(),
                                     inputs[k].schemes.begin(),
                                     inputs[k].schemes.end());
          }
          if (purgeable) {
            candidate.shape = PlanShape::Join(std::move(children));
            out.push_back(std::move(candidate));
          }
          // Advance cursor.
          size_t b = 0;
          while (b < cursor.size()) {
            if (++cursor[b] < block_entries[b]->size()) break;
            cursor[b] = 0;
            ++b;
          }
          if (b == cursor.size()) break;
        }
      });
  return out;
}

}  // namespace punctsafe
