// Punctuation-scheme subset selection (paper Section 5.2, Plan
// Parameter I): between "use every available scheme" and "use the
// minimum set that keeps the punctuation graph strongly connected"
// lies a memory-for-punctuation-overhead trade-off. This module
// computes minimal safe subsets so plans (and the E8 benchmark) can
// compare the two extremes.

#ifndef PUNCTSAFE_PLAN_SCHEME_SELECTION_H_
#define PUNCTSAFE_PLAN_SCHEME_SELECTION_H_

#include <vector>

#include "query/cjq.h"
#include "stream/scheme.h"
#include "util/status.h"

namespace punctsafe {

/// \brief A minimal scheme subset keeping the query safe: removing any
/// single scheme from it breaks safety. Computed greedily (try to
/// drop each scheme in turn, keep the drop if the query stays safe),
/// so it is *a* minimal subset, not necessarily the minimum one.
///
/// FailedPrecondition when the query is unsafe even with all schemes.
Result<SchemeSet> MinimalSafeSchemeSubset(const ContinuousJoinQuery& query,
                                          const SchemeSet& schemes);

/// \brief All schemes in `schemes` that are irrelevant to the query:
/// dropping them (individually and jointly) leaves every stream's
/// purgeability verdict unchanged. These are the punctuations the
/// paper says the engine should not waste processing on.
std::vector<PunctuationScheme> IrrelevantSchemes(
    const ContinuousJoinQuery& query, const SchemeSet& schemes);

}  // namespace punctsafe

#endif  // PUNCTSAFE_PLAN_SCHEME_SELECTION_H_
