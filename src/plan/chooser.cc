#include "plan/chooser.h"

#include <algorithm>

namespace punctsafe {

Result<std::vector<RankedPlan>> PlanChooser::Rank(CostObjective objective,
                                                  PurgePolicy policy,
                                                  size_t limit) const {
  SafePlanEnumerator enumerator(query_, schemes_);
  PUNCTSAFE_ASSIGN_OR_RETURN(std::vector<PlanShape> plans,
                             enumerator.EnumerateSafePlans(limit));
  if (plans.empty()) {
    return Status::FailedPrecondition(
        "query has no safe execution plan under the registered schemes");
  }
  CostModel model(query_, stats_);
  std::vector<RankedPlan> ranked;
  ranked.reserve(plans.size());
  for (PlanShape& shape : plans) {
    PUNCTSAFE_ASSIGN_OR_RETURN(PlanCost cost,
                               model.Estimate(shape, schemes_, policy));
    RankedPlan rp;
    rp.shape = std::move(shape);
    rp.cost = cost;
    rp.score = CostModel::Score(cost, objective);
    ranked.push_back(std::move(rp));
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const RankedPlan& a, const RankedPlan& b) {
                     return a.score < b.score;
                   });
  return ranked;
}

Result<RankedPlan> PlanChooser::Choose(CostObjective objective,
                                       PurgePolicy policy,
                                       size_t limit) const {
  PUNCTSAFE_ASSIGN_OR_RETURN(std::vector<RankedPlan> ranked,
                             Rank(objective, policy, limit));
  return std::move(ranked.front());
}

}  // namespace punctsafe
