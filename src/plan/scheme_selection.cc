#include "plan/scheme_selection.h"

#include "core/generalized_punctuation_graph.h"
#include "core/transformed_punctuation_graph.h"

namespace punctsafe {

namespace {

bool Safe(const ContinuousJoinQuery& query, const SchemeSet& schemes) {
  return TransformedPunctuationGraph::Build(query, schemes)
      .CollapsedToSingleNode();
}

// Per-stream purgeability fingerprint under a scheme set.
std::vector<bool> PurgeabilityVector(const ContinuousJoinQuery& query,
                                     const SchemeSet& schemes) {
  GeneralizedPunctuationGraph gpg =
      GeneralizedPunctuationGraph::Build(query, schemes);
  std::vector<bool> out(query.num_streams());
  for (size_t i = 0; i < out.size(); ++i) out[i] = gpg.StatePurgeable(i);
  return out;
}

}  // namespace

Result<SchemeSet> MinimalSafeSchemeSubset(const ContinuousJoinQuery& query,
                                          const SchemeSet& schemes) {
  SchemeSet current = schemes.Restrict(query.streams());
  if (!Safe(query, current)) {
    return Status::FailedPrecondition(
        "query is unsafe even with every registered scheme");
  }
  // Greedy elimination: drop schemes one at a time while safety holds.
  bool progress = true;
  while (progress) {
    progress = false;
    const std::vector<PunctuationScheme>& all = current.schemes();
    for (size_t drop = 0; drop < all.size(); ++drop) {
      std::vector<PunctuationScheme> kept;
      kept.reserve(all.size() - 1);
      for (size_t i = 0; i < all.size(); ++i) {
        if (i != drop) kept.push_back(all[i]);
      }
      SchemeSet candidate(std::move(kept));
      if (Safe(query, candidate)) {
        current = std::move(candidate);
        progress = true;
        break;
      }
    }
  }
  return current;
}

std::vector<PunctuationScheme> IrrelevantSchemes(
    const ContinuousJoinQuery& query, const SchemeSet& schemes) {
  SchemeSet relevant_pool = schemes.Restrict(query.streams());
  std::vector<bool> baseline = PurgeabilityVector(query, relevant_pool);

  std::vector<PunctuationScheme> irrelevant;
  // Schemes on streams outside the query are trivially irrelevant.
  for (const PunctuationScheme& s : schemes.schemes()) {
    if (!query.StreamIndex(s.stream()).has_value()) {
      irrelevant.push_back(s);
    }
  }
  // A scheme inside the query is irrelevant if dropping it (together
  // with previously found irrelevant ones) leaves the purgeability
  // fingerprint unchanged.
  std::vector<PunctuationScheme> pool = relevant_pool.schemes();
  for (size_t i = 0; i < pool.size(); ++i) {
    std::vector<PunctuationScheme> kept;
    for (size_t j = 0; j < pool.size(); ++j) {
      if (j == i) continue;
      bool dropped = false;
      for (const PunctuationScheme& irr : irrelevant) {
        if (pool[j] == irr) {
          dropped = true;
          break;
        }
      }
      if (!dropped) kept.push_back(pool[j]);
    }
    if (PurgeabilityVector(query, SchemeSet(std::move(kept))) == baseline) {
      irrelevant.push_back(pool[i]);
    }
  }
  return irrelevant;
}

}  // namespace punctsafe
