// Cost/benefit estimation for safe execution plans (paper Section 5.2,
// "Cost Estimation").
//
// The paper names the governing parameters — data arrival rates,
// punctuation arrival rates, join selectivities — and notes that
// memory and throughput goals can conflict. This model is the
// deliberately simple steady-state analysis those parameters admit:
//
//  * a purgeable join state holds about (arrival rate x purge delay)
//    tuples, with purge delay = 1 / punctuation rate; an unpurgeable
//    state holds (arrival rate x horizon), i.e. it grows with the run;
//  * an operator's output rate is the symmetric-join estimate
//    sum_i lambda_i * prod_{j != i} (sigma * state_j), with sigma the
//    product of the crossing predicates' selectivities;
//  * punctuation overhead charges each punctuation the sweep work of
//    its operator (eager) or 1/batch of it (lazy).
//
// Absolute numbers are heuristic; *rankings* between plans are what
// the chooser consumes, and the E8/E12 benchmarks sanity-check those
// rankings against measured state sizes.

#ifndef PUNCTSAFE_PLAN_COST_MODEL_H_
#define PUNCTSAFE_PLAN_COST_MODEL_H_

#include <string>
#include <vector>

#include "exec/operator.h"
#include "query/cjq.h"
#include "query/plan_shape.h"
#include "stream/scheme.h"
#include "util/status.h"

namespace punctsafe {

/// \brief Workload parameters, per query stream / predicate.
struct WorkloadStats {
  /// Tuples per time unit per stream (size = num_streams).
  std::vector<double> arrival_rate;
  /// Punctuations per time unit per stream (0 = never punctuated).
  std::vector<double> punctuation_rate;
  /// Match probability per predicate (size = num_predicates); the
  /// expected partner fan-out per stored tuple is selectivity x state.
  std::vector<double> selectivity;
  /// Run horizon (time units) used to cost unpurgeable states.
  double horizon = 1e6;
  /// Time units a stored punctuation stays useful (its lifespan, or a
  /// retention estimate when punctuations are kept indefinitely);
  /// charges memory for punctuation stores.
  double punctuation_retention = 100;
};

struct PlanCost {
  /// Steady-state expected tuples across all join states.
  double expected_state = 0;
  /// Stored punctuations across all operators.
  double expected_punctuations = 0;
  /// Probe + sweep work per time unit (throughput proxy; lower is
  /// faster).
  double work_per_time = 0;
  /// Final output rate (same for every correct plan; reported for
  /// inspection).
  double output_rate = 0;

  std::string ToString() const;
};

/// \brief Optimization objectives (Section 5.2's conflicting goals).
enum class CostObjective {
  kMemory,      ///< minimize expected_state + expected_punctuations
  kThroughput,  ///< minimize work_per_time
  kBalanced,    ///< normalized sum of both
};

class CostModel {
 public:
  /// The query is copied: the model outlives temporaries passed at
  /// construction.
  CostModel(ContinuousJoinQuery query, WorkloadStats stats)
      : query_(std::move(query)), stats_(std::move(stats)) {}

  /// \brief Estimates the cost of executing `shape` under `schemes`
  /// with the given purge policy.
  Result<PlanCost> Estimate(const PlanShape& shape, const SchemeSet& schemes,
                            PurgePolicy policy = PurgePolicy::kEager,
                            size_t lazy_batch = 64) const;

  /// \brief Scalar score of a cost under an objective.
  static double Score(const PlanCost& cost, CostObjective objective);

 private:
  ContinuousJoinQuery query_;
  WorkloadStats stats_;
};

}  // namespace punctsafe

#endif  // PUNCTSAFE_PLAN_COST_MODEL_H_
