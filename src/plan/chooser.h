// PlanChooser: picks the best safe execution plan under a cost
// objective (paper Section 5.2), combining the enumerator and the
// cost model.

#ifndef PUNCTSAFE_PLAN_CHOOSER_H_
#define PUNCTSAFE_PLAN_CHOOSER_H_

#include <vector>

#include "plan/cost_model.h"
#include "plan/enumerator.h"
#include "query/cjq.h"
#include "query/plan_shape.h"
#include "stream/scheme.h"
#include "util/status.h"

namespace punctsafe {

/// \brief One evaluated candidate.
struct RankedPlan {
  PlanShape shape;
  PlanCost cost;
  double score = 0;
};

class PlanChooser {
 public:
  /// All arguments are copied: the chooser outlives temporaries
  /// passed at construction.
  PlanChooser(ContinuousJoinQuery query, SchemeSet schemes,
              WorkloadStats stats)
      : query_(std::move(query)),
        schemes_(std::move(schemes)),
        stats_(std::move(stats)) {}

  /// \brief Enumerates safe plans (up to `limit`), costs each, and
  /// returns them sorted ascending by score (best first).
  /// FailedPrecondition if the query has no safe plan.
  Result<std::vector<RankedPlan>> Rank(
      CostObjective objective = CostObjective::kBalanced,
      PurgePolicy policy = PurgePolicy::kEager, size_t limit = 256) const;

  /// \brief Convenience: the best plan only.
  Result<RankedPlan> Choose(
      CostObjective objective = CostObjective::kBalanced,
      PurgePolicy policy = PurgePolicy::kEager, size_t limit = 256) const;

 private:
  ContinuousJoinQuery query_;
  SchemeSet schemes_;
  WorkloadStats stats_;
};

}  // namespace punctsafe

#endif  // PUNCTSAFE_PLAN_CHOOSER_H_
