#include "plan/cost_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/local_graph.h"
#include "core/plan_safety.h"
#include "util/string_util.h"

namespace punctsafe {

namespace {

struct NodeEstimate {
  LocalInput info;       // streams + schemes on this edge
  double rate = 0;       // output tuples per time unit
  double punct_rate = 0; // punctuations per time unit on this edge
};

struct Accumulators {
  double state = 0;
  double punctuations = 0;
  double work = 0;
};

}  // namespace

std::string PlanCost::ToString() const {
  return StrCat("state=", expected_state, " punct=", expected_punctuations,
                " work/t=", work_per_time, " out-rate=", output_rate);
}

double CostModel::Score(const PlanCost& cost, CostObjective objective) {
  switch (objective) {
    case CostObjective::kMemory:
      return cost.expected_state + cost.expected_punctuations;
    case CostObjective::kThroughput:
      return cost.work_per_time;
    case CostObjective::kBalanced:
      return std::log1p(cost.expected_state + cost.expected_punctuations) +
             std::log1p(cost.work_per_time);
  }
  return 0;
}

namespace {

NodeEstimate EstimateNode(const ContinuousJoinQuery& query,
                          const WorkloadStats& stats,
                          const SchemeSet& schemes, const PlanShape& shape,
                          PurgePolicy policy, size_t lazy_batch,
                          Accumulators* acc) {
  if (shape.IsLeaf()) {
    NodeEstimate est;
    size_t s = shape.stream();
    est.info.streams = {s};
    est.info.schemes = RawAvailableSchemes(query, schemes, s);
    est.rate = stats.arrival_rate[s];
    est.punct_rate =
        est.info.schemes.empty() ? 0.0 : stats.punctuation_rate[s];
    return est;
  }

  std::vector<NodeEstimate> children;
  children.reserve(shape.children().size());
  for (const PlanShape& child : shape.children()) {
    children.push_back(EstimateNode(query, stats, schemes, child, policy,
                                    lazy_batch, acc));
  }

  std::vector<LocalInput> inputs;
  inputs.reserve(children.size());
  for (const NodeEstimate& c : children) inputs.push_back(c.info);
  std::vector<LocalGpgEdge> edges = BuildLocalEdges(query, inputs);

  // Per-input purge delay: the chained purge waits for punctuations
  // from the other inputs, so the slowest punctuator dominates.
  // Two state notions per input: the *joinable* state (tuples whose
  // partners are still open — what drives the output rate, independent
  // of purge policy) and the *resident* state (what actually occupies
  // memory; lazy purging keeps closed tuples around for up to a batch).
  const size_t m = children.size();
  std::vector<double> joinable_state(m, 0);
  std::vector<double> resident_state(m, 0);
  std::vector<bool> purgeable(m, false);
  double punct_rate_total = 0;
  for (size_t k = 0; k < m; ++k) punct_rate_total += children[k].punct_rate;
  for (size_t k = 0; k < m; ++k) {
    purgeable[k] = LocalInputPurgeable(k, m, edges);
    double joinable_delay = stats.horizon;
    double resident_delay = stats.horizon;
    if (purgeable[k]) {
      double slowest = std::numeric_limits<double>::infinity();
      for (size_t j = 0; j < m; ++j) {
        if (j == k) continue;
        slowest = std::min(slowest, children[j].punct_rate);
      }
      joinable_delay = (slowest > 0) ? 1.0 / slowest : stats.horizon;
      resident_delay = joinable_delay;
      if (policy == PurgePolicy::kLazy && punct_rate_total > 0) {
        resident_delay +=
            static_cast<double>(lazy_batch) / punct_rate_total;
      } else if (policy == PurgePolicy::kNone) {
        resident_delay = stats.horizon;
      }
    }
    joinable_state[k] =
        children[k].rate * std::min(joinable_delay, stats.horizon);
    resident_state[k] =
        children[k].rate * std::min(resident_delay, stats.horizon);
  }

  // Pairwise selectivity between inputs: product of crossing
  // predicates' selectivities (1.0, i.e. cross product, when none).
  constexpr size_t kOutside = static_cast<size_t>(-1);
  std::vector<size_t> input_of(query.num_streams(), kOutside);
  for (size_t k = 0; k < m; ++k) {
    for (size_t s : inputs[k].streams) input_of[s] = k;
  }
  std::vector<std::vector<double>> sigma(m, std::vector<double>(m, 1.0));
  for (size_t p = 0; p < query.predicates().size(); ++p) {
    const ResolvedPredicate& pred = query.predicates()[p];
    size_t a = input_of[pred.left_stream];
    size_t b = input_of[pred.right_stream];
    if (a == kOutside || b == kOutside || a == b) continue;
    double sel = p < stats.selectivity.size() ? stats.selectivity[p] : 0.01;
    sigma[a][b] *= sel;
    sigma[b][a] *= sel;
  }

  // Output rate: each arrival probes the other *joinable* states.
  double out_rate = 0;
  for (size_t i = 0; i < m; ++i) {
    double fanout = 1.0;
    for (size_t j = 0; j < m; ++j) {
      if (j == i) continue;
      fanout *= std::max(sigma[i][j] * joinable_state[j], 0.0);
    }
    out_rate += children[i].rate * fanout;
  }

  // Accumulate operator costs.
  double op_state = 0;
  for (size_t k = 0; k < m; ++k) op_state += resident_state[k];
  acc->state += op_state;
  acc->punctuations += punct_rate_total * stats.punctuation_retention;
  double arrivals = 0;
  for (size_t k = 0; k < m; ++k) arrivals += children[k].rate;
  double sweep_rate = punct_rate_total;
  if (policy == PurgePolicy::kLazy && lazy_batch > 0) {
    sweep_rate /= static_cast<double>(lazy_batch);
  } else if (policy == PurgePolicy::kNone) {
    sweep_rate = 0;
  }
  acc->work += arrivals + out_rate + sweep_rate * op_state;

  // The edge this operator exposes upward.
  NodeEstimate est;
  for (const NodeEstimate& c : children) {
    est.info.streams.insert(est.info.streams.end(), c.info.streams.begin(),
                            c.info.streams.end());
  }
  std::sort(est.info.streams.begin(), est.info.streams.end());
  est.rate = out_rate;
  for (size_t k = 0; k < m; ++k) {
    if (purgeable[k]) {
      est.info.schemes.insert(est.info.schemes.end(),
                              children[k].info.schemes.begin(),
                              children[k].info.schemes.end());
      est.punct_rate += children[k].punct_rate;
    }
  }
  return est;
}

}  // namespace

Result<PlanCost> CostModel::Estimate(const PlanShape& shape,
                                     const SchemeSet& schemes,
                                     PurgePolicy policy,
                                     size_t lazy_batch) const {
  if (stats_.arrival_rate.size() != query_.num_streams() ||
      stats_.punctuation_rate.size() != query_.num_streams()) {
    return Status::InvalidArgument(
        "WorkloadStats rates must cover every query stream");
  }
  Accumulators acc;
  NodeEstimate root = EstimateNode(query_, stats_, schemes, shape, policy,
                                   lazy_batch, &acc);
  PlanCost cost;
  cost.expected_state = acc.state;
  cost.expected_punctuations = acc.punctuations;
  cost.work_per_time = acc.work;
  cost.output_rate = root.rate;
  return cost;
}

}  // namespace punctsafe
