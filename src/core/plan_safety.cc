#include "core/plan_safety.h"

#include <algorithm>

#include "util/string_util.h"

namespace punctsafe {

namespace {

LocalInput CheckNode(const ContinuousJoinQuery& query,
                     const SchemeSet& schemes, const PlanShape& shape,
                     PlanSafetyReport* report) {
  if (shape.IsLeaf()) {
    LocalInput info;
    info.streams = {shape.stream()};
    info.schemes = RawAvailableSchemes(query, schemes, shape.stream());
    return info;
  }

  std::vector<LocalInput> children;
  children.reserve(shape.children().size());
  for (const PlanShape& child : shape.children()) {
    children.push_back(CheckNode(query, schemes, child, report));
  }

  std::vector<LocalGpgEdge> edges = BuildLocalEdges(query, children);

  OperatorVerdict verdict;
  verdict.purgeable = true;
  LocalInput info;
  for (size_t c = 0; c < children.size(); ++c) {
    verdict.child_streams.push_back(children[c].streams);
    bool purgeable = LocalInputPurgeable(c, children.size(), edges);
    verdict.child_purgeable.push_back(purgeable);
    verdict.purgeable = verdict.purgeable && purgeable;
    info.streams.insert(info.streams.end(), children[c].streams.begin(),
                        children[c].streams.end());
    if (purgeable) {
      // A purgeable input's punctuations can be regenerated on the
      // operator output once the matching stored tuples are gone, so
      // its schemes propagate upward.
      info.schemes.insert(info.schemes.end(), children[c].schemes.begin(),
                          children[c].schemes.end());
    }
  }
  std::sort(info.streams.begin(), info.streams.end());
  report->operators.push_back(std::move(verdict));
  return info;
}

}  // namespace

std::vector<AvailableScheme> RawAvailableSchemes(
    const ContinuousJoinQuery& query, const SchemeSet& schemes,
    size_t stream) {
  std::vector<AvailableScheme> out;
  for (const PunctuationScheme* s :
       schemes.SchemesFor(query.stream(stream))) {
    if (s->arity() != query.schema(stream).num_attributes()) continue;
    out.push_back({stream, s->PunctuatableAttrs()});
  }
  return out;
}

std::string PlanSafetyReport::ToString(
    const ContinuousJoinQuery& query) const {
  std::ostringstream out;
  out << (safe ? "SAFE" : "UNSAFE");
  for (size_t i = 0; i < operators.size(); ++i) {
    const OperatorVerdict& v = operators[i];
    out << "\n  op#" << i << (v.purgeable ? " purgeable" : " NOT purgeable");
    for (size_t c = 0; c < v.child_streams.size(); ++c) {
      out << " [" << JoinMapped(v.child_streams[c], ",", [&](size_t s) {
        return query.stream(s);
      }) << (v.child_purgeable[c] ? "" : " !") << "]";
    }
  }
  return out.str();
}

Result<PlanSafetyReport> CheckPlanSafety(const ContinuousJoinQuery& query,
                                         const SchemeSet& schemes,
                                         const PlanShape& shape) {
  std::vector<size_t> leaves = shape.Leaves();
  std::vector<size_t> expected(query.num_streams());
  for (size_t i = 0; i < expected.size(); ++i) expected[i] = i;
  if (leaves != expected) {
    return Status::InvalidArgument(
        "plan shape leaves do not cover the query streams exactly once");
  }

  PlanSafetyReport report;
  LocalInput root = CheckNode(query, schemes, shape, &report);
  report.root_schemes = std::move(root.schemes);
  report.safe = std::all_of(
      report.operators.begin(), report.operators.end(),
      [](const OperatorVerdict& v) { return v.purgeable; });
  return report;
}

}  // namespace punctsafe
