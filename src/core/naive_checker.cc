#include "core/naive_checker.h"

#include <algorithm>
#include <functional>

#include "core/plan_safety.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace punctsafe {

namespace {

// Enumerates unordered partitions of `items` into non-empty blocks.
// The first item is pinned to the first block, which canonicalizes the
// enumeration (each partition produced exactly once).
void EnumeratePartitions(
    const std::vector<size_t>& items,
    const std::function<void(const std::vector<std::vector<size_t>>&)>& emit,
    std::vector<std::vector<size_t>>* current, size_t index) {
  if (index == items.size()) {
    emit(*current);
    return;
  }
  size_t item = items[index];
  // Place into an existing block... (indexing, not references: the
  // recursion appends to *current and may reallocate it)
  for (size_t b = 0; b < current->size(); ++b) {
    (*current)[b].push_back(item);
    EnumeratePartitions(items, emit, current, index + 1);
    (*current)[b].pop_back();
  }
  // ...or open a new block.
  current->push_back({item});
  EnumeratePartitions(items, emit, current, index + 1);
  current->pop_back();
}

}  // namespace

std::vector<PlanShape> EnumerateAllShapes(const std::vector<size_t>& streams) {
  if (streams.size() == 1) return {PlanShape::Leaf(streams[0])};
  std::vector<PlanShape> shapes;
  std::vector<std::vector<size_t>> current;
  EnumeratePartitions(
      streams,
      [&](const std::vector<std::vector<size_t>>& partition) {
        if (partition.size() < 2) return;  // a join needs >= 2 inputs
        // Cartesian product over per-block sub-shapes.
        std::vector<std::vector<PlanShape>> block_shapes;
        block_shapes.reserve(partition.size());
        for (const auto& block : partition) {
          block_shapes.push_back(EnumerateAllShapes(block));
        }
        std::vector<size_t> cursor(partition.size(), 0);
        for (;;) {
          std::vector<PlanShape> children;
          children.reserve(partition.size());
          for (size_t i = 0; i < partition.size(); ++i) {
            children.push_back(block_shapes[i][cursor[i]]);
          }
          shapes.push_back(PlanShape::Join(std::move(children)));
          size_t i = 0;
          while (i < cursor.size()) {
            if (++cursor[i] < block_shapes[i].size()) break;
            cursor[i] = 0;
            ++i;
          }
          if (i == cursor.size()) break;
        }
      },
      &current, 0);
  return shapes;
}

uint64_t CountAllShapes(size_t n) {
  // t(m) = number of shapes over m leaves (A000311: 1, 1, 4, 26, 236,
  // 2752, 39208, ...). Let g(s) be the sum over *all* set partitions
  // of an s-set (including the single-block one) of prod t(|block|).
  // Pinning the first element's block (j extra members chosen from the
  // remaining s-1) gives
  //   g(s) = sum_{j=0..s-1} C(s-1, j) * t(j+1) * g(s-1-j),  g(0) = 1.
  // Since the single-block partition contributes t(m) and the >= 2
  // block partitions sum to t(m) by definition, g(m) = 2 t(m) for
  // m >= 2; dropping the j = m-1 term from the recursion therefore
  // yields t(m) directly from smaller values.
  if (n == 0) return 0;
  std::vector<uint64_t> t{0, 1};  // t[0] unused
  std::vector<uint64_t> g{1, 1};  // g[0] = 1, g[1] = t(1) = 1
  for (size_t m = 2; m <= n; ++m) {
    uint64_t total = 0;
    for (size_t j = 0; j + 1 < m; ++j) {
      uint64_t comb = 1;  // C(m-1, j), built incrementally (exact)
      for (size_t x = 0; x < j; ++x) comb = comb * (m - 1 - x) / (x + 1);
      total += comb * t[j + 1] * g[m - 1 - j];
    }
    t.push_back(total);
    g.push_back(2 * total);
  }
  return t[n];
}

Result<NaiveCheckResult> NaiveSafetyCheck(const ContinuousJoinQuery& query,
                                          const SchemeSet& schemes,
                                          size_t max_streams,
                                          bool stop_at_first_safe) {
  if (query.num_streams() > max_streams) {
    return Status::InvalidArgument(
        StrCat("naive enumeration refused for ", query.num_streams(),
               " streams (limit ", max_streams, "): ",
               CountAllShapes(query.num_streams()), " shapes"));
  }
  std::vector<size_t> streams(query.num_streams());
  for (size_t i = 0; i < streams.size(); ++i) streams[i] = i;

  NaiveCheckResult result;
  for (PlanShape& shape : EnumerateAllShapes(streams)) {
    ++result.shapes_checked;
    PUNCTSAFE_ASSIGN_OR_RETURN(PlanSafetyReport report,
                               CheckPlanSafety(query, schemes, shape));
    if (report.safe) {
      result.safe = true;
      if (!result.safe_plan.has_value()) result.safe_plan = std::move(shape);
      if (stop_at_first_safe) break;
    }
  }
  return result;
}

}  // namespace punctsafe
