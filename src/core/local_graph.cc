#include "core/local_graph.h"

#include <algorithm>

#include "util/string_util.h"

namespace punctsafe {

std::vector<LocalGpgEdge> BuildLocalEdges(
    const ContinuousJoinQuery& query, const std::vector<LocalInput>& inputs) {
  constexpr size_t kOutside = static_cast<size_t>(-1);
  std::vector<size_t> input_of(query.num_streams(), kOutside);
  for (size_t c = 0; c < inputs.size(); ++c) {
    for (size_t s : inputs[c].streams) input_of[s] = c;
  }

  std::vector<LocalGpgEdge> edges;
  for (size_t target = 0; target < inputs.size(); ++target) {
    for (const AvailableScheme& scheme : inputs[target].schemes) {
      // Partner choices per punctuatable attribute.
      std::vector<std::vector<LocalGpgEdge::Binding>> choices;
      bool usable = true;
      for (size_t attr : scheme.attrs) {
        std::vector<LocalGpgEdge::Binding> partners;
        for (const ResolvedPredicate& p : query.predicates()) {
          if (!p.Involves(scheme.origin_stream) ||
              p.AttrOn(scheme.origin_stream) != attr) {
            continue;
          }
          size_t other = p.OtherStream(scheme.origin_stream);
          size_t other_input = input_of[other];
          if (other_input == kOutside || other_input == target) continue;
          partners.push_back(
              {attr, other_input, other, p.AttrOn(other)});
        }
        if (partners.empty()) {
          usable = false;  // attribute does not cross this operator
          break;
        }
        choices.push_back(std::move(partners));
      }
      if (!usable) continue;

      std::vector<size_t> cursor(choices.size(), 0);
      for (;;) {
        LocalGpgEdge edge;
        edge.target_input = target;
        edge.scheme = scheme;
        for (size_t i = 0; i < choices.size(); ++i) {
          const auto& binding = choices[i][cursor[i]];
          edge.bindings.push_back(binding);
          edge.source_inputs.push_back(binding.source_input);
        }
        std::sort(edge.source_inputs.begin(), edge.source_inputs.end());
        edge.source_inputs.erase(
            std::unique(edge.source_inputs.begin(), edge.source_inputs.end()),
            edge.source_inputs.end());
        if (std::none_of(edges.begin(), edges.end(),
                         [&](const LocalGpgEdge& e) {
                           return e.target_input == edge.target_input &&
                                  e.scheme == edge.scheme &&
                                  e.source_inputs == edge.source_inputs;
                         })) {
          edges.push_back(std::move(edge));
        }
        size_t i = 0;
        while (i < cursor.size()) {
          if (++cursor[i] < choices[i].size()) break;
          cursor[i] = 0;
          ++i;
        }
        if (i == cursor.size()) break;
      }
    }
  }
  return edges;
}

std::vector<bool> LocalReachableFrom(size_t start, size_t num_inputs,
                                     const std::vector<LocalGpgEdge>& edges) {
  std::vector<bool> reached(num_inputs, false);
  reached[start] = true;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const LocalGpgEdge& e : edges) {
      if (reached[e.target_input]) continue;
      bool all = std::all_of(e.source_inputs.begin(), e.source_inputs.end(),
                             [&](size_t c) { return reached[c]; });
      if (all) {
        reached[e.target_input] = true;
        changed = true;
      }
    }
  }
  return reached;
}

bool LocalInputPurgeable(size_t start, size_t num_inputs,
                         const std::vector<LocalGpgEdge>& edges) {
  auto reached = LocalReachableFrom(start, num_inputs, edges);
  return std::all_of(reached.begin(), reached.end(),
                     [](bool b) { return b; });
}

Result<std::vector<LocalGpgEdge>> DeriveLocalPurgeSteps(
    size_t start, size_t num_inputs, const std::vector<LocalGpgEdge>& edges) {
  std::vector<bool> covered(num_inputs, false);
  covered[start] = true;
  size_t count = 1;
  std::vector<LocalGpgEdge> steps;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const LocalGpgEdge& e : edges) {
      if (covered[e.target_input]) continue;
      bool all = std::all_of(e.source_inputs.begin(), e.source_inputs.end(),
                             [&](size_t c) { return covered[c]; });
      if (!all) continue;
      covered[e.target_input] = true;
      ++count;
      steps.push_back(e);
      changed = true;
    }
  }
  if (count != num_inputs) {
    return Status::FailedPrecondition(
        StrCat("operator input ", start,
               " is not purgeable: purge chain covers only ", count, " of ",
               num_inputs, " inputs"));
  }
  return steps;
}

}  // namespace punctsafe
