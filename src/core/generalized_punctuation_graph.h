// The generalized punctuation graph (paper Definitions 8-10) and the
// Section 4.2 safety results.
//
// A scheme with punctuatable attributes {A_1, ..., A_m} on stream S
// contributes a *generalized directed edge* {S_1, ..., S_m} -> S,
// where S_k is a stream joined with S on A_k: once a purge chain has
// covered all the source streams, the finite joinable-value
// combinations over (A_1, ..., A_m) are known and finitely many scheme
// instantiations close S (the generalized chained purge strategy).
//
//  - Definition 9: reachability is the fixpoint that adds a target
//    once *all* sources of one of its generalized edges are reached.
//  - Theorem 3:    the join state of S_i is purgeable iff S_i reaches
//    every other node.
//  - Corollary 2 / Theorem 4: operator / CJQ safe iff strongly
//    connected under Definition 10.
//
// Edge generation notes (documented in DESIGN.md):
//  * a scheme only yields edges when every punctuatable attribute is a
//    join attribute of its stream within the query — a punctuation
//    constraining a non-join attribute can never close a join value
//    with finitely many instantiations;
//  * when one punctuatable attribute joins several partner streams,
//    any partner can supply the values, so one edge is emitted per
//    combination of partner choices (deduplicated by source set).

#ifndef PUNCTSAFE_CORE_GENERALIZED_PUNCTUATION_GRAPH_H_
#define PUNCTSAFE_CORE_GENERALIZED_PUNCTUATION_GRAPH_H_

#include <cstddef>
#include <string>
#include <vector>

#include "query/cjq.h"
#include "stream/scheme.h"

namespace punctsafe {

/// \brief One generalized edge {sources} -> target with full
/// provenance: which scheme, and for each punctuatable attribute,
/// which predicate binds it to which source stream attribute.
struct GpgEdge {
  /// \brief How one punctuatable attribute of the target's scheme is
  /// supplied by a source stream.
  struct Binding {
    size_t target_attr = 0;    ///< punctuatable attribute on `target`
    size_t source_stream = 0;  ///< query stream supplying the values
    size_t source_attr = 0;    ///< attribute on the source side
    size_t predicate = 0;      ///< index into query.predicates()
  };

  std::vector<size_t> sources;  ///< sorted, deduplicated stream indices
  size_t target = 0;
  PunctuationScheme scheme;
  std::vector<Binding> bindings;  ///< one per punctuatable attribute
};

class GeneralizedPunctuationGraph {
 public:
  /// \brief Upper bound on partner-choice combinations expanded per
  /// scheme; beyond it the remaining combinations are dropped (makes
  /// the check conservative, never unsound). Generously above anything
  /// a real query produces.
  static constexpr size_t kMaxCombinationsPerScheme = 4096;

  static GeneralizedPunctuationGraph Build(const ContinuousJoinQuery& query,
                                           const SchemeSet& schemes);

  size_t num_streams() const { return num_streams_; }
  const std::vector<GpgEdge>& edges() const { return edges_; }

  /// \brief Definition 9 fixpoint: nodes reachable from `start`
  /// (start included).
  std::vector<bool> ReachableFrom(size_t start) const;

  /// \brief Theorem 3: per-stream purgeability.
  bool StatePurgeable(size_t stream) const;

  /// \brief Witness streams for a negative Theorem 3 verdict.
  std::vector<size_t> UnreachableFrom(size_t stream) const;

  /// \brief Definition 10 / Corollary 2 / Theorem 4.
  bool IsStronglyConnected() const;

  /// \brief True iff some combination expansion hit
  /// kMaxCombinationsPerScheme (verdicts may then be conservative).
  bool truncated() const { return truncated_; }

  std::string ToString(const ContinuousJoinQuery& query) const;

  /// \brief Graphviz rendering; generalized edges with several
  /// sources appear as a point-shaped junction node (the Figure 9
  /// "generalized node").
  std::string ToDot(const ContinuousJoinQuery& query) const;

 private:
  size_t num_streams_ = 0;
  std::vector<GpgEdge> edges_;
  bool truncated_ = false;
};

}  // namespace punctsafe

#endif  // PUNCTSAFE_CORE_GENERALIZED_PUNCTUATION_GRAPH_H_
