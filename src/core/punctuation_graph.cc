#include "core/punctuation_graph.h"

#include "util/string_util.h"

namespace punctsafe {

PunctuationGraph PunctuationGraph::Build(const ContinuousJoinQuery& query,
                                         const SchemeSet& schemes) {
  PunctuationGraph pg;
  pg.digraph_ = Digraph(query.num_streams());
  for (size_t k = 0; k < query.predicates().size(); ++k) {
    const ResolvedPredicate& p = query.predicates()[k];
    // Edge right -> left if left side punctuatable (and vice versa).
    if (schemes.HasSimpleSchemeOn(query.stream(p.left_stream), p.left_attr)) {
      pg.digraph_.AddEdge(p.right_stream, p.left_stream);
      pg.edges_.push_back({p.right_stream, p.left_stream, k, p.left_attr});
    }
    if (schemes.HasSimpleSchemeOn(query.stream(p.right_stream),
                                  p.right_attr)) {
      pg.digraph_.AddEdge(p.left_stream, p.right_stream);
      pg.edges_.push_back({p.left_stream, p.right_stream, k, p.right_attr});
    }
  }
  return pg;
}

std::vector<size_t> PunctuationGraph::UnreachableFrom(size_t stream) const {
  std::vector<size_t> out;
  auto seen = digraph_.ReachableFrom(stream);
  for (size_t i = 0; i < seen.size(); ++i) {
    if (!seen[i]) out.push_back(i);
  }
  return out;
}

std::string PunctuationGraph::ToDot(const ContinuousJoinQuery& query) const {
  std::ostringstream out;
  out << "digraph PG {\n  rankdir=LR;\n";
  for (size_t s = 0; s < num_streams(); ++s) {
    out << "  \"" << query.stream(s) << "\";\n";
  }
  for (const PgEdge& e : edges_) {
    out << "  \"" << query.stream(e.from) << "\" -> \""
        << query.stream(e.to) << "\" [label=\""
        << query.schema(e.to).attribute(e.punct_attr).name << "\"];\n";
  }
  out << "}\n";
  return out.str();
}

std::string PunctuationGraph::ToString(
    const ContinuousJoinQuery& query) const {
  return JoinMapped(edges_, ", ", [&query](const PgEdge& e) {
    return StrCat(query.stream(e.from), "->", query.stream(e.to), " [",
                  query.stream(e.to), ".",
                  query.schema(e.to).attribute(e.punct_attr).name, "]");
  });
}

}  // namespace punctsafe
