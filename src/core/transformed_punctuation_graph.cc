#include "core/transformed_punctuation_graph.h"

#include <algorithm>
#include <numeric>

#include "graph/scc.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace punctsafe {

namespace {

// Computes the node-level edge set for the current covers.
//
// In kPaperStrict mode an edge N_i -> N_j requires a generalized edge
// with sources within cover(N_i). In kClosure mode the allowed source
// set is the union of covers of nodes reachable from N_i, computed as
// an inner fixpoint (adding an edge can enlarge reachability, which
// can enable further edges).
Digraph ComputeNodeEdges(const std::vector<GpgEdge>& gpg_edges,
                         const std::vector<std::vector<size_t>>& covers,
                         const std::vector<size_t>& node_of_stream,
                         TransformedPunctuationGraph::Mode mode) {
  const size_t m = covers.size();
  Digraph edges(m);

  auto allowed_streams = [&](size_t ni) {
    std::vector<bool> allowed(node_of_stream.size(), false);
    if (mode == TransformedPunctuationGraph::Mode::kPaperStrict) {
      for (size_t s : covers[ni]) allowed[s] = true;
    } else {
      auto reach = edges.ReachableFrom(ni);
      for (size_t nj = 0; nj < m; ++nj) {
        if (!reach[nj]) continue;
        for (size_t s : covers[nj]) allowed[s] = true;
      }
    }
    return allowed;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t ni = 0; ni < m; ++ni) {
      std::vector<bool> allowed = allowed_streams(ni);
      for (const GpgEdge& e : gpg_edges) {
        size_t nj = node_of_stream[e.target];
        if (nj == ni || edges.HasEdge(ni, nj)) continue;
        bool ok = std::all_of(e.sources.begin(), e.sources.end(),
                              [&](size_t s) { return allowed[s]; });
        if (ok) {
          edges.AddEdge(ni, nj);
          changed = true;
        }
      }
    }
    if (mode == TransformedPunctuationGraph::Mode::kPaperStrict) break;
  }
  return edges;
}

}  // namespace

TransformedPunctuationGraph TransformedPunctuationGraph::Build(
    const ContinuousJoinQuery& query, const SchemeSet& schemes, Mode mode) {
  return BuildFromGpg(GeneralizedPunctuationGraph::Build(query, schemes),
                      mode);
}

TransformedPunctuationGraph TransformedPunctuationGraph::BuildFromGpg(
    const GeneralizedPunctuationGraph& gpg, Mode mode) {
  TransformedPunctuationGraph tpg;
  const size_t n = gpg.num_streams();

  // Start with singleton nodes.
  std::vector<std::vector<size_t>> covers(n);
  std::vector<size_t> node_of_stream(n);
  for (size_t i = 0; i < n; ++i) {
    covers[i] = {i};
    node_of_stream[i] = i;
  }

  // Definition 11 bounds the number of rounds by n - 1: every round
  // that continues merges at least two nodes.
  for (;;) {
    Digraph node_edges =
        ComputeNodeEdges(gpg.edges(), covers, node_of_stream, mode);
    tpg.history_.push_back({covers, node_edges});

    if (covers.size() <= 1) break;
    SccResult sccs = FindSccs(node_edges);
    if (!sccs.HasNontrivialComponent()) break;

    // Merge each component's covers into one virtual node.
    std::vector<std::vector<size_t>> merged(sccs.num_components);
    for (size_t node = 0; node < covers.size(); ++node) {
      auto& dest = merged[sccs.component_of[node]];
      dest.insert(dest.end(), covers[node].begin(), covers[node].end());
    }
    for (auto& cover : merged) std::sort(cover.begin(), cover.end());
    covers = std::move(merged);
    for (size_t node = 0; node < covers.size(); ++node) {
      for (size_t s : covers[node]) node_of_stream[s] = node;
    }
  }

  tpg.final_covers_ = std::move(covers);
  return tpg;
}

std::string TransformedPunctuationGraph::ToString(
    const ContinuousJoinQuery& query) const {
  auto cover_str = [&query](const std::vector<size_t>& cover) {
    return StrCat("{",
                  JoinMapped(cover, ",",
                             [&query](size_t s) { return query.stream(s); }),
                  "}");
  };
  return StrCat("rounds=", num_rounds(), " final=[",
                JoinMapped(final_covers_, " ", cover_str), "]");
}

}  // namespace punctsafe
