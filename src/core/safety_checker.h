// The top-level safety-checking API (paper Section 4.3): the check the
// query register runs before admitting a continuous join query.
//
// Dispatch mirrors the paper:
//  * when every relevant scheme is simple (one punctuatable
//    attribute), the Section 4.1 linear-time path applies: build the
//    punctuation graph and test strong connectivity;
//  * otherwise the Section 4.2/4.3 polynomial path applies: build the
//    generalized punctuation graph and run the transformed-graph
//    collapse (Theorem 5).
//
// Reports carry per-stream purgeability (Theorems 1/3), witness
// unreachable streams for negative verdicts, and constructive chained
// purge plans (Section 3.2.1) for positive ones.

#ifndef PUNCTSAFE_CORE_SAFETY_CHECKER_H_
#define PUNCTSAFE_CORE_SAFETY_CHECKER_H_

#include <optional>
#include <string>
#include <vector>

#include "core/chained_purge.h"
#include "core/transformed_punctuation_graph.h"
#include "query/cjq.h"
#include "stream/scheme.h"
#include "util/status.h"

namespace punctsafe {

/// \brief Purgeability verdict for one stream's join state.
struct StreamPurgeability {
  size_t stream = 0;
  bool purgeable = false;
  /// Streams the purge chain cannot reach (empty when purgeable).
  std::vector<size_t> unreachable;
  /// Constructive witness when purgeable.
  std::optional<ChainedPurgePlan> purge_plan;
};

struct SafetyReport {
  bool safe = false;
  /// True when the linear Section 4.1 path decided the query (all
  /// relevant schemes simple).
  bool used_simple_path = false;
  /// Rounds the transformed-graph collapse took (0 on the simple
  /// path).
  size_t tpg_rounds = 0;
  std::vector<StreamPurgeability> per_stream;
  /// Human-readable summary with witnesses.
  std::string explanation;
};

class SafetyChecker {
 public:
  explicit SafetyChecker(SchemeSet schemes) : schemes_(std::move(schemes)) {}

  const SchemeSet& schemes() const { return schemes_; }

  /// \brief Theorem 2 / Theorem 4 verdict plus per-stream detail.
  Result<SafetyReport> CheckQuery(const ContinuousJoinQuery& query) const;

  /// \brief Theorem 1 / Theorem 3 verdict for one stream's state when
  /// the whole query runs as a single MJoin.
  Result<StreamPurgeability> CheckState(const ContinuousJoinQuery& query,
                                        const std::string& stream) const;

  /// \brief Section 3.2.1 constructive purge plan for one stream.
  Result<ChainedPurgePlan> DerivePurgePlan(const ContinuousJoinQuery& query,
                                           const std::string& stream) const;

 private:
  SchemeSet schemes_;
};

}  // namespace punctsafe

#endif  // PUNCTSAFE_CORE_SAFETY_CHECKER_H_
