#include "core/generalized_punctuation_graph.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace punctsafe {

namespace {

// One candidate supplier of a punctuatable attribute's values.
struct Partner {
  size_t source_stream;
  size_t source_attr;
  size_t predicate;
};

}  // namespace

GeneralizedPunctuationGraph GeneralizedPunctuationGraph::Build(
    const ContinuousJoinQuery& query, const SchemeSet& schemes) {
  GeneralizedPunctuationGraph gpg;
  gpg.num_streams_ = query.num_streams();

  for (size_t target = 0; target < query.num_streams(); ++target) {
    for (const PunctuationScheme* scheme :
         schemes.SchemesFor(query.stream(target))) {
      std::vector<size_t> pa = scheme->PunctuatableAttrs();
      if (scheme->arity() != query.schema(target).num_attributes()) {
        // Scheme declared against a different schema version; ignore.
        continue;
      }
      // Collect partner choices per punctuatable attribute.
      std::vector<std::vector<Partner>> choices;
      bool usable = true;
      for (size_t attr : pa) {
        std::vector<Partner> partners;
        for (size_t k = 0; k < query.predicates().size(); ++k) {
          const ResolvedPredicate& p = query.predicates()[k];
          if (!p.Involves(target) || p.AttrOn(target) != attr) continue;
          size_t other = p.OtherStream(target);
          partners.push_back({other, p.AttrOn(other), k});
        }
        if (partners.empty()) {
          // This punctuatable attribute is not a join attribute of the
          // target: no finite instantiation set can close the join
          // values, so the scheme yields no edge (see header).
          usable = false;
          break;
        }
        choices.push_back(std::move(partners));
      }
      if (!usable) continue;

      // Cartesian product over per-attribute partner choices.
      size_t total = 1;
      for (const auto& c : choices) {
        if (total > kMaxCombinationsPerScheme / c.size() + 1) {
          total = kMaxCombinationsPerScheme + 1;
          break;
        }
        total *= c.size();
      }
      if (total > kMaxCombinationsPerScheme) {
        gpg.truncated_ = true;
        PUNCTSAFE_LOG(Warning)
            << "GPG: scheme " << scheme->ToString() << " expands to > "
            << kMaxCombinationsPerScheme
            << " partner combinations; truncating (verdict may be "
               "conservative)";
      }

      std::vector<size_t> cursor(choices.size(), 0);
      size_t emitted = 0;
      for (;;) {
        if (emitted++ >= kMaxCombinationsPerScheme) break;
        GpgEdge edge;
        edge.target = target;
        edge.scheme = *scheme;
        for (size_t i = 0; i < choices.size(); ++i) {
          const Partner& partner = choices[i][cursor[i]];
          edge.bindings.push_back({pa[i], partner.source_stream,
                                   partner.source_attr, partner.predicate});
          edge.sources.push_back(partner.source_stream);
        }
        std::sort(edge.sources.begin(), edge.sources.end());
        edge.sources.erase(
            std::unique(edge.sources.begin(), edge.sources.end()),
            edge.sources.end());
        // Deduplicate by (target, scheme attrs, source set): an edge
        // whose source set we already have for this scheme adds no
        // reachability power.
        bool duplicate = false;
        for (auto it = gpg.edges_.rbegin(); it != gpg.edges_.rend(); ++it) {
          if (it->target != edge.target) break;  // edges grouped by target
          if (it->scheme == edge.scheme && it->sources == edge.sources) {
            duplicate = true;
            break;
          }
        }
        if (!duplicate) gpg.edges_.push_back(std::move(edge));

        // Advance the mixed-radix cursor.
        size_t i = 0;
        while (i < cursor.size()) {
          if (++cursor[i] < choices[i].size()) break;
          cursor[i] = 0;
          ++i;
        }
        if (i == cursor.size()) break;
      }
    }
  }
  return gpg;
}

std::vector<bool> GeneralizedPunctuationGraph::ReachableFrom(
    size_t start) const {
  PUNCTSAFE_CHECK(start < num_streams_);
  std::vector<bool> reached(num_streams_, false);
  reached[start] = true;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const GpgEdge& e : edges_) {
      if (reached[e.target]) continue;
      bool all_sources = std::all_of(e.sources.begin(), e.sources.end(),
                                     [&](size_t s) { return reached[s]; });
      if (all_sources) {
        reached[e.target] = true;
        changed = true;
      }
    }
  }
  return reached;
}

bool GeneralizedPunctuationGraph::StatePurgeable(size_t stream) const {
  auto reached = ReachableFrom(stream);
  return std::all_of(reached.begin(), reached.end(), [](bool b) { return b; });
}

std::vector<size_t> GeneralizedPunctuationGraph::UnreachableFrom(
    size_t stream) const {
  std::vector<size_t> out;
  auto reached = ReachableFrom(stream);
  for (size_t i = 0; i < reached.size(); ++i) {
    if (!reached[i]) out.push_back(i);
  }
  return out;
}

bool GeneralizedPunctuationGraph::IsStronglyConnected() const {
  for (size_t i = 0; i < num_streams_; ++i) {
    if (!StatePurgeable(i)) return false;
  }
  return true;
}

std::string GeneralizedPunctuationGraph::ToDot(
    const ContinuousJoinQuery& query) const {
  std::ostringstream out;
  out << "digraph GPG {\n  rankdir=LR;\n";
  for (size_t s = 0; s < num_streams_; ++s) {
    out << "  \"" << query.stream(s) << "\";\n";
  }
  size_t junction = 0;
  for (const GpgEdge& e : edges_) {
    if (e.sources.size() == 1) {
      out << "  \"" << query.stream(e.sources[0]) << "\" -> \""
          << query.stream(e.target) << "\" [label=\""
          << e.scheme.ToString() << "\"];\n";
      continue;
    }
    std::string j = "g" + std::to_string(junction++);
    out << "  " << j << " [shape=point, label=\"\"];\n";
    for (size_t s : e.sources) {
      out << "  \"" << query.stream(s) << "\" -> " << j
          << " [dir=none];\n";
    }
    out << "  " << j << " -> \"" << query.stream(e.target)
        << "\" [label=\"" << e.scheme.ToString() << "\"];\n";
  }
  out << "}\n";
  return out.str();
}

std::string GeneralizedPunctuationGraph::ToString(
    const ContinuousJoinQuery& query) const {
  return JoinMapped(edges_, ", ", [&query](const GpgEdge& e) {
    return StrCat(
        "{",
        JoinMapped(e.sources, ",",
                   [&query](size_t s) { return query.stream(s); }),
        "}->", query.stream(e.target), " via ", e.scheme.ToString());
  });
}

}  // namespace punctsafe
