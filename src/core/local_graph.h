// Operator-local generalized punctuation graphs.
//
// A join operator inside an execution plan sees *inputs* (raw streams
// or sub-plan outputs), not the query's raw streams. This module
// builds the Definition 8 structure at that level: vertices are the
// operator's inputs, and a punctuation scheme available on input k
// (originating from query stream `origin_stream`) yields a generalized
// edge {source inputs} -> k when every punctuatable attribute is a
// join attribute crossing this operator. Both the static plan-safety
// check (plan_safety.h) and the runtime MJoin purge logic
// (exec/mjoin.h) are built on these edges; the runtime additionally
// consumes the per-attribute bindings to know which stored values
// instantiate the required punctuations (chained purge strategy,
// Section 3.2.1).

#ifndef PUNCTSAFE_CORE_LOCAL_GRAPH_H_
#define PUNCTSAFE_CORE_LOCAL_GRAPH_H_

#include <cstddef>
#include <vector>

#include "query/cjq.h"
#include "util/status.h"

namespace punctsafe {

/// \brief A punctuation scheme as visible on a (possibly composite)
/// plan-tree edge: the originating query stream plus its punctuatable
/// attributes in that stream's schema.
struct AvailableScheme {
  size_t origin_stream = 0;
  std::vector<size_t> attrs;

  bool operator==(const AvailableScheme& other) const {
    return origin_stream == other.origin_stream && attrs == other.attrs;
  }
};

/// \brief One operator input: the query streams underneath it and the
/// schemes its sub-plan can deliver.
struct LocalInput {
  std::vector<size_t> streams;  ///< sorted query stream indices
  std::vector<AvailableScheme> schemes;
};

/// \brief A generalized edge between operator inputs, with the
/// value-supply bindings the runtime needs.
struct LocalGpgEdge {
  /// \brief How one punctuatable attribute of the target scheme is
  /// supplied across the operator.
  struct Binding {
    size_t target_attr = 0;     ///< attr on the scheme's origin stream
    size_t source_input = 0;    ///< operator input supplying values
    size_t source_stream = 0;   ///< query stream inside that input
    size_t source_attr = 0;     ///< attribute on the source stream
  };

  std::vector<size_t> source_inputs;  ///< sorted, deduplicated
  size_t target_input = 0;
  AvailableScheme scheme;
  std::vector<Binding> bindings;  ///< one per punctuatable attribute
};

/// \brief Builds all local generalized edges for an operator over
/// `inputs` under the query's predicates.
std::vector<LocalGpgEdge> BuildLocalEdges(const ContinuousJoinQuery& query,
                                          const std::vector<LocalInput>& inputs);

/// \brief Definition 9 fixpoint over operator inputs.
std::vector<bool> LocalReachableFrom(size_t start, size_t num_inputs,
                                     const std::vector<LocalGpgEdge>& edges);

/// \brief True iff `start` reaches every input (Theorem 3 at the
/// operator level).
bool LocalInputPurgeable(size_t start, size_t num_inputs,
                         const std::vector<LocalGpgEdge>& edges);

/// \brief The fixpoint run from `start` with the firing edges recorded
/// in order: the operator-level chained purge plan. FailedPrecondition
/// when `start` is not purgeable.
Result<std::vector<LocalGpgEdge>> DeriveLocalPurgeSteps(
    size_t start, size_t num_inputs, const std::vector<LocalGpgEdge>& edges);

}  // namespace punctsafe

#endif  // PUNCTSAFE_CORE_LOCAL_GRAPH_H_
