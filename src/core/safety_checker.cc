#include "core/safety_checker.h"

#include <algorithm>

#include "core/generalized_punctuation_graph.h"
#include "core/punctuation_graph.h"
#include "util/string_util.h"

namespace punctsafe {

namespace {

StreamPurgeability MakeVerdict(const ContinuousJoinQuery& query,
                               const GeneralizedPunctuationGraph& gpg,
                               size_t stream) {
  StreamPurgeability verdict;
  verdict.stream = stream;
  verdict.unreachable = gpg.UnreachableFrom(stream);
  verdict.purgeable = verdict.unreachable.empty();
  if (verdict.purgeable) {
    auto plan = DeriveChainedPurgePlan(query, gpg, stream);
    if (plan.ok()) verdict.purge_plan = std::move(plan).ValueOrDie();
  }
  return verdict;
}

}  // namespace

Result<SafetyReport> SafetyChecker::CheckQuery(
    const ContinuousJoinQuery& query) const {
  SafetyReport report;
  SchemeSet relevant = schemes_.Restrict(query.streams());
  report.used_simple_path = relevant.AllSimple();

  // The GPG subsumes the PG for simple schemes, so per-stream detail
  // always comes from the Definition 9 fixpoint; the simple path only
  // changes how the headline verdict is computed (and is exercised for
  // agreement by the test suite).
  GeneralizedPunctuationGraph gpg =
      GeneralizedPunctuationGraph::Build(query, relevant);
  for (size_t i = 0; i < query.num_streams(); ++i) {
    report.per_stream.push_back(MakeVerdict(query, gpg, i));
  }

  if (report.used_simple_path) {
    PunctuationGraph pg = PunctuationGraph::Build(query, relevant);
    report.safe = pg.IsStronglyConnected();
  } else {
    TransformedPunctuationGraph tpg =
        TransformedPunctuationGraph::BuildFromGpg(gpg);
    report.safe = tpg.CollapsedToSingleNode();
    report.tpg_rounds = tpg.num_rounds();
  }

  std::ostringstream out;
  if (report.safe) {
    out << query.ToString() << " is SAFE under " << relevant.ToString()
        << ": the " << (report.used_simple_path ? "punctuation graph"
                                                : "generalized punctuation "
                                                  "graph")
        << " is strongly connected; the single-MJoin plan is safe.";
  } else {
    out << query.ToString() << " is UNSAFE under " << relevant.ToString()
        << ":";
    for (const StreamPurgeability& v : report.per_stream) {
      if (v.purgeable) continue;
      out << "\n  state of " << query.stream(v.stream)
          << " can never be purged: no punctuation chain closes {"
          << JoinMapped(v.unreachable, ",",
                        [&](size_t s) { return query.stream(s); })
          << "}";
    }
  }
  report.explanation = out.str();
  return report;
}

Result<StreamPurgeability> SafetyChecker::CheckState(
    const ContinuousJoinQuery& query, const std::string& stream) const {
  auto idx = query.StreamIndex(stream);
  if (!idx.has_value()) {
    return Status::NotFound(
        StrCat("stream '", stream, "' is not part of ", query.ToString()));
  }
  SchemeSet relevant = schemes_.Restrict(query.streams());
  GeneralizedPunctuationGraph gpg =
      GeneralizedPunctuationGraph::Build(query, relevant);
  return MakeVerdict(query, gpg, *idx);
}

Result<ChainedPurgePlan> SafetyChecker::DerivePurgePlan(
    const ContinuousJoinQuery& query, const std::string& stream) const {
  auto idx = query.StreamIndex(stream);
  if (!idx.has_value()) {
    return Status::NotFound(
        StrCat("stream '", stream, "' is not part of ", query.ToString()));
  }
  return DeriveChainedPurgePlan(query, schemes_.Restrict(query.streams()),
                                *idx);
}

}  // namespace punctsafe
