// The punctuation graph (paper Definition 7) and the Section 4.1
// safety results built on it.
//
// Vertices are the input streams of a join operator (or of a whole
// CJQ, treating the query as a single MJoin — Theorem 2). For a join
// predicate A_x^i = A_y^j, if the scheme set contains a *simple*
// scheme on S_i with attribute x punctuatable, there is a directed
// edge S_j -> S_i: punctuations instantiated on S_i.x close the
// partner values that S_j-side tuples are waiting on.
//
//  - Theorem 1:   the join state of S_i is purgeable iff S_i reaches
//                 every other node.
//  - Corollary 1: the operator is purgeable iff the graph is strongly
//                 connected.
//  - Theorem 2:   a CJQ has a safe execution plan iff its punctuation
//                 graph is strongly connected.
//
// This graph is exact when every scheme is simple (single punctuatable
// attribute); multi-attribute schemes need the generalized graph in
// generalized_punctuation_graph.h (the paper's Section 4.2 example,
// Figure 8, is precisely a query this graph under-approximates).

#ifndef PUNCTSAFE_CORE_PUNCTUATION_GRAPH_H_
#define PUNCTSAFE_CORE_PUNCTUATION_GRAPH_H_

#include <string>
#include <vector>

#include "graph/digraph.h"
#include "query/cjq.h"
#include "stream/scheme.h"

namespace punctsafe {

/// \brief Provenance of one punctuation-graph edge: which predicate
/// and which punctuatable attribute produced it.
struct PgEdge {
  size_t from = 0;       ///< stream waiting on punctuations
  size_t to = 0;         ///< stream whose scheme closes the values
  size_t predicate = 0;  ///< index into query.predicates()
  size_t punct_attr = 0; ///< punctuatable attribute index on `to`
};

class PunctuationGraph {
 public:
  /// \brief Builds PG^ℜ for the query under the scheme set (linear in
  /// |predicates| * |schemes|).
  static PunctuationGraph Build(const ContinuousJoinQuery& query,
                                const SchemeSet& schemes);

  size_t num_streams() const { return digraph_.num_nodes(); }
  const Digraph& digraph() const { return digraph_; }
  const std::vector<PgEdge>& edges() const { return edges_; }

  /// \brief Theorem 1: join state of `stream` is purgeable iff it
  /// reaches every other node.
  bool StatePurgeable(size_t stream) const {
    return digraph_.ReachesAll(stream);
  }

  /// \brief Streams unreachable from `stream` (witness for a negative
  /// Theorem 1 verdict).
  std::vector<size_t> UnreachableFrom(size_t stream) const;

  /// \brief Corollary 1 / Theorem 2: strong connectivity.
  bool IsStronglyConnected() const { return digraph_.IsStronglyConnected(); }

  /// \brief "S2->S1 [S1.B=S2.B via S1(_,+)]" style rendering.
  std::string ToString(const ContinuousJoinQuery& query) const;

  /// \brief Graphviz rendering (edges labeled with the punctuatable
  /// attribute that created them).
  std::string ToDot(const ContinuousJoinQuery& query) const;

 private:
  Digraph digraph_;
  std::vector<PgEdge> edges_;
};

}  // namespace punctsafe

#endif  // PUNCTSAFE_CORE_PUNCTUATION_GRAPH_H_
