// The transformed punctuation graph (paper Definition 11) — the
// polynomial-time safety-checking algorithm of Section 4.3.
//
// The transformation repeatedly (a) finds strongly connected
// components of the current node graph, (b) merges each non-trivial
// component into a virtual node, and (c) recomputes edges between the
// merged nodes: plain edges are promoted, and a *virtual directed
// edge* N_i -> N_j is added when some scheme on a stream covered by
// N_j has all punctuatable attributes supplied by streams covered by
// N_i (the Definition 11(ii) subset rule). Theorem 5: the GPG is
// strongly connected iff this process collapses to one virtual node.
//
// We implement the transformation uniformly over the GPG edge list: a
// node-level edge N_i -> N_j exists iff some generalized edge has its
// target covered by N_j and all sources within the *allowed source
// cover* of N_i. Two variants of the allowed cover are provided:
//
//  * kPaperStrict — sources must lie within cover(N_i) itself. This is
//    the literal Definition 11 rule. It is sound (single final node
//    implies GPG strong connectivity) but can stall when a generalized
//    edge's sources span several mutually *un*merged nodes.
//  * kClosure (default) — sources may lie anywhere in the covers of
//    nodes currently reachable from N_i. This is still sound (a purge
//    chain from N_i first absorbs everything N_i reaches, after which
//    the scheme fires) and is complete: if the process stalls with a
//    sink node N, every generalized edge leaving cover(N) would have
//    created an edge out of N, so streams in N cannot reach the rest
//    in the GPG either. The two variants are compared against the
//    Definition 9 fixpoint in the property-test suite.

#ifndef PUNCTSAFE_CORE_TRANSFORMED_PUNCTUATION_GRAPH_H_
#define PUNCTSAFE_CORE_TRANSFORMED_PUNCTUATION_GRAPH_H_

#include <string>
#include <vector>

#include "core/generalized_punctuation_graph.h"
#include "graph/digraph.h"
#include "query/cjq.h"
#include "stream/scheme.h"

namespace punctsafe {

class TransformedPunctuationGraph {
 public:
  enum class Mode {
    kPaperStrict,
    kClosure,
  };

  /// \brief One round's state: node covers plus the node-level edges
  /// computed for that round. Kept for explanations and tests.
  struct Snapshot {
    std::vector<std::vector<size_t>> covers;  ///< streams per node
    Digraph node_edges;
  };

  static TransformedPunctuationGraph Build(const ContinuousJoinQuery& query,
                                           const SchemeSet& schemes,
                                           Mode mode = Mode::kClosure);

  /// \brief Builds directly from a pre-built GPG (avoids recomputing
  /// edges when both structures are needed).
  static TransformedPunctuationGraph BuildFromGpg(
      const GeneralizedPunctuationGraph& gpg, Mode mode = Mode::kClosure);

  /// \brief Theorem 5 verdict: safe iff the transformation collapsed
  /// the graph to a single virtual node.
  bool CollapsedToSingleNode() const { return final_covers_.size() <= 1; }

  size_t num_final_nodes() const { return final_covers_.size(); }
  const std::vector<std::vector<size_t>>& final_covers() const {
    return final_covers_;
  }

  /// \brief Number of merge rounds executed (bounded by n - 1, giving
  /// the Section 4.3 polynomial bound).
  size_t num_rounds() const { return history_.size(); }
  const std::vector<Snapshot>& history() const { return history_; }

  std::string ToString(const ContinuousJoinQuery& query) const;

 private:
  std::vector<std::vector<size_t>> final_covers_;
  std::vector<Snapshot> history_;
};

}  // namespace punctsafe

#endif  // PUNCTSAFE_CORE_TRANSFORMED_PUNCTUATION_GRAPH_H_
