// The chained purge strategy (paper Section 3.2.1, generalized in
// Section 4.2): the constructive side of Theorems 1 and 3.
//
// To purge a tuple t of stream S, walk the streams in the order the
// Definition 9 fixpoint reaches them from S. Each step names the
// punctuation scheme whose instantiations close one more stream and
// how its punctuatable attributes are supplied: either by t itself or
// by the joinable tuples T_t[Υ] accumulated at already-covered
// streams. The runtime MJoin evaluates these plans against its
// punctuation stores to decide removability; the safety checker also
// surfaces them as human-readable purge explanations.

#ifndef PUNCTSAFE_CORE_CHAINED_PURGE_H_
#define PUNCTSAFE_CORE_CHAINED_PURGE_H_

#include <string>
#include <vector>

#include "core/generalized_punctuation_graph.h"
#include "query/cjq.h"
#include "stream/scheme.h"
#include "util/status.h"

namespace punctsafe {

/// \brief One step of a chained purge plan: which stream becomes
/// closed, with which scheme, fed by which covered streams.
struct PurgeStep {
  size_t target_stream = 0;
  PunctuationScheme scheme;
  /// One binding per punctuatable attribute of the scheme; the source
  /// streams are guaranteed to be covered by earlier steps (or be the
  /// root itself).
  std::vector<GpgEdge::Binding> bindings;
};

/// \brief The full plan for purging tuples of `root_stream`: steps in
/// dependency order covering every other stream of the query.
struct ChainedPurgePlan {
  size_t root_stream = 0;
  std::vector<PurgeStep> steps;

  std::string ToString(const ContinuousJoinQuery& query) const;
};

/// \brief Derives the chained purge plan for `root_stream` by running
/// the Definition 9 fixpoint and recording, for each newly covered
/// stream, the generalized edge that covered it.
///
/// Returns FailedPrecondition with the unreachable streams when the
/// state is not purgeable (Theorem 3 negative case).
Result<ChainedPurgePlan> DeriveChainedPurgePlan(
    const ContinuousJoinQuery& query, const SchemeSet& schemes,
    size_t root_stream);

/// \brief Same, reusing a pre-built GPG.
Result<ChainedPurgePlan> DeriveChainedPurgePlan(
    const ContinuousJoinQuery& query, const GeneralizedPunctuationGraph& gpg,
    size_t root_stream);

}  // namespace punctsafe

#endif  // PUNCTSAFE_CORE_CHAINED_PURGE_H_
