#include "core/chained_purge.h"

#include <algorithm>

#include "util/string_util.h"

namespace punctsafe {

std::string ChainedPurgePlan::ToString(
    const ContinuousJoinQuery& query) const {
  std::ostringstream out;
  out << "purge chain for " << query.stream(root_stream) << ":";
  for (const PurgeStep& step : steps) {
    out << "\n  close " << query.stream(step.target_stream) << " via "
        << step.scheme.ToString() << " with values from ";
    out << JoinMapped(step.bindings, ", ",
                      [&query](const GpgEdge::Binding& b) {
                        return StrCat(
                            query.stream(b.source_stream), ".",
                            query.schema(b.source_stream)
                                .attribute(b.source_attr)
                                .name);
                      });
  }
  return out.str();
}

Result<ChainedPurgePlan> DeriveChainedPurgePlan(
    const ContinuousJoinQuery& query, const SchemeSet& schemes,
    size_t root_stream) {
  return DeriveChainedPurgePlan(
      query, GeneralizedPunctuationGraph::Build(query, schemes), root_stream);
}

Result<ChainedPurgePlan> DeriveChainedPurgePlan(
    const ContinuousJoinQuery& query, const GeneralizedPunctuationGraph& gpg,
    size_t root_stream) {
  if (root_stream >= query.num_streams()) {
    return Status::InvalidArgument(
        StrCat("stream index ", root_stream, " out of range"));
  }
  ChainedPurgePlan plan;
  plan.root_stream = root_stream;

  std::vector<bool> covered(query.num_streams(), false);
  covered[root_stream] = true;
  size_t covered_count = 1;

  bool changed = true;
  while (changed) {
    changed = false;
    for (const GpgEdge& e : gpg.edges()) {
      if (covered[e.target]) continue;
      bool all_sources = std::all_of(e.sources.begin(), e.sources.end(),
                                     [&](size_t s) { return covered[s]; });
      if (!all_sources) continue;
      covered[e.target] = true;
      ++covered_count;
      plan.steps.push_back({e.target, e.scheme, e.bindings});
      changed = true;
    }
  }

  if (covered_count != query.num_streams()) {
    std::vector<std::string> missing;
    for (size_t i = 0; i < covered.size(); ++i) {
      if (!covered[i]) missing.push_back(query.stream(i));
    }
    return Status::FailedPrecondition(
        StrCat("state of ", query.stream(root_stream),
               " is not purgeable: no purge chain reaches {",
               Join(missing, ","), "} (Theorem 3)"));
  }
  return plan;
}

}  // namespace punctsafe
