// Operator-level safety of a concrete execution plan shape
// (Definitions 1-3). The paper's headline theorems decide whether
// *some* safe plan exists without enumerating shapes; this module is
// the complementary operational check for one given shape, used by
//  - the exponential baseline checker (naive_checker.h) that the
//    paper's algorithm avoids,
//  - the safe-plan enumerator (plan/enumerator.h),
//  - the runtime, to refuse executing unsafe shapes.
//
// Semantics: a plan is safe iff every operator is purgeable
// (Definition 2). An operator's purgeability is judged on the
// generalized punctuation graph over its *direct inputs*
// (core/local_graph.h), where an input's available punctuation schemes
// are
//  - for a leaf: the raw schemes of that stream, and
//  - for a join output: the schemes of any input whose join state in
//    that operator is purgeable (an output punctuation on attribute A
//    originating from input k can be emitted once k's own punctuation
//    arrives and k's stored A-matches have all been purged — which
//    requires k's state to be purgeable). This propagation rule is
//    the operational reading of the paper's Lemma 1/2 induction and is
//    validated against Theorems 2/4 by the property-test suite.

#ifndef PUNCTSAFE_CORE_PLAN_SAFETY_H_
#define PUNCTSAFE_CORE_PLAN_SAFETY_H_

#include <string>
#include <vector>

#include "core/local_graph.h"
#include "query/cjq.h"
#include "query/plan_shape.h"
#include "stream/scheme.h"
#include "util/status.h"

namespace punctsafe {

/// \brief Verdict for one operator of the plan.
struct OperatorVerdict {
  /// Query streams under each child, in child order.
  std::vector<std::vector<size_t>> child_streams;
  /// Per-child purgeability of the join state inside this operator.
  std::vector<bool> child_purgeable;
  bool purgeable = false;
};

struct PlanSafetyReport {
  bool safe = false;
  std::vector<OperatorVerdict> operators;  ///< post-order
  /// Schemes propagated to the plan root's output.
  std::vector<AvailableScheme> root_schemes;

  std::string ToString(const ContinuousJoinQuery& query) const;
};

/// \brief The punctuation schemes of `stream` usable within `query`,
/// as AvailableSchemes (arity-mismatched schemes are ignored).
std::vector<AvailableScheme> RawAvailableSchemes(
    const ContinuousJoinQuery& query, const SchemeSet& schemes,
    size_t stream);

/// \brief Checks the safety of one execution plan shape.
///
/// InvalidArgument if the shape's leaves are not exactly the query's
/// streams (each exactly once).
Result<PlanSafetyReport> CheckPlanSafety(const ContinuousJoinQuery& query,
                                         const SchemeSet& schemes,
                                         const PlanShape& shape);

}  // namespace punctsafe

#endif  // PUNCTSAFE_CORE_PLAN_SAFETY_H_
