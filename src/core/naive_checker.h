// The exponential baseline the paper's algorithm avoids: decide
// whether a CJQ has a safe execution plan by enumerating *every*
// operator-tree shape over the query's streams and checking each with
// the operator-level rules (plan_safety.h).
//
// The number of shapes over n streams is the "total partitions"
// sequence 1, 4, 26, 236, 2752, 39208, ... (OEIS A000311), which is
// why Theorems 2/4 — a single strong-connectivity test — matter. The
// property-test suite verifies the two checkers agree on randomized
// queries, and bench_safety_scaling measures the cost gap.

#ifndef PUNCTSAFE_CORE_NAIVE_CHECKER_H_
#define PUNCTSAFE_CORE_NAIVE_CHECKER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "query/cjq.h"
#include "query/plan_shape.h"
#include "stream/scheme.h"
#include "util/status.h"

namespace punctsafe {

struct NaiveCheckResult {
  bool safe = false;
  /// Shapes examined before the verdict (all of them when unsafe,
  /// possibly fewer when a safe shape is found early).
  size_t shapes_checked = 0;
  /// A witness safe shape when one exists.
  std::optional<PlanShape> safe_plan;
};

/// \brief Enumerates every plan shape over the streams `0..n-1` of the
/// query and reports whether any is safe.
///
/// InvalidArgument when the query exceeds `max_streams` (guard against
/// accidental combinatorial explosion).
Result<NaiveCheckResult> NaiveSafetyCheck(const ContinuousJoinQuery& query,
                                          const SchemeSet& schemes,
                                          size_t max_streams = 8,
                                          bool stop_at_first_safe = true);

/// \brief Enumerates all plan shapes over the given stream indices
/// (exposed for tests and the plan enumerator).
std::vector<PlanShape> EnumerateAllShapes(const std::vector<size_t>& streams);

/// \brief Number of operator-tree shapes over n leaves (A000311),
/// computed without materializing them.
uint64_t CountAllShapes(size_t n);

}  // namespace punctsafe

#endif  // PUNCTSAFE_CORE_NAIVE_CHECKER_H_
