// Sensor-network workload (paper Section 1's sensor motivation),
// designed to exercise *multi-attribute punctuation schemes* — the
// Section 4.2 generalization:
//
//   sensors(sensor_id, epoch, region)   -- per-epoch lease records
//   readings(sensor_id, epoch, value)
//   calibrations(sensor_id, epoch, offset)
//
//   readings ⋈ sensors       on sensor_id AND epoch
//   readings ⋈ calibrations  on sensor_id AND epoch
//
// Punctuations: all three streams close per (sensor_id, epoch) *pair*
// at each epoch boundary — two-attribute schemes (+, +, _) — plus a
// simple readings scheme on sensor_id instantiated when a sensor is
// decommissioned. Under the simple punctuation graph (Def 7) only the
// decommission scheme contributes edges and the query looks unsafe;
// the generalized graph (Def 8) proves it safe — the Figure 8
// phenomenon on a realistic workload. Because the pair schemes fire
// every epoch, a correct executor purges state epoch by epoch.

#ifndef PUNCTSAFE_WORKLOAD_SENSOR_H_
#define PUNCTSAFE_WORKLOAD_SENSOR_H_

#include <string>
#include <vector>

#include "exec/query_register.h"
#include "query/predicate.h"
#include "stream/element.h"

namespace punctsafe {

struct SensorConfig {
  size_t num_sensors = 16;
  size_t num_epochs = 50;
  size_t readings_per_sensor_epoch = 3;
  /// Probability a sensor gets a calibration record in an epoch.
  double calibration_rate = 0.5;
  uint64_t seed = 11;
};

class SensorWorkload {
 public:
  static constexpr const char* kSensors = "sensors";
  static constexpr const char* kReadings = "readings";
  static constexpr const char* kCalibrations = "calibrations";

  static Schema SensorSchema();
  static Schema ReadingSchema();
  static Schema CalibrationSchema();

  /// \brief Registers streams and schemes: sensors(+, _),
  /// readings(+, +, _), calibrations(+, +, _).
  static Status Setup(QueryRegister* reg);

  static std::vector<std::string> QueryStreams();
  static std::vector<JoinPredicateSpec> QueryPredicates();

  static Trace Generate(const SensorConfig& config);
};

}  // namespace punctsafe

#endif  // PUNCTSAFE_WORKLOAD_SENSOR_H_
