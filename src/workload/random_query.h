// Random CJQ instances and punctuation-covering traces, the fuel for
// the property-test suite and the scaling benchmarks:
//
//  * MakeRandomQuery draws a connected random query (spanning tree of
//    predicates plus extra edges) and a random scheme set (some
//    streams schemeless, some with multi-attribute schemes), so the
//    full spectrum safe/unsafe/simple/generalized is sampled;
//  * MakeCoveringTrace drives any such query with generation-scoped
//    values: tuples of generation g draw every attribute from a small
//    value pool unique to g, and at the end of the generation every
//    scheme is instantiated over the whole pool. A safe query can
//    therefore purge each generation completely (bounded state); an
//    unsafe query demonstrably cannot (Experiment E11).

#ifndef PUNCTSAFE_WORKLOAD_RANDOM_QUERY_H_
#define PUNCTSAFE_WORKLOAD_RANDOM_QUERY_H_

#include <string>
#include <vector>

#include "query/cjq.h"
#include "stream/catalog.h"
#include "stream/element.h"
#include "stream/scheme.h"
#include "util/status.h"

namespace punctsafe {

struct RandomQueryConfig {
  size_t num_streams = 4;
  size_t attrs_per_stream = 3;
  /// Join predicates beyond the connecting spanning tree.
  size_t extra_predicates = 1;
  /// Probability a stream gets no scheme at all (unsafe instances).
  double schemeless_prob = 0.3;
  /// Probability a generated scheme has two punctuatable attributes.
  double multi_attr_prob = 0.0;
  /// Probability a stream gets a second scheme.
  double second_scheme_prob = 0.2;
  uint64_t seed = 1;
};

struct RandomQueryInstance {
  StreamCatalog catalog;
  std::vector<std::string> streams;
  std::vector<JoinPredicateSpec> predicate_specs;
  SchemeSet schemes;
  ContinuousJoinQuery query;
};

Result<RandomQueryInstance> MakeRandomQuery(const RandomQueryConfig& config);

struct CoveringTraceConfig {
  size_t num_generations = 20;
  size_t values_per_generation = 4;
  /// Data tuples per generation (spread randomly across streams).
  size_t tuples_per_generation = 30;
  /// Emit the generation-closing punctuations (false: raw data only).
  bool emit_punctuations = true;
  /// Zipf exponent for drawing attribute values WITHIN a generation's
  /// value pool. 0 (default) draws uniformly; s > 0 ranks the pool and
  /// draws value rank r with probability proportional to 1/(r+1)^s, so
  /// a few hot keys dominate every generation — the skewed-routing
  /// workload the shard rebalancer exists for. Generation scoping (and
  /// thus purgeability) is unchanged: only the within-pool
  /// distribution skews.
  double zipf_s = 0.0;
  uint64_t seed = 2;
};

Trace MakeCoveringTrace(const ContinuousJoinQuery& query,
                        const SchemeSet& schemes,
                        const CoveringTraceConfig& config);

}  // namespace punctsafe

#endif  // PUNCTSAFE_WORKLOAD_RANDOM_QUERY_H_
