#include "workload/network.h"

#include <algorithm>
#include <optional>

#include "util/rng.h"

namespace punctsafe {

Schema NetworkWorkload::FlowSchema() {
  return Schema({{"flow_id", ValueType::kInt64},
                 {"src_ip", ValueType::kInt64}});
}

Schema NetworkWorkload::PacketSchema() {
  return Schema({{"flow_id", ValueType::kInt64},
                 {"seq", ValueType::kInt64},
                 {"bytes", ValueType::kInt64}});
}

Schema NetworkWorkload::AlertSchema() {
  return Schema({{"src_ip", ValueType::kInt64},
                 {"severity", ValueType::kInt64}});
}

Status NetworkWorkload::Setup(QueryRegister* reg) {
  PUNCTSAFE_RETURN_IF_ERROR(reg->RegisterStream(kFlows, FlowSchema()));
  PUNCTSAFE_RETURN_IF_ERROR(reg->RegisterStream(kPackets, PacketSchema()));
  PUNCTSAFE_RETURN_IF_ERROR(reg->RegisterStream(kAlerts, AlertSchema()));
  PUNCTSAFE_RETURN_IF_ERROR(reg->RegisterScheme(kFlows, {"flow_id"}));
  PUNCTSAFE_RETURN_IF_ERROR(reg->RegisterScheme(kFlows, {"src_ip"}));
  PUNCTSAFE_RETURN_IF_ERROR(reg->RegisterScheme(kPackets, {"flow_id"}));
  PUNCTSAFE_RETURN_IF_ERROR(reg->RegisterScheme(kAlerts, {"src_ip"}));
  return Status::OK();
}

std::vector<std::string> NetworkWorkload::QueryStreams() {
  return {kFlows, kPackets, kAlerts};
}

std::vector<JoinPredicateSpec> NetworkWorkload::QueryPredicates() {
  return {Eq({kFlows, "flow_id"}, {kPackets, "flow_id"}),
          Eq({kFlows, "src_ip"}, {kAlerts, "src_ip"})};
}

int64_t NetworkWorkload::RecommendedLifespan(const NetworkConfig& config) {
  // A flow id recurs after ~id_space flow completions; one completion
  // takes ~(packets_per_flow + 4) trace events. Half the reuse period
  // leaves slack on both sides — and the generator *enforces* this
  // value: an id only re-enters circulation once the lifespan has
  // elapsed since its end-of-flow punctuation (the analogue of TCP
  // waiting out the sequence-number wrap).
  return static_cast<int64_t>(config.id_space *
                              (config.packets_per_flow + 4) / 2);
}

Trace NetworkWorkload::Generate(const NetworkConfig& config) {
  Rng rng(config.seed);
  Trace trace;
  const int64_t lifespan = RecommendedLifespan(config);

  struct OpenFlow {
    int64_t flow_id;
    int64_t src_ip;
    size_t packets_remaining;
    int64_t next_seq;
  };
  std::vector<OpenFlow> open;
  size_t flows_emitted = 0;
  int64_t now = 0;

  // Recycled id pool: an id re-enters circulation only after its
  // quarantine (close time + lifespan) has passed.
  struct PooledId {
    int64_t id;
    int64_t available_at;
  };
  std::vector<PooledId> id_pool;
  for (size_t i = 0; i < config.id_space; ++i) {
    id_pool.push_back({static_cast<int64_t>(i), 0});
  }

  auto src_still_open = [&](int64_t src) {
    return std::any_of(open.begin(), open.end(),
                       [&](const OpenFlow& f) { return f.src_ip == src; });
  };

  auto take_available_id = [&]() -> std::optional<int64_t> {
    for (size_t i = 0; i < id_pool.size(); ++i) {
      if (id_pool[i].available_at <= now) {
        int64_t id = id_pool[i].id;
        id_pool.erase(id_pool.begin() + static_cast<long>(i));
        return id;
      }
    }
    return std::nullopt;
  };

  auto open_flow = [&](int64_t flow_id) {
    int64_t src = rng.NextInRange(0, static_cast<int64_t>(config.ip_space) -
                                         1);
    trace.push_back({kFlows, StreamElement::OfTuple(
                                 Tuple({Value(flow_id), Value(src)}), ++now)});
    // This use of flow_id is unique until the id recycles: punctuate
    // it on the flow stream (consumers must respect the lifespan).
    trace.push_back({kFlows, StreamElement::OfPunctuation(
                                 Punctuation::OfConstants(
                                     2, {{0, Value(flow_id)}}),
                                 ++now)});
    open.push_back({flow_id, src, config.packets_per_flow, 0});
    ++flows_emitted;
  };

  auto close_flow = [&](size_t idx) {
    OpenFlow f = open[idx];
    open.erase(open.begin() + static_cast<long>(idx));
    id_pool.push_back({f.flow_id, now + lifespan});
    if (rng.NextBool(config.alert_rate)) {
      trace.push_back(
          {kAlerts, StreamElement::OfTuple(
                        Tuple({Value(f.src_ip), Value(rng.NextInRange(1, 5))}),
                        ++now)});
    }
    // End of flow: no more packets for this id (until recycled).
    trace.push_back({kPackets, StreamElement::OfPunctuation(
                                   Punctuation::OfConstants(
                                       3, {{0, Value(f.flow_id)}}),
                                   ++now)});
    if (!src_still_open(f.src_ip)) {
      // Source quiescent: no further flows or alerts from it within
      // the lifespan window.
      trace.push_back({kFlows, StreamElement::OfPunctuation(
                                   Punctuation::OfConstants(
                                       2, {{1, Value(f.src_ip)}}),
                                   ++now)});
      trace.push_back({kAlerts, StreamElement::OfPunctuation(
                                    Punctuation::OfConstants(
                                        2, {{0, Value(f.src_ip)}}),
                                    ++now)});
    }
  };

  while (flows_emitted < config.num_flows || !open.empty()) {
    while (open.size() < config.max_open_flows &&
           flows_emitted < config.num_flows &&
           open.size() < config.id_space / 2) {
      auto id = take_available_id();
      if (!id.has_value()) break;  // all ids quarantined; drain first
      open_flow(*id);
    }
    if (open.empty()) {
      if (flows_emitted < config.num_flows) {
        // Everything quarantined: let time pass until an id frees up.
        ++now;
        continue;
      }
      break;
    }
    size_t idx = static_cast<size_t>(rng.NextBelow(open.size()));
    OpenFlow& f = open[idx];
    trace.push_back(
        {kPackets,
         StreamElement::OfTuple(Tuple({Value(f.flow_id), Value(f.next_seq++),
                                       Value(rng.NextInRange(40, 1500))}),
                                ++now)});
    if (--f.packets_remaining == 0) close_flow(idx);
  }
  return trace;
}

}  // namespace punctsafe
