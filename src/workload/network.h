// Network-monitoring workload (paper Sections 1 and 5.1): a 3-way
// correlation between flow records, per-flow packet summaries and
// per-source alerts,
//
//   flows(flow_id, src_ip)  ⋈ flow_id  packets(flow_id, seq, bytes)
//   flows(flow_id, src_ip)  ⋈ src_ip   alerts(src_ip, severity)
//
// with punctuations at end-of-flow on the packet and flow streams and
// per-source punctuations on the alert stream.
//
// The Section 5.1 angle: identifier spaces recycle (the paper's TCP
// sequence-number example wraps every ~4.55 hours), so "no more tuples
// with flow_id = f, ever" is unsound — flow ids are reused after
// `id_recycle_after` ticks. Punctuations therefore carry a *lifespan*:
// stores created with a matching lifespan stay correct and bounded
// (Experiment E10), while stores that keep punctuations forever
// wrongly drop tuples of recycled ids (caught by the failure-injection
// tests).

#ifndef PUNCTSAFE_WORKLOAD_NETWORK_H_
#define PUNCTSAFE_WORKLOAD_NETWORK_H_

#include <string>
#include <vector>

#include "exec/query_register.h"
#include "query/predicate.h"
#include "stream/element.h"

namespace punctsafe {

struct NetworkConfig {
  size_t num_flows = 500;
  size_t packets_per_flow = 6;
  size_t max_open_flows = 24;
  /// Flow-id space size; ids are reused round-robin, so a given id
  /// recurs roughly every `id_space` flow openings.
  size_t id_space = 64;
  size_t ip_space = 16;
  /// Probability a closing flow also triggers an alert first.
  double alert_rate = 0.3;
  uint64_t seed = 7;
};

class NetworkWorkload {
 public:
  static constexpr const char* kFlows = "flows";
  static constexpr const char* kPackets = "packets";
  static constexpr const char* kAlerts = "alerts";

  static Schema FlowSchema();
  static Schema PacketSchema();
  static Schema AlertSchema();

  /// \brief Registers streams and schemes: flows(+, _), packets(+,
  /// _, _), alerts(+, _).
  static Status Setup(QueryRegister* reg);

  static std::vector<std::string> QueryStreams();
  static std::vector<JoinPredicateSpec> QueryPredicates();

  /// \brief Ticks between two uses of the same flow id — the sound
  /// punctuation lifespan for this trace (analogous to the 4.55 h TCP
  /// wrap period).
  static int64_t RecommendedLifespan(const NetworkConfig& config);

  static Trace Generate(const NetworkConfig& config);
};

}  // namespace punctsafe

#endif  // PUNCTSAFE_WORKLOAD_NETWORK_H_
