// The paper's running example (Example 1, Figure 1): an online
// auction with an `item` stream (sellerid, itemid, name,
// initialprice) and a `bid` stream (bidderid, itemid, increase),
// joined on itemid.
//
// Punctuation sources, as in the paper:
//  * itemid is unique in the item stream, so each item tuple is
//    followed by an item-stream punctuation (*, itemid, *, *) — a bid
//    can join at most one item;
//  * when an auction closes, a bid-stream punctuation (*, itemid, *)
//    announces that no further bids for it will arrive.
//
// The generator runs a rolling market: a bounded number of auctions is
// open at any time, bids target open auctions (optionally Zipf-skewed
// toward popular items), and auctions close after their bids are in.
// With both punctuation kinds enabled, a safe join's state stays
// proportional to the number of open auctions; with them disabled the
// same trace forces state linear in the input — Experiment E1.

#ifndef PUNCTSAFE_WORKLOAD_AUCTION_H_
#define PUNCTSAFE_WORKLOAD_AUCTION_H_

#include <string>
#include <vector>

#include "exec/query_register.h"
#include "query/predicate.h"
#include "stream/catalog.h"
#include "stream/element.h"
#include "stream/scheme.h"

namespace punctsafe {

struct AuctionConfig {
  size_t num_items = 1000;
  /// Bids posted per auction (exactly; arrival order interleaved).
  size_t bids_per_item = 8;
  /// Concurrently open auctions.
  size_t max_open = 32;
  /// Zipf skew of bid placement across open auctions (0 = uniform).
  double zipf_theta = 0.0;
  /// Emit (*, itemid, *, *) on the item stream after each item.
  bool punctuate_items = true;
  /// Emit (*, itemid, *) on the bid stream at auction close.
  bool punctuate_close = true;
  /// Failure injection: probability a due punctuation is silently
  /// dropped (paper Section 5.1, "punctuations can be missed").
  double punctuation_drop_rate = 0.0;
  uint64_t seed = 42;
};

class AuctionWorkload {
 public:
  static constexpr const char* kItemStream = "item";
  static constexpr const char* kBidStream = "bid";

  static Schema ItemSchema();
  static Schema BidSchema();

  /// \brief Registers both streams plus the paper's punctuation
  /// schemes: item(_, +, _, _) and bid(_, +, _).
  static Status Setup(QueryRegister* reg);

  /// \brief Stream/predicate spec of the Example 1 join.
  static std::vector<std::string> QueryStreams();
  static std::vector<JoinPredicateSpec> QueryPredicates();

  /// \brief Generates the merged, timestamp-ordered trace.
  static Trace Generate(const AuctionConfig& config);
};

}  // namespace punctsafe

#endif  // PUNCTSAFE_WORKLOAD_AUCTION_H_
