#include "workload/random_query.h"

#include <algorithm>
#include <optional>

#include "util/rng.h"
#include "util/string_util.h"

namespace punctsafe {

Result<RandomQueryInstance> MakeRandomQuery(const RandomQueryConfig& config) {
  if (config.num_streams < 2 || config.attrs_per_stream < 1) {
    return Status::InvalidArgument("need >= 2 streams and >= 1 attribute");
  }
  Rng rng(config.seed);
  RandomQueryInstance inst;

  for (size_t s = 0; s < config.num_streams; ++s) {
    std::vector<std::string> names;
    for (size_t a = 0; a < config.attrs_per_stream; ++a) {
      names.push_back(StrCat("A", a));
    }
    std::string stream = StrCat("S", s);
    PUNCTSAFE_RETURN_IF_ERROR(
        inst.catalog.Register(stream, Schema::OfInts(names)));
    inst.streams.push_back(std::move(stream));
  }

  auto rand_attr = [&]() {
    return StrCat("A", rng.NextBelow(config.attrs_per_stream));
  };

  // Connecting spanning tree.
  for (size_t s = 1; s < config.num_streams; ++s) {
    size_t parent = static_cast<size_t>(rng.NextBelow(s));
    inst.predicate_specs.push_back(Eq({inst.streams[parent], rand_attr()},
                                      {inst.streams[s], rand_attr()}));
  }
  // Extra edges.
  for (size_t e = 0; e < config.extra_predicates; ++e) {
    size_t a = static_cast<size_t>(rng.NextBelow(config.num_streams));
    size_t b = static_cast<size_t>(rng.NextBelow(config.num_streams));
    if (a == b) continue;
    inst.predicate_specs.push_back(
        Eq({inst.streams[a], rand_attr()}, {inst.streams[b], rand_attr()}));
  }

  // Schemes: biased toward join attributes so safe instances occur at
  // a useful rate.
  PUNCTSAFE_ASSIGN_OR_RETURN(
      ContinuousJoinQuery query,
      ContinuousJoinQuery::Create(inst.catalog, inst.streams,
                                  inst.predicate_specs));
  for (size_t s = 0; s < config.num_streams; ++s) {
    if (rng.NextBool(config.schemeless_prob)) continue;
    size_t num_schemes = 1 + (rng.NextBool(config.second_scheme_prob) ? 1 : 0);
    std::vector<size_t> join_attrs = query.JoinAttrsOf(s);
    for (size_t k = 0; k < num_schemes; ++k) {
      auto pick_attr = [&]() -> size_t {
        if (!join_attrs.empty() && rng.NextBool(0.85)) {
          return join_attrs[rng.NextBelow(join_attrs.size())];
        }
        return static_cast<size_t>(rng.NextBelow(config.attrs_per_stream));
      };
      std::vector<bool> flags(config.attrs_per_stream, false);
      flags[pick_attr()] = true;
      if (rng.NextBool(config.multi_attr_prob) &&
          config.attrs_per_stream >= 2) {
        size_t second = pick_attr();
        flags[second] = true;  // may coincide; then it stays simple
      }
      PunctuationScheme scheme(inst.streams[s], flags);
      // Ignore duplicates quietly.
      (void)inst.schemes.Add(std::move(scheme));
    }
  }
  inst.query = std::move(query);
  return inst;
}

Trace MakeCoveringTrace(const ContinuousJoinQuery& query,
                        const SchemeSet& schemes,
                        const CoveringTraceConfig& config) {
  Rng rng(config.seed);
  Trace trace;
  int64_t now = 0;
  const int64_t v_per_gen = static_cast<int64_t>(config.values_per_generation);

  // Skewed mode: draw pool ranks from Zipf(zipf_s) instead of
  // uniformly. Rank 0 is the hot value of every generation; since the
  // pool is generation-scoped (required for punctuations to close it),
  // the hot value — and hence the hot key-hash slot — moves with every
  // generation. Routing skew is therefore strong within a window and
  // drifting across windows: the adversarial case a rebalance
  // controller has to chase rather than solve once.
  std::optional<ZipfSampler> zipf;
  if (config.zipf_s > 0.0) {
    zipf.emplace(config.values_per_generation, config.zipf_s);
  }

  for (size_t gen = 0; gen < config.num_generations; ++gen) {
    int64_t base = static_cast<int64_t>(gen) * v_per_gen;
    auto gen_value = [&]() {
      if (zipf.has_value()) {
        return Value(base + static_cast<int64_t>(zipf->Sample(&rng)));
      }
      return Value(base + rng.NextInRange(0, v_per_gen - 1));
    };

    for (size_t t = 0; t < config.tuples_per_generation; ++t) {
      size_t s = static_cast<size_t>(rng.NextBelow(query.num_streams()));
      std::vector<Value> values;
      values.reserve(query.schema(s).num_attributes());
      for (size_t a = 0; a < query.schema(s).num_attributes(); ++a) {
        values.push_back(gen_value());
      }
      trace.push_back({query.stream(s),
                       StreamElement::OfTuple(Tuple(std::move(values)),
                                              ++now)});
    }

    if (!config.emit_punctuations) continue;
    // Close the generation: every scheme instantiated over the whole
    // value pool of this generation.
    for (const PunctuationScheme& scheme : schemes.schemes()) {
      auto idx = query.StreamIndex(scheme.stream());
      if (!idx.has_value()) continue;
      if (scheme.arity() != query.schema(*idx).num_attributes()) continue;
      std::vector<size_t> attrs = scheme.PunctuatableAttrs();
      std::vector<int64_t> cursor(attrs.size(), 0);
      for (;;) {
        std::vector<Value> constants;
        constants.reserve(attrs.size());
        for (int64_t c : cursor) constants.push_back(Value(base + c));
        auto punct = scheme.Instantiate(constants);
        trace.push_back({scheme.stream(),
                         StreamElement::OfPunctuation(
                             std::move(punct).ValueOrDie(), ++now)});
        size_t i = 0;
        while (i < cursor.size()) {
          if (++cursor[i] < v_per_gen) break;
          cursor[i] = 0;
          ++i;
        }
        if (i == cursor.size()) break;
      }
    }
  }
  return trace;
}

}  // namespace punctsafe
