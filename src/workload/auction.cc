#include "workload/auction.h"

#include <algorithm>

#include "util/rng.h"

namespace punctsafe {

Schema AuctionWorkload::ItemSchema() {
  return Schema({{"sellerid", ValueType::kInt64},
                 {"itemid", ValueType::kInt64},
                 {"name", ValueType::kString},
                 {"initialprice", ValueType::kInt64}});
}

Schema AuctionWorkload::BidSchema() {
  return Schema({{"bidderid", ValueType::kInt64},
                 {"itemid", ValueType::kInt64},
                 {"increase", ValueType::kInt64}});
}

Status AuctionWorkload::Setup(QueryRegister* reg) {
  PUNCTSAFE_RETURN_IF_ERROR(reg->RegisterStream(kItemStream, ItemSchema()));
  PUNCTSAFE_RETURN_IF_ERROR(reg->RegisterStream(kBidStream, BidSchema()));
  PUNCTSAFE_RETURN_IF_ERROR(reg->RegisterScheme(kItemStream, {"itemid"}));
  PUNCTSAFE_RETURN_IF_ERROR(reg->RegisterScheme(kBidStream, {"itemid"}));
  return Status::OK();
}

std::vector<std::string> AuctionWorkload::QueryStreams() {
  return {kItemStream, kBidStream};
}

std::vector<JoinPredicateSpec> AuctionWorkload::QueryPredicates() {
  return {Eq({kItemStream, "itemid"}, {kBidStream, "itemid"})};
}

Trace AuctionWorkload::Generate(const AuctionConfig& config) {
  Rng rng(config.seed);
  Trace trace;
  trace.reserve(config.num_items * (config.bids_per_item + 3));

  struct OpenAuction {
    int64_t itemid;
    size_t bids_remaining;
  };
  std::vector<OpenAuction> open;
  int64_t next_itemid = 1;
  int64_t now = 0;
  size_t items_emitted = 0;

  auto emit_item = [&]() {
    int64_t itemid = next_itemid++;
    Tuple item({Value(rng.NextInRange(1, 100)), Value(itemid),
                Value(std::string("item-") + std::to_string(itemid)),
                Value(rng.NextInRange(1, 500))});
    trace.push_back({kItemStream, StreamElement::OfTuple(std::move(item),
                                                         ++now)});
    if (config.punctuate_items &&
        !rng.NextBool(config.punctuation_drop_rate)) {
      // itemid is unique: close it on the item stream immediately.
      trace.push_back(
          {kItemStream,
           StreamElement::OfPunctuation(
               Punctuation::OfConstants(4, {{1, Value(itemid)}}), ++now)});
    }
    open.push_back({itemid, config.bids_per_item});
    ++items_emitted;
  };

  auto close_auction = [&](size_t idx) {
    int64_t itemid = open[idx].itemid;
    open.erase(open.begin() + static_cast<long>(idx));
    if (config.punctuate_close &&
        !rng.NextBool(config.punctuation_drop_rate)) {
      trace.push_back(
          {kBidStream,
           StreamElement::OfPunctuation(
               Punctuation::OfConstants(3, {{1, Value(itemid)}}), ++now)});
    }
  };

  while (items_emitted < config.num_items || !open.empty()) {
    // Keep the market full while items remain.
    while (open.size() < config.max_open &&
           items_emitted < config.num_items) {
      emit_item();
    }
    if (open.empty()) break;

    // Place a bid on an open auction (skewed toward the oldest/most
    // popular ones under Zipf).
    size_t idx;
    if (config.zipf_theta > 0) {
      ZipfSampler zipf(open.size(), config.zipf_theta);
      idx = zipf.Sample(&rng);
    } else {
      idx = static_cast<size_t>(rng.NextBelow(open.size()));
    }
    Tuple bid({Value(rng.NextInRange(1, 10000)), Value(open[idx].itemid),
               Value(rng.NextInRange(1, 50))});
    trace.push_back({kBidStream, StreamElement::OfTuple(std::move(bid),
                                                        ++now)});
    if (--open[idx].bids_remaining == 0) close_auction(idx);
  }
  return trace;
}

}  // namespace punctsafe
