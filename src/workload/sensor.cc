#include "workload/sensor.h"

#include "util/rng.h"

namespace punctsafe {

Schema SensorWorkload::SensorSchema() {
  return Schema({{"sensor_id", ValueType::kInt64},
                 {"epoch", ValueType::kInt64},
                 {"region", ValueType::kInt64}});
}

Schema SensorWorkload::ReadingSchema() {
  return Schema({{"sensor_id", ValueType::kInt64},
                 {"epoch", ValueType::kInt64},
                 {"value", ValueType::kInt64}});
}

Schema SensorWorkload::CalibrationSchema() {
  return Schema({{"sensor_id", ValueType::kInt64},
                 {"epoch", ValueType::kInt64},
                 {"offset", ValueType::kInt64}});
}

Status SensorWorkload::Setup(QueryRegister* reg) {
  PUNCTSAFE_RETURN_IF_ERROR(reg->RegisterStream(kSensors, SensorSchema()));
  PUNCTSAFE_RETURN_IF_ERROR(reg->RegisterStream(kReadings, ReadingSchema()));
  PUNCTSAFE_RETURN_IF_ERROR(
      reg->RegisterStream(kCalibrations, CalibrationSchema()));
  PUNCTSAFE_RETURN_IF_ERROR(
      reg->RegisterScheme(kSensors, {"sensor_id", "epoch"}));
  PUNCTSAFE_RETURN_IF_ERROR(reg->RegisterScheme(kReadings, {"sensor_id"}));
  PUNCTSAFE_RETURN_IF_ERROR(
      reg->RegisterScheme(kReadings, {"sensor_id", "epoch"}));
  PUNCTSAFE_RETURN_IF_ERROR(
      reg->RegisterScheme(kCalibrations, {"sensor_id", "epoch"}));
  return Status::OK();
}

std::vector<std::string> SensorWorkload::QueryStreams() {
  return {kSensors, kReadings, kCalibrations};
}

std::vector<JoinPredicateSpec> SensorWorkload::QueryPredicates() {
  return {Eq({kReadings, "sensor_id"}, {kSensors, "sensor_id"}),
          Eq({kReadings, "epoch"}, {kSensors, "epoch"}),
          Eq({kReadings, "sensor_id"}, {kCalibrations, "sensor_id"}),
          Eq({kReadings, "epoch"}, {kCalibrations, "epoch"})};
}

Trace SensorWorkload::Generate(const SensorConfig& config) {
  Rng rng(config.seed);
  Trace trace;
  int64_t now = 0;

  for (size_t epoch = 0; epoch < config.num_epochs; ++epoch) {
    int64_t e = static_cast<int64_t>(epoch);
    // Epoch leases: each sensor renews its registration.
    for (size_t s = 0; s < config.num_sensors; ++s) {
      trace.push_back(
          {kSensors,
           StreamElement::OfTuple(Tuple({Value(static_cast<int64_t>(s)),
                                         Value(e),
                                         Value(rng.NextInRange(0, 3))}),
                                  ++now)});
    }
    for (size_t s = 0; s < config.num_sensors; ++s) {
      int64_t sid = static_cast<int64_t>(s);
      for (size_t r = 0; r < config.readings_per_sensor_epoch; ++r) {
        trace.push_back(
            {kReadings, StreamElement::OfTuple(
                            Tuple({Value(sid), Value(e),
                                   Value(rng.NextInRange(0, 1000))}),
                            ++now)});
      }
      if (rng.NextBool(config.calibration_rate)) {
        trace.push_back(
            {kCalibrations, StreamElement::OfTuple(
                                Tuple({Value(sid), Value(e),
                                       Value(rng.NextInRange(-10, 10))}),
                                ++now)});
      }
    }
    // Epoch boundary: close every (sensor_id, epoch) pair on all
    // three streams — instantiations of the two-attribute schemes.
    for (size_t s = 0; s < config.num_sensors; ++s) {
      int64_t sid = static_cast<int64_t>(s);
      trace.push_back({kSensors, StreamElement::OfPunctuation(
                                     Punctuation::OfConstants(
                                         3, {{0, Value(sid)}, {1, Value(e)}}),
                                     ++now)});
      trace.push_back({kReadings, StreamElement::OfPunctuation(
                                      Punctuation::OfConstants(
                                          3, {{0, Value(sid)}, {1, Value(e)}}),
                                      ++now)});
      trace.push_back(
          {kCalibrations, StreamElement::OfPunctuation(
                              Punctuation::OfConstants(
                                  3, {{0, Value(sid)}, {1, Value(e)}}),
                              ++now)});
    }
  }

  // Decommissioning: each sensor retires — no more readings from it,
  // ever (the simple readings scheme on sensor_id).
  for (size_t s = 0; s < config.num_sensors; ++s) {
    int64_t sid = static_cast<int64_t>(s);
    trace.push_back({kReadings, StreamElement::OfPunctuation(
                                    Punctuation::OfConstants(
                                        3, {{0, Value(sid)}}),
                                    ++now)});
  }
  return trace;
}

}  // namespace punctsafe
