#include "exec/mjoin.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "exec/simd.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace punctsafe {

Result<std::unique_ptr<MJoinOperator>> MJoinOperator::Create(
    const ContinuousJoinQuery& query, std::vector<LocalInput> inputs,
    MJoinConfig config) {
  if (inputs.size() < 2) {
    return Status::InvalidArgument("an MJoin needs at least two inputs");
  }
  std::vector<bool> covered(query.num_streams(), false);
  for (const LocalInput& in : inputs) {
    if (in.streams.empty()) {
      return Status::InvalidArgument("an MJoin input must cover >= 1 stream");
    }
    if (!std::is_sorted(in.streams.begin(), in.streams.end())) {
      return Status::InvalidArgument("input stream covers must be sorted");
    }
    for (size_t s : in.streams) {
      if (s >= query.num_streams() || covered[s]) {
        return Status::InvalidArgument(
            "input covers must be disjoint subsets of the query streams");
      }
      covered[s] = true;
    }
  }

  auto op = std::unique_ptr<MJoinOperator>(new MJoinOperator());
  op->config_ = config;
  op->inputs_ = std::move(inputs);
  const size_t m = op->inputs_.size();

  // Composite layouts: per input, (stream, attr) -> offset.
  op->widths_.resize(m);
  op->offset_keys_.resize(m);
  op->offset_values_.resize(m);
  for (size_t k = 0; k < m; ++k) {
    size_t offset = 0;
    for (size_t s : op->inputs_[k].streams) {
      for (size_t a = 0; a < query.schema(s).num_attributes(); ++a) {
        op->offset_keys_[k].push_back({s, a});
        op->offset_values_[k].push_back(offset + a);
      }
      offset += query.schema(s).num_attributes();
    }
    op->widths_[k] = offset;
  }

  // Output layout: covered streams ascending; copy plan per stream.
  for (size_t s = 0; s < query.num_streams(); ++s) {
    if (covered[s]) op->output_streams_.push_back(s);
  }
  size_t out = 0;
  for (size_t s : op->output_streams_) {
    // Locate the input covering s and the segment start within it.
    for (size_t k = 0; k < m; ++k) {
      size_t from = 0;
      bool found = false;
      for (size_t cs : op->inputs_[k].streams) {
        if (cs == s) {
          found = true;
          break;
        }
        from += query.schema(cs).num_attributes();
      }
      if (found) {
        size_t len = query.schema(s).num_attributes();
        op->copy_plan_.push_back({k, from, len, out});
        out += len;
        break;
      }
    }
  }
  op->output_width_ = out;

  // Localized predicates + per-input join offsets for indexing.
  constexpr size_t kOutside = static_cast<size_t>(-1);
  std::vector<size_t> input_of(query.num_streams(), kOutside);
  for (size_t k = 0; k < m; ++k) {
    for (size_t s : op->inputs_[k].streams) input_of[s] = k;
  }
  std::vector<std::vector<size_t>> indexed(m);
  for (const ResolvedPredicate& p : query.predicates()) {
    size_t ia = input_of[p.left_stream];
    size_t ib = input_of[p.right_stream];
    if (ia == kOutside || ib == kOutside || ia == ib) continue;
    LocalPredicate lp;
    lp.input_a = ia;
    lp.offset_a = op->OffsetOf(ia, p.left_stream, p.left_attr);
    lp.input_b = ib;
    lp.offset_b = op->OffsetOf(ib, p.right_stream, p.right_attr);
    indexed[ia].push_back(lp.offset_a);
    indexed[ib].push_back(lp.offset_b);
    op->predicates_.push_back(lp);
  }
  op->predicates_of_input_.resize(m);
  for (size_t i = 0; i < op->predicates_.size(); ++i) {
    op->predicates_of_input_[op->predicates_[i].input_a].push_back(i);
    op->predicates_of_input_[op->predicates_[i].input_b].push_back(i);
  }

  // Expansion orders, one per arrival input: BFS over the predicate
  // graph from the input, then any unreached inputs (cross-product
  // components). Depends only on the graph, so computed once here.
  op->expand_orders_.resize(m);
  for (size_t start = 0; start < m; ++start) {
    std::vector<size_t>& order = op->expand_orders_[start];
    std::vector<bool> seen(m, false);
    std::deque<size_t> queue{start};
    seen[start] = true;
    while (!queue.empty()) {
      size_t u = queue.front();
      queue.pop_front();
      order.push_back(u);
      for (size_t pi : op->predicates_of_input_[u]) {
        const LocalPredicate& p = op->predicates_[pi];
        size_t v = (p.input_a == u) ? p.input_b : p.input_a;
        if (!seen[v]) {
          seen[v] = true;
          queue.push_back(v);
        }
      }
    }
    for (size_t k = 0; k < m; ++k) {
      if (!seen[k]) order.push_back(k);
    }
  }

  // Stores.
  for (size_t k = 0; k < m; ++k) {
    std::sort(indexed[k].begin(), indexed[k].end());
    indexed[k].erase(std::unique(indexed[k].begin(), indexed[k].end()),
                     indexed[k].end());
    op->states_.push_back(std::make_unique<TupleStore>(
        indexed[k], TupleStoreOptions{.arena = config.arena}));
    op->punct_stores_.push_back(
        std::make_unique<PunctuationStore>(config.punctuation_lifespan));
  }

  // All generalized edges from the operator-local graph, localized to
  // composite offsets; removability checks run a fixpoint over them.
  std::vector<LocalGpgEdge> edges = BuildLocalEdges(query, op->inputs_);
  for (const LocalGpgEdge& e : edges) {
    RuntimeEdge edge;
    edge.target_input = e.target_input;
    edge.source_inputs = e.source_inputs;
    for (const LocalGpgEdge::Binding& b : e.bindings) {
      edge.target_offsets.push_back(op->OffsetOf(
          e.target_input, e.scheme.origin_stream, b.target_attr));
      edge.sources.push_back(
          {b.source_input,
           op->OffsetOf(b.source_input, b.source_stream, b.source_attr)});
    }
    op->runtime_edges_.push_back(std::move(edge));
  }
  op->input_purgeable_.resize(m);
  for (size_t k = 0; k < m; ++k) {
    op->input_purgeable_[k] = LocalInputPurgeable(k, m, edges);
  }

  // Propagatable scheme signatures (inputs with purgeable state only).
  op->propagatable_signatures_.resize(m);
  for (size_t k = 0; k < m; ++k) {
    if (!op->input_purgeable_[k]) continue;
    for (const AvailableScheme& scheme : op->inputs_[k].schemes) {
      std::vector<size_t> signature;
      for (size_t attr : scheme.attrs) {
        signature.push_back(op->OffsetOf(k, scheme.origin_stream, attr));
      }
      std::sort(signature.begin(), signature.end());
      op->propagatable_signatures_[k].push_back(std::move(signature));
    }
  }
  return op;
}

size_t MJoinOperator::OffsetOf(size_t input, size_t stream,
                               size_t attr) const {
  for (size_t i = 0; i < offset_keys_[input].size(); ++i) {
    if (offset_keys_[input][i] == std::make_pair(stream, attr)) {
      return offset_values_[input][i];
    }
  }
  PUNCTSAFE_LOG(Fatal) << "attribute (" << stream << "," << attr
                       << ") not covered by input " << input;
  return 0;
}

void MJoinOperator::PushTuple(size_t input, const Tuple& tuple, int64_t ts) {
  PUNCTSAFE_CHECK(input < num_inputs());
  PUNCTSAFE_CHECK(tuple.size() == widths_[input])
      << "tuple arity " << tuple.size() << " != input width "
      << widths_[input];
  if (obs::kCompiled && obs_ != nullptr) obs_->NoteTupleTs(ts);

  if (config_.drop_excluded_arrivals &&
      punct_stores_[input]->ExcludesTuple(tuple, ts)) {
    // Promised never to arrive: late or contract-violating; ignore.
    states_[input]->CountDroppedArrival();
    return;
  }

  // The kTupleIn ring event is recorded by the executors (serial leaf
  // push / parallel Deliver), which already hold a fresh NowNs for the
  // latency sample — keeping this path down to one clock-free hook.
  const size_t scratch_before = ExpandScratchCapacity();
  ProduceResults(input, tuple, ts);

  // Under the eager policy, test the chained purge plan before
  // storing: if the stores already close every continuation, the
  // tuple never occupies state.
  const bool drop = config_.purge_policy == PurgePolicy::kEager &&
                    Removable(input, tuple, ts);
  // Any scratch-capacity growth across this push is one expansion
  // allocation event; steady state stays pinned at zero.
  if (ExpandScratchCapacity() > scratch_before) {
    states_[input]->CountExpandAllocs(1);
  }
  if (drop) {
    states_[input]->CountDroppedArrival();
    return;
  }
  states_[input]->Insert(tuple);
}

void MJoinOperator::PushBatch(size_t input, TupleBatch& batch) {
  PUNCTSAFE_CHECK(input < num_inputs());
  if (batch.empty()) return;
  for (size_t i = 0; i < batch.size(); ++i) {
    PUNCTSAFE_CHECK(batch.tuple(i).size() == widths_[input])
        << "tuple arity " << batch.tuple(i).size() << " != input width "
        << widths_[input];
  }
  if (obs::kCompiled && obs_ != nullptr) {
    // One watermark fold per batch (NoteTupleTs is an atomic max, so
    // folding the batch max is equivalent to per-row notes).
    obs_->NoteTupleTs(batch.max_timestamp());
  }

  batch.SelectAll();
  // Punctuation-exclusion filtering over the selection vector,
  // amortized to the batch boundary: the store cannot change
  // mid-batch, so an empty store skips the whole scan.
  if (config_.drop_excluded_arrivals && punct_stores_[input]->size() > 0) {
    std::vector<uint32_t>& sel = *batch.mutable_selection();
    size_t keep = 0;
    for (uint32_t row : sel) {
      if (punct_stores_[input]->ExcludesTuple(batch.tuple(row),
                                              batch.timestamp(row))) {
        states_[input]->CountDroppedArrival();
      } else {
        sel[keep++] = row;
      }
    }
    sel.resize(keep);
  }
  if (batch.selection().empty()) return;

  // Result production, batch-at-a-time: the whole selection becomes
  // the initial frontier and every expansion hop runs over it at once
  // — one bucket resolution per same-key run *across* the batch, SIMD
  // equal-hash prefilter on the verification predicates, one staged
  // output batch per push (docs/PERF.md, "Batched expansion").
  // Frontier rows stay source-row-major through every hop, so the
  // emission sequence matches a per-row ProduceResults loop exactly.
  const size_t scratch_before = ExpandScratchCapacity();
  const std::vector<size_t>& order = expand_orders_[input];
  BatchFrontier* cur = &expand_bufs_[0];
  BatchFrontier* nxt = &expand_bufs_[1];
  cur->Reset(num_inputs());
  cur->SeedFromBatch(batch, input);
  for (size_t idx = 1; idx < order.size() && !cur->empty(); ++idx) {
    Expand(order[idx], *cur, nxt);
    std::swap(cur, nxt);
  }
  EmitFrontier(*cur, &batch, 0);

  // Eager removability amortized the same way: with no punctuation
  // stored anywhere the chained purge plan cannot close any input
  // (CoversSubspace over an empty store is false), so the whole
  // fixpoint is skipped. Probing never touches states_[input] and
  // expansion never walks through the arrival input, so running all
  // probes before any insert is result-identical to the interleaved
  // per-row order.
  const bool check_removable =
      config_.purge_policy == PurgePolicy::kEager &&
      input_purgeable_[input] && TotalLivePunctuations() > 0;
  if (check_removable) {
    for (uint32_t row : batch.selection()) {
      if (Removable(input, batch.tuple(row), batch.timestamp(row))) {
        states_[input]->CountDroppedArrival();
      } else {
        states_[input]->Insert(batch.tuple(row));
      }
    }
  } else {
    states_[input]->InsertBatch(batch);
  }
  if (ExpandScratchCapacity() > scratch_before) {
    states_[input]->CountExpandAllocs(1);
  }
}

void MJoinOperator::ProduceResults(size_t input, const Tuple& tuple,
                                   int64_t ts) {
  const std::vector<size_t>& order = expand_orders_[input];

  BatchFrontier* cur = &expand_bufs_[0];
  BatchFrontier* nxt = &expand_bufs_[1];
  cur->Reset(num_inputs());
  cur->SeedSingle(&tuple, input);

  for (size_t idx = 1; idx < order.size() && !cur->empty(); ++idx) {
    Expand(order[idx], *cur, nxt);
    std::swap(cur, nxt);
  }
  EmitFrontier(*cur, nullptr, ts);
}

void MJoinOperator::Expand(size_t v, const BatchFrontier& in,
                           BatchFrontier* out) const {
  out->Reset(in.width());
  if (in.empty()) return;
  // Predicates between v and covered inputs, split into one probe
  // predicate (index lookup) and verification predicates. Which
  // inputs are covered is identical for every row of `in` (expansion
  // fills inputs uniformly), so split once per call, not per row.
  long probe_pred = -1;
  verify_scratch_.clear();
  for (size_t pi : predicates_of_input_[v]) {
    const LocalPredicate& p = predicates_[pi];
    size_t other = (p.input_a == v) ? p.input_b : p.input_a;
    if (in.cell(0, other) == nullptr) continue;
    if (probe_pred < 0) {
      probe_pred = static_cast<long>(pi);
    } else {
      verify_scratch_.push_back(pi);
    }
  }
  const size_t rows = in.size();
  if (probe_pred >= 0) {
    const LocalPredicate& p = predicates_[probe_pred];
    const size_t v_off = (p.input_a == v) ? p.offset_a : p.offset_b;
    const size_t o_in = (p.input_a == v) ? p.input_b : p.input_a;
    const size_t o_off = (p.input_a == v) ? p.offset_b : p.offset_a;
    const TupleStore& store = *states_[v];
    // One gather pass builds the probe-key hash column over the whole
    // frontier (cached Value hashes, no re-hashing); SIMD run
    // detection then finds same-key runs spanning source rows —
    // consecutive rows frequently carry the same probe key (all
    // children of one parent row do, and so do key-clustered batch
    // rows), so the bucket is resolved and its live members filtered
    // once per run, not per row. The bucket pointer stays valid across
    // the run because only FindBucket can trigger index compaction —
    // ForBucketLive never mutates the index.
    probe_hashes_.clear();
    for (size_t r = 0; r < rows; ++r) {
      probe_hashes_.push_back(
          static_cast<uint64_t>(in.cell(r, o_in)->HashAt(o_off)));
    }
    size_t k = 0;
    while (k < rows) {
      const Value& key = in.cell(k, o_in)->at(o_off);
      // Exact key equality guards hash collisions inside the hash run
      // (same discipline as ProbeBatch).
      const size_t hash_run =
          simd::HashRunLength(probe_hashes_.data() + k, rows - k);
      size_t same_key = 1;
      while (same_key < hash_run &&
             in.cell(k + same_key, o_in)->at(o_off) == key) {
        ++same_key;
      }
      const TupleStore::Bucket* bucket = store.FindBucket(v_off, key);
      store.NoteProbeRun(same_key);
      run_cands_.clear();
      store.ForBucketLive(bucket, [&](size_t, const Tuple& candidate) {
        run_cands_.push_back(&candidate);
      });
      if (run_cands_.empty()) {
        k += same_key;
        continue;
      }
      if (verify_scratch_.empty()) {
        // Every (row, candidate) pair of the run is a result.
        // Row-major product append keeps the frontier in
        // per-source-row DFS order — the emission-order invariant —
        // while writing each column as one segment.
        out->AppendProduct(in, k, same_key, v, run_cands_.data(),
                           run_cands_.size());
      } else {
        pair_rows_.clear();
        pair_cands_.clear();
        for (size_t r = k; r < k + same_key; ++r) {
          for (const Tuple* cand : run_cands_) {
            pair_rows_.push_back(static_cast<uint32_t>(r));
            pair_cands_.push_back(cand);
          }
        }
        VerifyPairs(v, in);
        for (size_t i = 0; i < pair_rows_.size(); ++i) {
          out->AppendExtended(in, pair_rows_[i], v, pair_cands_[i]);
        }
      }
      k += same_key;
    }
  } else {
    // No predicate to covered inputs: cross product of the whole
    // frontier with v's live state (one state walk, not per row). No
    // index probe is counted, matching the per-row ForEachLive path.
    run_cands_.clear();
    states_[v]->ForEachLive([&](size_t, const Tuple& candidate) {
      run_cands_.push_back(&candidate);
    });
    if (run_cands_.empty()) return;
    if (verify_scratch_.empty()) {
      out->AppendProduct(in, 0, rows, v, run_cands_.data(),
                         run_cands_.size());
      return;
    }
    pair_rows_.clear();
    pair_cands_.clear();
    for (size_t r = 0; r < rows; ++r) {
      for (const Tuple* cand : run_cands_) {
        pair_rows_.push_back(static_cast<uint32_t>(r));
        pair_cands_.push_back(cand);
      }
    }
    VerifyPairs(v, in);
    for (size_t i = 0; i < pair_rows_.size(); ++i) {
      out->AppendExtended(in, pair_rows_[i], v, pair_cands_[i]);
    }
  }
}

void MJoinOperator::VerifyPairs(size_t v, const BatchFrontier& in) const {
  size_t n = pair_rows_.size();
  for (size_t pi : verify_scratch_) {
    if (n == 0) break;
    const LocalPredicate& vp = predicates_[pi];
    const size_t vv_off = (vp.input_a == v) ? vp.offset_a : vp.offset_b;
    const size_t vo_in = (vp.input_a == v) ? vp.input_b : vp.input_a;
    const size_t vo_off = (vp.input_a == v) ? vp.offset_b : vp.offset_a;
    // Gather both sides' cached hashes into contiguous columns, SIMD
    // prefilter, exact Value equality only on the survivors (a hash
    // collision survives the filter and dies here — false positives,
    // never false negatives).
    verify_hashes_a_.clear();
    verify_hashes_b_.clear();
    for (size_t i = 0; i < n; ++i) {
      verify_hashes_a_.push_back(
          static_cast<uint64_t>(pair_cands_[i]->HashAt(vv_off)));
      verify_hashes_b_.push_back(static_cast<uint64_t>(
          in.cell(pair_rows_[i], vo_in)->HashAt(vo_off)));
    }
    filter_scratch_.resize(n);
    const size_t maybe =
        simd::FilterEqualHashes(verify_hashes_a_.data(),
                                verify_hashes_b_.data(), n,
                                filter_scratch_.data());
    // In-place stable compaction (filter indices ascend, so the write
    // cursor never passes a pending read), preserving pair order — and
    // with it emission order.
    size_t kept = 0;
    for (size_t j = 0; j < maybe; ++j) {
      const uint32_t i = filter_scratch_[j];
      if (pair_cands_[i]->at(vv_off) ==
          in.cell(pair_rows_[i], vo_in)->at(vo_off)) {
        pair_rows_[kept] = pair_rows_[i];
        pair_cands_[kept] = pair_cands_[i];
        ++kept;
      }
    }
    n = kept;
  }
  pair_rows_.resize(n);
  pair_cands_.resize(n);
}

void MJoinOperator::EmitFrontier(const BatchFrontier& frontier,
                                 const TupleBatch* src, int64_t single_ts) {
  const size_t n = frontier.size();
  if (n == 0) return;
  // Stage every output row into one flat Value area via the copy plan.
  // ALL rows are built before any view Tuple points into out_values_ —
  // the vector must not grow once views exist. Grow-only warm buffer
  // (the TupleBatch pooling discipline): rows are overwritten by
  // copy-assign, so slots past `needed` are just retained scratch —
  // a clear+resize would default-construct and destroy every slot on
  // every emit.
  const size_t needed = n * output_width_;
  if (out_values_.size() < needed) out_values_.resize(needed);
  // Segment-major staging: one frontier column is walked sequentially
  // per copy segment (its base pointer and the segment bounds stay in
  // registers across the row loop), instead of re-resolving every
  // input's cell for every row.
  for (const CopySegment& seg : copy_plan_) {
    const Tuple* const* col = frontier.column(seg.input);
    Value* out = out_values_.data() + seg.to;
    for (size_t r = 0; r < n; ++r, out += output_width_) {
      const Tuple* part = col[r];
      for (size_t i = 0; i < seg.len; ++i) {
        out[i] = part->at(seg.from + i);
      }
    }
  }
  // View tuples only (never owning rows) through out_batch_, so its
  // pooled slots stay capacity-free; consumers copy what they keep
  // (EmitBatch contract).
  out_batch_.Clear();
  for (size_t r = 0; r < n; ++r) {
    out_batch_.AppendView(
        out_values_.data() + r * output_width_, output_width_,
        src != nullptr ? src->timestamp(frontier.src_row(r)) : single_ts);
  }
  EmitBatch(out_batch_);
  out_batch_.Clear();
}

size_t MJoinOperator::ExpandScratchCapacity() const {
  size_t total =
      expand_bufs_[0].CapacitySum() + expand_bufs_[1].CapacitySum();
  total += verify_scratch_.capacity() + probe_hashes_.capacity() +
           run_cands_.capacity() + pair_rows_.capacity() +
           pair_cands_.capacity() + verify_hashes_a_.capacity() +
           verify_hashes_b_.capacity() + filter_scratch_.capacity();
  total += combos_scratch_.capacity() + sweep_scratch_.capacity();
  total += out_values_.capacity() + out_batch_.TupleCapacity();
  return total;
}

bool MJoinOperator::Removable(size_t input, const Tuple& tuple, int64_t now) {
  if (!input_purgeable_[input]) return false;
  ++metrics_.removability_checks;
  const size_t m = num_inputs();

  BatchFrontier* joinable = &expand_bufs_[0];
  BatchFrontier* scratch = &expand_bufs_[1];
  joinable->Reset(m);
  joinable->SeedSingle(&tuple, input);

  // Fixpoint over the generalized edges: an input counts as closed as
  // soon as ANY edge whose sources are already closed has all its
  // value combinations excluded by the target's punctuation store —
  // the existential reading of the chained purge strategy.
  std::vector<bool> covered(m, false);
  covered[input] = true;
  size_t covered_count = 1;
  bool progress = true;
  while (progress && covered_count < m) {
    progress = false;
    for (const RuntimeEdge& edge : runtime_edges_) {
      if (covered[edge.target_input]) continue;
      bool sources_ready =
          std::all_of(edge.source_inputs.begin(), edge.source_inputs.end(),
                      [&](size_t s) { return covered[s]; });
      if (!sources_ready) continue;
      // The distinct value combinations the target's punctuations must
      // exclude: δ_PA(T_t[Υ]) of the generalized chained purge.
      // Dedup via sort+unique on a reused scratch vector — the old
      // per-punctuation std::unordered_set allocated a node per combo.
      combos_scratch_.clear();
      for (size_t r = 0; r < joinable->size(); ++r) {
        std::vector<Value> combo;
        combo.reserve(edge.sources.size());
        for (const RuntimeEdge::Source& src : edge.sources) {
          combo.push_back(joinable->cell(r, src.input)->at(src.offset));
        }
        combos_scratch_.push_back(Tuple(std::move(combo)));
      }
      std::sort(combos_scratch_.begin(), combos_scratch_.end());
      combos_scratch_.erase(
          std::unique(combos_scratch_.begin(), combos_scratch_.end()),
          combos_scratch_.end());
      bool all_excluded = true;
      for (const Tuple& combo : combos_scratch_) {
        if (!punct_stores_[edge.target_input]->CoversSubspace(
                edge.target_offsets, combo.values(), now)) {
          all_excluded = false;
          break;
        }
      }
      if (!all_excluded) continue;  // maybe another edge closes it
      // Extend T_t[Υ] through the newly closed input.
      Expand(edge.target_input, *joinable, scratch);
      std::swap(joinable, scratch);
      if (joinable->size() > config_.max_joinable_set) {
        PUNCTSAFE_LOG(Warning)
            << "removability check aborted: joinable set exceeded "
            << config_.max_joinable_set;
        return false;  // conservative
      }
      covered[edge.target_input] = true;
      ++covered_count;
      progress = true;
    }
  }
  return covered_count == m;
}

void MJoinOperator::PushPunctuation(size_t input,
                                    const Punctuation& punctuation,
                                    int64_t ts) {
  PUNCTSAFE_CHECK(input < num_inputs());
  PUNCTSAFE_CHECK(punctuation.arity() == widths_[input])
      << "punctuation arity " << punctuation.arity() << " != input width "
      << widths_[input];
  ++metrics_.punctuations_received;
  if (obs::kCompiled && obs_ != nullptr) obs_->RecordPunctuation(input, ts);

  if (config_.punctuation_lifespan.has_value()) {
    for (auto& store : punct_stores_) {
      metrics_.punctuations_expired += store->ExpireBefore(ts);
    }
  }

  if (punct_stores_[input]->Add(punctuation, ts)) {
    ++metrics_.punctuations_stored;
  }
  metrics_.OnPunctuationsLive(TotalLivePunctuations());

  // Queue propagation if this instantiates a propagatable scheme.
  if (config_.propagate_punctuations) {
    std::vector<size_t> signature = punctuation.ConstrainedAttrs();
    for (const auto& prop : propagatable_signatures_[input]) {
      if (prop != signature) continue;
      bool already = std::any_of(
          pending_propagations_.begin(), pending_propagations_.end(),
          [&](const PendingPropagation& p) {
            return p.input == input && p.punctuation == punctuation;
          });
      if (!already) pending_propagations_.push_back({input, punctuation});
      break;
    }
  }

  switch (config_.purge_policy) {
    case PurgePolicy::kEager:
      Sweep(ts);
      break;
    case PurgePolicy::kLazy:
      if (++punctuations_since_sweep_ >= config_.lazy_batch) Sweep(ts);
      break;
    case PurgePolicy::kNone:
      break;
  }
  std::vector<bool> changed(num_inputs(), false);
  changed[input] = true;
  TryPropagate(ts, changed);
}

void MJoinOperator::OnObserverSet() {
  for (auto& state : states_) state->SetObserver(obs_);
}

void MJoinOperator::Sweep(int64_t now) {
  ++metrics_.purge_sweeps;
  punctuations_since_sweep_ = 0;
  const bool observing = obs::kCompiled && obs_ != nullptr;
  const int64_t sweep_start = observing ? obs::NowNs() : 0;
  uint64_t purged_total = 0;
  std::vector<bool> changed(num_inputs(), false);
  for (size_t k = 0; k < num_inputs(); ++k) {
    if (!input_purgeable_[k]) continue;
    const size_t scratch_before = ExpandScratchCapacity();
    sweep_scratch_.clear();
    states_[k]->ForEachLive([&](size_t slot, const Tuple& t) {
      if (Removable(k, t, now)) sweep_scratch_.push_back(slot);
    });
    if (!sweep_scratch_.empty()) changed[k] = true;
    purged_total += sweep_scratch_.size();
    states_[k]->PurgeSlots(sweep_scratch_);
    if (ExpandScratchCapacity() > scratch_before) {
      states_[k]->CountExpandAllocs(1);
    }
  }
  TryPropagate(now, changed);
  if (config_.purge_punctuations) PurgeObsoletePunctuations(now);
  // Epoch boundary: no probe results from this sweep are in flight
  // anymore, so purged payloads can be released and all-dead arena
  // blocks reclaimed wholesale.
  for (auto& state : states_) state->AdvanceEpoch();
  if (observing) obs_->RecordSweep(obs::NowNs() - sweep_start, purged_total);
}

void MJoinOperator::PurgeObsoletePunctuations(int64_t now) {
  // A punctuation p on input v exists to close join values that
  // partner inputs wait on. Once every predicate (u.x = v.y) with y
  // constrained by p has (a) u's own punctuation store excluding
  // {x = p[y]} — no future u tuple will wait on it — and (b) no live
  // u tuple with x = p[y] — nothing stored waits on it — p carries no
  // information the system still needs (paper Section 5.1; the binary
  // case is the paper's (*, b1)-retires-(b1, *) example). Punctuations
  // whose constrained attributes include a non-join attribute are
  // kept: they still deduplicate late arrivals on their own input.
  //
  // Conditions are evaluated against a snapshot and the removals
  // applied afterwards: two punctuations that justify each other's
  // retirement both go — exclusion is a property of the stream
  // contract, not of the store that recorded it.
  auto retirable = [&](size_t v, const Punctuation& p) {
    bool touches_join = false;
    for (size_t y : p.ConstrainedAttrs()) {
      for (size_t pi : predicates_of_input_[v]) {
        const LocalPredicate& pred = predicates_[pi];
        size_t v_off = (pred.input_a == v) ? pred.offset_a : pred.offset_b;
        if (v_off != y) continue;
        touches_join = true;
        size_t u = (pred.input_a == v) ? pred.input_b : pred.input_a;
        size_t u_off = (pred.input_a == v) ? pred.offset_b : pred.offset_a;
        const Value& value = p.pattern(y).constant();
        if (!punct_stores_[u]->CoversSubspace(
                {u_off}, std::span<const Value>(&value, 1), now)) {
          return false;  // future u tuples may still need p
        }
        if (states_[u]->AnyMatch(u_off, value,
                                 [](const Tuple&) { return true; })) {
          return false;  // a stored u tuple still waits on p
        }
      }
      // A constrained non-join attribute neither helps nor blocks:
      // the join-attribute conditions decide.
    }
    return touches_join;
  };

  std::vector<std::unordered_set<Punctuation, PunctuationHash>> to_remove(
      num_inputs());
  for (size_t v = 0; v < num_inputs(); ++v) {
    punct_stores_[v]->ForEach([&](const Punctuation& p) {
      if (retirable(v, p)) to_remove[v].insert(p);
    });
  }
  for (size_t v = 0; v < num_inputs(); ++v) {
    punctuations_purged_ += punct_stores_[v]->RemoveIf(
        [&](const Punctuation& p) { return to_remove[v].count(p) > 0; });
  }
  metrics_.OnPunctuationsLive(TotalLivePunctuations());
}

void MJoinOperator::TryPropagate(int64_t now,
                                 const std::vector<bool>& changed_inputs) {
  if (!config_.propagate_punctuations) return;
  for (auto it = pending_propagations_.begin();
       it != pending_propagations_.end();) {
    if (!changed_inputs[it->input]) {
      ++it;  // nothing changed for this input since the last check
      continue;
    }
    // A pending punctuation is blocked while a stored tuple still
    // matches it; probe the state via an index where possible.
    const Punctuation& p = it->punctuation;
    const TupleStore& store = *states_[it->input];
    bool blocked = false;
    size_t probe_attr = static_cast<size_t>(-1);
    for (size_t a : p.ConstrainedAttrs()) {
      if (store.HasIndexOn(a)) {
        probe_attr = a;
        break;
      }
    }
    if (probe_attr != static_cast<size_t>(-1)) {
      blocked = store.AnyMatch(probe_attr, p.pattern(probe_attr).constant(),
                               [&](const Tuple& t) { return p.Matches(t); });
    } else {
      blocked = store.AnyLive([&](const Tuple& t) { return p.Matches(t); });
    }
    if (blocked) {
      ++it;
      continue;
    }
    Emit(StreamElement::OfPunctuation(RebaseToOutput(it->input, p), now));
    ++metrics_.punctuations_propagated;
    if (obs::kCompiled && obs_ != nullptr) {
      obs_->Note(obs::TraceKind::kPunctOut, it->input);
    }
    it = pending_propagations_.erase(it);
  }
}

Punctuation MJoinOperator::RebaseToOutput(size_t input,
                                          const Punctuation& p) const {
  std::vector<Pattern> patterns(output_width_);
  for (const CopySegment& seg : copy_plan_) {
    if (seg.input != input) continue;
    for (size_t i = 0; i < seg.len; ++i) {
      patterns[seg.to + i] = p.pattern(seg.from + i);
    }
  }
  return Punctuation(std::move(patterns));
}

OperatorStateSnapshot MJoinOperator::CaptureState() const {
  OperatorStateSnapshot snap;
  snap.inputs.resize(num_inputs());
  for (size_t k = 0; k < num_inputs(); ++k) {
    InputStateSnapshot& in = snap.inputs[k];
    in.tuples.reserve(states_[k]->live_count());
    // Copying out of ForEachLive materializes owning tuples, so the
    // snapshot stays valid past any arena epoch.
    states_[k]->ForEachLive(
        [&](size_t, const Tuple& t) { in.tuples.push_back(t); });
    punct_stores_[k]->ForEachEntry(
        [&](const Punctuation& p, int64_t arrival) {
          in.punctuations.push_back({p, arrival});
        });
    in.state_metrics = states_[k]->metrics().Snapshot();
  }
  snap.pending.reserve(pending_propagations_.size());
  for (const PendingPropagation& p : pending_propagations_) {
    snap.pending.push_back({static_cast<uint32_t>(p.input), p.punctuation});
  }
  snap.op_metrics = metrics_.Snapshot();
  snap.punctuations_purged = punctuations_purged_;
  snap.punctuations_since_sweep = punctuations_since_sweep_;
  return snap;
}

Status MJoinOperator::RestoreState(const OperatorStateSnapshot& snapshot) {
  if (snapshot.inputs.size() != num_inputs()) {
    return Status::InvalidArgument(
        "snapshot has " + std::to_string(snapshot.inputs.size()) +
        " inputs but the operator has " + std::to_string(num_inputs()));
  }
  if (TotalLiveTuples() != 0 || TotalLivePunctuations() != 0 ||
      !pending_propagations_.empty()) {
    return Status::FailedPrecondition(
        "RestoreState requires a freshly created operator");
  }
  for (size_t k = 0; k < num_inputs(); ++k) {
    const InputStateSnapshot& in = snapshot.inputs[k];
    for (const PunctuationEntry& e : in.punctuations) {
      if (e.punctuation.arity() != widths_[k]) {
        return Status::InvalidArgument(
            "snapshot punctuation arity does not match input " +
            std::to_string(k));
      }
      punct_stores_[k]->Add(e.punctuation, e.arrival);
    }
    for (const Tuple& t : in.tuples) {
      if (t.size() != widths_[k]) {
        return Status::InvalidArgument(
            "snapshot tuple width does not match input " +
            std::to_string(k));
      }
      states_[k]->Insert(t);
    }
    states_[k]->RestoreMetrics(in.state_metrics);
  }
  for (const PendingPropagationSnapshot& p : snapshot.pending) {
    if (p.input >= num_inputs()) {
      return Status::InvalidArgument(
          "snapshot pending propagation names input " +
          std::to_string(p.input));
    }
    pending_propagations_.push_back({p.input, p.punctuation});
  }
  metrics_.RestoreFrom(snapshot.op_metrics);
  punctuations_purged_ = snapshot.punctuations_purged;
  punctuations_since_sweep_ =
      static_cast<size_t>(snapshot.punctuations_since_sweep);
  return Status::OK();
}

void MJoinOperator::RecheckPropagations(int64_t now) {
  // The recheck reconstructs transient coordination state (a sharded
  // restore re-emits punctuations whose aligner votes the crash
  // discarded); the restored counters already account for the original
  // probes and emissions, so the pass must not double-count them —
  // capture -> restore -> capture stays byte-identical.
  std::vector<StateMetricsSnapshot> saved;
  saved.reserve(num_inputs());
  for (const auto& s : states_) saved.push_back(s->metrics().Snapshot());
  const uint64_t propagated =
      metrics_.punctuations_propagated.load(std::memory_order_relaxed);

  std::vector<bool> changed(num_inputs(), true);
  TryPropagate(now, changed);

  for (size_t k = 0; k < num_inputs(); ++k) {
    states_[k]->RestoreMetrics(saved[k]);
  }
  metrics_.punctuations_propagated.store(propagated,
                                         std::memory_order_relaxed);
}

StateMetricsSnapshot MJoinOperator::AggregateStateSnapshot() const {
  StateMetricsSnapshot total;
  for (const auto& s : states_) total += s->metrics().Snapshot();
  return total;
}

size_t MJoinOperator::TotalLiveTuples() const {
  size_t total = 0;
  for (const auto& s : states_) total += s->live_count();
  return total;
}

size_t MJoinOperator::TotalLivePunctuations() const {
  size_t total = 0;
  for (const auto& s : punct_stores_) total += s->size();
  return total;
}

}  // namespace punctsafe
