// PlanExecutor: instantiates an execution plan shape as a tree of
// MJoin operators, wires punctuation/result propagation between them,
// and routes raw stream elements to the right leaf inputs. This is
// the "query processor" box of the paper's Figure 2.

#ifndef PUNCTSAFE_EXEC_PLAN_EXECUTOR_H_
#define PUNCTSAFE_EXEC_PLAN_EXECUTOR_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/plan_safety.h"
#include "exec/checkpoint.h"
#include "exec/mjoin.h"
#include "exec/shard_map.h"
#include "exec/tuple_batch.h"
#include "obs/observability.h"
#include "query/cjq.h"
#include "query/plan_shape.h"
#include "stream/element.h"
#include "stream/scheme.h"
#include "util/status.h"

namespace punctsafe {

/// \brief How QueryRegister instantiates an admitted query's plan.
enum class ExecutionMode {
  kSerial,    ///< single-threaded PlanExecutor (the default)
  kParallel,  ///< pipelined ParallelExecutor, one thread per operator
};

struct ExecutorConfig {
  MJoinConfig mjoin;
  /// Retain emitted result tuples (tests/examples; benchmarks count
  /// only).
  bool keep_results = false;
  /// Serial vs pipelined execution (honored by QueryRegister).
  ExecutionMode mode = ExecutionMode::kSerial;
  /// Bounded-queue capacity per operator under kParallel; pushes block
  /// when full (backpressure). Capacity counts messages, and one
  /// message carries a whole batch, so the queue bound scales with
  /// batch_size.
  size_t queue_capacity = 1024;
  /// The unit of batched execution — one knob across the serial,
  /// pipelined, and sharded modes. Consecutive same-stream tuples are
  /// accumulated into a TupleBatch of this capacity and pushed through
  /// the operator tree (and, under kParallel, through the queues) as
  /// one unit; the open batch is flushed before any punctuation is
  /// forwarded, so results from a batch always precede punctuations
  /// that arrived after it. Under kParallel it also sizes the
  /// per-parent-shard result staging (the former hard-coded emit flush
  /// batch of 128). 1 (the default) reproduces tuple-at-a-time
  /// execution exactly; 0 is normalized to 1. Throughput-oriented
  /// setups use 64-256 (bench/bench_hot_path.cc sweeps the knob).
  size_t batch_size = 1;
  /// Under kParallel: shard workers per operator (hash-partitioned
  /// intra-operator parallelism). Each operator whose join predicates
  /// admit an exact partitioning runs as this many single-threaded
  /// shard replicas behind a key-hashing router; punctuations and
  /// drain markers are broadcast to all shards. Operators that cannot
  /// be partitioned exactly (see exec/partition_router.h) fall back to
  /// one shard. 0 is normalized to 1; 1 disables sharding. Total
  /// thread count is (#operators x shards), so size against the
  /// machine's core count.
  size_t shards = 1;
  /// Arena-backed tuple storage with epoch reclamation in every
  /// operator state (copied into mjoin.arena at Create; arenas are
  /// shard-local, so sharded execution needs no extra
  /// synchronization). Off = per-tuple heap ownership; join results
  /// are identical either way, which the differential harness sweeps.
  bool arena = true;
  /// Runtime observability (src/obs/): trace rings + latency /
  /// punctuation-lag / sweep / queue histograms per shard operator.
  /// Off by default — every hook short-circuits on a null pointer —
  /// and compiled out entirely under PUNCTSAFE_NO_OBS.
  obs::ObserveOptions observe;
  /// Automatic punctuation-aligned snapshots (exec/checkpoint.h):
  /// every `interval_punctuations` punctuations, a StateSnapshot is
  /// written to `path` once the triggering cascade has settled (under
  /// kParallel: after a checkpoint barrier drains the pipeline).
  /// Disabled by default; Checkpoint() can always be called manually.
  CheckpointConfig checkpoint;
  /// Adaptive shard rebalancing under kParallel (exec/shard_map.h):
  /// per-slot routed counters feed a controller that migrates hot key
  /// ranges between shards at punctuation-aligned barriers, and (with
  /// max_shards > shards) grows/shrinks the active shard set. Off by
  /// default: routing then uses the initial balanced ShardMap and no
  /// counters are maintained.
  RebalanceConfig rebalance;
  /// Under kParallel: rewrite plan nodes that ComputePartitionSpec
  /// cannot shard (>= 3 inputs keyed on multiple equivalence classes)
  /// into left-deep binary chains so every operator partitions and the
  /// inter-operator emit re-hash acts as a repartitioning exchange
  /// (exec/exchange.h). Off by default — the executed shape (and the
  /// checkpoint fingerprint) then match the caller's shape exactly.
  bool exchange = false;
  /// Adapt the batched-execution unit at runtime: start from
  /// batch_size (normalized up to TupleBatch::kDefaultCapacity when
  /// left at 1) and retune the ingest/emit batch capacities from
  /// observed probe hash-run lengths at punctuation/drain boundaries,
  /// clamped to [128, 512] — the band the serial sweep shows winning
  /// (docs/PERF.md). Off by default: batch_size stays fixed.
  bool adaptive_batch = false;
};

/// \brief Identity string tying a snapshot to (query, plan shape);
/// restore paths refuse a snapshot whose fingerprint differs.
std::string PlanFingerprint(const ContinuousJoinQuery& query,
                            const PlanShape& shape);

/// \brief Batch capacity chosen by ExecutorConfig::adaptive_batch
/// from `rows` probed rows collapsing into `runs` same-key runs since
/// the last retune: scales the mean run length into the [128, 512]
/// band the serial batch-size sweep shows winning (docs/PERF.md) —
/// longer runs amortize more per-batch work, so they earn a larger
/// batch. Returns `current` unchanged when there is no signal
/// (`runs == 0`).
size_t AdaptiveBatchTarget(uint64_t rows, uint64_t runs, size_t current);

class PlanExecutor {
 public:
  /// \brief Builds the operator tree for `shape` over `query`.
  /// Unsafe shapes are built too (their states simply grow); callers
  /// that must not run unsafe plans go through QueryRegister.
  static Result<std::unique_ptr<PlanExecutor>> Create(
      const ContinuousJoinQuery& query, const SchemeSet& schemes,
      const PlanShape& shape, ExecutorConfig config = {});

  /// \brief Routes one trace event by stream name.
  Status Push(const TraceEvent& event);

  /// \brief Routes by query stream index. With batch_size > 1 the
  /// tuple may be buffered in the open ingest batch; it is delivered
  /// at the next flush point (batch full, stream change, punctuation,
  /// SweepAll, or an explicit FlushIngest).
  void PushTuple(size_t stream, const Tuple& tuple, int64_t ts);
  void PushPunctuation(size_t stream, const Punctuation& punctuation,
                       int64_t ts);

  /// \brief Delivers the open ingest batch downstream (no-op when
  /// empty). Call at end of input, and before Checkpoint when pushes
  /// did not end on a punctuation.
  void FlushIngest();

  /// \brief Flushes lazy purge batches across all operators (the open
  /// ingest batch is delivered first).
  void SweepAll(int64_t now);

  /// \brief Captures the executor's complete logical state
  /// (exec/checkpoint.h). Serial execution is quiescent between
  /// pushes, so this is callable at any push boundary; the result is
  /// canonical (sorted), so equal states serialize to equal bytes.
  /// Snapshots are taken at batch boundaries: the ingest buffer must
  /// be empty (checked) — call FlushIngest() first.
  StateSnapshot Checkpoint() const;

  /// \brief Rebuilds executor state from a snapshot. Must be called on
  /// a freshly created executor (same query/schemes/shape/config
  /// structure, nothing pushed); afterwards, resume by replaying each
  /// stream's suffix from `snapshot.progress[s].events_consumed`.
  Status RestoreState(const StateSnapshot& snapshot);

  /// \brief Per-stream consumption positions (for checkpoint replay).
  const std::vector<InputProgress>& progress() const { return progress_; }

  size_t TotalLiveTuples() const;
  size_t TotalLivePunctuations() const;
  /// \brief Max of TotalLiveTuples observed after any push — the
  /// quantity the safety guarantee bounds.
  size_t tuple_high_water() const { return tuple_high_water_; }
  size_t punctuation_high_water() const { return punct_high_water_; }

  uint64_t num_results() const { return num_results_; }
  const std::vector<Tuple>& kept_results() const { return kept_results_; }

  /// \brief Moves out the results retained since the last take
  /// (requires keep_results) — the subscriber-streaming drain of the
  /// ingestion server, which must not hold every result forever.
  /// num_results() stays cumulative. Snapshots taken after a take no
  /// longer carry the drained results.
  std::vector<Tuple> TakeResults() {
    std::vector<Tuple> out = std::move(kept_results_);
    kept_results_.clear();
    return out;
  }

  /// \brief Full observability snapshot (null-safe: returns an empty
  /// snapshot when observability is off). Feed to obs::MetricsExporter
  /// via a lambda.
  obs::ObsSnapshot ObservabilitySnapshot() const;
  /// \brief The observability registry, or nullptr when off.
  obs::Observability* observability() const { return obs_.get(); }

  const PlanSafetyReport& safety() const { return safety_; }
  const ContinuousJoinQuery& query() const { return query_; }
  const PlanShape& shape() const { return shape_; }
  const std::vector<std::unique_ptr<MJoinOperator>>& operators() const {
    return operators_;
  }

 private:
  PlanExecutor() = default;

  void RecordHighWater();
  void NoteProgress(size_t stream, int64_t ts);
  void MaybeAutoCheckpoint();
  /// Adaptive-batch retune (config_.adaptive_batch): every
  /// kAdaptIntervalPunctuations punctuations — a flush point, so the
  /// ingest batch is empty — re-derive the batch capacity from the
  /// probe-run statistics accumulated since the previous retune.
  void MaybeAdaptBatch();

  ContinuousJoinQuery query_;
  PlanShape shape_;
  ExecutorConfig config_;
  PlanSafetyReport safety_;

  std::vector<std::unique_ptr<MJoinOperator>> operators_;  // post-order
  // Per query stream: the operator and input index consuming it.
  std::vector<std::pair<MJoinOperator*, size_t>> leaf_route_;

  uint64_t num_results_ = 0;
  std::vector<Tuple> kept_results_;
  size_t tuple_high_water_ = 0;
  size_t punct_high_water_ = 0;
  std::vector<InputProgress> progress_;  // per query stream
  size_t punctuations_since_checkpoint_ = 0;
  // Adaptive-batch state (config_.adaptive_batch only).
  static constexpr size_t kAdaptIntervalPunctuations = 16;
  size_t punctuations_since_adapt_ = 0;
  uint64_t adapt_rows_seen_ = 0;
  uint64_t adapt_runs_seen_ = 0;
  // Open ingest batch (batch_size > 1 only): consecutive tuples of
  // pending_stream_, delivered as one PushBatch at the next flush
  // point. Storage is recycled across flushes.
  TupleBatch pending_batch_{1};
  size_t pending_stream_ = 0;
  // One OperatorObs per operator (shard 0: serial execution), indexed
  // in step with operators_. Null when observability is off.
  std::unique_ptr<obs::Observability> obs_;
};

}  // namespace punctsafe

#endif  // PUNCTSAFE_EXEC_PLAN_EXECUTOR_H_
