// Repartitioning exchange planning: make every MJoin chain shardable.
//
// `ComputePartitionSpec` can only shard an operator with three or
// more inputs when *all* of its predicates sit inside one covering
// equivalence class — a multi-class chain (T0.k = T1.k AND
// T1.v = T2.v) fails the test and falls back to one shard, so the
// paper's safety-guaranteed plans mostly could not use the cores.
// But a *binary* operator is exact on ANY covering class
// (partition_router.h, "exactness"), and the parallel executor
// already repartitions between operators: a child shard's output
// tuple is re-hashed on the parent's partition key when it is staged
// into the per-parent-shard emit buffers and shipped as a batch
// (`EmitFromShard` + `ScatterBatch` — the peloton
// ExchangeHashJoinExecutor shape, with punctuations broadcast across
// the exchange and re-aligned by the parent's PunctuationAligner).
//
// So the exchange *plan* transformation is: rewrite every
// unshardable >=3-input node into a left-deep chain of binary joins,
// ordered so adjacent operators share predicates (each hop's
// covering class exists), and let the existing inter-operator
// machinery do the data movement. Nodes that were already
// partitionable — or already binary — are left alone. Enabled by
// ExecutorConfig::exchange; results are shape-independent (the join
// output multiset does not depend on the operator tree), which the
// exchange differential test pins against the serial original-shape
// oracle.

#ifndef PUNCTSAFE_EXEC_EXCHANGE_H_
#define PUNCTSAFE_EXEC_EXCHANGE_H_

#include "query/cjq.h"
#include "query/plan_shape.h"

namespace punctsafe {

/// \brief Returns `shape` with every internal node that
/// ComputePartitionSpec cannot shard (and that has more than two
/// children) rewritten into a left-deep binary subtree over the same
/// children, ordered greedily by predicate connectivity (most
/// connected child joins the accumulated cover first, so every
/// binary hop has an equi-join predicate — and therefore a covering
/// class — whenever the predicate graph allows one). Children are
/// rewritten recursively first; already-shardable or binary nodes
/// are preserved. The result has the same leaf set and the same
/// join-result multiset as the input shape.
PlanShape DecomposeForExchange(const ContinuousJoinQuery& query,
                               const PlanShape& shape);

}  // namespace punctsafe

#endif  // PUNCTSAFE_EXEC_EXCHANGE_H_
