// A bounded multi-producer/multi-consumer blocking queue: the edge
// primitive of the pipelined executor. Producers block when the queue
// is full (backpressure propagates source-ward through the plan tree),
// the consumer blocks when it is empty, and Close() releases everyone:
// blocked producers give up (Push returns false) while the consumer
// drains the remaining items before seeing end-of-stream.
//
// Mutex + condition variables rather than a lock-free ring: with the
// batched PushAll/PopAll fast paths (one lock acquisition per burst,
// not per element) the lock is never the bottleneck, and the simple
// implementation is trivially TSan-clean (tests/bounded_queue_test.cc
// runs it under -DPUNCTSAFE_SANITIZE=thread).
//
// Batch hand-off: the parallel executor's messages can carry a whole
// TupleBatch (ExecutorConfig::batch_size rows) as one element, so the
// per-element lock cost amortizes over the batch even on the plain
// Push/Pop paths — capacity counts messages, and one message moves one
// batch.

#ifndef PUNCTSAFE_EXEC_BOUNDED_QUEUE_H_
#define PUNCTSAFE_EXEC_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace punctsafe {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// \brief Enqueues `value`, blocking while the queue is full.
  /// Returns false (dropping the value) iff the queue was closed.
  bool Push(T value) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// \brief Enqueues without blocking; false if full or closed.
  bool TryPush(T value) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// \brief Batched Push: enqueues every element of `values`, taking
  /// the lock once per capacity window instead of once per element.
  /// Blocks while full; returns false (dropping the not-yet-enqueued
  /// remainder) iff the queue was closed.
  bool PushAll(std::deque<T> values) {
    while (!values.empty()) {
      size_t accepted = 0;
      {
        std::unique_lock<std::mutex> lock(mu_);
        not_full_.wait(
            lock, [this] { return closed_ || items_.size() < capacity_; });
        if (closed_) return false;
        while (!values.empty() && items_.size() < capacity_) {
          items_.push_back(std::move(values.front()));
          values.pop_front();
          ++accepted;
        }
      }
      if (accepted > 1) {
        not_empty_.notify_all();
      } else {
        not_empty_.notify_one();
      }
    }
    return true;
  }

  /// \brief Dequeues, blocking while empty. nullopt means closed AND
  /// drained — the consumer's end-of-stream signal.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// \brief Batched Pop: blocks while empty, then moves out *all*
  /// queued items under one lock — the consumer-side fast path (the
  /// parallel executor's workers drain whole bursts per acquisition
  /// instead of paying the lock per tuple). nullopt means closed AND
  /// drained. FIFO order is preserved within the returned batch.
  std::optional<std::deque<T>> PopAll() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    std::deque<T> out;
    out.swap(items_);
    lock.unlock();
    not_full_.notify_all();
    return out;
  }

  /// \brief Non-blocking PopAll; empty deque when nothing is queued.
  std::deque<T> TryPopAll() {
    std::deque<T> out;
    {
      std::lock_guard<std::mutex> lock(mu_);
      out.swap(items_);
    }
    if (!out.empty()) not_full_.notify_all();
    return out;
  }

  /// \brief Dequeues without blocking; nullopt if currently empty.
  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// \brief Marks end-of-stream and wakes all waiters. Queued items
  /// remain poppable; further pushes fail. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace punctsafe

#endif  // PUNCTSAFE_EXEC_BOUNDED_QUEUE_H_
