#include "exec/exchange.h"

#include <cstddef>
#include <utility>
#include <vector>

#include "core/local_graph.h"
#include "exec/partition_router.h"

namespace punctsafe {

namespace {

// Number of query predicates with one endpoint stream in `a` and the
// other in `b` (both sorted leaf sets).
size_t Connectivity(const ContinuousJoinQuery& query,
                    const std::vector<size_t>& a,
                    const std::vector<size_t>& b) {
  auto contains = [](const std::vector<size_t>& v, size_t s) {
    for (size_t x : v) {
      if (x == s) return true;
    }
    return false;
  };
  size_t count = 0;
  for (const ResolvedPredicate& p : query.predicates()) {
    if ((contains(a, p.left_stream) && contains(b, p.right_stream)) ||
        (contains(b, p.left_stream) && contains(a, p.right_stream))) {
      ++count;
    }
  }
  return count;
}

bool NodeIsPartitionable(const ContinuousJoinQuery& query,
                         const std::vector<PlanShape>& children) {
  std::vector<LocalInput> inputs;
  inputs.reserve(children.size());
  for (const PlanShape& child : children) {
    LocalInput input;
    input.streams = child.Leaves();  // sorted, matching composite layout
    inputs.push_back(std::move(input));
  }
  return ComputePartitionSpec(query, inputs).partitionable;
}

}  // namespace

PlanShape DecomposeForExchange(const ContinuousJoinQuery& query,
                               const PlanShape& shape) {
  if (shape.IsLeaf()) return shape;

  std::vector<PlanShape> children;
  children.reserve(shape.children().size());
  for (const PlanShape& child : shape.children()) {
    children.push_back(DecomposeForExchange(query, child));
  }
  if (children.size() <= 2 || NodeIsPartitionable(query, children)) {
    return PlanShape::Join(std::move(children));
  }

  // Unshardable m-way node: left-deep binary chain, greedily ordered
  // so each appended child shares as many predicates as possible with
  // the accumulated cover. Seed with the child of highest total
  // connectivity (ties: lowest child index) so the chain starts on
  // the predicate graph's densest vertex.
  const size_t m = children.size();
  std::vector<std::vector<size_t>> leaves(m);
  for (size_t i = 0; i < m; ++i) leaves[i] = children[i].Leaves();

  std::vector<bool> used(m, false);
  size_t seed = 0;
  size_t seed_conn = 0;
  for (size_t i = 0; i < m; ++i) {
    size_t total = 0;
    for (size_t j = 0; j < m; ++j) {
      if (j != i) total += Connectivity(query, leaves[i], leaves[j]);
    }
    if (total > seed_conn) {
      seed = i;
      seed_conn = total;
    }
  }
  used[seed] = true;
  PlanShape acc = std::move(children[seed]);
  std::vector<size_t> acc_leaves = std::move(leaves[seed]);

  for (size_t step = 1; step < m; ++step) {
    size_t best = static_cast<size_t>(-1);
    size_t best_conn = 0;
    for (size_t i = 0; i < m; ++i) {
      if (used[i]) continue;
      const size_t conn = Connectivity(query, acc_leaves, leaves[i]);
      if (best == static_cast<size_t>(-1) || conn > best_conn) {
        best = i;
        best_conn = conn;
      }
    }
    used[best] = true;
    acc_leaves.insert(acc_leaves.end(), leaves[best].begin(),
                      leaves[best].end());
    std::vector<PlanShape> pair;
    pair.push_back(std::move(acc));
    pair.push_back(std::move(children[best]));
    acc = PlanShape::Join(std::move(pair));
  }
  return acc;
}

}  // namespace punctsafe
