// InputManager (paper Figure 2): accepts per-stream element sequences
// from the application environment, merges them into one
// timestamp-ordered feed and drives an executor.

#ifndef PUNCTSAFE_EXEC_INPUT_MANAGER_H_
#define PUNCTSAFE_EXEC_INPUT_MANAGER_H_

#include <string>
#include <vector>

#include "exec/plan_executor.h"
#include "stream/element.h"
#include "util/status.h"

namespace punctsafe {

class InputManager {
 public:
  /// \brief Stable merge of per-stream traces by timestamp (ties keep
  /// the input order, so a punctuation generated after a tuple at the
  /// same tick stays after it).
  static Trace Merge(const std::vector<Trace>& parts);

  /// \brief Buffers one element for `stream`.
  void Accept(const std::string& stream, StreamElement element);

  /// \brief Feeds everything buffered so far into the executor in
  /// timestamp order, then clears the buffer. Returns the number of
  /// events delivered.
  Result<size_t> DrainInto(PlanExecutor* executor);

  size_t buffered() const { return buffer_.size(); }

 private:
  Trace buffer_;
};

/// \brief Convenience: pushes a whole trace through an executor.
Status FeedTrace(PlanExecutor* executor, const Trace& trace);

}  // namespace punctsafe

#endif  // PUNCTSAFE_EXEC_INPUT_MANAGER_H_
