// The paper's second purge model (Section 2.4): instead of extending
// each join operator with purge logic (the operator-local model that
// MJoinOperator implements), a *separate purge engine* tracks the raw
// streams' states and punctuations and decides purgeability at the
// level of the whole query — so purgeability depends only on the
// query, never on the execution plan's shape.
//
// The practical consequence the paper points at: a plan that is
// unsafe under operator-local purging (Figure 7's binary tree, whose
// lower join cannot purge S1) can still run in bounded *source* state
// when the engine, knowing the whole query, releases tuples that no
// operator could release locally. The engine answers exactly the
// Theorem 1/3 question per stored tuple, via the same generalized
// chained purge machinery the MJoin uses — applied to the query-level
// graph instead of an operator-local one.

#ifndef PUNCTSAFE_EXEC_PURGE_ENGINE_H_
#define PUNCTSAFE_EXEC_PURGE_ENGINE_H_

#include <memory>
#include <optional>
#include <vector>

#include "core/local_graph.h"
#include "exec/batch_frontier.h"
#include "exec/punctuation_store.h"
#include "exec/tuple_store.h"
#include "obs/observability.h"
#include "query/cjq.h"
#include "stream/scheme.h"
#include "util/status.h"

namespace punctsafe {

struct PurgeEngineConfig {
  std::optional<int64_t> punctuation_lifespan;
  /// Joinable-set cap during removability checks (conservative abort).
  size_t max_joinable_set = 4096;
  /// Arena-backed tuple storage with epoch reclamation (see
  /// TupleStoreOptions::arena).
  bool arena = true;
};

class PurgeEngine {
 public:
  /// \brief Builds the engine for a query under a scheme set. Streams
  /// whose query-level state is unpurgeable (Theorem 3) are tracked
  /// but never released; StreamPurgeable reports which.
  static Result<std::unique_ptr<PurgeEngine>> Create(
      const ContinuousJoinQuery& query, const SchemeSet& schemes,
      PurgeEngineConfig config = {});

  /// \brief Records an arriving raw tuple; returns its slot id.
  size_t AddTuple(size_t stream, const Tuple& tuple, int64_t ts);

  /// \brief Records a whole batch of raw tuples on `stream`: one
  /// observation note per batch (watermark folded over the rows) and
  /// a bulk store insert. Equivalent to per-row AddTuple.
  void AddTupleBatch(size_t stream, TupleBatch& batch);

  /// \brief Records an arriving raw punctuation.
  void AddPunctuation(size_t stream, const Punctuation& punctuation,
                      int64_t ts);

  /// \brief Theorem 1/3 verdict per stream (static).
  bool StreamPurgeable(size_t stream) const {
    return stream_purgeable_[stream];
  }

  /// \brief Runs a purge pass: every stored tuple whose generalized
  /// chained purge condition holds is released. Returns the released
  /// (stream, slot) pairs so plan operators can evict mirrored state.
  std::vector<std::pair<size_t, size_t>> Sweep(int64_t now);

  /// \brief Whether a specific stored tuple is releasable right now
  /// (exposed for tests and for operators that pull).
  bool Removable(size_t stream, const Tuple& tuple, int64_t now) const;

  size_t TotalLiveTuples() const;
  size_t live_count(size_t stream) const {
    return states_[stream]->live_count();
  }

  /// \brief Attaches an observation point (nullable); forwarded to the
  /// per-stream tuple stores so their epoch advances trace too. The
  /// engine is single-threaded, so one OperatorObs covers all streams.
  void SetObserver(obs::OperatorObs* observer);

 private:
  PurgeEngine() = default;

  /// Extends each partial assignment of `in` through stream v's state
  /// into `out` (cleared first), batch-at-a-time over the columnar
  /// frontier: one probe-hash gather, SIMD run detection, one bucket
  /// resolution per same-key run (same shape as MJoinOperator::Expand,
  /// minus the prefiltered verification — chained-purge frontiers stay
  /// small, so exact per-pair checks win). `in` and `out` must be
  /// distinct buffers.
  void Expand(size_t v, const BatchFrontier& in, BatchFrontier* out) const;

  ContinuousJoinQuery query_;
  PurgeEngineConfig config_;
  std::vector<LocalGpgEdge> edges_;
  // Per edge: the target-side punctuatable attrs, extracted once at
  // Create (Removable used to rebuild this vector per edge per check).
  std::vector<std::vector<size_t>> edge_target_attrs_;
  std::vector<bool> stream_purgeable_;
  std::vector<std::unique_ptr<TupleStore>> states_;
  std::vector<std::unique_ptr<PunctuationStore>> punct_stores_;
  obs::OperatorObs* obs_ = nullptr;

  // Reused scratch for the chained-purge fixpoint (mutable: Removable
  // is const). The engine is single-threaded, like the operators.
  mutable BatchFrontier expand_bufs_[2];
  mutable std::vector<size_t> verify_scratch_;
  mutable std::vector<uint64_t> probe_hashes_;
  mutable std::vector<const Tuple*> run_cands_;
  mutable std::vector<Tuple> combos_scratch_;
  mutable std::vector<size_t> sweep_scratch_;
};

}  // namespace punctsafe

#endif  // PUNCTSAFE_EXEC_PURGE_ENGINE_H_
