// ParallelExecutor: the pipelined counterpart of PlanExecutor. Every
// MJoin operator of the plan tree runs on its own worker thread and
// owns its operator exclusively; edges are bounded MPSC queues of
// stream elements, so a fast producer blocks once the consumer's queue
// fills (backpressure) instead of buffering unboundedly — the
// engine-level analogue of the paper's bounded-state guarantee.
//
// Ordering model (docs/CONCURRENCY.md has the full argument):
//  * per-edge FIFO — elements from one producer (a raw stream or a
//    child operator's output) are consumed in production order, so a
//    punctuation never overtakes the tuples it covers and every edge
//    carries a contract-valid punctuated stream;
//  * best-effort timestamp merge — each worker drains its queue into
//    per-input reorder buffers and delivers buffered elements in
//    ascending timestamp order (ties: lowest input), which keeps
//    purges timely without risking cross-input deadlock;
//  * confluence — symmetric joins emit each matching combination
//    exactly once regardless of cross-input interleaving, and chained
//    purge removability is monotone in punctuation knowledge, so after
//    Drain() the result multiset and the final join state equal the
//    serial executor's (tests/parallel_differential_test.cc checks
//    this over randomized queries and traces).
//
// Thread contract: one external driver thread calls
// Push*/Drain/Stop. Metric accessors are safe from any thread at any
// time (relaxed atomics); they are exact once Drain() has returned
// and no further pushes have been issued.

#ifndef PUNCTSAFE_EXEC_PARALLEL_EXECUTOR_H_
#define PUNCTSAFE_EXEC_PARALLEL_EXECUTOR_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/plan_safety.h"
#include "exec/mjoin.h"
#include "exec/plan_executor.h"
#include "query/cjq.h"
#include "query/plan_shape.h"
#include "stream/element.h"
#include "stream/scheme.h"
#include "util/status.h"

namespace punctsafe {

class ParallelExecutor {
 public:
  /// \brief Builds the operator tree and starts one worker per
  /// operator. Mirrors PlanExecutor::Create (unsafe shapes build too).
  static Result<std::unique_ptr<ParallelExecutor>> Create(
      const ContinuousJoinQuery& query, const SchemeSet& schemes,
      const PlanShape& shape, ExecutorConfig config = {});

  ~ParallelExecutor();

  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  /// \brief Routes one trace event by stream name (blocks on a full
  /// leaf queue — backpressure to the source).
  Status Push(const TraceEvent& event);

  /// \brief Routes by query stream index.
  void PushTuple(size_t stream, const Tuple& tuple, int64_t ts);
  void PushPunctuation(size_t stream, const Punctuation& punctuation,
                       int64_t ts);

  /// \brief Barrier: waits until every queued element has been
  /// processed, then runs a purge sweep at `now` on each operator,
  /// leaves-first. On return the pipeline is quiescent and all
  /// accessors are exact. The parallel analogue of SweepAll.
  Status Drain(int64_t now);

  /// \brief Stops the workers (closing all queues; undelivered
  /// elements are dropped). Called by the destructor; use Drain first
  /// for a clean shutdown. Idempotent.
  void Stop();

  size_t TotalLiveTuples() const;
  size_t TotalLivePunctuations() const;
  /// \brief Sampled after every delivered element; a lower bound of
  /// the instantaneous global maximum (exact at quiescence).
  size_t tuple_high_water() const {
    return tuple_high_water_.load(std::memory_order_relaxed);
  }
  size_t punctuation_high_water() const {
    return punct_high_water_.load(std::memory_order_relaxed);
  }

  uint64_t num_results() const {
    return num_results_.load(std::memory_order_relaxed);
  }
  /// \brief Copy of the retained results (requires keep_results).
  std::vector<Tuple> kept_results() const;

  const PlanSafetyReport& safety() const { return safety_; }
  const ContinuousJoinQuery& query() const { return query_; }
  const PlanShape& shape() const { return shape_; }
  const std::vector<std::unique_ptr<MJoinOperator>>& operators() const {
    return operators_;
  }

 private:
  struct Worker;

  ParallelExecutor() = default;

  void WorkerLoop(size_t index);
  void Deliver(Worker& worker, size_t input, const StreamElement& element);
  void ProcessPending(Worker& worker);
  void SampleHighWater();

  ContinuousJoinQuery query_;
  PlanShape shape_;
  ExecutorConfig config_;
  PlanSafetyReport safety_;

  std::vector<std::unique_ptr<MJoinOperator>> operators_;  // post-order
  std::vector<std::unique_ptr<Worker>> workers_;           // parallel
  // Per query stream: (operator index, input index) consuming it.
  std::vector<std::pair<size_t, size_t>> leaf_route_;

  std::atomic<uint64_t> num_results_{0};
  mutable std::mutex results_mu_;
  std::vector<Tuple> kept_results_;
  std::atomic<size_t> tuple_high_water_{0};
  std::atomic<size_t> punct_high_water_{0};
  std::atomic<bool> stopped_{false};
};

/// \brief Convenience: pushes a whole trace, then drains at the last
/// timestamp (mirrors FeedTrace for the serial executor).
Status FeedTraceParallel(ParallelExecutor* executor, const Trace& trace);

}  // namespace punctsafe

#endif  // PUNCTSAFE_EXEC_PARALLEL_EXECUTOR_H_
