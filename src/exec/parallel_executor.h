// ParallelExecutor: the pipelined + partitioned counterpart of
// PlanExecutor. Every MJoin operator of the plan tree runs as a group
// of K single-threaded shard workers (K = ExecutorConfig::shards when
// the operator's predicates admit an exact partitioning, else 1; see
// exec/partition_router.h). Edges are bounded MPSC queues per shard,
// so a fast producer blocks once the consumer's queue fills
// (backpressure) instead of buffering unboundedly — the engine-level
// analogue of the paper's bounded-state guarantee.
//
// Routing model (docs/CONCURRENCY.md has the full argument):
//  * tuples hash on the operator's partition-key attribute to exactly
//    one shard; punctuations and drain markers are *broadcast* to all
//    shards (serialized per group so every shard sees the same
//    punctuation order), so chained purge fires shard-locally against
//    full punctuation stores and drains stay a quiescence barrier;
//  * per-edge FIFO — elements from one producer are consumed in
//    production order per shard, so a punctuation never overtakes the
//    tuples it covers on any shard's queue;
//  * output merge — shard result tuples are staged in per-parent-shard
//    TupleBatches and flushed as one queue message per batch once
//    ExecutorConfig::batch_size rows are staged (first-class batch
//    hand-off: one queue op moves the whole batch); a shard's output
//    punctuation first flushes that shard's staged tuples, then passes
//    a per-group PunctuationAligner and is forwarded only once every
//    shard of the group has emitted it (another shard may still hold
//    matching tuples), which preserves the propagation contract
//    downstream;
//  * best-effort timestamp merge — each shard worker drains its queue
//    into per-input reorder buffers and delivers buffered elements in
//    ascending timestamp order (ties: lowest input), which keeps
//    purges timely without risking cross-input deadlock;
//  * confluence — symmetric joins emit each matching combination
//    exactly once regardless of interleaving, partitioning puts every
//    joinable combination on one shard exactly once, and chained
//    purge removability is monotone in punctuation knowledge, so
//    after Drain() the result multiset and the final join state equal
//    the serial executor's at every shard count
//    (tests/parallel_differential_test.cc checks this over randomized
//    queries and traces; tests/partition_purge_test.cc pins the
//    broadcast-purge equivalence directly).
//
// Thread contract: one external driver thread calls
// Push*/Drain/Stop. Metric accessors are safe from any thread at any
// time (relaxed atomics); they are exact once Drain() has returned
// and no further pushes have been issued.

#ifndef PUNCTSAFE_EXEC_PARALLEL_EXECUTOR_H_
#define PUNCTSAFE_EXEC_PARALLEL_EXECUTOR_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/plan_safety.h"
#include "exec/metrics.h"
#include "exec/mjoin.h"
#include "exec/partition_router.h"
#include "exec/plan_executor.h"
#include "obs/observability.h"
#include "query/cjq.h"
#include "query/plan_shape.h"
#include "stream/element.h"
#include "stream/scheme.h"
#include "util/status.h"

namespace punctsafe {

/// \brief Marker kinds broadcast through the shard queues as barrier
/// messages. All of them use the same leaves-first handshake (the
/// drain protocol); they differ only in what the worker runs before
/// acking:
///  * kDrain      — purge sweep at the marker timestamp (Drain);
///  * kCheckpoint — nothing: pure quiescence, so the driver can
///    capture a consistent snapshot (Checkpoint);
///  * kRecheck    — re-evaluate pending punctuation propagations
///    (RestoreState phase 2: shards whose state is already clear
///    re-emit to the aligner, reconstructing votes a crash
///    discarded — docs/RECOVERY.md);
///  * kMigrate    — nothing: pure quiescence like kCheckpoint, but
///    broadcast by the rebalancer. With every worker parked, the
///    driver captures + merges the group's shard states, installs a
///    new ShardMap assignment, re-splits the merged state under it
///    into fresh operator replicas, then runs a kRecheck barrier so
///    aligner votes are rebuilt (docs/CONCURRENCY.md, "Rebalancing
///    and the migration marker").
enum class PipelineMarker : uint8_t {
  kNone = 0,
  kDrain = 1,
  kCheckpoint = 2,
  kRecheck = 3,
  kMigrate = 4,
};

struct OpMessage;

class ParallelExecutor {
 public:
  /// \brief Per logical operator: the shard layout plus per-shard and
  /// aggregated state accounting, so state-boundedness claims stay
  /// checkable operator-by-operator under partitioning.
  struct OperatorGroupSnapshot {
    size_t num_shards = 1;  ///< allocated shard workers
    bool partitioned = false;       ///< spec admitted > 1 shard
    std::string partition_detail;   ///< chosen key class / fallback reason
    /// Summed over the group's shards and inputs (high_water is the
    /// sum of per-shard marks — an upper bound of the joint peak).
    StateMetricsSnapshot aggregate;
    std::vector<size_t> shard_live;        ///< live tuples per shard
    std::vector<size_t> shard_high_water;  ///< per-shard state high water
    /// Max over shards (each shard stores the full broadcast set, so
    /// the max — not the sum — is the logical operator's count).
    size_t punctuations_live = 0;
    /// Shards the current ShardMap routes to (<= num_shards; the rest
    /// are allocated-but-idle elasticity headroom).
    size_t active_shards = 1;
    /// ShardMap::version() — how many migrations this group has seen.
    uint64_t shard_map_version = 0;
    /// Cumulative tuples routed / queue-stall events per shard worker
    /// (populated only while ExecutorConfig::rebalance.enabled tracks
    /// routing pressure; empty otherwise).
    std::vector<uint64_t> shard_routed;
    std::vector<uint64_t> shard_stalls;
    /// max/mean of shard_routed over the active shards (1.0 when
    /// untracked or unloaded) — the rebalance trigger signal.
    double skew = 1.0;
  };

  /// \brief Builds the operator tree and starts shards x operators
  /// workers. Mirrors PlanExecutor::Create (unsafe shapes build too).
  static Result<std::unique_ptr<ParallelExecutor>> Create(
      const ContinuousJoinQuery& query, const SchemeSet& schemes,
      const PlanShape& shape, ExecutorConfig config = {});

  ~ParallelExecutor();

  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  /// \brief Routes one trace event by stream name (blocks on a full
  /// leaf queue — backpressure to the source). With batch_size > 1,
  /// consecutive same-stream tuples are accumulated driver-side into a
  /// TupleBatch that is scattered into per-shard sub-batches in a
  /// single pass and enqueued as one message per shard; the open batch
  /// is flushed before any punctuation or barrier goes in.
  Status Push(const TraceEvent& event);

  /// \brief Routes by query stream index.
  void PushTuple(size_t stream, const Tuple& tuple, int64_t ts);
  void PushPunctuation(size_t stream, const Punctuation& punctuation,
                       int64_t ts);

  /// \brief Barrier: waits until every queued element has been
  /// processed, then runs a purge sweep at `now` on each shard,
  /// leaves-first (all shards of a group drain before its parent's
  /// markers go in). On return the pipeline is quiescent and all
  /// accessors are exact. The parallel analogue of SweepAll.
  Status Drain(int64_t now);

  /// \brief Stops the workers (closing all queues; undelivered
  /// elements are dropped). Called by the destructor; use Drain first
  /// for a clean shutdown. Idempotent.
  void Stop();

  /// \brief Punctuation-aligned consistent snapshot (exec/checkpoint.h):
  /// broadcasts a kCheckpoint barrier leaves-first (same handshake as
  /// Drain, but without sweeping — a checkpoint must observe state, not
  /// change it), then, with every worker provably quiescent, folds each
  /// group's shard captures into one logical OperatorStateSnapshot via
  /// MergeOperatorSnapshots. Driver thread only.
  Result<StateSnapshot> Checkpoint(int64_t now);

  /// \brief Rebuilds executor state from a snapshot. Must be called on
  /// a freshly created executor before anything is pushed. Tuples are
  /// re-routed to shards via each group's ShardMap over the partition
  /// key hash (the split inverse of the snapshot merge, and the same
  /// route live tuples take); punctuation stores and
  /// pending propagations are replicated to every shard (broadcast
  /// state). A kRecheck barrier then runs on the worker threads so
  /// already-clear shards re-emit pending punctuations to the aligner.
  /// Afterwards, resume by replaying each stream's suffix from
  /// `snapshot.progress[s].events_consumed`.
  Status RestoreState(const StateSnapshot& snapshot);

  /// \brief Forces one rebalance pass now (driver thread only): for
  /// every partitioned group, computes a fresh greedy-LPT ShardMap
  /// assignment from the routed-load counters accumulated since the
  /// last pass and — when it differs from the installed map — runs a
  /// punctuation-aligned migration (kMigrate barrier, capture + merge
  /// + re-split under the new map, kRecheck). Requires
  /// ExecutorConfig::rebalance.enabled (the load counters otherwise
  /// do not exist). A no-op pass (no group's assignment changed)
  /// returns OK without migrating.
  Status RebalanceNow(int64_t now);

  /// \brief Elastic resize (driver thread only): re-routes every
  /// partitioned group onto `active` shards (clamped to [1, allocated
  /// workers]) via the same migration protocol. Growing activates
  /// idle pre-allocated workers; shrinking drains their state into
  /// the survivors. Requires rebalance.enabled.
  Status ResizeShards(size_t active, int64_t now);

  /// \brief Completed punctuation-aligned migrations (group x pass).
  uint64_t rebalance_migrations() const {
    return rebalance_migrations_.load(std::memory_order_relaxed);
  }
  /// \brief Tuples whose owning shard changed across all migrations.
  uint64_t rebalance_tuples_moved() const {
    return rebalance_tuples_moved_.load(std::memory_order_relaxed);
  }

  /// \brief Per-stream consumption positions (driver thread only;
  /// exact counts of successful pushes, for checkpoint replay).
  const std::vector<InputProgress>& progress() const { return progress_; }

  size_t TotalLiveTuples() const;
  /// \brief Logical count: per operator group the max over shards
  /// (punctuations are broadcast, so every shard holds the full set).
  size_t TotalLivePunctuations() const;
  /// \brief Sampled after every delivered element; a lower bound of
  /// the instantaneous global maximum (exact at quiescence).
  size_t tuple_high_water() const {
    return tuple_high_water_.load(std::memory_order_relaxed);
  }
  size_t punctuation_high_water() const {
    return punct_high_water_.load(std::memory_order_relaxed);
  }

  uint64_t num_results() const {
    return num_results_.load(std::memory_order_relaxed);
  }
  /// \brief Copy of the retained results (requires keep_results).
  std::vector<Tuple> kept_results() const;

  /// \brief Moves out the results retained since the last take
  /// (requires keep_results; safe from any thread). The parallel
  /// counterpart of PlanExecutor::TakeResults — results that arrived
  /// by the take are returned exactly once; in-flight results land in
  /// a later take (exact after Drain).
  std::vector<Tuple> TakeResults();

  const PlanSafetyReport& safety() const { return safety_; }
  const ContinuousJoinQuery& query() const { return query_; }
  const PlanShape& shape() const { return shape_; }
  /// \brief All shard operator instances, grouped by logical operator
  /// in post-order (a group's shards are contiguous). With shards=1
  /// this is exactly the plan's operator list. Summing state metrics
  /// over it matches the serial executor (tuples partition across
  /// shards); punctuation-store sizes are replicated per shard — use
  /// GroupSnapshots()/TotalLivePunctuations for logical counts.
  const std::vector<std::unique_ptr<MJoinOperator>>& operators() const {
    return operators_;
  }
  /// \brief Number of logical operators (= plan internal nodes).
  size_t num_operator_groups() const { return groups_.size(); }
  /// \brief Per logical operator: shard layout + aggregated metrics.
  std::vector<OperatorGroupSnapshot> GroupSnapshots() const;

  /// \brief Full observability snapshot: one OperatorObsEntry per
  /// shard worker (latency/punct-lag/sweep/queue histograms, routing
  /// and stall counters, aligner gauges) plus executor-level totals.
  /// Empty operator list when observability is off. Safe from any
  /// thread (relaxed-atomic reads; exact at quiescence). Feed to
  /// obs::MetricsExporter via a lambda.
  obs::ObsSnapshot ObservabilitySnapshot() const;
  /// \brief The observability registry, or nullptr when off.
  obs::Observability* observability() const { return obs_.get(); }

 private:
  struct Worker;
  struct OpGroup;

  ParallelExecutor() = default;

  void WorkerLoop(size_t index);
  void Deliver(Worker& worker, const OpMessage& message);
  void ProcessPending(Worker& worker);
  void SampleHighWater();
  /// Child group `group_idx`, shard `shard` emitted `element`.
  void EmitFromShard(size_t group_idx, size_t shard,
                     const StreamElement& element);
  /// Batch-granular flavor of EmitFromShard (tuples only — operators
  /// never batch punctuations): the whole staged result batch is
  /// routed/staged in one call. Root results take one atomic add and
  /// one results_mu_ section for the batch; the rows are views over
  /// operator scratch, so everything kept is copied before return.
  void EmitBatchFromShard(size_t group_idx, size_t shard, TupleBatch& batch);
  /// Pushes the worker's staged result tuples into the parent group's
  /// shard queues (one batched PushAll per non-empty buffer). Runs on
  /// the worker's own thread; no-op when nothing is staged.
  void FlushEmits(Worker& worker);
  /// Tuple -> one shard by hash. Returns false iff stopped.
  bool RouteTuple(OpGroup& group, size_t input, const StreamElement& element);
  /// Punctuation/drain -> every shard, serialized per group so all
  /// shards observe the same punctuation order. False iff stopped.
  bool Broadcast(OpGroup& group, size_t input, const StreamElement& element);
  /// The shared leaves-first barrier handshake behind Drain /
  /// Checkpoint / restore-recheck (see PipelineMarker). Flushes the
  /// open ingest batch first.
  Status BarrierAll(PipelineMarker marker, int64_t now);
  void NoteProgress(size_t stream, int64_t ts);
  void MaybeAutoCheckpoint(int64_t ts);
  /// Rebalance controller tick (driver thread, punctuation path):
  /// every rebalance.interval_punctuations punctuations, check each
  /// partitioned group's routed-load skew since the last check and
  /// migrate the groups that exceed rebalance.skew_threshold (plus
  /// auto-grow on queue-stall pressure when configured).
  void MaybeRebalance(int64_t ts);
  /// One rebalance pass shared by MaybeRebalance / RebalanceNow /
  /// ResizeShards. `target_active` == 0 keeps each group's current
  /// active count; `force` migrates even below the skew threshold
  /// (explicit calls), otherwise the per-group trigger applies.
  Status RebalancePass(int64_t now, size_t target_active, bool force);
  /// Migrates one quiesced group onto (assignment, active): capture +
  /// merge all allocated shards, install the map, re-split into fresh
  /// operator replicas, reset the aligner. Caller holds the kMigrate
  /// barrier and runs the kRecheck barrier afterwards.
  Status MigrateGroup(size_t group_idx, std::vector<uint32_t> assignment,
                      size_t active);
  /// Splits `logical` across the group's shards under its current
  /// ShardMap and restores each piece into the group's (freshly
  /// created) shard operators. Shared by RestoreState and migration.
  Status RestoreGroupFromLogical(OpGroup& group,
                                 const OperatorStateSnapshot& logical);
  /// Tuple -> shard under the group's ShardMap, bumping the group's
  /// per-slot load counter when rebalance tracking is on.
  size_t RouteShard(OpGroup& group, size_t input, const Tuple& tuple);
  /// Worker-side routing-pressure accounting (routed count + racy
  /// full-queue stall heuristic); no-op unless rebalance tracking is
  /// on.
  void NotePressure(Worker& target, uint64_t routed);
  /// Retunes the driver ingest batch capacity from the probe-run
  /// statistics gathered since the last barrier. Barrier-side only
  /// (workers are parked, so reading their stores is race-free); the
  /// per-worker emit thresholds adapt on the worker threads instead.
  void MaybeAdaptIngest();
  /// Delivers the driver-side ingest batch: scatter into per-shard
  /// sub-batches (one pass), one queue message per non-empty shard.
  /// False iff stopped. No-op (true) when empty.
  bool FlushIngest();
  /// One scattered sub-batch -> one message on `shard`'s queue
  /// (batches of one ride as legacy per-tuple messages, so
  /// batch_size == 1 reproduces tuple-at-a-time execution exactly).
  bool PushIngestBatch(OpGroup& group, size_t shard, size_t input,
                       TupleBatch* batch);

  ContinuousJoinQuery query_;
  PlanShape shape_;
  ExecutorConfig config_;
  PlanSafetyReport safety_;

  // All shard instances, grouped by logical operator in post-order.
  std::vector<std::unique_ptr<MJoinOperator>> operators_;
  std::vector<std::unique_ptr<Worker>> workers_;  // parallel to operators_
  std::vector<std::unique_ptr<OpGroup>> groups_;  // logical, post-order
  // Per query stream: (group index, input index) consuming it.
  std::vector<std::pair<size_t, size_t>> leaf_route_;

  std::atomic<uint64_t> num_results_{0};
  mutable std::mutex results_mu_;
  std::vector<Tuple> kept_results_;
  std::atomic<size_t> tuple_high_water_{0};
  std::atomic<size_t> punct_high_water_{0};
  std::atomic<bool> stopped_{false};
  // Driver-thread-only bookkeeping (the thread contract makes Push*
  // single-threaded): per-stream positions and the auto-checkpoint
  // punctuation counter.
  std::vector<InputProgress> progress_;
  size_t punctuations_since_checkpoint_ = 0;
  size_t punctuations_since_rebalance_ = 0;
  // True when ExecutorConfig::rebalance.enabled: per-worker routed /
  // stall counters and per-slot load counters are maintained.
  bool track_pressure_ = false;
  std::atomic<uint64_t> rebalance_migrations_{0};
  std::atomic<uint64_t> rebalance_tuples_moved_{0};
  // Adaptive-batch state (ExecutorConfig::adaptive_batch): the probe
  // rows/runs totals consumed by the previous ingest retune.
  uint64_t adapt_rows_seen_ = 0;
  uint64_t adapt_runs_seen_ = 0;
  // Driver-side ingest batching (batch_size > 1 only): the open batch
  // of consecutive ingest_stream_ tuples, plus the recycled per-shard
  // scatter buffers FlushIngest fills (see partition_router.h,
  // ScatterBatch).
  TupleBatch ingest_batch_{1};
  size_t ingest_stream_ = 0;
  std::vector<TupleBatch> scatter_scratch_;
  // One OperatorObs per shard worker, indexed in step with workers_.
  // Null when observability is off.
  std::unique_ptr<obs::Observability> obs_;
};

/// \brief Convenience: pushes a whole trace, then drains at the last
/// timestamp (mirrors FeedTrace for the serial executor).
Status FeedTraceParallel(ParallelExecutor* executor, const Trace& trace);

}  // namespace punctsafe

#endif  // PUNCTSAFE_EXEC_PARALLEL_EXECUTOR_H_
