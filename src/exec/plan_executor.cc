#include "exec/plan_executor.h"

#include <algorithm>

#include "util/string_util.h"

namespace punctsafe {

namespace {

// Bottom-up construction result for one plan-shape node.
struct BuiltNode {
  LocalInput info;           // streams + schemes visible on this edge
  MJoinOperator* op = nullptr;  // nullptr for leaves
};

BuiltNode BuildNode(const ContinuousJoinQuery& query,
                    const SchemeSet& schemes, const PlanShape& shape,
                    const ExecutorConfig& config,
                    std::vector<std::unique_ptr<MJoinOperator>>* operators,
                    std::vector<std::pair<MJoinOperator*, size_t>>* routes,
                    Status* status) {
  if (!status->ok()) return {};
  if (shape.IsLeaf()) {
    BuiltNode node;
    node.info.streams = {shape.stream()};
    node.info.schemes = RawAvailableSchemes(query, schemes, shape.stream());
    return node;
  }

  std::vector<BuiltNode> children;
  children.reserve(shape.children().size());
  for (const PlanShape& child : shape.children()) {
    children.push_back(BuildNode(query, schemes, child, config, operators,
                                 routes, status));
    if (!status->ok()) return {};
  }

  std::vector<LocalInput> inputs;
  inputs.reserve(children.size());
  for (const BuiltNode& c : children) inputs.push_back(c.info);

  auto op_or = MJoinOperator::Create(query, inputs, config.mjoin);
  if (!op_or.ok()) {
    *status = op_or.status();
    return {};
  }
  operators->push_back(std::move(op_or).ValueOrDie());
  MJoinOperator* op = operators->back().get();

  // Wire children into this operator and record leaf routes.
  for (size_t k = 0; k < children.size(); ++k) {
    if (children[k].op != nullptr) {
      MJoinOperator* child_op = children[k].op;
      child_op->SetEmitter([op, k](const StreamElement& e) {
        if (e.is_tuple()) {
          op->PushTuple(k, e.tuple, e.timestamp);
        } else {
          op->PushPunctuation(k, e.punctuation, e.timestamp);
        }
      });
    } else {
      (*routes)[children[k].info.streams[0]] = {op, k};
    }
  }

  BuiltNode node;
  node.op = op;
  node.info.streams.clear();
  for (const BuiltNode& c : children) {
    node.info.streams.insert(node.info.streams.end(), c.info.streams.begin(),
                             c.info.streams.end());
  }
  std::sort(node.info.streams.begin(), node.info.streams.end());
  // Propagate schemes of purgeable inputs (matches plan_safety.cc and
  // the operator's own propagatable signatures).
  for (size_t k = 0; k < children.size(); ++k) {
    if (op->InputPurgeable(k)) {
      node.info.schemes.insert(node.info.schemes.end(),
                               children[k].info.schemes.begin(),
                               children[k].info.schemes.end());
    }
  }
  return node;
}

}  // namespace

Result<std::unique_ptr<PlanExecutor>> PlanExecutor::Create(
    const ContinuousJoinQuery& query, const SchemeSet& schemes,
    const PlanShape& shape, ExecutorConfig config) {
  PUNCTSAFE_ASSIGN_OR_RETURN(PlanSafetyReport safety,
                             CheckPlanSafety(query, schemes, shape));

  auto exec = std::unique_ptr<PlanExecutor>(new PlanExecutor());
  exec->query_ = query;
  exec->shape_ = shape;
  exec->config_ = config;
  exec->safety_ = std::move(safety);
  exec->leaf_route_.assign(query.num_streams(), {nullptr, 0});

  Status status = Status::OK();
  BuiltNode root =
      BuildNode(exec->query_, schemes, shape, config, &exec->operators_,
                &exec->leaf_route_, &status);
  PUNCTSAFE_RETURN_IF_ERROR(status);

  PlanExecutor* raw = exec.get();
  root.op->SetEmitter([raw](const StreamElement& e) {
    if (!e.is_tuple()) return;  // root punctuations reach the consumer app
    ++raw->num_results_;
    if (raw->config_.keep_results) raw->kept_results_.push_back(e.tuple);
  });
  return exec;
}

Status PlanExecutor::Push(const TraceEvent& event) {
  auto idx = query_.StreamIndex(event.stream);
  if (!idx.has_value()) {
    return Status::NotFound(
        StrCat("stream '", event.stream, "' not part of ", query_.ToString()));
  }
  if (event.element.is_tuple()) {
    PushTuple(*idx, event.element.tuple, event.element.timestamp);
  } else {
    PushPunctuation(*idx, event.element.punctuation,
                    event.element.timestamp);
  }
  return Status::OK();
}

void PlanExecutor::PushTuple(size_t stream, const Tuple& tuple, int64_t ts) {
  auto [op, input] = leaf_route_[stream];
  op->PushTuple(input, tuple, ts);
  RecordHighWater();
}

void PlanExecutor::PushPunctuation(size_t stream,
                                   const Punctuation& punctuation,
                                   int64_t ts) {
  auto [op, input] = leaf_route_[stream];
  op->PushPunctuation(input, punctuation, ts);
  RecordHighWater();
}

void PlanExecutor::SweepAll(int64_t now) {
  for (auto& op : operators_) op->Sweep(now);
  RecordHighWater();
}

size_t PlanExecutor::TotalLiveTuples() const {
  size_t total = 0;
  for (const auto& op : operators_) total += op->TotalLiveTuples();
  return total;
}

size_t PlanExecutor::TotalLivePunctuations() const {
  size_t total = 0;
  for (const auto& op : operators_) total += op->TotalLivePunctuations();
  return total;
}

void PlanExecutor::RecordHighWater() {
  tuple_high_water_ = std::max(tuple_high_water_, TotalLiveTuples());
  punct_high_water_ = std::max(punct_high_water_, TotalLivePunctuations());
}

}  // namespace punctsafe
