#include "exec/plan_executor.h"

#include <algorithm>

#include "exec/operator_tree.h"
#include "exec/simd.h"
#include "util/string_util.h"

namespace punctsafe {

std::string PlanFingerprint(const ContinuousJoinQuery& query,
                            const PlanShape& shape) {
  return StrCat(query.ToString(), " | ", shape.ToString(query));
}

size_t AdaptiveBatchTarget(uint64_t rows, uint64_t runs, size_t current) {
  if (runs == 0) return current;
  // Scale the mean same-key run length into the winning band: a mean
  // run of 1 (all-distinct keys) earns the floor, runs of 4+ the
  // ceiling. Integer math — the signal is coarse on purpose.
  const uint64_t target = (rows / runs) * 128;
  return static_cast<size_t>(std::clamp<uint64_t>(target, 128, 512));
}

Result<std::unique_ptr<PlanExecutor>> PlanExecutor::Create(
    const ContinuousJoinQuery& query, const SchemeSet& schemes,
    const PlanShape& shape, ExecutorConfig config) {
  PUNCTSAFE_ASSIGN_OR_RETURN(PlanSafetyReport safety,
                             CheckPlanSafety(query, schemes, shape));
  config.mjoin.arena = config.arena;

  auto exec = std::unique_ptr<PlanExecutor>(new PlanExecutor());
  exec->query_ = query;
  exec->shape_ = shape;
  if (config.batch_size == 0) config.batch_size = 1;
  // Adaptive batching needs batched execution to act on: a fixed
  // tuple-at-a-time config starts from the default batch capacity.
  if (config.adaptive_batch && config.batch_size < 2) {
    config.batch_size = TupleBatch::kDefaultCapacity;
  }
  exec->config_ = config;
  exec->safety_ = std::move(safety);
  exec->pending_batch_ = TupleBatch(config.batch_size);

  PUNCTSAFE_ASSIGN_OR_RETURN(
      OperatorTree tree,
      BuildOperatorTree(exec->query_, schemes, shape, config.mjoin));

  // Serial wiring: child outputs call straight into the parent input.
  // Batched executors also wire the batch-granular channel, so a
  // child's staged result batch becomes one parent PushBatch (the
  // parent's InsertBatch copies what it stores — the views die with
  // the call, per the EmitBatch contract). batch_size == 1 leaves the
  // channel unset: EmitBatch then falls back per element and the
  // wiring is bit-identical to tuple-at-a-time.
  for (size_t j = 0; j < tree.operators.size(); ++j) {
    const OperatorTree::ParentEdge& edge = tree.parents[j];
    if (edge.parent_op == OperatorTree::ParentEdge::kNoParent) continue;
    MJoinOperator* parent = tree.operators[edge.parent_op].get();
    size_t k = edge.parent_input;
    tree.operators[j]->SetEmitter([parent, k](const StreamElement& e) {
      if (e.is_tuple()) {
        parent->PushTuple(k, e.tuple, e.timestamp);
      } else {
        parent->PushPunctuation(k, e.punctuation, e.timestamp);
      }
    });
    if (config.batch_size > 1) {
      tree.operators[j]->SetBatchEmitter(
          [parent, k](TupleBatch& b) { parent->PushBatch(k, b); });
    }
  }

  exec->progress_.resize(query.num_streams());
  exec->leaf_route_.assign(query.num_streams(), {nullptr, 0});
  for (size_t s = 0; s < query.num_streams(); ++s) {
    auto [op_index, input] = tree.leaf_route[s];
    if (op_index != OperatorTree::ParentEdge::kNoParent) {
      exec->leaf_route_[s] = {tree.operators[op_index].get(), input};
    }
  }

  PlanExecutor* raw = exec.get();
  tree.root()->SetEmitter([raw](const StreamElement& e) {
    if (!e.is_tuple()) return;  // root punctuations reach the consumer app
    ++raw->num_results_;
    if (raw->config_.keep_results) raw->kept_results_.push_back(e.tuple);
  });
  if (config.batch_size > 1) {
    tree.root()->SetBatchEmitter([raw](TupleBatch& b) {
      raw->num_results_ += b.size();
      if (raw->config_.keep_results) {
        // The rows are views over operator scratch; the push_back copy
        // re-owns them (same as the per-element path's e.tuple copy).
        for (size_t i = 0; i < b.size(); ++i) {
          raw->kept_results_.push_back(b.tuple(i));
        }
      }
    });
  }
  exec->operators_ = std::move(tree.operators);

  if (obs::kCompiled && config.observe.enabled) {
    exec->obs_ = std::make_unique<obs::Observability>(config.observe);
    for (size_t j = 0; j < exec->operators_.size(); ++j) {
      exec->operators_[j]->SetObserver(
          exec->obs_->AddOperator(static_cast<uint16_t>(j), 0));
    }
  }
  return exec;
}

Status PlanExecutor::Push(const TraceEvent& event) {
  auto idx = query_.StreamIndex(event.stream);
  if (!idx.has_value()) {
    return Status::NotFound(
        StrCat("stream '", event.stream, "' not part of ", query_.ToString()));
  }
  if (event.element.is_tuple()) {
    PushTuple(*idx, event.element.tuple, event.element.timestamp);
  } else {
    PushPunctuation(*idx, event.element.punctuation,
                    event.element.timestamp);
  }
  return Status::OK();
}

void PlanExecutor::PushTuple(size_t stream, const Tuple& tuple, int64_t ts) {
  NoteProgress(stream, ts);
  if (config_.batch_size > 1) {
    // Batched ingestion: accumulate consecutive same-stream tuples
    // and deliver them as one PushBatch. A stream change flushes —
    // batches never mix inputs — so per-stream runs in the trace
    // become whole batches.
    if (!pending_batch_.empty() && pending_stream_ != stream) FlushIngest();
    pending_stream_ = stream;
    pending_batch_.Append(tuple, ts);
    if (pending_batch_.full()) FlushIngest();
    return;
  }
  auto [op, input] = leaf_route_[stream];
  // Under serial execution the push runs the whole synchronous
  // cascade (probes, result emission, parent pushes), so the latency
  // recorded at the leaf covers arrival -> last emit.
  if (obs::kCompiled && op->observer() != nullptr) {
    const uint64_t results_before =
        op->metrics().results_emitted.load(std::memory_order_relaxed);
    const int64_t start = obs::NowNs();
    op->PushTuple(input, tuple, ts);
    const int64_t end = obs::NowNs();
    op->observer()->RecordLatencyNs(end - start);
    op->observer()->NoteAt(
        end, obs::TraceKind::kTupleIn, input,
        op->metrics().results_emitted.load(std::memory_order_relaxed) -
            results_before);
  } else {
    op->PushTuple(input, tuple, ts);
  }
  RecordHighWater();
}

void PlanExecutor::FlushIngest() {
  if (pending_batch_.empty()) return;
  auto [op, input] = leaf_route_[pending_stream_];
  const int64_t n = static_cast<int64_t>(pending_batch_.size());
  // Per-batch observation sampling: two clock reads for the whole
  // batch, a mean per-tuple latency sample, and one kTupleIn ring
  // event carrying the batch's result count.
  if (obs::kCompiled && op->observer() != nullptr) {
    const uint64_t results_before =
        op->metrics().results_emitted.load(std::memory_order_relaxed);
    const int64_t start = obs::NowNs();
    op->PushBatch(input, pending_batch_);
    const int64_t end = obs::NowNs();
    op->observer()->RecordLatencyNs((end - start) / n);
    op->observer()->NoteAt(
        end, obs::TraceKind::kTupleIn, input,
        op->metrics().results_emitted.load(std::memory_order_relaxed) -
            results_before);
  } else {
    op->PushBatch(input, pending_batch_);
  }
  pending_batch_.Clear();
  RecordHighWater();
}

void PlanExecutor::PushPunctuation(size_t stream,
                                   const Punctuation& punctuation,
                                   int64_t ts) {
  // Batch-boundary ordering: results from buffered tuples must be
  // emitted before the punctuation is forwarded.
  FlushIngest();
  NoteProgress(stream, ts);
  auto [op, input] = leaf_route_[stream];
  op->PushPunctuation(input, punctuation, ts);
  RecordHighWater();
  MaybeAutoCheckpoint();
  MaybeAdaptBatch();
}

void PlanExecutor::MaybeAdaptBatch() {
  if (!config_.adaptive_batch) return;
  if (++punctuations_since_adapt_ < kAdaptIntervalPunctuations) return;
  punctuations_since_adapt_ = 0;
  uint64_t rows = 0;
  uint64_t runs = 0;
  for (const auto& op : operators_) {
    const TupleStore::ProbeRunStats total = op->ProbeRunStatsTotal();
    rows += total.rows;
    runs += total.runs;
  }
  const uint64_t d_rows = rows - adapt_rows_seen_;
  const uint64_t d_runs = runs - adapt_runs_seen_;
  adapt_rows_seen_ = rows;
  adapt_runs_seen_ = runs;
  const size_t target =
      AdaptiveBatchTarget(d_rows, d_runs, pending_batch_.capacity());
  // The punctuation path flushed the open batch, so swapping storage
  // is safe; a no-op target keeps the recycled storage warm.
  if (target != pending_batch_.capacity() && pending_batch_.empty()) {
    pending_batch_ = TupleBatch(target);
  }
}

void PlanExecutor::NoteProgress(size_t stream, int64_t ts) {
  InputProgress& p = progress_[stream];
  ++p.events_consumed;
  p.watermark_ts = std::max(p.watermark_ts, ts);
}

void PlanExecutor::MaybeAutoCheckpoint() {
  if (config_.checkpoint.interval_punctuations == 0) return;
  if (++punctuations_since_checkpoint_ <
      config_.checkpoint.interval_punctuations) {
    return;
  }
  punctuations_since_checkpoint_ = 0;
  if (config_.checkpoint.path.empty()) return;
  Status status = WriteSnapshotFile(Checkpoint(), config_.checkpoint.path);
  if (!status.ok()) {
    PUNCTSAFE_LOG(Warning) << "automatic checkpoint to '"
                           << config_.checkpoint.path
                           << "' failed: " << status.ToString();
  }
}

StateSnapshot PlanExecutor::Checkpoint() const {
  PUNCTSAFE_CHECK(pending_batch_.empty())
      << "snapshots are taken at batch boundaries: call FlushIngest() "
         "before Checkpoint()";
  StateSnapshot snap;
  snap.fingerprint = PlanFingerprint(query_, shape_);
  snap.progress = progress_;
  snap.num_results = num_results_;
  snap.results = kept_results_;
  snap.tuple_high_water = tuple_high_water_;
  snap.punct_high_water = punct_high_water_;
  snap.operators.reserve(operators_.size());
  for (const auto& op : operators_) {
    snap.operators.push_back(op->CaptureState());
  }
  CanonicalizeSnapshot(&snap);
  return snap;
}

Status PlanExecutor::RestoreState(const StateSnapshot& snapshot) {
  if (snapshot.fingerprint != PlanFingerprint(query_, shape_)) {
    return Status::InvalidArgument(
        StrCat("snapshot fingerprint '", snapshot.fingerprint,
               "' does not match this plan '",
               PlanFingerprint(query_, shape_), "'"));
  }
  if (snapshot.operators.size() != operators_.size()) {
    return Status::InvalidArgument(
        StrCat("snapshot has ", snapshot.operators.size(),
               " operators but the plan has ", operators_.size()));
  }
  for (size_t j = 0; j < operators_.size(); ++j) {
    PUNCTSAFE_RETURN_IF_ERROR(
        operators_[j]->RestoreState(snapshot.operators[j]));
  }
  progress_ = snapshot.progress;
  progress_.resize(query_.num_streams());
  num_results_ = snapshot.num_results;
  kept_results_ = snapshot.results;
  tuple_high_water_ = snapshot.tuple_high_water;
  punct_high_water_ = snapshot.punct_high_water;
  // Pending propagations were captured as "blocked at snapshot time";
  // under serial execution the recheck is a no-op safety pass, but it
  // keeps the restore contract identical to the sharded path (where it
  // reconstructs discarded aligner votes — see docs/RECOVERY.md).
  int64_t now = 0;
  for (const InputProgress& p : progress_) {
    now = std::max(now, p.watermark_ts);
  }
  for (auto& op : operators_) op->RecheckPropagations(now);
  return Status::OK();
}

void PlanExecutor::SweepAll(int64_t now) {
  FlushIngest();
  for (auto& op : operators_) op->Sweep(now);
  RecordHighWater();
}

size_t PlanExecutor::TotalLiveTuples() const {
  size_t total = 0;
  for (const auto& op : operators_) total += op->TotalLiveTuples();
  return total;
}

size_t PlanExecutor::TotalLivePunctuations() const {
  size_t total = 0;
  for (const auto& op : operators_) total += op->TotalLivePunctuations();
  return total;
}

void PlanExecutor::RecordHighWater() {
  tuple_high_water_ = std::max(tuple_high_water_, TotalLiveTuples());
  punct_high_water_ = std::max(punct_high_water_, TotalLivePunctuations());
}

obs::ObsSnapshot PlanExecutor::ObservabilitySnapshot() const {
  obs::ObsSnapshot snap;
  snap.executor = "serial";
  snap.simd_dispatch = simd::kDispatchName;
  snap.batch_size = config_.batch_size;
  snap.results = num_results_;
  snap.live_tuples = TotalLiveTuples();
  snap.live_punctuations = TotalLivePunctuations();
  snap.tuple_high_water = tuple_high_water_;
  snap.punctuation_high_water = punct_high_water_;
  if (obs_ == nullptr) return snap;
  snap.operators.reserve(operators_.size());
  for (size_t j = 0; j < operators_.size(); ++j) {
    obs::OperatorObsEntry entry;
    entry.CaptureFrom(obs_->at(j));
    entry.state = operators_[j]->AggregateStateSnapshot();
    entry.op_metrics = operators_[j]->metrics().Snapshot();
    snap.operators.push_back(std::move(entry));
  }
  return snap;
}

}  // namespace punctsafe
