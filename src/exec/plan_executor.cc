#include "exec/plan_executor.h"

#include <algorithm>

#include "exec/operator_tree.h"
#include "util/string_util.h"

namespace punctsafe {

Result<std::unique_ptr<PlanExecutor>> PlanExecutor::Create(
    const ContinuousJoinQuery& query, const SchemeSet& schemes,
    const PlanShape& shape, ExecutorConfig config) {
  PUNCTSAFE_ASSIGN_OR_RETURN(PlanSafetyReport safety,
                             CheckPlanSafety(query, schemes, shape));
  config.mjoin.arena = config.arena;

  auto exec = std::unique_ptr<PlanExecutor>(new PlanExecutor());
  exec->query_ = query;
  exec->shape_ = shape;
  exec->config_ = config;
  exec->safety_ = std::move(safety);

  PUNCTSAFE_ASSIGN_OR_RETURN(
      OperatorTree tree,
      BuildOperatorTree(exec->query_, schemes, shape, config.mjoin));

  // Serial wiring: child outputs call straight into the parent input.
  for (size_t j = 0; j < tree.operators.size(); ++j) {
    const OperatorTree::ParentEdge& edge = tree.parents[j];
    if (edge.parent_op == OperatorTree::ParentEdge::kNoParent) continue;
    MJoinOperator* parent = tree.operators[edge.parent_op].get();
    size_t k = edge.parent_input;
    tree.operators[j]->SetEmitter([parent, k](const StreamElement& e) {
      if (e.is_tuple()) {
        parent->PushTuple(k, e.tuple, e.timestamp);
      } else {
        parent->PushPunctuation(k, e.punctuation, e.timestamp);
      }
    });
  }

  exec->leaf_route_.assign(query.num_streams(), {nullptr, 0});
  for (size_t s = 0; s < query.num_streams(); ++s) {
    auto [op_index, input] = tree.leaf_route[s];
    if (op_index != OperatorTree::ParentEdge::kNoParent) {
      exec->leaf_route_[s] = {tree.operators[op_index].get(), input};
    }
  }

  PlanExecutor* raw = exec.get();
  tree.root()->SetEmitter([raw](const StreamElement& e) {
    if (!e.is_tuple()) return;  // root punctuations reach the consumer app
    ++raw->num_results_;
    if (raw->config_.keep_results) raw->kept_results_.push_back(e.tuple);
  });
  exec->operators_ = std::move(tree.operators);

  if (obs::kCompiled && config.observe.enabled) {
    exec->obs_ = std::make_unique<obs::Observability>(config.observe);
    for (size_t j = 0; j < exec->operators_.size(); ++j) {
      exec->operators_[j]->SetObserver(
          exec->obs_->AddOperator(static_cast<uint16_t>(j), 0));
    }
  }
  return exec;
}

Status PlanExecutor::Push(const TraceEvent& event) {
  auto idx = query_.StreamIndex(event.stream);
  if (!idx.has_value()) {
    return Status::NotFound(
        StrCat("stream '", event.stream, "' not part of ", query_.ToString()));
  }
  if (event.element.is_tuple()) {
    PushTuple(*idx, event.element.tuple, event.element.timestamp);
  } else {
    PushPunctuation(*idx, event.element.punctuation,
                    event.element.timestamp);
  }
  return Status::OK();
}

void PlanExecutor::PushTuple(size_t stream, const Tuple& tuple, int64_t ts) {
  auto [op, input] = leaf_route_[stream];
  // Under serial execution the push runs the whole synchronous
  // cascade (probes, result emission, parent pushes), so the latency
  // recorded at the leaf covers arrival -> last emit.
  if (obs::kCompiled && op->observer() != nullptr) {
    const uint64_t results_before =
        op->metrics().results_emitted.load(std::memory_order_relaxed);
    const int64_t start = obs::NowNs();
    op->PushTuple(input, tuple, ts);
    const int64_t end = obs::NowNs();
    op->observer()->RecordLatencyNs(end - start);
    op->observer()->NoteAt(
        end, obs::TraceKind::kTupleIn, input,
        op->metrics().results_emitted.load(std::memory_order_relaxed) -
            results_before);
  } else {
    op->PushTuple(input, tuple, ts);
  }
  RecordHighWater();
}

void PlanExecutor::PushPunctuation(size_t stream,
                                   const Punctuation& punctuation,
                                   int64_t ts) {
  auto [op, input] = leaf_route_[stream];
  op->PushPunctuation(input, punctuation, ts);
  RecordHighWater();
}

void PlanExecutor::SweepAll(int64_t now) {
  for (auto& op : operators_) op->Sweep(now);
  RecordHighWater();
}

size_t PlanExecutor::TotalLiveTuples() const {
  size_t total = 0;
  for (const auto& op : operators_) total += op->TotalLiveTuples();
  return total;
}

size_t PlanExecutor::TotalLivePunctuations() const {
  size_t total = 0;
  for (const auto& op : operators_) total += op->TotalLivePunctuations();
  return total;
}

void PlanExecutor::RecordHighWater() {
  tuple_high_water_ = std::max(tuple_high_water_, TotalLiveTuples());
  punct_high_water_ = std::max(punct_high_water_, TotalLivePunctuations());
}

obs::ObsSnapshot PlanExecutor::ObservabilitySnapshot() const {
  obs::ObsSnapshot snap;
  snap.executor = "serial";
  snap.results = num_results_;
  snap.live_tuples = TotalLiveTuples();
  snap.live_punctuations = TotalLivePunctuations();
  snap.tuple_high_water = tuple_high_water_;
  snap.punctuation_high_water = punct_high_water_;
  if (obs_ == nullptr) return snap;
  snap.operators.reserve(operators_.size());
  for (size_t j = 0; j < operators_.size(); ++j) {
    obs::OperatorObsEntry entry;
    entry.CaptureFrom(obs_->at(j));
    entry.state = operators_[j]->AggregateStateSnapshot();
    entry.op_metrics = operators_[j]->metrics().Snapshot();
    snap.operators.push_back(std::move(entry));
  }
  return snap;
}

}  // namespace punctsafe
