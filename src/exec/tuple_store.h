// The join state Υ of one operator input: a tuple store with
// hash indexes on the attributes used for probing and purging.
//
// Storage is a slot vector with tombstoned removal; per-attribute
// indexes map values to slots and are filtered/rebuilt lazily, the
// standard symmetric-hash-join bookkeeping [Wilschut & Apers 1991].

#ifndef PUNCTSAFE_EXEC_TUPLE_STORE_H_
#define PUNCTSAFE_EXEC_TUPLE_STORE_H_

#include <cstddef>
#include <functional>
#include <unordered_map>
#include <vector>

#include "exec/metrics.h"
#include "stream/tuple.h"

namespace punctsafe {

class TupleStore {
 public:
  /// \param indexed_offsets attribute positions to maintain hash
  ///        indexes on (the input's join attributes).
  explicit TupleStore(std::vector<size_t> indexed_offsets);

  /// \brief Stores a tuple; returns its slot id.
  size_t Insert(Tuple tuple);

  /// \brief Tombstones a slot (idempotent).
  void Remove(size_t slot);

  bool IsLive(size_t slot) const {
    return slot < live_.size() && live_[slot];
  }
  const Tuple& At(size_t slot) const { return tuples_[slot]; }

  size_t live_count() const { return live_count_; }
  const StateMetrics& metrics() const { return metrics_; }

  /// \brief Counts an arriving tuple that was never stored because its
  /// removability already held ("purging future tuples", Sec 5.1).
  void CountDroppedArrival() { ++metrics_.dropped_on_arrival; }

  /// \brief Calls fn(slot, tuple) for every live tuple. The callback
  /// must not mutate the store.
  void ForEachLive(const std::function<void(size_t, const Tuple&)>& fn) const;

  /// \brief True iff some live tuple satisfies the predicate (early
  /// exit on the first hit).
  bool AnyLive(const std::function<bool(const Tuple&)>& pred) const;

  /// \brief Whether a hash index exists on the given offset.
  bool HasIndexOn(size_t offset) const;

  /// \brief Live slots whose `offset` attribute equals `value`, via
  /// the hash index. `offset` must be one of the indexed offsets.
  std::vector<size_t> Probe(size_t offset, const Value& value) const;

  /// \brief Marks `slots` purged and updates metrics.
  void PurgeSlots(const std::vector<size_t>& slots);

 private:
  void MaybeCompactIndexes();

  std::vector<size_t> indexed_offsets_;
  std::vector<Tuple> tuples_;
  std::vector<bool> live_;
  // Dense list of live slots (swap-remove maintained) so iteration
  // costs O(live), not O(ever inserted).
  std::vector<size_t> live_slots_;
  std::vector<size_t> pos_in_live_;
  size_t live_count_ = 0;
  size_t dead_count_ = 0;
  // One index per indexed offset: value -> slots (may contain dead
  // slots until compaction).
  std::vector<std::unordered_map<Value, std::vector<size_t>, ValueHash>>
      indexes_;
  StateMetrics metrics_;
};

}  // namespace punctsafe

#endif  // PUNCTSAFE_EXEC_TUPLE_STORE_H_
