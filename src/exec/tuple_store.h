// The join state Υ of one operator input: a tuple store with
// hash indexes on the attributes used for probing and purging.
//
// Storage is a slot vector with tombstoned removal; per-attribute
// indexes map values to slots and are filtered/rebuilt lazily, the
// standard symmetric-hash-join bookkeeping [Wilschut & Apers 1991].
//
// Hot-path layout (docs/PERF.md):
//  * tuple payloads live in a per-store **epoch arena** (exec/arena.h,
//    on by default): Insert lays out the value array plus any long
//    string bytes as ONE bump allocation, and purge sweeps release
//    whole blocks at epoch boundaries instead of freeing tuples one by
//    one. `TupleStoreOptions::arena = false` falls back to per-tuple
//    heap ownership (the differential harness sweeps both);
//  * indexes are FlatKeyIndex (exec/flat_index.h): open-addressing
//    tables probed 16 tags per SIMD step, keyed by Value under the
//    *cached* hash (stream/value.h) — inserting or probing a string
//    key never re-walks its bytes, a lookup does exactly one key
//    equality, and bucket members need no per-slot equality re-check
//    (each bucket is exact for its key, modulo tombstones); buckets
//    are SmallVector<size_t, 4>, inline in the entry for the common
//    few-slot case;
//  * `offset_to_index_` maps attribute offset -> index position in
//    O(1), replacing the old linear scan of `indexed_offsets_`;
//  * ProbeEach / AnyMatch / ProbeInto are the allocation-free probe
//    cursors the operators use; FindBucket/ForBucketLive split the
//    cursor so batch-aware expansion can reuse one bucket lookup
//    across a run of same-key rows; ProbeBatch is the vectorized
//    flavor — it walks a TupleBatch's contiguous hash column with
//    SIMD run detection and resolves one bucket per same-key run.
//
// Lifetime contract: `const Tuple&`/`const Value&` references obtained
// from At() or probes stay valid until the *next* AdvanceEpoch() —
// removal only tombstones; payload release (and arena block reuse) is
// deferred to the epoch boundary, which operators place at the end of
// a purge sweep. References must not be held across AdvanceEpoch.
//
// Not thread-safe: each store is owned by exactly one operator (one
// shard worker under the parallel executor). Probes are logically
// const but may lazily compact the indexes, so even const methods must
// not run concurrently with anything else on the same store.

#ifndef PUNCTSAFE_EXEC_TUPLE_STORE_H_
#define PUNCTSAFE_EXEC_TUPLE_STORE_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "exec/arena.h"
#include "exec/flat_index.h"
#include "exec/metrics.h"
#include "exec/simd.h"
#include "exec/tuple_batch.h"
#include "obs/observability.h"
#include "stream/tuple.h"
#include "util/logging.h"
#include "util/small_vector.h"

namespace punctsafe {

struct TupleStoreOptions {
  /// Arena-backed tuple storage with epoch reclamation (default).
  /// Off: every stored tuple owns its values individually on the heap.
  bool arena = true;
  size_t arena_block_bytes = EpochArena::kDefaultBlockBytes;
};

class TupleStore {
 public:
  /// Index compaction fires once at least kCompactMinDead tombstones
  /// accumulated AND dead slots outnumber live ones by
  /// kCompactDeadFactor (the remove path), or once a single probe
  /// filtered out kCompactMinDead+ dead slots and more dead than live
  /// (the probe path — a store that is only ever probed must not keep
  /// paying for tombstones it never removes).
  static constexpr size_t kCompactMinDead = 64;
  static constexpr size_t kCompactDeadFactor = 2;

  /// Inline bucket capacity: most buckets hold a handful of slots, so
  /// they fit inside the index entry with no heap spill.
  using Bucket = FlatKeyIndex::Bucket;

  /// \param indexed_offsets attribute positions to maintain hash
  ///        indexes on (the input's join attributes).
  explicit TupleStore(std::vector<size_t> indexed_offsets,
                      TupleStoreOptions options = {});

  /// \brief Stores a copy of the tuple (arena-laid-out when the arena
  /// is on); returns its slot id.
  size_t Insert(const Tuple& tuple);

  /// \brief Stores every *selected* row of the batch. Single-index
  /// stores (the common operator shape) resolve one index bucket per
  /// same-key run across the batch — the insert-side twin of
  /// ProbeBatch's run amortization — and the slot bookkeeping grows
  /// once per batch instead of amortized-doubling inside the row
  /// loop. Returns the number of rows inserted.
  size_t InsertBatch(const TupleBatch& batch);

  /// \brief Tombstones a slot (idempotent). The payload stays
  /// addressable until the next AdvanceEpoch (see lifetime contract).
  void Remove(size_t slot);

  /// \brief Epoch boundary: releases the payloads of every slot
  /// removed since the previous call and lets the arena reclaim
  /// all-dead blocks wholesale. Operators call this at the end of a
  /// purge sweep — the one point where no probe results are in flight.
  void AdvanceEpoch();

  bool IsLive(size_t slot) const {
    return slot < live_.size() && live_[slot];
  }
  const Tuple& At(size_t slot) const { return handles_[slot]; }

  size_t live_count() const { return live_count_; }
  const StateMetrics& metrics() const { return metrics_; }
  bool arena_enabled() const { return arena_ != nullptr; }

  /// \brief Observed same-key run structure of the batched probe path:
  /// `rows` selected rows collapsed into `runs` bucket resolutions, so
  /// rows/runs is the mean hash-run length — the signal
  /// ExecutorConfig::adaptive_batch tunes the batch capacity from.
  /// Deliberately separate from StateMetrics: run stats are a local
  /// tuning input, not logical operator state, so they stay out of the
  /// PSCK checkpoint byte format.
  struct ProbeRunStats {
    uint64_t rows = 0;
    uint64_t runs = 0;
  };
  const ProbeRunStats& probe_run_stats() const { return probe_run_stats_; }

  /// \brief Accounts one same-key run of `rows` probe rows that shared
  /// a single bucket resolution (ProbeBatch and the frontier expansion
  /// both call it once per run): folds the run into the
  /// adaptive-batch tuning stats and counts the rows beyond the first
  /// as probes — the first row's probe is counted by the accompanying
  /// ForBucketLive, so per-run totals equal a per-row probe loop
  /// exactly (checkpointed counters stay mode-independent).
  void NoteProbeRun(size_t rows) const {
    probe_run_stats_.rows += rows;
    ++probe_run_stats_.runs;
    if (rows > 1) metrics_.OnProbes(rows - 1);
  }

  /// \brief Charges expansion-scratch allocation events against this
  /// store's metrics (the arrival input's store carries the expansion
  /// cost of its pushes; see StateMetrics::expand_allocs).
  void CountExpandAllocs(uint64_t n) const { metrics_.OnExpandAllocs(n); }

  /// \brief Borrows the owning operator's observation point (nullable)
  /// so epoch boundaries surface as trace events. Deliberately NOT
  /// consulted on the per-probe path — probes are the hot loop and
  /// stay counter-only (StateMetrics::probes).
  void SetObserver(obs::OperatorObs* observer) { obs_ = observer; }

  /// \brief Counts an arriving tuple that was never stored because its
  /// removability already held ("purging future tuples", Sec 5.1).
  void CountDroppedArrival() { ++metrics_.dropped_on_arrival; }

  /// \brief Checkpoint restore: after the live tuples have been
  /// re-Inserted (which bumps inserted/live/high_water), overwrites
  /// the counters with their captured values so accounting resumes
  /// exactly where the snapshot left off (exec/checkpoint.h).
  void RestoreMetrics(const StateMetricsSnapshot& snapshot) {
    metrics_.RestoreFrom(snapshot);
  }

  /// \brief Calls fn(slot, tuple) for every live tuple. The callback
  /// must not mutate the store.
  void ForEachLive(const std::function<void(size_t, const Tuple&)>& fn) const;

  /// \brief True iff some live tuple satisfies the predicate (early
  /// exit on the first hit).
  bool AnyLive(const std::function<bool(const Tuple&)>& pred) const;

  /// \brief Whether a hash index exists on the given offset (O(1)).
  bool HasIndexOn(size_t offset) const {
    return offset < offset_to_index_.size() &&
           offset_to_index_[offset] != kNoIndex;
  }

  /// \brief Resolves the index bucket for (offset, value); nullptr
  /// when no key matches. Runs any pending probe-triggered compaction
  /// first, so the returned pointer is valid until the next FindBucket
  /// / Remove / Insert on this store — which is what lets batch-aware
  /// expansion visit one bucket for a whole run of same-key rows
  /// (ForBucketLive never invalidates it).
  const Bucket* FindBucket(size_t offset, const Value& value) const {
    if (pending_compact_) CompactIndexes();
    PUNCTSAFE_CHECK(HasIndexOn(offset))
        << "probe on non-indexed offset " << offset;
    return indexes_[offset_to_index_[offset]].Find(value.Hash(), value);
  }

  /// \brief Visits every live member of a FindBucket result (nullptr
  /// allowed: counts the probe, visits nothing). The callback must not
  /// mutate the store.
  template <typename Fn>
  void ForBucketLive(const Bucket* bucket, Fn&& fn) const {
    metrics_.OnProbe();
    if (bucket == nullptr) return;
    size_t dead = 0;
    size_t hit = 0;
    for (size_t slot : *bucket) {
      if (!live_[slot]) {
        ++dead;
        continue;
      }
      // The bucket is exact for its key (Value-keyed index), so every
      // live member is a match.
      ++hit;
      fn(slot, handles_[slot]);
    }
    NoteProbeFilter(dead, hit);
  }

  /// \brief Allocation-free probe cursor: calls fn(slot, tuple) for
  /// every live tuple whose `offset` attribute equals `value`, via the
  /// hash index. `offset` must be indexed. The callback must not
  /// mutate the store (the bucket being walked would be invalidated).
  template <typename Fn>
  void ProbeEach(size_t offset, const Value& value, Fn&& fn) const {
    ForBucketLive(FindBucket(offset, value), std::forward<Fn>(fn));
  }

  /// \brief Early-exit probe: true iff some live matching tuple
  /// satisfies `pred`. Same contract as ProbeEach.
  template <typename Pred>
  bool AnyMatch(size_t offset, const Value& value, Pred&& pred) const {
    metrics_.OnProbe();
    const Bucket* bucket = FindBucket(offset, value);
    if (bucket == nullptr) return false;
    for (size_t slot : *bucket) {
      if (live_[slot] && pred(handles_[slot])) return true;
    }
    return false;
  }

  /// \brief Vectorized batch probe: for every *selected* row of
  /// `batch`, calls fn(row, slot, tuple) once per live tuple whose
  /// `offset` attribute equals the row's `key_offset` attribute.
  ///
  /// The batch's hash column must have been built over `key_offset`
  /// (TupleBatch::BuildHashColumn — the "hash all keys up front" half
  /// of the bargain). The scan walks the contiguous hash column with
  /// SIMD run detection (exec/simd.h, 2–4 cached hashes per compare):
  /// a run of equal-key rows resolves its index bucket once, filters
  /// its live slots once into a scratch, and replays the dense slot
  /// list per row — the per-row tombstone bit tests are paid once per
  /// run, not once per row. Match emission order per row is identical
  /// to a per-row ProbeEach loop (the store cannot change mid-batch:
  /// the callback must not mutate it).
  template <typename Fn>
  void ProbeBatch(size_t offset, const TupleBatch& batch, size_t key_offset,
                  Fn&& fn) const {
    if (pending_compact_) CompactIndexes();
    PUNCTSAFE_CHECK(HasIndexOn(offset))
        << "probe on non-indexed offset " << offset;
    PUNCTSAFE_CHECK(batch.HasHashColumn(key_offset))
        << "ProbeBatch needs the hash column built over the key offset";
    const FlatKeyIndex& index = indexes_[offset_to_index_[offset]];
    const std::vector<uint32_t>& sel = batch.selection();
    const uint64_t* hashes = batch.hashes().data();
    const size_t n = sel.size();
    // Live slots of the current run's bucket, filtered once. Reused
    // across runs and calls, so steady-state probing allocates nothing.
    thread_local std::vector<size_t> run_slots;
    size_t k = 0;
    while (k < n) {
      const uint32_t row = sel[k];
      const Value& key = batch.tuple(row).at(key_offset);
      const Bucket* bucket =
          index.Find(static_cast<size_t>(hashes[row]), key);
      // Contiguous span of the selection starting at this row: only a
      // dense stretch can share the SIMD hash-run scan.
      size_t span = 1;
      while (k + span < n && sel[k + span] == row + span) ++span;
      const size_t run = simd::HashRunLength(hashes + row, span);
      // Equal hashes almost always mean equal keys; verify so a
      // collision splits the run instead of borrowing the bucket.
      size_t same_key = 1;
      while (same_key < run &&
             batch.tuple(row + same_key).at(key_offset) == key) {
        ++same_key;
      }
      NoteProbeRun(same_key);
      if (same_key == 1) {
        ForBucketLive(bucket, [&](size_t slot, const Tuple& t) {
          fn(row, slot, t);
        });
      } else {
        run_slots.clear();
        ForBucketLive(bucket, [&](size_t slot, const Tuple&) {
          run_slots.push_back(slot);
        });
        for (size_t slot : run_slots) fn(row, slot, handles_[slot]);
        for (size_t j = 1; j < same_key; ++j) {
          const uint32_t r = row + static_cast<uint32_t>(j);
          for (size_t slot : run_slots) fn(r, slot, handles_[slot]);
        }
      }
      k += same_key;
    }
  }

  /// \brief Probe into a caller-supplied scratch buffer (cleared
  /// first): the steady-state path reuses the buffer's capacity, so no
  /// allocation per probe once it has warmed up.
  void ProbeInto(size_t offset, const Value& value,
                 std::vector<size_t>* out) const;

  /// \brief Live slots whose `offset` attribute equals `value`.
  ///
  /// Deprecated for production use: this legacy flavor heap-allocates
  /// a fresh result vector per call and is the only probe that bumps
  /// StateMetrics::probe_allocs — `probe_allocs == 0` is the pinned
  /// steady-state invariant, so any nonzero reading means a hot path
  /// regressed onto this API. Kept for tests and as the comparison
  /// baseline in bench_hot_path; new operator code must use
  /// ProbeEach / AnyMatch / ProbeInto / FindBucket+ForBucketLive.
  std::vector<size_t> Probe(size_t offset, const Value& value) const;

  /// \brief Marks `slots` purged and updates metrics.
  void PurgeSlots(const std::vector<size_t>& slots);

 private:
  static constexpr size_t kNoIndex = static_cast<size_t>(-1);

  /// Probe-path compaction trigger: a probe that filtered out more
  /// dead than live slots schedules a rebuild, executed at the next
  /// FindBucket entry (never mid-iteration).
  void NoteProbeFilter(size_t dead, size_t live_hits) const {
    if (dead >= kCompactMinDead && dead > live_hits) {
      pending_compact_ = true;
    }
  }

  void MaybeCompactIndexes();
  void CompactIndexes() const;

  /// Core of Insert without the per-row metrics tail: index insert,
  /// storage layout, live bookkeeping. Heap-mode allocation counts
  /// accumulate into *heap_allocs; arena-mode counts are derived from
  /// the block-alloc delta by the caller (once per row for Insert,
  /// once per batch for InsertBatch — same totals either way).
  size_t InsertRow(const Tuple& tuple, uint64_t* heap_allocs);

  /// Storage half of InsertRow (arena/heap layout + live
  /// bookkeeping), no index insert — InsertBatch's run-amortized path
  /// resolves the bucket itself, once per same-key run.
  size_t AppendRowStorage(const Tuple& tuple, uint64_t* heap_allocs);

  /// Payload half of AppendRowStorage (arena/heap copy, handle, block
  /// id) WITHOUT the live-slot bookkeeping: InsertBatch appends
  /// payloads per row and fills the live structures in bulk — the new
  /// slots are consecutive, so three per-row push_backs (one into a
  /// bit vector) become three sequential fills per batch.
  size_t AppendRowPayload(const Tuple& tuple, uint64_t* heap_allocs);

  std::vector<size_t> indexed_offsets_;
  // offset -> position in indexes_ (kNoIndex when not indexed).
  std::vector<size_t> offset_to_index_;
  // Per-slot tuple handles. With the arena on these are non-owning
  // views into arena blocks; without it, owning tuples. Either way a
  // removed slot's handle is cleared at the next AdvanceEpoch (slot
  // ids stay stable; payload memory does not outlive the epoch).
  std::vector<Tuple> handles_;
  std::vector<bool> live_;
  // Dense list of live slots (swap-remove maintained) so iteration
  // costs O(live), not O(ever inserted).
  std::vector<size_t> live_slots_;
  std::vector<size_t> pos_in_live_;
  size_t live_count_ = 0;
  // Arena storage (nullptr when options.arena is false).
  std::unique_ptr<EpochArena> arena_;
  // Slot -> arena block owning its payload (arena mode only).
  std::vector<uint32_t> slot_block_;
  // Slots removed since the last AdvanceEpoch, awaiting payload
  // release at the epoch boundary.
  std::vector<size_t> released_;
  uint64_t last_block_allocs_ = 0;
  // One index per indexed offset: key Value -> slots (buckets may
  // contain dead slots until compaction; never slots with a different
  // key). Keyed by Value so a bucket's slots all carry exactly that
  // key; the key Value is an owning *copy*, so index keys never dangle
  // into the arena. `mutable` because logically-const probes trigger
  // the lazy compaction (a full rebuild of each table from survivors).
  mutable std::vector<FlatKeyIndex> indexes_;
  mutable size_t dead_count_ = 0;
  mutable bool pending_compact_ = false;
  mutable StateMetrics metrics_;
  // Probe-run tuning signal (see ProbeRunStats); mutable because
  // ProbeBatch is logically const.
  mutable ProbeRunStats probe_run_stats_;
  obs::OperatorObs* obs_ = nullptr;
};

}  // namespace punctsafe

#endif  // PUNCTSAFE_EXEC_TUPLE_STORE_H_
