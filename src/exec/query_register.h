// QueryRegister (paper Figure 2): the admission-control component. It
// records stream schemas and punctuation schemes, and admits a CJQ
// only after the Section 4 safety check passes — unsafe queries are
// rejected at registration, before they can consume unbounded memory.

#ifndef PUNCTSAFE_EXEC_QUERY_REGISTER_H_
#define PUNCTSAFE_EXEC_QUERY_REGISTER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/safety_checker.h"
#include "exec/parallel_executor.h"
#include "exec/plan_executor.h"
#include "plan/cost_model.h"
#include "query/cjq.h"
#include "query/plan_shape.h"
#include "stream/catalog.h"
#include "stream/scheme.h"
#include "util/status.h"

namespace punctsafe {

/// \brief An admitted, running continuous join query. Exactly one of
/// `executor` (ExecutionMode::kSerial) / `parallel_executor`
/// (ExecutionMode::kParallel) is set, per the ExecutorConfig's mode.
struct RegisteredQuery {
  ContinuousJoinQuery query;
  SafetyReport safety;
  PlanShape shape;
  std::unique_ptr<PlanExecutor> executor;
  std::unique_ptr<ParallelExecutor> parallel_executor;

  bool is_parallel() const { return parallel_executor != nullptr; }
};

class QueryRegister {
 public:
  QueryRegister() = default;

  /// \brief Seeds the register with an existing catalog (and
  /// optionally a scheme set) — the multi-query server path
  /// (src/server/query_registry.h), where streams are created once at
  /// the server and each registration brings its own schemes.
  explicit QueryRegister(StreamCatalog catalog, SchemeSet schemes = {})
      : catalog_(std::move(catalog)), schemes_(std::move(schemes)) {}

  /// \brief Registers a stream schema.
  Status RegisterStream(const std::string& name, Schema schema) {
    return catalog_.Register(name, std::move(schema));
  }

  /// \brief Records a punctuation scheme (application semantics).
  /// The scheme's stream must be registered and the arity must match.
  Status RegisterScheme(const PunctuationScheme& scheme);

  /// \brief Convenience: scheme by punctuatable attribute names.
  Status RegisterScheme(const std::string& stream,
                        const std::vector<std::string>& attributes);

  /// \brief Admits a CJQ: validates it, runs the safety check, and on
  /// success instantiates an executor.
  ///
  /// Rejected queries return FailedPrecondition carrying the
  /// checker's explanation (which streams can never be purged).
  ///
  /// `shape` defaults to the single MJoin over all streams — the plan
  /// Theorems 2/4 guarantee safe whenever any safe plan exists. A
  /// caller-provided shape is itself safety-checked and rejected if
  /// unsafe (the Figure 7 situation).
  Result<RegisteredQuery> Register(
      const std::vector<std::string>& streams,
      const std::vector<JoinPredicateSpec>& predicates,
      ExecutorConfig config = {},
      std::optional<PlanShape> shape = std::nullopt);

  /// \brief Recovery entry point (exec/checkpoint.h,
  /// docs/RECOVERY.md): registers the query exactly like Register,
  /// then rebuilds the fresh executor's state from the snapshot file
  /// at `path`. The snapshot's CRC-checked sections and plan
  /// fingerprint are validated; a snapshot taken under a different
  /// query/shape is rejected with InvalidArgument. Works for both
  /// execution modes and any shard count — the snapshot format is
  /// mode-agnostic (shard states are merged at capture and re-split by
  /// ShardOf at restore). Afterwards, resume by replaying each input
  /// stream's suffix from `snapshot progress[s].events_consumed`
  /// (exposed via the executor's progress() accessor).
  Result<RegisteredQuery> Restore(
      const std::string& path, const std::vector<std::string>& streams,
      const std::vector<JoinPredicateSpec>& predicates,
      ExecutorConfig config = {},
      std::optional<PlanShape> shape = std::nullopt);

  /// \brief Like Register, but instead of defaulting to the single
  /// MJoin, enumerates the safe plans and picks the best one under
  /// the workload statistics and objective (paper Section 5.2).
  Result<RegisteredQuery> RegisterWithChooser(
      const std::vector<std::string>& streams,
      const std::vector<JoinPredicateSpec>& predicates,
      const WorkloadStats& stats,
      CostObjective objective = CostObjective::kBalanced,
      ExecutorConfig config = {});

  const StreamCatalog& catalog() const { return catalog_; }
  const SchemeSet& schemes() const { return schemes_; }

 private:
  StreamCatalog catalog_;
  SchemeSet schemes_;
};

}  // namespace punctsafe

#endif  // PUNCTSAFE_EXEC_QUERY_REGISTER_H_
