#include "exec/punctuation_store.h"

#include <algorithm>

namespace punctsafe {

namespace {

// Projects the constants of a punctuation, in its constrained-attr
// order, into a Tuple usable as a hash key.
Tuple ConstantsOf(const Punctuation& p, const std::vector<size_t>& attrs) {
  std::vector<Value> values;
  values.reserve(attrs.size());
  for (size_t a : attrs) values.push_back(p.pattern(a).constant());
  return Tuple(std::move(values));
}

}  // namespace

bool PunctuationStore::Add(const Punctuation& punctuation, int64_t now) {
  std::vector<size_t> attrs = punctuation.ConstrainedAttrs();
  Group* group = nullptr;
  for (auto& g : groups_) {
    if (g.attrs == attrs) {
      group = &g;
      break;
    }
  }
  if (group == nullptr) {
    groups_.push_back({attrs, {}});
    group = &groups_.back();
  }
  Tuple key = ConstantsOf(punctuation, attrs);
  auto [it, inserted] = group->by_values.try_emplace(
      std::move(key), Entry{punctuation, now});
  if (!inserted) {
    it->second.arrival = now;  // refresh lifespan of a duplicate
    return false;
  }
  ++size_;
  high_water_ = std::max(high_water_, size_);
  return true;
}

bool PunctuationStore::CoversSubspace(const std::vector<size_t>& attrs,
                                      std::span<const Value> values,
                                      int64_t now) const {
  for (const Group& group : groups_) {
    // Group applies iff its constrained attrs are a subset of `attrs`.
    key_scratch_.clear();
    bool subset = true;
    for (size_t a : group.attrs) {
      auto it = std::find(attrs.begin(), attrs.end(), a);
      if (it == attrs.end()) {
        subset = false;
        break;
      }
      key_scratch_.push_back(&values[it - attrs.begin()]);
    }
    if (!subset) continue;
    auto it = group.by_values.find(ProjectedKey{&key_scratch_});
    if (it != group.by_values.end() && !Expired(it->second, now)) {
      return true;
    }
  }
  return false;
}

bool PunctuationStore::ExcludesTuple(const Tuple& tuple, int64_t now) const {
  for (const Group& group : groups_) {
    key_scratch_.clear();
    bool ok = true;
    for (size_t a : group.attrs) {
      if (a >= tuple.size()) {
        ok = false;
        break;
      }
      key_scratch_.push_back(&tuple.at(a));
    }
    if (!ok) continue;
    auto it = group.by_values.find(ProjectedKey{&key_scratch_});
    if (it != group.by_values.end() && !Expired(it->second, now)) {
      return true;
    }
  }
  return false;
}

size_t PunctuationStore::ExpireBefore(int64_t now) {
  if (!lifespan_.has_value()) return 0;
  size_t dropped = 0;
  for (Group& group : groups_) {
    for (auto it = group.by_values.begin(); it != group.by_values.end();) {
      if (Expired(it->second, now)) {
        it = group.by_values.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  size_ -= dropped;
  return dropped;
}

size_t PunctuationStore::RemoveIf(
    const std::function<bool(const Punctuation&)>& pred) {
  size_t removed = 0;
  for (Group& group : groups_) {
    for (auto it = group.by_values.begin(); it != group.by_values.end();) {
      if (pred(it->second.punctuation)) {
        it = group.by_values.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
  }
  size_ -= removed;
  return removed;
}

void PunctuationStore::ForEach(
    const std::function<void(const Punctuation&)>& fn) const {
  for (const Group& group : groups_) {
    for (const auto& [key, entry] : group.by_values) fn(entry.punctuation);
  }
}

void PunctuationStore::ForEachEntry(
    const std::function<void(const Punctuation&, int64_t)>& fn) const {
  for (const Group& group : groups_) {
    for (const auto& [key, entry] : group.by_values) {
      fn(entry.punctuation, entry.arrival);
    }
  }
}

}  // namespace punctsafe
