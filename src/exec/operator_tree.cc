#include "exec/operator_tree.h"

#include <algorithm>

#include "core/plan_safety.h"

namespace punctsafe {

namespace {

// Bottom-up construction result for one plan-shape node.
struct BuiltNode {
  LocalInput info;  // streams + schemes visible on this edge
  size_t op = OperatorTree::ParentEdge::kNoParent;  // npos for leaves
};

BuiltNode BuildNode(const ContinuousJoinQuery& query,
                    const SchemeSet& schemes, const PlanShape& shape,
                    const MJoinConfig& config, OperatorTree* tree,
                    Status* status) {
  if (!status->ok()) return {};
  if (shape.IsLeaf()) {
    BuiltNode node;
    node.info.streams = {shape.stream()};
    node.info.schemes = RawAvailableSchemes(query, schemes, shape.stream());
    return node;
  }

  std::vector<BuiltNode> children;
  children.reserve(shape.children().size());
  for (const PlanShape& child : shape.children()) {
    children.push_back(
        BuildNode(query, schemes, child, config, tree, status));
    if (!status->ok()) return {};
  }

  std::vector<LocalInput> inputs;
  inputs.reserve(children.size());
  for (const BuiltNode& c : children) inputs.push_back(c.info);

  auto op_or = MJoinOperator::Create(query, inputs, config);
  if (!op_or.ok()) {
    *status = op_or.status();
    return {};
  }
  tree->operators.push_back(std::move(op_or).ValueOrDie());
  tree->node_inputs.push_back(inputs);
  tree->parents.emplace_back();
  size_t op_index = tree->operators.size() - 1;
  MJoinOperator* op = tree->operators[op_index].get();

  // Record edges: child operators and raw-stream leaves.
  for (size_t k = 0; k < children.size(); ++k) {
    if (children[k].op != OperatorTree::ParentEdge::kNoParent) {
      tree->parents[children[k].op] = {op_index, k};
    } else {
      tree->leaf_route[children[k].info.streams[0]] = {op_index, k};
    }
  }

  BuiltNode node;
  node.op = op_index;
  node.info.streams.clear();
  for (const BuiltNode& c : children) {
    node.info.streams.insert(node.info.streams.end(), c.info.streams.begin(),
                             c.info.streams.end());
  }
  std::sort(node.info.streams.begin(), node.info.streams.end());
  // Propagate schemes of purgeable inputs (matches plan_safety.cc and
  // the operator's own propagatable signatures).
  for (size_t k = 0; k < children.size(); ++k) {
    if (op->InputPurgeable(k)) {
      node.info.schemes.insert(node.info.schemes.end(),
                               children[k].info.schemes.begin(),
                               children[k].info.schemes.end());
    }
  }
  return node;
}

}  // namespace

Result<OperatorTree> BuildOperatorTree(const ContinuousJoinQuery& query,
                                       const SchemeSet& schemes,
                                       const PlanShape& shape,
                                       const MJoinConfig& config) {
  OperatorTree tree;
  tree.leaf_route.assign(query.num_streams(),
                         {OperatorTree::ParentEdge::kNoParent, 0});
  Status status = Status::OK();
  BuildNode(query, schemes, shape, config, &tree, &status);
  PUNCTSAFE_RETURN_IF_ERROR(status);
  return tree;
}

}  // namespace punctsafe
