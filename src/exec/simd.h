// SIMD primitives for the vectorized probe and expansion paths:
// 16-wide control-tag matching (exec/flat_index.h), equal-hash run
// detection over the contiguous hash column a TupleBatch carries
// (TupleStore::ProbeBatch), and the pairwise equal-hash filter that
// prefilters expansion verification (MJoinOperator::Expand).
//
// Dispatch is compile-time: SSE2 (implied by x86-64) with an AVX2
// refinement for the 4-wide uint64 hash compare, NEON on AArch64, and
// a portable scalar fallback everywhere else. Defining
// PUNCTSAFE_NO_SIMD (CMake option of the same name) forces the scalar
// path on any architecture — the CI matrix builds and tests that leg
// so the fallback cannot rot. All variants are exact drop-ins: same
// results, same iteration order, only the instructions differ.

#ifndef PUNCTSAFE_EXEC_SIMD_H_
#define PUNCTSAFE_EXEC_SIMD_H_

#include <cstddef>
#include <cstdint>

#if !defined(PUNCTSAFE_NO_SIMD) && \
    (defined(__SSE2__) || defined(_M_X64) || defined(_M_AMD64))
#define PUNCTSAFE_SIMD_SSE2 1
#include <emmintrin.h>
#if defined(__AVX2__)
#define PUNCTSAFE_SIMD_AVX2 1
#include <immintrin.h>
#endif
#elif !defined(PUNCTSAFE_NO_SIMD) && defined(__aarch64__) && \
    defined(__ARM_NEON)
#define PUNCTSAFE_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace punctsafe {
namespace simd {

/// Name of the active dispatch, surfaced in bench JSON and docs so a
/// measurement records which code path produced it.
inline constexpr const char* kDispatchName =
#if defined(PUNCTSAFE_SIMD_AVX2)
    "avx2";
#elif defined(PUNCTSAFE_SIMD_SSE2)
    "sse2";
#elif defined(PUNCTSAFE_SIMD_NEON)
    "neon";
#else
    "scalar";
#endif

/// \brief Compares 16 control tags against `tag` in one step; bit i of
/// the result is set iff tags[i] == tag. `tags` needs no alignment.
inline uint32_t MatchTags16(const uint8_t* tags, uint8_t tag) {
#if defined(PUNCTSAFE_SIMD_SSE2)
  const __m128i group =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(tags));
  const __m128i match = _mm_cmpeq_epi8(group, _mm_set1_epi8(
                                                  static_cast<char>(tag)));
  return static_cast<uint32_t>(_mm_movemask_epi8(match));
#elif defined(PUNCTSAFE_SIMD_NEON)
  const uint8x16_t group = vld1q_u8(tags);
  const uint8x16_t match = vceqq_u8(group, vdupq_n_u8(tag));
  // Emulate movemask: AND each matched lane (0xFF) down to its
  // positional bit, then horizontal-add each half.
  const uint8x16_t bits = {1, 2, 4, 8, 16, 32, 64, 128,
                           1, 2, 4, 8, 16, 32, 64, 128};
  const uint8x16_t masked = vandq_u8(match, bits);
  const uint32_t lo = vaddv_u8(vget_low_u8(masked));
  const uint32_t hi = vaddv_u8(vget_high_u8(masked));
  return lo | (hi << 8);
#else
  uint32_t mask = 0;
  for (int i = 0; i < 16; ++i) {
    if (tags[i] == tag) mask |= 1u << i;
  }
  return mask;
#endif
}

/// \brief Length of the prefix of `hashes[0..n)` equal to `hashes[0]`
/// (n == 0 returns 0). The vectorized variants compare 4 (AVX2) or 2
/// (SSE2/NEON) cached hashes per step; ProbeBatch uses the run length
/// to reuse one bucket resolution across a run of same-key rows.
inline size_t HashRunLength(const uint64_t* hashes, size_t n) {
  if (n == 0) return 0;
  const uint64_t head = hashes[0];
  size_t i = 1;
#if defined(PUNCTSAFE_SIMD_AVX2)
  const __m256i splat = _mm256_set1_epi64x(static_cast<long long>(head));
  for (; i + 4 <= n; i += 4) {
    const __m256i block =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hashes + i));
    const uint32_t eq = static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi64(block, splat)));
    if (eq != 0xFFFFFFFFu) {
      // First non-matching lane: each lane owns 8 mask bits.
      unsigned bit = 0;
      uint32_t miss = ~eq;
      while ((miss & 1u) == 0) {
        miss >>= 1;
        ++bit;
      }
      return i + bit / 8;
    }
  }
#elif defined(PUNCTSAFE_SIMD_SSE2)
  const __m128i splat = _mm_set1_epi64x(static_cast<long long>(head));
  for (; i + 2 <= n; i += 2) {
    const __m128i block =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(hashes + i));
    // SSE2 has no 64-bit compare; 32-bit lanes are exact when both
    // halves of each 64-bit lane match.
    const uint32_t eq = static_cast<uint32_t>(
        _mm_movemask_epi8(_mm_cmpeq_epi32(block, splat)));
    if (eq != 0xFFFFu) {
      return ((eq & 0x00FFu) == 0x00FFu) ? i + 1 : i;
    }
  }
#elif defined(PUNCTSAFE_SIMD_NEON)
  const uint64x2_t splat = vdupq_n_u64(head);
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t block = vld1q_u64(hashes + i);
    const uint64x2_t eq = vceqq_u64(block, splat);
    if (vgetq_lane_u64(eq, 0) != ~uint64_t{0}) return i;
    if (vgetq_lane_u64(eq, 1) != ~uint64_t{0}) return i + 1;
  }
#endif
  for (; i < n; ++i) {
    if (hashes[i] != head) return i;
  }
  return n;
}

/// \brief Writes the indices i (ascending) where a[i] == b[i] into
/// `out_idx` (caller-sized to >= n); returns the survivor count. The
/// verification prefilter of batched expansion: both columns carry
/// *cached* Value hashes, so equal hashes almost always mean equal
/// values and exact equality only runs on the survivors (a collision
/// survives the filter and is rejected by the exact check — the filter
/// has false positives, never false negatives).
inline size_t FilterEqualHashes(const uint64_t* a, const uint64_t* b,
                                size_t n, uint32_t* out_idx) {
  size_t count = 0;
  size_t i = 0;
#if defined(PUNCTSAFE_SIMD_AVX2)
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const uint32_t eq = static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi64(va, vb)));
    // Each 64-bit lane owns 8 mask bits; a lane matches when all 8 are
    // set.
    for (unsigned lane = 0; lane < 4; ++lane) {
      if (((eq >> (8 * lane)) & 0xFFu) == 0xFFu) {
        out_idx[count++] = static_cast<uint32_t>(i + lane);
      }
    }
  }
#elif defined(PUNCTSAFE_SIMD_SSE2)
  for (; i + 2 <= n; i += 2) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    // 32-bit compares are exact when both halves of a 64-bit lane
    // match (same trick as HashRunLength).
    const uint32_t eq = static_cast<uint32_t>(
        _mm_movemask_epi8(_mm_cmpeq_epi32(va, vb)));
    if ((eq & 0x00FFu) == 0x00FFu) out_idx[count++] = static_cast<uint32_t>(i);
    if ((eq & 0xFF00u) == 0xFF00u) {
      out_idx[count++] = static_cast<uint32_t>(i + 1);
    }
  }
#elif defined(PUNCTSAFE_SIMD_NEON)
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t va = vld1q_u64(a + i);
    const uint64x2_t vb = vld1q_u64(b + i);
    const uint64x2_t eq = vceqq_u64(va, vb);
    if (vgetq_lane_u64(eq, 0) == ~uint64_t{0}) {
      out_idx[count++] = static_cast<uint32_t>(i);
    }
    if (vgetq_lane_u64(eq, 1) == ~uint64_t{0}) {
      out_idx[count++] = static_cast<uint32_t>(i + 1);
    }
  }
#endif
  for (; i < n; ++i) {
    if (a[i] == b[i]) out_idx[count++] = static_cast<uint32_t>(i);
  }
  return count;
}

}  // namespace simd
}  // namespace punctsafe

#endif  // PUNCTSAFE_EXEC_SIMD_H_
