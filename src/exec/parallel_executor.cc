#include "exec/parallel_executor.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <thread>
#include <utility>

#include "exec/bounded_queue.h"
#include "exec/exchange.h"
#include "exec/operator_tree.h"
#include "exec/simd.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace punctsafe {

namespace {

constexpr size_t kNone = static_cast<size_t>(-1);

}  // namespace

// One message on a shard's input queue: a whole tuple batch OR a
// single stream element tagged with the input it belongs to, or a
// barrier marker (drain / checkpoint / recheck — processed after
// everything queued before it; the pushing thread guarantees all
// producers are quiescent first). Batches are the first-class hand-off
// unit (ExecutorConfig::batch_size): one queue operation moves the
// whole batch, and batches of one travel as plain elements so
// batch_size == 1 reproduces per-tuple execution exactly.
struct OpMessage {
  PipelineMarker marker = PipelineMarker::kNone;
  size_t input = 0;
  StreamElement element;
  // Whole-batch payload; when set, `element` is unused and the merge
  // ordering key is the batch's first row timestamp. shared_ptr keeps
  // the message copyable for the reorder deques; a batch still has
  // exactly one consumer at a time.
  std::shared_ptr<TupleBatch> batch;
  // Steady-clock stamp taken when the element entered the pipeline
  // edge (enqueue or emit-staging flush). Only populated while
  // observability is on; Deliver turns it into the consumer's latency
  // sample, so the measured latency covers queue wait + reorder
  // buffering + processing — for a batch, one stamp and one sample
  // (the per-tuple mean) cover every row. 0 when observability is off.
  int64_t enqueue_ns = 0;
};

namespace {

// Merge-ordering key: batches order by their first row's timestamp.
int64_t OrderTs(const OpMessage& m) {
  return m.batch != nullptr ? m.batch->first_timestamp()
                            : m.element.timestamp;
}

}  // namespace

// One shard worker: exclusive owner of one MJoinOperator replica.
struct ParallelExecutor::Worker {
  explicit Worker(size_t queue_capacity) : queue(queue_capacity) {}

  MJoinOperator* op = nullptr;
  BoundedQueue<OpMessage> queue;
  // Per-input FIFO reorder buffers for the timestamp merge (whole
  // messages, so the enqueue stamp survives buffering and the latency
  // sample charges reorder wait to this shard).
  std::vector<std::deque<OpMessage>> pending;
  std::thread thread;

  // This shard's observation point (null when observability is off).
  // The worker thread is the trace ring's single producer; producers
  // on other threads (router stalls) touch only its atomic counters.
  obs::OperatorObs* obs = nullptr;

  // Owning group index, and the downstream emit staging: result
  // tuples this shard produces are staged into one TupleBatch per
  // *parent* shard and flushed as one queue message per batch once
  // ExecutorConfig::batch_size rows are staged (the former hard-coded
  // kEmitFlushBatch = 128). Touched only by this worker's thread
  // (emits run inside op->Push*, on this thread); root-group workers
  // keep it empty. Flush-before-punctuation and flush-before-drain-ack
  // preserve the per-queue FIFO invariant that a punctuation never
  // overtakes the tuples it covers.
  size_t group = 0;
  std::vector<TupleBatch> emit_buf;
  size_t emit_buffered = 0;
  // Staged-rows flush trigger. Starts at ExecutorConfig::batch_size;
  // with adaptive_batch on, this worker retunes it from its own
  // operator's probe-run statistics at barrier boundaries (own-thread
  // state, so per-operator adaptation needs no synchronization).
  size_t emit_threshold = 1;
  uint64_t adapt_rows_seen = 0;
  uint64_t adapt_runs_seen = 0;

  // Routing-pressure counters for the rebalancer (maintained only
  // when ExecutorConfig::rebalance.enabled; obs counters stay tied to
  // observability). `routed` counts tuples enqueued to this shard,
  // `stalls` counts full-queue observations before a blocking push.
  std::atomic<uint64_t> routed{0};
  std::atomic<uint64_t> stalls{0};

  // Barrier handshake (drain / checkpoint / recheck markers all share
  // it). `drains_requested` is touched only by the driver thread;
  // `drains_done` is the worker's ack, published under `mu`.
  uint64_t drains_requested = 0;
  std::mutex mu;
  std::condition_variable drained_cv;
  uint64_t drains_done = 0;
};

// One logical operator: K contiguous shard workers behind a
// partitioning router, plus the output-punctuation merge barrier.
struct ParallelExecutor::OpGroup {
  OpGroup(size_t num_shards_in, size_t active_shards, PartitionSpec spec_in)
      : num_shards(num_shards_in),
        spec(std::move(spec_in)),
        shard_map(active_shards),
        aligner(num_shards_in) {}

  size_t first_worker = 0;  // index into workers_/operators_
  // Allocated shard workers. Broadcasts, barriers, and the aligner
  // always cover all of them; the ShardMap routes tuples to an active
  // subset (idle workers hold full punctuation stores and vote
  // immediately, so correctness is unaffected by headroom).
  size_t num_shards = 1;
  PartitionSpec spec;
  // Versioned slot -> shard routing table (exec/shard_map.h). Read
  // lock-free on every route; mutated only by the driver while the
  // group is parked at a kMigrate barrier.
  ShardMap shard_map;
  // Per-slot routed-tuple counters feeding the rebalancer (null
  // unless rebalance tracking is on and the group is partitioned);
  // `slot_base` is the driver-side snapshot the next pass diffs
  // against, `stall_base` likewise for the group's stall total.
  std::unique_ptr<std::atomic<uint64_t>[]> slot_routed;
  std::vector<uint64_t> slot_base;
  uint64_t stall_base = 0;
  // Drift backoff (RebalanceConfig::max_backoff_windows): after an
  // automatic migration the controller sits out `cooldown` check
  // windows for this group, doubling on each further migration and
  // resetting when a window comes in balanced.
  size_t rebalance_backoff = 1;
  size_t rebalance_cooldown = 0;
  // The operator's input layout, kept so migration can instantiate
  // fresh shard replicas (MJoinOperator::RestoreState requires a
  // freshly created operator).
  std::vector<LocalInput> node_inputs;
  // Serializes punctuation/drain broadcasts into this group so every
  // shard observes the same punctuation order (keeps the per-shard
  // punctuation stores identical; see docs/CONCURRENCY.md).
  std::mutex broadcast_mu;
  // Merge barrier for this group's *output* punctuations.
  PunctuationAligner aligner;
  // Parent wiring (kNone for the root group).
  size_t parent_group = kNone;
  size_t parent_input = 0;
};

Result<std::unique_ptr<ParallelExecutor>> ParallelExecutor::Create(
    const ContinuousJoinQuery& query, const SchemeSet& schemes,
    const PlanShape& shape, ExecutorConfig config) {
  // Exchange planning (exec/exchange.h): rewrite unshardable m-way
  // nodes into binary chains before anything is derived from the
  // shape — the executed shape (safety report, operator tree,
  // checkpoint fingerprint) is the decomposed one.
  PlanShape effective_shape =
      config.exchange ? DecomposeForExchange(query, shape) : shape;
  PUNCTSAFE_ASSIGN_OR_RETURN(PlanSafetyReport safety,
                             CheckPlanSafety(query, schemes, effective_shape));
  if (config.shards == 0) config.shards = 1;
  if (config.batch_size == 0) config.batch_size = 1;
  if (config.adaptive_batch && config.batch_size < 2) {
    // Adaptive tuning needs a batched starting point; 1 would pin the
    // per-tuple path forever.
    config.batch_size = TupleBatch::kDefaultCapacity;
  }
  config.mjoin.arena = config.arena;

  auto exec = std::unique_ptr<ParallelExecutor>(new ParallelExecutor());
  exec->query_ = query;
  exec->shape_ = std::move(effective_shape);
  exec->config_ = config;
  exec->safety_ = std::move(safety);
  exec->ingest_batch_ = TupleBatch(config.batch_size);
  exec->track_pressure_ = config.rebalance.enabled;

  PUNCTSAFE_ASSIGN_OR_RETURN(
      OperatorTree tree,
      BuildOperatorTree(exec->query_, schemes, exec->shape_, config.mjoin));

  ParallelExecutor* raw = exec.get();
  const size_t num_groups = tree.operators.size();
  // Elasticity headroom: allocate workers up to rebalance.max_shards
  // per partitionable group; the ShardMap initially activates
  // config.shards of them.
  const size_t allocated_shards =
      config.rebalance.enabled
          ? std::max(config.shards, config.rebalance.max_shards)
          : config.shards;
  for (size_t j = 0; j < num_groups; ++j) {
    PartitionSpec spec =
        ComputePartitionSpec(exec->query_, tree.node_inputs[j]);
    size_t shards = spec.partitionable ? allocated_shards : 1;
    size_t active = spec.partitionable ? config.shards : 1;
    auto group = std::make_unique<OpGroup>(shards, active, std::move(spec));
    group->first_worker = exec->workers_.size();
    group->node_inputs = tree.node_inputs[j];
    if (exec->track_pressure_ && shards > 1) {
      group->slot_routed =
          std::make_unique<std::atomic<uint64_t>[]>(ShardMap::kNumSlots);
      for (size_t i = 0; i < ShardMap::kNumSlots; ++i) {
        group->slot_routed[i].store(0, std::memory_order_relaxed);
      }
      group->slot_base.assign(ShardMap::kNumSlots, 0);
    }
    for (size_t s = 0; s < shards; ++s) {
      std::unique_ptr<MJoinOperator> op;
      if (s == 0) {
        op = std::move(tree.operators[j]);
      } else {
        // Shard replicas: same inputs + config, so identical layouts,
        // purge plans, and propagatable signatures — only the stored
        // tuples differ (a key-disjoint slice each).
        PUNCTSAFE_ASSIGN_OR_RETURN(
            op, MJoinOperator::Create(exec->query_, tree.node_inputs[j],
                                      config.mjoin));
      }
      auto worker = std::make_unique<Worker>(config.queue_capacity);
      worker->op = op.get();
      worker->pending.resize(op->num_inputs());
      exec->operators_.push_back(std::move(op));
      exec->workers_.push_back(std::move(worker));
    }
    exec->groups_.push_back(std::move(group));
  }

  // Wiring: every shard emits through EmitFromShard, which hashes
  // result tuples into the parent group's shard queues and funnels
  // output punctuations through the group's aligner. (Executed on the
  // emitting shard's worker thread; the root's results land in the
  // executor's sink.)
  for (size_t j = 0; j < num_groups; ++j) {
    const OperatorTree::ParentEdge& edge = tree.parents[j];
    if (edge.parent_op != OperatorTree::ParentEdge::kNoParent) {
      exec->groups_[j]->parent_group = edge.parent_op;
      exec->groups_[j]->parent_input = edge.parent_input;
    }
    OpGroup& group = *exec->groups_[j];
    for (size_t s = 0; s < group.num_shards; ++s) {
      Worker& worker = *exec->workers_[group.first_worker + s];
      worker.group = j;
      worker.emit_threshold = config.batch_size;
      if (group.parent_group != kNone) {
        worker.emit_buf.assign(exec->groups_[group.parent_group]->num_shards,
                               TupleBatch(config.batch_size));
      }
      exec->operators_[group.first_worker + s]->SetEmitter(
          [raw, j, s](const StreamElement& e) { raw->EmitFromShard(j, s, e); });
      if (config.batch_size > 1) {
        // Batch-granular result channel; batch_size == 1 leaves it
        // unset so EmitBatch falls back per element and the wiring is
        // bit-identical to tuple-at-a-time delivery.
        exec->operators_[group.first_worker + s]->SetBatchEmitter(
            [raw, j, s](TupleBatch& b) { raw->EmitBatchFromShard(j, s, b); });
      }
    }
  }

  exec->progress_.resize(query.num_streams());
  exec->leaf_route_.assign(query.num_streams(), {kNone, 0});
  for (size_t s = 0; s < query.num_streams(); ++s) {
    exec->leaf_route_[s] = tree.leaf_route[s];
  }

  // Observation points: one per shard worker, registered before any
  // worker thread starts (the registry is append-only afterwards).
  if (obs::kCompiled && config.observe.enabled) {
    exec->obs_ = std::make_unique<obs::Observability>(config.observe);
    for (size_t j = 0; j < num_groups; ++j) {
      OpGroup& group = *exec->groups_[j];
      for (size_t s = 0; s < group.num_shards; ++s) {
        obs::OperatorObs* point = exec->obs_->AddOperator(
            static_cast<uint16_t>(j), static_cast<uint32_t>(s));
        exec->workers_[group.first_worker + s]->obs = point;
        exec->operators_[group.first_worker + s]->SetObserver(point);
      }
    }
  }

  for (size_t i = 0; i < exec->workers_.size(); ++i) {
    exec->workers_[i]->thread =
        std::thread([raw, i] { raw->WorkerLoop(i); });
  }
  return exec;
}

ParallelExecutor::~ParallelExecutor() { Stop(); }

void ParallelExecutor::EmitFromShard(size_t group_idx, size_t shard,
                                     const StreamElement& element) {
  OpGroup& group = *groups_[group_idx];
  if (group.parent_group == kNone) {
    // Root: tuples are results; punctuations reach the consumer app.
    if (!element.is_tuple()) return;
    num_results_.fetch_add(1, std::memory_order_relaxed);
    if (config_.keep_results) {
      std::lock_guard<std::mutex> lock(results_mu_);
      kept_results_.push_back(element.tuple);
    }
    return;
  }
  OpGroup& parent = *groups_[group.parent_group];
  Worker& self = *workers_[group.first_worker + shard];
  if (element.is_tuple()) {
    // Stage into the per-parent-shard batch; the flush moves each
    // staged batch with one queue operation instead of one per tuple.
    // This re-hash onto the parent's partition key is the
    // repartitioning exchange (exec/exchange.h): child and parent may
    // shard on different equivalence classes. A failed flush means
    // Stop() closed the pipeline; elements are dropped (the
    // non-graceful path).
    size_t target = RouteShard(parent, group.parent_input, element.tuple);
    self.emit_buf[target].Append(element.tuple, element.timestamp);
    if (++self.emit_buffered >= self.emit_threshold) FlushEmits(self);
    return;
  }
  // Output punctuation: flush this shard's staged tuples first so the
  // punctuation cannot overtake them in the parent queues. Every shard
  // flushes before its aligner arrival, and arrivals happen-before the
  // completing shard's broadcast, so all covered tuples of all shards
  // are queued ahead of the forwarded punctuation.
  FlushEmits(self);
  // The punctuation is valid for the merged output only once every
  // shard of this group has emitted it — until then another shard may
  // still hold (and later emit results from) matching tuples.
  int64_t forward_ts = element.timestamp;
  if (group.num_shards > 1 &&
      !group.aligner.Arrive(shard, element.punctuation, element.timestamp,
                            &forward_ts)) {
    return;
  }
  Broadcast(parent, group.parent_input,
            StreamElement::OfPunctuation(element.punctuation, forward_ts));
}

void ParallelExecutor::EmitBatchFromShard(size_t group_idx, size_t shard,
                                          TupleBatch& batch) {
  OpGroup& group = *groups_[group_idx];
  if (group.parent_group == kNone) {
    // Root: the whole batch is results. One atomic add and (when
    // results are kept) one lock section per batch instead of per row.
    num_results_.fetch_add(batch.size(), std::memory_order_relaxed);
    if (config_.keep_results) {
      std::lock_guard<std::mutex> lock(results_mu_);
      for (size_t i = 0; i < batch.size(); ++i) {
        kept_results_.push_back(batch.tuple(i));  // copy re-owns the view
      }
    }
    return;
  }
  // Interior: route and stage row by row (rows of one result batch
  // generally scatter across parent shards), flushing at the same
  // threshold as the per-element path so queue granularity and
  // batch-boundary ordering are unchanged.
  OpGroup& parent = *groups_[group.parent_group];
  Worker& self = *workers_[group.first_worker + shard];
  for (size_t i = 0; i < batch.size(); ++i) {
    size_t target = RouteShard(parent, group.parent_input, batch.tuple(i));
    self.emit_buf[target].Append(batch.tuple(i), batch.timestamp(i));
    if (++self.emit_buffered >= self.emit_threshold) FlushEmits(self);
  }
}

void ParallelExecutor::FlushEmits(Worker& worker) {
  if (worker.emit_buffered == 0) return;
  const size_t input = groups_[worker.group]->parent_input;
  OpGroup& parent = *groups_[groups_[worker.group]->parent_group];
  // One clock read covers the whole flush (per-batch sampling); the
  // consumer's latency sample then charges queue wait from here.
  const int64_t now =
      (obs::kCompiled && obs_ != nullptr) ? obs::NowNs() : 0;
  for (size_t s = 0; s < worker.emit_buf.size(); ++s) {
    TupleBatch& staged = worker.emit_buf[s];
    if (staged.empty()) continue;
    Worker& target = *workers_[parent.first_worker + s];
    NotePressure(target, staged.size());
    if (obs::kCompiled && obs_ != nullptr) {
      target.obs->IncRouted(staged.size());
    }
    OpMessage message;
    message.input = input;
    message.enqueue_ns = now;
    if (staged.size() == 1) {
      // Batches of one travel as plain elements: batch_size == 1
      // reproduces the per-tuple delivery path exactly.
      message.element =
          StreamElement::OfTuple(staged.tuple(0), staged.timestamp(0));
    } else {
      message.batch = std::make_shared<TupleBatch>(std::move(staged));
    }
    staged.Clear();  // moved-from state resets to a valid empty batch
    target.queue.Push(std::move(message));
  }
  worker.emit_buffered = 0;
}

size_t ParallelExecutor::RouteShard(OpGroup& group, size_t input,
                                    const Tuple& tuple) {
  if (group.num_shards <= 1) return 0;
  const uint64_t h = group.spec.KeyHash(input, tuple);
  if (group.slot_routed != nullptr) {
    group.slot_routed[ShardMap::SlotOf(h)].fetch_add(
        1, std::memory_order_relaxed);
  }
  return group.shard_map.ShardOf(h);
}

void ParallelExecutor::NotePressure(Worker& target, uint64_t routed) {
  if (!track_pressure_) return;
  target.routed.fetch_add(routed, std::memory_order_relaxed);
  // Same racy-but-useful stall heuristic as the obs counter: a full
  // reading here means the blocking push almost certainly waited.
  if (target.queue.size() >= target.queue.capacity()) {
    target.stalls.fetch_add(1, std::memory_order_relaxed);
  }
}

bool ParallelExecutor::RouteTuple(OpGroup& group, size_t input,
                                  const StreamElement& element) {
  size_t shard = RouteShard(group, input, element.tuple);
  Worker& target = *workers_[group.first_worker + shard];
  NotePressure(target, 1);
  OpMessage message{PipelineMarker::kNone, input, element, 0};
  if (obs::kCompiled && obs_ != nullptr) {
    message.enqueue_ns = obs::NowNs();
    target.obs->IncRouted();
    // Stall heuristic: the size check is racy against the consumer,
    // but a full reading here means the blocking Push below almost
    // certainly waited — good enough for a backpressure counter.
    if (target.queue.size() >= target.queue.capacity()) {
      target.obs->IncStall();
    }
  }
  return target.queue.Push(std::move(message));
}

bool ParallelExecutor::Broadcast(OpGroup& group, size_t input,
                                 const StreamElement& element) {
  // Holding broadcast_mu across the (possibly blocking) pushes is
  // deadlock-free: consumers of these queues never take this mutex —
  // they only take their *parent* group's, and the plan is a tree, so
  // the wait chain ends at the root sink, which always accepts.
  std::lock_guard<std::mutex> lock(group.broadcast_mu);
  bool ok = true;
  for (size_t s = 0; s < group.num_shards; ++s) {
    Worker& target = *workers_[group.first_worker + s];
    OpMessage message{PipelineMarker::kNone, input, element, 0};
    if (obs::kCompiled && obs_ != nullptr) {
      message.enqueue_ns = obs::NowNs();
      if (target.queue.size() >= target.queue.capacity()) {
        target.obs->IncStall();
      }
    }
    ok &= target.queue.Push(std::move(message));
  }
  return ok;
}

void ParallelExecutor::WorkerLoop(size_t index) {
  Worker& worker = *workers_[index];
  while (true) {
    // Batched pop: one lock acquisition per burst (see
    // BoundedQueue::PopAll), and the timestamp merge below sees as
    // much context as possible.
    std::optional<std::deque<OpMessage>> batch = worker.queue.PopAll();
    if (!batch.has_value()) break;  // closed and fully drained
    if (obs::kCompiled && worker.obs != nullptr) {
      worker.obs->RecordQueueBatch(batch->size());
    }

    // Barriers in this batch. The handshake admits at most one
    // outstanding barrier per worker (the driver waits for acks before
    // issuing the next), but the counting stays general. All kinds
    // require processing everything queued before the marker; they
    // differ only in the action run before the ack: drains sweep,
    // rechecks re-evaluate pending propagations, checkpoints do
    // nothing (pure quiescence so the driver can observe state).
    size_t barriers = 0;
    size_t drains = 0;
    bool recheck = false;
    int64_t barrier_ts = 0;
    for (OpMessage& m : *batch) {
      if (m.marker != PipelineMarker::kNone) {
        ++barriers;
        barrier_ts = m.element.timestamp;
        if (m.marker == PipelineMarker::kDrain) ++drains;
        if (m.marker == PipelineMarker::kRecheck) recheck = true;
      } else {
        worker.pending[m.input].push_back(std::move(m));
      }
    }

    ProcessPending(worker);

    if (drains > 0) {
      worker.op->Sweep(barrier_ts);
      SampleHighWater();
      if (obs::kCompiled && worker.obs != nullptr) {
        worker.obs->Note(obs::TraceKind::kDrain, drains);
      }
    }
    if (recheck) {
      // Restore phase 2: runs on this worker thread so re-emitted
      // punctuations flow through the normal aligner/queue path.
      worker.op->RecheckPropagations(barrier_ts);
      SampleHighWater();
    }
    // Flush staged downstream emits at every batch boundary — and,
    // crucially, *before* acking a barrier: the barrier contract
    // promises that everything this shard will ever emit for the
    // barriered epoch is already in the parent's queues when the ack
    // lands.
    FlushEmits(worker);
    if (barriers > 0 && config_.adaptive_batch && !worker.emit_buf.empty()) {
      // Per-operator adaptive batch: with the staging flushed, retune
      // this worker's emit threshold from its operator's probe-run
      // delta (worker-owned state on the worker's own thread). A
      // migration swaps in a fresh operator whose stats restart at
      // zero, so a shrinking total just resets the baseline.
      const TupleStore::ProbeRunStats total = worker.op->ProbeRunStatsTotal();
      if (total.rows < worker.adapt_rows_seen ||
          total.runs < worker.adapt_runs_seen) {
        worker.adapt_rows_seen = total.rows;
        worker.adapt_runs_seen = total.runs;
      } else {
        const uint64_t rows = total.rows - worker.adapt_rows_seen;
        const uint64_t runs = total.runs - worker.adapt_runs_seen;
        worker.adapt_rows_seen = total.rows;
        worker.adapt_runs_seen = total.runs;
        const size_t target =
            AdaptiveBatchTarget(rows, runs, worker.emit_threshold);
        if (target != worker.emit_threshold) {
          worker.emit_threshold = target;
          for (TupleBatch& b : worker.emit_buf) b = TupleBatch(target);
        }
      }
    }
    if (barriers > 0) {
      {
        std::lock_guard<std::mutex> lock(worker.mu);
        worker.drains_done += barriers;
      }
      worker.drained_cv.notify_all();
    }
  }
  // Shutdown: deliver what was already buffered locally (downstream
  // pushes may fail once their queues close; that is fine, Stop() is
  // the non-graceful path).
  ProcessPending(worker);
  FlushEmits(worker);
}

void ParallelExecutor::ProcessPending(Worker& worker) {
  // Deliver buffered elements in ascending timestamp order across
  // inputs (ties: lowest input index). Per-input order is preserved by
  // the FIFO buffers; the cross-input ordering is best-effort only —
  // an empty buffer is never waited on.
  while (true) {
    size_t best = kNone;
    int64_t best_ts = 0;
    for (size_t i = 0; i < worker.pending.size(); ++i) {
      if (worker.pending[i].empty()) continue;
      int64_t ts = OrderTs(worker.pending[i].front());
      if (best == kNone || ts < best_ts) {
        best = i;
        best_ts = ts;
      }
    }
    if (best == kNone) return;
    OpMessage message = std::move(worker.pending[best].front());
    worker.pending[best].pop_front();
    Deliver(worker, message);
  }
}

void ParallelExecutor::Deliver(Worker& worker, const OpMessage& message) {
  if (message.batch != nullptr) {
    // Whole-batch delivery: one PushBatch call, and per-batch
    // observation sampling — a single clock read closes the latency
    // sample for every row (recorded as the per-tuple mean) and one
    // ring event carries the batch's result count.
    TupleBatch& batch = *message.batch;
    if (obs::kCompiled && worker.obs != nullptr) {
      const uint64_t results_before =
          worker.op->metrics().results_emitted.load(std::memory_order_relaxed);
      worker.op->PushBatch(message.input, batch);
      const int64_t now = obs::NowNs();
      if (message.enqueue_ns != 0 && !batch.empty()) {
        worker.obs->RecordLatencyNs((now - message.enqueue_ns) /
                                    static_cast<int64_t>(batch.size()));
      }
      worker.obs->NoteAt(
          now, obs::TraceKind::kTupleIn, message.input,
          worker.op->metrics().results_emitted.load(
              std::memory_order_relaxed) -
              results_before);
    } else {
      worker.op->PushBatch(message.input, batch);
    }
    SampleHighWater();
    return;
  }
  const StreamElement& element = message.element;
  if (element.is_tuple()) {
    if (obs::kCompiled && worker.obs != nullptr) {
      const uint64_t results_before =
          worker.op->metrics().results_emitted.load(std::memory_order_relaxed);
      worker.op->PushTuple(message.input, element.tuple, element.timestamp);
      // Latency sample: pipeline-edge enqueue -> processed by this
      // shard (queue wait + reorder buffering + the operator's own
      // work). One clock read covers both the sample and the trace.
      const int64_t now = obs::NowNs();
      if (message.enqueue_ns != 0) {
        worker.obs->RecordLatencyNs(now - message.enqueue_ns);
      }
      worker.obs->NoteAt(
          now, obs::TraceKind::kTupleIn, message.input,
          worker.op->metrics().results_emitted.load(
              std::memory_order_relaxed) -
              results_before);
    } else {
      worker.op->PushTuple(message.input, element.tuple, element.timestamp);
    }
  } else {
    worker.op->PushPunctuation(message.input, element.punctuation,
                               element.timestamp);
  }
  SampleHighWater();
}

void ParallelExecutor::SampleHighWater() {
  size_t tuples = 0;
  size_t puncts = 0;
  for (const auto& group : groups_) {
    size_t group_puncts = 0;
    for (size_t s = 0; s < group->num_shards; ++s) {
      const MJoinOperator& op = *operators_[group->first_worker + s];
      for (size_t i = 0; i < op.num_inputs(); ++i) {
        tuples += op.state_metrics(i).live.load(std::memory_order_relaxed);
      }
      // Punctuations are broadcast: every shard holds the full store,
      // so the logical count is the max over shards, not the sum.
      group_puncts = std::max(
          group_puncts,
          op.metrics().punctuations_live.load(std::memory_order_relaxed));
    }
    puncts += group_puncts;
  }
  internal::AtomicMax(tuple_high_water_, tuples);
  internal::AtomicMax(punct_high_water_, puncts);
}

Status ParallelExecutor::Push(const TraceEvent& event) {
  auto idx = query_.StreamIndex(event.stream);
  if (!idx.has_value()) {
    return Status::NotFound(
        StrCat("stream '", event.stream, "' not part of ", query_.ToString()));
  }
  auto [group_idx, input] = leaf_route_[*idx];
  if (group_idx == kNone) {
    return Status::Internal(
        StrCat("stream '", event.stream, "' has no leaf route"));
  }
  OpGroup& group = *groups_[group_idx];
  if (event.element.is_tuple() && config_.batch_size > 1) {
    // Batched ingestion: accumulate the run, flush on stream change /
    // full batch. The tuple is accepted into the buffer now; a flush
    // that fails later means Stop() closed the pipeline.
    if (!ingest_batch_.empty() && ingest_stream_ != *idx) {
      if (!FlushIngest()) {
        return Status::FailedPrecondition("parallel executor is stopped");
      }
    }
    ingest_stream_ = *idx;
    ingest_batch_.Append(event.element.tuple, event.element.timestamp);
    NoteProgress(*idx, event.element.timestamp);
    if (ingest_batch_.full() && !FlushIngest()) {
      return Status::FailedPrecondition("parallel executor is stopped");
    }
    return Status::OK();
  }
  if (!event.element.is_tuple() && !FlushIngest()) {
    return Status::FailedPrecondition("parallel executor is stopped");
  }
  bool ok = event.element.is_tuple()
                ? RouteTuple(group, input, event.element)
                : Broadcast(group, input, event.element);
  if (!ok) {
    return Status::FailedPrecondition("parallel executor is stopped");
  }
  NoteProgress(*idx, event.element.timestamp);
  if (!event.element.is_tuple()) {
    MaybeAutoCheckpoint(event.element.timestamp);
    MaybeRebalance(event.element.timestamp);
  }
  return Status::OK();
}

bool ParallelExecutor::FlushIngest() {
  if (ingest_batch_.empty()) return true;
  auto [group_idx, input] = leaf_route_[ingest_stream_];
  OpGroup& group = *groups_[group_idx];
  bool ok = true;
  if (group.num_shards > 1) {
    // Single-pass scatter into per-shard sub-batches (routed through
    // the group's ShardMap, counting slot loads for the rebalancer in
    // the same pass), then one queue message per non-empty shard.
    ScatterBatch(group.spec, group.shard_map, input, ingest_batch_,
                 group.num_shards, &scatter_scratch_,
                 group.slot_routed.get());
    for (size_t s = 0; s < group.num_shards; ++s) {
      if (scatter_scratch_[s].empty()) continue;
      ok &= PushIngestBatch(group, s, input, &scatter_scratch_[s]);
    }
  } else {
    ok = PushIngestBatch(group, 0, input, &ingest_batch_);
  }
  ingest_batch_.Clear();
  return ok;
}

bool ParallelExecutor::PushIngestBatch(OpGroup& group, size_t shard,
                                       size_t input, TupleBatch* batch) {
  Worker& target = *workers_[group.first_worker + shard];
  NotePressure(target, batch->size());
  OpMessage message;
  message.input = input;
  if (obs::kCompiled && obs_ != nullptr) {
    message.enqueue_ns = obs::NowNs();
    target.obs->IncRouted(batch->size());
    if (target.queue.size() >= target.queue.capacity()) {
      target.obs->IncStall();
    }
  }
  if (batch->size() == 1) {
    // Scatter can strand a single row on a shard; it rides as a plain
    // element message (same delivery path as batch_size == 1).
    message.element =
        StreamElement::OfTuple(batch->tuple(0), batch->timestamp(0));
  } else {
    message.batch = std::make_shared<TupleBatch>(std::move(*batch));
  }
  batch->Clear();
  return target.queue.Push(std::move(message));
}

void ParallelExecutor::PushTuple(size_t stream, const Tuple& tuple,
                                 int64_t ts) {
  if (config_.batch_size > 1) {
    if (!ingest_batch_.empty() && ingest_stream_ != stream) {
      if (!FlushIngest()) return;
    }
    ingest_stream_ = stream;
    ingest_batch_.Append(tuple, ts);
    NoteProgress(stream, ts);
    if (ingest_batch_.full()) FlushIngest();
    return;
  }
  auto [group_idx, input] = leaf_route_[stream];
  if (RouteTuple(*groups_[group_idx], input,
                 StreamElement::OfTuple(tuple, ts))) {
    NoteProgress(stream, ts);
  }
}

void ParallelExecutor::PushPunctuation(size_t stream,
                                       const Punctuation& punctuation,
                                       int64_t ts) {
  // Batch-boundary ordering: buffered tuples reach the shard queues
  // before the punctuation is broadcast.
  if (!FlushIngest()) return;
  auto [group_idx, input] = leaf_route_[stream];
  if (Broadcast(*groups_[group_idx], input,
                StreamElement::OfPunctuation(punctuation, ts))) {
    NoteProgress(stream, ts);
    MaybeAutoCheckpoint(ts);
    MaybeRebalance(ts);
  }
}

void ParallelExecutor::NoteProgress(size_t stream, int64_t ts) {
  InputProgress& p = progress_[stream];
  ++p.events_consumed;
  p.watermark_ts = std::max(p.watermark_ts, ts);
}

void ParallelExecutor::MaybeAutoCheckpoint(int64_t ts) {
  if (config_.checkpoint.interval_punctuations == 0) return;
  if (++punctuations_since_checkpoint_ <
      config_.checkpoint.interval_punctuations) {
    return;
  }
  punctuations_since_checkpoint_ = 0;
  if (config_.checkpoint.path.empty()) return;
  Result<StateSnapshot> snap = Checkpoint(ts);
  Status status = snap.ok()
                      ? WriteSnapshotFile(*snap, config_.checkpoint.path)
                      : snap.status();
  if (!status.ok()) {
    PUNCTSAFE_LOG(Warning) << "automatic checkpoint to '"
                           << config_.checkpoint.path
                           << "' failed: " << status.ToString();
  }
}

Status ParallelExecutor::BarrierAll(PipelineMarker marker, int64_t now) {
  if (stopped_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("parallel executor is stopped");
  }
  // The barrier contract covers everything pushed so far — including
  // tuples still sitting in the driver's ingest buffer.
  if (!FlushIngest()) {
    return Status::FailedPrecondition("parallel executor is stopped");
  }
  // Leaves-first (groups_ is post-order, children before parents):
  // once every shard of operator j's children has acked its marker,
  // every element they will ever emit is already in j's shard queues,
  // so j's markers are provably last and their acks mean the whole
  // group is caught up (and swept / rechecked, per marker kind).
  // Markers go through Broadcast-style pushes under broadcast_mu so
  // they order consistently against punctuation broadcasts.
  for (size_t j = 0; j < groups_.size(); ++j) {
    OpGroup& group = *groups_[j];
    std::vector<uint64_t> targets(group.num_shards);
    for (size_t s = 0; s < group.num_shards; ++s) {
      targets[s] = ++workers_[group.first_worker + s]->drains_requested;
    }
    {
      std::lock_guard<std::mutex> lock(group.broadcast_mu);
      for (size_t s = 0; s < group.num_shards; ++s) {
        OpMessage message;
        message.marker = marker;
        message.element.timestamp = now;
        if (!workers_[group.first_worker + s]->queue.Push(
                std::move(message))) {
          return Status::FailedPrecondition("parallel executor is stopped");
        }
      }
    }
    for (size_t s = 0; s < group.num_shards; ++s) {
      Worker& worker = *workers_[group.first_worker + s];
      std::unique_lock<std::mutex> lock(worker.mu);
      worker.drained_cv.wait(
          lock, [&] { return worker.drains_done >= targets[s]; });
    }
  }
  return Status::OK();
}

Status ParallelExecutor::Drain(int64_t now) {
  PUNCTSAFE_RETURN_IF_ERROR(BarrierAll(PipelineMarker::kDrain, now));
  // Quiescent: worker operator state is published to this thread by
  // the barrier acks, so the driver can retune its ingest batch from
  // the observed probe-run structure.
  MaybeAdaptIngest();
  return Status::OK();
}

Result<StateSnapshot> ParallelExecutor::Checkpoint(int64_t now) {
  // After the barrier every worker has processed everything queued
  // ahead of its marker and is parked on an empty queue; the ack under
  // worker.mu publishes its operator mutations to this thread, so the
  // driver can read shard state directly.
  PUNCTSAFE_RETURN_IF_ERROR(BarrierAll(PipelineMarker::kCheckpoint, now));
  StateSnapshot snap;
  snap.fingerprint = PlanFingerprint(query_, shape_);
  snap.progress = progress_;
  snap.num_results = num_results();
  snap.results = kept_results();
  snap.tuple_high_water = tuple_high_water();
  snap.punct_high_water = punctuation_high_water();
  snap.operators.reserve(groups_.size());
  for (const auto& group : groups_) {
    // Fold the shard captures into the logical operator's snapshot —
    // the same monoid the split/merge laws are stated over, so a
    // K-shard checkpoint equals the serial executor's byte-for-byte
    // once canonicalized.
    OperatorStateSnapshot merged =
        operators_[group->first_worker]->CaptureState();
    for (size_t s = 1; s < group->num_shards; ++s) {
      merged = MergeOperatorSnapshots(
          merged, operators_[group->first_worker + s]->CaptureState());
    }
    snap.operators.push_back(std::move(merged));
  }
  CanonicalizeSnapshot(&snap);
  return snap;
}

Status ParallelExecutor::RestoreState(const StateSnapshot& snapshot) {
  if (stopped_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("parallel executor is stopped");
  }
  if (snapshot.fingerprint != PlanFingerprint(query_, shape_)) {
    return Status::InvalidArgument(
        StrCat("snapshot fingerprint '", snapshot.fingerprint,
               "' does not match this plan '",
               PlanFingerprint(query_, shape_), "'"));
  }
  if (snapshot.operators.size() != groups_.size()) {
    return Status::InvalidArgument(
        StrCat("snapshot has ", snapshot.operators.size(),
               " operators but the plan has ", groups_.size()));
  }
  // Phase 1: rebuild each shard's state directly from the driver
  // thread. The fresh-executor contract means nothing has been queued,
  // so every worker is parked in PopAll and never touches its operator
  // concurrently; the phase-2 barrier's queue pushes publish these
  // writes to the worker threads.
  for (size_t j = 0; j < groups_.size(); ++j) {
    PUNCTSAFE_RETURN_IF_ERROR(
        RestoreGroupFromLogical(*groups_[j], snapshot.operators[j]));
  }
  progress_ = snapshot.progress;
  progress_.resize(query_.num_streams());
  num_results_.store(snapshot.num_results, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(results_mu_);
    kept_results_ = snapshot.results;
  }
  tuple_high_water_.store(snapshot.tuple_high_water,
                          std::memory_order_relaxed);
  punct_high_water_.store(snapshot.punct_high_water,
                          std::memory_order_relaxed);
  // Phase 2: pending propagations were replicated to every shard, but
  // a shard that had already cleared (and voted at the aligner) before
  // the snapshot must re-emit — the crash discarded its vote. The
  // recheck barrier runs on the worker threads, leaves-first, so those
  // re-emissions flow through the normal aligner/queue path and the
  // aligner completes exactly once when the last shard clears during
  // replay (docs/RECOVERY.md).
  int64_t now = 0;
  for (const InputProgress& p : progress_) {
    now = std::max(now, p.watermark_ts);
  }
  return BarrierAll(PipelineMarker::kRecheck, now);
}

Status ParallelExecutor::RestoreGroupFromLogical(
    OpGroup& group, const OperatorStateSnapshot& logical) {
  const size_t num_inputs = operators_[group.first_worker]->num_inputs();
  if (logical.inputs.size() != num_inputs) {
    return Status::InvalidArgument(
        StrCat("snapshot operator has ", logical.inputs.size(),
               " inputs but the operator has ", num_inputs));
  }
  // Split the logical snapshot across the group's shards: tuples by
  // the group's ShardMap over the partition-key hash (the same route
  // live tuples take, so restored and replayed tuples agree on their
  // shard), punctuations / pending / sweep counters replicated
  // (broadcast state — every shard holds the full set), summed
  // counters and result credits on shard 0 only.
  std::vector<OperatorStateSnapshot> pieces(group.num_shards);
  for (size_t s = 0; s < group.num_shards; ++s) {
    OperatorStateSnapshot& piece = pieces[s];
    piece.inputs.resize(num_inputs);
    piece.pending = logical.pending;
    piece.punctuations_purged = logical.punctuations_purged;
    piece.punctuations_since_sweep = logical.punctuations_since_sweep;
    piece.op_metrics = logical.op_metrics;
    if (s != 0) {
      piece.op_metrics.results_emitted = 0;
      piece.op_metrics.removability_checks = 0;
    }
    for (size_t k = 0; k < num_inputs; ++k) {
      piece.inputs[k].punctuations = logical.inputs[k].punctuations;
      if (s == 0) {
        piece.inputs[k].state_metrics = logical.inputs[k].state_metrics;
        piece.inputs[k].state_metrics.live = 0;  // recomputed below
      }
    }
  }
  for (size_t k = 0; k < num_inputs; ++k) {
    for (const Tuple& tuple : logical.inputs[k].tuples) {
      size_t target =
          group.num_shards > 1
              ? group.shard_map.ShardOf(group.spec.KeyHash(k, tuple))
              : 0;
      pieces[target].inputs[k].tuples.push_back(tuple);
      pieces[target].inputs[k].state_metrics.live += 1;
    }
    // Gauge drift (a hand-edited snapshot whose live gauge disagrees
    // with its tuple list) lands on shard 0, mirroring SplitSnapshot.
    const uint64_t listed = logical.inputs[k].tuples.size();
    if (logical.inputs[k].state_metrics.live > listed) {
      pieces[0].inputs[k].state_metrics.live +=
          logical.inputs[k].state_metrics.live - listed;
    }
  }
  for (size_t s = 0; s < group.num_shards; ++s) {
    PUNCTSAFE_RETURN_IF_ERROR(
        operators_[group.first_worker + s]->RestoreState(pieces[s]));
  }
  return Status::OK();
}

void ParallelExecutor::MaybeRebalance(int64_t ts) {
  if (!config_.rebalance.enabled ||
      config_.rebalance.interval_punctuations == 0) {
    return;
  }
  if (++punctuations_since_rebalance_ <
      config_.rebalance.interval_punctuations) {
    return;
  }
  punctuations_since_rebalance_ = 0;
  Status status = RebalancePass(ts, /*target_active=*/0, /*force=*/false);
  if (!status.ok()) {
    PUNCTSAFE_LOG(Warning) << "automatic shard rebalance failed: "
                           << status.ToString();
  }
}

Status ParallelExecutor::RebalanceNow(int64_t now) {
  if (!config_.rebalance.enabled) {
    return Status::FailedPrecondition(
        "RebalanceNow requires ExecutorConfig::rebalance.enabled "
        "(the routed-load counters do not exist otherwise)");
  }
  return RebalancePass(now, /*target_active=*/0, /*force=*/true);
}

Status ParallelExecutor::ResizeShards(size_t active, int64_t now) {
  if (!config_.rebalance.enabled) {
    return Status::FailedPrecondition(
        "ResizeShards requires ExecutorConfig::rebalance.enabled");
  }
  if (active == 0) {
    return Status::InvalidArgument("ResizeShards: active must be >= 1");
  }
  return RebalancePass(now, active, /*force=*/true);
}

Status ParallelExecutor::RebalancePass(int64_t now, size_t target_active,
                                       bool force) {
  // Plan first from the driver-visible counters (relaxed reads are
  // fine: the plan is heuristic; the authoritative state move happens
  // under the barrier). Nothing pays for a barrier unless some group
  // actually wants to move.
  struct PlannedMigration {
    size_t group = 0;
    std::vector<uint32_t> assignment;
    size_t active = 0;
  };
  std::vector<PlannedMigration> plan;
  for (size_t j = 0; j < groups_.size(); ++j) {
    OpGroup& group = *groups_[j];
    if (group.num_shards <= 1 || group.slot_routed == nullptr) continue;
    const size_t current_active = group.shard_map.num_shards();
    size_t active = target_active == 0
                        ? current_active
                        : std::min(target_active, group.num_shards);

    // Load deltas since the last pass, per slot and per active shard.
    std::vector<uint64_t> slot_delta(ShardMap::kNumSlots, 0);
    uint64_t routed_delta = 0;
    for (size_t i = 0; i < ShardMap::kNumSlots; ++i) {
      const uint64_t total =
          group.slot_routed[i].load(std::memory_order_relaxed);
      slot_delta[i] = total - group.slot_base[i];
      routed_delta += slot_delta[i];
    }
    uint64_t stall_total = 0;
    for (size_t s = 0; s < group.num_shards; ++s) {
      stall_total += workers_[group.first_worker + s]->stalls.load(
          std::memory_order_relaxed);
    }
    const uint64_t stall_delta = stall_total - group.stall_base;

    if (!force) {
      if (routed_delta < config_.rebalance.min_routed) continue;
      // Backoff: a recent migration means this window's loads were
      // shaped by the old assignment anyway — consume the window and
      // sit it out.
      if (group.rebalance_cooldown > 0) {
        --group.rebalance_cooldown;
        for (size_t i = 0; i < ShardMap::kNumSlots; ++i) {
          group.slot_base[i] += slot_delta[i];
        }
        group.stall_base = stall_total;
        continue;
      }
      std::vector<uint64_t> shard_delta(current_active, 0);
      for (size_t i = 0; i < ShardMap::kNumSlots; ++i) {
        shard_delta[group.shard_map.shard_of_slot(i)] += slot_delta[i];
      }
      const double skew = LoadSkew(shard_delta);
      // Auto-grow: chronic queue stalls mean the active set is
      // compute-bound, not just imbalanced — activate headroom.
      const bool grow = config_.rebalance.grow_stall_threshold > 0 &&
                        stall_delta >= config_.rebalance.grow_stall_threshold &&
                        active < group.num_shards;
      if (grow) {
        ++active;
      } else if (skew < config_.rebalance.skew_threshold) {
        // Balanced enough: consume the window so the next check looks
        // at fresh traffic only, and forgive past drift.
        group.rebalance_backoff = 1;
        for (size_t i = 0; i < ShardMap::kNumSlots; ++i) {
          group.slot_base[i] += slot_delta[i];
        }
        group.stall_base = stall_total;
        continue;
      }
    }

    std::vector<uint32_t> assignment = ComputeShardAssignment(
        routed_delta > 0 ? slot_delta
                         : std::vector<uint64_t>(ShardMap::kNumSlots, 1),
        active);
    // Consume the load window regardless of whether the assignment
    // actually changes.
    for (size_t i = 0; i < ShardMap::kNumSlots; ++i) {
      group.slot_base[i] += slot_delta[i];
    }
    group.stall_base = stall_total;
    if (assignment == group.shard_map.slots() &&
        active == current_active) {
      continue;
    }
    if (!force && config_.rebalance.max_backoff_windows > 0) {
      group.rebalance_cooldown = group.rebalance_backoff;
      group.rebalance_backoff = std::min(
          group.rebalance_backoff * 2, config_.rebalance.max_backoff_windows);
    }
    plan.push_back({j, std::move(assignment), active});
  }
  if (plan.empty()) return Status::OK();

  // Quiesce the whole pipeline (kMigrate: pure barrier, no sweep —
  // migration must observe state, not change it), move the planned
  // groups, then rebuild aligner votes with a recheck barrier exactly
  // as checkpoint restore does.
  PUNCTSAFE_RETURN_IF_ERROR(BarrierAll(PipelineMarker::kMigrate, now));
  for (PlannedMigration& m : plan) {
    PUNCTSAFE_RETURN_IF_ERROR(
        MigrateGroup(m.group, std::move(m.assignment), m.active));
  }
  return BarrierAll(PipelineMarker::kRecheck, now);
}

Status ParallelExecutor::MigrateGroup(size_t group_idx,
                                      std::vector<uint32_t> assignment,
                                      size_t active) {
  OpGroup& group = *groups_[group_idx];
  // Capture every allocated shard (workers are parked at the kMigrate
  // barrier; the acks published their state to this thread) and fold
  // into the logical operator snapshot — the same monoid checkpoint
  // uses, so migration is literally Merge then Split.
  OperatorStateSnapshot logical =
      operators_[group.first_worker]->CaptureState();
  for (size_t s = 1; s < group.num_shards; ++s) {
    logical = MergeOperatorSnapshots(
        logical, operators_[group.first_worker + s]->CaptureState());
  }
  // The merged high-water is the sum of the replicas' marks — a sound
  // upper bound for one restore, but repeated migrations would seed
  // each capture with the previous sum and compound it without bound.
  // At a migration point the state is exactly the live tuples, so the
  // mark restarts there.
  for (InputStateSnapshot& input : logical.inputs) {
    input.state_metrics.high_water =
        std::max<uint64_t>(input.tuples.size(), input.state_metrics.live);
  }

  // Count the tuples whose owning shard changes under the new
  // assignment before installing it.
  uint64_t moved = 0;
  for (size_t k = 0; k < logical.inputs.size(); ++k) {
    for (const Tuple& tuple : logical.inputs[k].tuples) {
      const uint64_t h = group.spec.KeyHash(k, tuple);
      if (assignment[ShardMap::SlotOf(h)] != group.shard_map.ShardOf(h)) {
        ++moved;
      }
    }
  }

  PUNCTSAFE_RETURN_IF_ERROR(
      group.shard_map.Apply(std::move(assignment), active));

  // Fresh operator replicas (MJoinOperator::RestoreState requires a
  // freshly created operator), rewired exactly as Create wires them.
  // Swapping worker.op / operators_ is safe: every worker of every
  // group is parked in PopAll, and the next queue push publishes the
  // new pointers.
  ParallelExecutor* raw = this;
  for (size_t s = 0; s < group.num_shards; ++s) {
    PUNCTSAFE_ASSIGN_OR_RETURN(
        std::unique_ptr<MJoinOperator> op,
        MJoinOperator::Create(query_, group.node_inputs, config_.mjoin));
    const size_t w = group.first_worker + s;
    op->SetEmitter([raw, group_idx, s](const StreamElement& e) {
      raw->EmitFromShard(group_idx, s, e);
    });
    if (config_.batch_size > 1) {
      op->SetBatchEmitter([raw, group_idx, s](TupleBatch& b) {
        raw->EmitBatchFromShard(group_idx, s, b);
      });
    }
    if (workers_[w]->obs != nullptr) op->SetObserver(workers_[w]->obs);
    workers_[w]->op = op.get();
    operators_[w] = std::move(op);
  }
  PUNCTSAFE_RETURN_IF_ERROR(RestoreGroupFromLogical(group, logical));
  // Votes recorded under the old assignment are stale (a shard's
  // matching state just changed under it); the caller's kRecheck
  // barrier rebuilds them from the restored pending propagations.
  group.aligner.Reset();
  rebalance_migrations_.fetch_add(1, std::memory_order_relaxed);
  rebalance_tuples_moved_.fetch_add(moved, std::memory_order_relaxed);
  return Status::OK();
}

void ParallelExecutor::MaybeAdaptIngest() {
  if (!config_.adaptive_batch) return;
  uint64_t rows = 0;
  uint64_t runs = 0;
  for (const auto& op : operators_) {
    const TupleStore::ProbeRunStats total = op->ProbeRunStatsTotal();
    rows += total.rows;
    runs += total.runs;
  }
  // Migrations replace operators (stats restart at zero); treat a
  // shrinking total as a fresh baseline.
  if (rows < adapt_rows_seen_ || runs < adapt_runs_seen_) {
    adapt_rows_seen_ = rows;
    adapt_runs_seen_ = runs;
    return;
  }
  const uint64_t d_rows = rows - adapt_rows_seen_;
  const uint64_t d_runs = runs - adapt_runs_seen_;
  adapt_rows_seen_ = rows;
  adapt_runs_seen_ = runs;
  const size_t target =
      AdaptiveBatchTarget(d_rows, d_runs, ingest_batch_.capacity());
  if (target != ingest_batch_.capacity() && ingest_batch_.empty()) {
    ingest_batch_ = TupleBatch(target);
  }
}

void ParallelExecutor::Stop() {
  if (stopped_.exchange(true)) return;
  for (auto& worker : workers_) worker->queue.Close();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

size_t ParallelExecutor::TotalLiveTuples() const {
  // Tuples partition across a group's shards (each stored exactly
  // once), so the plain sum is the logical total.
  size_t total = 0;
  for (const auto& op : operators_) {
    for (size_t i = 0; i < op->num_inputs(); ++i) {
      total += op->state_metrics(i).live.load(std::memory_order_relaxed);
    }
  }
  return total;
}

size_t ParallelExecutor::TotalLivePunctuations() const {
  size_t total = 0;
  for (const auto& group : groups_) {
    size_t group_puncts = 0;
    for (size_t s = 0; s < group->num_shards; ++s) {
      group_puncts = std::max(
          group_puncts, operators_[group->first_worker + s]
                            ->metrics()
                            .punctuations_live.load(std::memory_order_relaxed));
    }
    total += group_puncts;
  }
  return total;
}

std::vector<ParallelExecutor::OperatorGroupSnapshot>
ParallelExecutor::GroupSnapshots() const {
  std::vector<OperatorGroupSnapshot> out;
  out.reserve(groups_.size());
  for (const auto& group : groups_) {
    OperatorGroupSnapshot snap;
    snap.num_shards = group->num_shards;
    snap.partitioned = group->num_shards > 1;
    snap.partition_detail = group->spec.detail;
    snap.active_shards = group->shard_map.num_shards();
    snap.shard_map_version = group->shard_map.version();
    for (size_t s = 0; s < group->num_shards; ++s) {
      const MJoinOperator& op = *operators_[group->first_worker + s];
      StateMetricsSnapshot shard = op.AggregateStateSnapshot();
      snap.aggregate += shard;
      snap.shard_live.push_back(shard.live);
      snap.shard_high_water.push_back(shard.high_water);
      snap.punctuations_live =
          std::max(snap.punctuations_live,
                   op.metrics().punctuations_live.load(
                       std::memory_order_relaxed));
      if (track_pressure_) {
        const Worker& worker = *workers_[group->first_worker + s];
        snap.shard_routed.push_back(
            worker.routed.load(std::memory_order_relaxed));
        snap.shard_stalls.push_back(
            worker.stalls.load(std::memory_order_relaxed));
      }
    }
    if (!snap.shard_routed.empty()) {
      std::vector<uint64_t> active_routed(
          snap.shard_routed.begin(),
          snap.shard_routed.begin() +
              std::min(snap.active_shards, snap.shard_routed.size()));
      snap.skew = LoadSkew(active_routed);
    }
    out.push_back(std::move(snap));
  }
  return out;
}

obs::ObsSnapshot ParallelExecutor::ObservabilitySnapshot() const {
  obs::ObsSnapshot snap;
  snap.executor = "parallel";
  snap.simd_dispatch = simd::kDispatchName;
  snap.batch_size = config_.batch_size;
  snap.results = num_results();
  snap.live_tuples = TotalLiveTuples();
  snap.live_punctuations = TotalLivePunctuations();
  snap.tuple_high_water = tuple_high_water();
  snap.punctuation_high_water = punctuation_high_water();
  snap.rebalance_migrations = rebalance_migrations();
  snap.rebalance_tuples_moved = rebalance_tuples_moved();
  if (obs_ == nullptr) return snap;
  snap.operators.reserve(workers_.size());
  for (const auto& group : groups_) {
    const size_t aligner_pending = group->aligner.pending();
    const size_t aligner_hw = group->aligner.pending_high_water();
    double group_skew = 1.0;
    if (track_pressure_ && group->num_shards > 1) {
      std::vector<uint64_t> active_routed(group->shard_map.num_shards(), 0);
      for (size_t s = 0; s < active_routed.size(); ++s) {
        active_routed[s] = workers_[group->first_worker + s]->routed.load(
            std::memory_order_relaxed);
      }
      group_skew = LoadSkew(active_routed);
    }
    for (size_t s = 0; s < group->num_shards; ++s) {
      const size_t w = group->first_worker + s;
      obs::OperatorObsEntry entry;
      entry.CaptureFrom(*workers_[w]->obs);
      entry.num_shards = group->num_shards;
      entry.partitioned = group->num_shards > 1;
      entry.partition_detail = group->spec.detail;
      entry.active_shards = group->shard_map.num_shards();
      entry.shard_map_version = group->shard_map.version();
      entry.skew = group_skew;
      entry.state = operators_[w]->AggregateStateSnapshot();
      entry.op_metrics = operators_[w]->metrics().Snapshot();
      // Group-level gauges, replicated onto each shard entry (the
      // aligner is per group; consumers should read shard 0's).
      entry.aligner_pending = aligner_pending;
      entry.aligner_pending_high_water = aligner_hw;
      snap.operators.push_back(std::move(entry));
    }
  }
  return snap;
}

std::vector<Tuple> ParallelExecutor::kept_results() const {
  std::lock_guard<std::mutex> lock(results_mu_);
  return kept_results_;
}

std::vector<Tuple> ParallelExecutor::TakeResults() {
  std::lock_guard<std::mutex> lock(results_mu_);
  std::vector<Tuple> out = std::move(kept_results_);
  kept_results_.clear();
  return out;
}

Status FeedTraceParallel(ParallelExecutor* executor, const Trace& trace) {
  int64_t max_ts = 0;
  for (const TraceEvent& event : trace) {
    PUNCTSAFE_RETURN_IF_ERROR(executor->Push(event));
    if (event.element.timestamp > max_ts) max_ts = event.element.timestamp;
  }
  return executor->Drain(max_ts + 1);
}

}  // namespace punctsafe
