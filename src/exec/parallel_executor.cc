#include "exec/parallel_executor.h"

#include <condition_variable>
#include <deque>
#include <thread>
#include <utility>

#include "exec/bounded_queue.h"
#include "exec/operator_tree.h"
#include "util/string_util.h"

namespace punctsafe {

namespace {

constexpr size_t kNone = static_cast<size_t>(-1);

}  // namespace

// One message on an operator's input queue: a stream element tagged
// with the input it belongs to, or a drain marker (processed after
// everything queued before it; the pushing thread guarantees all
// producers are quiescent first).
struct OpMessage {
  bool drain = false;
  size_t input = 0;
  StreamElement element;
};

struct ParallelExecutor::Worker {
  explicit Worker(size_t queue_capacity) : queue(queue_capacity) {}

  MJoinOperator* op = nullptr;
  BoundedQueue<OpMessage> queue;
  // Per-input FIFO reorder buffers for the timestamp merge.
  std::vector<std::deque<StreamElement>> pending;
  std::thread thread;

  // Drain handshake. `drains_requested` is touched only by the driver
  // thread; `drains_done` is the worker's ack, published under `mu`.
  uint64_t drains_requested = 0;
  std::mutex mu;
  std::condition_variable drained_cv;
  uint64_t drains_done = 0;
};

Result<std::unique_ptr<ParallelExecutor>> ParallelExecutor::Create(
    const ContinuousJoinQuery& query, const SchemeSet& schemes,
    const PlanShape& shape, ExecutorConfig config) {
  PUNCTSAFE_ASSIGN_OR_RETURN(PlanSafetyReport safety,
                             CheckPlanSafety(query, schemes, shape));

  auto exec = std::unique_ptr<ParallelExecutor>(new ParallelExecutor());
  exec->query_ = query;
  exec->shape_ = shape;
  exec->config_ = config;
  exec->safety_ = std::move(safety);

  PUNCTSAFE_ASSIGN_OR_RETURN(
      OperatorTree tree,
      BuildOperatorTree(exec->query_, schemes, shape, config.mjoin));

  ParallelExecutor* raw = exec.get();
  exec->workers_.reserve(tree.operators.size());
  for (size_t j = 0; j < tree.operators.size(); ++j) {
    auto worker = std::make_unique<Worker>(config.queue_capacity);
    worker->op = tree.operators[j].get();
    worker->pending.resize(worker->op->num_inputs());
    exec->workers_.push_back(std::move(worker));
  }

  // Parallel wiring: a child's output is a blocking push onto the
  // parent's queue (executed on the child's worker thread). A false
  // return means Stop() closed the pipeline; the element is dropped.
  for (size_t j = 0; j < tree.operators.size(); ++j) {
    const OperatorTree::ParentEdge& edge = tree.parents[j];
    if (edge.parent_op == OperatorTree::ParentEdge::kNoParent) continue;
    Worker* parent = exec->workers_[edge.parent_op].get();
    size_t k = edge.parent_input;
    tree.operators[j]->SetEmitter([parent, k](const StreamElement& e) {
      parent->queue.Push(OpMessage{false, k, e});
    });
  }
  tree.root()->SetEmitter([raw](const StreamElement& e) {
    if (!e.is_tuple()) return;  // root punctuations reach the consumer app
    raw->num_results_.fetch_add(1, std::memory_order_relaxed);
    if (raw->config_.keep_results) {
      std::lock_guard<std::mutex> lock(raw->results_mu_);
      raw->kept_results_.push_back(e.tuple);
    }
  });

  exec->leaf_route_.assign(query.num_streams(), {kNone, 0});
  for (size_t s = 0; s < query.num_streams(); ++s) {
    exec->leaf_route_[s] = tree.leaf_route[s];
  }
  exec->operators_ = std::move(tree.operators);

  for (size_t j = 0; j < exec->workers_.size(); ++j) {
    exec->workers_[j]->thread =
        std::thread([raw, j] { raw->WorkerLoop(j); });
  }
  return exec;
}

ParallelExecutor::~ParallelExecutor() { Stop(); }

void ParallelExecutor::WorkerLoop(size_t index) {
  Worker& worker = *workers_[index];
  while (true) {
    std::optional<OpMessage> msg = worker.queue.Pop();
    if (!msg.has_value()) break;  // closed and fully drained

    bool drain = false;
    int64_t drain_ts = 0;
    auto handle = [&](OpMessage&& m) {
      if (m.drain) {
        drain = true;
        drain_ts = m.element.timestamp;
      } else {
        worker.pending[m.input].push_back(std::move(m.element));
      }
    };
    handle(std::move(*msg));
    // Opportunistically batch whatever else is already queued so the
    // timestamp merge below sees as much context as possible.
    while (std::optional<OpMessage> more = worker.queue.TryPop()) {
      handle(std::move(*more));
    }

    ProcessPending(worker);

    if (drain) {
      worker.op->Sweep(drain_ts);
      SampleHighWater();
      {
        std::lock_guard<std::mutex> lock(worker.mu);
        ++worker.drains_done;
      }
      worker.drained_cv.notify_all();
    }
  }
  // Shutdown: deliver what was already buffered locally (downstream
  // pushes may fail once their queues close; that is fine, Stop() is
  // the non-graceful path).
  ProcessPending(worker);
}

void ParallelExecutor::ProcessPending(Worker& worker) {
  // Deliver buffered elements in ascending timestamp order across
  // inputs (ties: lowest input index). Per-input order is preserved by
  // the FIFO buffers; the cross-input ordering is best-effort only —
  // an empty buffer is never waited on.
  while (true) {
    size_t best = kNone;
    int64_t best_ts = 0;
    for (size_t i = 0; i < worker.pending.size(); ++i) {
      if (worker.pending[i].empty()) continue;
      int64_t ts = worker.pending[i].front().timestamp;
      if (best == kNone || ts < best_ts) {
        best = i;
        best_ts = ts;
      }
    }
    if (best == kNone) return;
    StreamElement element = std::move(worker.pending[best].front());
    worker.pending[best].pop_front();
    Deliver(worker, best, element);
  }
}

void ParallelExecutor::Deliver(Worker& worker, size_t input,
                               const StreamElement& element) {
  if (element.is_tuple()) {
    worker.op->PushTuple(input, element.tuple, element.timestamp);
  } else {
    worker.op->PushPunctuation(input, element.punctuation,
                               element.timestamp);
  }
  SampleHighWater();
}

void ParallelExecutor::SampleHighWater() {
  size_t tuples = 0;
  size_t puncts = 0;
  for (const auto& op : operators_) {
    for (size_t i = 0; i < op->num_inputs(); ++i) {
      tuples += op->state_metrics(i).live.load(std::memory_order_relaxed);
    }
    puncts +=
        op->metrics().punctuations_live.load(std::memory_order_relaxed);
  }
  internal::AtomicMax(tuple_high_water_, tuples);
  internal::AtomicMax(punct_high_water_, puncts);
}

Status ParallelExecutor::Push(const TraceEvent& event) {
  auto idx = query_.StreamIndex(event.stream);
  if (!idx.has_value()) {
    return Status::NotFound(
        StrCat("stream '", event.stream, "' not part of ", query_.ToString()));
  }
  auto [op_index, input] = leaf_route_[*idx];
  if (op_index == kNone) {
    return Status::Internal(
        StrCat("stream '", event.stream, "' has no leaf route"));
  }
  if (!workers_[op_index]->queue.Push(OpMessage{false, input, event.element})) {
    return Status::FailedPrecondition("parallel executor is stopped");
  }
  return Status::OK();
}

void ParallelExecutor::PushTuple(size_t stream, const Tuple& tuple,
                                 int64_t ts) {
  auto [op_index, input] = leaf_route_[stream];
  workers_[op_index]->queue.Push(
      OpMessage{false, input, StreamElement::OfTuple(tuple, ts)});
}

void ParallelExecutor::PushPunctuation(size_t stream,
                                       const Punctuation& punctuation,
                                       int64_t ts) {
  auto [op_index, input] = leaf_route_[stream];
  workers_[op_index]->queue.Push(
      OpMessage{false, input, StreamElement::OfPunctuation(punctuation, ts)});
}

Status ParallelExecutor::Drain(int64_t now) {
  if (stopped_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("parallel executor is stopped");
  }
  // Leaves-first (operators_ is post-order, children before parents):
  // once operator j's children have acked their drain, every element
  // they will ever emit is already in j's queue, so j's marker is
  // provably last and its ack means j is fully caught up and swept.
  for (size_t j = 0; j < workers_.size(); ++j) {
    Worker& worker = *workers_[j];
    uint64_t target = ++worker.drains_requested;
    OpMessage marker;
    marker.drain = true;
    marker.element.timestamp = now;
    if (!worker.queue.Push(std::move(marker))) {
      return Status::FailedPrecondition("parallel executor is stopped");
    }
    std::unique_lock<std::mutex> lock(worker.mu);
    worker.drained_cv.wait(
        lock, [&] { return worker.drains_done >= target; });
  }
  return Status::OK();
}

void ParallelExecutor::Stop() {
  if (stopped_.exchange(true)) return;
  for (auto& worker : workers_) worker->queue.Close();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

size_t ParallelExecutor::TotalLiveTuples() const {
  size_t total = 0;
  for (const auto& op : operators_) {
    for (size_t i = 0; i < op->num_inputs(); ++i) {
      total += op->state_metrics(i).live.load(std::memory_order_relaxed);
    }
  }
  return total;
}

size_t ParallelExecutor::TotalLivePunctuations() const {
  size_t total = 0;
  for (const auto& op : operators_) {
    total +=
        op->metrics().punctuations_live.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<Tuple> ParallelExecutor::kept_results() const {
  std::lock_guard<std::mutex> lock(results_mu_);
  return kept_results_;
}

Status FeedTraceParallel(ParallelExecutor* executor, const Trace& trace) {
  int64_t max_ts = 0;
  for (const TraceEvent& event : trace) {
    PUNCTSAFE_RETURN_IF_ERROR(executor->Push(event));
    if (event.element.timestamp > max_ts) max_ts = event.element.timestamp;
  }
  return executor->Drain(max_ts + 1);
}

}  // namespace punctsafe
