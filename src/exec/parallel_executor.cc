#include "exec/parallel_executor.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <thread>
#include <utility>

#include "exec/bounded_queue.h"
#include "exec/operator_tree.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace punctsafe {

namespace {

constexpr size_t kNone = static_cast<size_t>(-1);

}  // namespace

// One message on a shard's input queue: a whole tuple batch OR a
// single stream element tagged with the input it belongs to, or a
// barrier marker (drain / checkpoint / recheck — processed after
// everything queued before it; the pushing thread guarantees all
// producers are quiescent first). Batches are the first-class hand-off
// unit (ExecutorConfig::batch_size): one queue operation moves the
// whole batch, and batches of one travel as plain elements so
// batch_size == 1 reproduces per-tuple execution exactly.
struct OpMessage {
  PipelineMarker marker = PipelineMarker::kNone;
  size_t input = 0;
  StreamElement element;
  // Whole-batch payload; when set, `element` is unused and the merge
  // ordering key is the batch's first row timestamp. shared_ptr keeps
  // the message copyable for the reorder deques; a batch still has
  // exactly one consumer at a time.
  std::shared_ptr<TupleBatch> batch;
  // Steady-clock stamp taken when the element entered the pipeline
  // edge (enqueue or emit-staging flush). Only populated while
  // observability is on; Deliver turns it into the consumer's latency
  // sample, so the measured latency covers queue wait + reorder
  // buffering + processing — for a batch, one stamp and one sample
  // (the per-tuple mean) cover every row. 0 when observability is off.
  int64_t enqueue_ns = 0;
};

namespace {

// Merge-ordering key: batches order by their first row's timestamp.
int64_t OrderTs(const OpMessage& m) {
  return m.batch != nullptr ? m.batch->first_timestamp()
                            : m.element.timestamp;
}

}  // namespace

// One shard worker: exclusive owner of one MJoinOperator replica.
struct ParallelExecutor::Worker {
  explicit Worker(size_t queue_capacity) : queue(queue_capacity) {}

  MJoinOperator* op = nullptr;
  BoundedQueue<OpMessage> queue;
  // Per-input FIFO reorder buffers for the timestamp merge (whole
  // messages, so the enqueue stamp survives buffering and the latency
  // sample charges reorder wait to this shard).
  std::vector<std::deque<OpMessage>> pending;
  std::thread thread;

  // This shard's observation point (null when observability is off).
  // The worker thread is the trace ring's single producer; producers
  // on other threads (router stalls) touch only its atomic counters.
  obs::OperatorObs* obs = nullptr;

  // Owning group index, and the downstream emit staging: result
  // tuples this shard produces are staged into one TupleBatch per
  // *parent* shard and flushed as one queue message per batch once
  // ExecutorConfig::batch_size rows are staged (the former hard-coded
  // kEmitFlushBatch = 128). Touched only by this worker's thread
  // (emits run inside op->Push*, on this thread); root-group workers
  // keep it empty. Flush-before-punctuation and flush-before-drain-ack
  // preserve the per-queue FIFO invariant that a punctuation never
  // overtakes the tuples it covers.
  size_t group = 0;
  std::vector<TupleBatch> emit_buf;
  size_t emit_buffered = 0;

  // Barrier handshake (drain / checkpoint / recheck markers all share
  // it). `drains_requested` is touched only by the driver thread;
  // `drains_done` is the worker's ack, published under `mu`.
  uint64_t drains_requested = 0;
  std::mutex mu;
  std::condition_variable drained_cv;
  uint64_t drains_done = 0;
};

// One logical operator: K contiguous shard workers behind a
// partitioning router, plus the output-punctuation merge barrier.
struct ParallelExecutor::OpGroup {
  OpGroup(size_t num_shards_in, PartitionSpec spec_in)
      : num_shards(num_shards_in),
        spec(std::move(spec_in)),
        aligner(num_shards_in) {}

  size_t first_worker = 0;  // index into workers_/operators_
  size_t num_shards = 1;
  PartitionSpec spec;
  // Serializes punctuation/drain broadcasts into this group so every
  // shard observes the same punctuation order (keeps the per-shard
  // punctuation stores identical; see docs/CONCURRENCY.md).
  std::mutex broadcast_mu;
  // Merge barrier for this group's *output* punctuations.
  PunctuationAligner aligner;
  // Parent wiring (kNone for the root group).
  size_t parent_group = kNone;
  size_t parent_input = 0;
};

Result<std::unique_ptr<ParallelExecutor>> ParallelExecutor::Create(
    const ContinuousJoinQuery& query, const SchemeSet& schemes,
    const PlanShape& shape, ExecutorConfig config) {
  PUNCTSAFE_ASSIGN_OR_RETURN(PlanSafetyReport safety,
                             CheckPlanSafety(query, schemes, shape));
  if (config.shards == 0) config.shards = 1;
  if (config.batch_size == 0) config.batch_size = 1;
  config.mjoin.arena = config.arena;

  auto exec = std::unique_ptr<ParallelExecutor>(new ParallelExecutor());
  exec->query_ = query;
  exec->shape_ = shape;
  exec->config_ = config;
  exec->safety_ = std::move(safety);
  exec->ingest_batch_ = TupleBatch(config.batch_size);

  PUNCTSAFE_ASSIGN_OR_RETURN(
      OperatorTree tree,
      BuildOperatorTree(exec->query_, schemes, shape, config.mjoin));

  ParallelExecutor* raw = exec.get();
  const size_t num_groups = tree.operators.size();
  for (size_t j = 0; j < num_groups; ++j) {
    PartitionSpec spec =
        ComputePartitionSpec(exec->query_, tree.node_inputs[j]);
    size_t shards = spec.partitionable ? config.shards : 1;
    auto group = std::make_unique<OpGroup>(shards, std::move(spec));
    group->first_worker = exec->workers_.size();
    for (size_t s = 0; s < shards; ++s) {
      std::unique_ptr<MJoinOperator> op;
      if (s == 0) {
        op = std::move(tree.operators[j]);
      } else {
        // Shard replicas: same inputs + config, so identical layouts,
        // purge plans, and propagatable signatures — only the stored
        // tuples differ (a key-disjoint slice each).
        PUNCTSAFE_ASSIGN_OR_RETURN(
            op, MJoinOperator::Create(exec->query_, tree.node_inputs[j],
                                      config.mjoin));
      }
      auto worker = std::make_unique<Worker>(config.queue_capacity);
      worker->op = op.get();
      worker->pending.resize(op->num_inputs());
      exec->operators_.push_back(std::move(op));
      exec->workers_.push_back(std::move(worker));
    }
    exec->groups_.push_back(std::move(group));
  }

  // Wiring: every shard emits through EmitFromShard, which hashes
  // result tuples into the parent group's shard queues and funnels
  // output punctuations through the group's aligner. (Executed on the
  // emitting shard's worker thread; the root's results land in the
  // executor's sink.)
  for (size_t j = 0; j < num_groups; ++j) {
    const OperatorTree::ParentEdge& edge = tree.parents[j];
    if (edge.parent_op != OperatorTree::ParentEdge::kNoParent) {
      exec->groups_[j]->parent_group = edge.parent_op;
      exec->groups_[j]->parent_input = edge.parent_input;
    }
    OpGroup& group = *exec->groups_[j];
    for (size_t s = 0; s < group.num_shards; ++s) {
      Worker& worker = *exec->workers_[group.first_worker + s];
      worker.group = j;
      if (group.parent_group != kNone) {
        worker.emit_buf.assign(exec->groups_[group.parent_group]->num_shards,
                               TupleBatch(config.batch_size));
      }
      exec->operators_[group.first_worker + s]->SetEmitter(
          [raw, j, s](const StreamElement& e) { raw->EmitFromShard(j, s, e); });
    }
  }

  exec->progress_.resize(query.num_streams());
  exec->leaf_route_.assign(query.num_streams(), {kNone, 0});
  for (size_t s = 0; s < query.num_streams(); ++s) {
    exec->leaf_route_[s] = tree.leaf_route[s];
  }

  // Observation points: one per shard worker, registered before any
  // worker thread starts (the registry is append-only afterwards).
  if (obs::kCompiled && config.observe.enabled) {
    exec->obs_ = std::make_unique<obs::Observability>(config.observe);
    for (size_t j = 0; j < num_groups; ++j) {
      OpGroup& group = *exec->groups_[j];
      for (size_t s = 0; s < group.num_shards; ++s) {
        obs::OperatorObs* point = exec->obs_->AddOperator(
            static_cast<uint16_t>(j), static_cast<uint32_t>(s));
        exec->workers_[group.first_worker + s]->obs = point;
        exec->operators_[group.first_worker + s]->SetObserver(point);
      }
    }
  }

  for (size_t i = 0; i < exec->workers_.size(); ++i) {
    exec->workers_[i]->thread =
        std::thread([raw, i] { raw->WorkerLoop(i); });
  }
  return exec;
}

ParallelExecutor::~ParallelExecutor() { Stop(); }

void ParallelExecutor::EmitFromShard(size_t group_idx, size_t shard,
                                     const StreamElement& element) {
  OpGroup& group = *groups_[group_idx];
  if (group.parent_group == kNone) {
    // Root: tuples are results; punctuations reach the consumer app.
    if (!element.is_tuple()) return;
    num_results_.fetch_add(1, std::memory_order_relaxed);
    if (config_.keep_results) {
      std::lock_guard<std::mutex> lock(results_mu_);
      kept_results_.push_back(element.tuple);
    }
    return;
  }
  OpGroup& parent = *groups_[group.parent_group];
  Worker& self = *workers_[group.first_worker + shard];
  if (element.is_tuple()) {
    // Stage into the per-parent-shard batch; the flush moves each
    // staged batch with one queue operation instead of one per tuple.
    // A failed flush means Stop() closed the pipeline; elements are
    // dropped (the non-graceful path).
    size_t target =
        parent.num_shards > 1
            ? parent.spec.ShardOf(group.parent_input, element.tuple,
                                  parent.num_shards)
            : 0;
    self.emit_buf[target].Append(element.tuple, element.timestamp);
    if (++self.emit_buffered >= config_.batch_size) FlushEmits(self);
    return;
  }
  // Output punctuation: flush this shard's staged tuples first so the
  // punctuation cannot overtake them in the parent queues. Every shard
  // flushes before its aligner arrival, and arrivals happen-before the
  // completing shard's broadcast, so all covered tuples of all shards
  // are queued ahead of the forwarded punctuation.
  FlushEmits(self);
  // The punctuation is valid for the merged output only once every
  // shard of this group has emitted it — until then another shard may
  // still hold (and later emit results from) matching tuples.
  int64_t forward_ts = element.timestamp;
  if (group.num_shards > 1 &&
      !group.aligner.Arrive(shard, element.punctuation, element.timestamp,
                            &forward_ts)) {
    return;
  }
  Broadcast(parent, group.parent_input,
            StreamElement::OfPunctuation(element.punctuation, forward_ts));
}

void ParallelExecutor::FlushEmits(Worker& worker) {
  if (worker.emit_buffered == 0) return;
  const size_t input = groups_[worker.group]->parent_input;
  OpGroup& parent = *groups_[groups_[worker.group]->parent_group];
  // One clock read covers the whole flush (per-batch sampling); the
  // consumer's latency sample then charges queue wait from here.
  const int64_t now =
      (obs::kCompiled && obs_ != nullptr) ? obs::NowNs() : 0;
  for (size_t s = 0; s < worker.emit_buf.size(); ++s) {
    TupleBatch& staged = worker.emit_buf[s];
    if (staged.empty()) continue;
    Worker& target = *workers_[parent.first_worker + s];
    if (obs::kCompiled && obs_ != nullptr) {
      target.obs->IncRouted(staged.size());
    }
    OpMessage message;
    message.input = input;
    message.enqueue_ns = now;
    if (staged.size() == 1) {
      // Batches of one travel as plain elements: batch_size == 1
      // reproduces the per-tuple delivery path exactly.
      message.element =
          StreamElement::OfTuple(staged.tuple(0), staged.timestamp(0));
    } else {
      message.batch = std::make_shared<TupleBatch>(std::move(staged));
    }
    staged.Clear();  // moved-from state resets to a valid empty batch
    target.queue.Push(std::move(message));
  }
  worker.emit_buffered = 0;
}

bool ParallelExecutor::RouteTuple(OpGroup& group, size_t input,
                                  const StreamElement& element) {
  size_t shard = group.num_shards > 1
                     ? group.spec.ShardOf(input, element.tuple,
                                          group.num_shards)
                     : 0;
  Worker& target = *workers_[group.first_worker + shard];
  OpMessage message{PipelineMarker::kNone, input, element, 0};
  if (obs::kCompiled && obs_ != nullptr) {
    message.enqueue_ns = obs::NowNs();
    target.obs->IncRouted();
    // Stall heuristic: the size check is racy against the consumer,
    // but a full reading here means the blocking Push below almost
    // certainly waited — good enough for a backpressure counter.
    if (target.queue.size() >= target.queue.capacity()) {
      target.obs->IncStall();
    }
  }
  return target.queue.Push(std::move(message));
}

bool ParallelExecutor::Broadcast(OpGroup& group, size_t input,
                                 const StreamElement& element) {
  // Holding broadcast_mu across the (possibly blocking) pushes is
  // deadlock-free: consumers of these queues never take this mutex —
  // they only take their *parent* group's, and the plan is a tree, so
  // the wait chain ends at the root sink, which always accepts.
  std::lock_guard<std::mutex> lock(group.broadcast_mu);
  bool ok = true;
  for (size_t s = 0; s < group.num_shards; ++s) {
    Worker& target = *workers_[group.first_worker + s];
    OpMessage message{PipelineMarker::kNone, input, element, 0};
    if (obs::kCompiled && obs_ != nullptr) {
      message.enqueue_ns = obs::NowNs();
      if (target.queue.size() >= target.queue.capacity()) {
        target.obs->IncStall();
      }
    }
    ok &= target.queue.Push(std::move(message));
  }
  return ok;
}

void ParallelExecutor::WorkerLoop(size_t index) {
  Worker& worker = *workers_[index];
  while (true) {
    // Batched pop: one lock acquisition per burst (see
    // BoundedQueue::PopAll), and the timestamp merge below sees as
    // much context as possible.
    std::optional<std::deque<OpMessage>> batch = worker.queue.PopAll();
    if (!batch.has_value()) break;  // closed and fully drained
    if (obs::kCompiled && worker.obs != nullptr) {
      worker.obs->RecordQueueBatch(batch->size());
    }

    // Barriers in this batch. The handshake admits at most one
    // outstanding barrier per worker (the driver waits for acks before
    // issuing the next), but the counting stays general. All kinds
    // require processing everything queued before the marker; they
    // differ only in the action run before the ack: drains sweep,
    // rechecks re-evaluate pending propagations, checkpoints do
    // nothing (pure quiescence so the driver can observe state).
    size_t barriers = 0;
    size_t drains = 0;
    bool recheck = false;
    int64_t barrier_ts = 0;
    for (OpMessage& m : *batch) {
      if (m.marker != PipelineMarker::kNone) {
        ++barriers;
        barrier_ts = m.element.timestamp;
        if (m.marker == PipelineMarker::kDrain) ++drains;
        if (m.marker == PipelineMarker::kRecheck) recheck = true;
      } else {
        worker.pending[m.input].push_back(std::move(m));
      }
    }

    ProcessPending(worker);

    if (drains > 0) {
      worker.op->Sweep(barrier_ts);
      SampleHighWater();
      if (obs::kCompiled && worker.obs != nullptr) {
        worker.obs->Note(obs::TraceKind::kDrain, drains);
      }
    }
    if (recheck) {
      // Restore phase 2: runs on this worker thread so re-emitted
      // punctuations flow through the normal aligner/queue path.
      worker.op->RecheckPropagations(barrier_ts);
      SampleHighWater();
    }
    // Flush staged downstream emits at every batch boundary — and,
    // crucially, *before* acking a barrier: the barrier contract
    // promises that everything this shard will ever emit for the
    // barriered epoch is already in the parent's queues when the ack
    // lands.
    FlushEmits(worker);
    if (barriers > 0) {
      {
        std::lock_guard<std::mutex> lock(worker.mu);
        worker.drains_done += barriers;
      }
      worker.drained_cv.notify_all();
    }
  }
  // Shutdown: deliver what was already buffered locally (downstream
  // pushes may fail once their queues close; that is fine, Stop() is
  // the non-graceful path).
  ProcessPending(worker);
  FlushEmits(worker);
}

void ParallelExecutor::ProcessPending(Worker& worker) {
  // Deliver buffered elements in ascending timestamp order across
  // inputs (ties: lowest input index). Per-input order is preserved by
  // the FIFO buffers; the cross-input ordering is best-effort only —
  // an empty buffer is never waited on.
  while (true) {
    size_t best = kNone;
    int64_t best_ts = 0;
    for (size_t i = 0; i < worker.pending.size(); ++i) {
      if (worker.pending[i].empty()) continue;
      int64_t ts = OrderTs(worker.pending[i].front());
      if (best == kNone || ts < best_ts) {
        best = i;
        best_ts = ts;
      }
    }
    if (best == kNone) return;
    OpMessage message = std::move(worker.pending[best].front());
    worker.pending[best].pop_front();
    Deliver(worker, message);
  }
}

void ParallelExecutor::Deliver(Worker& worker, const OpMessage& message) {
  if (message.batch != nullptr) {
    // Whole-batch delivery: one PushBatch call, and per-batch
    // observation sampling — a single clock read closes the latency
    // sample for every row (recorded as the per-tuple mean) and one
    // ring event carries the batch's result count.
    TupleBatch& batch = *message.batch;
    if (obs::kCompiled && worker.obs != nullptr) {
      const uint64_t results_before =
          worker.op->metrics().results_emitted.load(std::memory_order_relaxed);
      worker.op->PushBatch(message.input, batch);
      const int64_t now = obs::NowNs();
      if (message.enqueue_ns != 0 && !batch.empty()) {
        worker.obs->RecordLatencyNs((now - message.enqueue_ns) /
                                    static_cast<int64_t>(batch.size()));
      }
      worker.obs->NoteAt(
          now, obs::TraceKind::kTupleIn, message.input,
          worker.op->metrics().results_emitted.load(
              std::memory_order_relaxed) -
              results_before);
    } else {
      worker.op->PushBatch(message.input, batch);
    }
    SampleHighWater();
    return;
  }
  const StreamElement& element = message.element;
  if (element.is_tuple()) {
    if (obs::kCompiled && worker.obs != nullptr) {
      const uint64_t results_before =
          worker.op->metrics().results_emitted.load(std::memory_order_relaxed);
      worker.op->PushTuple(message.input, element.tuple, element.timestamp);
      // Latency sample: pipeline-edge enqueue -> processed by this
      // shard (queue wait + reorder buffering + the operator's own
      // work). One clock read covers both the sample and the trace.
      const int64_t now = obs::NowNs();
      if (message.enqueue_ns != 0) {
        worker.obs->RecordLatencyNs(now - message.enqueue_ns);
      }
      worker.obs->NoteAt(
          now, obs::TraceKind::kTupleIn, message.input,
          worker.op->metrics().results_emitted.load(
              std::memory_order_relaxed) -
              results_before);
    } else {
      worker.op->PushTuple(message.input, element.tuple, element.timestamp);
    }
  } else {
    worker.op->PushPunctuation(message.input, element.punctuation,
                               element.timestamp);
  }
  SampleHighWater();
}

void ParallelExecutor::SampleHighWater() {
  size_t tuples = 0;
  size_t puncts = 0;
  for (const auto& group : groups_) {
    size_t group_puncts = 0;
    for (size_t s = 0; s < group->num_shards; ++s) {
      const MJoinOperator& op = *operators_[group->first_worker + s];
      for (size_t i = 0; i < op.num_inputs(); ++i) {
        tuples += op.state_metrics(i).live.load(std::memory_order_relaxed);
      }
      // Punctuations are broadcast: every shard holds the full store,
      // so the logical count is the max over shards, not the sum.
      group_puncts = std::max(
          group_puncts,
          op.metrics().punctuations_live.load(std::memory_order_relaxed));
    }
    puncts += group_puncts;
  }
  internal::AtomicMax(tuple_high_water_, tuples);
  internal::AtomicMax(punct_high_water_, puncts);
}

Status ParallelExecutor::Push(const TraceEvent& event) {
  auto idx = query_.StreamIndex(event.stream);
  if (!idx.has_value()) {
    return Status::NotFound(
        StrCat("stream '", event.stream, "' not part of ", query_.ToString()));
  }
  auto [group_idx, input] = leaf_route_[*idx];
  if (group_idx == kNone) {
    return Status::Internal(
        StrCat("stream '", event.stream, "' has no leaf route"));
  }
  OpGroup& group = *groups_[group_idx];
  if (event.element.is_tuple() && config_.batch_size > 1) {
    // Batched ingestion: accumulate the run, flush on stream change /
    // full batch. The tuple is accepted into the buffer now; a flush
    // that fails later means Stop() closed the pipeline.
    if (!ingest_batch_.empty() && ingest_stream_ != *idx) {
      if (!FlushIngest()) {
        return Status::FailedPrecondition("parallel executor is stopped");
      }
    }
    ingest_stream_ = *idx;
    ingest_batch_.Append(event.element.tuple, event.element.timestamp);
    NoteProgress(*idx, event.element.timestamp);
    if (ingest_batch_.full() && !FlushIngest()) {
      return Status::FailedPrecondition("parallel executor is stopped");
    }
    return Status::OK();
  }
  if (!event.element.is_tuple() && !FlushIngest()) {
    return Status::FailedPrecondition("parallel executor is stopped");
  }
  bool ok = event.element.is_tuple()
                ? RouteTuple(group, input, event.element)
                : Broadcast(group, input, event.element);
  if (!ok) {
    return Status::FailedPrecondition("parallel executor is stopped");
  }
  NoteProgress(*idx, event.element.timestamp);
  if (!event.element.is_tuple()) {
    MaybeAutoCheckpoint(event.element.timestamp);
  }
  return Status::OK();
}

bool ParallelExecutor::FlushIngest() {
  if (ingest_batch_.empty()) return true;
  auto [group_idx, input] = leaf_route_[ingest_stream_];
  OpGroup& group = *groups_[group_idx];
  bool ok = true;
  if (group.num_shards > 1) {
    // Single-pass scatter into per-shard sub-batches, then one queue
    // message per non-empty shard.
    ScatterBatch(group.spec, input, ingest_batch_, group.num_shards,
                 &scatter_scratch_);
    for (size_t s = 0; s < group.num_shards; ++s) {
      if (scatter_scratch_[s].empty()) continue;
      ok &= PushIngestBatch(group, s, input, &scatter_scratch_[s]);
    }
  } else {
    ok = PushIngestBatch(group, 0, input, &ingest_batch_);
  }
  ingest_batch_.Clear();
  return ok;
}

bool ParallelExecutor::PushIngestBatch(OpGroup& group, size_t shard,
                                       size_t input, TupleBatch* batch) {
  Worker& target = *workers_[group.first_worker + shard];
  OpMessage message;
  message.input = input;
  if (obs::kCompiled && obs_ != nullptr) {
    message.enqueue_ns = obs::NowNs();
    target.obs->IncRouted(batch->size());
    if (target.queue.size() >= target.queue.capacity()) {
      target.obs->IncStall();
    }
  }
  if (batch->size() == 1) {
    // Scatter can strand a single row on a shard; it rides as a plain
    // element message (same delivery path as batch_size == 1).
    message.element =
        StreamElement::OfTuple(batch->tuple(0), batch->timestamp(0));
  } else {
    message.batch = std::make_shared<TupleBatch>(std::move(*batch));
  }
  batch->Clear();
  return target.queue.Push(std::move(message));
}

void ParallelExecutor::PushTuple(size_t stream, const Tuple& tuple,
                                 int64_t ts) {
  if (config_.batch_size > 1) {
    if (!ingest_batch_.empty() && ingest_stream_ != stream) {
      if (!FlushIngest()) return;
    }
    ingest_stream_ = stream;
    ingest_batch_.Append(tuple, ts);
    NoteProgress(stream, ts);
    if (ingest_batch_.full()) FlushIngest();
    return;
  }
  auto [group_idx, input] = leaf_route_[stream];
  if (RouteTuple(*groups_[group_idx], input,
                 StreamElement::OfTuple(tuple, ts))) {
    NoteProgress(stream, ts);
  }
}

void ParallelExecutor::PushPunctuation(size_t stream,
                                       const Punctuation& punctuation,
                                       int64_t ts) {
  // Batch-boundary ordering: buffered tuples reach the shard queues
  // before the punctuation is broadcast.
  if (!FlushIngest()) return;
  auto [group_idx, input] = leaf_route_[stream];
  if (Broadcast(*groups_[group_idx], input,
                StreamElement::OfPunctuation(punctuation, ts))) {
    NoteProgress(stream, ts);
    MaybeAutoCheckpoint(ts);
  }
}

void ParallelExecutor::NoteProgress(size_t stream, int64_t ts) {
  InputProgress& p = progress_[stream];
  ++p.events_consumed;
  p.watermark_ts = std::max(p.watermark_ts, ts);
}

void ParallelExecutor::MaybeAutoCheckpoint(int64_t ts) {
  if (config_.checkpoint.interval_punctuations == 0) return;
  if (++punctuations_since_checkpoint_ <
      config_.checkpoint.interval_punctuations) {
    return;
  }
  punctuations_since_checkpoint_ = 0;
  if (config_.checkpoint.path.empty()) return;
  Result<StateSnapshot> snap = Checkpoint(ts);
  Status status = snap.ok()
                      ? WriteSnapshotFile(*snap, config_.checkpoint.path)
                      : snap.status();
  if (!status.ok()) {
    PUNCTSAFE_LOG(Warning) << "automatic checkpoint to '"
                           << config_.checkpoint.path
                           << "' failed: " << status.ToString();
  }
}

Status ParallelExecutor::BarrierAll(PipelineMarker marker, int64_t now) {
  if (stopped_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("parallel executor is stopped");
  }
  // The barrier contract covers everything pushed so far — including
  // tuples still sitting in the driver's ingest buffer.
  if (!FlushIngest()) {
    return Status::FailedPrecondition("parallel executor is stopped");
  }
  // Leaves-first (groups_ is post-order, children before parents):
  // once every shard of operator j's children has acked its marker,
  // every element they will ever emit is already in j's shard queues,
  // so j's markers are provably last and their acks mean the whole
  // group is caught up (and swept / rechecked, per marker kind).
  // Markers go through Broadcast-style pushes under broadcast_mu so
  // they order consistently against punctuation broadcasts.
  for (size_t j = 0; j < groups_.size(); ++j) {
    OpGroup& group = *groups_[j];
    std::vector<uint64_t> targets(group.num_shards);
    for (size_t s = 0; s < group.num_shards; ++s) {
      targets[s] = ++workers_[group.first_worker + s]->drains_requested;
    }
    {
      std::lock_guard<std::mutex> lock(group.broadcast_mu);
      for (size_t s = 0; s < group.num_shards; ++s) {
        OpMessage message;
        message.marker = marker;
        message.element.timestamp = now;
        if (!workers_[group.first_worker + s]->queue.Push(
                std::move(message))) {
          return Status::FailedPrecondition("parallel executor is stopped");
        }
      }
    }
    for (size_t s = 0; s < group.num_shards; ++s) {
      Worker& worker = *workers_[group.first_worker + s];
      std::unique_lock<std::mutex> lock(worker.mu);
      worker.drained_cv.wait(
          lock, [&] { return worker.drains_done >= targets[s]; });
    }
  }
  return Status::OK();
}

Status ParallelExecutor::Drain(int64_t now) {
  return BarrierAll(PipelineMarker::kDrain, now);
}

Result<StateSnapshot> ParallelExecutor::Checkpoint(int64_t now) {
  // After the barrier every worker has processed everything queued
  // ahead of its marker and is parked on an empty queue; the ack under
  // worker.mu publishes its operator mutations to this thread, so the
  // driver can read shard state directly.
  PUNCTSAFE_RETURN_IF_ERROR(BarrierAll(PipelineMarker::kCheckpoint, now));
  StateSnapshot snap;
  snap.fingerprint = PlanFingerprint(query_, shape_);
  snap.progress = progress_;
  snap.num_results = num_results();
  snap.results = kept_results();
  snap.tuple_high_water = tuple_high_water();
  snap.punct_high_water = punctuation_high_water();
  snap.operators.reserve(groups_.size());
  for (const auto& group : groups_) {
    // Fold the shard captures into the logical operator's snapshot —
    // the same monoid the split/merge laws are stated over, so a
    // K-shard checkpoint equals the serial executor's byte-for-byte
    // once canonicalized.
    OperatorStateSnapshot merged =
        operators_[group->first_worker]->CaptureState();
    for (size_t s = 1; s < group->num_shards; ++s) {
      merged = MergeOperatorSnapshots(
          merged, operators_[group->first_worker + s]->CaptureState());
    }
    snap.operators.push_back(std::move(merged));
  }
  CanonicalizeSnapshot(&snap);
  return snap;
}

Status ParallelExecutor::RestoreState(const StateSnapshot& snapshot) {
  if (stopped_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("parallel executor is stopped");
  }
  if (snapshot.fingerprint != PlanFingerprint(query_, shape_)) {
    return Status::InvalidArgument(
        StrCat("snapshot fingerprint '", snapshot.fingerprint,
               "' does not match this plan '",
               PlanFingerprint(query_, shape_), "'"));
  }
  if (snapshot.operators.size() != groups_.size()) {
    return Status::InvalidArgument(
        StrCat("snapshot has ", snapshot.operators.size(),
               " operators but the plan has ", groups_.size()));
  }
  // Phase 1: rebuild each shard's state directly from the driver
  // thread. The fresh-executor contract means nothing has been queued,
  // so every worker is parked in PopAll and never touches its operator
  // concurrently; the phase-2 barrier's queue pushes publish these
  // writes to the worker threads.
  for (size_t j = 0; j < groups_.size(); ++j) {
    OpGroup& group = *groups_[j];
    const OperatorStateSnapshot& logical = snapshot.operators[j];
    const size_t num_inputs = operators_[group.first_worker]->num_inputs();
    if (logical.inputs.size() != num_inputs) {
      return Status::InvalidArgument(
          StrCat("snapshot operator ", j, " has ", logical.inputs.size(),
                 " inputs but the operator has ", num_inputs));
    }
    // Split the logical snapshot across the group's shards: tuples by
    // the group's own ShardOf (the inverse the merge is stated
    // against), punctuations / pending / sweep counters replicated
    // (broadcast state — every shard holds the full set), summed
    // counters and result credits on shard 0 only.
    std::vector<OperatorStateSnapshot> pieces(group.num_shards);
    for (size_t s = 0; s < group.num_shards; ++s) {
      OperatorStateSnapshot& piece = pieces[s];
      piece.inputs.resize(num_inputs);
      piece.pending = logical.pending;
      piece.punctuations_purged = logical.punctuations_purged;
      piece.punctuations_since_sweep = logical.punctuations_since_sweep;
      piece.op_metrics = logical.op_metrics;
      if (s != 0) {
        piece.op_metrics.results_emitted = 0;
        piece.op_metrics.removability_checks = 0;
      }
      for (size_t k = 0; k < num_inputs; ++k) {
        piece.inputs[k].punctuations = logical.inputs[k].punctuations;
        if (s == 0) {
          piece.inputs[k].state_metrics = logical.inputs[k].state_metrics;
          piece.inputs[k].state_metrics.live = 0;  // recomputed below
        }
      }
    }
    for (size_t k = 0; k < num_inputs; ++k) {
      for (const Tuple& tuple : logical.inputs[k].tuples) {
        size_t target =
            group.num_shards > 1
                ? group.spec.ShardOf(k, tuple, group.num_shards)
                : 0;
        pieces[target].inputs[k].tuples.push_back(tuple);
        pieces[target].inputs[k].state_metrics.live += 1;
      }
      // Gauge drift (a hand-edited snapshot whose live gauge disagrees
      // with its tuple list) lands on shard 0, mirroring SplitSnapshot.
      const uint64_t listed = logical.inputs[k].tuples.size();
      if (logical.inputs[k].state_metrics.live > listed) {
        pieces[0].inputs[k].state_metrics.live +=
            logical.inputs[k].state_metrics.live - listed;
      }
    }
    for (size_t s = 0; s < group.num_shards; ++s) {
      PUNCTSAFE_RETURN_IF_ERROR(
          operators_[group.first_worker + s]->RestoreState(pieces[s]));
    }
  }
  progress_ = snapshot.progress;
  progress_.resize(query_.num_streams());
  num_results_.store(snapshot.num_results, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(results_mu_);
    kept_results_ = snapshot.results;
  }
  tuple_high_water_.store(snapshot.tuple_high_water,
                          std::memory_order_relaxed);
  punct_high_water_.store(snapshot.punct_high_water,
                          std::memory_order_relaxed);
  // Phase 2: pending propagations were replicated to every shard, but
  // a shard that had already cleared (and voted at the aligner) before
  // the snapshot must re-emit — the crash discarded its vote. The
  // recheck barrier runs on the worker threads, leaves-first, so those
  // re-emissions flow through the normal aligner/queue path and the
  // aligner completes exactly once when the last shard clears during
  // replay (docs/RECOVERY.md).
  int64_t now = 0;
  for (const InputProgress& p : progress_) {
    now = std::max(now, p.watermark_ts);
  }
  return BarrierAll(PipelineMarker::kRecheck, now);
}

void ParallelExecutor::Stop() {
  if (stopped_.exchange(true)) return;
  for (auto& worker : workers_) worker->queue.Close();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

size_t ParallelExecutor::TotalLiveTuples() const {
  // Tuples partition across a group's shards (each stored exactly
  // once), so the plain sum is the logical total.
  size_t total = 0;
  for (const auto& op : operators_) {
    for (size_t i = 0; i < op->num_inputs(); ++i) {
      total += op->state_metrics(i).live.load(std::memory_order_relaxed);
    }
  }
  return total;
}

size_t ParallelExecutor::TotalLivePunctuations() const {
  size_t total = 0;
  for (const auto& group : groups_) {
    size_t group_puncts = 0;
    for (size_t s = 0; s < group->num_shards; ++s) {
      group_puncts = std::max(
          group_puncts, operators_[group->first_worker + s]
                            ->metrics()
                            .punctuations_live.load(std::memory_order_relaxed));
    }
    total += group_puncts;
  }
  return total;
}

std::vector<ParallelExecutor::OperatorGroupSnapshot>
ParallelExecutor::GroupSnapshots() const {
  std::vector<OperatorGroupSnapshot> out;
  out.reserve(groups_.size());
  for (const auto& group : groups_) {
    OperatorGroupSnapshot snap;
    snap.num_shards = group->num_shards;
    snap.partitioned = group->num_shards > 1;
    snap.partition_detail = group->spec.detail;
    for (size_t s = 0; s < group->num_shards; ++s) {
      const MJoinOperator& op = *operators_[group->first_worker + s];
      StateMetricsSnapshot shard = op.AggregateStateSnapshot();
      snap.aggregate += shard;
      snap.shard_live.push_back(shard.live);
      snap.shard_high_water.push_back(shard.high_water);
      snap.punctuations_live =
          std::max(snap.punctuations_live,
                   op.metrics().punctuations_live.load(
                       std::memory_order_relaxed));
    }
    out.push_back(std::move(snap));
  }
  return out;
}

obs::ObsSnapshot ParallelExecutor::ObservabilitySnapshot() const {
  obs::ObsSnapshot snap;
  snap.executor = "parallel";
  snap.results = num_results();
  snap.live_tuples = TotalLiveTuples();
  snap.live_punctuations = TotalLivePunctuations();
  snap.tuple_high_water = tuple_high_water();
  snap.punctuation_high_water = punctuation_high_water();
  if (obs_ == nullptr) return snap;
  snap.operators.reserve(workers_.size());
  for (const auto& group : groups_) {
    const size_t aligner_pending = group->aligner.pending();
    const size_t aligner_hw = group->aligner.pending_high_water();
    for (size_t s = 0; s < group->num_shards; ++s) {
      const size_t w = group->first_worker + s;
      obs::OperatorObsEntry entry;
      entry.CaptureFrom(*workers_[w]->obs);
      entry.num_shards = group->num_shards;
      entry.partitioned = group->num_shards > 1;
      entry.partition_detail = group->spec.detail;
      entry.state = operators_[w]->AggregateStateSnapshot();
      entry.op_metrics = operators_[w]->metrics().Snapshot();
      // Group-level gauges, replicated onto each shard entry (the
      // aligner is per group; consumers should read shard 0's).
      entry.aligner_pending = aligner_pending;
      entry.aligner_pending_high_water = aligner_hw;
      snap.operators.push_back(std::move(entry));
    }
  }
  return snap;
}

std::vector<Tuple> ParallelExecutor::kept_results() const {
  std::lock_guard<std::mutex> lock(results_mu_);
  return kept_results_;
}

Status FeedTraceParallel(ParallelExecutor* executor, const Trace& trace) {
  int64_t max_ts = 0;
  for (const TraceEvent& event : trace) {
    PUNCTSAFE_RETURN_IF_ERROR(executor->Push(event));
    if (event.element.timestamp > max_ts) max_ts = event.element.timestamp;
  }
  return executor->Drain(max_ts + 1);
}

}  // namespace punctsafe
