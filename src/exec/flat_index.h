// Open-addressing hash index from join-key Values to slot buckets —
// the storage behind TupleStore's per-attribute indexes.
//
// Layout follows the flat "swiss table" scheme: slots live in groups
// of 16, and a parallel control-byte array holds a 7-bit tag of each
// occupant's hash (0x80 = empty). A lookup compares all 16 tags of a
// group in one SIMD step (exec/simd.h — SSE2/NEON, scalar fallback
// under PUNCTSAFE_NO_SIMD), touching full entries only on tag hits, so
// the common miss costs one cache line and zero Value comparisons.
//
// This replaced the previous std::unordered_map<Value, Bucket> index:
// the node-based map paid an allocation per new key plus a pointer
// chase per probe, which is where the PR 3 insert-rate regression
// lived (BENCH_hot_path.json int_insert_per_sec 6.41M -> 3.77M when
// Value began caching its hash; the map, not the hashing, was the
// cost). Entries here are stored flat and the cached Value hash is
// spread through a 64-bit finalizer before use, so sequential integer
// keys still scatter across groups.
//
// Deletion is rebuild-only: TupleStore purges by tombstoning slots and
// periodically reconstructs the whole index from survivors
// (CompactIndexes), so the table needs no tombstone machinery and
// probe chains never degrade. Pointers returned by Find/FindOrCreate
// are invalidated by any subsequent FindOrCreate (growth moves
// entries) — the same contract TupleStore::FindBucket documents.
//
// Not thread-safe; owned by a single TupleStore.

#ifndef PUNCTSAFE_EXEC_FLAT_INDEX_H_
#define PUNCTSAFE_EXEC_FLAT_INDEX_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "exec/simd.h"
#include "stream/value.h"
#include "util/small_vector.h"

namespace punctsafe {

class FlatKeyIndex {
 public:
  /// Inline bucket capacity matches TupleStore::Bucket: most buckets
  /// hold a handful of slots and stay inside the entry.
  using Bucket = SmallVector<size_t, 4>;

  FlatKeyIndex() = default;
  FlatKeyIndex(FlatKeyIndex&&) = default;
  FlatKeyIndex& operator=(FlatKeyIndex&&) = default;
  FlatKeyIndex(const FlatKeyIndex&) = delete;
  FlatKeyIndex& operator=(const FlatKeyIndex&) = delete;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// \brief Pre-sizes the table for `n` keys (no-op if already large
  /// enough). Used by the compaction rebuild to avoid regrowth.
  void Reserve(size_t n) {
    size_t cap = kGroupWidth;
    while (n * 8 > cap * 7) cap *= 2;
    if (cap > capacity_) Rehash(cap);
  }

  /// \brief Bucket stored under `key`, or nullptr. `hash` must be
  /// key.Hash() — callers on the batch path pass it from the
  /// contiguous hash column instead of re-reading the Value.
  const Bucket* Find(size_t hash, const Value& key) const {
    if (capacity_ == 0) return nullptr;
    const uint64_t spread = Spread(hash);
    const uint8_t tag = Tag(spread);
    size_t group = GroupOf(spread);
    while (true) {
      const uint8_t* tags = ctrl_.data() + group * kGroupWidth;
      uint32_t match = simd::MatchTags16(tags, tag);
      while (match != 0) {
        const unsigned lane = std::countr_zero(match);
        match &= match - 1;
        const Entry& e = entries_[group * kGroupWidth + lane];
        if (e.hash == hash && e.key == key) return &e.bucket;
      }
      if (simd::MatchTags16(tags, kEmptyTag) != 0) return nullptr;
      group = (group + 1) & group_mask_;
    }
  }

  /// \brief Bucket stored under `key`, inserting an empty one first if
  /// absent. May grow the table: any previously returned bucket
  /// pointer is invalidated.
  Bucket* FindOrCreate(const Value& key) {
    if ((size_ + 1) * 8 > capacity_ * 7) Rehash(NextCapacity());
    const size_t hash = key.Hash();
    const uint64_t spread = Spread(hash);
    const uint8_t tag = Tag(spread);
    size_t group = GroupOf(spread);
    while (true) {
      uint8_t* tags = ctrl_.data() + group * kGroupWidth;
      uint32_t match = simd::MatchTags16(tags, tag);
      while (match != 0) {
        const unsigned lane = std::countr_zero(match);
        match &= match - 1;
        Entry& e = entries_[group * kGroupWidth + lane];
        if (e.hash == hash && e.key == key) return &e.bucket;
      }
      const uint32_t empty = simd::MatchTags16(tags, kEmptyTag);
      if (empty != 0) {
        // Probing stops at the first group with an empty slot, so the
        // key (absent) must be placed in this group to stay findable.
        const unsigned lane = std::countr_zero(empty);
        tags[lane] = tag;
        Entry& e = entries_[group * kGroupWidth + lane];
        e.hash = hash;
        e.key = key;  // owning copy: index keys never dangle
        ++size_;
        return &e.bucket;
      }
      group = (group + 1) & group_mask_;
    }
  }

  /// \brief Visits every (key, bucket) pair, in table order.
  template <typename Fn>
  void ForEachEntry(Fn&& fn) const {
    for (size_t i = 0; i < capacity_; ++i) {
      if (ctrl_[i] != kEmptyTag) fn(entries_[i].key, entries_[i].bucket);
    }
  }

 private:
  static constexpr size_t kGroupWidth = 16;
  static constexpr uint8_t kEmptyTag = 0x80;

  struct Entry {
    size_t hash = 0;
    Value key;
    Bucket bucket;
  };

  /// 64-bit finalizer over the cached Value hash: Value's own mix
  /// keeps sequential int64 keys nearly sequential, which would pile
  /// whole ranges into a few groups; one multiply + xor-shift spreads
  /// them. Tag and group position both come from the spread form.
  static uint64_t Spread(size_t hash) {
    uint64_t x = static_cast<uint64_t>(hash);
    x *= 0xFF51AFD7ED558CCDull;
    x ^= x >> 33;
    return x;
  }
  static uint8_t Tag(uint64_t spread) {
    return static_cast<uint8_t>(spread & 0x7F);
  }
  size_t GroupOf(uint64_t spread) const {
    return (spread >> 7) & group_mask_;
  }

  size_t NextCapacity() const {
    return capacity_ == 0 ? kGroupWidth : capacity_ * 2;
  }

  void Rehash(size_t new_capacity) {
    std::vector<uint8_t> old_ctrl = std::move(ctrl_);
    std::vector<Entry> old_entries = std::move(entries_);
    const size_t old_capacity = capacity_;
    capacity_ = new_capacity;
    group_mask_ = new_capacity / kGroupWidth - 1;
    ctrl_.assign(new_capacity, kEmptyTag);
    entries_.clear();
    entries_.resize(new_capacity);
    for (size_t i = 0; i < old_capacity; ++i) {
      if (old_ctrl[i] == kEmptyTag) continue;
      Entry& src = old_entries[i];
      const uint64_t spread = Spread(src.hash);
      size_t group = GroupOf(spread);
      while (true) {
        uint8_t* tags = ctrl_.data() + group * kGroupWidth;
        const uint32_t empty = simd::MatchTags16(tags, kEmptyTag);
        if (empty != 0) {
          const unsigned lane = std::countr_zero(empty);
          tags[lane] = Tag(spread);
          entries_[group * kGroupWidth + lane] = std::move(src);
          break;
        }
        group = (group + 1) & group_mask_;
      }
    }
  }

  std::vector<uint8_t> ctrl_;
  std::vector<Entry> entries_;
  size_t capacity_ = 0;
  size_t group_mask_ = 0;
  size_t size_ = 0;
};

}  // namespace punctsafe

#endif  // PUNCTSAFE_EXEC_FLAT_INDEX_H_
