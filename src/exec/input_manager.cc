#include "exec/input_manager.h"

#include <algorithm>

namespace punctsafe {

Trace InputManager::Merge(const std::vector<Trace>& parts) {
  Trace merged;
  size_t total = 0;
  for (const Trace& p : parts) total += p.size();
  merged.reserve(total);
  for (const Trace& p : parts) {
    merged.insert(merged.end(), p.begin(), p.end());
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.element.timestamp < b.element.timestamp;
                   });
  return merged;
}

void InputManager::Accept(const std::string& stream, StreamElement element) {
  buffer_.push_back({stream, std::move(element)});
}

Result<size_t> InputManager::DrainInto(PlanExecutor* executor) {
  std::stable_sort(buffer_.begin(), buffer_.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.element.timestamp < b.element.timestamp;
                   });
  size_t delivered = 0;
  for (const TraceEvent& event : buffer_) {
    PUNCTSAFE_RETURN_IF_ERROR(executor->Push(event));
    ++delivered;
  }
  buffer_.clear();
  return delivered;
}

Status FeedTrace(PlanExecutor* executor, const Trace& trace) {
  for (const TraceEvent& event : trace) {
    PUNCTSAFE_RETURN_IF_ERROR(executor->Push(event));
  }
  return Status::OK();
}

}  // namespace punctsafe
