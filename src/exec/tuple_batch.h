// The unit of batched execution: a fixed-capacity run of tuples from
// one input, carried through ingestion, queues, and operators as a
// single object (docs/PERF.md, "Batched & vectorized execution").
//
// Columnar side-structures make the probe path vectorizable:
//  * the **hash column** gathers each row's cached join-key hash into
//    one contiguous uint64_t vector (BuildHashColumn — a single pass,
//    no re-hashing: Value caches its hash at construction), which is
//    what TupleStore::ProbeBatch scans with SIMD run detection;
//  * the **selection vector** lists the active row indices, so
//    predicate / punctuation-exclusion filtering drops rows without
//    moving tuple payloads — downstream stages iterate the selection,
//    not the raw rows.
//
// Tuple slots are POOLED: Clear() resets the logical size but keeps
// the constructed Tuples, so a recycled batch re-fills by
// copy/move-assignment into warm slots — Tuple's copy-assign reuses
// the slot's value-vector capacity, which makes the steady-state
// build-append-clear cycle allocation-free for rows whose values fit
// Value's inline buffer (this is what fixed the str-insert batch
// regression: push_back-into-cleared-vector paid one tuple copy
// allocation per append). Move-appending a *view* tuple keeps the
// view (no payload copy); avoid mixing view moves and value copies
// through the same batch, or the recycled slots' capacity churns.
//
// A batch never mixes inputs and never contains punctuations: the
// executors flush the open batch before forwarding a punctuation,
// which is the batch-boundary ordering guarantee (results produced
// from a batch are emitted before any punctuation that arrived after
// it). Timestamps stay per-row — batching changes granularity, not
// semantics, and a batch of capacity 1 reproduces tuple-at-a-time
// execution exactly.
//
// Not thread-safe; a batch has exactly one consumer at a time.

#ifndef PUNCTSAFE_EXEC_TUPLE_BATCH_H_
#define PUNCTSAFE_EXEC_TUPLE_BATCH_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

#include "stream/tuple.h"
#include "util/logging.h"

namespace punctsafe {

class TupleBatch {
 public:
  /// Default unit of batched hand-off; ExecutorConfig::batch_size
  /// overrides it per executor.
  static constexpr size_t kDefaultCapacity = 128;

  TupleBatch() : TupleBatch(kDefaultCapacity) {}
  explicit TupleBatch(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {
    tuples_.reserve(capacity_);
    timestamps_.reserve(capacity_);
  }

  TupleBatch(const TupleBatch&) = default;
  TupleBatch& operator=(const TupleBatch&) = default;
  // Explicit moves so the source's logical size resets with its moved
  // vectors: a moved-from batch is empty and safely reusable (the
  // parallel emit staging moves a staged batch out and keeps filling
  // the same object).
  TupleBatch(TupleBatch&& other) noexcept
      : capacity_(other.capacity_),
        size_(other.size_),
        tuples_(std::move(other.tuples_)),
        timestamps_(std::move(other.timestamps_)),
        selection_(std::move(other.selection_)),
        hashes_(std::move(other.hashes_)),
        hash_offset_(other.hash_offset_) {
    other.size_ = 0;
    other.hash_offset_ = kNoHashColumn;
  }
  TupleBatch& operator=(TupleBatch&& other) noexcept {
    if (this != &other) {
      capacity_ = other.capacity_;
      size_ = other.size_;
      tuples_ = std::move(other.tuples_);
      timestamps_ = std::move(other.timestamps_);
      selection_ = std::move(other.selection_);
      hashes_ = std::move(other.hashes_);
      hash_offset_ = other.hash_offset_;
      other.size_ = 0;
      other.hash_offset_ = kNoHashColumn;
    }
    return *this;
  }

  size_t capacity() const { return capacity_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ >= capacity_; }

  void Append(const Tuple& tuple, int64_t ts) {
    if (size_ < tuples_.size()) {
      tuples_[size_] = tuple;  // copy-assign reuses slot capacity
    } else {
      tuples_.push_back(tuple);
    }
    ++size_;
    timestamps_.push_back(ts);
  }
  void Append(Tuple&& tuple, int64_t ts) {
    if (size_ < tuples_.size()) {
      tuples_[size_] = std::move(tuple);
    } else {
      tuples_.push_back(std::move(tuple));
    }
    ++size_;
    timestamps_.push_back(ts);
  }

  /// \brief Appends a non-owning view row without constructing a
  /// temporary Tuple: a warm slot is rebound in place (pooled
  /// value-vector capacity retained), a cold slot is emplaced as a
  /// view. Same contract as Append of a view tuple — `data` must stay
  /// valid until the batch is consumed.
  void AppendView(const Value* data, size_t width, int64_t ts) {
    if (size_ < tuples_.size()) {
      tuples_[size_].BindExternal(data, width);
    } else {
      tuples_.emplace_back(Tuple::ExternalRef{}, data, width);
    }
    ++size_;
    timestamps_.push_back(ts);
  }

  const Tuple& tuple(size_t i) const { return tuples_[i]; }
  int64_t timestamp(size_t i) const { return timestamps_[i]; }

  /// \brief Timestamp of the first row (queue-merge ordering key).
  int64_t first_timestamp() const { return timestamps_.front(); }
  /// \brief Largest row timestamp (watermark fold, one pass).
  int64_t max_timestamp() const {
    return *std::max_element(timestamps_.begin(), timestamps_.end());
  }

  /// \brief Empties the batch for reuse; capacity, vector storage, AND
  /// the constructed tuple slots are retained (see the pooling note in
  /// the file comment), so a recycled batch allocates nothing
  /// steady-state.
  void Clear() {
    size_ = 0;
    timestamps_.clear();
    selection_.clear();
    hashes_.clear();
    hash_offset_ = kNoHashColumn;
  }

  /// \brief Selects every row (identity selection). Call before
  /// filtering; ProbeBatch and the operators iterate the selection.
  void SelectAll() {
    selection_.resize(size_);
    std::iota(selection_.begin(), selection_.end(), 0u);
  }

  const std::vector<uint32_t>& selection() const { return selection_; }
  /// \brief In-place filtering: operators rewrite the selection to
  /// drop rows (ascending row order must be preserved).
  std::vector<uint32_t>* mutable_selection() { return &selection_; }

  /// \brief Builds the contiguous hash column over attribute `offset`:
  /// one gather pass over the rows' cached Value hashes. Returns the
  /// column; it stays valid until the next Append/Clear.
  const uint64_t* BuildHashColumn(size_t offset) {
    hashes_.clear();
    hashes_.reserve(size_);
    for (size_t i = 0; i < size_; ++i) {
      const Tuple& t = tuples_[i];
      PUNCTSAFE_CHECK(offset < t.size()) << "hash column offset out of range";
      hashes_.push_back(static_cast<uint64_t>(t.HashAt(offset)));
    }
    hash_offset_ = offset;
    return hashes_.data();
  }
  bool HasHashColumn(size_t offset) const { return hash_offset_ == offset; }
  const std::vector<uint64_t>& hashes() const { return hashes_; }

  /// \brief Capacity of the pooled tuple-slot vector (expand_allocs
  /// accounting input for operators that stage output batches).
  size_t TupleCapacity() const { return tuples_.capacity(); }

 private:
  static constexpr size_t kNoHashColumn = static_cast<size_t>(-1);

  size_t capacity_;
  size_t size_ = 0;  // logical rows; tuples_ may hold more (pooled)
  std::vector<Tuple> tuples_;
  std::vector<int64_t> timestamps_;
  std::vector<uint32_t> selection_;
  std::vector<uint64_t> hashes_;
  size_t hash_offset_ = kNoHashColumn;
};

}  // namespace punctsafe

#endif  // PUNCTSAFE_EXEC_TUPLE_BATCH_H_
