// Epoch-reclaimed bump allocator for join-state storage.
//
// Every tuple stored in a TupleStore (its value array plus any string
// payload bytes) is one bump allocation into the arena's current
// block. Blocks carry a live-allocation counter: storing a tuple
// increments its block's counter, purging it decrements. A block whose
// counter reaches zero is reclaimed *wholesale* — its bump pointer is
// reset and the block goes back on a free list for reuse — turning
// O(purged tuples) frees into O(blocks) releases, which is exactly the
// shape of punctuation-driven purges (whole key-subspaces die at
// once).
//
// Reclamation is deferred to AdvanceEpoch(), which the owning store
// calls at purge-sweep boundaries: between two epoch advances, memory
// of dead tuples is never reused, so `const Tuple&` references
// obtained from probes stay valid for the remainder of the processing
// step that obtained them (docs/PERF.md, "Arena & epochs"). Between
// NoteDead and the next AdvanceEpoch a block is merely a *candidate*;
// the advance re-checks its counter (the current block may have gained
// fresh allocations since).
//
// Steady state allocates no system memory: once the working set of
// blocks exists, insert/purge cycles recycle them through the free
// list. blocks_allocated() counts the mallocs that did happen, which
// is what StateMetrics::insert_allocs folds in.
//
// Not thread-safe: an arena is owned by exactly one TupleStore, which
// is owned by exactly one operator (one shard worker under the
// parallel executor).

#ifndef PUNCTSAFE_EXEC_ARENA_H_
#define PUNCTSAFE_EXEC_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace punctsafe {

class EpochArena {
 public:
  static constexpr size_t kDefaultBlockBytes = 64 * 1024;
  static constexpr uint32_t kNoBlock = static_cast<uint32_t>(-1);

  explicit EpochArena(size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes == 0 ? kDefaultBlockBytes : block_bytes) {}

  struct Allocation {
    char* ptr = nullptr;
    uint32_t block = kNoBlock;
  };

  /// \brief Bump-allocates `bytes` (8-byte aligned) and registers one
  /// live unit on the owning block. Oversized requests get a dedicated
  /// block of exactly the requested size. The in-block bump is inline
  /// — it runs once per stored tuple — and only block turnover leaves
  /// the header.
  Allocation Allocate(size_t bytes) {
    const size_t need = AlignUp(bytes);
    if (need <= block_bytes_ && current_ != kNoBlock) {
      Block& b = blocks_[current_];
      if (b.used + need <= b.capacity) {
        char* ptr = b.data.get() + b.used;
        b.used += need;
        b.live += 1;
        bytes_live_ += need;
        return {ptr, current_};
      }
    }
    return AllocateSlow(need);
  }

  /// \brief Marks one unit of `block` dead. The block becomes a
  /// reclamation candidate once all its units are dead; the memory is
  /// only reused at the next AdvanceEpoch.
  void NoteDead(uint32_t block);

  /// \brief Epoch boundary (a punctuation-driven purge sweep just
  /// finished): every block whose live counter is zero is reclaimed —
  /// bump pointer reset, pushed onto the free list (the current block
  /// is reset in place instead). Returns blocks reclaimed this call.
  size_t AdvanceEpoch();

  uint64_t epoch() const { return epoch_; }
  /// \brief Total bytes of all blocks ever allocated and not freed
  /// (free-listed blocks included — they are retained for reuse).
  size_t bytes_reserved() const { return bytes_reserved_; }
  /// \brief Bytes bump-allocated in blocks still holding live units
  /// (an upper bound of live tuple bytes: a block with one survivor
  /// counts in full — the documented fragmentation trade-off).
  size_t bytes_live() const { return bytes_live_; }
  uint64_t blocks_reclaimed() const { return blocks_reclaimed_; }
  /// \brief Fresh block mallocs (free-list reuse does not count).
  uint64_t blocks_allocated() const { return blocks_allocated_; }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t capacity = 0;
    size_t used = 0;
    uint32_t live = 0;
    bool queued = false;   // already on dead_candidates_
    uint64_t born_epoch = 0;
  };

  static size_t AlignUp(size_t n) { return (n + 7) & ~size_t{7}; }

  /// Block-turnover half of Allocate: `need` is already aligned.
  Allocation AllocateSlow(size_t need);
  uint32_t FreshBlock(size_t capacity);
  void ResetBlock(uint32_t id);

  size_t block_bytes_;
  std::vector<Block> blocks_;
  std::vector<uint32_t> free_blocks_;
  // Blocks whose live counter hit zero since the last epoch advance.
  std::vector<uint32_t> dead_candidates_;
  uint32_t current_ = kNoBlock;
  uint64_t epoch_ = 0;
  size_t bytes_reserved_ = 0;
  size_t bytes_live_ = 0;
  uint64_t blocks_reclaimed_ = 0;
  uint64_t blocks_allocated_ = 0;
};

}  // namespace punctsafe

#endif  // PUNCTSAFE_EXEC_ARENA_H_
