// Punctuation-aligned checkpoint/restore of executor state.
//
// A StateSnapshot is the *logical* state of one plan execution at a
// quiescent, punctuation-aligned point: per operator input the live
// join tuples, the stored punctuations (with arrival timestamps, so
// lifespans survive a restore), the pending output-punctuation
// propagations, the metric counters the safety experiments report,
// plus executor-level progress (per-stream event counts / watermarks)
// and result accounting. Punctuations are the paper's natural epoch
// barriers: a sweep ends with AdvanceEpoch on every store, so a
// snapshot taken between pushes never sees half-applied purges.
//
// Snapshots form a commutative monoid under MergeSnapshots
// ("Stream programs are monoid homomorphisms with state",
// arXiv:2507.10799): the identity is the default-constructed
// StateSnapshot, and Merge combines two shard snapshots of the same
// plan into one logical snapshot. Field semantics (docs/RECOVERY.md):
//  * tuples / results — multiset union (tuples partition across
//    shards, so union restores the logical state);
//  * punctuations / pending propagations — set union (broadcast state
//    is replicated per shard), duplicate punctuations keep the max
//    arrival timestamp;
//  * tuple-side counters (inserted, purged, ...) — sums;
//  * punctuation-side counters and gauges — max (every shard holds
//    the full broadcast set, so the max IS the logical value);
//  * per-stream progress — element-wise max.
// SplitSnapshot is the inverse up to Merge: it re-partitions the
// tuples over K pieces (by ShardOf-style hashing or a caller-supplied
// assignment), replicates the broadcast/max state into every piece,
// and leaves the summed counters on piece 0, so
// Merge(Split(s, K)) == s exactly. The executors' restore paths use
// the same construction to load one snapshot into K shard workers.
//
// The byte format is versioned and length-prefixed with a per-section
// CRC32 so truncated or bit-flipped files are rejected with a clean
// error instead of being half-applied:
//
//   "PSCK" | u32 version
//   section*:  u32 section_id | u64 payload_len | payload | u32 crc32
//
// Section 1 (meta) carries the fingerprint, progress, result
// accounting, and the operator-section count; one section 2 per
// operator follows. All integers are little-endian.

#ifndef PUNCTSAFE_EXEC_CHECKPOINT_H_
#define PUNCTSAFE_EXEC_CHECKPOINT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "exec/metrics.h"
#include "stream/punctuation.h"
#include "stream/tuple.h"
#include "util/status.h"

namespace punctsafe {

/// \brief ExecutorConfig knob: automatic punctuation-aligned
/// checkpoints. Both executors count arriving punctuations (the
/// paper's epoch markers) and write a snapshot to `path` after each
/// `interval_punctuations` of them, once the triggering cascade has
/// fully settled.
struct CheckpointConfig {
  /// Punctuations between automatic snapshots; 0 disables them.
  size_t interval_punctuations = 0;
  /// Snapshot file target for automatic snapshots.
  std::string path;
};

/// \brief One stored punctuation plus its arrival timestamp (needed so
/// lifespan expiry keeps working after a restore).
struct PunctuationEntry {
  Punctuation punctuation;
  int64_t arrival = 0;
};

/// \brief Logical state of one operator input: the live join tuples,
/// the punctuation store contents, and the input's metric counters.
struct InputStateSnapshot {
  std::vector<Tuple> tuples;                    // canonical: sorted
  std::vector<PunctuationEntry> punctuations;   // canonical: sorted
  StateMetricsSnapshot state_metrics;
};

/// \brief An output punctuation still blocked on matching state.
struct PendingPropagationSnapshot {
  uint32_t input = 0;
  Punctuation punctuation;
};

/// \brief Logical state of one MJoin operator (for sharded execution:
/// the merge over its shard replicas).
struct OperatorStateSnapshot {
  std::vector<InputStateSnapshot> inputs;
  std::vector<PendingPropagationSnapshot> pending;  // canonical: sorted
  OperatorMetricsSnapshot op_metrics;
  uint64_t punctuations_purged = 0;
  uint64_t punctuations_since_sweep = 0;
};

/// \brief Per query stream: how far the input was consumed. A restore
/// resumes replay from `events_consumed` on each stream.
struct InputProgress {
  uint64_t events_consumed = 0;
  int64_t watermark_ts = 0;  ///< max timestamp seen on the stream
};

/// \brief One whole-executor snapshot (see file comment).
struct StateSnapshot {
  /// Query + plan-shape identity; Restore refuses a mismatch.
  std::string fingerprint;
  std::vector<InputProgress> progress;  // per query stream
  uint64_t num_results = 0;
  std::vector<Tuple> results;  // kept results (canonical: sorted)
  uint64_t tuple_high_water = 0;
  uint64_t punct_high_water = 0;
  std::vector<OperatorStateSnapshot> operators;  // post-order
};

/// \brief CRC-32 (IEEE 802.3, reflected 0xEDB88320) of `size` bytes.
uint32_t Crc32(const void* data, size_t size);

/// \brief Canonical byte encoding of a punctuation — the sort/dedup
/// key Merge uses (Punctuation has no operator<).
std::string EncodePunctuationKey(const Punctuation& p);

/// \brief Normalizes to merge's canonical form: tuples and results
/// sorted (multisets), punctuations and pending propagations sorted
/// and deduplicated (sets; duplicate punctuations keep the max
/// arrival), so equal logical snapshots have equal serializations.
/// Merge/Split outputs are already canonical; hand-built snapshots
/// should be canonicalized before comparing.
void CanonicalizeSnapshot(StateSnapshot* snapshot);

/// \brief Serializes to the versioned, CRC-protected byte format.
/// Canonicalize first (the executors' capture paths already do) if
/// byte-equality comparisons are intended.
std::string SerializeSnapshot(const StateSnapshot& snapshot);

/// \brief Parses a serialized snapshot. Truncated input, unknown
/// magic/version/section ids, trailing garbage, and CRC mismatches
/// all return InvalidArgument without crashing.
Result<StateSnapshot> DeserializeSnapshot(std::string_view bytes);

/// \brief Serializes and writes atomically-ish (tmp file + rename).
Status WriteSnapshotFile(const StateSnapshot& snapshot,
                         const std::string& path);

/// \brief Reads and parses a snapshot file.
Result<StateSnapshot> ReadSnapshotFile(const std::string& path);

/// \brief The monoid merge over two shard snapshots of the same plan
/// (see file comment for the per-field semantics). The identity is
/// the default-constructed StateSnapshot; merging snapshots with
/// different non-empty fingerprints or operator structures is a
/// caller error (checked). Associative and, for same-plan snapshots,
/// commutative; the result is canonical.
StateSnapshot MergeSnapshots(const StateSnapshot& a, const StateSnapshot& b);

/// \brief Merge of one operator's shard states (the per-operator core
/// of MergeSnapshots, exposed so the parallel executor can fold its
/// shard captures into one logical snapshot).
OperatorStateSnapshot MergeOperatorSnapshots(const OperatorStateSnapshot& a,
                                             const OperatorStateSnapshot& b);

/// \brief Assigns a tuple of (operator, input) to one of `pieces`
/// split targets. The default hashes the whole tuple.
using SnapshotShardFn = std::function<size_t(
    size_t op, size_t input, const Tuple& tuple, size_t pieces)>;

/// \brief Splits one snapshot into `pieces` shard snapshots such that
/// folding them back with MergeSnapshots (in any association order)
/// reproduces `snapshot` exactly. Tuples are partitioned by
/// `shard_of` (default: whole-tuple hash — the ShardOf-style
/// re-hashing inverse of Merge); broadcast/max state is replicated
/// into every piece; summed counters stay on piece 0.
std::vector<StateSnapshot> SplitSnapshot(const StateSnapshot& snapshot,
                                         size_t pieces,
                                         SnapshotShardFn shard_of = nullptr);

}  // namespace punctsafe

#endif  // PUNCTSAFE_EXEC_CHECKPOINT_H_
