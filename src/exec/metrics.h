// Runtime accounting for join operators: the quantities the paper's
// safety property is *about* (join-state size staying bounded) plus
// the punctuation-side costs that the Section 5.2 cost/benefit
// discussion weighs.

#ifndef PUNCTSAFE_EXEC_METRICS_H_
#define PUNCTSAFE_EXEC_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace punctsafe {

/// \brief Per-input join-state accounting.
struct StateMetrics {
  uint64_t inserted = 0;       ///< tuples added to the state
  uint64_t purged = 0;         ///< tuples removed via punctuations
  uint64_t dropped_on_arrival = 0;  ///< new tuples immediately removable
  size_t live = 0;             ///< currently stored tuples
  size_t high_water = 0;       ///< max live ever observed

  void OnInsert() {
    ++inserted;
    ++live;
    if (live > high_water) high_water = live;
  }
  void OnPurge(size_t count) {
    purged += count;
    live -= count;
  }
};

/// \brief Per-operator accounting.
struct OperatorMetrics {
  uint64_t results_emitted = 0;
  uint64_t punctuations_received = 0;
  uint64_t punctuations_stored = 0;      ///< after dedup/expiry filtering
  uint64_t punctuations_propagated = 0;  ///< emitted on the output
  uint64_t punctuations_expired = 0;     ///< dropped by lifespan expiry
  uint64_t purge_sweeps = 0;
  uint64_t removability_checks = 0;
  size_t punctuations_live = 0;
  size_t punctuations_high_water = 0;
};

}  // namespace punctsafe

#endif  // PUNCTSAFE_EXEC_METRICS_H_
