// Runtime accounting for join operators: the quantities the paper's
// safety property is *about* (join-state size staying bounded) plus
// the punctuation-side costs that the Section 5.2 cost/benefit
// discussion weighs.
//
// All counters are relaxed atomics so that a monitoring thread (or the
// parallel executor's high-water sampler) can read them while the
// owning operator thread mutates them. Each counter is independently
// coherent; use Snapshot() when a mutually consistent view is wanted
// (it is still only quiescently consistent — exact once the operator
// has drained).

#ifndef PUNCTSAFE_EXEC_METRICS_H_
#define PUNCTSAFE_EXEC_METRICS_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string>

namespace punctsafe {

namespace internal {

/// \brief Lock-free max update (relaxed; monotone so order is moot).
inline void AtomicMax(std::atomic<size_t>& target, size_t value) {
  size_t cur = target.load(std::memory_order_relaxed);
  while (cur < value &&
         !target.compare_exchange_weak(cur, value,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace internal

/// \brief Plain-value copy of StateMetrics for cross-thread consumers.
struct StateMetricsSnapshot {
  uint64_t inserted = 0;
  uint64_t purged = 0;
  uint64_t dropped_on_arrival = 0;
  uint64_t probes = 0;
  uint64_t probe_allocs = 0;
  uint64_t index_compactions = 0;
  uint64_t insert_allocs = 0;
  uint64_t expand_allocs = 0;
  uint64_t arena_blocks_reclaimed = 0;
  size_t arena_bytes_reserved = 0;
  size_t arena_bytes_live = 0;
  size_t live = 0;
  size_t high_water = 0;

  /// \brief Element-wise accumulation, for rolling per-input (and,
  /// under partitioned execution, per-shard) snapshots up into one
  /// operator-level view. Note the high-water sum is an upper bound of
  /// the true joint high water (the parts need not peak together).
  StateMetricsSnapshot& operator+=(const StateMetricsSnapshot& other) {
    inserted += other.inserted;
    purged += other.purged;
    dropped_on_arrival += other.dropped_on_arrival;
    probes += other.probes;
    probe_allocs += other.probe_allocs;
    index_compactions += other.index_compactions;
    insert_allocs += other.insert_allocs;
    expand_allocs += other.expand_allocs;
    arena_blocks_reclaimed += other.arena_blocks_reclaimed;
    arena_bytes_reserved += other.arena_bytes_reserved;
    arena_bytes_live += other.arena_bytes_live;
    live += other.live;
    high_water += other.high_water;
    return *this;
  }
};

/// \brief Per-input join-state accounting (atomic; see file comment).
struct StateMetrics {
  std::atomic<uint64_t> inserted{0};       ///< tuples added to the state
  std::atomic<uint64_t> purged{0};         ///< tuples removed via punctuations
  std::atomic<uint64_t> dropped_on_arrival{0};  ///< immediately removable
  std::atomic<uint64_t> probes{0};         ///< index probes (any flavor)
  /// Probes that heap-allocated a fresh result vector (the legacy
  /// TupleStore::Probe). The allocation-free hot path — ProbeEach /
  /// ProbeInto — never bumps this, so `probe_allocs == 0` with
  /// `probes > 0` is the observable "no alloc per probe" property
  /// (pinned in tests/tuple_store_test.cc).
  std::atomic<uint64_t> probe_allocs{0};
  std::atomic<uint64_t> index_compactions{0};  ///< dead-slot index rebuilds
  /// Heap/system allocations performed by Insert for tuple storage.
  /// Without an arena every insert allocates (one per tuple, plus its
  /// strings); with the arena only fresh block mallocs count, so once
  /// the block working set has warmed up `insert_allocs` stops moving
  /// — the steady-state "no alloc per insert" property benchmarked in
  /// bench_arena (E17) and pinned in tests/tuple_store_test.cc.
  std::atomic<uint64_t> insert_allocs{0};
  /// Scratch-capacity growth events on the batched expansion path
  /// (MJoinOperator charges one per push/sweep whose frontier, hash,
  /// pair, or staged-output scratch had to grow). Once the working-set
  /// capacities have warmed up the expansion pipeline reuses them, so
  /// `expand_allocs` stops moving — the steady-state "no alloc per
  /// result" property pinned in tests alongside probe_allocs and
  /// insert_allocs.
  std::atomic<uint64_t> expand_allocs{0};
  /// Arena blocks reclaimed wholesale at epoch boundaries (0 without
  /// an arena).
  std::atomic<uint64_t> arena_blocks_reclaimed{0};
  /// Gauges mirroring EpochArena::bytes_reserved/bytes_live (0 without
  /// an arena); refreshed by the owning store after inserts and epoch
  /// advances.
  std::atomic<size_t> arena_bytes_reserved{0};
  std::atomic<size_t> arena_bytes_live{0};
  std::atomic<size_t> live{0};             ///< currently stored tuples
  std::atomic<size_t> high_water{0};       ///< max live ever observed

  void OnProbe() { probes.fetch_add(1, std::memory_order_relaxed); }
  /// \brief Batched probe accounting: n probes in one relaxed add (the
  /// run-replay path counts its extra rows wholesale).
  void OnProbes(uint64_t n) {
    if (n != 0) probes.fetch_add(n, std::memory_order_relaxed);
  }
  void OnExpandAllocs(uint64_t count) {
    if (count != 0) expand_allocs.fetch_add(count, std::memory_order_relaxed);
  }
  void OnProbeAlloc() {
    probe_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  void OnIndexCompaction() {
    index_compactions.fetch_add(1, std::memory_order_relaxed);
  }
  void OnInsertAllocs(uint64_t count) {
    if (count != 0) insert_allocs.fetch_add(count, std::memory_order_relaxed);
  }
  void OnArenaEpoch(uint64_t reclaimed, size_t bytes_reserved,
                    size_t bytes_live) {
    if (reclaimed != 0) {
      arena_blocks_reclaimed.fetch_add(reclaimed, std::memory_order_relaxed);
    }
    arena_bytes_reserved.store(bytes_reserved, std::memory_order_relaxed);
    arena_bytes_live.store(bytes_live, std::memory_order_relaxed);
  }

  void OnInsert() {
    inserted.fetch_add(1, std::memory_order_relaxed);
    size_t now_live = live.fetch_add(1, std::memory_order_relaxed) + 1;
    internal::AtomicMax(high_water, now_live);
  }
  /// \brief Batched insert accounting: end-state identical to n
  /// OnInsert calls (intermediate high waters during a pure-insert
  /// batch are all <= the final one, so one max fold is exact).
  void OnInserts(size_t n) {
    if (n == 0) return;
    inserted.fetch_add(n, std::memory_order_relaxed);
    size_t now_live = live.fetch_add(n, std::memory_order_relaxed) + n;
    internal::AtomicMax(high_water, now_live);
  }
  void OnPurge(size_t count) {
    purged.fetch_add(count, std::memory_order_relaxed);
    // A purge can never remove more tuples than are live; clamp instead
    // of wrapping the unsigned counter if accounting ever races or
    // double-counts (and flag it loudly in debug builds).
    size_t cur = live.load(std::memory_order_relaxed);
    assert(count <= cur && "StateMetrics::OnPurge exceeds live count");
    size_t next;
    do {
      next = count <= cur ? cur - count : 0;
    } while (!live.compare_exchange_weak(cur, next,
                                         std::memory_order_relaxed));
  }

  /// \brief Overwrites every counter from a snapshot (checkpoint
  /// restore: the rebuild re-runs Insert, so the counters must be
  /// reset to their captured values afterwards, not accumulated).
  void RestoreFrom(const StateMetricsSnapshot& s) {
    inserted.store(s.inserted, std::memory_order_relaxed);
    purged.store(s.purged, std::memory_order_relaxed);
    dropped_on_arrival.store(s.dropped_on_arrival,
                             std::memory_order_relaxed);
    probes.store(s.probes, std::memory_order_relaxed);
    probe_allocs.store(s.probe_allocs, std::memory_order_relaxed);
    index_compactions.store(s.index_compactions, std::memory_order_relaxed);
    insert_allocs.store(s.insert_allocs, std::memory_order_relaxed);
    expand_allocs.store(s.expand_allocs, std::memory_order_relaxed);
    arena_blocks_reclaimed.store(s.arena_blocks_reclaimed,
                                 std::memory_order_relaxed);
    arena_bytes_reserved.store(s.arena_bytes_reserved,
                               std::memory_order_relaxed);
    arena_bytes_live.store(s.arena_bytes_live, std::memory_order_relaxed);
    live.store(s.live, std::memory_order_relaxed);
    high_water.store(s.high_water, std::memory_order_relaxed);
  }

  StateMetricsSnapshot Snapshot() const {
    StateMetricsSnapshot s;
    s.inserted = inserted.load(std::memory_order_relaxed);
    s.purged = purged.load(std::memory_order_relaxed);
    s.dropped_on_arrival = dropped_on_arrival.load(std::memory_order_relaxed);
    s.probes = probes.load(std::memory_order_relaxed);
    s.probe_allocs = probe_allocs.load(std::memory_order_relaxed);
    s.index_compactions =
        index_compactions.load(std::memory_order_relaxed);
    s.insert_allocs = insert_allocs.load(std::memory_order_relaxed);
    s.expand_allocs = expand_allocs.load(std::memory_order_relaxed);
    s.arena_blocks_reclaimed =
        arena_blocks_reclaimed.load(std::memory_order_relaxed);
    s.arena_bytes_reserved =
        arena_bytes_reserved.load(std::memory_order_relaxed);
    s.arena_bytes_live = arena_bytes_live.load(std::memory_order_relaxed);
    s.live = live.load(std::memory_order_relaxed);
    s.high_water = high_water.load(std::memory_order_relaxed);
    return s;
  }
};

/// \brief Plain-value copy of OperatorMetrics.
struct OperatorMetricsSnapshot {
  uint64_t results_emitted = 0;
  uint64_t punctuations_received = 0;
  uint64_t punctuations_stored = 0;
  uint64_t punctuations_propagated = 0;
  uint64_t punctuations_expired = 0;
  uint64_t purge_sweeps = 0;
  uint64_t removability_checks = 0;
  size_t punctuations_live = 0;
  size_t punctuations_high_water = 0;
};

/// \brief Per-operator accounting (atomic; see file comment).
struct OperatorMetrics {
  std::atomic<uint64_t> results_emitted{0};
  std::atomic<uint64_t> punctuations_received{0};
  std::atomic<uint64_t> punctuations_stored{0};      ///< after dedup/expiry
  std::atomic<uint64_t> punctuations_propagated{0};  ///< emitted on output
  std::atomic<uint64_t> punctuations_expired{0};     ///< lifespan expiry
  std::atomic<uint64_t> purge_sweeps{0};
  std::atomic<uint64_t> removability_checks{0};
  std::atomic<size_t> punctuations_live{0};
  std::atomic<size_t> punctuations_high_water{0};

  /// \brief Records the current live-punctuation count and folds it
  /// into the high-water mark.
  void OnPunctuationsLive(size_t count) {
    punctuations_live.store(count, std::memory_order_relaxed);
    internal::AtomicMax(punctuations_high_water, count);
  }

  /// \brief Overwrites every counter from a snapshot (checkpoint
  /// restore; see StateMetrics::RestoreFrom).
  void RestoreFrom(const OperatorMetricsSnapshot& s) {
    results_emitted.store(s.results_emitted, std::memory_order_relaxed);
    punctuations_received.store(s.punctuations_received,
                                std::memory_order_relaxed);
    punctuations_stored.store(s.punctuations_stored,
                              std::memory_order_relaxed);
    punctuations_propagated.store(s.punctuations_propagated,
                                  std::memory_order_relaxed);
    punctuations_expired.store(s.punctuations_expired,
                               std::memory_order_relaxed);
    purge_sweeps.store(s.purge_sweeps, std::memory_order_relaxed);
    removability_checks.store(s.removability_checks,
                              std::memory_order_relaxed);
    punctuations_live.store(s.punctuations_live, std::memory_order_relaxed);
    punctuations_high_water.store(s.punctuations_high_water,
                                  std::memory_order_relaxed);
  }

  OperatorMetricsSnapshot Snapshot() const {
    OperatorMetricsSnapshot s;
    s.results_emitted = results_emitted.load(std::memory_order_relaxed);
    s.punctuations_received =
        punctuations_received.load(std::memory_order_relaxed);
    s.punctuations_stored =
        punctuations_stored.load(std::memory_order_relaxed);
    s.punctuations_propagated =
        punctuations_propagated.load(std::memory_order_relaxed);
    s.punctuations_expired =
        punctuations_expired.load(std::memory_order_relaxed);
    s.purge_sweeps = purge_sweeps.load(std::memory_order_relaxed);
    s.removability_checks =
        removability_checks.load(std::memory_order_relaxed);
    s.punctuations_live = punctuations_live.load(std::memory_order_relaxed);
    s.punctuations_high_water =
        punctuations_high_water.load(std::memory_order_relaxed);
    return s;
  }
};

}  // namespace punctsafe

#endif  // PUNCTSAFE_EXEC_METRICS_H_
