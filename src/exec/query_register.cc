#include "exec/query_register.h"

#include "core/plan_safety.h"
#include "plan/chooser.h"
#include "util/string_util.h"

namespace punctsafe {

Status QueryRegister::RegisterScheme(const PunctuationScheme& scheme) {
  PUNCTSAFE_ASSIGN_OR_RETURN(const Schema* schema,
                             catalog_.Get(scheme.stream()));
  if (scheme.arity() != schema->num_attributes()) {
    return Status::InvalidArgument(
        StrCat("scheme ", scheme.ToString(), " arity ", scheme.arity(),
               " != stream arity ", schema->num_attributes()));
  }
  if (scheme.NumPunctuatable() == 0) {
    return Status::InvalidArgument(
        "a punctuation scheme needs at least one punctuatable attribute");
  }
  return schemes_.Add(scheme);
}

Status QueryRegister::RegisterScheme(
    const std::string& stream, const std::vector<std::string>& attributes) {
  PUNCTSAFE_ASSIGN_OR_RETURN(const Schema* schema, catalog_.Get(stream));
  PUNCTSAFE_ASSIGN_OR_RETURN(
      PunctuationScheme scheme,
      PunctuationScheme::OnAttributes(stream, *schema, attributes));
  return schemes_.Add(std::move(scheme));
}

Result<RegisteredQuery> QueryRegister::RegisterWithChooser(
    const std::vector<std::string>& streams,
    const std::vector<JoinPredicateSpec>& predicates,
    const WorkloadStats& stats, CostObjective objective,
    ExecutorConfig config) {
  PUNCTSAFE_ASSIGN_OR_RETURN(
      ContinuousJoinQuery query,
      ContinuousJoinQuery::Create(catalog_, streams, predicates));
  PlanChooser chooser(query, schemes_, stats);
  PUNCTSAFE_ASSIGN_OR_RETURN(
      RankedPlan best, chooser.Choose(objective, config.mjoin.purge_policy,
                                      /*limit=*/256));
  return Register(streams, predicates, config, std::move(best.shape));
}

Result<RegisteredQuery> QueryRegister::Restore(
    const std::string& path, const std::vector<std::string>& streams,
    const std::vector<JoinPredicateSpec>& predicates, ExecutorConfig config,
    std::optional<PlanShape> shape) {
  PUNCTSAFE_ASSIGN_OR_RETURN(StateSnapshot snapshot, ReadSnapshotFile(path));
  PUNCTSAFE_ASSIGN_OR_RETURN(
      RegisteredQuery out,
      Register(streams, predicates, std::move(config), std::move(shape)));
  if (out.is_parallel()) {
    PUNCTSAFE_RETURN_IF_ERROR(out.parallel_executor->RestoreState(snapshot));
  } else {
    PUNCTSAFE_RETURN_IF_ERROR(out.executor->RestoreState(snapshot));
  }
  return out;
}

Result<RegisteredQuery> QueryRegister::Register(
    const std::vector<std::string>& streams,
    const std::vector<JoinPredicateSpec>& predicates, ExecutorConfig config,
    std::optional<PlanShape> shape) {
  PUNCTSAFE_ASSIGN_OR_RETURN(
      ContinuousJoinQuery query,
      ContinuousJoinQuery::Create(catalog_, streams, predicates));

  SafetyChecker checker(schemes_);
  PUNCTSAFE_ASSIGN_OR_RETURN(SafetyReport report, checker.CheckQuery(query));
  if (!report.safe) {
    return Status::FailedPrecondition(report.explanation);
  }

  PlanShape chosen =
      shape.value_or(PlanShape::SingleMJoin(query.num_streams()));
  PUNCTSAFE_ASSIGN_OR_RETURN(PlanSafetyReport plan_report,
                             CheckPlanSafety(query, schemes_, chosen));
  if (!plan_report.safe) {
    return Status::FailedPrecondition(
        StrCat("execution plan ", chosen.ToString(query),
               " is not safe under ", schemes_.ToString(),
               " although the query is (choose another plan, e.g. the "
               "single MJoin): ",
               plan_report.ToString(query)));
  }

  RegisteredQuery out;
  // Normalize the shard knob once at admission so every downstream
  // layer can assume shards >= 1.
  if (config.shards == 0) config.shards = 1;
  if (config.mode == ExecutionMode::kParallel) {
    PUNCTSAFE_ASSIGN_OR_RETURN(
        out.parallel_executor,
        ParallelExecutor::Create(query, schemes_, chosen, config));
  } else {
    PUNCTSAFE_ASSIGN_OR_RETURN(
        out.executor, PlanExecutor::Create(query, schemes_, chosen, config));
  }
  out.query = std::move(query);
  out.safety = std::move(report);
  out.shape = std::move(chosen);
  return out;
}

}  // namespace punctsafe
