// Shared plan-shape instantiation: turns a PlanShape tree into the
// post-order list of MJoin operators plus the wiring metadata (which
// operator input each raw stream or child output feeds). The serial
// PlanExecutor and the parallel pipelined executor both build from
// this and differ only in how they connect the edges (direct calls vs
// bounded queues).

#ifndef PUNCTSAFE_EXEC_OPERATOR_TREE_H_
#define PUNCTSAFE_EXEC_OPERATOR_TREE_H_

#include <memory>
#include <vector>

#include "exec/mjoin.h"
#include "query/cjq.h"
#include "query/plan_shape.h"
#include "stream/scheme.h"
#include "util/status.h"

namespace punctsafe {

/// \brief One instantiated plan tree, edges not yet wired.
struct OperatorTree {
  /// Operators in post-order; back() is the root.
  std::vector<std::unique_ptr<MJoinOperator>> operators;
  /// Per operator (parallel to `operators`): the LocalInputs it was
  /// built from. The parallel executor uses these to instantiate
  /// additional shard replicas of an operator (same inputs, same
  /// config — MJoinOperator::Create is deterministic) and to compute
  /// the operator's PartitionSpec.
  std::vector<std::vector<LocalInput>> node_inputs;
  /// Per query stream: (operator index, input index) consuming it.
  std::vector<std::pair<size_t, size_t>> leaf_route;
  /// Per operator (parallel to `operators`): the (parent operator
  /// index, parent input index) its output feeds. parent_op == npos
  /// for the root.
  struct ParentEdge {
    size_t parent_op = kNoParent;
    size_t parent_input = 0;
    static constexpr size_t kNoParent = static_cast<size_t>(-1);
  };
  std::vector<ParentEdge> parents;

  MJoinOperator* root() const { return operators.back().get(); }
};

/// \brief Instantiates `shape` over `query` (unsafe shapes included;
/// admission control lives in QueryRegister, not here).
Result<OperatorTree> BuildOperatorTree(const ContinuousJoinQuery& query,
                                       const SchemeSet& schemes,
                                       const PlanShape& shape,
                                       const MJoinConfig& config);

}  // namespace punctsafe

#endif  // PUNCTSAFE_EXEC_OPERATOR_TREE_H_
