// Push-based operator interface. Operators consume tuples and
// punctuations per input and emit output elements (join results and
// propagated punctuations) through an emitter callback, so they
// compose into arbitrary plan trees (paper Section 2.2's plan space:
// binary trees, MJoin trees, mixed).

#ifndef PUNCTSAFE_EXEC_OPERATOR_H_
#define PUNCTSAFE_EXEC_OPERATOR_H_

#include <cstdint>
#include <functional>
#include <utility>

#include "exec/metrics.h"
#include "exec/tuple_batch.h"
#include "obs/observability.h"
#include "stream/element.h"

namespace punctsafe {

/// \brief How a join operator reacts to punctuations (paper Section
/// 5.2, Plan Parameter II, after [Ding et al. 2004]).
enum class PurgePolicy {
  kEager,  ///< purge sweep on every new punctuation
  kLazy,   ///< purge sweep every `lazy_batch` punctuations
  kNone,   ///< never purge (the unbounded baseline)
};

class JoinOperator {
 public:
  using Emitter = std::function<void(const StreamElement&)>;

  virtual ~JoinOperator() = default;

  virtual size_t num_inputs() const = 0;

  /// \brief Consumes one data tuple on `input` at logical time `ts`.
  /// Equivalent to a PushBatch of one row — the batch-of-1 shim the
  /// executors use for unbatched pushes.
  virtual void PushTuple(size_t input, const Tuple& tuple, int64_t ts) = 0;

  /// \brief Consumes a whole batch of tuples on `input`, each row at
  /// its own timestamp. Must be result-identical to pushing the rows
  /// one at a time (batching changes granularity, not semantics);
  /// operators override it to amortize punctuation/purge checks to
  /// batch boundaries and probe through the vectorized store path.
  /// The batch is mutable so overrides can build its hash column and
  /// filter its selection vector in place.
  virtual void PushBatch(size_t input, TupleBatch& batch) {
    for (size_t i = 0; i < batch.size(); ++i) {
      PushTuple(input, batch.tuple(i), batch.timestamp(i));
    }
  }

  /// \brief Consumes one punctuation on `input` at logical time `ts`.
  virtual void PushPunctuation(size_t input, const Punctuation& punctuation,
                               int64_t ts) = 0;

  /// \brief Tuples currently held across all join states.
  virtual size_t TotalLiveTuples() const = 0;

  /// \brief Punctuations currently held across all inputs.
  virtual size_t TotalLivePunctuations() const = 0;

  void SetEmitter(Emitter emitter) { emitter_ = std::move(emitter); }

  /// \brief Attaches this operator's observation point (may be null
  /// to detach). The executor owns the OperatorObs; operators only
  /// borrow it and treat null as "observability off".
  void SetObserver(obs::OperatorObs* observer) {
    obs_ = observer;
    OnObserverSet();
  }
  obs::OperatorObs* observer() const { return obs_; }

  const OperatorMetrics& metrics() const { return metrics_; }

 protected:
  void Emit(const StreamElement& element) {
    if (element.is_tuple()) ++metrics_.results_emitted;
    if (emitter_) emitter_(element);
  }

  /// \brief Hook for subclasses that forward the observer to owned
  /// components (e.g. tuple stores reporting epoch advances).
  virtual void OnObserverSet() {}

  Emitter emitter_;
  OperatorMetrics metrics_;
  obs::OperatorObs* obs_ = nullptr;
};

}  // namespace punctsafe

#endif  // PUNCTSAFE_EXEC_OPERATOR_H_
