// Push-based operator interface. Operators consume tuples and
// punctuations per input and emit output elements (join results and
// propagated punctuations) through an emitter callback, so they
// compose into arbitrary plan trees (paper Section 2.2's plan space:
// binary trees, MJoin trees, mixed).

#ifndef PUNCTSAFE_EXEC_OPERATOR_H_
#define PUNCTSAFE_EXEC_OPERATOR_H_

#include <cstdint>
#include <functional>
#include <utility>

#include "exec/metrics.h"
#include "exec/tuple_batch.h"
#include "obs/observability.h"
#include "stream/element.h"

namespace punctsafe {

/// \brief How a join operator reacts to punctuations (paper Section
/// 5.2, Plan Parameter II, after [Ding et al. 2004]).
enum class PurgePolicy {
  kEager,  ///< purge sweep on every new punctuation
  kLazy,   ///< purge sweep every `lazy_batch` punctuations
  kNone,   ///< never purge (the unbounded baseline)
};

class JoinOperator {
 public:
  using Emitter = std::function<void(const StreamElement&)>;
  /// Batch-granular result emission: the operator hands a whole staged
  /// TupleBatch downstream in one call. The batch (and any view tuples
  /// inside it — batched expansion stages rows as views over operator
  /// scratch) is only valid DURING the call: consumers must copy what
  /// they keep and must not hold references past their return. The
  /// reference is mutable so consumers can build hash columns / filter
  /// the selection in place.
  using BatchEmitter = std::function<void(TupleBatch&)>;

  virtual ~JoinOperator() = default;

  virtual size_t num_inputs() const = 0;

  /// \brief Consumes one data tuple on `input` at logical time `ts`.
  /// Equivalent to a PushBatch of one row — the batch-of-1 shim the
  /// executors use for unbatched pushes.
  virtual void PushTuple(size_t input, const Tuple& tuple, int64_t ts) = 0;

  /// \brief Consumes a whole batch of tuples on `input`, each row at
  /// its own timestamp. Must be result-identical to pushing the rows
  /// one at a time (batching changes granularity, not semantics);
  /// operators override it to amortize punctuation/purge checks to
  /// batch boundaries and probe through the vectorized store path.
  /// The batch is mutable so overrides can build its hash column and
  /// filter its selection vector in place.
  virtual void PushBatch(size_t input, TupleBatch& batch) {
    for (size_t i = 0; i < batch.size(); ++i) {
      PushTuple(input, batch.tuple(i), batch.timestamp(i));
    }
  }

  /// \brief Consumes one punctuation on `input` at logical time `ts`.
  virtual void PushPunctuation(size_t input, const Punctuation& punctuation,
                               int64_t ts) = 0;

  /// \brief Tuples currently held across all join states.
  virtual size_t TotalLiveTuples() const = 0;

  /// \brief Punctuations currently held across all inputs.
  virtual size_t TotalLivePunctuations() const = 0;

  void SetEmitter(Emitter emitter) { emitter_ = std::move(emitter); }
  /// \brief Optional batch-granular emission channel. When unset,
  /// EmitBatch falls back to per-element Emit in row order, so
  /// operators call EmitBatch unconditionally and batch_size=1
  /// executors stay bit-identical to tuple-at-a-time wiring.
  void SetBatchEmitter(BatchEmitter emitter) {
    batch_emitter_ = std::move(emitter);
  }

  /// \brief Attaches this operator's observation point (may be null
  /// to detach). The executor owns the OperatorObs; operators only
  /// borrow it and treat null as "observability off".
  void SetObserver(obs::OperatorObs* observer) {
    obs_ = observer;
    OnObserverSet();
  }
  obs::OperatorObs* observer() const { return obs_; }

  const OperatorMetrics& metrics() const { return metrics_; }

 protected:
  void Emit(const StreamElement& element) {
    if (element.is_tuple()) ++metrics_.results_emitted;
    if (emitter_) emitter_(element);
  }

  /// \brief Emits every row of `batch` (all rows are results; no
  /// selection is consulted). Counts results once for the whole batch
  /// — the fallback loop below must NOT route through Emit, or rows
  /// would double-count.
  void EmitBatch(TupleBatch& batch) {
    if (batch.empty()) return;
    metrics_.results_emitted.fetch_add(batch.size(),
                                       std::memory_order_relaxed);
    if (batch_emitter_) {
      batch_emitter_(batch);
      return;
    }
    if (!emitter_) return;
    for (size_t i = 0; i < batch.size(); ++i) {
      emitter_(StreamElement::OfTuple(batch.tuple(i), batch.timestamp(i)));
    }
  }

  /// \brief Hook for subclasses that forward the observer to owned
  /// components (e.g. tuple stores reporting epoch advances).
  virtual void OnObserverSet() {}

  Emitter emitter_;
  BatchEmitter batch_emitter_;
  OperatorMetrics metrics_;
  obs::OperatorObs* obs_ = nullptr;
};

}  // namespace punctsafe

#endif  // PUNCTSAFE_EXEC_OPERATOR_H_
