#include "exec/tuple_store.h"

#include <cstring>
#include <new>

#include "util/logging.h"

namespace punctsafe {

TupleStore::TupleStore(std::vector<size_t> indexed_offsets,
                       TupleStoreOptions options)
    : indexed_offsets_(std::move(indexed_offsets)) {
  indexes_.resize(indexed_offsets_.size());
  for (size_t i = 0; i < indexed_offsets_.size(); ++i) {
    size_t offset = indexed_offsets_[i];
    if (offset >= offset_to_index_.size()) {
      offset_to_index_.resize(offset + 1, kNoIndex);
    }
    PUNCTSAFE_CHECK(offset_to_index_[offset] == kNoIndex)
        << "duplicate indexed offset " << offset;
    offset_to_index_[offset] = i;
  }
  if (options.arena) {
    arena_ = std::make_unique<EpochArena>(options.arena_block_bytes);
  }
}

size_t TupleStore::InsertRow(const Tuple& tuple, uint64_t* heap_allocs) {
  size_t slot = handles_.size();
  for (size_t i = 0; i < indexed_offsets_.size(); ++i) {
    PUNCTSAFE_CHECK(indexed_offsets_[i] < tuple.size())
        << "indexed offset beyond tuple arity";
    // The cached hash makes this O(1) even for string keys; the Value
    // key is copied (into owning storage) only the first time a key
    // appears in the index.
    indexes_[i].FindOrCreate(tuple.at(indexed_offsets_[i]))->push_back(slot);
  }
  return AppendRowStorage(tuple, heap_allocs);
}

size_t TupleStore::AppendRowStorage(const Tuple& tuple,
                                    uint64_t* heap_allocs) {
  size_t slot = AppendRowPayload(tuple, heap_allocs);
  live_.push_back(true);
  pos_in_live_.push_back(live_slots_.size());
  live_slots_.push_back(slot);
  ++live_count_;
  return slot;
}

size_t TupleStore::AppendRowPayload(const Tuple& tuple,
                                    uint64_t* heap_allocs) {
  size_t slot = handles_.size();
  if (arena_) {
    // One bump allocation holds the whole tuple: the Value array
    // first, then the payload bytes of every string too long for
    // Value's inline buffer. One allocation means one owning block per
    // tuple, which is what makes per-block live counting exact.
    size_t n = tuple.size();
    size_t payload = 0;
    for (const Value& v : tuple.values()) payload += v.ExternalBytes();
    EpochArena::Allocation alloc =
        arena_->Allocate(n * sizeof(Value) + payload);
    Value* values = reinterpret_cast<Value*>(alloc.ptr);
    char* bytes = alloc.ptr + n * sizeof(Value);
    for (size_t i = 0; i < n; ++i) {
      const Value& src = tuple.at(i);
      size_t extern_bytes = src.ExternalBytes();
      if (extern_bytes > 0) {
        std::string_view sv = src.AsString();
        std::memcpy(bytes, sv.data(), extern_bytes);
        new (values + i) Value(Value::ExternalString(
            bytes, static_cast<uint32_t>(extern_bytes), src.Hash()));
        bytes += extern_bytes;
      } else {
        // Scalars and inline-capable strings are self-contained; the
        // copy is a plain payload copy, no allocation.
        new (values + i) Value(src);
      }
    }
    handles_.emplace_back(Tuple::ExternalRef{}, values, n);
    slot_block_.push_back(alloc.block);
  } else {
    // Heap mode: the handle owns a fresh value vector (one allocation)
    // plus one per string that exceeds the inline buffer.
    *heap_allocs += 1;
    for (const Value& v : tuple.values()) {
      if (v.ExternalBytes() > 0) *heap_allocs += 1;
    }
    handles_.push_back(tuple);
  }
  return slot;
}

size_t TupleStore::Insert(const Tuple& tuple) {
  uint64_t heap_allocs = 0;
  size_t slot = InsertRow(tuple, &heap_allocs);
  if (arena_) {
    uint64_t block_allocs = arena_->blocks_allocated();
    metrics_.OnInsertAllocs(block_allocs - last_block_allocs_);
    last_block_allocs_ = block_allocs;
    metrics_.OnArenaEpoch(0, arena_->bytes_reserved(), arena_->bytes_live());
  } else {
    metrics_.OnInsertAllocs(heap_allocs);
  }
  metrics_.OnInsert();
  return slot;
}

size_t TupleStore::InsertBatch(const TupleBatch& batch) {
  const std::vector<uint32_t>& sel = batch.selection();
  if (sel.empty()) return 0;
  // The metrics tail — two atomic adds, the arena block-alloc delta,
  // and the gauge refresh — runs once per batch; the delta
  // accumulation makes the final counter values identical to a
  // per-row Insert loop. Slot bookkeeping that would grow mid-batch
  // grows once up front — keeping the at-least-doubling step so
  // repeated batches stay amortized O(1) (reserving to the exact
  // size every batch would degrade growth to quadratic).
  const size_t total = handles_.size() + sel.size();
  auto reserve_geometric = [total](auto& v) {
    if (total > v.capacity()) v.reserve(std::max(total, v.capacity() * 2));
  };
  reserve_geometric(handles_);
  reserve_geometric(live_);
  reserve_geometric(pos_in_live_);
  reserve_geometric(live_slots_);
  if (arena_) reserve_geometric(slot_block_);
  uint64_t heap_allocs = 0;
  if (indexed_offsets_.size() == 1) {
    // Single-index store (the common operator shape): one bucket
    // resolution per same-key run across the batch — the insert-side
    // twin of ProbeBatch's run amortization. The bucket pointer stays
    // valid for the whole run because nothing calls FindOrCreate (the
    // only operation that can grow the index) until the key changes.
    const size_t off = indexed_offsets_[0];
    FlatKeyIndex::Bucket* bucket = nullptr;
    const Value* run_key = nullptr;
    for (uint32_t row : sel) {
      const Tuple& tuple = batch.tuple(row);
      PUNCTSAFE_CHECK(off < tuple.size())
          << "indexed offset beyond tuple arity";
      const Value& key = tuple.at(off);
      if (run_key == nullptr || !(*run_key == key)) {
        bucket = indexes_[0].FindOrCreate(key);
        run_key = &key;
      }
      bucket->push_back(handles_.size());
      AppendRowPayload(tuple, &heap_allocs);
    }
    // Bulk live bookkeeping: the batch's slots are consecutive
    // [first_slot, total) and all live, so the three per-row
    // push_backs (one into a bit vector) collapse into sequential
    // fills.
    const size_t first_slot = total - sel.size();
    const size_t first_pos = live_slots_.size();
    live_.resize(total, true);
    pos_in_live_.resize(total);
    live_slots_.resize(first_pos + sel.size());
    for (size_t i = 0; i < sel.size(); ++i) {
      pos_in_live_[first_slot + i] = first_pos + i;
      live_slots_[first_pos + i] = first_slot + i;
    }
    live_count_ += sel.size();
  } else {
    for (uint32_t row : sel) InsertRow(batch.tuple(row), &heap_allocs);
  }
  if (arena_) {
    uint64_t block_allocs = arena_->blocks_allocated();
    metrics_.OnInsertAllocs(block_allocs - last_block_allocs_);
    last_block_allocs_ = block_allocs;
    metrics_.OnArenaEpoch(0, arena_->bytes_reserved(), arena_->bytes_live());
  } else {
    metrics_.OnInsertAllocs(heap_allocs);
  }
  metrics_.OnInserts(sel.size());
  return sel.size();
}

void TupleStore::Remove(size_t slot) {
  PUNCTSAFE_CHECK(slot < live_.size());
  if (!live_[slot]) return;
  live_[slot] = false;
  // Swap-remove from the dense live list.
  size_t pos = pos_in_live_[slot];
  size_t last = live_slots_.back();
  live_slots_[pos] = last;
  pos_in_live_[last] = pos;
  live_slots_.pop_back();
  --live_count_;
  ++dead_count_;
  // Payload release is deferred to the epoch boundary: probe results
  // referencing this slot stay valid for the rest of the step.
  released_.push_back(slot);
  MaybeCompactIndexes();
}

void TupleStore::AdvanceEpoch() {
  for (size_t slot : released_) {
    if (arena_) arena_->NoteDead(slot_block_[slot]);
    // Clear the handle: the slot id stays tombstoned forever, but the
    // payload (heap mode) or the block's claim on it (arena mode) goes
    // now.
    handles_[slot] = Tuple();
  }
  released_.clear();
  if (arena_) {
    size_t reclaimed = arena_->AdvanceEpoch();
    metrics_.OnArenaEpoch(reclaimed, arena_->bytes_reserved(),
                          arena_->bytes_live());
    if (obs::kCompiled && obs_ != nullptr) {
      obs_->Note(obs::TraceKind::kEpochAdvance, reclaimed,
                 arena_->bytes_live());
    }
  }
}

void TupleStore::ForEachLive(
    const std::function<void(size_t, const Tuple&)>& fn) const {
  for (size_t slot : live_slots_) fn(slot, handles_[slot]);
}

bool TupleStore::AnyLive(
    const std::function<bool(const Tuple&)>& pred) const {
  for (size_t slot : live_slots_) {
    if (pred(handles_[slot])) return true;
  }
  return false;
}

void TupleStore::ProbeInto(size_t offset, const Value& value,
                           std::vector<size_t>* out) const {
  out->clear();
  ProbeEach(offset, value,
            [out](size_t slot, const Tuple&) { out->push_back(slot); });
}

std::vector<size_t> TupleStore::Probe(size_t offset,
                                      const Value& value) const {
  metrics_.OnProbeAlloc();
  std::vector<size_t> out;
  ProbeInto(offset, value, &out);
  return out;
}

void TupleStore::PurgeSlots(const std::vector<size_t>& slots) {
  size_t removed = 0;
  for (size_t slot : slots) {
    if (IsLive(slot)) {
      Remove(slot);
      ++removed;
    }
  }
  metrics_.OnPurge(removed);
}

void TupleStore::MaybeCompactIndexes() {
  // Rebuild once dead slots dominate, keeping probe cost proportional
  // to live data (same thresholds as the probe-path trigger; see the
  // constants in the header).
  if (dead_count_ < kCompactMinDead ||
      dead_count_ < live_count_ * kCompactDeadFactor) {
    return;
  }
  CompactIndexes();
}

void TupleStore::CompactIndexes() const {
  // Dead slots stay tombstoned in `live_` (slot ids must remain
  // stable); only the indexes are cleaned, by full rebuild: FlatKeyIndex
  // has no per-entry deletion (rebuild-only by design, so probe chains
  // never carry tombstones), and compaction is the one infrequent spot
  // where a rebuild amortizes. Per-bucket slot order is preserved, so
  // probe emission order is unchanged.
  metrics_.OnIndexCompaction();
  for (size_t i = 0; i < indexes_.size(); ++i) {
    FlatKeyIndex fresh;
    fresh.Reserve(indexes_[i].size());
    indexes_[i].ForEachEntry([&](const Value& key, const Bucket& slots) {
      Bucket* kept = nullptr;
      for (size_t slot : slots) {
        if (!live_[slot]) continue;
        if (kept == nullptr) kept = fresh.FindOrCreate(key);
        kept->push_back(slot);
      }
    });
    indexes_[i] = std::move(fresh);
  }
  dead_count_ = 0;
  pending_compact_ = false;
}

}  // namespace punctsafe
