#include "exec/tuple_store.h"

#include <algorithm>

#include "util/logging.h"

namespace punctsafe {

TupleStore::TupleStore(std::vector<size_t> indexed_offsets)
    : indexed_offsets_(std::move(indexed_offsets)) {
  indexes_.resize(indexed_offsets_.size());
  for (size_t i = 0; i < indexed_offsets_.size(); ++i) {
    size_t offset = indexed_offsets_[i];
    if (offset >= offset_to_index_.size()) {
      offset_to_index_.resize(offset + 1, kNoIndex);
    }
    PUNCTSAFE_CHECK(offset_to_index_[offset] == kNoIndex)
        << "duplicate indexed offset " << offset;
    offset_to_index_[offset] = i;
  }
}

size_t TupleStore::Insert(Tuple tuple) {
  size_t slot = tuples_.size();
  for (size_t i = 0; i < indexed_offsets_.size(); ++i) {
    PUNCTSAFE_CHECK(indexed_offsets_[i] < tuple.size())
        << "indexed offset beyond tuple arity";
    // The cached hash makes this O(1) even for string keys; the Value
    // key is copied only the first time a key appears in the index.
    indexes_[i][tuple.at(indexed_offsets_[i])].push_back(slot);
  }
  tuples_.push_back(std::move(tuple));
  live_.push_back(true);
  pos_in_live_.push_back(live_slots_.size());
  live_slots_.push_back(slot);
  ++live_count_;
  metrics_.OnInsert();
  return slot;
}

void TupleStore::Remove(size_t slot) {
  PUNCTSAFE_CHECK(slot < live_.size());
  if (!live_[slot]) return;
  live_[slot] = false;
  // Swap-remove from the dense live list.
  size_t pos = pos_in_live_[slot];
  size_t last = live_slots_.back();
  live_slots_[pos] = last;
  pos_in_live_[last] = pos;
  live_slots_.pop_back();
  --live_count_;
  ++dead_count_;
  MaybeCompactIndexes();
}

void TupleStore::ForEachLive(
    const std::function<void(size_t, const Tuple&)>& fn) const {
  for (size_t slot : live_slots_) fn(slot, tuples_[slot]);
}

bool TupleStore::AnyLive(
    const std::function<bool(const Tuple&)>& pred) const {
  for (size_t slot : live_slots_) {
    if (pred(tuples_[slot])) return true;
  }
  return false;
}

void TupleStore::ProbeInto(size_t offset, const Value& value,
                           std::vector<size_t>* out) const {
  out->clear();
  ProbeEach(offset, value,
            [out](size_t slot, const Tuple&) { out->push_back(slot); });
}

std::vector<size_t> TupleStore::Probe(size_t offset,
                                      const Value& value) const {
  metrics_.OnProbeAlloc();
  std::vector<size_t> out;
  ProbeInto(offset, value, &out);
  return out;
}

void TupleStore::PurgeSlots(const std::vector<size_t>& slots) {
  size_t removed = 0;
  for (size_t slot : slots) {
    if (IsLive(slot)) {
      Remove(slot);
      ++removed;
    }
  }
  metrics_.OnPurge(removed);
}

void TupleStore::MaybeCompactIndexes() {
  // Rebuild once dead slots dominate, keeping probe cost proportional
  // to live data (same thresholds as the probe-path trigger; see the
  // constants in the header).
  if (dead_count_ < kCompactMinDead ||
      dead_count_ < live_count_ * kCompactDeadFactor) {
    return;
  }
  CompactIndexes();
}

void TupleStore::CompactIndexes() const {
  // Dead tuples stay in `tuples_` (slot ids must remain stable); only
  // index buckets are cleaned.
  metrics_.OnIndexCompaction();
  for (size_t i = 0; i < indexes_.size(); ++i) {
    for (auto it = indexes_[i].begin(); it != indexes_[i].end();) {
      auto& slots = it->second;
      slots.erase(std::remove_if(slots.begin(), slots.end(),
                                 [this](size_t s) { return !live_[s]; }),
                  slots.end());
      if (slots.empty()) {
        it = indexes_[i].erase(it);
      } else {
        ++it;
      }
    }
  }
  dead_count_ = 0;
  pending_compact_ = false;
}

}  // namespace punctsafe
