#include "exec/reference_join.h"

namespace punctsafe {

Result<std::unique_ptr<ReferenceJoinOperator>> ReferenceJoinOperator::Create(
    const ContinuousJoinQuery& query) {
  auto op =
      std::unique_ptr<ReferenceJoinOperator>(new ReferenceJoinOperator());
  op->query_copy_ = query;
  op->query_ = &op->query_copy_;
  op->states_.resize(query.num_streams());
  return op;
}

bool ReferenceJoinOperator::PredicatesHold(
    const std::vector<const Tuple*>& bound, size_t upto) const {
  for (const ResolvedPredicate& p : query_->predicates()) {
    if (!p.Involves(upto)) continue;
    size_t other = p.OtherStream(upto);
    if (bound[other] == nullptr) continue;
    if (!(bound[upto]->at(p.AttrOn(upto)) ==
          bound[other]->at(p.AttrOn(other)))) {
      return false;
    }
  }
  return true;
}

void ReferenceJoinOperator::Extend(size_t fixed, const Tuple& tuple,
                                   size_t next,
                                   std::vector<const Tuple*>* current,
                                   int64_t ts) {
  if (next == query_->num_streams()) {
    std::vector<const Tuple*> parts(current->begin(), current->end());
    Emit(StreamElement::OfTuple(ConcatTuples(parts), ts));
    return;
  }
  if (next == fixed) {
    Extend(fixed, tuple, next + 1, current, ts);
    return;
  }
  for (const Tuple& candidate : states_[next]) {
    (*current)[next] = &candidate;
    if (PredicatesHold(*current, next)) {
      Extend(fixed, tuple, next + 1, current, ts);
    }
    (*current)[next] = nullptr;
  }
}

void ReferenceJoinOperator::PushTuple(size_t input, const Tuple& tuple,
                                      int64_t ts) {
  std::vector<const Tuple*> current(query_->num_streams(), nullptr);
  current[input] = &tuple;
  // Verify predicates touching `input` lazily as streams bind; start
  // the recursion from stream 0.
  Extend(input, tuple, 0, &current, ts);
  states_[input].push_back(tuple);
}

void ReferenceJoinOperator::PushPunctuation(size_t /*input*/,
                                            const Punctuation& /*p*/,
                                            int64_t /*ts*/) {
  ++metrics_.punctuations_received;  // observed, deliberately unused
}

size_t ReferenceJoinOperator::TotalLiveTuples() const {
  size_t total = 0;
  for (const auto& s : states_) total += s.size();
  return total;
}

}  // namespace punctsafe
