#include "exec/shard_map.h"

#include <algorithm>
#include <numeric>

#include "util/string_util.h"

namespace punctsafe {

ShardMap::ShardMap(size_t num_shards)
    : slot_to_shard_(BalancedAssignment(num_shards == 0 ? 1 : num_shards)),
      num_shards_(num_shards == 0 ? 1 : num_shards) {}

std::vector<uint32_t> ShardMap::BalancedAssignment(size_t num_shards) {
  std::vector<uint32_t> slots(kNumSlots);
  for (size_t i = 0; i < kNumSlots; ++i) {
    slots[i] = static_cast<uint32_t>(i % num_shards);
  }
  return slots;
}

Status ShardMap::Apply(std::vector<uint32_t> assignment, size_t num_shards) {
  if (num_shards == 0) {
    return Status::InvalidArgument("ShardMap::Apply: num_shards must be >= 1");
  }
  if (assignment.size() != kNumSlots) {
    return Status::InvalidArgument(
        StrCat("ShardMap::Apply: assignment has ", assignment.size(),
               " slots, want ", kNumSlots));
  }
  for (uint32_t shard : assignment) {
    if (shard >= num_shards) {
      return Status::InvalidArgument(
          StrCat("ShardMap::Apply: slot routed to shard ", shard,
                 " outside [0, ", num_shards, ")"));
    }
  }
  slot_to_shard_ = std::move(assignment);
  num_shards_ = num_shards;
  ++version_;
  return Status::OK();
}

std::vector<uint32_t> ComputeShardAssignment(
    const std::vector<uint64_t>& slot_loads, size_t num_shards) {
  const size_t n = slot_loads.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return slot_loads[a] > slot_loads[b];
  });

  std::vector<uint32_t> assignment(n, 0);
  if (num_shards <= 1) return assignment;
  std::vector<uint64_t> shard_load(num_shards, 0);
  std::vector<size_t> shard_slots(num_shards, 0);
  for (size_t slot : order) {
    // Least-loaded shard; ties broken by fewest slots so an all-zero
    // (or heavily duplicated) load vector still spreads slots evenly,
    // then by lowest shard id for determinism.
    size_t best = 0;
    for (size_t s = 1; s < num_shards; ++s) {
      if (shard_load[s] < shard_load[best] ||
          (shard_load[s] == shard_load[best] &&
           shard_slots[s] < shard_slots[best])) {
        best = s;
      }
    }
    assignment[slot] = static_cast<uint32_t>(best);
    shard_load[best] += slot_loads[slot];
    ++shard_slots[best];
  }
  return assignment;
}

double LoadSkew(const std::vector<uint64_t>& shard_loads) {
  if (shard_loads.empty()) return 1.0;
  uint64_t total = 0;
  uint64_t max = 0;
  for (uint64_t load : shard_loads) {
    total += load;
    max = std::max(max, load);
  }
  if (total == 0) return 1.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(shard_loads.size());
  return static_cast<double>(max) / mean;
}

}  // namespace punctsafe
