// A deliberately naive n-way nested-loop join that stores every input
// tuple forever and ignores punctuations. It plays two roles:
//  * ground truth for differential tests — any punctuation-driven
//    operator must emit exactly the same result set on the same trace
//    (purging must never lose results: Definition 1's guarantee);
//  * the unbounded baseline of the paper's motivation — its join state
//    grows linearly with the input, which the E1/E11 benchmarks plot
//    against the punctuated operators.

#ifndef PUNCTSAFE_EXEC_REFERENCE_JOIN_H_
#define PUNCTSAFE_EXEC_REFERENCE_JOIN_H_

#include <memory>
#include <vector>

#include "exec/operator.h"
#include "query/cjq.h"
#include "util/status.h"

namespace punctsafe {

class ReferenceJoinOperator : public JoinOperator {
 public:
  /// \brief One input per query stream; output layout matches the
  /// single-MJoin operator (streams concatenated ascending).
  static Result<std::unique_ptr<ReferenceJoinOperator>> Create(
      const ContinuousJoinQuery& query);

  size_t num_inputs() const override { return states_.size(); }
  void PushTuple(size_t input, const Tuple& tuple, int64_t ts) override;
  void PushPunctuation(size_t input, const Punctuation& punctuation,
                       int64_t ts) override;
  size_t TotalLiveTuples() const override;
  size_t TotalLivePunctuations() const override { return 0; }

 private:
  ReferenceJoinOperator() = default;

  // Recursive nested-loop expansion over streams != `fixed`.
  void Extend(size_t fixed, const Tuple& tuple, size_t next,
              std::vector<const Tuple*>* current, int64_t ts);
  bool PredicatesHold(const std::vector<const Tuple*>& bound,
                      size_t upto) const;

  const ContinuousJoinQuery* query_ = nullptr;
  ContinuousJoinQuery query_copy_;
  std::vector<std::vector<Tuple>> states_;
};

}  // namespace punctsafe

#endif  // PUNCTSAFE_EXEC_REFERENCE_JOIN_H_
