// A standalone symmetric binary hash join [Wilschut & Apers 1991]
// over two *raw* streams, with the Section 3.1 purge rule: a tuple t
// stored for S_1 is purged once the S_2 punctuation store excludes the
// partner-value subspace t is waiting on (and symmetrically).
//
// This is the paper's binary base case implemented independently of
// the general MJoin machinery; the test suite runs the two against
// each other differentially. Plan trees always instantiate
// MJoinOperator (which subsumes n = 2); this operator exists for
// fidelity to Section 3.1, for the quickstart example, and as a
// PJoin-style [Ding et al. 2004] single-operator benchmark subject.

#ifndef PUNCTSAFE_EXEC_SYMMETRIC_HASH_JOIN_H_
#define PUNCTSAFE_EXEC_SYMMETRIC_HASH_JOIN_H_

#include <memory>
#include <vector>

#include "exec/operator.h"
#include "exec/punctuation_store.h"
#include "exec/tuple_store.h"
#include "query/cjq.h"
#include "stream/scheme.h"
#include "util/status.h"

namespace punctsafe {

struct SymmetricHashJoinConfig {
  PurgePolicy purge_policy = PurgePolicy::kEager;
  size_t lazy_batch = 64;
  std::optional<int64_t> punctuation_lifespan;
  bool drop_excluded_arrivals = true;
  /// Arena-backed tuple storage with epoch reclamation (see
  /// TupleStoreOptions::arena); results are identical on or off.
  bool arena = true;
};

class SymmetricHashJoinOperator : public JoinOperator {
 public:
  /// \brief Builds the operator for a two-stream CJQ (conjunctive
  /// equi-join predicates). Input 0/1 are query streams 0/1.
  static Result<std::unique_ptr<SymmetricHashJoinOperator>> Create(
      const ContinuousJoinQuery& query, const SchemeSet& schemes,
      SymmetricHashJoinConfig config = {});

  size_t num_inputs() const override { return 2; }
  void PushTuple(size_t input, const Tuple& tuple, int64_t ts) override;
  /// Batch arrival path: probes the partner state through the
  /// vectorized TupleStore::ProbeBatch (hash column built once per
  /// batch) and amortizes the punctuation-exclusion and eager
  /// removability checks to the batch boundary. Result-identical to
  /// per-row PushTuple.
  void PushBatch(size_t input, TupleBatch& batch) override;
  void PushPunctuation(size_t input, const Punctuation& punctuation,
                       int64_t ts) override;
  size_t TotalLiveTuples() const override;
  size_t TotalLivePunctuations() const override;

  const StateMetrics& state_metrics(size_t input) const {
    return states_[input]->metrics();
  }
  /// \brief Both inputs' state snapshots summed into one
  /// operator-level view (same rollup surface as MJoinOperator, so
  /// sharded drivers can aggregate either operator uniformly).
  StateMetricsSnapshot AggregateStateSnapshot() const;

  /// \brief Section 3.1: the state of `input` is purgeable iff some
  /// simple scheme exists on a partner join attribute of the *other*
  /// stream.
  bool InputPurgeable(size_t input) const { return purgeable_[input]; }

  void Sweep(int64_t now);

 protected:
  void OnObserverSet() override;

 private:
  SymmetricHashJoinOperator() = default;

  // Is tuple `t` of `input` waiting only on partner values the other
  // store's punctuations already exclude?
  bool Removable(size_t input, const Tuple& t, int64_t now) const;

  SymmetricHashJoinConfig config_;
  // Per input: this side's predicate attrs and the partner's, aligned.
  std::vector<size_t> my_attrs_[2];
  std::vector<size_t> partner_attrs_[2];
  bool purgeable_[2] = {false, false};
  std::unique_ptr<TupleStore> states_[2];
  std::unique_ptr<PunctuationStore> punct_stores_[2];
  size_t punctuations_since_sweep_ = 0;
  // Reused scratch (single-threaded operator; mutable because
  // Removable is const): the per-arrival/per-sweep loops must not
  // allocate in steady state.
  mutable std::vector<Value> waiting_scratch_;
  std::vector<Value> sweep_key_scratch_;
  std::vector<size_t> sweep_scratch_;
};

}  // namespace punctsafe

#endif  // PUNCTSAFE_EXEC_SYMMETRIC_HASH_JOIN_H_
