#include "exec/partition_router.h"

#include <algorithm>

#include "util/string_util.h"

namespace punctsafe {

namespace {

constexpr size_t kOutside = static_cast<size_t>(-1);

// Finalizer of splitmix64: Value::Hash for int64 keys is close to the
// identity on common stdlibs, so without mixing, sequential keys land
// on shards in lockstep patterns (k % K). One round of mixing makes
// the shard choice insensitive to key structure.
uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

struct UnionFind {
  explicit UnionFind(size_t n) : parent(n) {
    for (size_t i = 0; i < n; ++i) parent[i] = i;
  }
  size_t Find(size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent[Find(a)] = Find(b); }
  std::vector<size_t> parent;
};

}  // namespace

size_t PartitionSpec::ShardOf(size_t input, const Tuple& tuple,
                              size_t num_shards) const {
  if (num_shards <= 1) return 0;
  return Mix64(tuple.at(hash_offsets[input]).Hash()) % num_shards;
}

uint64_t PartitionSpec::KeyHash(size_t input, const Tuple& tuple) const {
  return Mix64(tuple.at(hash_offsets[input]).Hash());
}

void ScatterBatch(const PartitionSpec& spec, size_t input,
                  const TupleBatch& batch, size_t num_shards,
                  std::vector<TupleBatch>* out) {
  if (out->size() < num_shards) out->resize(num_shards);
  for (size_t s = 0; s < num_shards; ++s) (*out)[s].Clear();
  const size_t n = batch.size();
  for (size_t i = 0; i < n; ++i) {
    const Tuple& t = batch.tuple(i);
    (*out)[spec.ShardOf(input, t, num_shards)].Append(t, batch.timestamp(i));
  }
}

void ScatterBatch(const PartitionSpec& spec, const ShardMap& map, size_t input,
                  const TupleBatch& batch, size_t num_shards,
                  std::vector<TupleBatch>* out,
                  std::atomic<uint64_t>* slot_routed) {
  if (out->size() < num_shards) out->resize(num_shards);
  for (size_t s = 0; s < num_shards; ++s) (*out)[s].Clear();
  const size_t n = batch.size();
  for (size_t i = 0; i < n; ++i) {
    const Tuple& t = batch.tuple(i);
    const uint64_t h = spec.KeyHash(input, t);
    if (slot_routed != nullptr) {
      slot_routed[ShardMap::SlotOf(h)].fetch_add(1, std::memory_order_relaxed);
    }
    (*out)[map.ShardOf(h)].Append(t, batch.timestamp(i));
  }
}

PartitionSpec ComputePartitionSpec(const ContinuousJoinQuery& query,
                                   const std::vector<LocalInput>& inputs) {
  PartitionSpec spec;
  const size_t m = inputs.size();

  // Composite layouts, matching MJoinOperator: an input's row is its
  // covered streams' schemas concatenated in ascending stream order.
  std::vector<size_t> input_of(query.num_streams(), kOutside);
  std::vector<size_t> base(m, 0);  // node-id base per input
  size_t num_nodes = 0;
  std::vector<std::vector<std::pair<size_t, size_t>>> stream_base(m);
  for (size_t k = 0; k < m; ++k) {
    base[k] = num_nodes;
    size_t offset = 0;
    for (size_t s : inputs[k].streams) {
      input_of[s] = k;
      stream_base[k].push_back({s, offset});
      offset += query.schema(s).num_attributes();
    }
    num_nodes += offset;
  }
  auto composite_offset = [&](size_t input, size_t stream, size_t attr) {
    for (const auto& [s, start] : stream_base[input]) {
      if (s == stream) return start + attr;
    }
    return kOutside;
  };

  // Localize the cross-input equi-join predicates and union their
  // endpoint attributes into equivalence classes.
  struct LocalPred {
    size_t node_a, node_b;
  };
  std::vector<LocalPred> preds;
  UnionFind uf(num_nodes);
  for (const ResolvedPredicate& p : query.predicates()) {
    size_t ia = input_of[p.left_stream];
    size_t ib = input_of[p.right_stream];
    if (ia == kOutside || ib == kOutside || ia == ib) continue;
    size_t na = base[ia] + composite_offset(ia, p.left_stream, p.left_attr);
    size_t nb = base[ib] + composite_offset(ib, p.right_stream, p.right_attr);
    preds.push_back({na, nb});
    uf.Union(na, nb);
  }
  if (preds.empty()) {
    spec.detail = "not partitionable: no cross-input equi-join predicate";
    return spec;
  }

  // Candidate classes: one representative attribute in every input.
  // Iterating node ids ascending makes the choice deterministic.
  std::vector<size_t> chosen_offsets;
  size_t chosen_root = kOutside;
  for (size_t root = 0; root < num_nodes && chosen_root == kOutside; ++root) {
    if (uf.Find(root) != root) continue;
    std::vector<size_t> offsets(m, kOutside);
    size_t covered = 0;
    for (size_t node = 0; node < num_nodes; ++node) {
      if (uf.Find(node) != root) continue;
      // Node -> (input, offset); inputs are contiguous id ranges.
      size_t k = m - 1;
      while (base[k] > node) --k;
      if (offsets[k] == kOutside) {
        offsets[k] = node - base[k];
        ++covered;
      }
    }
    if (covered != m) continue;
    // With three or more inputs, exactness additionally needs every
    // predicate inside the class (see partition_router.h); a binary
    // operator always verifies all its predicates on expansion, so
    // any covering class is exact there.
    if (m > 2) {
      bool all_in_class = std::all_of(
          preds.begin(), preds.end(), [&](const LocalPred& p) {
            return uf.Find(p.node_a) == root && uf.Find(p.node_b) == root;
          });
      if (!all_in_class) continue;
    }
    chosen_root = root;
    chosen_offsets = std::move(offsets);
  }

  if (chosen_root == kOutside) {
    spec.detail = StrCat("not partitionable: no equi-join attribute class ",
                         "covers all ", m, " inputs",
                         m > 2 ? " with every predicate inside it" : "");
    return spec;
  }
  spec.partitionable = true;
  spec.hash_offsets = std::move(chosen_offsets);
  std::string offsets_str;
  for (size_t k = 0; k < m; ++k) {
    offsets_str += (k ? "," : "") + std::to_string(spec.hash_offsets[k]);
  }
  spec.detail = StrCat("partition key offsets [", offsets_str, "]");
  return spec;
}

bool PunctuationAligner::Arrive(size_t shard, const Punctuation& p,
                                int64_t ts, int64_t* forward_ts) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[p];
  if (entry.seen.empty()) entry.seen.assign(num_shards_, false);
  if (!entry.seen[shard]) {
    entry.seen[shard] = true;
    ++entry.seen_count;
  }
  entry.max_ts = std::max(entry.max_ts, ts);
  pending_high_water_ = std::max(pending_high_water_, entries_.size());
  if (entry.seen_count < num_shards_) return false;
  *forward_ts = entry.max_ts;
  entries_.erase(p);
  return true;
}

void PunctuationAligner::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

size_t PunctuationAligner::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

size_t PunctuationAligner::pending_high_water() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_high_water_;
}

}  // namespace punctsafe
