#include "exec/symmetric_hash_join.h"

#include <algorithm>

#include "util/logging.h"

namespace punctsafe {

Result<std::unique_ptr<SymmetricHashJoinOperator>>
SymmetricHashJoinOperator::Create(const ContinuousJoinQuery& query,
                                  const SchemeSet& schemes,
                                  SymmetricHashJoinConfig config) {
  if (query.num_streams() != 2) {
    return Status::InvalidArgument(
        "SymmetricHashJoinOperator handles exactly two streams");
  }
  auto op = std::unique_ptr<SymmetricHashJoinOperator>(
      new SymmetricHashJoinOperator());
  op->config_ = config;

  // Align predicate attribute lists per side.
  for (const ResolvedPredicate& p : query.predicates()) {
    op->my_attrs_[0].push_back(p.AttrOn(0));
    op->partner_attrs_[0].push_back(p.AttrOn(1));
    op->my_attrs_[1].push_back(p.AttrOn(1));
    op->partner_attrs_[1].push_back(p.AttrOn(0));
  }

  for (size_t side = 0; side < 2; ++side) {
    size_t other = 1 - side;
    // Section 3.1 (generalized to multi-attribute schemes): the state
    // of `side` is purgeable iff the other stream has a scheme whose
    // punctuatable attributes all are join attributes.
    for (const PunctuationScheme* s :
         schemes.SchemesFor(query.stream(other))) {
      if (s->arity() != query.schema(other).num_attributes()) continue;
      std::vector<size_t> pa = s->PunctuatableAttrs();
      bool usable = std::all_of(pa.begin(), pa.end(), [&](size_t a) {
        return std::find(op->my_attrs_[other].begin(),
                         op->my_attrs_[other].end(),
                         a) != op->my_attrs_[other].end();
      });
      if (usable) {
        op->purgeable_[side] = true;
        break;
      }
    }
    std::vector<size_t> indexed = op->my_attrs_[side];
    std::sort(indexed.begin(), indexed.end());
    indexed.erase(std::unique(indexed.begin(), indexed.end()), indexed.end());
    op->states_[side] = std::make_unique<TupleStore>(
        indexed, TupleStoreOptions{.arena = config.arena});
    op->punct_stores_[side] =
        std::make_unique<PunctuationStore>(config.punctuation_lifespan);
  }
  return op;
}

bool SymmetricHashJoinOperator::Removable(size_t input, const Tuple& t,
                                          int64_t now) const {
  if (!purgeable_[input]) return false;
  size_t other = 1 - input;
  waiting_scratch_.clear();
  for (size_t a : my_attrs_[input]) waiting_scratch_.push_back(t.at(a));
  return punct_stores_[other]->CoversSubspace(partner_attrs_[input],
                                              waiting_scratch_, now);
}

void SymmetricHashJoinOperator::OnObserverSet() {
  for (auto& state : states_) state->SetObserver(obs_);
}

void SymmetricHashJoinOperator::PushTuple(size_t input, const Tuple& tuple,
                                          int64_t ts) {
  PUNCTSAFE_CHECK(input < 2);
  if (obs::kCompiled && obs_ != nullptr) obs_->NoteTupleTs(ts);
  if (config_.drop_excluded_arrivals &&
      punct_stores_[input]->ExcludesTuple(tuple, ts)) {
    states_[input]->CountDroppedArrival();
    return;
  }

  // Probe the partner state: index cursor on the first predicate,
  // verification of the rest (allocation-free; the arriving tuple's
  // key hash is already cached).
  size_t other = 1 - input;
  states_[other]->ProbeEach(
      my_attrs_[other][0], tuple.at(my_attrs_[input][0]),
      [&](size_t, const Tuple& partner) {
        for (size_t i = 1; i < my_attrs_[input].size(); ++i) {
          if (!(partner.at(my_attrs_[other][i]) ==
                tuple.at(my_attrs_[input][i]))) {
            return;
          }
        }
        const Tuple& left = (input == 0) ? tuple : partner;
        const Tuple& right = (input == 0) ? partner : tuple;
        Emit(StreamElement::OfTuple(ConcatTuples({&left, &right}), ts));
      });

  // The kTupleIn ring event is recorded by the executor at the leaf
  // push, which already holds the NowNs taken for the latency sample.

  if (config_.purge_policy == PurgePolicy::kEager &&
      Removable(input, tuple, ts)) {
    states_[input]->CountDroppedArrival();
    return;
  }
  states_[input]->Insert(tuple);
}

void SymmetricHashJoinOperator::PushBatch(size_t input, TupleBatch& batch) {
  PUNCTSAFE_CHECK(input < 2);
  if (batch.empty()) return;
  if (my_attrs_[input].empty()) {
    // Predicate-less query: no probe attribute to vectorize over.
    JoinOperator::PushBatch(input, batch);
    return;
  }
  if (obs::kCompiled && obs_ != nullptr) {
    obs_->NoteTupleTs(batch.max_timestamp());
  }

  batch.SelectAll();
  // Punctuation-exclusion filtering amortized to the batch boundary
  // (the store cannot change mid-batch; empty store = no scan).
  if (config_.drop_excluded_arrivals && punct_stores_[input]->size() > 0) {
    std::vector<uint32_t>& sel = *batch.mutable_selection();
    size_t keep = 0;
    for (uint32_t row : sel) {
      if (punct_stores_[input]->ExcludesTuple(batch.tuple(row),
                                              batch.timestamp(row))) {
        states_[input]->CountDroppedArrival();
      } else {
        sel[keep++] = row;
      }
    }
    sel.resize(keep);
  }
  if (batch.selection().empty()) return;

  // One vectorized probe over the partner state for the whole batch:
  // the hash column is gathered once, a same-key run resolves its
  // bucket once, and per-row emission order matches the per-tuple
  // path exactly.
  const size_t other = 1 - input;
  batch.BuildHashColumn(my_attrs_[input][0]);
  states_[other]->ProbeBatch(
      my_attrs_[other][0], batch, my_attrs_[input][0],
      [&](uint32_t row, size_t, const Tuple& partner) {
        const Tuple& tuple = batch.tuple(row);
        for (size_t i = 1; i < my_attrs_[input].size(); ++i) {
          if (!(partner.at(my_attrs_[other][i]) ==
                tuple.at(my_attrs_[input][i]))) {
            return;
          }
        }
        const Tuple& left = (input == 0) ? tuple : partner;
        const Tuple& right = (input == 0) ? partner : tuple;
        Emit(StreamElement::OfTuple(ConcatTuples({&left, &right}),
                                    batch.timestamp(row)));
      });

  // Eager removability consults only the partner's punctuation store;
  // when that is empty the whole per-row check is skipped (probing
  // never touches this input's state, so probe-all-then-insert is
  // result-identical to the interleaved per-row order).
  const bool check_removable = config_.purge_policy == PurgePolicy::kEager &&
                               purgeable_[input] &&
                               punct_stores_[other]->size() > 0;
  if (check_removable) {
    for (uint32_t row : batch.selection()) {
      if (Removable(input, batch.tuple(row), batch.timestamp(row))) {
        states_[input]->CountDroppedArrival();
      } else {
        states_[input]->Insert(batch.tuple(row));
      }
    }
  } else {
    states_[input]->InsertBatch(batch);
  }
}

void SymmetricHashJoinOperator::PushPunctuation(
    size_t input, const Punctuation& punctuation, int64_t ts) {
  PUNCTSAFE_CHECK(input < 2);
  ++metrics_.punctuations_received;
  if (obs::kCompiled && obs_ != nullptr) obs_->RecordPunctuation(input, ts);
  if (config_.punctuation_lifespan.has_value()) {
    for (auto& store : punct_stores_) {
      metrics_.punctuations_expired += store->ExpireBefore(ts);
    }
  }
  if (punct_stores_[input]->Add(punctuation, ts)) {
    ++metrics_.punctuations_stored;
  }
  metrics_.OnPunctuationsLive(TotalLivePunctuations());

  switch (config_.purge_policy) {
    case PurgePolicy::kEager:
      Sweep(ts);
      break;
    case PurgePolicy::kLazy:
      if (++punctuations_since_sweep_ >= config_.lazy_batch) Sweep(ts);
      break;
    case PurgePolicy::kNone:
      break;
  }
}

void SymmetricHashJoinOperator::Sweep(int64_t now) {
  ++metrics_.purge_sweeps;
  punctuations_since_sweep_ = 0;
  const bool observing = obs::kCompiled && obs_ != nullptr;
  const int64_t sweep_start = observing ? obs::NowNs() : 0;
  uint64_t purged_total = 0;
  for (size_t side = 0; side < 2; ++side) {
    if (!purgeable_[side]) continue;
    size_t other = 1 - side;
    sweep_scratch_.clear();
    // Run-length verdict cache: removability depends only on the
    // tuple's join-attribute projection, so a run of tuples with the
    // same projection (bursty keys) costs one punctuation-store
    // lookup, not one per tuple.
    bool have_run = false;
    bool run_removable = false;
    states_[side]->ForEachLive([&](size_t slot, const Tuple& t) {
      ++metrics_.removability_checks;
      waiting_scratch_.clear();
      for (size_t a : my_attrs_[side]) waiting_scratch_.push_back(t.at(a));
      if (!have_run || waiting_scratch_ != sweep_key_scratch_) {
        run_removable = punct_stores_[other]->CoversSubspace(
            partner_attrs_[side], waiting_scratch_, now);
        std::swap(sweep_key_scratch_, waiting_scratch_);
        have_run = true;
      }
      if (run_removable) sweep_scratch_.push_back(slot);
    });
    purged_total += sweep_scratch_.size();
    states_[side]->PurgeSlots(sweep_scratch_);
  }
  // Epoch boundary: release purged payloads and reclaim all-dead
  // arena blocks (no probe results are in flight here).
  for (auto& state : states_) state->AdvanceEpoch();
  if (observing) obs_->RecordSweep(obs::NowNs() - sweep_start, purged_total);
}

StateMetricsSnapshot SymmetricHashJoinOperator::AggregateStateSnapshot()
    const {
  StateMetricsSnapshot total;
  for (const auto& state : states_) total += state->metrics().Snapshot();
  return total;
}

size_t SymmetricHashJoinOperator::TotalLiveTuples() const {
  return states_[0]->live_count() + states_[1]->live_count();
}

size_t SymmetricHashJoinOperator::TotalLivePunctuations() const {
  return punct_stores_[0]->size() + punct_stores_[1]->size();
}

}  // namespace punctsafe
