// Flat storage for partial join assignments (one stored-tuple pointer
// per operator input, nullptr = not expanded yet), used by the
// MJoin/PurgeEngine Expand loops.
//
// A std::vector<std::vector<const Tuple*>> frees every inner row on
// clear(), so the expansion loop used to pay one heap allocation per
// partial assignment per step. Rows here live back-to-back in one
// vector with a fixed stride, so Reset() keeps the capacity and the
// steady-state expansion path allocates nothing (docs/PERF.md).
//
// Rows are only appended from a *different* buffer (the expand loops
// ping-pong between two), so append never invalidates the row it is
// copying from.

#ifndef PUNCTSAFE_EXEC_ASSIGNMENT_BUFFER_H_
#define PUNCTSAFE_EXEC_ASSIGNMENT_BUFFER_H_

#include <cstddef>
#include <vector>

#include "stream/tuple.h"

namespace punctsafe {

class AssignmentBuffer {
 public:
  /// \brief Empties the buffer (capacity retained) and fixes the row
  /// width for subsequent appends.
  void Reset(size_t width) {
    width_ = width;
    data_.clear();
  }

  size_t size() const { return width_ == 0 ? 0 : data_.size() / width_; }
  bool empty() const { return data_.empty(); }
  size_t width() const { return width_; }

  const Tuple* const* Row(size_t i) const { return data_.data() + i * width_; }

  /// \brief Appends an all-null row; returns its mutable storage.
  const Tuple** AppendNullRow() {
    data_.resize(data_.size() + width_, nullptr);
    return data_.data() + data_.size() - width_;
  }

  /// \brief Appends a copy of `row` (width() pointers) with position
  /// `overwrite_at` replaced by `overwrite`. `row` must not point into
  /// this buffer (append may reallocate).
  void AppendWith(const Tuple* const* row, size_t overwrite_at,
                  const Tuple* overwrite) {
    data_.insert(data_.end(), row, row + width_);
    data_[data_.size() - width_ + overwrite_at] = overwrite;
  }

  void Swap(AssignmentBuffer& other) {
    data_.swap(other.data_);
    std::swap(width_, other.width_);
  }

 private:
  size_t width_ = 0;
  std::vector<const Tuple*> data_;
};

}  // namespace punctsafe

#endif  // PUNCTSAFE_EXEC_ASSIGNMENT_BUFFER_H_
