// The punctuation store of one operator input.
//
// Punctuations must be retained after use: they purge not only the
// tuples currently stored but also matching *future* tuples (paper
// Section 5.1). Retaining them forever is itself an unbounded-memory
// hazard, so the store supports the paper's two practical remedies:
//  * lifespans — a punctuation expires `lifespan` time units after its
//    arrival timestamp (the TCP sequence-number example);
//  * explicit purging by punctuations from partner streams
//    (punctuation purgeability), driven by the owning operator.
//
// Lookup is organized by constrained-attribute signature: the chained
// purge test "is subspace {attrs = values} closed?" probes each
// signature that is a subset of `attrs` with the projected values —
// O(#signatures) hash lookups. Probes are heterogeneous (C++20
// transparent unordered lookup): the projection is a reused vector of
// Value pointers that hashes exactly like the equivalent Tuple via
// the shared kTupleHashSeed/TupleHashStep chain over the Values'
// cached hashes, so a probe constructs no Tuple and copies no Value.

#ifndef PUNCTSAFE_EXEC_PUNCTUATION_STORE_H_
#define PUNCTSAFE_EXEC_PUNCTUATION_STORE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "stream/punctuation.h"
#include "stream/tuple.h"

namespace punctsafe {

class PunctuationStore {
 public:
  /// \param lifespan expiry horizon in timestamp units; nullopt keeps
  ///        punctuations forever.
  explicit PunctuationStore(std::optional<int64_t> lifespan = std::nullopt)
      : lifespan_(lifespan) {}

  /// \brief Stores a punctuation observed at `now`; returns false for
  /// duplicates (which refresh the timestamp instead).
  bool Add(const Punctuation& punctuation, int64_t now);

  /// \brief True iff some stored, unexpired punctuation excludes every
  /// future tuple of the subspace {attrs[i] = values[i], rest = *}.
  bool CoversSubspace(const std::vector<size_t>& attrs,
                      std::span<const Value> values, int64_t now) const;
  // std::span has no initializer_list constructor; keep brace-list
  // call sites working.
  bool CoversSubspace(const std::vector<size_t>& attrs,
                      std::initializer_list<Value> values,
                      int64_t now) const {
    return CoversSubspace(
        attrs, std::span<const Value>(values.begin(), values.size()), now);
  }

  /// \brief True iff a stored, unexpired punctuation matches the tuple
  /// (i.e. the tuple was promised never to arrive — contract
  /// violation, or a late arrival the operator may drop).
  bool ExcludesTuple(const Tuple& tuple, int64_t now) const;

  /// \brief Drops punctuations whose lifespan ended before `now`;
  /// returns how many were dropped. No-op without a lifespan.
  size_t ExpireBefore(int64_t now);

  /// \brief Removes stored punctuations selected by the predicate
  /// (punctuation purgeability, Section 5.1); returns count removed.
  size_t RemoveIf(const std::function<bool(const Punctuation&)>& pred);

  size_t size() const { return size_; }
  size_t high_water() const { return high_water_; }

  /// \brief Calls fn for every stored punctuation (expired included).
  void ForEach(const std::function<void(const Punctuation&)>& fn) const;

  /// \brief Like ForEach but also exposes each punctuation's arrival
  /// timestamp — the checkpoint capture path (exec/checkpoint.h) needs
  /// it so lifespan expiry keeps working after a restore (re-adding
  /// with the original arrival via Add(p, arrival)).
  void ForEachEntry(
      const std::function<void(const Punctuation&, int64_t)>& fn) const;

 private:
  struct Entry {
    Punctuation punctuation;
    int64_t arrival = 0;
  };

  // Non-owning projection of Values used as a heterogeneous map key.
  // Hash/equality agree exactly with the Tuple holding the same
  // values (same seed, same step, same type-strict Value equality).
  struct ProjectedKey {
    const std::vector<const Value*>* parts;
  };
  struct TupleKeyHash {
    using is_transparent = void;
    size_t operator()(const Tuple& t) const { return t.Hash(); }
    size_t operator()(const ProjectedKey& k) const {
      size_t seed = kTupleHashSeed;
      for (const Value* v : *k.parts) seed = TupleHashStep(seed, v->Hash());
      return seed;
    }
  };
  struct TupleKeyEq {
    using is_transparent = void;
    bool operator()(const Tuple& a, const Tuple& b) const { return a == b; }
    bool operator()(const ProjectedKey& k, const Tuple& t) const {
      if (k.parts->size() != t.size()) return false;
      for (size_t i = 0; i < t.size(); ++i) {
        if (!(*(*k.parts)[i] == t.at(i))) return false;
      }
      return true;
    }
    bool operator()(const Tuple& t, const ProjectedKey& k) const {
      return (*this)(k, t);
    }
  };

  // Signature = sorted constrained-attr offsets; per signature, a map
  // from the constant projection (as a Tuple) to the entry.
  struct Group {
    std::vector<size_t> attrs;
    std::unordered_map<Tuple, Entry, TupleKeyHash, TupleKeyEq> by_values;
  };

  bool Expired(const Entry& e, int64_t now) const {
    return lifespan_.has_value() && e.arrival + *lifespan_ <= now;
  }

  std::optional<int64_t> lifespan_;
  std::vector<Group> groups_;
  // Reused projection scratch (single-threaded store; mutable because
  // lookups are const): probes must not allocate in steady state.
  mutable std::vector<const Value*> key_scratch_;
  size_t size_ = 0;
  size_t high_water_ = 0;
};

}  // namespace punctsafe

#endif  // PUNCTSAFE_EXEC_PUNCTUATION_STORE_H_
