// The MJoin operator [Viglas et al. 2003]: a generalized symmetric
// join over n >= 2 inputs, extended with punctuation-driven state
// purging via the paper's chained purge strategy (Sections 3.2 and
// 4.2).
//
// Inputs may be raw streams or sub-plan outputs; each input carries a
// composite row whose layout is the concatenation of its covered
// query streams' schemas in ascending stream order (the operator's
// output uses the same convention over the union of its covers, so
// operators nest without glue).
//
// Runtime behavior per input i:
//  * new tuple  — joined symmetrically against the other states
//    (index-accelerated expansion along the operator's predicate
//    graph), results emitted, tuple inserted; under the eager policy
//    its removability is tested immediately so already-closed arrivals
//    never occupy state ("purging future tuples", Section 5.1).
//  * new punctuation — stored (with optional lifespan), then a purge
//    sweep runs per policy: every stored tuple whose chained purge
//    plan is fully covered by the punctuation stores is dropped.
//    If the punctuation instantiates a propagatable scheme, an output
//    punctuation is emitted once the matching stored tuples are gone
//    (pending until then) — the propagation rule plan trees rely on.
//
// Removability of tuple t in input i follows the chained purge plan
// derived from the operator-local generalized punctuation graph
// (core/local_graph.h): walk the plan's steps, at each step verify
// that the joinable-value combinations accumulated so far are all
// excluded by the target input's punctuation store, then extend the
// joinable set T_t[Υ] through the target's state.

#ifndef PUNCTSAFE_EXEC_MJOIN_H_
#define PUNCTSAFE_EXEC_MJOIN_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/local_graph.h"
#include "exec/batch_frontier.h"
#include "exec/checkpoint.h"
#include "exec/operator.h"
#include "exec/punctuation_store.h"
#include "exec/tuple_store.h"
#include "query/cjq.h"
#include "util/status.h"

namespace punctsafe {

struct MJoinConfig {
  PurgePolicy purge_policy = PurgePolicy::kEager;
  /// Punctuations between sweeps under the lazy policy.
  size_t lazy_batch = 64;
  /// Lifespan (timestamp units) for stored punctuations; nullopt
  /// keeps them forever (see Section 5.1 on the trade-off).
  std::optional<int64_t> punctuation_lifespan;
  /// Drop arriving tuples already excluded by a stored punctuation on
  /// their own input (late/contract-violating arrivals).
  bool drop_excluded_arrivals = true;
  /// Emit output punctuations for propagatable schemes.
  bool propagate_punctuations = true;
  /// Joinable-set size cap during removability checks; exceeding it
  /// aborts the check conservatively (tuple stays).
  size_t max_joinable_set = 4096;
  /// Purge stored punctuations once partner punctuations prove them
  /// obsolete (paper Section 5.1, "punctuation purgeability"): a
  /// punctuation can go when, for every join predicate touching one of
  /// its constrained attributes, the partner input is itself closed on
  /// the corresponding value and holds no matching live tuple.
  bool purge_punctuations = false;
  /// Arena-backed tuple storage with epoch reclamation tied to purge
  /// sweeps (TupleStoreOptions::arena); off = per-tuple heap
  /// ownership. Results are identical either way — the differential
  /// harness sweeps both.
  bool arena = true;
};

class MJoinOperator : public JoinOperator {
 public:
  /// \brief Builds an MJoin over `inputs` (>= 2) of `query`.
  ///
  /// `inputs[k].streams` are the query streams covered by input k;
  /// `inputs[k].schemes` the punctuation schemes deliverable on it
  /// (for raw-stream inputs, RawAvailableSchemes). Covers must be
  /// disjoint. Inputs whose operator-local state is not purgeable get
  /// no purge plan: the operator still runs, its state just grows —
  /// exactly the unsafe behavior the safety checker exists to reject,
  /// kept executable for the paper's unbounded-state experiments.
  static Result<std::unique_ptr<MJoinOperator>> Create(
      const ContinuousJoinQuery& query, std::vector<LocalInput> inputs,
      MJoinConfig config);

  size_t num_inputs() const override { return inputs_.size(); }
  void PushTuple(size_t input, const Tuple& tuple, int64_t ts) override;
  /// Batch arrival path: result-identical to per-row PushTuple, with
  /// the per-tuple overheads amortized to the batch boundary — the
  /// punctuation-exclusion scan and the eager removability check are
  /// skipped wholesale when no punctuation can affect them (stores
  /// cannot change mid-batch), and the binary-join first hop probes
  /// through the vectorized TupleStore::ProbeBatch over the batch's
  /// hash column.
  void PushBatch(size_t input, TupleBatch& batch) override;
  void PushPunctuation(size_t input, const Punctuation& punctuation,
                       int64_t ts) override;
  size_t TotalLiveTuples() const override;
  size_t TotalLivePunctuations() const override;

  /// \brief Per-input join-state metrics.
  const StateMetrics& state_metrics(size_t input) const {
    return states_[input]->metrics();
  }
  /// \brief All inputs' state snapshots summed into one operator-level
  /// view (under partitioned execution, one shard's contribution to
  /// the logical operator's aggregate).
  StateMetricsSnapshot AggregateStateSnapshot() const;
  /// \brief Summed probe-run statistics over all input stores
  /// (TupleStore::ProbeRunStats): the mean same-key run length of the
  /// batched probe path, the adaptive-batch tuning signal.
  TupleStore::ProbeRunStats ProbeRunStatsTotal() const {
    TupleStore::ProbeRunStats total;
    for (const auto& state : states_) {
      total.rows += state->probe_run_stats().rows;
      total.runs += state->probe_run_stats().runs;
    }
    return total;
  }
  /// \brief Whether input k's state is purgeable (Theorem 3 on the
  /// operator-local generalized graph).
  bool InputPurgeable(size_t input) const {
    return input_purgeable_[input];
  }
  /// \brief Streams covered by the operator output (sorted).
  const std::vector<size_t>& output_streams() const {
    return output_streams_;
  }
  /// \brief Output composite width (attribute count).
  size_t output_width() const { return output_width_; }

  /// \brief Forces a purge sweep (used by lazy-policy drivers that
  /// want a final flush, and by tests).
  void Sweep(int64_t now);

  /// \brief Stored punctuations dropped by the Section 5.1
  /// punctuation-purgeability pass.
  uint64_t punctuations_purged() const { return punctuations_purged_; }

  /// \brief Captures this operator's logical state for a
  /// punctuation-aligned checkpoint (exec/checkpoint.h): live tuples,
  /// punctuation-store entries with arrivals, pending propagations,
  /// and metric counters. Must run while the operator is quiescent
  /// (between pushes; under the parallel executor, behind a barrier).
  OperatorStateSnapshot CaptureState() const;

  /// \brief Rebuilds the captured state into this operator, which must
  /// be freshly created (same query/inputs/config shape, empty state).
  /// Tuples are re-inserted through the normal path (so indexes and
  /// arena layout rebuild), then the metric counters are overwritten
  /// with their captured values.
  Status RestoreState(const OperatorStateSnapshot& snapshot);

  /// \brief Re-evaluates every pending propagation as if all inputs
  /// had changed. Restore paths call this after state is rebuilt: a
  /// shard that had already reported a punctuation to the alignment
  /// barrier before the snapshot re-emits it, reconstructing the
  /// aligner votes a crash discards (docs/RECOVERY.md).
  void RecheckPropagations(int64_t now);

 protected:
  void OnObserverSet() override;

 private:
  // A join predicate localized to operator inputs and composite
  // offsets.
  struct LocalPredicate {
    size_t input_a, offset_a;
    size_t input_b, offset_b;
  };
  // One generalized edge in composite-offset space. Removability runs
  // a fixpoint over ALL of these (the chained purge strategy is
  // existential: any instantiated alternative may close an input).
  struct RuntimeEdge {
    size_t target_input = 0;
    std::vector<size_t> target_offsets;  // punctuatable attrs (composite)
    // Per target offset: where the required values come from.
    struct Source {
      size_t input;
      size_t offset;
    };
    std::vector<Source> sources;
    std::vector<size_t> source_inputs;  // sorted, deduplicated
  };
  struct PendingPropagation {
    size_t input;
    Punctuation punctuation;  // in the input's composite space
  };

  MJoinOperator() = default;

  size_t OffsetOf(size_t input, size_t stream, size_t attr) const;
  /// Extends each partial assignment of `in` through input v's state
  /// into `out` (cleared first), batch-at-a-time: the probe-key hashes
  /// of the whole frontier are gathered into one column, SIMD run
  /// detection resolves one index bucket per same-key run (runs span
  /// source rows, not just one row's children), and the verification
  /// predicates run as a cached-hash prefilter over the (row,
  /// candidate) pair list before exact Value equality touches the
  /// survivors (cross product when no probe predicate applies). `in`
  /// and `out` must be distinct; callers ping-pong the two
  /// per-operator scratch buffers.
  void Expand(size_t v, const BatchFrontier& in, BatchFrontier* out) const;
  /// Compacts the (pair_rows_, pair_cands_) pair list in place to the
  /// pairs satisfying every predicate in verify_scratch_: per
  /// predicate, SIMD equal-hash prefilter, then exact equality on the
  /// survivors (order-preserving, so emission order matches a per-row
  /// verify loop).
  void VerifyPairs(size_t v, const BatchFrontier& in) const;
  /// Assembles one output row per frontier row via copy_plan_ into the
  /// flat out_values_ staging area, wraps them as view tuples in
  /// out_batch_, and emits the whole batch (EmitBatch). Timestamps come
  /// from `src` through the frontier's provenance column, or from
  /// `single_ts` for tuple-at-a-time pushes (src == nullptr).
  void EmitFrontier(const BatchFrontier& frontier, const TupleBatch* src,
                    int64_t single_ts);
  /// Summed capacities of every expansion scratch structure; growth
  /// across a push/sweep is charged to StateMetrics::expand_allocs.
  size_t ExpandScratchCapacity() const;
  bool Removable(size_t input, const Tuple& tuple, int64_t now);
  void ProduceResults(size_t input, const Tuple& tuple, int64_t ts);
  /// Re-checks pending propagations for the inputs whose punctuation
  /// store or join state changed.
  void TryPropagate(int64_t now, const std::vector<bool>& changed_inputs);
  /// Section 5.1 punctuation purgeability pass (see MJoinConfig).
  void PurgeObsoletePunctuations(int64_t now);
  Punctuation RebaseToOutput(size_t input, const Punctuation& p) const;

  std::vector<LocalInput> inputs_;
  MJoinConfig config_;
  std::vector<size_t> output_streams_;
  size_t output_width_ = 0;

  // Per input: composite width and (stream, attr) -> offset map.
  std::vector<size_t> widths_;
  std::vector<std::vector<std::pair<size_t, size_t>>> offset_keys_;  // parallel
  std::vector<std::vector<size_t>> offset_values_;

  // Output assembly: for each input, where its composite lands in the
  // output row (per covered stream segment).
  struct CopySegment {
    size_t input, from, len, to;
  };
  std::vector<CopySegment> copy_plan_;

  std::vector<LocalPredicate> predicates_;
  // predicate indices touching each input.
  std::vector<std::vector<size_t>> predicates_of_input_;
  // Per start input: the BFS expansion order over the predicate graph
  // (precomputed at Create so ProduceResults allocates nothing).
  std::vector<std::vector<size_t>> expand_orders_;
  uint64_t punctuations_purged_ = 0;

  // Per-operator scratch, reused across arrivals/sweeps so the
  // steady-state expansion and chained-purge loops are allocation-free
  // (mutable: Expand is logically const). The operator is
  // single-threaded (one shard worker), so no synchronization.
  mutable BatchFrontier expand_bufs_[2];
  mutable std::vector<size_t> verify_scratch_;
  // Probe-key hash column over the frontier (lives across the whole
  // run loop of one hop).
  mutable std::vector<uint64_t> probe_hashes_;
  // Live candidates of the current run's bucket, filtered once and
  // replayed per row.
  mutable std::vector<const Tuple*> run_cands_;
  // (frontier row, candidate) pair list under verification, plus the
  // per-predicate hash columns and survivor indices of the prefilter.
  mutable std::vector<uint32_t> pair_rows_;
  mutable std::vector<const Tuple*> pair_cands_;
  mutable std::vector<uint64_t> verify_hashes_a_;
  mutable std::vector<uint64_t> verify_hashes_b_;
  mutable std::vector<uint32_t> filter_scratch_;
  // Batched result staging: flat output values (all rows built before
  // any view points into the vector) wrapped as view tuples.
  std::vector<Value> out_values_;
  TupleBatch out_batch_;
  std::vector<Tuple> combos_scratch_;
  std::vector<size_t> sweep_scratch_;

  std::vector<std::unique_ptr<TupleStore>> states_;
  std::vector<std::unique_ptr<PunctuationStore>> punct_stores_;
  std::vector<RuntimeEdge> runtime_edges_;
  std::vector<bool> input_purgeable_;

  // Schemes propagatable on the output, per input, as composite
  // constrained-offset signatures.
  std::vector<std::vector<std::vector<size_t>>> propagatable_signatures_;
  std::vector<PendingPropagation> pending_propagations_;

  size_t punctuations_since_sweep_ = 0;
};

}  // namespace punctsafe

#endif  // PUNCTSAFE_EXEC_MJOIN_H_
