// Versioned slot -> shard routing table for adaptive rebalancing.
//
// Static sharding (PR 2) routed a tuple with `Mix64(key) % K`: the
// assignment is baked into the modulus, so moving a hot key range to
// another shard would change *every* tuple's shard. A ShardMap adds
// one level of indirection: the mixed key hash picks one of
// `kNumSlots` fixed slots (`hash & (kNumSlots - 1)`), and a small
// mutable table maps slots to shards. Rebalancing then means
// reassigning slots — the unit of migration is a slot's key range,
// and tuples in untouched slots never move. The table carries a
// monotonically increasing `version()` so the executor can tell
// which assignment a snapshot or a routing decision was made under
// (docs/RECOVERY.md, "ShardMap versions and restore").
//
// Thread-safety: reads (`ShardOf`) are lock-free loads of plain
// members. The executor only mutates the map (`Apply`) while every
// worker of the owning group is parked at a pipeline barrier; the
// subsequent queue push/pop pair publishes the new table to workers
// (the same release/acquire argument RestoreState relies on —
// docs/CONCURRENCY.md, "Rebalancing and the migration marker").

#ifndef PUNCTSAFE_EXEC_SHARD_MAP_H_
#define PUNCTSAFE_EXEC_SHARD_MAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/status.h"

namespace punctsafe {

class ShardMap {
 public:
  /// Number of routing slots. A power of two (the slot index is a
  /// mask of the mixed hash) comfortably above any realistic shard
  /// count, so even a skewed assignment has slots to shuffle.
  static constexpr size_t kNumSlots = 64;

  /// \brief Slot index for a *mixed* 64-bit key hash (the caller mixes
  /// — PartitionSpec::KeyHash — so slot spread does not depend on raw
  /// Value::Hash structure).
  static size_t SlotOf(uint64_t mixed_hash) {
    return static_cast<size_t>(mixed_hash & (kNumSlots - 1));
  }

  /// \brief Starts with `BalancedAssignment(num_shards)` at version 0.
  explicit ShardMap(size_t num_shards);

  size_t ShardOf(uint64_t mixed_hash) const {
    return slot_to_shard_[SlotOf(mixed_hash)];
  }
  size_t shard_of_slot(size_t slot) const { return slot_to_shard_[slot]; }

  /// \brief Number of shards the current assignment routes to. Slots
  /// only ever hold values in [0, num_shards()).
  size_t num_shards() const { return num_shards_; }

  /// \brief Bumped by every successful Apply; 0 for the initial map.
  uint64_t version() const { return version_; }

  const std::vector<uint32_t>& slots() const { return slot_to_shard_; }

  /// \brief Installs a new assignment (kNumSlots entries, each in
  /// [0, num_shards)) and bumps the version. Returns
  /// InvalidArgument on a malformed assignment — the map is unchanged
  /// then. Callers must hold the group quiescent (see file comment).
  Status Apply(std::vector<uint32_t> assignment, size_t num_shards);

  /// \brief Round-robin slot assignment: slot i -> i % num_shards.
  /// Deterministic, so a restored executor starts from the same map a
  /// fresh one would.
  static std::vector<uint32_t> BalancedAssignment(size_t num_shards);

 private:
  std::vector<uint32_t> slot_to_shard_;
  size_t num_shards_;
  uint64_t version_ = 0;
};

/// \brief Greedy LPT (longest-processing-time) slot assignment:
/// slots sorted by observed load descending (ties broken by slot
/// index), each assigned to the shard with the least assigned load
/// (ties broken by fewest slots, then lowest shard id). Deterministic
/// for a given load vector; with all-zero loads it degenerates to an
/// even slot count per shard. `slot_loads` must have
/// ShardMap::kNumSlots entries and `num_shards` >= 1.
std::vector<uint32_t> ComputeShardAssignment(
    const std::vector<uint64_t>& slot_loads, size_t num_shards);

/// \brief Skew of a load vector: max over mean of the per-shard loads
/// (>= 1.0), or 1.0 when the total load is zero. The rebalance
/// trigger compares this against RebalanceConfig::skew_threshold.
double LoadSkew(const std::vector<uint64_t>& shard_loads);

/// \brief Controller knobs for adaptive shard rebalancing
/// (ExecutorConfig::rebalance). Disabled by default: per-slot routed
/// counters and the migration machinery cost nothing unless enabled.
struct RebalanceConfig {
  /// Master switch: track per-slot/per-shard routed + stall counters
  /// and let the controller trigger punctuation-aligned migrations.
  bool enabled = false;
  /// Controller cadence: consider rebalancing every N driver-ingested
  /// punctuations. 0 = track counters but never migrate automatically
  /// (explicit RebalanceNow()/ResizeShards() still work).
  size_t interval_punctuations = 32;
  /// Trigger threshold: migrate when max/mean routed-count skew over
  /// the active shards since the last check exceeds this.
  double skew_threshold = 1.5;
  /// Don't react to noise: skip the skew check unless at least this
  /// many tuples were routed to the group since the last check.
  uint64_t min_routed = 1024;
  /// Worker-allocation ceiling for elastic resizing: the executor
  /// allocates this many shard workers per partitionable group up
  /// front and ResizeShards()/auto-grow activate a subset. 0 means
  /// ExecutorConfig::shards (no elasticity headroom).
  size_t max_shards = 0;
  /// Auto-grow: when > 0 and queue-stall count since the last check
  /// reaches this, activate one more shard (up to the allocation
  /// ceiling). 0 disables growing; shrinking is always explicit via
  /// ResizeShards.
  uint64_t grow_stall_threshold = 0;
  /// Drift backoff: each automatic migration doubles (up to this cap)
  /// the number of check windows the controller then sits out for that
  /// group; one balanced window resets the doubling. A workload whose
  /// hot keys *drift* trips the skew threshold every window forever —
  /// no assignment helps the next window — and without backoff the
  /// controller would pay a quiesce barrier per window chasing it.
  /// 0 disables backoff (migrate on every qualifying window).
  size_t max_backoff_windows = 32;
};

}  // namespace punctsafe

#endif  // PUNCTSAFE_EXEC_SHARD_MAP_H_
