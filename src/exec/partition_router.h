// Hash-partitioned intra-operator parallelism: the routing layer that
// lets one MJoin operator run as K shard workers (PanJoin-style
// partition parallelism) while keeping the paper's purge semantics
// exact.
//
// The contract the parallel executor relies on:
//  * Tuples are hashed on one join-key attribute per input and routed
//    to exactly one shard; punctuations (and drain markers) are
//    broadcast to every shard.
//  * A shard therefore owns a key-disjoint slice of the operator's
//    join state but the *full* punctuation stores, so the chained
//    purge removability check evaluated shard-locally returns exactly
//    the unpartitioned answer (see "exactness" below), and the union
//    of per-shard purges equals the unpartitioned purge — no double
//    purge (each tuple lives on one shard), no stranded state (the
//    punctuation reaches every shard regardless of which shard its
//    key's tuples hash to).
//  * A shard's output punctuation is only valid for the *merged*
//    output once every shard has emitted it (another shard may still
//    hold matching tuples); PunctuationAligner is the merge barrier
//    that enforces this.
//
// Exactness: an operator is partitioned only when its localized
// equi-join predicates admit an attribute equivalence class with a
// member in every input — and, for operators with three or more
// inputs, when every predicate lies inside that class. Then every
// predicate equates partition keys, so all tuples of any joinable
// assignment (partial assignments during the removability fixpoint
// included) carry one shared key value and are co-located on its
// shard: shard-local probes and joinable-set expansions see exactly
// the tuples the unpartitioned operator would. For binary operators
// the single-class restriction is unnecessary (the only other input
// is always part of the assignment, so every predicate — class or
// not — is verified on expansion) and any covering class works.
// Operators that do not qualify simply run with one shard.

#ifndef PUNCTSAFE_EXEC_PARTITION_ROUTER_H_
#define PUNCTSAFE_EXEC_PARTITION_ROUTER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/local_graph.h"
#include "exec/shard_map.h"
#include "exec/tuple_batch.h"
#include "query/cjq.h"
#include "stream/punctuation.h"
#include "stream/tuple.h"

namespace punctsafe {

/// \brief How one operator's inputs partition across shard workers.
struct PartitionSpec {
  /// True iff the operator's predicates admit an exact partitioning
  /// (see file comment). False forces a single shard.
  bool partitionable = false;
  /// Per input: the composite-row offset of the partition-key
  /// attribute (the input's representative of the chosen equivalence
  /// class). Only meaningful when partitionable.
  std::vector<size_t> hash_offsets;
  /// Human-readable: the chosen class, or why partitioning is off.
  std::string detail;

  /// \brief Shard for a tuple arriving on `input`. `num_shards` >= 1.
  /// Pure function of (input, key value, num_shards) — the checkpoint
  /// layer relies on this determinism: restore re-splits a merged
  /// logical snapshot by calling ShardOf on each stored tuple, so
  /// every tuple lands back on the shard that would have received it
  /// live, for any shard count (exec/checkpoint.h, docs/RECOVERY.md).
  size_t ShardOf(size_t input, const Tuple& tuple, size_t num_shards) const;

  /// \brief Mixed 64-bit hash of the tuple's partition-key attribute
  /// for `input`: the value every routing layer agrees on. ShardOf is
  /// `KeyHash % num_shards`; ShardMap routing is
  /// `map.ShardOf(KeyHash)` — both pure functions of the key, which
  /// is what lets migration re-split captured state under a new map
  /// and know live routing will agree.
  uint64_t KeyHash(size_t input, const Tuple& tuple) const;
};

/// \brief Derives the partition spec for an operator over `inputs`
/// from the query's equi-join predicates (localized to composite-row
/// offsets exactly as MJoinOperator lays them out).
PartitionSpec ComputePartitionSpec(const ContinuousJoinQuery& query,
                                   const std::vector<LocalInput>& inputs);

/// \brief Scatters one input batch into per-shard sub-batches in a
/// single pass (one ShardOf per row). `out` is resized to `num_shards`
/// and each sub-batch cleared first; rows keep their arrival order
/// within a shard, so per-edge FIFO is preserved when the sub-batches
/// are enqueued. Sub-batch storage is recycled across calls.
void ScatterBatch(const PartitionSpec& spec, size_t input,
                  const TupleBatch& batch, size_t num_shards,
                  std::vector<TupleBatch>* out);

/// \brief ShardMap-routed variant: rows go to
/// `map.ShardOf(spec.KeyHash(...))`. `out` is still sized to
/// `num_shards` (the *allocated* worker count — the map may route to
/// an active subset of it). When `slot_routed` is non-null it points
/// at ShardMap::kNumSlots relaxed counters and each row increments
/// its slot — the rebalancer's load signal, gathered in the same pass
/// as the scatter.
void ScatterBatch(const PartitionSpec& spec, const ShardMap& map, size_t input,
                  const TupleBatch& batch, size_t num_shards,
                  std::vector<TupleBatch>* out,
                  std::atomic<uint64_t>* slot_routed);

/// \brief Merge barrier for output punctuations of a sharded
/// operator: forwards a punctuation downstream only once every shard
/// has emitted it since the last forward.
///
/// Tracks per-shard bits (not a count) so a shard that re-emits the
/// same punctuation — e.g. the input punctuation arrived twice and the
/// shard held no matching tuples either time — cannot make up for a
/// shard that has not yet cleared its matching state. Thread-safe; the
/// forwarding shard (the one completing the bitmask) performs the
/// downstream push, which preserves the per-producer FIFO argument:
/// every shard's pre-emission tuples are already enqueued downstream
/// when its bit was set.
class PunctuationAligner {
 public:
  explicit PunctuationAligner(size_t num_shards) : num_shards_(num_shards) {}

  PunctuationAligner(const PunctuationAligner&) = delete;
  PunctuationAligner& operator=(const PunctuationAligner&) = delete;

  /// \brief Records that `shard` emitted `p` at `ts`. Returns true iff
  /// this arrival completes the shard set; then `*forward_ts` is the
  /// max timestamp across the contributing emissions and the entry is
  /// reset (a later round re-aligns from scratch).
  bool Arrive(size_t shard, const Punctuation& p, int64_t ts,
              int64_t* forward_ts);

  /// \brief Punctuations currently waiting on at least one shard.
  size_t pending() const;

  /// \brief Drops every pending entry (high water is kept). Migration
  /// uses this: after shard state is re-split under a new ShardMap,
  /// recorded votes describe the old assignment, so the executor
  /// clears them and re-runs the recheck barrier to rebuild votes
  /// from the restored stores (the same handshake checkpoint restore
  /// uses — docs/CONCURRENCY.md).
  void Reset();

  /// \brief Largest pending() ever observed (tracked under the same
  /// mutex as Arrive, so it is exact): an alignment-backlog gauge for
  /// the observability exporter — a growing high water means some
  /// shard chronically trails its siblings in clearing matching state.
  size_t pending_high_water() const;

 private:
  struct Entry {
    std::vector<bool> seen;
    size_t seen_count = 0;
    int64_t max_ts = 0;
  };

  const size_t num_shards_;
  mutable std::mutex mu_;
  std::unordered_map<Punctuation, Entry, PunctuationHash> entries_;
  size_t pending_high_water_ = 0;
};

}  // namespace punctsafe

#endif  // PUNCTSAFE_EXEC_PARTITION_ROUTER_H_
