#include "exec/checkpoint.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>

#include "util/logging.h"

namespace punctsafe {

namespace {

constexpr char kMagic[4] = {'P', 'S', 'C', 'K'};
// Note: expand_allocs (exec/metrics.h) is deliberately NOT part of the
// wire format — it counts scratch-capacity growth, which depends on
// process warmth, so a restored (cold-scratch) executor would re-charge
// it and break capture -> restore -> capture byte stability. It is a
// process-local diagnostic only.
constexpr uint32_t kFormatVersion = 1;
constexpr uint32_t kMetaSection = 1;
constexpr uint32_t kOperatorSection = 2;

// ---------------------------------------------------------------------------
// Little-endian primitive writers.

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutDouble(std::string* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

void PutValue(std::string* out, const Value& v) {
  PutU8(out, static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt64:
      PutI64(out, v.AsInt64());
      break;
    case ValueType::kDouble:
      PutDouble(out, v.AsDouble());
      break;
    case ValueType::kString:
      PutString(out, v.AsString());
      break;
  }
}

void PutTuple(std::string* out, const Tuple& t) {
  PutU32(out, static_cast<uint32_t>(t.size()));
  for (const Value& v : t) PutValue(out, v);
}

void PutPunctuation(std::string* out, const Punctuation& p) {
  PutU32(out, static_cast<uint32_t>(p.arity()));
  for (const Pattern& pat : p.patterns()) {
    if (pat.is_wildcard()) {
      PutU8(out, 0);
    } else {
      PutU8(out, 1);
      PutValue(out, pat.constant());
    }
  }
}

void PutStateMetrics(std::string* out, const StateMetricsSnapshot& m) {
  PutU64(out, m.inserted);
  PutU64(out, m.purged);
  PutU64(out, m.dropped_on_arrival);
  PutU64(out, m.probes);
  PutU64(out, m.probe_allocs);
  PutU64(out, m.index_compactions);
  PutU64(out, m.insert_allocs);
  PutU64(out, m.arena_blocks_reclaimed);
  PutU64(out, m.arena_bytes_reserved);
  PutU64(out, m.arena_bytes_live);
  PutU64(out, m.live);
  PutU64(out, m.high_water);
}

void PutOperatorMetrics(std::string* out, const OperatorMetricsSnapshot& m) {
  PutU64(out, m.results_emitted);
  PutU64(out, m.punctuations_received);
  PutU64(out, m.punctuations_stored);
  PutU64(out, m.punctuations_propagated);
  PutU64(out, m.punctuations_expired);
  PutU64(out, m.purge_sweeps);
  PutU64(out, m.removability_checks);
  PutU64(out, m.punctuations_live);
  PutU64(out, m.punctuations_high_water);
}

// ---------------------------------------------------------------------------
// Bounds-checked reader. Every accessor returns false on truncation;
// callers funnel that into one InvalidArgument via the section name.

struct Reader {
  const char* p;
  size_t n;

  bool Raw(void* dst, size_t k) {
    if (n < k) return false;
    std::memcpy(dst, p, k);
    p += k;
    n -= k;
    return true;
  }
  bool U8(uint8_t* v) { return Raw(v, 1); }
  bool U32(uint32_t* v) {
    unsigned char b[4];
    if (!Raw(b, 4)) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) *v |= static_cast<uint32_t>(b[i]) << (8 * i);
    return true;
  }
  bool U64(uint64_t* v) {
    unsigned char b[8];
    if (!Raw(b, 8)) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) *v |= static_cast<uint64_t>(b[i]) << (8 * i);
    return true;
  }
  bool I64(int64_t* v) {
    uint64_t u;
    if (!U64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }
  bool Dbl(double* v) {
    uint64_t bits;
    if (!U64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  bool Str(std::string* v) {
    uint32_t len;
    if (!U32(&len) || n < len) return false;
    v->assign(p, len);
    p += len;
    n -= len;
    return true;
  }
};

bool ReadValue(Reader* r, Value* out) {
  uint8_t type;
  if (!r->U8(&type)) return false;
  switch (static_cast<ValueType>(type)) {
    case ValueType::kNull:
      *out = Value::Null();
      return true;
    case ValueType::kInt64: {
      int64_t v;
      if (!r->I64(&v)) return false;
      *out = Value(v);
      return true;
    }
    case ValueType::kDouble: {
      double v;
      if (!r->Dbl(&v)) return false;
      *out = Value(v);
      return true;
    }
    case ValueType::kString: {
      std::string s;
      if (!r->Str(&s)) return false;
      *out = Value(std::string_view(s));
      return true;
    }
  }
  return false;  // unknown type byte
}

bool ReadTuple(Reader* r, Tuple* out) {
  uint32_t count;
  // Each encoded value costs >= 1 byte, so `count <= n` bounds the
  // allocation before trusting a corrupted length.
  if (!r->U32(&count) || count > r->n) return false;
  std::vector<Value> values;
  values.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Value v;
    if (!ReadValue(r, &v)) return false;
    values.push_back(std::move(v));
  }
  *out = Tuple(std::move(values));
  return true;
}

bool ReadPunctuation(Reader* r, Punctuation* out) {
  uint32_t arity;
  if (!r->U32(&arity) || arity > r->n) return false;
  std::vector<Pattern> patterns;
  patterns.reserve(arity);
  for (uint32_t i = 0; i < arity; ++i) {
    uint8_t kind;
    if (!r->U8(&kind)) return false;
    if (kind == 0) {
      patterns.push_back(Pattern::Wildcard());
    } else if (kind == 1) {
      Value v;
      if (!ReadValue(r, &v)) return false;
      patterns.push_back(Pattern(std::move(v)));
    } else {
      return false;
    }
  }
  *out = Punctuation(std::move(patterns));
  return true;
}

bool ReadStateMetrics(Reader* r, StateMetricsSnapshot* m) {
  uint64_t reserved, live_bytes, live, hw;
  if (!r->U64(&m->inserted) || !r->U64(&m->purged) ||
      !r->U64(&m->dropped_on_arrival) || !r->U64(&m->probes) ||
      !r->U64(&m->probe_allocs) || !r->U64(&m->index_compactions) ||
      !r->U64(&m->insert_allocs) ||
      !r->U64(&m->arena_blocks_reclaimed) ||
      !r->U64(&reserved) || !r->U64(&live_bytes) || !r->U64(&live) ||
      !r->U64(&hw)) {
    return false;
  }
  m->arena_bytes_reserved = static_cast<size_t>(reserved);
  m->arena_bytes_live = static_cast<size_t>(live_bytes);
  m->live = static_cast<size_t>(live);
  m->high_water = static_cast<size_t>(hw);
  return true;
}

bool ReadOperatorMetrics(Reader* r, OperatorMetricsSnapshot* m) {
  uint64_t live, hw;
  if (!r->U64(&m->results_emitted) || !r->U64(&m->punctuations_received) ||
      !r->U64(&m->punctuations_stored) ||
      !r->U64(&m->punctuations_propagated) ||
      !r->U64(&m->punctuations_expired) || !r->U64(&m->purge_sweeps) ||
      !r->U64(&m->removability_checks) || !r->U64(&live) || !r->U64(&hw)) {
    return false;
  }
  m->punctuations_live = static_cast<size_t>(live);
  m->punctuations_high_water = static_cast<size_t>(hw);
  return true;
}

// ---------------------------------------------------------------------------
// Section payloads.

std::string EncodeMetaSection(const StateSnapshot& s) {
  std::string out;
  PutString(&out, s.fingerprint);
  PutU32(&out, static_cast<uint32_t>(s.progress.size()));
  for (const InputProgress& p : s.progress) {
    PutU64(&out, p.events_consumed);
    PutI64(&out, p.watermark_ts);
  }
  PutU64(&out, s.num_results);
  PutU64(&out, s.tuple_high_water);
  PutU64(&out, s.punct_high_water);
  PutU64(&out, s.results.size());
  for (const Tuple& t : s.results) PutTuple(&out, t);
  PutU32(&out, static_cast<uint32_t>(s.operators.size()));
  return out;
}

std::string EncodeOperatorSection(const OperatorStateSnapshot& op) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(op.inputs.size()));
  for (const InputStateSnapshot& in : op.inputs) {
    PutU64(&out, in.tuples.size());
    for (const Tuple& t : in.tuples) PutTuple(&out, t);
    PutU64(&out, in.punctuations.size());
    for (const PunctuationEntry& e : in.punctuations) {
      PutPunctuation(&out, e.punctuation);
      PutI64(&out, e.arrival);
    }
    PutStateMetrics(&out, in.state_metrics);
  }
  PutU64(&out, op.pending.size());
  for (const PendingPropagationSnapshot& p : op.pending) {
    PutU32(&out, p.input);
    PutPunctuation(&out, p.punctuation);
  }
  PutOperatorMetrics(&out, op.op_metrics);
  PutU64(&out, op.punctuations_purged);
  PutU64(&out, op.punctuations_since_sweep);
  return out;
}

void AppendSection(std::string* out, uint32_t id, const std::string& payload) {
  PutU32(out, id);
  PutU64(out, payload.size());
  out->append(payload);
  PutU32(out, Crc32(payload.data(), payload.size()));
}

Status Truncated(const char* what) {
  return Status::InvalidArgument(
      std::string("snapshot truncated or malformed in ") + what);
}

// Reads one CRC-framed section, verifying id and checksum.
Status ReadSection(Reader* r, uint32_t expect_id, std::string_view* payload,
                   const char* what) {
  uint32_t id;
  uint64_t len;
  if (!r->U32(&id)) return Truncated("section header");
  if (id != expect_id) {
    return Status::InvalidArgument("snapshot has unexpected section id " +
                                   std::to_string(id) + " (wanted " +
                                   std::to_string(expect_id) + ")");
  }
  if (!r->U64(&len) || len > r->n) return Truncated(what);
  *payload = std::string_view(r->p, static_cast<size_t>(len));
  r->p += len;
  r->n -= static_cast<size_t>(len);
  uint32_t crc;
  if (!r->U32(&crc)) return Truncated("section checksum");
  if (crc != Crc32(payload->data(), payload->size())) {
    return Status::InvalidArgument(std::string("snapshot CRC mismatch in ") +
                                   what);
  }
  return Status::OK();
}

Status ParseMetaSection(std::string_view payload, StateSnapshot* s,
                        uint32_t* num_operators) {
  Reader r{payload.data(), payload.size()};
  uint32_t progress_count;
  if (!r.Str(&s->fingerprint) || !r.U32(&progress_count) ||
      progress_count > r.n) {
    return Truncated("meta section");
  }
  s->progress.resize(progress_count);
  for (InputProgress& p : s->progress) {
    if (!r.U64(&p.events_consumed) || !r.I64(&p.watermark_ts)) {
      return Truncated("meta progress");
    }
  }
  uint64_t result_count;
  if (!r.U64(&s->num_results) || !r.U64(&s->tuple_high_water) ||
      !r.U64(&s->punct_high_water) || !r.U64(&result_count) ||
      result_count > r.n) {
    return Truncated("meta counters");
  }
  s->results.reserve(static_cast<size_t>(result_count));
  for (uint64_t i = 0; i < result_count; ++i) {
    Tuple t;
    if (!ReadTuple(&r, &t)) return Truncated("meta results");
    s->results.push_back(std::move(t));
  }
  if (!r.U32(num_operators)) return Truncated("meta operator count");
  if (r.n != 0) return Truncated("meta section (trailing bytes)");
  return Status::OK();
}

Status ParseOperatorSection(std::string_view payload,
                            OperatorStateSnapshot* op) {
  Reader r{payload.data(), payload.size()};
  uint32_t num_inputs;
  if (!r.U32(&num_inputs) || num_inputs > r.n) {
    return Truncated("operator section");
  }
  op->inputs.resize(num_inputs);
  for (InputStateSnapshot& in : op->inputs) {
    uint64_t tuple_count;
    if (!r.U64(&tuple_count) || tuple_count > r.n) {
      return Truncated("operator tuples");
    }
    in.tuples.reserve(static_cast<size_t>(tuple_count));
    for (uint64_t i = 0; i < tuple_count; ++i) {
      Tuple t;
      if (!ReadTuple(&r, &t)) return Truncated("operator tuples");
      in.tuples.push_back(std::move(t));
    }
    uint64_t punct_count;
    if (!r.U64(&punct_count) || punct_count > r.n) {
      return Truncated("operator punctuations");
    }
    in.punctuations.reserve(static_cast<size_t>(punct_count));
    for (uint64_t i = 0; i < punct_count; ++i) {
      PunctuationEntry e;
      if (!ReadPunctuation(&r, &e.punctuation) || !r.I64(&e.arrival)) {
        return Truncated("operator punctuations");
      }
      in.punctuations.push_back(std::move(e));
    }
    if (!ReadStateMetrics(&r, &in.state_metrics)) {
      return Truncated("operator state metrics");
    }
  }
  uint64_t pending_count;
  if (!r.U64(&pending_count) || pending_count > r.n) {
    return Truncated("operator pending propagations");
  }
  op->pending.reserve(static_cast<size_t>(pending_count));
  for (uint64_t i = 0; i < pending_count; ++i) {
    PendingPropagationSnapshot p;
    if (!r.U32(&p.input) || !ReadPunctuation(&r, &p.punctuation)) {
      return Truncated("operator pending propagations");
    }
    op->pending.push_back(std::move(p));
  }
  if (!ReadOperatorMetrics(&r, &op->op_metrics) ||
      !r.U64(&op->punctuations_purged) ||
      !r.U64(&op->punctuations_since_sweep)) {
    return Truncated("operator metrics");
  }
  if (r.n != 0) return Truncated("operator section (trailing bytes)");
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Canonical ordering helpers.

bool PunctuationEntryLess(const PunctuationEntry& a,
                          const PunctuationEntry& b) {
  return EncodePunctuationKey(a.punctuation) <
         EncodePunctuationKey(b.punctuation);
}

bool PendingLess(const PendingPropagationSnapshot& a,
                 const PendingPropagationSnapshot& b) {
  if (a.input != b.input) return a.input < b.input;
  return EncodePunctuationKey(a.punctuation) <
         EncodePunctuationKey(b.punctuation);
}

// Canonical form is merge's normal form: tuples sorted (multiset),
// punctuations sorted + deduplicated keeping the max arrival, pending
// sorted + deduplicated. Executor-captured state is already free of
// duplicates; normalizing here makes the monoid laws hold for
// arbitrary hand-built snapshots too.
void CanonicalizeOperator(OperatorStateSnapshot* op) {
  for (InputStateSnapshot& in : op->inputs) {
    std::sort(in.tuples.begin(), in.tuples.end());
    std::stable_sort(in.punctuations.begin(), in.punctuations.end(),
                     PunctuationEntryLess);
    std::vector<PunctuationEntry> unique;
    unique.reserve(in.punctuations.size());
    for (PunctuationEntry& e : in.punctuations) {
      if (!unique.empty() && unique.back().punctuation == e.punctuation) {
        unique.back().arrival = std::max(unique.back().arrival, e.arrival);
      } else {
        unique.push_back(std::move(e));
      }
    }
    in.punctuations = std::move(unique);
  }
  std::sort(op->pending.begin(), op->pending.end(), PendingLess);
  op->pending.erase(std::unique(op->pending.begin(), op->pending.end(),
                                [](const PendingPropagationSnapshot& x,
                                   const PendingPropagationSnapshot& y) {
                                  return x.input == y.input &&
                                         x.punctuation == y.punctuation;
                                }),
                    op->pending.end());
}

// Union of two canonically sorted punctuation lists; duplicates keep
// the max arrival timestamp (a shard that saw the punctuation later
// bounds its lifespan, and max is associative + commutative).
std::vector<PunctuationEntry> MergePunctuationEntries(
    const std::vector<PunctuationEntry>& a,
    const std::vector<PunctuationEntry>& b) {
  std::vector<PunctuationEntry> merged;
  merged.reserve(a.size() + b.size());
  merged.insert(merged.end(), a.begin(), a.end());
  merged.insert(merged.end(), b.begin(), b.end());
  std::stable_sort(merged.begin(), merged.end(), PunctuationEntryLess);
  std::vector<PunctuationEntry> out;
  out.reserve(merged.size());
  for (PunctuationEntry& e : merged) {
    if (!out.empty() && out.back().punctuation == e.punctuation) {
      out.back().arrival = std::max(out.back().arrival, e.arrival);
    } else {
      out.push_back(std::move(e));
    }
  }
  return out;
}

std::vector<PendingPropagationSnapshot> MergePending(
    const std::vector<PendingPropagationSnapshot>& a,
    const std::vector<PendingPropagationSnapshot>& b) {
  std::vector<PendingPropagationSnapshot> merged;
  merged.reserve(a.size() + b.size());
  merged.insert(merged.end(), a.begin(), a.end());
  merged.insert(merged.end(), b.begin(), b.end());
  std::sort(merged.begin(), merged.end(), PendingLess);
  merged.erase(std::unique(merged.begin(), merged.end(),
                           [](const PendingPropagationSnapshot& x,
                              const PendingPropagationSnapshot& y) {
                             return x.input == y.input &&
                                    x.punctuation == y.punctuation;
                           }),
               merged.end());
  return merged;
}

// Punctuation-side counters are replicated per shard (every shard sees
// the full broadcast), so their logical value is the max, not the sum.
OperatorMetricsSnapshot MergeOperatorMetrics(
    const OperatorMetricsSnapshot& a, const OperatorMetricsSnapshot& b) {
  OperatorMetricsSnapshot m;
  m.results_emitted = a.results_emitted + b.results_emitted;
  m.removability_checks = a.removability_checks + b.removability_checks;
  m.punctuations_received =
      std::max(a.punctuations_received, b.punctuations_received);
  m.punctuations_stored = std::max(a.punctuations_stored,
                                   b.punctuations_stored);
  m.punctuations_propagated =
      std::max(a.punctuations_propagated, b.punctuations_propagated);
  m.punctuations_expired =
      std::max(a.punctuations_expired, b.punctuations_expired);
  m.purge_sweeps = std::max(a.purge_sweeps, b.purge_sweeps);
  m.punctuations_live = std::max(a.punctuations_live, b.punctuations_live);
  m.punctuations_high_water =
      std::max(a.punctuations_high_water, b.punctuations_high_water);
  return m;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API.

uint32_t Crc32(const void* data, size_t size) {
  static const std::array<uint32_t, 256> kTable = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string EncodePunctuationKey(const Punctuation& p) {
  std::string out;
  PutPunctuation(&out, p);
  return out;
}

void CanonicalizeSnapshot(StateSnapshot* snapshot) {
  std::sort(snapshot->results.begin(), snapshot->results.end());
  for (OperatorStateSnapshot& op : snapshot->operators) {
    CanonicalizeOperator(&op);
  }
}

std::string SerializeSnapshot(const StateSnapshot& snapshot) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  PutU32(&out, kFormatVersion);
  AppendSection(&out, kMetaSection, EncodeMetaSection(snapshot));
  for (const OperatorStateSnapshot& op : snapshot.operators) {
    AppendSection(&out, kOperatorSection, EncodeOperatorSection(op));
  }
  return out;
}

Result<StateSnapshot> DeserializeSnapshot(std::string_view bytes) {
  Reader r{bytes.data(), bytes.size()};
  char magic[4];
  if (!r.Raw(magic, sizeof(magic))) return Truncated("header");
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("snapshot has bad magic (not PSCK)");
  }
  uint32_t version;
  if (!r.U32(&version)) return Truncated("header");
  if (version != kFormatVersion) {
    return Status::InvalidArgument("unsupported snapshot format version " +
                                   std::to_string(version));
  }
  StateSnapshot snapshot;
  std::string_view payload;
  PUNCTSAFE_RETURN_IF_ERROR(
      ReadSection(&r, kMetaSection, &payload, "meta section"));
  uint32_t num_operators;
  PUNCTSAFE_RETURN_IF_ERROR(
      ParseMetaSection(payload, &snapshot, &num_operators));
  if (num_operators > bytes.size()) return Truncated("operator count");
  snapshot.operators.resize(num_operators);
  for (uint32_t i = 0; i < num_operators; ++i) {
    PUNCTSAFE_RETURN_IF_ERROR(
        ReadSection(&r, kOperatorSection, &payload, "operator section"));
    PUNCTSAFE_RETURN_IF_ERROR(
        ParseOperatorSection(payload, &snapshot.operators[i]));
  }
  if (r.n != 0) {
    return Status::InvalidArgument(
        "snapshot has trailing bytes after the last section");
  }
  return snapshot;
}

Status WriteSnapshotFile(const StateSnapshot& snapshot,
                         const std::string& path) {
  const std::string bytes = SerializeSnapshot(snapshot);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Internal("cannot open snapshot file for writing: " +
                              tmp);
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) return Status::Internal("short write to snapshot file: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename snapshot file into place: " +
                            path);
  }
  return Status::OK();
}

Result<StateSnapshot> ReadSnapshotFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open snapshot file: " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    return Status::Internal("error reading snapshot file: " + path);
  }
  return DeserializeSnapshot(bytes);
}

OperatorStateSnapshot MergeOperatorSnapshots(const OperatorStateSnapshot& a,
                                             const OperatorStateSnapshot& b) {
  if (a.inputs.empty() && a.pending.empty()) {
    OperatorStateSnapshot out = b;
    CanonicalizeOperator(&out);
    return out;
  }
  if (b.inputs.empty() && b.pending.empty()) {
    OperatorStateSnapshot out = a;
    CanonicalizeOperator(&out);
    return out;
  }
  PUNCTSAFE_CHECK(a.inputs.size() == b.inputs.size())
      << "merging operator snapshots of different arity: " << a.inputs.size()
      << " vs " << b.inputs.size();
  OperatorStateSnapshot out;
  out.inputs.resize(a.inputs.size());
  for (size_t k = 0; k < a.inputs.size(); ++k) {
    InputStateSnapshot& in = out.inputs[k];
    in.tuples.reserve(a.inputs[k].tuples.size() + b.inputs[k].tuples.size());
    in.tuples.insert(in.tuples.end(), a.inputs[k].tuples.begin(),
                     a.inputs[k].tuples.end());
    in.tuples.insert(in.tuples.end(), b.inputs[k].tuples.begin(),
                     b.inputs[k].tuples.end());
    std::sort(in.tuples.begin(), in.tuples.end());
    in.punctuations = MergePunctuationEntries(a.inputs[k].punctuations,
                                              b.inputs[k].punctuations);
    in.state_metrics = a.inputs[k].state_metrics;
    in.state_metrics += b.inputs[k].state_metrics;
  }
  out.pending = MergePending(a.pending, b.pending);
  out.op_metrics = MergeOperatorMetrics(a.op_metrics, b.op_metrics);
  out.punctuations_purged =
      std::max(a.punctuations_purged, b.punctuations_purged);
  out.punctuations_since_sweep =
      std::max(a.punctuations_since_sweep, b.punctuations_since_sweep);
  return out;
}

StateSnapshot MergeSnapshots(const StateSnapshot& a, const StateSnapshot& b) {
  StateSnapshot out;
  if (!a.fingerprint.empty() && !b.fingerprint.empty()) {
    PUNCTSAFE_CHECK(a.fingerprint == b.fingerprint)
        << "merging snapshots of different plans";
  }
  out.fingerprint = a.fingerprint.empty() ? b.fingerprint : a.fingerprint;
  out.progress.resize(std::max(a.progress.size(), b.progress.size()));
  for (size_t i = 0; i < out.progress.size(); ++i) {
    InputProgress pa = i < a.progress.size() ? a.progress[i] : InputProgress{};
    InputProgress pb = i < b.progress.size() ? b.progress[i] : InputProgress{};
    out.progress[i].events_consumed =
        std::max(pa.events_consumed, pb.events_consumed);
    out.progress[i].watermark_ts = std::max(pa.watermark_ts, pb.watermark_ts);
  }
  out.num_results = a.num_results + b.num_results;
  out.results.reserve(a.results.size() + b.results.size());
  out.results.insert(out.results.end(), a.results.begin(), a.results.end());
  out.results.insert(out.results.end(), b.results.begin(), b.results.end());
  std::sort(out.results.begin(), out.results.end());
  // High waters: tuple-side sums (upper bound — shards need not peak
  // together, same caveat as StateMetricsSnapshot::operator+=);
  // punctuation-side is replicated so max is exact.
  out.tuple_high_water = a.tuple_high_water + b.tuple_high_water;
  out.punct_high_water = std::max(a.punct_high_water, b.punct_high_water);
  if (a.operators.empty()) {
    out.operators = b.operators;
    for (OperatorStateSnapshot& op : out.operators) CanonicalizeOperator(&op);
  } else if (b.operators.empty()) {
    out.operators = a.operators;
    for (OperatorStateSnapshot& op : out.operators) CanonicalizeOperator(&op);
  } else {
    PUNCTSAFE_CHECK(a.operators.size() == b.operators.size())
        << "merging snapshots with different operator counts";
    out.operators.reserve(a.operators.size());
    for (size_t i = 0; i < a.operators.size(); ++i) {
      out.operators.push_back(
          MergeOperatorSnapshots(a.operators[i], b.operators[i]));
    }
  }
  return out;
}

std::vector<StateSnapshot> SplitSnapshot(const StateSnapshot& snapshot,
                                         size_t pieces,
                                         SnapshotShardFn shard_of) {
  PUNCTSAFE_CHECK(pieces > 0) << "cannot split a snapshot into 0 pieces";
  if (!shard_of) {
    shard_of = [](size_t /*op*/, size_t /*input*/, const Tuple& t,
                  size_t n) { return t.Hash() % n; };
  }
  std::vector<StateSnapshot> out(pieces);
  for (size_t s = 0; s < pieces; ++s) {
    StateSnapshot& piece = out[s];
    // Replicated / max-semantics state goes into every piece; summed
    // counters stay on piece 0 so the fold restores them exactly.
    piece.fingerprint = snapshot.fingerprint;
    piece.progress = snapshot.progress;
    piece.punct_high_water = snapshot.punct_high_water;
    if (s == 0) {
      piece.num_results = snapshot.num_results;
      piece.results = snapshot.results;
      piece.tuple_high_water = snapshot.tuple_high_water;
    }
    piece.operators.resize(snapshot.operators.size());
    for (size_t i = 0; i < snapshot.operators.size(); ++i) {
      const OperatorStateSnapshot& op = snapshot.operators[i];
      OperatorStateSnapshot& pop = piece.operators[i];
      pop.inputs.resize(op.inputs.size());
      pop.pending = op.pending;
      pop.punctuations_purged = op.punctuations_purged;
      pop.punctuations_since_sweep = op.punctuations_since_sweep;
      pop.op_metrics = op.op_metrics;
      if (s != 0) {
        pop.op_metrics.results_emitted = 0;
        pop.op_metrics.removability_checks = 0;
      }
      for (size_t k = 0; k < op.inputs.size(); ++k) {
        pop.inputs[k].punctuations = op.inputs[k].punctuations;
        if (s == 0) {
          pop.inputs[k].state_metrics = op.inputs[k].state_metrics;
          // `live` is recomputed from the tuple partition below so each
          // piece's gauge matches its own contents.
          pop.inputs[k].state_metrics.live = 0;
        }
      }
    }
  }
  for (size_t i = 0; i < snapshot.operators.size(); ++i) {
    const OperatorStateSnapshot& op = snapshot.operators[i];
    for (size_t k = 0; k < op.inputs.size(); ++k) {
      size_t assigned = 0;
      for (const Tuple& t : op.inputs[k].tuples) {
        size_t target = shard_of(i, k, t, pieces);
        PUNCTSAFE_CHECK(target < pieces)
            << "shard_of returned " << target << " for " << pieces
            << " pieces";
        out[target].operators[i].inputs[k].tuples.push_back(t);
        out[target].operators[i].inputs[k].state_metrics.live += 1;
        ++assigned;
      }
      // Any drift between the live gauge and the stored tuple count
      // (impossible for executor-captured snapshots, possible for
      // hand-built ones) lands on piece 0 so the fold still restores
      // the original gauge.
      const size_t orig = op.inputs[k].state_metrics.live;
      if (orig > assigned) {
        out[0].operators[i].inputs[k].state_metrics.live += orig - assigned;
      }
      std::sort(out[0].operators[i].inputs[k].tuples.begin(),
                out[0].operators[i].inputs[k].tuples.end());
      for (size_t s = 1; s < pieces; ++s) {
        std::sort(out[s].operators[i].inputs[k].tuples.begin(),
                  out[s].operators[i].inputs[k].tuples.end());
      }
    }
  }
  return out;
}

}  // namespace punctsafe
