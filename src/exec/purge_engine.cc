#include "exec/purge_engine.h"

#include <algorithm>

#include "core/plan_safety.h"
#include "util/logging.h"

namespace punctsafe {

Result<std::unique_ptr<PurgeEngine>> PurgeEngine::Create(
    const ContinuousJoinQuery& query, const SchemeSet& schemes,
    PurgeEngineConfig config) {
  auto engine = std::unique_ptr<PurgeEngine>(new PurgeEngine());
  engine->query_ = query;
  engine->config_ = config;

  // Query-level graph: one "input" per raw stream.
  std::vector<LocalInput> inputs;
  for (size_t s = 0; s < query.num_streams(); ++s) {
    inputs.push_back({{s}, RawAvailableSchemes(query, schemes, s)});
  }
  engine->edges_ = BuildLocalEdges(engine->query_, inputs);
  for (const LocalGpgEdge& edge : engine->edges_) {
    std::vector<size_t> target_attrs;
    for (const LocalGpgEdge::Binding& b : edge.bindings) {
      target_attrs.push_back(b.target_attr);
    }
    engine->edge_target_attrs_.push_back(std::move(target_attrs));
  }
  for (size_t s = 0; s < query.num_streams(); ++s) {
    engine->stream_purgeable_.push_back(
        LocalInputPurgeable(s, query.num_streams(), engine->edges_));
    engine->states_.push_back(std::make_unique<TupleStore>(
        engine->query_.JoinAttrsOf(s),
        TupleStoreOptions{.arena = config.arena}));
    engine->punct_stores_.push_back(
        std::make_unique<PunctuationStore>(config.punctuation_lifespan));
  }
  return engine;
}

size_t PurgeEngine::AddTuple(size_t stream, const Tuple& tuple,
                             int64_t ts) {
  PUNCTSAFE_CHECK(stream < states_.size());
  if (obs::kCompiled && obs_ != nullptr) {
    obs_->NoteTupleTs(ts);
    obs_->Note(obs::TraceKind::kTupleIn, stream, 0);
  }
  return states_[stream]->Insert(tuple);
}

void PurgeEngine::AddTupleBatch(size_t stream, TupleBatch& batch) {
  PUNCTSAFE_CHECK(stream < states_.size());
  if (batch.empty()) return;
  if (obs::kCompiled && obs_ != nullptr) {
    // Per-batch sampling: one watermark fold and one ring event for
    // the whole batch instead of two notes per row.
    obs_->NoteTupleTs(batch.max_timestamp());
    obs_->Note(obs::TraceKind::kTupleIn, stream, 0);
  }
  batch.SelectAll();
  states_[stream]->InsertBatch(batch);
}

void PurgeEngine::AddPunctuation(size_t stream,
                                 const Punctuation& punctuation,
                                 int64_t ts) {
  PUNCTSAFE_CHECK(stream < punct_stores_.size());
  if (obs::kCompiled && obs_ != nullptr) obs_->RecordPunctuation(stream, ts);
  if (config_.punctuation_lifespan.has_value()) {
    for (auto& store : punct_stores_) store->ExpireBefore(ts);
  }
  punct_stores_[stream]->Add(punctuation, ts);
}

void PurgeEngine::Expand(size_t v, const AssignmentBuffer& in,
                         AssignmentBuffer* out) const {
  out->Reset(in.width());
  if (in.empty()) return;
  // Probe one predicate to a covered stream, verify the rest. The
  // covered-stream pattern is identical for every row of `in` (the
  // fixpoint fills streams uniformly), so split once per call.
  long probe_pred = -1;
  verify_scratch_.clear();
  const Tuple* const* proto = in.Row(0);
  for (size_t pi = 0; pi < query_.predicates().size(); ++pi) {
    const ResolvedPredicate& p = query_.predicates()[pi];
    if (!p.Involves(v)) continue;
    if (proto[p.OtherStream(v)] == nullptr) continue;
    if (probe_pred < 0) {
      probe_pred = static_cast<long>(pi);
    } else {
      verify_scratch_.push_back(pi);
    }
  }
  if (probe_pred < 0) return;  // chained edges always imply one
  const ResolvedPredicate& probe = query_.predicates()[probe_pred];
  size_t probe_other = probe.OtherStream(v);
  const size_t rows = in.size();
  const size_t probe_attr = probe.AttrOn(v);
  const size_t probe_other_attr = probe.AttrOn(probe_other);
  // Batch-aware probing (same shape as MJoinOperator::Expand):
  // consecutive rows sharing the probe key reuse one bucket lookup;
  // only FindBucket can invalidate the cached pointer, and a run
  // break re-resolves it.
  const Value* run_key = nullptr;
  const TupleStore::Bucket* bucket = nullptr;
  for (size_t r = 0; r < rows; ++r) {
    const Tuple* const* a = in.Row(r);
    const Value& key = a[probe_other]->at(probe_other_attr);
    if (run_key == nullptr || !(*run_key == key)) {
      bucket = states_[v]->FindBucket(probe_attr, key);
      run_key = &key;
    }
    states_[v]->ForBucketLive(bucket, [&](size_t, const Tuple& candidate) {
      for (size_t pi : verify_scratch_) {
        const ResolvedPredicate& p = query_.predicates()[pi];
        size_t other = p.OtherStream(v);
        if (!(candidate.at(p.AttrOn(v)) == a[other]->at(p.AttrOn(other)))) {
          return;
        }
      }
      out->AppendWith(a, v, &candidate);
    });
  }
}

bool PurgeEngine::Removable(size_t stream, const Tuple& tuple,
                            int64_t now) const {
  if (!stream_purgeable_[stream]) return false;
  const size_t n = query_.num_streams();

  AssignmentBuffer* joinable = &expand_bufs_[0];
  AssignmentBuffer* scratch = &expand_bufs_[1];
  joinable->Reset(n);
  joinable->AppendNullRow()[stream] = &tuple;

  std::vector<bool> covered(n, false);
  covered[stream] = true;
  size_t covered_count = 1;
  bool progress = true;
  while (progress && covered_count < n) {
    progress = false;
    for (size_t ei = 0; ei < edges_.size(); ++ei) {
      const LocalGpgEdge& edge = edges_[ei];
      if (covered[edge.target_input]) continue;
      bool ready =
          std::all_of(edge.source_inputs.begin(), edge.source_inputs.end(),
                      [&](size_t s) { return covered[s]; });
      if (!ready) continue;
      // Distinct value combinations the target's punctuations must
      // exclude; sort+unique on reused scratch instead of a
      // per-check std::unordered_set.
      combos_scratch_.clear();
      for (size_t r = 0; r < joinable->size(); ++r) {
        const Tuple* const* a = joinable->Row(r);
        std::vector<Value> combo;
        combo.reserve(edge.bindings.size());
        for (const LocalGpgEdge::Binding& b : edge.bindings) {
          combo.push_back(a[b.source_input]->at(b.source_attr));
        }
        combos_scratch_.push_back(Tuple(std::move(combo)));
      }
      std::sort(combos_scratch_.begin(), combos_scratch_.end());
      combos_scratch_.erase(
          std::unique(combos_scratch_.begin(), combos_scratch_.end()),
          combos_scratch_.end());
      bool all_excluded = true;
      for (const Tuple& combo : combos_scratch_) {
        if (!punct_stores_[edge.target_input]->CoversSubspace(
                edge_target_attrs_[ei], combo.values(), now)) {
          all_excluded = false;
          break;
        }
      }
      if (!all_excluded) continue;
      Expand(edge.target_input, *joinable, scratch);
      std::swap(joinable, scratch);
      if (joinable->size() > config_.max_joinable_set) return false;
      covered[edge.target_input] = true;
      ++covered_count;
      progress = true;
    }
  }
  return covered_count == n;
}

void PurgeEngine::SetObserver(obs::OperatorObs* observer) {
  obs_ = observer;
  for (auto& state : states_) state->SetObserver(observer);
}

std::vector<std::pair<size_t, size_t>> PurgeEngine::Sweep(int64_t now) {
  const bool observing = obs::kCompiled && obs_ != nullptr;
  const int64_t sweep_start = observing ? obs::NowNs() : 0;
  std::vector<std::pair<size_t, size_t>> released;
  for (size_t s = 0; s < states_.size(); ++s) {
    if (!stream_purgeable_[s]) continue;
    sweep_scratch_.clear();
    states_[s]->ForEachLive([&](size_t slot, const Tuple& t) {
      if (Removable(s, t, now)) sweep_scratch_.push_back(slot);
    });
    for (size_t slot : sweep_scratch_) released.emplace_back(s, slot);
    states_[s]->PurgeSlots(sweep_scratch_);
  }
  // Epoch boundary: release purged payloads and reclaim all-dead
  // arena blocks.
  for (auto& state : states_) state->AdvanceEpoch();
  if (observing) {
    obs_->RecordSweep(obs::NowNs() - sweep_start, released.size());
  }
  return released;
}

size_t PurgeEngine::TotalLiveTuples() const {
  size_t total = 0;
  for (const auto& s : states_) total += s->live_count();
  return total;
}

}  // namespace punctsafe
