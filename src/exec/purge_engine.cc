#include "exec/purge_engine.h"

#include <algorithm>

#include "core/plan_safety.h"
#include "exec/simd.h"
#include "util/logging.h"

namespace punctsafe {

Result<std::unique_ptr<PurgeEngine>> PurgeEngine::Create(
    const ContinuousJoinQuery& query, const SchemeSet& schemes,
    PurgeEngineConfig config) {
  auto engine = std::unique_ptr<PurgeEngine>(new PurgeEngine());
  engine->query_ = query;
  engine->config_ = config;

  // Query-level graph: one "input" per raw stream.
  std::vector<LocalInput> inputs;
  for (size_t s = 0; s < query.num_streams(); ++s) {
    inputs.push_back({{s}, RawAvailableSchemes(query, schemes, s)});
  }
  engine->edges_ = BuildLocalEdges(engine->query_, inputs);
  for (const LocalGpgEdge& edge : engine->edges_) {
    std::vector<size_t> target_attrs;
    for (const LocalGpgEdge::Binding& b : edge.bindings) {
      target_attrs.push_back(b.target_attr);
    }
    engine->edge_target_attrs_.push_back(std::move(target_attrs));
  }
  for (size_t s = 0; s < query.num_streams(); ++s) {
    engine->stream_purgeable_.push_back(
        LocalInputPurgeable(s, query.num_streams(), engine->edges_));
    engine->states_.push_back(std::make_unique<TupleStore>(
        engine->query_.JoinAttrsOf(s),
        TupleStoreOptions{.arena = config.arena}));
    engine->punct_stores_.push_back(
        std::make_unique<PunctuationStore>(config.punctuation_lifespan));
  }
  return engine;
}

size_t PurgeEngine::AddTuple(size_t stream, const Tuple& tuple,
                             int64_t ts) {
  PUNCTSAFE_CHECK(stream < states_.size());
  if (obs::kCompiled && obs_ != nullptr) {
    obs_->NoteTupleTs(ts);
    obs_->Note(obs::TraceKind::kTupleIn, stream, 0);
  }
  return states_[stream]->Insert(tuple);
}

void PurgeEngine::AddTupleBatch(size_t stream, TupleBatch& batch) {
  PUNCTSAFE_CHECK(stream < states_.size());
  if (batch.empty()) return;
  if (obs::kCompiled && obs_ != nullptr) {
    // Per-batch sampling: one watermark fold and one ring event for
    // the whole batch instead of two notes per row.
    obs_->NoteTupleTs(batch.max_timestamp());
    obs_->Note(obs::TraceKind::kTupleIn, stream, 0);
  }
  batch.SelectAll();
  states_[stream]->InsertBatch(batch);
}

void PurgeEngine::AddPunctuation(size_t stream,
                                 const Punctuation& punctuation,
                                 int64_t ts) {
  PUNCTSAFE_CHECK(stream < punct_stores_.size());
  if (obs::kCompiled && obs_ != nullptr) obs_->RecordPunctuation(stream, ts);
  if (config_.punctuation_lifespan.has_value()) {
    for (auto& store : punct_stores_) store->ExpireBefore(ts);
  }
  punct_stores_[stream]->Add(punctuation, ts);
}

void PurgeEngine::Expand(size_t v, const BatchFrontier& in,
                         BatchFrontier* out) const {
  out->Reset(in.width());
  if (in.empty()) return;
  // Probe one predicate to a covered stream, verify the rest. The
  // covered-stream pattern is identical for every row of `in` (the
  // fixpoint fills streams uniformly), so split once per call.
  long probe_pred = -1;
  verify_scratch_.clear();
  for (size_t pi = 0; pi < query_.predicates().size(); ++pi) {
    const ResolvedPredicate& p = query_.predicates()[pi];
    if (!p.Involves(v)) continue;
    if (in.cell(0, p.OtherStream(v)) == nullptr) continue;
    if (probe_pred < 0) {
      probe_pred = static_cast<long>(pi);
    } else {
      verify_scratch_.push_back(pi);
    }
  }
  if (probe_pred < 0) return;  // chained edges always imply one
  const ResolvedPredicate& probe = query_.predicates()[probe_pred];
  size_t probe_other = probe.OtherStream(v);
  const size_t rows = in.size();
  const size_t probe_attr = probe.AttrOn(v);
  const size_t probe_other_attr = probe.AttrOn(probe_other);
  const TupleStore& store = *states_[v];
  // Batch-aware probing over the columnar frontier (same shape as
  // MJoinOperator::Expand): one probe-hash gather, SIMD run detection,
  // one bucket resolution + live filter per same-key run. Only
  // FindBucket can invalidate the bucket pointer, and each run
  // re-resolves it.
  probe_hashes_.clear();
  for (size_t r = 0; r < rows; ++r) {
    probe_hashes_.push_back(static_cast<uint64_t>(
        in.cell(r, probe_other)->HashAt(probe_other_attr)));
  }
  size_t k = 0;
  while (k < rows) {
    const Value& key = in.cell(k, probe_other)->at(probe_other_attr);
    const size_t hash_run =
        simd::HashRunLength(probe_hashes_.data() + k, rows - k);
    size_t same_key = 1;
    while (same_key < hash_run &&
           in.cell(k + same_key, probe_other)->at(probe_other_attr) == key) {
      ++same_key;
    }
    const TupleStore::Bucket* bucket = store.FindBucket(probe_attr, key);
    store.NoteProbeRun(same_key);
    run_cands_.clear();
    store.ForBucketLive(bucket, [&](size_t, const Tuple& candidate) {
      run_cands_.push_back(&candidate);
    });
    // Per-pair exact verification without the SIMD hash prefilter:
    // chained-purge frontiers are capped small (max_joinable_set), so
    // the gather passes would cost more than they save.
    for (size_t r = k; r < k + same_key; ++r) {
      for (const Tuple* cand : run_cands_) {
        bool ok = true;
        for (size_t pi : verify_scratch_) {
          const ResolvedPredicate& p = query_.predicates()[pi];
          size_t other = p.OtherStream(v);
          if (!(cand->at(p.AttrOn(v)) ==
                in.cell(r, other)->at(p.AttrOn(other)))) {
            ok = false;
            break;
          }
        }
        if (ok) out->AppendExtended(in, r, v, cand);
      }
    }
    k += same_key;
  }
}

bool PurgeEngine::Removable(size_t stream, const Tuple& tuple,
                            int64_t now) const {
  if (!stream_purgeable_[stream]) return false;
  const size_t n = query_.num_streams();

  BatchFrontier* joinable = &expand_bufs_[0];
  BatchFrontier* scratch = &expand_bufs_[1];
  joinable->Reset(n);
  joinable->SeedSingle(&tuple, stream);

  std::vector<bool> covered(n, false);
  covered[stream] = true;
  size_t covered_count = 1;
  bool progress = true;
  while (progress && covered_count < n) {
    progress = false;
    for (size_t ei = 0; ei < edges_.size(); ++ei) {
      const LocalGpgEdge& edge = edges_[ei];
      if (covered[edge.target_input]) continue;
      bool ready =
          std::all_of(edge.source_inputs.begin(), edge.source_inputs.end(),
                      [&](size_t s) { return covered[s]; });
      if (!ready) continue;
      // Distinct value combinations the target's punctuations must
      // exclude; sort+unique on reused scratch instead of a
      // per-check std::unordered_set.
      combos_scratch_.clear();
      for (size_t r = 0; r < joinable->size(); ++r) {
        std::vector<Value> combo;
        combo.reserve(edge.bindings.size());
        for (const LocalGpgEdge::Binding& b : edge.bindings) {
          combo.push_back(
              joinable->cell(r, b.source_input)->at(b.source_attr));
        }
        combos_scratch_.push_back(Tuple(std::move(combo)));
      }
      std::sort(combos_scratch_.begin(), combos_scratch_.end());
      combos_scratch_.erase(
          std::unique(combos_scratch_.begin(), combos_scratch_.end()),
          combos_scratch_.end());
      bool all_excluded = true;
      for (const Tuple& combo : combos_scratch_) {
        if (!punct_stores_[edge.target_input]->CoversSubspace(
                edge_target_attrs_[ei], combo.values(), now)) {
          all_excluded = false;
          break;
        }
      }
      if (!all_excluded) continue;
      Expand(edge.target_input, *joinable, scratch);
      std::swap(joinable, scratch);
      if (joinable->size() > config_.max_joinable_set) return false;
      covered[edge.target_input] = true;
      ++covered_count;
      progress = true;
    }
  }
  return covered_count == n;
}

void PurgeEngine::SetObserver(obs::OperatorObs* observer) {
  obs_ = observer;
  for (auto& state : states_) state->SetObserver(observer);
}

std::vector<std::pair<size_t, size_t>> PurgeEngine::Sweep(int64_t now) {
  const bool observing = obs::kCompiled && obs_ != nullptr;
  const int64_t sweep_start = observing ? obs::NowNs() : 0;
  std::vector<std::pair<size_t, size_t>> released;
  for (size_t s = 0; s < states_.size(); ++s) {
    if (!stream_purgeable_[s]) continue;
    sweep_scratch_.clear();
    states_[s]->ForEachLive([&](size_t slot, const Tuple& t) {
      if (Removable(s, t, now)) sweep_scratch_.push_back(slot);
    });
    for (size_t slot : sweep_scratch_) released.emplace_back(s, slot);
    states_[s]->PurgeSlots(sweep_scratch_);
  }
  // Epoch boundary: release purged payloads and reclaim all-dead
  // arena blocks.
  for (auto& state : states_) state->AdvanceEpoch();
  if (observing) {
    obs_->RecordSweep(obs::NowNs() - sweep_start, released.size());
  }
  return released;
}

size_t PurgeEngine::TotalLiveTuples() const {
  size_t total = 0;
  for (const auto& s : states_) total += s->live_count();
  return total;
}

}  // namespace punctsafe
