#include "exec/purge_engine.h"

#include <algorithm>
#include <unordered_set>

#include "core/plan_safety.h"
#include "util/logging.h"

namespace punctsafe {

namespace {
using Assignment = std::vector<const Tuple*>;
}  // namespace

Result<std::unique_ptr<PurgeEngine>> PurgeEngine::Create(
    const ContinuousJoinQuery& query, const SchemeSet& schemes,
    PurgeEngineConfig config) {
  auto engine = std::unique_ptr<PurgeEngine>(new PurgeEngine());
  engine->query_ = query;
  engine->config_ = config;

  // Query-level graph: one "input" per raw stream.
  std::vector<LocalInput> inputs;
  for (size_t s = 0; s < query.num_streams(); ++s) {
    inputs.push_back({{s}, RawAvailableSchemes(query, schemes, s)});
  }
  engine->edges_ = BuildLocalEdges(engine->query_, inputs);
  for (size_t s = 0; s < query.num_streams(); ++s) {
    engine->stream_purgeable_.push_back(
        LocalInputPurgeable(s, query.num_streams(), engine->edges_));
    engine->states_.push_back(
        std::make_unique<TupleStore>(engine->query_.JoinAttrsOf(s)));
    engine->punct_stores_.push_back(
        std::make_unique<PunctuationStore>(config.punctuation_lifespan));
  }
  return engine;
}

size_t PurgeEngine::AddTuple(size_t stream, const Tuple& tuple,
                             int64_t /*ts*/) {
  PUNCTSAFE_CHECK(stream < states_.size());
  return states_[stream]->Insert(tuple);
}

void PurgeEngine::AddPunctuation(size_t stream,
                                 const Punctuation& punctuation,
                                 int64_t ts) {
  PUNCTSAFE_CHECK(stream < punct_stores_.size());
  if (config_.punctuation_lifespan.has_value()) {
    for (auto& store : punct_stores_) store->ExpireBefore(ts);
  }
  punct_stores_[stream]->Add(punctuation, ts);
}

std::vector<std::vector<const Tuple*>> PurgeEngine::Expand(
    size_t v, const std::vector<Assignment>& assignments) const {
  std::vector<Assignment> out;
  for (const Assignment& a : assignments) {
    // Probe one predicate to a covered stream, verify the rest.
    long probe_pred = -1;
    std::vector<size_t> verify;
    for (size_t pi = 0; pi < query_.predicates().size(); ++pi) {
      const ResolvedPredicate& p = query_.predicates()[pi];
      if (!p.Involves(v)) continue;
      if (a[p.OtherStream(v)] == nullptr) continue;
      if (probe_pred < 0) {
        probe_pred = static_cast<long>(pi);
      } else {
        verify.push_back(pi);
      }
    }
    auto matches = [&](const Tuple& candidate) {
      for (size_t pi : verify) {
        const ResolvedPredicate& p = query_.predicates()[pi];
        size_t other = p.OtherStream(v);
        if (!(candidate.at(p.AttrOn(v)) == a[other]->at(p.AttrOn(other)))) {
          return false;
        }
      }
      return true;
    };
    if (probe_pred < 0) continue;  // chained edges always imply one
    const ResolvedPredicate& p = query_.predicates()[probe_pred];
    size_t other = p.OtherStream(v);
    for (size_t slot :
         states_[v]->Probe(p.AttrOn(v), a[other]->at(p.AttrOn(other)))) {
      const Tuple& candidate = states_[v]->At(slot);
      if (!matches(candidate)) continue;
      Assignment next = a;
      next[v] = &candidate;
      out.push_back(std::move(next));
    }
  }
  return out;
}

bool PurgeEngine::Removable(size_t stream, const Tuple& tuple,
                            int64_t now) const {
  if (!stream_purgeable_[stream]) return false;
  const size_t n = query_.num_streams();

  std::vector<Assignment> joinable;
  Assignment start(n, nullptr);
  start[stream] = &tuple;
  joinable.push_back(std::move(start));

  std::vector<bool> covered(n, false);
  covered[stream] = true;
  size_t covered_count = 1;
  bool progress = true;
  while (progress && covered_count < n) {
    progress = false;
    for (const LocalGpgEdge& edge : edges_) {
      if (covered[edge.target_input]) continue;
      bool ready =
          std::all_of(edge.source_inputs.begin(), edge.source_inputs.end(),
                      [&](size_t s) { return covered[s]; });
      if (!ready) continue;
      std::unordered_set<Tuple, TupleHash> combos;
      std::vector<size_t> target_attrs;
      for (const LocalGpgEdge::Binding& b : edge.bindings) {
        target_attrs.push_back(b.target_attr);
      }
      for (const Assignment& a : joinable) {
        std::vector<Value> combo;
        for (const LocalGpgEdge::Binding& b : edge.bindings) {
          combo.push_back(a[b.source_input]->at(b.source_attr));
        }
        combos.insert(Tuple(std::move(combo)));
      }
      bool all_excluded = true;
      for (const Tuple& combo : combos) {
        if (!punct_stores_[edge.target_input]->CoversSubspace(
                target_attrs, combo.values(), now)) {
          all_excluded = false;
          break;
        }
      }
      if (!all_excluded) continue;
      joinable = Expand(edge.target_input, joinable);
      if (joinable.size() > config_.max_joinable_set) return false;
      covered[edge.target_input] = true;
      ++covered_count;
      progress = true;
    }
  }
  return covered_count == n;
}

std::vector<std::pair<size_t, size_t>> PurgeEngine::Sweep(int64_t now) {
  std::vector<std::pair<size_t, size_t>> released;
  for (size_t s = 0; s < states_.size(); ++s) {
    if (!stream_purgeable_[s]) continue;
    std::vector<size_t> removable;
    states_[s]->ForEachLive([&](size_t slot, const Tuple& t) {
      if (Removable(s, t, now)) removable.push_back(slot);
    });
    for (size_t slot : removable) released.emplace_back(s, slot);
    states_[s]->PurgeSlots(removable);
  }
  return released;
}

size_t PurgeEngine::TotalLiveTuples() const {
  size_t total = 0;
  for (const auto& s : states_) total += s->live_count();
  return total;
}

}  // namespace punctsafe
