// Columnar storage for the expansion frontier of a whole TupleBatch:
// partial join assignments carried as per-input tuple-pointer COLUMNS
// plus a row-provenance column mapping each frontier row back to the
// source batch row it descends from (docs/PERF.md, "Batched
// expansion").
//
// The predecessor (AssignmentBuffer) stored assignments row-major, one
// frontier per *source row*: every hop re-resolved buckets per row and
// verification touched Values pointer-by-pointer. Column-major layout
// over the whole batch is what lets a hop
//  * gather the probe-key hashes of every frontier row into one
//    contiguous column (SIMD run detection then spans source rows, not
//    just the children of one row), and
//  * run the cached-hash verification prefilter over a (row, candidate)
//    pair list before exact Value equality sees the survivors.
//
// Reset() keeps every column's capacity, so the steady-state expansion
// path allocates nothing; the operators charge any capacity growth to
// StateMetrics::expand_allocs. Rows are only appended from a
// *different* frontier (the expand loops ping-pong two buffers), so
// AppendExtended never invalidates the row it copies from.

#ifndef PUNCTSAFE_EXEC_BATCH_FRONTIER_H_
#define PUNCTSAFE_EXEC_BATCH_FRONTIER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "exec/tuple_batch.h"
#include "stream/tuple.h"

namespace punctsafe {

class BatchFrontier {
 public:
  /// \brief Empties the frontier (column capacities retained) and fixes
  /// the input count for subsequent appends.
  void Reset(size_t width) {
    if (cols_.size() != width) cols_.resize(width);
    for (auto& col : cols_) col.clear();
    src_row_.clear();
  }

  size_t width() const { return cols_.size(); }
  size_t size() const { return src_row_.size(); }
  bool empty() const { return src_row_.empty(); }

  /// \brief The stored-tuple pointer of `row` for `input` (nullptr =
  /// that input is not expanded yet).
  const Tuple* cell(size_t row, size_t input) const {
    return cols_[input][row];
  }
  /// \brief The source-batch row this frontier row descends from (0
  /// for single-tuple seeds). Timestamps of emitted results are looked
  /// up through this column.
  uint32_t src_row(size_t row) const { return src_row_[row]; }

  /// \brief Raw base of one input's tuple-pointer column (valid until
  /// the next append) — lets emission walk a column sequentially
  /// instead of re-resolving cell(row, input) per row.
  const Tuple* const* column(size_t input) const {
    return cols_[input].data();
  }

  /// \brief Seeds one row from a single tuple on `input` (the
  /// tuple-at-a-time entry; provenance row 0).
  void SeedSingle(const Tuple* tuple, size_t input) {
    for (size_t c = 0; c < cols_.size(); ++c) {
      cols_[c].push_back(c == input ? tuple : nullptr);
    }
    src_row_.push_back(0);
  }

  /// \brief Seeds one row per *selected* row of `batch` on `input`,
  /// with provenance pointing at the selected row ids — the whole
  /// selection vector becomes the initial frontier in one pass.
  void SeedFromBatch(const TupleBatch& batch, size_t input) {
    const std::vector<uint32_t>& sel = batch.selection();
    for (size_t c = 0; c < cols_.size(); ++c) {
      if (c == input) {
        for (uint32_t row : sel) cols_[c].push_back(&batch.tuple(row));
      } else {
        cols_[c].resize(cols_[c].size() + sel.size(), nullptr);
      }
    }
    src_row_.insert(src_row_.end(), sel.begin(), sel.end());
  }

  /// \brief Appends a copy of row `row` of `in` with input `at`
  /// overwritten by `cand`; provenance carries over. `in` must be a
  /// different frontier.
  void AppendExtended(const BatchFrontier& in, size_t row, size_t at,
                      const Tuple* cand) {
    for (size_t c = 0; c < cols_.size(); ++c) {
      cols_[c].push_back(c == at ? cand : in.cols_[c][row]);
    }
    src_row_.push_back(in.src_row_[row]);
  }

  /// \brief Bulk row-major product append: for every row in
  /// [row0, row0 + len) of `in`, one output row per candidate, with
  /// input `at` set to that candidate — exactly the rows a loop of
  /// AppendExtended(in, r, at, cands[j]) would append, in the same
  /// (r outer, j inner) order, but written column-segment-at-a-time.
  /// This is the batch path's replacement for per-pair appends when a
  /// whole same-key run shares one candidate list; `in` must be a
  /// different frontier.
  void AppendProduct(const BatchFrontier& in, size_t row0, size_t len,
                     size_t at, const Tuple* const* cands, size_t ncands) {
    const size_t old = src_row_.size();
    const size_t add = len * ncands;
    for (size_t c = 0; c < cols_.size(); ++c) {
      std::vector<const Tuple*>& col = cols_[c];
      col.resize(old + add);
      const Tuple** dst = col.data() + old;
      if (c == at) {
        for (size_t r = 0; r < len; ++r) {
          for (size_t j = 0; j < ncands; ++j) *dst++ = cands[j];
        }
      } else {
        const Tuple* const* src = in.cols_[c].data() + row0;
        for (size_t r = 0; r < len; ++r) {
          const Tuple* v = src[r];
          for (size_t j = 0; j < ncands; ++j) *dst++ = v;
        }
      }
    }
    src_row_.resize(old + add);
    uint32_t* dst = src_row_.data() + old;
    const uint32_t* src = in.src_row_.data() + row0;
    for (size_t r = 0; r < len; ++r) {
      for (size_t j = 0; j < ncands; ++j) *dst++ = src[r];
    }
  }

  /// \brief Summed column capacities, the expand_allocs accounting
  /// input: growth between two readings means the steady state
  /// allocated.
  size_t CapacitySum() const {
    size_t total = src_row_.capacity();
    for (const auto& col : cols_) total += col.capacity();
    return total;
  }

 private:
  std::vector<std::vector<const Tuple*>> cols_;  // cols_[input][row]
  std::vector<uint32_t> src_row_;
};

}  // namespace punctsafe

#endif  // PUNCTSAFE_EXEC_BATCH_FRONTIER_H_
