#include "exec/arena.h"

#include "util/logging.h"

namespace punctsafe {

uint32_t EpochArena::FreshBlock(size_t capacity) {
  if (!free_blocks_.empty() && capacity <= block_bytes_) {
    // Free-listed blocks all have capacity block_bytes_, so any
    // standard-size request fits; steady state never mallocs here.
    uint32_t id = free_blocks_.back();
    free_blocks_.pop_back();
    Block& b = blocks_[id];
    b.used = 0;
    b.live = 0;
    b.queued = false;
    b.born_epoch = epoch_;
    return id;
  }
  size_t cap = capacity > block_bytes_ ? capacity : block_bytes_;
  Block b;
  b.data = std::make_unique<char[]>(cap);
  b.capacity = cap;
  b.born_epoch = epoch_;
  blocks_.push_back(std::move(b));
  bytes_reserved_ += cap;
  ++blocks_allocated_;
  return static_cast<uint32_t>(blocks_.size() - 1);
}

EpochArena::Allocation EpochArena::AllocateSlow(size_t need) {
  if (need > block_bytes_) {
    // Oversized: a dedicated block of exactly the requested size, so a
    // giant tuple cannot strand a whole standard block behind it.
    uint32_t id = FreshBlock(need);
    Block& b = blocks_[id];
    b.used = need;
    b.live = 1;
    bytes_live_ += need;
    return {b.data.get(), id};
  }
  current_ = FreshBlock(block_bytes_);
  Block& b = blocks_[current_];
  char* ptr = b.data.get() + b.used;
  b.used += need;
  b.live += 1;
  bytes_live_ += need;
  return {ptr, current_};
}

void EpochArena::NoteDead(uint32_t block) {
  PUNCTSAFE_CHECK(block < blocks_.size()) << "NoteDead on unknown block";
  Block& b = blocks_[block];
  PUNCTSAFE_CHECK(b.live > 0) << "NoteDead underflow on block " << block;
  b.live -= 1;
  if (b.live == 0 && !b.queued) {
    b.queued = true;
    dead_candidates_.push_back(block);
  }
}

size_t EpochArena::AdvanceEpoch() {
  ++epoch_;
  size_t reclaimed = 0;
  for (uint32_t id : dead_candidates_) {
    Block& b = blocks_[id];
    b.queued = false;
    // The current block may have gained fresh allocations after its
    // counter touched zero; re-check before reclaiming.
    if (b.live != 0) continue;
    bytes_live_ -= b.used;
    ++reclaimed;
    ++blocks_reclaimed_;
    if (id == current_) {
      // Reset in place; the bump pointer restarts at the block base.
      b.used = 0;
      b.born_epoch = epoch_;
    } else if (b.capacity == block_bytes_) {
      ResetBlock(id);
      free_blocks_.push_back(id);
    } else {
      // Oversized blocks are returned to the system — their capacity
      // is workload-specific and reusing them would hoard memory.
      bytes_reserved_ -= b.capacity;
      b.data.reset();
      b.capacity = 0;
      b.used = 0;
    }
  }
  dead_candidates_.clear();
  return reclaimed;
}

void EpochArena::ResetBlock(uint32_t id) {
  Block& b = blocks_[id];
  b.used = 0;
  b.live = 0;
  b.born_epoch = epoch_;
}

}  // namespace punctsafe
