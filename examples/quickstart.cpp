// Quickstart: the paper's running example end to end.
//
// The online auction of Example 1 / Figure 1: an `item` stream and a
// `bid` stream joined on itemid. The walkthrough shows the whole
// punctsafe workflow —
//   1. register streams and punctuation schemes with the query
//      register (Figure 2's architecture),
//   2. ask the safety checker whether the join can run at all (it
//      rejects the query when the only schemes are useless ones),
//   3. run the admitted query on a generated auction trace and watch
//      the join state stay bounded while results stream out.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "util/logging.h"

#include "exec/input_manager.h"
#include "exec/query_register.h"
#include "workload/auction.h"

using namespace punctsafe;

int main() {
  std::printf("== punctsafe quickstart: the online auction ==\n\n");

  // ---------------------------------------------------------------
  // 1. The unsafe configuration the paper opens with: punctuations
  //    exist, but on the wrong attribute (bidderid).
  // ---------------------------------------------------------------
  {
    QueryRegister reg;
    PUNCTSAFE_CHECK_OK(
        reg.RegisterStream(AuctionWorkload::kItemStream,
                           AuctionWorkload::ItemSchema()));
    PUNCTSAFE_CHECK_OK(reg.RegisterStream(AuctionWorkload::kBidStream,
                                          AuctionWorkload::BidSchema()));
    PUNCTSAFE_CHECK_OK(
        reg.RegisterScheme(AuctionWorkload::kBidStream, {"bidderid"}));

    auto rejected = reg.Register(AuctionWorkload::QueryStreams(),
                                 AuctionWorkload::QueryPredicates());
    std::printf("With only bid(+bidderid) punctuations the register says:\n");
    std::printf("  %s\n\n", rejected.status().ToString().c_str());
  }

  // ---------------------------------------------------------------
  // 2. The safe configuration: item(+itemid) (ids are unique) and
  //    bid(+itemid) (auction-close announcements).
  // ---------------------------------------------------------------
  QueryRegister reg;
  PUNCTSAFE_CHECK_OK(AuctionWorkload::Setup(&reg));
  auto rq = reg.Register(AuctionWorkload::QueryStreams(),
                         AuctionWorkload::QueryPredicates());
  PUNCTSAFE_CHECK_OK(rq.status());
  std::printf("With itemid punctuations on both streams:\n  %s\n\n",
              rq->safety.explanation.c_str());

  // The checker also explains HOW each state purges (Section 3.2.1).
  for (const StreamPurgeability& v : rq->safety.per_stream) {
    if (v.purge_plan.has_value()) {
      std::printf("  %s\n", v.purge_plan->ToString(rq->query).c_str());
    }
  }

  // ---------------------------------------------------------------
  // 3. Run a 1000-auction market through the admitted executor.
  // ---------------------------------------------------------------
  AuctionConfig config;
  config.num_items = 1000;
  config.bids_per_item = 8;
  config.max_open = 32;
  Trace trace = AuctionWorkload::Generate(config);
  PUNCTSAFE_CHECK_OK(FeedTrace(rq->executor.get(), trace));

  std::printf("\nRan %zu trace events:\n", trace.size());
  std::printf("  join results emitted : %llu\n",
              static_cast<unsigned long long>(rq->executor->num_results()));
  std::printf("  join-state high water: %zu tuples (input held %zu tuples)\n",
              rq->executor->tuple_high_water(),
              config.num_items * (1 + config.bids_per_item));
  std::printf("  final join state     : %zu tuples\n",
              rq->executor->TotalLiveTuples());
  std::printf(
      "\nThe state high-water tracks the %zu concurrently open auctions,\n"
      "not the input size — the guarantee the safety check promised.\n",
      config.max_open);
  return 0;
}
