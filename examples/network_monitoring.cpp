// Network monitoring: a 3-way correlation with recycled identifiers
// and punctuation lifespans (paper Section 5.1).
//
//   flows ⋈ packets on flow_id,  flows ⋈ alerts on src_ip
//
// Flow ids recycle (like TCP sequence numbers wrapping every ~4.55 h),
// so "no more packets for flow 17" cannot mean *forever*. The example
// runs the same trace through two executors:
//   * one whose punctuation stores use the recommended lifespan —
//     correct on recycled ids AND bounded punctuation storage;
//   * one that keeps punctuations forever — on a recycling trace this
//     is semantically WRONG: revived flow ids are dropped on arrival
//     against stale punctuations and results go missing, on top of
//     the store growing with every distinct id ever punctuated.
//
// Build & run:  ./build/examples/network_monitoring

#include <cstdio>

#include "util/logging.h"

#include "exec/input_manager.h"
#include "exec/query_register.h"
#include "workload/network.h"

using namespace punctsafe;

namespace {

struct RunStats {
  uint64_t results;
  size_t tuple_high_water;
  size_t punct_live;
  size_t punct_high_water;
  uint64_t punct_expired;
};

RunStats Run(const Trace& trace, std::optional<int64_t> lifespan) {
  QueryRegister reg;
  PUNCTSAFE_CHECK_OK(NetworkWorkload::Setup(&reg));
  ExecutorConfig config;
  config.mjoin.punctuation_lifespan = lifespan;
  auto rq = reg.Register(NetworkWorkload::QueryStreams(),
                         NetworkWorkload::QueryPredicates(), config);
  PUNCTSAFE_CHECK_OK(rq.status());
  PUNCTSAFE_CHECK_OK(FeedTrace(rq->executor.get(), trace));
  uint64_t expired = 0;
  for (const auto& op : rq->executor->operators()) {
    expired += op->metrics().punctuations_expired;
  }
  return {rq->executor->num_results(), rq->executor->tuple_high_water(),
          rq->executor->TotalLivePunctuations(),
          rq->executor->punctuation_high_water(), expired};
}

}  // namespace

int main() {
  std::printf("== punctsafe example: network monitoring with lifespans ==\n\n");

  NetworkConfig config;
  config.num_flows = 2000;
  config.packets_per_flow = 6;
  config.id_space = 64;  // ids recycle ~30x over the run
  Trace trace = NetworkWorkload::Generate(config);
  int64_t lifespan = NetworkWorkload::RecommendedLifespan(config);
  std::printf("trace: %zu events, %zu flows over a %zu-id space "
              "(recommended lifespan: %lld ticks)\n\n",
              trace.size(), config.num_flows, config.id_space,
              static_cast<long long>(lifespan));

  RunStats with = Run(trace, lifespan);
  RunStats without = Run(trace, std::nullopt);

  std::printf("%-28s %15s %15s\n", "", "with lifespan", "keep forever");
  std::printf("%-28s %15llu %15llu\n", "join results",
              static_cast<unsigned long long>(with.results),
              static_cast<unsigned long long>(without.results));
  std::printf("%-28s %15zu %15zu\n", "tuple state high water",
              with.tuple_high_water, without.tuple_high_water);
  std::printf("%-28s %15zu %15zu\n", "punctuations live (end)",
              with.punct_live, without.punct_live);
  std::printf("%-28s %15zu %15zu\n", "punctuations high water",
              with.punct_high_water, without.punct_high_water);
  std::printf("%-28s %15llu %15llu\n", "punctuations expired",
              static_cast<unsigned long long>(with.punct_expired),
              static_cast<unsigned long long>(without.punct_expired));

  std::printf(
      "\nThe forever store lost %.1f%% of the results: a punctuation\n"
      "that outlives its identifier's validity window wrongly excludes\n"
      "the id's next incarnation — exactly the Section 5.1 hazard that\n"
      "motivates lifespans (TCP sequence numbers wrap ~every 4.55 h).\n"
      "With the recommended lifespan the answer is complete and the\n"
      "punctuation store stays bounded by the ids in flight instead of\n"
      "every id ever punctuated.\n",
      100.0 * (1.0 - static_cast<double>(without.results) /
                         static_cast<double>(with.results)));
  return 0;
}
