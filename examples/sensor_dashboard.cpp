// Sensor dashboard: multi-attribute punctuation schemes in action
// (paper Section 4.2 / Figures 8-10).
//
// The 3-way sensor query closes state per (sensor_id, epoch) pair.
// The simple punctuation graph (Definition 7) cannot see pair schemes
// and calls the query unsafe; the generalized graph (Definition 8)
// proves it safe, and the transformed-graph algorithm (Definition 11)
// decides it in two merge rounds. The example prints all three
// verdicts, then runs the workload and reports a per-epoch state
// profile showing the purge actually happening.
//
// Build & run:  ./build/examples/sensor_dashboard

#include <cstdio>

#include "util/logging.h"

#include "core/punctuation_graph.h"
#include "core/transformed_punctuation_graph.h"
#include "exec/input_manager.h"
#include "exec/query_register.h"
#include "workload/sensor.h"

using namespace punctsafe;

int main() {
  std::printf("== punctsafe example: sensor dashboard ==\n\n");

  QueryRegister reg;
  PUNCTSAFE_CHECK_OK(SensorWorkload::Setup(&reg));
  auto query = ContinuousJoinQuery::Create(reg.catalog(),
                                           SensorWorkload::QueryStreams(),
                                           SensorWorkload::QueryPredicates());
  PUNCTSAFE_CHECK_OK(query.status());
  std::printf("query   : %s\n", query->ToString().c_str());
  std::printf("schemes : %s\n\n", reg.schemes().ToString().c_str());

  PunctuationGraph pg = PunctuationGraph::Build(*query, reg.schemes());
  std::printf("simple punctuation graph (Def 7) : %s -> %s\n",
              pg.ToString(*query).c_str(),
              pg.IsStronglyConnected() ? "strongly connected (safe)"
                                       : "NOT strongly connected");

  TransformedPunctuationGraph tpg =
      TransformedPunctuationGraph::Build(*query, reg.schemes());
  std::printf("transformed graph (Def 11)       : %s -> %s\n\n",
              tpg.ToString(*query).c_str(),
              tpg.CollapsedToSingleNode() ? "single virtual node (safe)"
                                          : "stalled (unsafe)");

  auto rq = reg.Register(SensorWorkload::QueryStreams(),
                         SensorWorkload::QueryPredicates());
  PUNCTSAFE_CHECK_OK(rq.status());

  SensorConfig config;
  config.num_sensors = 24;
  config.num_epochs = 30;
  config.readings_per_sensor_epoch = 4;
  Trace trace = SensorWorkload::Generate(config);

  // Feed epoch by epoch and sample the state level.
  std::printf("per-epoch join-state profile (tuples live after epoch):\n  ");
  size_t events_per_epoch = trace.size() / config.num_epochs;
  size_t fed = 0;
  for (const TraceEvent& event : trace) {
    PUNCTSAFE_CHECK_OK(rq->executor->Push(event));
    if (++fed % events_per_epoch == 0 &&
        fed / events_per_epoch <= config.num_epochs) {
      std::printf("%zu ", rq->executor->TotalLiveTuples());
    }
  }
  std::printf("\n\n");
  std::printf("results emitted      : %llu\n",
              static_cast<unsigned long long>(rq->executor->num_results()));
  std::printf("state high water     : %zu tuples\n",
              rq->executor->tuple_high_water());
  std::printf("final state          : %zu tuples\n",
              rq->executor->TotalLiveTuples());
  std::printf(
      "\nThe profile stays flat at roughly one epoch's volume: the pair\n"
      "punctuations close each (sensor, epoch) and the generalized\n"
      "chained purge drains it, even though no single-attribute\n"
      "punctuation scheme could.\n");
  return 0;
}
