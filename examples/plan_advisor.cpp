// Plan advisor: safe-plan enumeration and cost-based choice (paper
// Section 5.2) on the Figure 5 / Figure 8 triangle query.
//
// For each scheme set the advisor
//   * enumerates every safe execution plan (System-R-style DP over
//     strongly connected punctuation sub-graphs),
//   * costs each under a workload profile and ranks them per
//     objective (memory vs throughput — the conflicting goals the
//     paper highlights),
//   * reports the minimal scheme subset that keeps the query safe
//     (Plan Parameter I) and the schemes the engine can ignore.
//
// Build & run:  ./build/examples/plan_advisor

#include <cstdio>

#include "util/logging.h"

#include "core/naive_checker.h"
#include "plan/chooser.h"
#include "plan/scheme_selection.h"
#include "stream/catalog.h"

using namespace punctsafe;

namespace {

StreamCatalog MakeCatalog() {
  StreamCatalog catalog;
  PUNCTSAFE_CHECK_OK(catalog.Register("S1", Schema::OfInts({"A", "B"})));
  PUNCTSAFE_CHECK_OK(catalog.Register("S2", Schema::OfInts({"B", "C"})));
  PUNCTSAFE_CHECK_OK(catalog.Register("S3", Schema::OfInts({"C", "A"})));
  return catalog;
}

SchemeSet MakeSchemes(const StreamCatalog& catalog, bool figure8) {
  auto on = [&](const char* stream, std::vector<std::string> attrs) {
    auto schema = catalog.Get(stream);
    PUNCTSAFE_CHECK_OK(schema.status());
    auto s = PunctuationScheme::OnAttributes(stream, **schema, attrs);
    PUNCTSAFE_CHECK_OK(s.status());
    return std::move(s).ValueOrDie();
  };
  SchemeSet set;
  if (figure8) {
    PUNCTSAFE_CHECK_OK(set.Add(on("S1", {"B"})));
    PUNCTSAFE_CHECK_OK(set.Add(on("S2", {"B"})));
    PUNCTSAFE_CHECK_OK(set.Add(on("S2", {"C"})));
    PUNCTSAFE_CHECK_OK(set.Add(on("S3", {"C", "A"})));
  } else {
    PUNCTSAFE_CHECK_OK(set.Add(on("S1", {"B"})));
    PUNCTSAFE_CHECK_OK(set.Add(on("S2", {"C"})));
    PUNCTSAFE_CHECK_OK(set.Add(on("S3", {"A"})));
  }
  return set;
}

void Advise(const ContinuousJoinQuery& query, const SchemeSet& schemes,
            const char* label) {
  std::printf("---- %s ----\n", label);
  std::printf("schemes: %s\n", schemes.ToString().c_str());

  SafePlanEnumerator enumerator(query, schemes);
  auto plans = enumerator.EnumerateSafePlans();
  PUNCTSAFE_CHECK_OK(plans.status());
  std::printf("plan space: %llu total shapes, %zu safe\n",
              static_cast<unsigned long long>(
                  CountAllShapes(query.num_streams())),
              plans->size());
  for (const PlanShape& p : *plans) {
    std::printf("  safe: %s\n", p.ToString(query).c_str());
  }
  if (plans->empty()) {
    std::printf("  -> query rejected\n\n");
    return;
  }

  WorkloadStats stats;
  stats.arrival_rate = {200.0, 1000.0, 50.0};  // S2 is the firehose
  stats.punctuation_rate = {20.0, 100.0, 5.0};
  stats.selectivity.assign(query.predicates().size(), 0.02);
  PlanChooser chooser(query, schemes, stats);
  for (auto [objective, name] :
       {std::pair{CostObjective::kMemory, "memory"},
        std::pair{CostObjective::kThroughput, "throughput"}}) {
    auto ranked = chooser.Rank(objective);
    PUNCTSAFE_CHECK_OK(ranked.status());
    std::printf("best for %-10s: %s  [%s]\n", name,
                ranked->front().shape.ToString(query).c_str(),
                ranked->front().cost.ToString().c_str());
  }

  auto minimal = MinimalSafeSchemeSubset(query, schemes);
  PUNCTSAFE_CHECK_OK(minimal.status());
  std::printf("minimal safe scheme subset (Plan Parameter I): %s\n",
              minimal->ToString().c_str());
  auto irrelevant = IrrelevantSchemes(query, schemes);
  std::printf("irrelevant schemes the engine can skip: %zu\n\n",
              irrelevant.size());
}

}  // namespace

int main() {
  std::printf("== punctsafe example: plan advisor ==\n\n");
  StreamCatalog catalog = MakeCatalog();
  auto query = ContinuousJoinQuery::Create(
      catalog, {"S1", "S2", "S3"},
      {Eq({"S1", "B"}, {"S2", "B"}), Eq({"S2", "C"}, {"S3", "C"}),
       Eq({"S3", "A"}, {"S1", "A"})});
  PUNCTSAFE_CHECK_OK(query.status());
  std::printf("query: %s\n\n", query->ToString().c_str());

  Advise(*query, MakeSchemes(catalog, /*figure8=*/false),
         "Figure 5 schemes (simple)");
  Advise(*query, MakeSchemes(catalog, /*figure8=*/true),
         "Figure 8 schemes (incl. the S3 pair scheme)");
  Advise(*query, SchemeSet(), "no schemes at all");
  return 0;
}
