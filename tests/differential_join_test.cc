// Differential correctness: purging must never change the answer
// (Definition 1 — purged tuples produce no further results). Every
// punctuation-aware configuration is compared, result-for-result,
// against the never-purging nested-loop reference join on identical
// traces.

#include <gtest/gtest.h>

#include <algorithm>

#include "util/logging.h"

#include "core/plan_safety.h"
#include "exec/input_manager.h"
#include "exec/mjoin.h"
#include "exec/plan_executor.h"
#include "exec/reference_join.h"
#include "exec/symmetric_hash_join.h"
#include "plan/enumerator.h"
#include "workload/auction.h"
#include "workload/random_query.h"

namespace punctsafe {
namespace {

std::vector<Tuple> RunReference(const RandomQueryInstance& inst,
                                const Trace& trace) {
  auto op = ReferenceJoinOperator::Create(inst.query);
  PUNCTSAFE_CHECK(op.ok());
  std::vector<Tuple> results;
  (*op)->SetEmitter([&](const StreamElement& e) {
    if (e.is_tuple()) results.push_back(e.tuple);
  });
  for (const TraceEvent& e : trace) {
    auto idx = inst.query.StreamIndex(e.stream);
    PUNCTSAFE_CHECK(idx.has_value());
    if (e.element.is_tuple()) {
      (*op)->PushTuple(*idx, e.element.tuple, e.element.timestamp);
    } else {
      (*op)->PushPunctuation(*idx, e.element.punctuation,
                             e.element.timestamp);
    }
  }
  std::sort(results.begin(), results.end());
  return results;
}

std::vector<Tuple> RunPlan(const RandomQueryInstance& inst,
                           const PlanShape& shape, const Trace& trace,
                           PurgePolicy policy) {
  ExecutorConfig config;
  config.keep_results = true;
  config.mjoin.purge_policy = policy;
  config.mjoin.lazy_batch = 5;
  auto exec = PlanExecutor::Create(inst.query, inst.schemes, shape, config);
  PUNCTSAFE_CHECK(exec.ok()) << exec.status().ToString();
  PUNCTSAFE_CHECK_OK(FeedTrace(exec.ValueOrDie().get(), trace));
  std::vector<Tuple> results = (*exec)->kept_results();
  std::sort(results.begin(), results.end());
  return results;
}

TEST(DifferentialJoinTest, AllConfigurationsAgreeWithReference) {
  int safe_plans_tested = 0;
  for (uint64_t seed = 0; seed < 30; ++seed) {
    RandomQueryConfig qconfig;
    qconfig.num_streams = 2 + seed % 3;
    qconfig.attrs_per_stream = 2;
    qconfig.extra_predicates = seed % 2;
    qconfig.multi_attr_prob = 0.3;
    qconfig.schemeless_prob = 0.2;
    qconfig.seed = seed * 37 + 7;
    auto inst = MakeRandomQuery(qconfig);
    ASSERT_TRUE(inst.ok());

    CoveringTraceConfig tconfig;
    tconfig.num_generations = 5;
    tconfig.values_per_generation = 3;
    tconfig.tuples_per_generation = 14;
    tconfig.seed = seed;
    Trace trace = MakeCoveringTrace(inst->query, inst->schemes, tconfig);

    std::vector<Tuple> expected = RunReference(*inst, trace);
    PlanShape mjoin = PlanShape::SingleMJoin(inst->query.num_streams());

    EXPECT_EQ(RunPlan(*inst, mjoin, trace, PurgePolicy::kEager), expected)
        << "eager MJoin diverged, seed=" << seed << " "
        << inst->query.ToString();
    EXPECT_EQ(RunPlan(*inst, mjoin, trace, PurgePolicy::kLazy), expected)
        << "lazy MJoin diverged, seed=" << seed;
    EXPECT_EQ(RunPlan(*inst, mjoin, trace, PurgePolicy::kNone), expected)
        << "no-purge MJoin diverged, seed=" << seed;

    // Every safe tree plan must agree too (punctuation propagation
    // must not lose results).
    SafePlanEnumerator en(inst->query, inst->schemes);
    auto plans = en.EnumerateSafePlans(/*limit=*/6);
    ASSERT_TRUE(plans.ok());
    for (const PlanShape& shape : *plans) {
      if (shape == mjoin) continue;
      ++safe_plans_tested;
      EXPECT_EQ(RunPlan(*inst, shape, trace, PurgePolicy::kEager), expected)
          << "tree plan diverged, seed=" << seed << " shape="
          << shape.ToString(inst->query);
    }
  }
  EXPECT_GT(safe_plans_tested, 3);
}

TEST(DifferentialJoinTest, SymmetricHashJoinMatchesMJoinOnAuction) {
  QueryRegister reg;
  ASSERT_TRUE(AuctionWorkload::Setup(&reg).ok());
  auto q = ContinuousJoinQuery::Create(reg.catalog(),
                                       AuctionWorkload::QueryStreams(),
                                       AuctionWorkload::QueryPredicates());
  ASSERT_TRUE(q.ok());

  AuctionConfig aconfig;
  aconfig.num_items = 120;
  aconfig.bids_per_item = 4;
  aconfig.zipf_theta = 0.8;
  Trace trace = AuctionWorkload::Generate(aconfig);

  // Binary symmetric hash join.
  auto shj = SymmetricHashJoinOperator::Create(*q, reg.schemes());
  ASSERT_TRUE(shj.ok());
  std::vector<Tuple> shj_results;
  (*shj)->SetEmitter([&](const StreamElement& e) {
    if (e.is_tuple()) shj_results.push_back(e.tuple);
  });
  for (const TraceEvent& e : trace) {
    size_t idx = *q->StreamIndex(e.stream);
    if (e.element.is_tuple()) {
      (*shj)->PushTuple(idx, e.element.tuple, e.element.timestamp);
    } else {
      (*shj)->PushPunctuation(idx, e.element.punctuation,
                              e.element.timestamp);
    }
  }

  // General MJoin on the same trace.
  std::vector<LocalInput> inputs;
  for (size_t s = 0; s < 2; ++s) {
    inputs.push_back({{s}, RawAvailableSchemes(*q, reg.schemes(), s)});
  }
  auto mjoin = MJoinOperator::Create(*q, inputs, {});
  ASSERT_TRUE(mjoin.ok());
  std::vector<Tuple> mjoin_results;
  (*mjoin)->SetEmitter([&](const StreamElement& e) {
    if (e.is_tuple()) mjoin_results.push_back(e.tuple);
  });
  for (const TraceEvent& e : trace) {
    size_t idx = *q->StreamIndex(e.stream);
    if (e.element.is_tuple()) {
      (*mjoin)->PushTuple(idx, e.element.tuple, e.element.timestamp);
    } else {
      (*mjoin)->PushPunctuation(idx, e.element.punctuation,
                                e.element.timestamp);
    }
  }

  std::sort(shj_results.begin(), shj_results.end());
  std::sort(mjoin_results.begin(), mjoin_results.end());
  EXPECT_EQ(shj_results.size(), 120u * 4u);
  EXPECT_EQ(shj_results, mjoin_results);
  // Both implementations purge down to nothing.
  EXPECT_EQ((*shj)->TotalLiveTuples(), 0u);
  EXPECT_EQ((*mjoin)->TotalLiveTuples(), 0u);
}

// Failure injection (Section 5.1): missed punctuations leave residual
// state but never corrupt results; a background cleanup (sweep) later
// removes what newly arrived punctuations allow.
TEST(DifferentialJoinTest, MissedPunctuationsDegradeGracefully) {
  QueryRegister reg;
  ASSERT_TRUE(AuctionWorkload::Setup(&reg).ok());
  auto q = ContinuousJoinQuery::Create(reg.catalog(),
                                       AuctionWorkload::QueryStreams(),
                                       AuctionWorkload::QueryPredicates());
  ASSERT_TRUE(q.ok());

  AuctionConfig lossy;
  lossy.num_items = 150;
  lossy.bids_per_item = 3;
  lossy.punctuation_drop_rate = 0.3;
  lossy.seed = 5;
  Trace trace = AuctionWorkload::Generate(lossy);

  RandomQueryInstance inst;
  inst.query = *q;
  inst.schemes = reg.schemes();
  std::vector<Tuple> expected = RunReference(inst, trace);
  std::vector<Tuple> actual =
      RunPlan(inst, PlanShape::SingleMJoin(2), trace, PurgePolicy::kEager);
  EXPECT_EQ(actual, expected);
}

}  // namespace
}  // namespace punctsafe
