// Exchange/repartition planning (exec/exchange.h): multi-class MJoin
// chains — which ComputePartitionSpec cannot shard as a single
// operator — are rewritten into left-deep binary chains whose hops
// each carry a covering equivalence class, and the inter-operator
// emit re-hash then acts as the repartitioning exchange. The
// differential scenarios pin the acceptance criterion: a previously
// unshardable multi-class chain runs sharded (every group > 1 shard)
// and produces results identical to the serial executor on the
// ORIGINAL shape.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "exec/exchange.h"
#include "exec/input_manager.h"
#include "exec/parallel_executor.h"
#include "exec/partition_router.h"
#include "exec/plan_executor.h"
#include "test_util.h"
#include "util/logging.h"
#include "workload/random_query.h"

namespace punctsafe {
namespace {

using testing_util::SchemeOn;

// The canonical multi-class chain: T0.k = T1.k AND T1.v = T2.v. Two
// equivalence classes ({T0.k, T1.k} and {T1.v, T2.v}), so the 3-way
// MJoin is NOT partitionable, while each binary hop is.
struct MultiClassFixture {
  StreamCatalog catalog;
  ContinuousJoinQuery query = ContinuousJoinQuery();
  SchemeSet schemes;
};

MultiClassFixture MakeMultiClassChain() {
  MultiClassFixture fx;
  for (const char* name : {"T0", "T1", "T2"}) {
    PUNCTSAFE_CHECK_OK(fx.catalog.Register(name, Schema::OfInts({"k", "v"})));
    PUNCTSAFE_CHECK_OK(
        fx.schemes.Add(SchemeOn(fx.catalog, name, {"k"})));
    PUNCTSAFE_CHECK_OK(
        fx.schemes.Add(SchemeOn(fx.catalog, name, {"v"})));
  }
  auto q = ContinuousJoinQuery::Create(
      fx.catalog, {"T0", "T1", "T2"},
      {Eq({"T0", "k"}, {"T1", "k"}), Eq({"T1", "v"}, {"T2", "v"})});
  PUNCTSAFE_CHECK(q.ok()) << q.status().ToString();
  fx.query = std::move(q).ValueOrDie();
  return fx;
}

TEST(ExchangeTest, MultiClassSingleMJoinDecomposesToBinaryChain) {
  MultiClassFixture fx = MakeMultiClassChain();
  PlanShape original = PlanShape::SingleMJoin(3);
  PlanShape decomposed = DecomposeForExchange(fx.query, original);

  EXPECT_FALSE(decomposed == original);
  EXPECT_TRUE(decomposed.IsBinaryTree());
  EXPECT_EQ(decomposed.NumOperators(), 2u);
  EXPECT_EQ(decomposed.Leaves(), original.Leaves());

  // T1 touches both predicates, so the greedy order seeds on it and
  // every hop carries a predicate (and thus a covering class): both
  // operators of the decomposed plan are partitionable.
  for (const PlanShape* node = &decomposed; !node->IsLeaf();
       node = &node->children()[0]) {
    std::vector<LocalInput> inputs;
    for (const PlanShape& child : node->children()) {
      LocalInput input;
      input.streams = child.Leaves();
      inputs.push_back(std::move(input));
    }
    EXPECT_TRUE(ComputePartitionSpec(fx.query, inputs).partitionable);
    if (node->children()[0].IsLeaf()) break;
  }
}

TEST(ExchangeTest, PartitionableAndBinaryShapesAreUntouched) {
  // Single-class chain: the 3-way MJoin partitions as-is and must not
  // be rewritten.
  StreamCatalog catalog;
  SchemeSet schemes;
  for (const char* name : {"T0", "T1", "T2"}) {
    PUNCTSAFE_CHECK_OK(catalog.Register(name, Schema::OfInts({"k", "v"})));
    PUNCTSAFE_CHECK_OK(schemes.Add(SchemeOn(catalog, name, {"k"})));
  }
  auto q = ContinuousJoinQuery::Create(
      catalog, {"T0", "T1", "T2"},
      {Eq({"T0", "k"}, {"T1", "k"}), Eq({"T1", "k"}, {"T2", "k"})});
  ASSERT_TRUE(q.ok());
  PlanShape mjoin = PlanShape::SingleMJoin(3);
  EXPECT_TRUE(DecomposeForExchange(*q, mjoin) == mjoin);

  // Binary shapes are never rewritten, multi-class or not.
  MultiClassFixture fx = MakeMultiClassChain();
  PlanShape binary = PlanShape::LeftDeepBinary({0, 1, 2});
  EXPECT_TRUE(DecomposeForExchange(fx.query, binary) == binary);
}

TEST(ExchangeTest, UnshardableChainRunsShardedWithIdenticalResults) {
  // The acceptance scenario: without the exchange the multi-class
  // single MJoin falls back to one shard; with ExecutorConfig::exchange
  // the decomposed plan shards every operator, and the answers match
  // the serial executor running the ORIGINAL shape.
  MultiClassFixture fx = MakeMultiClassChain();
  PlanShape shape = PlanShape::SingleMJoin(3);

  CoveringTraceConfig tconfig;
  tconfig.num_generations = 12;
  tconfig.values_per_generation = 5;
  tconfig.tuples_per_generation = 36;
  tconfig.seed = 23;
  Trace trace = MakeCoveringTrace(fx.query, fx.schemes, tconfig);

  ExecutorConfig serial_config;
  serial_config.keep_results = true;
  auto serial =
      PlanExecutor::Create(fx.query, fx.schemes, shape, serial_config);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_TRUE(FeedTrace(serial.ValueOrDie().get(), trace).ok());
  std::vector<Tuple> want = (*serial)->kept_results();
  std::sort(want.begin(), want.end());
  ASSERT_GT(want.size(), 0u);

  // Without exchange: the single group cannot shard.
  {
    ExecutorConfig config;
    config.shards = 4;
    auto exec =
        ParallelExecutor::Create(fx.query, fx.schemes, shape, config);
    ASSERT_TRUE(exec.ok()) << exec.status().ToString();
    auto snaps = (*exec)->GroupSnapshots();
    ASSERT_EQ(snaps.size(), 1u);
    EXPECT_EQ(snaps[0].num_shards, 1u) << snaps[0].partition_detail;
    (*exec)->Stop();
  }

  // With exchange: two binary groups, each sharded 4 ways, identical
  // answers.
  ExecutorConfig config;
  config.keep_results = true;
  config.shards = 4;
  config.exchange = true;
  auto exec = ParallelExecutor::Create(fx.query, fx.schemes, shape, config);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_TRUE((*exec)->shape().IsBinaryTree());
  auto snaps = (*exec)->GroupSnapshots();
  ASSERT_EQ(snaps.size(), 2u);
  for (const auto& snap : snaps) {
    EXPECT_TRUE(snap.partitioned) << snap.partition_detail;
    EXPECT_EQ(snap.num_shards, 4u);
  }
  ASSERT_TRUE(FeedTraceParallel(exec.ValueOrDie().get(), trace).ok());
  std::vector<Tuple> got = (*exec)->kept_results();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, want);
  (*exec)->Stop();
}

TEST(ExchangeTest, ExchangeComposesWithRebalancing) {
  // The exchanged plan's groups are ordinary partitioned groups: the
  // rebalancer can migrate them like any other.
  MultiClassFixture fx = MakeMultiClassChain();
  PlanShape shape = PlanShape::SingleMJoin(3);

  CoveringTraceConfig tconfig;
  tconfig.num_generations = 12;
  tconfig.values_per_generation = 5;
  tconfig.tuples_per_generation = 36;
  tconfig.zipf_s = 1.4;
  tconfig.seed = 29;
  Trace trace = MakeCoveringTrace(fx.query, fx.schemes, tconfig);

  ExecutorConfig serial_config;
  serial_config.keep_results = true;
  auto serial =
      PlanExecutor::Create(fx.query, fx.schemes, shape, serial_config);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(FeedTrace(serial.ValueOrDie().get(), trace).ok());
  std::vector<Tuple> want = (*serial)->kept_results();
  std::sort(want.begin(), want.end());

  ExecutorConfig config;
  config.keep_results = true;
  config.shards = 4;
  config.exchange = true;
  config.rebalance.enabled = true;
  config.rebalance.interval_punctuations = 8;
  config.rebalance.skew_threshold = 1.2;
  config.rebalance.min_routed = 64;
  auto exec = ParallelExecutor::Create(fx.query, fx.schemes, shape, config);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  ASSERT_TRUE(FeedTraceParallel(exec.ValueOrDie().get(), trace).ok());
  EXPECT_GT((*exec)->rebalance_migrations(), 0u);
  std::vector<Tuple> got = (*exec)->kept_results();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, want);
  (*exec)->Stop();
}

// Random multi-stream queries: decomposition must always preserve the
// leaf set, produce at-most-binary nodes where it rewrites, and keep
// the result multiset of the parallel executor equal to the serial
// original-shape oracle.
TEST(ExchangeTest, RandomQueriesDifferentialUnderExchange) {
  const uint64_t base_seed = testing_util::TestBaseSeed(0);
  for (uint64_t trial = 0; trial < 20; ++trial) {
    const uint64_t seed = base_seed + trial;
    RandomQueryConfig qconfig;
    qconfig.num_streams = 3 + seed % 3;
    qconfig.attrs_per_stream = 2;
    qconfig.extra_predicates = seed % 3;
    qconfig.schemeless_prob = 0.15;
    qconfig.seed = seed * 67 + 9;
    auto inst = MakeRandomQuery(qconfig);
    ASSERT_TRUE(inst.ok());

    PlanShape shape = PlanShape::SingleMJoin(inst->query.num_streams());
    PlanShape decomposed = DecomposeForExchange(inst->query, shape);
    EXPECT_EQ(decomposed.Leaves(), shape.Leaves());

    CoveringTraceConfig tconfig;
    tconfig.num_generations = 4;
    tconfig.values_per_generation = 3;
    tconfig.tuples_per_generation = 12;
    tconfig.seed = seed;
    Trace trace = MakeCoveringTrace(inst->query, inst->schemes, tconfig);

    SCOPED_TRACE(::testing::Message()
                 << "seed=" << seed << " query=" << inst->query.ToString()
                 << " decomposed="
                 << decomposed.ToString(inst->query));

    ExecutorConfig serial_config;
    serial_config.keep_results = true;
    auto serial = PlanExecutor::Create(inst->query, inst->schemes, shape,
                                       serial_config);
    ASSERT_TRUE(serial.ok());
    ASSERT_TRUE(FeedTrace(serial.ValueOrDie().get(), trace).ok());
    std::vector<Tuple> want = (*serial)->kept_results();
    std::sort(want.begin(), want.end());

    ExecutorConfig config;
    config.keep_results = true;
    config.shards = 2;
    config.exchange = true;
    auto exec = ParallelExecutor::Create(inst->query, inst->schemes, shape,
                                         config);
    ASSERT_TRUE(exec.ok()) << exec.status().ToString();
    ASSERT_TRUE(FeedTraceParallel(exec.ValueOrDie().get(), trace).ok());
    std::vector<Tuple> got = (*exec)->kept_results();
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, want);
    (*exec)->Stop();
  }
}

}  // namespace
}  // namespace punctsafe
