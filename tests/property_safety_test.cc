// End-to-end validation of the paper's central promise: the
// compile-time safety verdict (Theorems 2/4 via the transformed
// punctuation graph) predicts the *runtime* memory behavior. Safe
// queries drain completely under covering punctuations; unsafe
// queries retain state that grows with the input, no matter how many
// punctuations arrive.

#include <gtest/gtest.h>

#include "core/safety_checker.h"
#include "util/logging.h"
#include "exec/input_manager.h"
#include "exec/plan_executor.h"
#include "test_util.h"
#include "workload/random_query.h"

namespace punctsafe {
namespace {

size_t FinalLiveTuples(const RandomQueryInstance& inst,
                       size_t num_generations, PurgePolicy policy) {
  ExecutorConfig config;
  config.mjoin.purge_policy = policy;
  config.mjoin.lazy_batch = 8;
  auto exec = PlanExecutor::Create(
      inst.query, inst.schemes,
      PlanShape::SingleMJoin(inst.query.num_streams()), config);
  PUNCTSAFE_CHECK(exec.ok()) << exec.status().ToString();

  CoveringTraceConfig tconfig;
  tconfig.num_generations = num_generations;
  tconfig.values_per_generation = 3;
  tconfig.tuples_per_generation = 12;
  tconfig.seed = 1234;
  Trace trace = MakeCoveringTrace(inst.query, inst.schemes, tconfig);
  PUNCTSAFE_CHECK_OK(FeedTrace(exec.ValueOrDie().get(), trace));
  // A final sweep flushes lazy batches so policies are comparable.
  (*exec)->SweepAll(1'000'000'000);
  return (*exec)->TotalLiveTuples();
}

TEST(PropertySafetyTest, VerdictPredictsRuntimeBehavior) {
  int safe_seen = 0, unsafe_seen = 0;
  // Replay a failing seed with PUNCTSAFE_TEST_SEED=<seed> (the run
  // then starts there; trial 0 reproduces the failure).
  const uint64_t base_seed = testing_util::TestBaseSeed(0);
  for (uint64_t trial = 0; trial < 60; ++trial) {
    const uint64_t seed = base_seed + trial;
    RandomQueryConfig config;
    config.num_streams = 2 + seed % 4;
    config.attrs_per_stream = 2 + seed % 2;
    config.extra_predicates = seed % 2;
    config.multi_attr_prob = 0.35;
    config.schemeless_prob = 0.25;
    config.seed = seed * 13 + 11;
    auto inst = MakeRandomQuery(config);
    ASSERT_TRUE(inst.ok());

    SafetyChecker checker(inst->schemes);
    auto report = checker.CheckQuery(inst->query);
    ASSERT_TRUE(report.ok());

    size_t live_short =
        FinalLiveTuples(*inst, /*num_generations=*/6, PurgePolicy::kEager);
    size_t live_long =
        FinalLiveTuples(*inst, /*num_generations=*/18, PurgePolicy::kEager);

    if (report->safe) {
      ++safe_seen;
      EXPECT_EQ(live_short, 0u)
          << "seed=" << seed << " safe query retained state: "
          << inst->query.ToString() << " " << inst->schemes.ToString();
      EXPECT_EQ(live_long, 0u) << "seed=" << seed;
    } else {
      ++unsafe_seen;
      EXPECT_GT(live_long, 0u) << "seed=" << seed
                               << " unsafe query drained anyway: "
                               << inst->query.ToString() << " "
                               << inst->schemes.ToString();
      // Unbounded: retained state grows with the input length.
      EXPECT_GT(live_long, live_short) << "seed=" << seed;
    }
  }
  // The sample must exercise both classes.
  EXPECT_GT(safe_seen, 5);
  EXPECT_GT(unsafe_seen, 5);
}

// Per-stream refinement of Theorem 3: exactly the streams the checker
// marks purgeable drain at runtime.
TEST(PropertySafetyTest, PerStreamPurgeabilityMatchesRuntime) {
  const uint64_t base_seed = testing_util::TestBaseSeed(0);
  for (uint64_t trial = 0; trial < 40; ++trial) {
    const uint64_t seed = base_seed + trial;
    RandomQueryConfig config;
    config.num_streams = 3;
    config.attrs_per_stream = 2;
    config.multi_attr_prob = 0.3;
    config.schemeless_prob = 0.35;
    config.seed = seed * 71 + 29;
    auto inst = MakeRandomQuery(config);
    ASSERT_TRUE(inst.ok());

    SafetyChecker checker(inst->schemes);
    auto report = checker.CheckQuery(inst->query);
    ASSERT_TRUE(report.ok());

    ExecutorConfig exec_config;
    auto exec = PlanExecutor::Create(inst->query, inst->schemes,
                                     PlanShape::SingleMJoin(3), exec_config);
    ASSERT_TRUE(exec.ok());
    CoveringTraceConfig tconfig;
    tconfig.num_generations = 10;
    tconfig.values_per_generation = 3;
    tconfig.tuples_per_generation = 15;
    tconfig.seed = seed;
    Trace trace = MakeCoveringTrace(inst->query, inst->schemes, tconfig);
    ASSERT_TRUE(FeedTrace(exec.ValueOrDie().get(), trace).ok());

    const auto& op = (*exec)->operators().front();
    for (size_t s = 0; s < 3; ++s) {
      if (report->per_stream[s].purgeable) {
        EXPECT_EQ(op->state_metrics(s).live, 0u)
            << "seed=" << seed << " stream=" << s;
      }
      // Static purgeability agrees with the operator's derived plan.
      EXPECT_EQ(op->InputPurgeable(s), report->per_stream[s].purgeable)
          << "seed=" << seed << " stream=" << s;
    }
  }
}

// Purge policies differ in *when*, never in *what*: eager and lazy
// agree after the final flush.
TEST(PropertySafetyTest, EagerAndLazyConvergeAfterFlush) {
  const uint64_t base_seed = testing_util::TestBaseSeed(0);
  for (uint64_t trial = 0; trial < 20; ++trial) {
    const uint64_t seed = base_seed + trial;
    RandomQueryConfig config;
    config.num_streams = 2 + seed % 3;
    config.multi_attr_prob = 0.3;
    config.seed = seed * 101 + 3;
    auto inst = MakeRandomQuery(config);
    ASSERT_TRUE(inst.ok());
    size_t eager = FinalLiveTuples(*inst, 8, PurgePolicy::kEager);
    size_t lazy = FinalLiveTuples(*inst, 8, PurgePolicy::kLazy);
    EXPECT_EQ(eager, lazy) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace punctsafe
