#include "exec/plan_executor.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace punctsafe {
namespace {

using testing_util::Fig5Schemes;
using testing_util::Fig8Schemes;
using testing_util::PaperCatalog;
using testing_util::TriangleQuery;

TEST(PlanExecutorTest, SingleMJoinEndToEnd) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  ExecutorConfig config;
  config.keep_results = true;
  auto exec = PlanExecutor::Create(q, Fig5Schemes(catalog),
                                   PlanShape::SingleMJoin(3), config);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_TRUE((*exec)->safety().safe);

  (*exec)->PushTuple(0, Tuple({Value(1), Value(2)}), 1);
  (*exec)->PushTuple(1, Tuple({Value(2), Value(3)}), 2);
  (*exec)->PushTuple(2, Tuple({Value(3), Value(1)}), 3);
  EXPECT_EQ((*exec)->num_results(), 1u);
  ASSERT_EQ((*exec)->kept_results().size(), 1u);
  EXPECT_EQ((*exec)->kept_results()[0],
            Tuple({Value(1), Value(2), Value(2), Value(3), Value(3),
                   Value(1)}));
  EXPECT_EQ((*exec)->TotalLiveTuples(), 3u);
  EXPECT_EQ((*exec)->tuple_high_water(), 3u);
}

TEST(PlanExecutorTest, PushRoutesByStreamName) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  auto exec = PlanExecutor::Create(q, Fig5Schemes(catalog),
                                   PlanShape::SingleMJoin(3));
  ASSERT_TRUE(exec.ok());
  TraceEvent good{"S2", StreamElement::OfTuple(Tuple({Value(1), Value(2)}),
                                               1)};
  EXPECT_TRUE((*exec)->Push(good).ok());
  EXPECT_EQ((*exec)->TotalLiveTuples(), 1u);

  TraceEvent bad{"nope", StreamElement::OfTuple(Tuple({Value(1)}), 2)};
  EXPECT_TRUE((*exec)->Push(bad).IsNotFound());
}

// Figure 7 at runtime: the unsafe left-deep plan executes but its
// lower join state never shrinks, even under the full punctuation
// load that keeps the MJoin plan bounded.
TEST(PlanExecutorTest, UnsafeShapeRunsButLeaks) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  SchemeSet schemes = Fig5Schemes(catalog);
  auto exec = PlanExecutor::Create(q, schemes,
                                   PlanShape::LeftDeepBinary({0, 1, 2}));
  ASSERT_TRUE(exec.ok());
  EXPECT_FALSE((*exec)->safety().safe);

  for (int i = 0; i < 20; ++i) {
    (*exec)->PushTuple(0, Tuple({Value(i), Value(i)}), i);
    // Every punctuation the schemes allow.
    (*exec)->PushPunctuation(
        0, Punctuation::OfConstants(2, {{1, Value(i)}}), i);
    (*exec)->PushPunctuation(
        1, Punctuation::OfConstants(2, {{1, Value(i)}}), i);
    (*exec)->PushPunctuation(
        2, Punctuation::OfConstants(2, {{1, Value(i)}}), i);
  }
  // The S1 tuples are stuck in the lower operator forever.
  EXPECT_GE((*exec)->TotalLiveTuples(), 20u);
}

// The Figure 8 safe tree plan: punctuation propagation lets the upper
// operator purge everything — end state is completely empty.
TEST(PlanExecutorTest, SafeTreePlanPropagatesAndDrains) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  SchemeSet schemes = Fig8Schemes(catalog);
  ExecutorConfig config;
  config.keep_results = true;
  auto exec_or = PlanExecutor::Create(
      q, schemes, PlanShape::LeftDeepBinary({0, 1, 2}), config);
  ASSERT_TRUE(exec_or.ok());
  auto& exec = *exec_or;
  ASSERT_TRUE(exec->safety().safe);

  exec->PushTuple(0, Tuple({Value(1), Value(2)}), 1);  // S1(A=1,B=2)
  exec->PushTuple(1, Tuple({Value(2), Value(3)}), 2);  // S2(B=2,C=3)
  exec->PushTuple(2, Tuple({Value(3), Value(1)}), 3);  // S3(C=3,A=1)
  EXPECT_EQ(exec->num_results(), 1u);
  EXPECT_EQ(exec->kept_results()[0],
            Tuple({Value(1), Value(2), Value(2), Value(3), Value(3),
                   Value(1)}));

  // Close everything via raw-stream punctuations.
  exec->PushPunctuation(0, Punctuation::OfConstants(2, {{1, Value(2)}}),
                        4);  // S1: no more B=2
  exec->PushPunctuation(1, Punctuation::OfConstants(2, {{0, Value(2)}}),
                        5);  // S2: no more B=2
  exec->PushPunctuation(1, Punctuation::OfConstants(2, {{1, Value(3)}}),
                        6);  // S2: no more C=3
  exec->PushPunctuation(
      2, Punctuation::OfConstants(2, {{0, Value(3)}, {1, Value(1)}}),
      7);  // S3: no more (C=3, A=1)
  EXPECT_EQ(exec->TotalLiveTuples(), 0u)
      << "propagated punctuations should drain both operators";
  // The lower operator must have propagated punctuations upward.
  bool propagated = false;
  for (const auto& op : exec->operators()) {
    propagated |= op->metrics().punctuations_propagated > 0;
  }
  EXPECT_TRUE(propagated);
  // No results were lost relative to the single-MJoin plan.
  EXPECT_EQ(exec->num_results(), 1u);
}

TEST(PlanExecutorTest, SweepAllFlushesLazyOperators) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  ExecutorConfig config;
  config.mjoin.purge_policy = PurgePolicy::kLazy;
  config.mjoin.lazy_batch = 1000;
  auto exec = PlanExecutor::Create(q, Fig5Schemes(catalog),
                                   PlanShape::SingleMJoin(3), config);
  ASSERT_TRUE(exec.ok());
  (*exec)->PushTuple(0, Tuple({Value(1), Value(2)}), 1);
  (*exec)->PushPunctuation(2, Punctuation::OfConstants(2, {{1, Value(1)}}),
                           2);
  (*exec)->PushPunctuation(1, Punctuation::OfConstants(2, {{1, Value(9)}}),
                           3);
  EXPECT_EQ((*exec)->TotalLiveTuples(), 1u);
  (*exec)->SweepAll(4);
  EXPECT_EQ((*exec)->TotalLiveTuples(), 0u);
}

TEST(PlanExecutorTest, HighWaterIsMonotone) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  auto exec = PlanExecutor::Create(q, Fig5Schemes(catalog),
                                   PlanShape::SingleMJoin(3));
  ASSERT_TRUE(exec.ok());
  for (int i = 0; i < 5; ++i) {
    (*exec)->PushTuple(0, Tuple({Value(i), Value(i)}), i);
  }
  size_t hw = (*exec)->tuple_high_water();
  EXPECT_EQ(hw, 5u);
  // Purge everything: high water must not decrease.
  for (int i = 0; i < 5; ++i) {
    (*exec)->PushPunctuation(
        2, Punctuation::OfConstants(2, {{1, Value(i)}}), 10 + i);
  }
  EXPECT_EQ((*exec)->TotalLiveTuples(), 0u);
  EXPECT_EQ((*exec)->tuple_high_water(), hw);
  EXPECT_GT((*exec)->punctuation_high_water(), 0u);
}

}  // namespace
}  // namespace punctsafe
