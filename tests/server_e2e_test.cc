// End-to-end exercise of the ingestion server over real loopback
// sockets: one client registers a safe 3-way CJQ and subscribes, a
// second client creates the streams and pushes tuples/punctuations,
// and the RESULT lines the subscriber receives must multiset-match a
// serial PlanExecutor fed the same elements directly.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "exec/query_register.h"
#include "server/protocol.h"
#include "server/server.h"

namespace punctsafe {
namespace server {
namespace {

// A blocking newline-framed loopback client.
class LineClient {
 public:
  ~LineClient() {
    if (fd_ >= 0) close(fd_);
  }

  bool Connect(uint16_t port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    timeval tv{10, 0};  // reads fail after 10s: tests end, not hang
    setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    return connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
           0;
  }

  bool Send(const std::string& line) {
    std::string framed = line + "\n";
    size_t off = 0;
    while (off < framed.size()) {
      ssize_t n = write(fd_, framed.data() + off, framed.size() - off);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  bool ReadLine(std::string* line) {
    for (;;) {
      size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        *line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        if (!line->empty() && line->back() == '\r') line->pop_back();
        return true;
      }
      char chunk[4096];
      ssize_t n = read(fd_, chunk, sizeof(chunk));
      if (n <= 0) return false;  // timeout or EOF
      buf_.append(chunk, static_cast<size_t>(n));
    }
  }

  // Sends one command and expects its one-line response to start with
  // `prefix`.
  void Expect(const std::string& command, const std::string& prefix) {
    ASSERT_TRUE(Send(command)) << command;
    std::string response;
    ASSERT_TRUE(ReadLine(&response)) << "no response to: " << command;
    EXPECT_EQ(response.rfind(prefix, 0), 0u)
        << command << " -> " << response;
  }

 private:
  int fd_ = -1;
  std::string buf_;
};

constexpr const char* kTriangleSpec =
    "scheme S1 B; scheme S2 B; scheme S2 C; scheme S3 C A; "
    "query S1 S2 S3; "
    "join S1.B = S2.B; join S2.C = S3.C; join S3.A = S1.A";

struct Element {
  std::string stream;
  bool punctuation;
  std::vector<int> values;  // tuple values, or punct constants (-1 = *)
  int64_t ts;
};

// The paper's Figure 8 triangle: every i makes one result triple, the
// noise rows join nothing, and punctuations close finished B/C
// values behind the data.
std::vector<Element> Workload() {
  std::vector<Element> elements;
  int64_t ts = 1;
  for (int i = 0; i < 6; ++i) {
    elements.push_back({"S1", false, {i, 10 + i}, ts++});
    elements.push_back({"S2", false, {10 + i, 100 + i}, ts++});
    elements.push_back({"S3", false, {100 + i, i}, ts++});
    if (i >= 2) {
      elements.push_back({"S1", true, {-1, 10 + i - 2}, ts++});
      elements.push_back({"S2", true, {10 + i - 2, -1}, ts++});
    }
  }
  elements.push_back({"S1", false, {50, 99}, ts++});  // joins nothing
  elements.push_back({"S2", false, {77, 88}, ts++});
  return elements;
}

// Serial PlanExecutor reference: the same admission pipeline and the
// same elements, no sockets.
std::vector<std::string> ReferenceResultLines() {
  QueryRegister reg;
  EXPECT_TRUE(reg.RegisterStream("S1", Schema::OfInts({"A", "B"})).ok());
  EXPECT_TRUE(reg.RegisterStream("S2", Schema::OfInts({"B", "C"})).ok());
  EXPECT_TRUE(reg.RegisterStream("S3", Schema::OfInts({"C", "A"})).ok());
  EXPECT_TRUE(reg.RegisterScheme("S1", {"B"}).ok());
  EXPECT_TRUE(reg.RegisterScheme("S2", {"B"}).ok());
  EXPECT_TRUE(reg.RegisterScheme("S2", {"C"}).ok());
  EXPECT_TRUE(reg.RegisterScheme("S3", {"C", "A"}).ok());

  ExecutorConfig cfg;
  cfg.keep_results = true;
  auto rq = reg.Register({"S1", "S2", "S3"},
                         {Eq({"S1", "B"}, {"S2", "B"}),
                          Eq({"S2", "C"}, {"S3", "C"}),
                          Eq({"S3", "A"}, {"S1", "A"})},
                         cfg);
  EXPECT_TRUE(rq.ok()) << rq.status().ToString();
  if (!rq.ok()) return {};

  for (const Element& e : Workload()) {
    size_t idx = *rq->query.StreamIndex(e.stream);
    if (e.punctuation) {
      std::vector<std::pair<size_t, Value>> constants;
      for (size_t i = 0; i < e.values.size(); ++i) {
        if (e.values[i] >= 0) constants.emplace_back(i, Value(e.values[i]));
      }
      rq->executor->PushPunctuation(
          idx, Punctuation::OfConstants(e.values.size(), constants), e.ts);
    } else {
      std::vector<Value> values(e.values.begin(), e.values.end());
      rq->executor->PushTuple(idx, Tuple(std::move(values)), e.ts);
    }
  }
  rq->executor->FlushIngest();

  std::vector<std::string> lines;
  for (const Tuple& t : rq->executor->kept_results()) {
    lines.push_back(FormatResultLine("tri", t));
  }
  return lines;
}

// Protocol rendering of one workload element.
std::string ElementCommand(const Element& e) {
  std::string cmd = e.punctuation ? "PUNCT " : "PUSH ";
  cmd += e.stream;
  cmd += " @" + std::to_string(e.ts);
  for (int v : e.values) {
    cmd += ' ';
    cmd += (e.punctuation && v < 0) ? "*" : std::to_string(v);
  }
  return cmd;
}

TEST(ServerE2ETest, SubscriberMatchesSerialReference) {
  QueryRegistry registry;
  auto server = IngestServer::Listen(&registry);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  ASSERT_GT((*server)->port(), 0);
  ASSERT_TRUE((*server)->Start().ok());

  LineClient producer;
  ASSERT_TRUE(producer.Connect((*server)->port()));
  producer.Expect("CREATE STREAM S1 A:int B:int", "OK stream S1");
  producer.Expect("CREATE STREAM S2 B:int C:int", "OK stream S2");
  producer.Expect("CREATE STREAM S3 C:int A:int", "OK stream S3");

  LineClient subscriber;
  ASSERT_TRUE(subscriber.Connect((*server)->port()));
  subscriber.Expect(std::string("REGISTER QUERY tri AS ") + kTriangleSpec,
                    "OK query tri");
  subscriber.Expect("SUBSCRIBE tri", "OK subscribed tri");

  for (const Element& e : Workload()) {
    producer.Expect(ElementCommand(e), "OK");
  }
  producer.Expect("DRAIN", "OK drained");

  std::vector<std::string> expected = ReferenceResultLines();
  ASSERT_FALSE(expected.empty());

  std::vector<std::string> received;
  for (size_t i = 0; i < expected.size(); ++i) {
    std::string line;
    ASSERT_TRUE(subscriber.ReadLine(&line))
        << "got " << received.size() << " of " << expected.size()
        << " results";
    ASSERT_EQ(line.rfind("RESULT tri ", 0), 0u) << line;
    received.push_back(line);
  }

  std::sort(expected.begin(), expected.end());
  std::sort(received.begin(), received.end());
  EXPECT_EQ(received, expected);

  (*server)->Stop();
}

TEST(ServerE2ETest, UnsafeRegistrationRejectedOverTheWire) {
  QueryRegistry registry;
  auto server = IngestServer::Listen(&registry);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Start().ok());

  LineClient client;
  ASSERT_TRUE(client.Connect((*server)->port()));
  client.Expect("CREATE STREAM S1 A:int B:int", "OK stream S1");
  client.Expect("CREATE STREAM S2 B:int C:int", "OK stream S2");

  // No punctuation schemes at all: the checker must reject, and the
  // witness must survive the protocol round-trip on one line.
  ASSERT_TRUE(client.Send(
      "REGISTER QUERY bad AS query S1 S2; join S1.B = S2.B"));
  std::string response;
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_EQ(response.rfind("ERR FailedPrecondition: ", 0), 0u) << response;
  EXPECT_NE(response.find("UNSAFE"), std::string::npos) << response;

  // The connection survives the rejection and stays usable.
  client.Expect("PING", "OK pong");

  // STATS over the wire: key/value lines, then OK.
  ASSERT_TRUE(client.Send("STATS"));
  bool saw_stat = false;
  for (;;) {
    std::string line;
    ASSERT_TRUE(client.ReadLine(&line));
    if (line == "OK") break;
    EXPECT_EQ(line.rfind("STAT ", 0), 0u) << line;
    saw_stat = true;
  }
  EXPECT_TRUE(saw_stat);

  // QUIT flushes and closes.
  ASSERT_TRUE(client.Send("QUIT"));
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_EQ(response, "OK bye");
  EXPECT_FALSE(client.ReadLine(&response));  // server closed the socket

  (*server)->Stop();
  EXPECT_EQ((*server)->num_connections(), 0u);
}

TEST(ServerE2ETest, TwoSubscribersBothReceiveResults) {
  QueryRegistry registry;
  auto server = IngestServer::Listen(&registry);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Start().ok());

  LineClient producer;
  ASSERT_TRUE(producer.Connect((*server)->port()));
  producer.Expect("CREATE STREAM S1 A:int B:int", "OK stream S1");
  producer.Expect("CREATE STREAM S2 B:int C:int", "OK stream S2");
  producer.Expect(
      "REGISTER QUERY q AS scheme S1 B; scheme S2 B; query S1 S2; "
      "join S1.B = S2.B",
      "OK query q");

  LineClient sub1;
  LineClient sub2;
  ASSERT_TRUE(sub1.Connect((*server)->port()));
  ASSERT_TRUE(sub2.Connect((*server)->port()));
  sub1.Expect("SUBSCRIBE q", "OK subscribed q");
  sub2.Expect("SUBSCRIBE q", "OK subscribed q");

  producer.Expect("PUSH S1 1 7", "OK");
  producer.Expect("PUSH S2 7 3", "OK");
  producer.Expect("DRAIN", "OK drained");

  std::string line1;
  std::string line2;
  ASSERT_TRUE(sub1.ReadLine(&line1));
  ASSERT_TRUE(sub2.ReadLine(&line2));
  EXPECT_EQ(line1, line2);
  EXPECT_EQ(line1, "RESULT q 1 7 7 3");

  (*server)->Stop();
}

}  // namespace
}  // namespace server
}  // namespace punctsafe
