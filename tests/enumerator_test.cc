#include "plan/enumerator.h"

#include <gtest/gtest.h>

#include "core/naive_checker.h"
#include "core/plan_safety.h"
#include "test_util.h"
#include "workload/random_query.h"

namespace punctsafe {
namespace {

using testing_util::Fig5Schemes;
using testing_util::Fig8Schemes;
using testing_util::PaperCatalog;
using testing_util::TriangleQuery;

TEST(EnumeratorTest, Fig5OnlyTheMJoinPlanIsSafe) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  SchemeSet schemes = Fig5Schemes(catalog);
  SafePlanEnumerator en(q, schemes);
  auto plans = en.EnumerateSafePlans();
  ASSERT_TRUE(plans.ok());
  ASSERT_EQ(plans->size(), 1u);
  EXPECT_EQ((*plans)[0], PlanShape::SingleMJoin(3));
  EXPECT_FALSE(en.limit_reached());
}

TEST(EnumeratorTest, Fig8HasMorePlans) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  SafePlanEnumerator en(q, Fig8Schemes(catalog));
  auto plans = en.EnumerateSafePlans();
  ASSERT_TRUE(plans.ok());
  // At least the MJoin and the ((S1 S2) S3) tree.
  EXPECT_GE(plans->size(), 2u);
  bool has_mjoin = false, has_left_deep = false;
  for (const PlanShape& p : *plans) {
    has_mjoin |= (p == PlanShape::SingleMJoin(3));
    has_left_deep |= (p == PlanShape::LeftDeepBinary({0, 1, 2}));
  }
  EXPECT_TRUE(has_mjoin);
  EXPECT_TRUE(has_left_deep);
}

TEST(EnumeratorTest, UnsafeQueryYieldsNoPlans) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  SafePlanEnumerator en(q, SchemeSet());
  auto plans = en.EnumerateSafePlans();
  ASSERT_TRUE(plans.ok());
  EXPECT_TRUE(plans->empty());
}

TEST(EnumeratorTest, LimitStopsEnumeration) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  SafePlanEnumerator en(q, Fig8Schemes(catalog));
  auto plans = en.EnumerateSafePlans(/*limit=*/1);
  ASSERT_TRUE(plans.ok());
  EXPECT_EQ(plans->size(), 1u);
}

TEST(EnumeratorTest, RefusesHugeQueries) {
  StreamCatalog catalog;
  std::vector<std::string> streams;
  std::vector<JoinPredicateSpec> preds;
  for (int i = 0; i < 17; ++i) {
    std::string name = "T" + std::to_string(i);
    ASSERT_TRUE(catalog.Register(name, Schema::OfInts({"k"})).ok());
    if (i > 0) preds.push_back(Eq({streams.back(), "k"}, {name, "k"}));
    streams.push_back(name);
  }
  auto q = ContinuousJoinQuery::Create(catalog, streams, preds);
  ASSERT_TRUE(q.ok());
  SchemeSet schemes;
  SafePlanEnumerator en(*q, schemes);
  EXPECT_TRUE(en.EnumerateSafePlans().status().IsInvalidArgument());
}

// The DP enumerator must agree with brute force: same set of safe
// shapes as filtering EnumerateAllShapes through CheckPlanSafety.
TEST(EnumeratorTest, MatchesBruteForceOnRandomInstances) {
  for (uint64_t seed = 0; seed < 60; ++seed) {
    RandomQueryConfig config;
    config.num_streams = 2 + seed % 3;  // up to 4 streams
    config.multi_attr_prob = 0.3;
    config.seed = seed * 977 + 5;
    auto inst = MakeRandomQuery(config);
    ASSERT_TRUE(inst.ok());

    SafePlanEnumerator en(inst->query, inst->schemes);
    auto dp_plans = en.EnumerateSafePlans(/*limit=*/100000);
    ASSERT_TRUE(dp_plans.ok());

    std::vector<size_t> streams(inst->query.num_streams());
    for (size_t i = 0; i < streams.size(); ++i) streams[i] = i;
    size_t brute_count = 0;
    for (const PlanShape& shape : EnumerateAllShapes(streams)) {
      auto report = CheckPlanSafety(inst->query, inst->schemes, shape);
      ASSERT_TRUE(report.ok());
      if (report->safe) {
        ++brute_count;
        // Every brute-force safe shape appears in the DP output.
        bool found = false;
        for (const PlanShape& dp : *dp_plans) {
          if (dp == shape) {
            found = true;
            break;
          }
        }
        EXPECT_TRUE(found) << "seed=" << seed << " missing "
                           << shape.ToString(inst->query);
      }
    }
    EXPECT_EQ(dp_plans->size(), brute_count) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace punctsafe
