#include "exec/arena.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

namespace punctsafe {
namespace {

TEST(EpochArenaTest, AllocationsAreAlignedAndDistinct) {
  EpochArena arena(1024);
  std::set<char*> seen;
  for (int i = 0; i < 16; ++i) {
    EpochArena::Allocation a = arena.Allocate(24);
    ASSERT_NE(a.ptr, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(a.ptr) % 8, 0u);
    EXPECT_TRUE(seen.insert(a.ptr).second) << "allocations must not overlap";
    std::memset(a.ptr, 0xAB, 24);  // ASan catches any overlap/overflow
  }
  EXPECT_GT(arena.bytes_reserved(), 0u);
  EXPECT_GT(arena.bytes_live(), 0u);
}

TEST(EpochArenaTest, ReclaimsOnlyAtEpochBoundary) {
  EpochArena arena(256);
  // Fill past the first block so block 0 is no longer current.
  std::vector<EpochArena::Allocation> allocs;
  while (allocs.size() < 2 || allocs.back().block == allocs.front().block) {
    allocs.push_back(arena.Allocate(64));
  }
  uint32_t first = allocs.front().block;
  size_t in_first = 0;
  for (const auto& a : allocs) {
    if (a.block == first) ++in_first;
  }
  ASSERT_GE(in_first, 1u);

  for (const auto& a : allocs) {
    if (a.block == first) arena.NoteDead(a.block);
  }
  // Dead but not past an epoch boundary: nothing reclaimed yet.
  EXPECT_EQ(arena.blocks_reclaimed(), 0u);

  size_t reclaimed = arena.AdvanceEpoch();
  EXPECT_EQ(reclaimed, 1u);
  EXPECT_EQ(arena.blocks_reclaimed(), 1u);
  EXPECT_EQ(arena.epoch(), 1u);
}

TEST(EpochArenaTest, FreeListReuseAvoidsFreshMallocs) {
  EpochArena arena(256);
  // Build a working set of blocks, kill everything, advance, then
  // refill: the second wave must come entirely off the free list.
  std::vector<EpochArena::Allocation> allocs;
  for (int i = 0; i < 32; ++i) allocs.push_back(arena.Allocate(64));
  uint64_t mallocs_after_warmup = arena.blocks_allocated();
  size_t reserved_after_warmup = arena.bytes_reserved();

  for (const auto& a : allocs) arena.NoteDead(a.block);
  arena.AdvanceEpoch();

  for (int i = 0; i < 32; ++i) arena.Allocate(64);
  EXPECT_EQ(arena.blocks_allocated(), mallocs_after_warmup)
      << "steady-state refill must reuse free-listed blocks";
  EXPECT_EQ(arena.bytes_reserved(), reserved_after_warmup)
      << "free-listed blocks stay reserved for reuse";
}

TEST(EpochArenaTest, CurrentBlockRefilledBeforeAdvanceIsKept) {
  EpochArena arena(256);
  EpochArena::Allocation a = arena.Allocate(64);
  arena.NoteDead(a.block);  // current block becomes a candidate...
  EpochArena::Allocation b = arena.Allocate(64);  // ...then refills
  ASSERT_EQ(a.block, b.block);
  size_t reclaimed = arena.AdvanceEpoch();
  EXPECT_EQ(reclaimed, 0u) << "advance must re-check the live counter";
  // The refilled allocation is still addressable.
  std::memset(b.ptr, 0xCD, 64);
}

TEST(EpochArenaTest, OversizedAllocationGetsDedicatedBlock) {
  EpochArena arena(256);
  EpochArena::Allocation small = arena.Allocate(32);
  EpochArena::Allocation big = arena.Allocate(4096);
  ASSERT_NE(big.ptr, nullptr);
  EXPECT_NE(big.block, small.block);
  std::memset(big.ptr, 0xEF, 4096);
  size_t reserved_with_big = arena.bytes_reserved();

  arena.NoteDead(big.block);
  arena.AdvanceEpoch();
  // Oversized blocks are returned to the system, not free-listed.
  EXPECT_LT(arena.bytes_reserved(), reserved_with_big);
}

TEST(EpochArenaTest, GaugesTrackLiveBytes) {
  EpochArena arena(256);
  std::vector<EpochArena::Allocation> allocs;
  for (int i = 0; i < 8; ++i) allocs.push_back(arena.Allocate(64));
  size_t live_full = arena.bytes_live();
  EXPECT_GE(live_full, 8u * 64u);

  for (const auto& a : allocs) arena.NoteDead(a.block);
  arena.AdvanceEpoch();
  EXPECT_EQ(arena.bytes_live(), 0u);
  EXPECT_GT(arena.bytes_reserved(), 0u) << "standard blocks are retained";
}

TEST(EpochArenaTest, EpochCounterAdvancesEvenWhenNothingDies) {
  EpochArena arena;
  EXPECT_EQ(arena.epoch(), 0u);
  EXPECT_EQ(arena.AdvanceEpoch(), 0u);
  EXPECT_EQ(arena.AdvanceEpoch(), 0u);
  EXPECT_EQ(arena.epoch(), 2u);
}

}  // namespace
}  // namespace punctsafe
