#include "util/small_vector.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace punctsafe {
namespace {

TEST(SmallVectorTest, StartsInlineAndEmpty) {
  SmallVector<size_t, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), 4u);
  EXPECT_FALSE(v.is_heap());
}

TEST(SmallVectorTest, InlineToHeapSpill) {
  SmallVector<size_t, 4> v;
  for (size_t i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_FALSE(v.is_heap()) << "N elements must still be inline";
  EXPECT_EQ(v.size(), 4u);

  v.push_back(4);  // the spill
  EXPECT_TRUE(v.is_heap());
  EXPECT_EQ(v.size(), 5u);
  EXPECT_GE(v.capacity(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(v[i], i);

  // Keep growing through several doublings.
  for (size_t i = 5; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 100u);
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ(v[i], i);
}

TEST(SmallVectorTest, EraseUnorderedSwapsBackIn) {
  // The bucket-maintenance primitive: O(1) removal, order not
  // preserved — the back element takes the erased position.
  SmallVector<size_t, 4> v;
  for (size_t i = 0; i < 3; ++i) v.push_back(i * 10);
  v.erase_unordered(0);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 20u);  // back moved into position 0
  EXPECT_EQ(v[1], 10u);

  // Erasing the last element is a plain pop.
  v.erase_unordered(1);
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 20u);
  v.erase_unordered(0);
  EXPECT_TRUE(v.empty());
}

TEST(SmallVectorTest, EraseUnorderedOnHeap) {
  SmallVector<size_t, 2> v;
  for (size_t i = 0; i < 10; ++i) v.push_back(i);
  ASSERT_TRUE(v.is_heap());
  v.erase_unordered(3);
  EXPECT_EQ(v.size(), 9u);
  EXPECT_EQ(v[3], 9u);
  std::vector<size_t> got(v.begin(), v.end());
  std::vector<size_t> want = {0, 1, 2, 9, 4, 5, 6, 7, 8};
  EXPECT_EQ(got, want);
}

TEST(SmallVectorTest, TruncateAndClear) {
  SmallVector<std::string, 2> v;
  for (int i = 0; i < 6; ++i) v.push_back("x" + std::to_string(i));
  v.truncate(3);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[2], "x2");
  v.truncate(5);  // no-op when already shorter
  EXPECT_EQ(v.size(), 3u);
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.is_heap()) << "clear keeps the spilled storage";
}

TEST(SmallVectorTest, CopySemantics) {
  SmallVector<std::string, 2> inline_v;
  inline_v.push_back("a");
  SmallVector<std::string, 2> inline_copy(inline_v);
  EXPECT_EQ(inline_copy.size(), 1u);
  EXPECT_EQ(inline_copy[0], "a");
  inline_copy.push_back("b");
  EXPECT_EQ(inline_v.size(), 1u) << "copies must not share storage";

  SmallVector<std::string, 2> heap_v;
  for (int i = 0; i < 5; ++i) heap_v.push_back(std::to_string(i));
  SmallVector<std::string, 2> heap_copy;
  heap_copy = heap_v;
  EXPECT_EQ(heap_copy.size(), 5u);
  heap_copy[0] = "changed";
  EXPECT_EQ(heap_v[0], "0");
}

TEST(SmallVectorTest, MoveStealsHeapBuffer) {
  SmallVector<std::string, 2> v;
  for (int i = 0; i < 5; ++i) v.push_back(std::to_string(i));
  const std::string* data_before = &v[0];
  SmallVector<std::string, 2> moved(std::move(v));
  EXPECT_EQ(moved.size(), 5u);
  EXPECT_EQ(&moved[0], data_before) << "heap move must steal the buffer";
  EXPECT_TRUE(v.empty());  // NOLINT(bugprone-use-after-move): pinned state
  EXPECT_FALSE(v.is_heap());
  v.push_back("reuse");  // moved-from object stays usable
  EXPECT_EQ(v[0], "reuse");
}

TEST(SmallVectorTest, MoveInlineMovesElements) {
  SmallVector<std::string, 4> v;
  v.push_back("hello");
  SmallVector<std::string, 4> moved(std::move(v));
  EXPECT_EQ(moved.size(), 1u);
  EXPECT_EQ(moved[0], "hello");
  EXPECT_FALSE(moved.is_heap());
}

TEST(SmallVectorTest, PopBackAndBack) {
  SmallVector<size_t, 4> v;
  v.push_back(1);
  v.push_back(2);
  EXPECT_EQ(v.back(), 2u);
  v.pop_back();
  EXPECT_EQ(v.back(), 1u);
  EXPECT_EQ(v.size(), 1u);
}

TEST(SmallVectorTest, ReserveNeverShrinks) {
  SmallVector<size_t, 4> v;
  v.reserve(2);
  EXPECT_EQ(v.capacity(), 4u);
  v.reserve(20);
  EXPECT_GE(v.capacity(), 20u);
  EXPECT_TRUE(v.is_heap());
}

}  // namespace
}  // namespace punctsafe
