#include "core/generalized_punctuation_graph.h"

#include <gtest/gtest.h>

#include "core/punctuation_graph.h"
#include "test_util.h"

namespace punctsafe {
namespace {

using testing_util::Fig5Schemes;
using testing_util::Fig8Schemes;
using testing_util::PaperCatalog;
using testing_util::SchemeOn;
using testing_util::TriangleQuery;

// The paper's Section 4.2 motivating example: the simple graph says
// unpurgeable, the generalized graph says purgeable.
TEST(GpgTest, Fig8GeneralizedGraphIsStronglyConnected) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  SchemeSet schemes = Fig8Schemes(catalog);

  EXPECT_FALSE(PunctuationGraph::Build(q, schemes).IsStronglyConnected());

  GeneralizedPunctuationGraph gpg =
      GeneralizedPunctuationGraph::Build(q, schemes);
  EXPECT_TRUE(gpg.IsStronglyConnected());
  for (size_t s = 0; s < 3; ++s) {
    EXPECT_TRUE(gpg.StatePurgeable(s)) << "stream " << s;
  }
  EXPECT_FALSE(gpg.truncated());
}

// Figure 9: the scheme S3(+,+) on (C, A) becomes the generalized edge
// {S1, S2} -> S3.
TEST(GpgTest, Fig9GeneralizedEdgeStructure) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  GeneralizedPunctuationGraph gpg =
      GeneralizedPunctuationGraph::Build(q, Fig8Schemes(catalog));

  bool found = false;
  for (const GpgEdge& e : gpg.edges()) {
    if (e.target == 2 && e.sources == std::vector<size_t>{0, 1}) {
      found = true;
      EXPECT_EQ(e.bindings.size(), 2u);
    }
  }
  EXPECT_TRUE(found) << gpg.ToString(q);
}

// Definition 9 fixpoint order on Figure 8: from S1, first S2 (plain
// edge), then S3 (generalized edge fires once both sources covered).
TEST(GpgTest, Fig8ReachabilityFixpoint) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  GeneralizedPunctuationGraph gpg =
      GeneralizedPunctuationGraph::Build(q, Fig8Schemes(catalog));
  auto r = gpg.ReachableFrom(0);
  EXPECT_TRUE(r[0] && r[1] && r[2]);
}

// A generalized edge must NOT fire from only part of its source set:
// drop S2's schemes so S1 alone cannot complete {S1,S2} -> S3.
TEST(GpgTest, GeneralizedEdgeNeedsAllSources) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  SchemeSet schemes;
  // Only S3's pair scheme: nobody can reach S2, and the pair edge
  // requires covering both S1 and S2 first.
  ASSERT_TRUE(schemes.Add(SchemeOn(catalog, "S3", {"C", "A"})).ok());
  GeneralizedPunctuationGraph gpg =
      GeneralizedPunctuationGraph::Build(q, schemes);
  auto r = gpg.ReachableFrom(0);
  EXPECT_TRUE(r[0]);
  EXPECT_FALSE(r[1]);
  EXPECT_FALSE(r[2]);  // pair edge never fires
  EXPECT_FALSE(gpg.StatePurgeable(0));
  EXPECT_EQ(gpg.UnreachableFrom(0), (std::vector<size_t>{1, 2}));
}

// A scheme whose punctuatable attribute is not a join attribute
// contributes nothing (finitely many instantiations cannot close a
// join value).
TEST(GpgTest, NonJoinAttributeSchemeUnusable) {
  StreamCatalog catalog;
  ASSERT_TRUE(catalog.Register("L", Schema::OfInts({"K", "X"})).ok());
  ASSERT_TRUE(catalog.Register("R", Schema::OfInts({"K", "Y"})).ok());
  auto q = ContinuousJoinQuery::Create(catalog, {"L", "R"},
                                       {Eq({"L", "K"}, {"R", "K"})});
  ASSERT_TRUE(q.ok());
  SchemeSet schemes;
  // Scheme on R.Y: Y joins nothing.
  ASSERT_TRUE(schemes.Add(SchemeOn(catalog, "R", {"Y"})).ok());
  // Scheme on R.(K, Y): K joins, Y does not — still unusable, since an
  // instantiation constrains Y too.
  ASSERT_TRUE(schemes.Add(SchemeOn(catalog, "R", {"K", "Y"})).ok());
  GeneralizedPunctuationGraph gpg =
      GeneralizedPunctuationGraph::Build(q.ValueOrDie(), schemes);
  EXPECT_TRUE(gpg.edges().empty());
}

// Simple schemes appear in the GPG as singleton-source edges, so the
// GPG subsumes the PG.
TEST(GpgTest, SimpleSchemesYieldSingletonEdges) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  GeneralizedPunctuationGraph gpg =
      GeneralizedPunctuationGraph::Build(q, Fig5Schemes(catalog));
  EXPECT_EQ(gpg.edges().size(), 3u);
  for (const GpgEdge& e : gpg.edges()) {
    EXPECT_EQ(e.sources.size(), 1u);
    EXPECT_EQ(e.bindings.size(), 1u);
  }
  EXPECT_TRUE(gpg.IsStronglyConnected());
}

// One punctuatable attribute joining two partner streams: either can
// supply the values, so two singleton edges appear.
TEST(GpgTest, MultiplePartnersYieldAlternativeEdges) {
  StreamCatalog catalog;
  ASSERT_TRUE(catalog.Register("A", Schema::OfInts({"K"})).ok());
  ASSERT_TRUE(catalog.Register("B", Schema::OfInts({"K"})).ok());
  ASSERT_TRUE(catalog.Register("C", Schema::OfInts({"K"})).ok());
  auto q = ContinuousJoinQuery::Create(
      catalog, {"A", "B", "C"},
      {Eq({"A", "K"}, {"C", "K"}), Eq({"B", "K"}, {"C", "K"})});
  ASSERT_TRUE(q.ok());
  SchemeSet schemes;
  ASSERT_TRUE(schemes.Add(SchemeOn(catalog, "C", {"K"})).ok());
  GeneralizedPunctuationGraph gpg =
      GeneralizedPunctuationGraph::Build(*q, schemes);
  // {A} -> C and {B} -> C.
  ASSERT_EQ(gpg.edges().size(), 2u);
  EXPECT_EQ(gpg.edges()[0].target, 2u);
  EXPECT_EQ(gpg.edges()[1].target, 2u);
  EXPECT_NE(gpg.edges()[0].sources, gpg.edges()[1].sources);
}

// Arity-mismatched schemes (stale schema) are ignored, not fatal.
TEST(GpgTest, ArityMismatchedSchemeIgnored) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  SchemeSet schemes;
  ASSERT_TRUE(schemes.Add(PunctuationScheme("S1", {true, true, true})).ok());
  GeneralizedPunctuationGraph gpg =
      GeneralizedPunctuationGraph::Build(q, schemes);
  EXPECT_TRUE(gpg.edges().empty());
}

}  // namespace
}  // namespace punctsafe
