// Extra runtime coverage: punctuation purgeability (Section 5.1),
// all-wildcard stream-end punctuations (heartbeat-style closure), and
// the input manager.

#include <gtest/gtest.h>

#include <thread>

#include "core/plan_safety.h"
#include "exec/input_manager.h"
#include "exec/mjoin.h"
#include "test_util.h"

namespace punctsafe {
namespace {

using testing_util::Fig5Schemes;
using testing_util::PaperCatalog;
using testing_util::SchemeOn;
using testing_util::TriangleQuery;

std::unique_ptr<MJoinOperator> MakeBinaryOp(const ContinuousJoinQuery& q,
                                            const SchemeSet& schemes,
                                            MJoinConfig config = {}) {
  std::vector<LocalInput> inputs;
  for (size_t s = 0; s < q.num_streams(); ++s) {
    inputs.push_back({{s}, RawAvailableSchemes(q, schemes, s)});
  }
  auto op = MJoinOperator::Create(q, inputs, config);
  PUNCTSAFE_CHECK(op.ok()) << op.status().ToString();
  return std::move(op).ValueOrDie();
}

struct BinaryFixture {
  StreamCatalog catalog;
  ContinuousJoinQuery query;
  SchemeSet schemes;

  BinaryFixture() : query(Make(&catalog)) {
    PUNCTSAFE_CHECK_OK(schemes.Add(SchemeOn(catalog, "L", {"B"})));
    PUNCTSAFE_CHECK_OK(schemes.Add(SchemeOn(catalog, "R", {"B"})));
  }
  static ContinuousJoinQuery Make(StreamCatalog* catalog) {
    PUNCTSAFE_CHECK_OK(catalog->Register("L", Schema::OfInts({"A", "B"})));
    PUNCTSAFE_CHECK_OK(catalog->Register("R", Schema::OfInts({"B", "C"})));
    auto q = ContinuousJoinQuery::Create(*catalog, {"L", "R"},
                                         {Eq({"L", "B"}, {"R", "B"})});
    PUNCTSAFE_CHECK(q.ok());
    return std::move(q).ValueOrDie();
  }
};

// The paper's Section 5.1 example: the punctuation (b1, *) from R can
// be retired once (*, b1) from L arrives — no future or stored L
// tuple will ever need it again.
TEST(PunctuationPurgeabilityTest, PartnerPunctuationRetiresPunctuation) {
  BinaryFixture fx;
  MJoinConfig config;
  config.purge_punctuations = true;
  auto op = MakeBinaryOp(fx.query, fx.schemes, config);

  // R closes B=7.
  op->PushPunctuation(1, Punctuation::OfConstants(2, {{0, Value(7)}}), 1);
  EXPECT_EQ(op->TotalLivePunctuations(), 1u);
  EXPECT_EQ(op->punctuations_purged(), 0u);

  // L closes B=7 too: each punctuation's only join value is now
  // closed on the partner with no live tuples left — and since the
  // conditions are snapshot-evaluated, BOTH retire (exclusion is a
  // property of the stream contracts, which outlive the stores).
  op->PushPunctuation(0, Punctuation::OfConstants(2, {{1, Value(7)}}), 2);
  EXPECT_EQ(op->punctuations_purged(), 2u);
  EXPECT_EQ(op->TotalLivePunctuations(), 0u);
}

// On the Figure 5 triangle, tuples can be closed on one attribute yet
// stuck on their chain's next hop; the punctuations they still rely
// on must NOT retire while those tuples live.
TEST(PunctuationPurgeabilityTest, LiveMatchingTupleBlocksRetirement) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  SchemeSet schemes = Fig5Schemes(catalog);
  MJoinConfig config;
  config.purge_punctuations = true;
  std::vector<LocalInput> inputs;
  for (size_t s = 0; s < 3; ++s) {
    inputs.push_back({{s}, RawAvailableSchemes(q, schemes, s)});
  }
  auto op_or = MJoinOperator::Create(q, inputs, config);
  ASSERT_TRUE(op_or.ok());
  auto op = std::move(op_or).ValueOrDie();

  op->PushTuple(0, Tuple({Value(1), Value(7)}), 1);  // S1 (A=1, B=7)
  op->PushTuple(1, Tuple({Value(7), Value(9)}), 2);  // S2 (B=7, C=9)
  op->PushPunctuation(0, Punctuation::OfConstants(2, {{1, Value(7)}}), 3);
  op->PushPunctuation(1, Punctuation::OfConstants(2, {{0, Value(7)}}), 4);
  // Both tuples wait on S3 punctuations, so both B=7 punctuations are
  // still load-bearing: nothing retires, nothing purges.
  EXPECT_EQ(op->TotalLiveTuples(), 2u);
  EXPECT_EQ(op->punctuations_purged(), 0u);
  EXPECT_EQ(op->TotalLivePunctuations(), 2u);

  // Closing S3 on A=1 releases the chains: both tuples purge, and the
  // two B=7 punctuations retire mutually. S3's own punctuation stays:
  // no S1-stream punctuation on A covers its value.
  op->PushPunctuation(2, Punctuation::OfConstants(2, {{1, Value(1)}}), 5);
  EXPECT_EQ(op->TotalLiveTuples(), 0u);
  EXPECT_EQ(op->punctuations_purged(), 2u);
  EXPECT_EQ(op->TotalLivePunctuations(), 1u);
}

TEST(PunctuationPurgeabilityTest, DisabledByDefault) {
  BinaryFixture fx;
  auto op = MakeBinaryOp(fx.query, fx.schemes);
  op->PushPunctuation(1, Punctuation::OfConstants(2, {{0, Value(7)}}), 1);
  op->PushPunctuation(0, Punctuation::OfConstants(2, {{1, Value(7)}}), 2);
  op->Sweep(3);
  EXPECT_EQ(op->punctuations_purged(), 0u);
  EXPECT_EQ(op->TotalLivePunctuations(), 2u);
}

TEST(PunctuationPurgeabilityTest, BoundedStoreOnLongRun) {
  BinaryFixture fx;
  MJoinConfig config;
  config.purge_punctuations = true;
  auto op = MakeBinaryOp(fx.query, fx.schemes, config);
  // Windowed run: both sides punctuate each value; stores stay small.
  for (int64_t v = 0; v < 500; ++v) {
    op->PushTuple(0, Tuple({Value(v), Value(v)}), 4 * v);
    op->PushTuple(1, Tuple({Value(v), Value(v + 1)}), 4 * v + 1);
    op->PushPunctuation(1, Punctuation::OfConstants(2, {{0, Value(v)}}),
                        4 * v + 2);
    op->PushPunctuation(0, Punctuation::OfConstants(2, {{1, Value(v)}}),
                        4 * v + 3);
  }
  EXPECT_EQ(op->TotalLiveTuples(), 0u);
  EXPECT_GT(op->punctuations_purged(), 900u);
  EXPECT_LT(op->TotalLivePunctuations(), 20u);
}

// An all-wildcard punctuation declares the stream finished: every
// partner tuple waiting on it becomes purgeable ([12]'s heartbeat-like
// end-of-stream).
TEST(StreamEndTest, AllWildcardClosesEverything) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  SchemeSet schemes = Fig5Schemes(catalog);
  std::vector<LocalInput> inputs;
  for (size_t s = 0; s < 3; ++s) {
    inputs.push_back({{s}, RawAvailableSchemes(q, schemes, s)});
  }
  auto op_or = MJoinOperator::Create(q, inputs, {});
  ASSERT_TRUE(op_or.ok());
  auto op = std::move(op_or).ValueOrDie();

  for (int i = 0; i < 5; ++i) {
    op->PushTuple(0, Tuple({Value(i), Value(i)}), i);
    op->PushTuple(1, Tuple({Value(i), Value(i + 50)}), i);
  }
  EXPECT_EQ(op->TotalLiveTuples(), 10u);
  // S2 and S3 both end entirely.
  op->PushPunctuation(1, Punctuation::AllWildcard(2), 100);
  op->PushPunctuation(2, Punctuation::AllWildcard(2), 101);
  // S1 tuples: chain closes S3 (ended) then S2 (ended) -> purged.
  EXPECT_EQ(op->state_metrics(0).live, 0u);
  // S2's own stored tuples wait on S1 (not ended) and stay.
  EXPECT_EQ(op->state_metrics(1).live, 5u);
  op->PushPunctuation(0, Punctuation::AllWildcard(2), 102);
  EXPECT_EQ(op->TotalLiveTuples(), 0u);
}

TEST(InputManagerTest, MergeIsTimestampOrderedAndStable) {
  Trace a{{"x", StreamElement::OfTuple(Tuple({Value(1)}), 5)},
          {"x", StreamElement::OfTuple(Tuple({Value(2)}), 10)}};
  Trace b{{"y", StreamElement::OfTuple(Tuple({Value(3)}), 5)},
          {"y", StreamElement::OfTuple(Tuple({Value(4)}), 1)}};
  Trace merged = InputManager::Merge({a, b});
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].stream, "y");  // ts 1
  // Tie at ts 5: trace a's event first (stable).
  EXPECT_EQ(merged[1].stream, "x");
  EXPECT_EQ(merged[2].stream, "y");
  EXPECT_EQ(merged[3].element.timestamp, 10);
}

TEST(InputManagerTest, AcceptAndDrain) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  auto exec = PlanExecutor::Create(q, Fig5Schemes(catalog),
                                   PlanShape::SingleMJoin(3));
  ASSERT_TRUE(exec.ok());

  InputManager manager;
  // Accept out of order; drain must deliver by timestamp.
  manager.Accept("S3", StreamElement::OfTuple(Tuple({Value(3), Value(1)}),
                                              30));
  manager.Accept("S1", StreamElement::OfTuple(Tuple({Value(1), Value(2)}),
                                              10));
  manager.Accept("S2", StreamElement::OfTuple(Tuple({Value(2), Value(3)}),
                                              20));
  EXPECT_EQ(manager.buffered(), 3u);
  auto delivered = manager.DrainInto(exec.ValueOrDie().get());
  ASSERT_TRUE(delivered.ok());
  EXPECT_EQ(*delivered, 3u);
  EXPECT_EQ(manager.buffered(), 0u);
  EXPECT_EQ((*exec)->num_results(), 1u);
}

// Regression: OnPurge used to underflow `live` (a size_t) when a purge
// double-counted, turning the live counter into ~2^64 and wrecking
// every downstream high-water/safety statistic. It now clamps at zero
// (and asserts in debug builds).
TEST(StateMetricsTest, OnPurgeClampsInsteadOfUnderflowing) {
  StateMetrics m;
  m.OnInsert();
  m.OnInsert();
  m.OnPurge(1);
  EXPECT_EQ(m.live, 1u);
  EXPECT_EQ(m.purged, 1u);

  // Purging more than is live is a bug in the caller; the counter must
  // clamp rather than wrap.
  EXPECT_DEBUG_DEATH(m.OnPurge(5), "OnPurge exceeds live");
#ifdef NDEBUG
  EXPECT_EQ(m.live, 0u);
  EXPECT_LT(m.live, m.high_water + 1);  // sane, not ~2^64
#endif
}

TEST(StateMetricsTest, ConcurrentUpdatesStayConsistent) {
  StateMetrics m;
  constexpr size_t kPerThread = 5000;
  {
    std::thread a([&] {
      for (size_t i = 0; i < kPerThread; ++i) m.OnInsert();
    });
    std::thread b([&] {
      for (size_t i = 0; i < kPerThread; ++i) m.OnInsert();
    });
    a.join();
    b.join();
  }
  EXPECT_EQ(m.inserted, 2 * kPerThread);
  EXPECT_EQ(m.live, 2 * kPerThread);
  EXPECT_EQ(m.high_water, 2 * kPerThread);
  {
    std::thread a([&] {
      for (size_t i = 0; i < kPerThread; ++i) m.OnPurge(1);
    });
    std::thread b([&] {
      for (size_t i = 0; i < kPerThread; ++i) m.OnPurge(1);
    });
    a.join();
    b.join();
  }
  EXPECT_EQ(m.purged, 2 * kPerThread);
  EXPECT_EQ(m.live, 0u);

  StateMetricsSnapshot snap = m.Snapshot();
  EXPECT_EQ(snap.inserted, 2 * kPerThread);
  EXPECT_EQ(snap.live, 0u);
  EXPECT_EQ(snap.high_water, 2 * kPerThread);
}

TEST(InputManagerTest, DrainReportsUnknownStream) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  auto exec = PlanExecutor::Create(q, Fig5Schemes(catalog),
                                   PlanShape::SingleMJoin(3));
  ASSERT_TRUE(exec.ok());
  InputManager manager;
  manager.Accept("nope", StreamElement::OfTuple(Tuple({Value(1)}), 1));
  EXPECT_TRUE(manager.DrainInto(exec.ValueOrDie().get())
                  .status()
                  .IsNotFound());
}

}  // namespace
}  // namespace punctsafe
