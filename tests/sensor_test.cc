#include "workload/sensor.h"

#include <gtest/gtest.h>

#include "core/punctuation_graph.h"
#include "core/safety_checker.h"
#include "exec/input_manager.h"
#include "query/cjq.h"

namespace punctsafe {
namespace {

// The sensor query is the Figure 8 phenomenon on a realistic
// workload: the simple punctuation graph under-approximates, the
// generalized one proves safety.
TEST(SensorTest, SimpleGraphFailsGeneralizedSucceeds) {
  QueryRegister reg;
  ASSERT_TRUE(SensorWorkload::Setup(&reg).ok());
  auto q = ContinuousJoinQuery::Create(reg.catalog(),
                                       SensorWorkload::QueryStreams(),
                                       SensorWorkload::QueryPredicates());
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  PunctuationGraph pg = PunctuationGraph::Build(*q, reg.schemes());
  EXPECT_FALSE(pg.IsStronglyConnected());

  SafetyChecker checker(reg.schemes());
  auto report = checker.CheckQuery(*q);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->safe);
  EXPECT_FALSE(report->used_simple_path);
}

TEST(SensorTest, RegisterAndRunDrainsPerEpochState) {
  QueryRegister reg;
  ASSERT_TRUE(SensorWorkload::Setup(&reg).ok());
  auto rq = reg.Register(SensorWorkload::QueryStreams(),
                         SensorWorkload::QueryPredicates());
  ASSERT_TRUE(rq.ok()) << rq.status().ToString();

  SensorConfig config;
  config.num_sensors = 8;
  config.num_epochs = 12;
  Trace trace = SensorWorkload::Generate(config);
  ASSERT_TRUE(FeedTrace(rq->executor.get(), trace).ok());

  EXPECT_GT(rq->executor->num_results(), 0u);
  // After decommissioning, everything is purged.
  EXPECT_EQ(rq->executor->TotalLiveTuples(), 0u);
  // The high-water mark is per-epoch sized, far below the full trace.
  size_t tuples_in_trace = 0;
  for (const TraceEvent& e : trace) {
    tuples_in_trace += e.element.is_tuple() ? 1 : 0;
  }
  EXPECT_LT(rq->executor->tuple_high_water(), tuples_in_trace / 3);
}

TEST(SensorTest, TraceContractPerEpochPairs) {
  SensorConfig config;
  config.num_sensors = 4;
  config.num_epochs = 6;
  Trace trace = SensorWorkload::Generate(config);
  // After the (sensor, epoch) pair punctuation on readings, no reading
  // with that pair may appear.
  std::set<std::pair<int64_t, int64_t>> closed;
  for (const TraceEvent& e : trace) {
    if (e.stream != SensorWorkload::kReadings) continue;
    if (e.element.is_punctuation()) {
      const Punctuation& p = e.element.punctuation;
      if (p.ConstrainedAttrs() == std::vector<size_t>{0, 1}) {
        closed.insert({p.pattern(0).constant().AsInt64(),
                       p.pattern(1).constant().AsInt64()});
      }
    } else {
      EXPECT_FALSE(closed.count({e.element.tuple.at(0).AsInt64(),
                                 e.element.tuple.at(1).AsInt64()}));
    }
  }
  EXPECT_EQ(closed.size(), 4u * 6u);
}

TEST(SensorTest, ResultCountMatchesExpectation) {
  // With calibration_rate = 1 every (sensor, epoch) pair joins all its
  // readings with exactly one calibration and one sensor record.
  SensorConfig config;
  config.num_sensors = 3;
  config.num_epochs = 4;
  config.readings_per_sensor_epoch = 2;
  config.calibration_rate = 1.0;

  QueryRegister reg;
  ASSERT_TRUE(SensorWorkload::Setup(&reg).ok());
  auto rq = reg.Register(SensorWorkload::QueryStreams(),
                         SensorWorkload::QueryPredicates());
  ASSERT_TRUE(rq.ok());
  ASSERT_TRUE(
      FeedTrace(rq->executor.get(), SensorWorkload::Generate(config)).ok());
  EXPECT_EQ(rq->executor->num_results(), 3u * 4u * 2u);
}

}  // namespace
}  // namespace punctsafe
