// Unit tests for the punctuation-aligned checkpoint layer
// (exec/checkpoint.h): serialization round-trips (including inline,
// owned, and external-slice string Values), corruption rejection via
// per-section CRC32 (truncation and bit-flip sweeps), the snapshot
// monoid laws (identity, associativity, commutativity, and
// split-merge inversion), executor capture/restore byte-equality in
// both execution modes, automatic interval checkpoints, and the
// QueryRegister::Restore recovery entry point. The randomized
// differential oracle lives in recovery_differential_test.cc.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "exec/checkpoint.h"
#include "exec/parallel_executor.h"
#include "exec/plan_executor.h"
#include "exec/query_register.h"
#include "test_util.h"
#include "util/logging.h"

namespace punctsafe {
namespace {

using testing_util::Fig5Schemes;
using testing_util::PaperCatalog;
using testing_util::TriangleQuery;

// Backing store for external-slice Values: the bytes must outlive the
// Value, exactly like arena-resident strings do in the engine.
const std::string& ExternalBacking() {
  static const std::string backing =
      "external-slice-backing-bytes-well-beyond-the-inline-buffer";
  return backing;
}

Value RandomValue(std::mt19937_64& rng) {
  switch (rng() % 6) {
    case 0:
      return Value::Null();
    case 1:
      return Value(static_cast<int64_t>(rng() % 1000) - 500);
    case 2:
      return Value(static_cast<double>(rng() % 997) / 7.0);
    case 3:  // inline string (<= 16 bytes)
      return Value(std::string("s") + std::to_string(rng() % 100));
    case 4: {  // owned string beyond the inline buffer
      std::string long_str = "long-owned-string-";
      long_str += std::to_string(rng() % 1000);
      long_str += "-padding-past-inline";
      return Value(long_str);
    }
    default: {  // external (non-owning) slice with precomputed hash
      const std::string& backing = ExternalBacking();
      const uint32_t len = 17 + static_cast<uint32_t>(rng() % 20);
      // An owned twin supplies the cached hash (equal reprs hash
      // equally), exactly like the arena-copy path does.
      Value owned(std::string_view(backing.data(), len));
      return Value::ExternalString(backing.data(), len, owned.Hash());
    }
  }
}

Tuple RandomTuple(std::mt19937_64& rng, size_t width) {
  std::vector<Value> values;
  values.reserve(width);
  for (size_t i = 0; i < width; ++i) values.push_back(RandomValue(rng));
  return Tuple(std::move(values));
}

Punctuation RandomPunctuation(std::mt19937_64& rng, size_t arity) {
  std::vector<Pattern> patterns;
  patterns.reserve(arity);
  for (size_t i = 0; i < arity; ++i) {
    if (rng() % 2 == 0) {
      patterns.emplace_back();  // wildcard
    } else {
      patterns.emplace_back(Value(static_cast<int64_t>(rng() % 50)));
    }
  }
  return Punctuation(std::move(patterns));
}

StateSnapshot RandomSnapshot(uint64_t seed) {
  std::mt19937_64 rng(seed);
  StateSnapshot snap;
  snap.fingerprint = "test-plan-" + std::to_string(seed % 3);
  snap.num_results = rng() % 1000;
  snap.tuple_high_water = rng() % 100;
  snap.punct_high_water = rng() % 100;
  const size_t num_streams = 2 + rng() % 3;
  for (size_t s = 0; s < num_streams; ++s) {
    InputProgress p;
    p.events_consumed = rng() % 500;
    p.watermark_ts = static_cast<int64_t>(rng() % 1000);
    snap.progress.push_back(p);
  }
  for (size_t r = 0; r < rng() % 5; ++r) {
    snap.results.push_back(RandomTuple(rng, 3));
  }
  const size_t num_ops = 1 + rng() % 3;
  for (size_t j = 0; j < num_ops; ++j) {
    OperatorStateSnapshot op;
    const size_t num_inputs = 2 + rng() % 2;
    for (size_t k = 0; k < num_inputs; ++k) {
      InputStateSnapshot input;
      const size_t width = 1 + rng() % 3;
      for (size_t t = 0; t < rng() % 6; ++t) {
        input.tuples.push_back(RandomTuple(rng, width));
      }
      for (size_t p = 0; p < rng() % 4; ++p) {
        PunctuationEntry entry;
        entry.punctuation = RandomPunctuation(rng, width);
        entry.arrival = static_cast<int64_t>(rng() % 100);
        input.punctuations.push_back(entry);
      }
      input.state_metrics.inserted = rng() % 100;
      input.state_metrics.purged = rng() % 50;
      input.state_metrics.live = input.tuples.size();
      input.state_metrics.high_water = rng() % 40;
      op.inputs.push_back(std::move(input));
    }
    for (size_t p = 0; p < rng() % 3; ++p) {
      PendingPropagationSnapshot pending;
      pending.input = static_cast<uint32_t>(rng() % num_inputs);
      pending.punctuation = RandomPunctuation(rng, 2);
      op.pending.push_back(std::move(pending));
    }
    op.op_metrics.results_emitted = rng() % 200;
    op.op_metrics.punctuations_received = rng() % 100;
    op.op_metrics.punctuations_live = rng() % 20;
    op.punctuations_purged = rng() % 10;
    op.punctuations_since_sweep = rng() % 8;
    snap.operators.push_back(std::move(op));
  }
  return snap;
}

TEST(CheckpointSerializationTest, RoundTripsRandomizedSnapshots) {
  for (uint64_t seed = 0; seed < 25; ++seed) {
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    StateSnapshot snap = RandomSnapshot(seed);
    const std::string bytes = SerializeSnapshot(snap);
    Result<StateSnapshot> restored = DeserializeSnapshot(bytes);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    // Serialize(Deserialize(Serialize(s))) == Serialize(s): every
    // field — including string payloads that round-trip from external
    // to owned storage — survives bit-exactly.
    EXPECT_EQ(SerializeSnapshot(*restored), bytes);
  }
}

TEST(CheckpointSerializationTest, EveryTruncationIsRejectedCleanly) {
  const std::string bytes = SerializeSnapshot(RandomSnapshot(7));
  ASSERT_GT(bytes.size(), 16u);
  for (size_t len = 0; len < bytes.size(); ++len) {
    Result<StateSnapshot> r =
        DeserializeSnapshot(std::string_view(bytes.data(), len));
    EXPECT_FALSE(r.ok()) << "truncation to " << len << " bytes of "
                         << bytes.size() << " was accepted";
  }
  // Trailing garbage is corruption too, not padding.
  Result<StateSnapshot> extended = DeserializeSnapshot(bytes + "x");
  EXPECT_FALSE(extended.ok());
}

TEST(CheckpointSerializationTest, EveryByteFlipIsRejected) {
  const std::string bytes = SerializeSnapshot(RandomSnapshot(11));
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    std::string corrupted = bytes;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x5A);
    Result<StateSnapshot> r = DeserializeSnapshot(corrupted);
    EXPECT_FALSE(r.ok()) << "flip at byte " << pos << " was accepted";
  }
}

TEST(CheckpointSerializationTest, Crc32MatchesKnownVectors) {
  // The standard CRC-32 (reflected, poly 0xEDB88320) check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0x00000000u);
}

std::string CanonicalBytes(StateSnapshot snap) {
  CanonicalizeSnapshot(&snap);
  return SerializeSnapshot(snap);
}

TEST(CheckpointMergeTest, DefaultSnapshotIsTheIdentity) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    StateSnapshot snap = RandomSnapshot(seed);
    const std::string canonical = CanonicalBytes(snap);
    EXPECT_EQ(SerializeSnapshot(MergeSnapshots(StateSnapshot{}, snap)),
              canonical);
    EXPECT_EQ(SerializeSnapshot(MergeSnapshots(snap, StateSnapshot{})),
              canonical);
  }
}

TEST(CheckpointMergeTest, MergeIsAssociativeAndCommutative) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    // Shards of one logical state: same fingerprint and layout (seeds
    // chosen congruent mod 3 so RandomSnapshot agrees on both), with
    // operator lists trimmed to a common shape.
    StateSnapshot a = RandomSnapshot(seed * 3);
    StateSnapshot b = RandomSnapshot(seed * 3 + 3);
    StateSnapshot c = RandomSnapshot(seed * 3 + 6);
    size_t ops = std::min({a.operators.size(), b.operators.size(),
                           c.operators.size()});
    size_t streams = std::min({a.progress.size(), b.progress.size(),
                               c.progress.size()});
    for (StateSnapshot* s : {&a, &b, &c}) {
      s->operators.resize(ops);
      s->progress.resize(streams);
      for (size_t j = 0; j < ops; ++j) {
        size_t inputs = std::min({a.operators[j].inputs.size(),
                                  b.operators[j].inputs.size(),
                                  c.operators[j].inputs.size()});
        s->operators[j].inputs.resize(inputs);
      }
    }
    const std::string left =
        SerializeSnapshot(MergeSnapshots(MergeSnapshots(a, b), c));
    const std::string right =
        SerializeSnapshot(MergeSnapshots(a, MergeSnapshots(b, c)));
    EXPECT_EQ(left, right) << "associativity violated";
    EXPECT_EQ(SerializeSnapshot(MergeSnapshots(a, b)),
              SerializeSnapshot(MergeSnapshots(b, a)))
        << "commutativity violated";
  }
}

TEST(CheckpointMergeTest, SplitThenMergeIsTheIdentity) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    StateSnapshot snap = RandomSnapshot(seed);
    CanonicalizeSnapshot(&snap);
    const std::string canonical = SerializeSnapshot(snap);
    for (size_t pieces : {1u, 2u, 3u, 8u}) {
      SCOPED_TRACE(::testing::Message()
                   << "seed=" << seed << " pieces=" << pieces);
      std::vector<StateSnapshot> parts = SplitSnapshot(snap, pieces);
      ASSERT_EQ(parts.size(), pieces);
      // Left fold.
      StateSnapshot merged = parts[0];
      for (size_t i = 1; i < pieces; ++i) {
        merged = MergeSnapshots(merged, parts[i]);
      }
      EXPECT_EQ(SerializeSnapshot(merged), canonical);
      // Right fold — a different association order must agree.
      StateSnapshot reversed = parts[pieces - 1];
      for (size_t i = pieces - 1; i-- > 0;) {
        reversed = MergeSnapshots(parts[i], reversed);
      }
      EXPECT_EQ(SerializeSnapshot(reversed), canonical);
    }
  }
}

TEST(CheckpointMergeTest, AsymmetricReSplitPreservesTheLogicalState) {
  // The migration path: state captured from K_old shards is folded to
  // one logical snapshot and re-split for K_new shards, where K_old
  // and K_new are unrelated (non-power-of-two, grow and shrink). The
  // re-split pieces must still fold back to the same logical state,
  // and each piece must survive serialization — a migrated shard's
  // state is checkpointable like any other.
  for (uint64_t seed = 0; seed < 10; ++seed) {
    StateSnapshot snap = RandomSnapshot(seed);
    CanonicalizeSnapshot(&snap);
    const std::string canonical = SerializeSnapshot(snap);
    for (auto [from, to] : std::initializer_list<std::pair<size_t, size_t>>{
             {3, 5}, {5, 3}, {4, 2}, {2, 7}, {6, 6}}) {
      SCOPED_TRACE(::testing::Message()
                   << "seed=" << seed << " resplit " << from << "->" << to);
      std::vector<StateSnapshot> old_shards = SplitSnapshot(snap, from);
      ASSERT_EQ(old_shards.size(), from);
      StateSnapshot logical = old_shards[0];
      for (size_t i = 1; i < from; ++i) {
        logical = MergeSnapshots(logical, old_shards[i]);
      }
      std::vector<StateSnapshot> new_shards = SplitSnapshot(logical, to);
      ASSERT_EQ(new_shards.size(), to);
      StateSnapshot refolded = new_shards[0];
      for (size_t i = 1; i < to; ++i) {
        refolded = MergeSnapshots(refolded, new_shards[i]);
      }
      EXPECT_EQ(SerializeSnapshot(refolded), canonical)
          << "re-split through " << from << " shards lost state";
      for (size_t i = 0; i < to; ++i) {
        const std::string bytes = SerializeSnapshot(new_shards[i]);
        Result<StateSnapshot> restored = DeserializeSnapshot(bytes);
        ASSERT_TRUE(restored.ok()) << "piece " << i << ": "
                                   << restored.status().ToString();
        EXPECT_EQ(SerializeSnapshot(*restored), bytes);
      }
    }
  }
}

// ---------------------------------------------------------------------
// Executor capture / restore.

ExecutorConfig BaseConfig() {
  ExecutorConfig config;
  config.keep_results = true;
  return config;
}

Trace TriangleTrace(int64_t generations) {
  // Covering rounds over the Figure 5 triangle: every generation g
  // joins once, then is closed on every stream by punctuations.
  Trace trace;
  int64_t ts = 0;
  for (int64_t g = 0; g < generations; ++g) {
    trace.push_back({"S1", StreamElement::OfTuple(
                               Tuple({Value(g), Value(g * 10)}), ts++)});
    trace.push_back({"S2", StreamElement::OfTuple(
                               Tuple({Value(g * 10), Value(g * 100)}), ts++)});
    trace.push_back(
        {"S3", StreamElement::OfTuple(Tuple({Value(g * 100), Value(g)}),
                                      ts++)});
    trace.push_back(
        {"S1", StreamElement::OfPunctuation(
                   Punctuation({Pattern(), Pattern(Value(g * 10))}), ts++)});
    trace.push_back(
        {"S2", StreamElement::OfPunctuation(
                   Punctuation({Pattern(), Pattern(Value(g * 100))}), ts++)});
    trace.push_back(
        {"S3", StreamElement::OfPunctuation(
                   Punctuation({Pattern(), Pattern(Value(g))}), ts++)});
  }
  return trace;
}

// Serialization with allocation-layout counters masked. A restored
// executor starts from fresh stores, so counters that track physical
// allocation history (insert_allocs, arena reservations, ...)
// legitimately diverge from the uninterrupted run during replay; all
// logical state and logical counters must still agree byte-for-byte.
std::string LogicalBytes(StateSnapshot snap) {
  for (OperatorStateSnapshot& op : snap.operators) {
    for (InputStateSnapshot& in : op.inputs) {
      StateMetricsSnapshot& m = in.state_metrics;
      m.probe_allocs = 0;
      m.index_compactions = 0;
      m.insert_allocs = 0;
      m.arena_blocks_reclaimed = 0;
      m.arena_bytes_reserved = 0;
      m.arena_bytes_live = 0;
    }
  }
  return SerializeSnapshot(snap);
}

TEST(CheckpointExecutorTest, SerialCaptureRestoreCaptureIsByteStable) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery query = TriangleQuery(catalog);
  SchemeSet schemes = Fig5Schemes(catalog);
  PlanShape shape = PlanShape::SingleMJoin(3);
  Trace trace = TriangleTrace(6);

  auto exec = PlanExecutor::Create(query, schemes, shape, BaseConfig());
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  // Stop mid-trace so live state (tuples + punctuations + pendings) is
  // non-trivial at the checkpoint.
  const size_t cut = trace.size() / 2;
  for (size_t i = 0; i < cut; ++i) {
    ASSERT_TRUE((*exec)->Push(trace[i]).ok());
  }
  StateSnapshot snap = (*exec)->Checkpoint();
  const std::string bytes = SerializeSnapshot(snap);

  Result<StateSnapshot> decoded = DeserializeSnapshot(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  auto restored = PlanExecutor::Create(query, schemes, shape, BaseConfig());
  ASSERT_TRUE(restored.ok());
  ASSERT_TRUE((*restored)->RestoreState(*decoded).ok());
  EXPECT_EQ(SerializeSnapshot((*restored)->Checkpoint()), bytes)
      << "capture -> serialize -> restore -> capture drifted";

  // Replaying the suffix on the restored executor matches replaying it
  // on the original.
  for (size_t i = cut; i < trace.size(); ++i) {
    ASSERT_TRUE((*exec)->Push(trace[i]).ok());
    ASSERT_TRUE((*restored)->Push(trace[i]).ok());
  }
  EXPECT_EQ((*restored)->num_results(), (*exec)->num_results());
  EXPECT_EQ((*restored)->TotalLiveTuples(), (*exec)->TotalLiveTuples());
  EXPECT_EQ((*restored)->TotalLivePunctuations(),
            (*exec)->TotalLivePunctuations());
  EXPECT_EQ(LogicalBytes((*restored)->Checkpoint()),
            LogicalBytes((*exec)->Checkpoint()));
}

TEST(CheckpointExecutorTest, ParallelCaptureRestoreCaptureIsByteStable) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery query = TriangleQuery(catalog);
  SchemeSet schemes = Fig5Schemes(catalog);
  PlanShape shape = PlanShape::SingleMJoin(3);
  Trace trace = TriangleTrace(6);

  for (size_t shards : {1u, 2u, 4u}) {
    SCOPED_TRACE(::testing::Message() << "shards=" << shards);
    ExecutorConfig config = BaseConfig();
    config.shards = shards;
    auto exec = ParallelExecutor::Create(query, schemes, shape, config);
    ASSERT_TRUE(exec.ok()) << exec.status().ToString();
    const size_t cut = trace.size() / 2;
    for (size_t i = 0; i < cut; ++i) {
      ASSERT_TRUE((*exec)->Push(trace[i]).ok());
    }
    Result<StateSnapshot> snap = (*exec)->Checkpoint(1000);
    ASSERT_TRUE(snap.ok()) << snap.status().ToString();
    const std::string bytes = SerializeSnapshot(*snap);
    (*exec)->Stop();

    auto restored = ParallelExecutor::Create(query, schemes, shape, config);
    ASSERT_TRUE(restored.ok());
    ASSERT_TRUE((*restored)->RestoreState(*snap).ok());
    Result<StateSnapshot> recaptured = (*restored)->Checkpoint(1000);
    ASSERT_TRUE(recaptured.ok());
    EXPECT_EQ(SerializeSnapshot(*recaptured), bytes)
        << "shard split/merge is not a clean inverse";
    (*restored)->Stop();
  }
}

TEST(CheckpointExecutorTest, FingerprintMismatchIsRejected) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery query = TriangleQuery(catalog);
  SchemeSet schemes = Fig5Schemes(catalog);
  auto exec = PlanExecutor::Create(query, schemes, PlanShape::SingleMJoin(3),
                                   BaseConfig());
  ASSERT_TRUE(exec.ok());
  StateSnapshot snap = (*exec)->Checkpoint();

  // A different plan shape over the same query is a different plan.
  auto other = PlanExecutor::Create(query, schemes,
                                    PlanShape::LeftDeepBinary({0, 1, 2}),
                                    BaseConfig());
  ASSERT_TRUE(other.ok());
  Status status = (*other)->RestoreState(snap);
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
}

TEST(CheckpointExecutorTest, RestoreIntoUsedExecutorIsRejected) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery query = TriangleQuery(catalog);
  SchemeSet schemes = Fig5Schemes(catalog);
  PlanShape shape = PlanShape::SingleMJoin(3);
  auto exec = PlanExecutor::Create(query, schemes, shape, BaseConfig());
  ASSERT_TRUE(exec.ok());
  Trace trace = TriangleTrace(3);
  for (size_t i = 0; i < trace.size() / 2; ++i) {
    ASSERT_TRUE((*exec)->Push(trace[i]).ok());
  }
  StateSnapshot snap = (*exec)->Checkpoint();
  ASSERT_GT((*exec)->TotalLiveTuples() + (*exec)->TotalLivePunctuations(),
            0u);
  // The executor is mid-stream, not fresh: restore must refuse rather
  // than silently double state.
  Status status = (*exec)->RestoreState(snap);
  EXPECT_TRUE(status.IsFailedPrecondition()) << status.ToString();
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(CheckpointExecutorTest, AutomaticIntervalCheckpointWritesSnapshots) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery query = TriangleQuery(catalog);
  SchemeSet schemes = Fig5Schemes(catalog);
  PlanShape shape = PlanShape::SingleMJoin(3);

  ExecutorConfig config = BaseConfig();
  config.checkpoint.interval_punctuations = 2;
  config.checkpoint.path = TempPath("punctsafe_auto_ckpt.bin");
  std::remove(config.checkpoint.path.c_str());

  auto exec = PlanExecutor::Create(query, schemes, shape, config);
  ASSERT_TRUE(exec.ok());
  Trace trace = TriangleTrace(4);
  for (const TraceEvent& e : trace) {
    ASSERT_TRUE((*exec)->Push(e).ok());
  }
  Result<StateSnapshot> snap = ReadSnapshotFile(config.checkpoint.path);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_EQ(snap->fingerprint, PlanFingerprint(query, shape));
  // The last interval boundary lands after the final punctuation, so
  // the on-disk snapshot equals the executor's final state.
  EXPECT_EQ(SerializeSnapshot(*snap),
            SerializeSnapshot((*exec)->Checkpoint()));
  std::remove(config.checkpoint.path.c_str());
}

TEST(CheckpointExecutorTest, QueryRegisterRestoreResumesBothModes) {
  Trace trace = TriangleTrace(5);
  const size_t cut = trace.size() / 2;
  const std::string path = TempPath("punctsafe_register_ckpt.bin");
  const std::vector<std::string> streams = {"S1", "S2", "S3"};
  const std::vector<JoinPredicateSpec> predicates = {
      Eq({"S1", "B"}, {"S2", "B"}), Eq({"S2", "C"}, {"S3", "C"}),
      Eq({"S3", "A"}, {"S1", "A"})};
  auto make_register = [](QueryRegister* reg) {
    PUNCTSAFE_CHECK_OK(reg->RegisterStream("S1", Schema::OfInts({"A", "B"})));
    PUNCTSAFE_CHECK_OK(reg->RegisterStream("S2", Schema::OfInts({"B", "C"})));
    PUNCTSAFE_CHECK_OK(reg->RegisterStream("S3", Schema::OfInts({"C", "A"})));
    PUNCTSAFE_CHECK_OK(reg->RegisterScheme("S1", {"B"}));
    PUNCTSAFE_CHECK_OK(reg->RegisterScheme("S2", {"C"}));
    PUNCTSAFE_CHECK_OK(reg->RegisterScheme("S3", {"A"}));
  };

  // Reference: one uninterrupted serial run.
  QueryRegister ref_reg;
  make_register(&ref_reg);
  auto ref = ref_reg.Register(streams, predicates, BaseConfig());
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();
  for (const TraceEvent& e : trace) {
    ASSERT_TRUE(ref->executor->Push(e).ok());
  }

  // "Crashed" run: consume a prefix, snapshot to disk, discard.
  {
    QueryRegister reg;
    make_register(&reg);
    auto running = reg.Register(streams, predicates, BaseConfig());
    ASSERT_TRUE(running.ok());
    for (size_t i = 0; i < cut; ++i) {
      ASSERT_TRUE(running->executor->Push(trace[i]).ok());
    }
    ASSERT_TRUE(
        WriteSnapshotFile(running->executor->Checkpoint(), path).ok());
  }

  for (ExecutionMode mode : {ExecutionMode::kSerial,
                             ExecutionMode::kParallel}) {
    SCOPED_TRACE(::testing::Message()
                 << "mode="
                 << (mode == ExecutionMode::kParallel ? "parallel"
                                                      : "serial"));
    QueryRegister reg;
    make_register(&reg);
    ExecutorConfig config = BaseConfig();
    config.mode = mode;
    config.shards = 2;
    auto resumed = reg.Restore(path, streams, predicates, config);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();

    uint64_t results = 0;
    std::vector<Tuple> kept;
    if (mode == ExecutionMode::kParallel) {
      ASSERT_TRUE(resumed->is_parallel());
      uint64_t expected_consumed = 0;
      for (size_t i = 0; i < cut; ++i) {
        if (trace[i].stream == "S1") ++expected_consumed;
      }
      EXPECT_EQ(resumed->parallel_executor->progress()[0].events_consumed,
                expected_consumed);
      for (size_t i = cut; i < trace.size(); ++i) {
        ASSERT_TRUE(resumed->parallel_executor->Push(trace[i]).ok());
      }
      ASSERT_TRUE(resumed->parallel_executor->Drain(1000).ok());
      results = resumed->parallel_executor->num_results();
      kept = resumed->parallel_executor->kept_results();
    } else {
      ASSERT_FALSE(resumed->is_parallel());
      for (size_t i = cut; i < trace.size(); ++i) {
        ASSERT_TRUE(resumed->executor->Push(trace[i]).ok());
      }
      results = resumed->executor->num_results();
      kept = resumed->executor->kept_results();
    }
    EXPECT_EQ(results, ref->executor->num_results());
    std::vector<Tuple> ref_kept = ref->executor->kept_results();
    std::sort(kept.begin(), kept.end());
    std::sort(ref_kept.begin(), ref_kept.end());
    EXPECT_EQ(kept, ref_kept);
  }
  std::remove(path.c_str());
}

TEST(CheckpointExecutorTest, RestoreRejectsCorruptFile) {
  const std::string path = TempPath("punctsafe_corrupt_ckpt.bin");
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery query = TriangleQuery(catalog);
  SchemeSet schemes = Fig5Schemes(catalog);
  auto exec = PlanExecutor::Create(query, schemes, PlanShape::SingleMJoin(3),
                                   BaseConfig());
  ASSERT_TRUE(exec.ok());
  ASSERT_TRUE(WriteSnapshotFile((*exec)->Checkpoint(), path).ok());
  Result<StateSnapshot> good = ReadSnapshotFile(path);
  ASSERT_TRUE(good.ok());

  // Corrupt one payload byte on disk; the section CRC must catch it.
  std::string bytes = SerializeSnapshot(*good);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0xFF);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  Result<StateSnapshot> bad = ReadSnapshotFile(path);
  EXPECT_FALSE(bad.ok());
  std::remove(path.c_str());

  Result<StateSnapshot> missing = ReadSnapshotFile(TempPath("nope.bin"));
  EXPECT_FALSE(missing.ok());
}

}  // namespace
}  // namespace punctsafe
