// Shared fixtures: the paper's worked examples as reusable builders.
//
// PaperExample encodes the 3-way query of Figures 3/5/7/8/9/10:
//   S1(A, B), S2(B, C), S3(C, A)
//   S1.B = S2.B,  S2.C = S3.C,  S3.A = S1.A
// with the two scheme sets the paper analyzes:
//  * Figure 5 (simple schemes): S1 on B, S2 on C, S3 on A — the
//    punctuation graph is the cycle S2->S1->S3->S2, so the MJoin plan
//    is safe while every binary tree is not (Figure 7);
//  * Figure 8 (arbitrary schemes): {S1 on B, S2 on B, S2 on C,
//    S3 on (A, C)} — the simple graph is not strongly connected but
//    the generalized one is.

#ifndef PUNCTSAFE_TESTS_TEST_UTIL_H_
#define PUNCTSAFE_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "query/cjq.h"
#include "stream/catalog.h"
#include "stream/scheme.h"
#include "util/logging.h"

namespace punctsafe {
namespace testing_util {

/// \brief Base seed for randomized test suites. Reads the
/// PUNCTSAFE_TEST_SEED environment variable (any strtoull literal:
/// decimal, 0x-hex, 0-octal) so a failing trial can be replayed by
/// exporting the seed the failure message printed; unset or empty
/// falls back to `default_seed`, keeping CI deterministic.
inline uint64_t TestBaseSeed(uint64_t default_seed = 0) {
  const char* env = std::getenv("PUNCTSAFE_TEST_SEED");
  if (env == nullptr || *env == '\0') return default_seed;
  char* end = nullptr;
  uint64_t value = std::strtoull(env, &end, 0);
  PUNCTSAFE_CHECK(end != env && *end == '\0')
      << "PUNCTSAFE_TEST_SEED is not a number: '" << env << "'";
  return value;
}

inline StreamCatalog PaperCatalog() {
  StreamCatalog catalog;
  PUNCTSAFE_CHECK_OK(catalog.Register("S1", Schema::OfInts({"A", "B"})));
  PUNCTSAFE_CHECK_OK(catalog.Register("S2", Schema::OfInts({"B", "C"})));
  PUNCTSAFE_CHECK_OK(catalog.Register("S3", Schema::OfInts({"C", "A"})));
  return catalog;
}

/// The Figure 3 chain query (two predicates).
inline ContinuousJoinQuery Fig3Query(const StreamCatalog& catalog) {
  auto q = ContinuousJoinQuery::Create(
      catalog, {"S1", "S2", "S3"},
      {Eq({"S1", "B"}, {"S2", "B"}), Eq({"S2", "C"}, {"S3", "C"})});
  PUNCTSAFE_CHECK(q.ok()) << q.status().ToString();
  return std::move(q).ValueOrDie();
}

/// The Figure 5 / Figure 8 triangle query (three predicates).
inline ContinuousJoinQuery TriangleQuery(const StreamCatalog& catalog) {
  auto q = ContinuousJoinQuery::Create(
      catalog, {"S1", "S2", "S3"},
      {Eq({"S1", "B"}, {"S2", "B"}), Eq({"S2", "C"}, {"S3", "C"}),
       Eq({"S3", "A"}, {"S1", "A"})});
  PUNCTSAFE_CHECK(q.ok()) << q.status().ToString();
  return std::move(q).ValueOrDie();
}

inline PunctuationScheme SchemeOn(const StreamCatalog& catalog,
                                  const std::string& stream,
                                  const std::vector<std::string>& attrs) {
  auto schema = catalog.Get(stream);
  PUNCTSAFE_CHECK(schema.ok());
  auto s = PunctuationScheme::OnAttributes(stream, *schema.ValueOrDie(),
                                           attrs);
  PUNCTSAFE_CHECK(s.ok()) << s.status().ToString();
  return std::move(s).ValueOrDie();
}

/// Figure 5 scheme set: one simple scheme per stream, forming the
/// directed cycle S2 -> S1 -> S3 -> S2 in the punctuation graph.
inline SchemeSet Fig5Schemes(const StreamCatalog& catalog) {
  SchemeSet set;
  PUNCTSAFE_CHECK_OK(set.Add(SchemeOn(catalog, "S1", {"B"})));
  PUNCTSAFE_CHECK_OK(set.Add(SchemeOn(catalog, "S2", {"C"})));
  PUNCTSAFE_CHECK_OK(set.Add(SchemeOn(catalog, "S3", {"A"})));
  return set;
}

/// Figure 8 scheme set: ℜ = {S1(_,+), S2(+,_), S2(_,+), S3(+,+)}.
inline SchemeSet Fig8Schemes(const StreamCatalog& catalog) {
  SchemeSet set;
  PUNCTSAFE_CHECK_OK(set.Add(SchemeOn(catalog, "S1", {"B"})));
  PUNCTSAFE_CHECK_OK(set.Add(SchemeOn(catalog, "S2", {"B"})));
  PUNCTSAFE_CHECK_OK(set.Add(SchemeOn(catalog, "S2", {"C"})));
  PUNCTSAFE_CHECK_OK(set.Add(SchemeOn(catalog, "S3", {"C", "A"})));
  return set;
}

}  // namespace testing_util
}  // namespace punctsafe

#endif  // PUNCTSAFE_TESTS_TEST_UTIL_H_
