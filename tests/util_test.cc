#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/rng.h"
#include "util/string_util.h"

namespace punctsafe {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  bool differ = false;
  for (int i = 0; i < 10; ++i) differ |= (a.Next() != b.Next());
  EXPECT_TRUE(differ);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowCoversDomain) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBelow(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(17);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), orig.begin()));
}

TEST(ZipfTest, UniformWhenThetaZero) {
  Rng rng(23);
  ZipfSampler zipf(4, 0.0);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 8000; ++i) ++counts[zipf.Sample(&rng)];
  for (int c : counts) EXPECT_NEAR(c, 2000, 200);
}

TEST(ZipfTest, SkewFavorsLowRanks) {
  Rng rng(29);
  ZipfSampler zipf(10, 1.2);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[zipf.Sample(&rng)];
  EXPECT_GT(counts[0], counts[9] * 3);
}

TEST(StringUtilTest, StrCat) {
  EXPECT_EQ(StrCat("a", 1, "-", 2.5), "a1-2.5");
  EXPECT_EQ(StrCat(), "");
}

TEST(StringUtilTest, Join) {
  std::vector<std::string> v{"a", "b", "c"};
  EXPECT_EQ(Join(v, ","), "a,b,c");
  EXPECT_EQ(Join(std::vector<std::string>{}, ","), "");
}

TEST(StringUtilTest, JoinMapped) {
  std::vector<int> v{1, 2, 3};
  EXPECT_EQ(JoinMapped(v, "+", [](int x) { return x * 10; }), "10+20+30");
}

TEST(StringUtilTest, Split) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

}  // namespace
}  // namespace punctsafe
