#include <gtest/gtest.h>

#include "stream/schema.h"
#include "stream/tuple.h"

namespace punctsafe {
namespace {

TEST(SchemaTest, BasicAccessors) {
  Schema s({{"a", ValueType::kInt64}, {"b", ValueType::kString}});
  EXPECT_EQ(s.num_attributes(), 2u);
  EXPECT_EQ(s.attribute(0).name, "a");
  EXPECT_EQ(s.attribute(1).type, ValueType::kString);
}

TEST(SchemaTest, OfInts) {
  Schema s = Schema::OfInts({"x", "y", "z"});
  EXPECT_EQ(s.num_attributes(), 3u);
  for (const Attribute& a : s.attributes()) {
    EXPECT_EQ(a.type, ValueType::kInt64);
  }
}

TEST(SchemaTest, IndexOf) {
  Schema s = Schema::OfInts({"x", "y"});
  EXPECT_EQ(s.IndexOf("y"), 1u);
  EXPECT_FALSE(s.IndexOf("nope").has_value());
}

TEST(SchemaTest, ValidateRejectsEmpty) {
  EXPECT_TRUE(Schema().Validate().IsInvalidArgument());
}

TEST(SchemaTest, ValidateRejectsDuplicates) {
  Schema s = Schema::OfInts({"x", "x"});
  EXPECT_TRUE(s.Validate().IsInvalidArgument());
}

TEST(SchemaTest, ValidateRejectsUnnamed) {
  Schema s({{"", ValueType::kInt64}});
  EXPECT_TRUE(s.Validate().IsInvalidArgument());
}

TEST(SchemaTest, ValidateAcceptsGood) {
  EXPECT_TRUE(Schema::OfInts({"a", "b"}).Validate().ok());
}

TEST(SchemaTest, EqualityAndToString) {
  Schema a = Schema::OfInts({"x"});
  Schema b = Schema::OfInts({"x"});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.ToString(), "(x:int64)");
}

TEST(TupleTest, Accessors) {
  Tuple t({Value(1), Value("a")});
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.at(0), Value(1));
  EXPECT_EQ(t.at(1), Value("a"));
}

TEST(TupleTest, MatchesSchemaHappyPath) {
  Schema s({{"id", ValueType::kInt64}, {"name", ValueType::kString}});
  EXPECT_TRUE(Tuple({Value(1), Value("x")}).MatchesSchema(s).ok());
}

TEST(TupleTest, MatchesSchemaArityMismatch) {
  Schema s = Schema::OfInts({"a"});
  EXPECT_TRUE(
      Tuple({Value(1), Value(2)}).MatchesSchema(s).IsInvalidArgument());
}

TEST(TupleTest, MatchesSchemaTypeMismatch) {
  Schema s = Schema::OfInts({"a"});
  EXPECT_TRUE(Tuple({Value("str")}).MatchesSchema(s).IsInvalidArgument());
}

TEST(TupleTest, NullPassesAnySchemaSlot) {
  Schema s = Schema::OfInts({"a"});
  EXPECT_TRUE(Tuple({Value::Null()}).MatchesSchema(s).ok());
}

TEST(TupleTest, EqualityAndHash) {
  Tuple a({Value(1), Value(2)});
  Tuple b({Value(1), Value(2)});
  Tuple c({Value(2), Value(1)});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(TupleTest, Ordering) {
  EXPECT_LT(Tuple({Value(1)}), Tuple({Value(2)}));
  EXPECT_LT(Tuple({Value(1)}), Tuple({Value(1), Value(0)}));
}

TEST(TupleTest, ConcatTuples) {
  Tuple a({Value(1)});
  Tuple b({Value(2), Value(3)});
  Tuple c = ConcatTuples({&a, &b});
  EXPECT_EQ(c, Tuple({Value(1), Value(2), Value(3)}));
  EXPECT_EQ(ConcatTuples({}), Tuple());
}

TEST(TupleTest, ToString) {
  EXPECT_EQ(Tuple({Value(1), Value("x")}).ToString(), "(1, \"x\")");
  EXPECT_EQ(Tuple().ToString(), "()");
}

}  // namespace
}  // namespace punctsafe
