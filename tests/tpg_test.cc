#include "core/transformed_punctuation_graph.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "workload/random_query.h"

namespace punctsafe {
namespace {

using testing_util::Fig5Schemes;
using testing_util::Fig8Schemes;
using testing_util::PaperCatalog;
using testing_util::SchemeOn;
using testing_util::TriangleQuery;

// Figure 10: under the Figure 8 schemes, the transformation first
// merges {S1, S2} (the simple-edge SCC), then the virtual edge
// {S1,S2} -> S3 closes the cycle and everything collapses.
TEST(TpgTest, Fig10CollapsesToSingleNode) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  for (auto mode : {TransformedPunctuationGraph::Mode::kPaperStrict,
                    TransformedPunctuationGraph::Mode::kClosure}) {
    TransformedPunctuationGraph tpg =
        TransformedPunctuationGraph::Build(q, Fig8Schemes(catalog), mode);
    EXPECT_TRUE(tpg.CollapsedToSingleNode()) << tpg.ToString(q);
    EXPECT_EQ(tpg.num_final_nodes(), 1u);
    // Two merge rounds: {S1,S2} first, then all (bounded by n-1 = 2).
    EXPECT_LE(tpg.num_rounds(), 3u);
    // First snapshot: three singleton nodes.
    ASSERT_FALSE(tpg.history().empty());
    EXPECT_EQ(tpg.history()[0].covers.size(), 3u);
  }
}

TEST(TpgTest, Fig5SimpleCycleCollapsesInOneRound) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  TransformedPunctuationGraph tpg =
      TransformedPunctuationGraph::Build(q, Fig5Schemes(catalog));
  EXPECT_TRUE(tpg.CollapsedToSingleNode());
}

TEST(TpgTest, UnsafeQueryStallsWithMultipleNodes) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  SchemeSet schemes;
  ASSERT_TRUE(schemes.Add(SchemeOn(catalog, "S1", {"B"})).ok());
  TransformedPunctuationGraph tpg =
      TransformedPunctuationGraph::Build(q, schemes);
  EXPECT_FALSE(tpg.CollapsedToSingleNode());
  EXPECT_GE(tpg.num_final_nodes(), 2u);
}

TEST(TpgTest, EmptySchemesNeverCollapse) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  TransformedPunctuationGraph tpg =
      TransformedPunctuationGraph::Build(q, SchemeSet());
  EXPECT_EQ(tpg.num_final_nodes(), 3u);
}

// Theorem 5 (both directions), validated against the Definition 9/10
// fixpoint over randomized queries and scheme sets. The closure
// variant must agree exactly; the paper-strict variant must at least
// be sound (single node => strongly connected).
TEST(TpgTest, Theorem5AgreesWithGpgOnRandomInstances) {
  int safe_count = 0;
  int strict_misses = 0;
  for (uint64_t seed = 0; seed < 400; ++seed) {
    RandomQueryConfig config;
    config.num_streams = 2 + seed % 5;
    config.attrs_per_stream = 2 + seed % 2;
    config.extra_predicates = seed % 3;
    config.schemeless_prob = 0.25;
    config.multi_attr_prob = 0.5;
    config.second_scheme_prob = 0.35;
    config.seed = seed * 7919 + 1;
    auto inst = MakeRandomQuery(config);
    ASSERT_TRUE(inst.ok()) << inst.status().ToString();

    GeneralizedPunctuationGraph gpg =
        GeneralizedPunctuationGraph::Build(inst->query, inst->schemes);
    bool gpg_sc = gpg.IsStronglyConnected();
    safe_count += gpg_sc ? 1 : 0;

    TransformedPunctuationGraph closure =
        TransformedPunctuationGraph::BuildFromGpg(
            gpg, TransformedPunctuationGraph::Mode::kClosure);
    EXPECT_EQ(closure.CollapsedToSingleNode(), gpg_sc)
        << "seed=" << seed << " query=" << inst->query.ToString()
        << " schemes=" << inst->schemes.ToString();

    TransformedPunctuationGraph strict =
        TransformedPunctuationGraph::BuildFromGpg(
            gpg, TransformedPunctuationGraph::Mode::kPaperStrict);
    if (strict.CollapsedToSingleNode()) {
      // Soundness: strict collapse implies GPG strong connectivity.
      EXPECT_TRUE(gpg_sc) << "seed=" << seed;
    } else if (gpg_sc) {
      ++strict_misses;  // literal Def 11 stalls; recorded, not fatal
    }
  }
  // The sample must exercise both verdicts to be meaningful.
  EXPECT_GT(safe_count, 20);
  EXPECT_LT(safe_count, 380);
  // The strict variant misses at most a small fraction of safe
  // instances (sources spanning unmerged nodes).
  EXPECT_LE(strict_misses, safe_count / 4);
}

// The round count is bounded by n - 1 (Section 4.3's polynomial
// argument).
TEST(TpgTest, RoundsBoundedByStreamsMinusOne) {
  for (uint64_t seed = 0; seed < 100; ++seed) {
    RandomQueryConfig config;
    config.num_streams = 2 + seed % 6;
    config.multi_attr_prob = 0.4;
    config.seed = seed + 5000;
    auto inst = MakeRandomQuery(config);
    ASSERT_TRUE(inst.ok());
    TransformedPunctuationGraph tpg =
        TransformedPunctuationGraph::Build(inst->query, inst->schemes);
    // num_rounds counts snapshots; merges are at most n - 1, plus the
    // final fixed-point round.
    EXPECT_LE(tpg.num_rounds(), inst->query.num_streams() + 1);
  }
}

}  // namespace
}  // namespace punctsafe
