#include "util/status.h"

#include <gtest/gtest.h>

namespace punctsafe {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad arity");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad arity");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad arity");
}

TEST(StatusTest, AllFactoriesMapToCodes) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CopyIsCheap) {
  Status a = Status::Internal("boom");
  Status b = a;  // shared state
  EXPECT_EQ(a, b);
  EXPECT_EQ(b.message(), "boom");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "hello");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseMacros(int x, int* out) {
  PUNCTSAFE_ASSIGN_OR_RETURN(int h, Half(x));
  PUNCTSAFE_RETURN_IF_ERROR(Status::OK());
  *out = h;
  return Status::OK();
}

TEST(ResultTest, MacrosPropagate) {
  int out = 0;
  EXPECT_TRUE(UseMacros(10, &out).ok());
  EXPECT_EQ(out, 5);
  Status s = UseMacros(3, &out);
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(out, 5);  // untouched on error
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kFailedPrecondition),
               "Failed precondition");
}

}  // namespace
}  // namespace punctsafe
