#include "exec/query_register.h"

#include <gtest/gtest.h>

#include "workload/auction.h"

namespace punctsafe {
namespace {

TEST(QueryRegisterTest, AdmitsSafeQueryAndRuns) {
  QueryRegister reg;
  ASSERT_TRUE(AuctionWorkload::Setup(&reg).ok());
  auto rq = reg.Register(AuctionWorkload::QueryStreams(),
                         AuctionWorkload::QueryPredicates());
  ASSERT_TRUE(rq.ok()) << rq.status().ToString();
  EXPECT_TRUE(rq->safety.safe);
  EXPECT_EQ(rq->shape, PlanShape::SingleMJoin(2));

  rq->executor->PushTuple(0, Tuple({Value(1), Value(10), Value("i"),
                                    Value(100)}),
                          1);
  rq->executor->PushTuple(1, Tuple({Value(7), Value(10), Value(5)}), 2);
  EXPECT_EQ(rq->executor->num_results(), 1u);
}

TEST(QueryRegisterTest, RejectsUnsafeQueryWithExplanation) {
  QueryRegister reg;
  ASSERT_TRUE(
      reg.RegisterStream("item", AuctionWorkload::ItemSchema()).ok());
  ASSERT_TRUE(reg.RegisterStream("bid", AuctionWorkload::BidSchema()).ok());
  // Only a useless scheme: punctuations on bidderid (the paper's
  // Section 1 example of an unsafe configuration).
  ASSERT_TRUE(reg.RegisterScheme("bid", {"bidderid"}).ok());

  auto rq = reg.Register({"item", "bid"},
                         {Eq({"item", "itemid"}, {"bid", "itemid"})});
  ASSERT_TRUE(rq.status().IsFailedPrecondition());
  EXPECT_NE(rq.status().message().find("UNSAFE"), std::string::npos);
  EXPECT_NE(rq.status().message().find("item"), std::string::npos);
}

TEST(QueryRegisterTest, RejectsUnsafeShapeEvenForSafeQuery) {
  QueryRegister reg;
  // The triangle query with Figure 5 schemes: safe as MJoin, unsafe as
  // any binary tree.
  ASSERT_TRUE(reg.RegisterStream("S1", Schema::OfInts({"A", "B"})).ok());
  ASSERT_TRUE(reg.RegisterStream("S2", Schema::OfInts({"B", "C"})).ok());
  ASSERT_TRUE(reg.RegisterStream("S3", Schema::OfInts({"C", "A"})).ok());
  ASSERT_TRUE(reg.RegisterScheme("S1", {"B"}).ok());
  ASSERT_TRUE(reg.RegisterScheme("S2", {"C"}).ok());
  ASSERT_TRUE(reg.RegisterScheme("S3", {"A"}).ok());
  std::vector<JoinPredicateSpec> preds = {Eq({"S1", "B"}, {"S2", "B"}),
                                          Eq({"S2", "C"}, {"S3", "C"}),
                                          Eq({"S3", "A"}, {"S1", "A"})};

  auto bad = reg.Register({"S1", "S2", "S3"}, preds, {},
                          PlanShape::LeftDeepBinary({0, 1, 2}));
  ASSERT_TRUE(bad.status().IsFailedPrecondition());
  EXPECT_NE(bad.status().message().find("not safe"), std::string::npos);

  auto good = reg.Register({"S1", "S2", "S3"}, preds);
  EXPECT_TRUE(good.ok()) << good.status().ToString();
}

TEST(QueryRegisterTest, SchemeValidation) {
  QueryRegister reg;
  ASSERT_TRUE(reg.RegisterStream("s", Schema::OfInts({"a", "b"})).ok());
  // Unknown stream.
  EXPECT_TRUE(reg.RegisterScheme("zzz", {"a"}).IsNotFound());
  // Unknown attribute.
  EXPECT_TRUE(reg.RegisterScheme("s", {"zzz"}).IsNotFound());
  // Arity mismatch via the raw-scheme API.
  EXPECT_TRUE(reg.RegisterScheme(PunctuationScheme("s", {true}))
                  .IsInvalidArgument());
  // No punctuatable attribute.
  EXPECT_TRUE(reg.RegisterScheme(PunctuationScheme("s", {false, false}))
                  .IsInvalidArgument());
  // Good one, then a duplicate.
  EXPECT_TRUE(reg.RegisterScheme("s", {"a"}).ok());
  EXPECT_TRUE(reg.RegisterScheme("s", {"a"}).IsAlreadyExists());
}

TEST(QueryRegisterTest, QueryValidationPropagates) {
  QueryRegister reg;
  ASSERT_TRUE(reg.RegisterStream("s", Schema::OfInts({"a"})).ok());
  auto rq = reg.Register({"s"}, {});
  EXPECT_TRUE(rq.status().IsInvalidArgument());
}

}  // namespace
}  // namespace punctsafe
