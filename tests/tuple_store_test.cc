#include "exec/tuple_store.h"

#include <gtest/gtest.h>

#include <set>

namespace punctsafe {
namespace {

TEST(TupleStoreTest, InsertAndProbe) {
  TupleStore store({0});
  size_t s1 = store.Insert(Tuple({Value(1), Value(10)}));
  size_t s2 = store.Insert(Tuple({Value(1), Value(20)}));
  size_t s3 = store.Insert(Tuple({Value(2), Value(30)}));
  EXPECT_EQ(store.live_count(), 3u);
  EXPECT_TRUE(store.IsLive(s1));

  auto hits = store.Probe(0, Value(1));
  EXPECT_EQ(std::set<size_t>(hits.begin(), hits.end()),
            (std::set<size_t>{s1, s2}));
  EXPECT_EQ(store.Probe(0, Value(2)), (std::vector<size_t>{s3}));
  EXPECT_TRUE(store.Probe(0, Value(9)).empty());
}

TEST(TupleStoreTest, RemoveIsIdempotentAndHidesFromProbe) {
  TupleStore store({0});
  size_t s1 = store.Insert(Tuple({Value(1)}));
  store.Remove(s1);
  store.Remove(s1);
  EXPECT_EQ(store.live_count(), 0u);
  EXPECT_FALSE(store.IsLive(s1));
  EXPECT_TRUE(store.Probe(0, Value(1)).empty());
  // The tuple data stays addressable (slot ids stable).
  EXPECT_EQ(store.At(s1), Tuple({Value(1)}));
}

TEST(TupleStoreTest, MultipleIndexes) {
  TupleStore store({0, 2});
  size_t s = store.Insert(Tuple({Value(1), Value(2), Value(3)}));
  EXPECT_EQ(store.Probe(0, Value(1)), (std::vector<size_t>{s}));
  EXPECT_EQ(store.Probe(2, Value(3)), (std::vector<size_t>{s}));
}

TEST(TupleStoreTest, ForEachLiveSkipsRemoved) {
  TupleStore store({0});
  size_t s1 = store.Insert(Tuple({Value(1)}));
  store.Insert(Tuple({Value(2)}));
  store.Remove(s1);
  size_t visits = 0;
  store.ForEachLive([&](size_t slot, const Tuple& t) {
    ++visits;
    EXPECT_NE(slot, s1);
    EXPECT_EQ(t, Tuple({Value(2)}));
  });
  EXPECT_EQ(visits, 1u);
}

TEST(TupleStoreTest, PurgeSlotsCountsOnlyLive) {
  TupleStore store({0});
  size_t s1 = store.Insert(Tuple({Value(1)}));
  size_t s2 = store.Insert(Tuple({Value(2)}));
  store.Remove(s1);
  store.PurgeSlots({s1, s2});
  EXPECT_EQ(store.metrics().purged, 1u);
  EXPECT_EQ(store.live_count(), 0u);
}

TEST(TupleStoreTest, MetricsTrackHighWater) {
  TupleStore store({0});
  size_t a = store.Insert(Tuple({Value(1)}));
  store.Insert(Tuple({Value(2)}));
  store.PurgeSlots({a});
  store.Insert(Tuple({Value(3)}));
  const StateMetrics& m = store.metrics();
  EXPECT_EQ(m.inserted, 3u);
  EXPECT_EQ(m.purged, 1u);
  EXPECT_EQ(m.live, 2u);
  EXPECT_EQ(m.high_water, 2u);
  store.CountDroppedArrival();
  EXPECT_EQ(store.metrics().dropped_on_arrival, 1u);
}

TEST(TupleStoreTest, IndexCompactionKeepsProbesCorrect) {
  TupleStore store({0});
  // Insert and purge enough to trigger compaction several times.
  std::vector<size_t> slots;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 100; ++i) {
      slots.push_back(store.Insert(Tuple({Value(i % 7), Value(i)})));
    }
    store.PurgeSlots(slots);
    slots.clear();
  }
  EXPECT_EQ(store.live_count(), 0u);
  // One survivor among the debris.
  size_t keep = store.Insert(Tuple({Value(3), Value(999)}));
  EXPECT_EQ(store.Probe(0, Value(3)), (std::vector<size_t>{keep}));
}

TEST(TupleStoreTest, NoIndexes) {
  TupleStore store({});
  store.Insert(Tuple({Value(1)}));
  store.Insert(Tuple({Value(2)}));
  size_t count = 0;
  store.ForEachLive([&](size_t, const Tuple&) { ++count; });
  EXPECT_EQ(count, 2u);
}

}  // namespace
}  // namespace punctsafe
